package simba

import (
	"time"

	"simba/internal/alert"
	"simba/internal/core"
	"simba/internal/enduser"
	"simba/internal/mab"
	"simba/internal/mdc"
)

// BuddyOptions configures a MyAlertBuddy on a world.
type BuddyOptions struct {
	// IMHandle and EmailAddress are the buddy's own accounts; they are
	// registered with the world's services if missing. Required.
	IMHandle, EmailAddress string
	// LogPath is the pessimistic log file. Required.
	LogPath string
	// AckTimeout bounds how long the buddy waits for a user IM
	// acknowledgement (through modes that use it). Informational here;
	// actual timeouts live in the delivery modes' block timeouts, which
	// the shared mode executor enforces (the hub's analogue is the
	// simbad -ack-timeout flag, substituted into hosted modes).
	AckTimeout time.Duration
	// DisableNightlyRejuvenation keeps the 23:30 restart off.
	DisableNightlyRejuvenation bool
	// OnDelivery observes every routing attempt. Optional.
	OnDelivery func(a *Alert, sub Subscription, rep *Report, err error)
	// ConfigureChannels runs against each incarnation's delivery
	// channel registry after the built-in IM and email channels are
	// registered — the hook for adding a direct-carrier SMS channel
	// (DirectSMSChannel) or substituting a built-in. Optional.
	ConfigureChannels func(*ChannelRegistry)
}

// NewBuddy constructs (but does not start) a MyAlertBuddy on the
// world, creating its IM account and mailbox if needed. Start it
// directly with Start, or supervise it with NewWatchdog.
func NewBuddy(w *World, opts BuddyOptions) (*Buddy, error) {
	if _, exists := w.Email.Mailbox(opts.EmailAddress); !exists && opts.EmailAddress != "" {
		if _, err := w.Email.CreateMailbox(opts.EmailAddress); err != nil {
			return nil, err
		}
	}
	if opts.IMHandle != "" {
		if _, err := w.IM.Status(opts.IMHandle); err != nil {
			if err := w.IM.Register(opts.IMHandle); err != nil {
				return nil, err
			}
		}
	}
	rejuvenation := time.Duration(0)
	if opts.DisableNightlyRejuvenation {
		rejuvenation = -1
	}
	var onDelivery func(a *alert.Alert, sub core.Subscription, rep *core.Report, err error)
	if opts.OnDelivery != nil {
		onDelivery = func(a *alert.Alert, sub core.Subscription, rep *core.Report, err error) {
			opts.OnDelivery(a, sub, rep, err)
		}
	}
	return mab.New(mab.Config{
		Clock:            w.Clock,
		Machine:          w.Machine,
		IMService:        w.IM,
		EmailService:     w.Email,
		IMHandle:         opts.IMHandle,
		EmailAddress:     opts.EmailAddress,
		LogPath:          opts.LogPath,
		Journal:          w.Journal,
		RejuvenationTime:  rejuvenation,
		OnDelivery:        onDelivery,
		ConfigureChannels: opts.ConfigureChannels,
	})
}

// StartBuddy starts the buddy while driving the world's clock through
// the client-software startup delays.
func StartBuddy(w *World, b *Buddy) error {
	var startErr error
	if err := w.Drive(func() { startErr = b.Start() }); err != nil {
		return err
	}
	return startErr
}

// NewWatchdog supervises the buddy with a Master Daemon Controller
// using the paper's parameters (3-minute AreYouWorking probes).
func NewWatchdog(w *World, b *Buddy) (*Watchdog, error) {
	return mdc.New(mdc.Config{
		Clock:   w.Clock,
		Daemon:  b,
		Journal: w.Journal,
		Reboot:  func() { w.Machine.Reboot(mdc.DefaultBootTime) },
	})
}

// UserOptions configures a simulated end user.
type UserOptions struct {
	Name           string
	IMHandle       string
	EmailAddresses []string
	PhoneNumber    string
	// EmailCheckPeriod is how often the user reads mail (default 5m).
	EmailCheckPeriod time.Duration
}

// NewUser builds a simulated human endpoint on the world. The
// referenced accounts must already exist (see
// World.CreatePersonalAccounts).
func NewUser(w *World, opts UserOptions) (*EndUser, error) {
	return enduser.New(enduser.Config{
		Clock:            w.Clock,
		Name:             opts.Name,
		IMService:        w.IM,
		IMHandle:         opts.IMHandle,
		EmailService:     w.Email,
		EmailAddresses:   opts.EmailAddresses,
		Carrier:          w.SMS,
		PhoneNumber:      opts.PhoneNumber,
		EmailCheckPeriod: opts.EmailCheckPeriod,
	})
}
