package simba_test

import (
	"path/filepath"
	"testing"
	"time"

	"simba"
)

// TestPublicAPIQuickstart walks the full public-API path: world →
// buddy → user → source link → alert → receipt.
func TestPublicAPIQuickstart(t *testing.T) {
	world, err := simba.NewWorld(simba.WorldOptions{Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	if err := world.CreatePersonalAccounts("alice-im", []string{"alice@work.sim"}, "5551234"); err != nil {
		t.Fatal(err)
	}

	buddy, err := simba.NewBuddy(world, simba.BuddyOptions{
		IMHandle:                   "my-buddy",
		EmailAddress:               "buddy@sim",
		LogPath:                    filepath.Join(t.TempDir(), "buddy.plog"),
		DisableNightlyRejuvenation: true,
	})
	if err != nil {
		t.Fatal(err)
	}

	// The user's profile at the buddy.
	buddy.Classifier().Accept(simba.SourceRule{Source: "quickstart", Extract: simba.ExtractNative})
	buddy.Aggregator().Map("Stocks", "Investment")
	profile, err := buddy.Store().RegisterUser("alice")
	if err != nil {
		t.Fatal(err)
	}
	for _, a := range []simba.Address{
		{Type: simba.TypeIM, Name: "MSN IM", Target: "alice-im", Enabled: true},
		{Type: simba.TypeEmail, Name: "Work email", Target: "alice@work.sim", Enabled: true},
		{Type: simba.TypeSMS, Name: "Cell SMS", Target: simba.SMSGatewayAddress("5551234"), Enabled: true},
	} {
		if err := profile.Addresses().Register(a); err != nil {
			t.Fatal(err)
		}
	}
	mode := simba.IMThenEmailMode("MSN IM", "Work email", simba.ModeDuration(10*time.Second))
	if err := profile.DefineMode(mode); err != nil {
		t.Fatal(err)
	}
	if err := buddy.Store().Subscribe("Investment", "alice", "IMThenEmail"); err != nil {
		t.Fatal(err)
	}

	user, err := simba.NewUser(world, simba.UserOptions{
		Name: "alice", IMHandle: "alice-im",
		EmailAddresses: []string{"alice@work.sim"}, PhoneNumber: "5551234",
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := user.Start(); err != nil {
		t.Fatal(err)
	}
	defer user.Stop()

	if err := simba.StartBuddy(world, buddy); err != nil {
		t.Fatal(err)
	}
	defer buddy.Kill()

	link, err := simba.NewSourceLink(world, "src-im", "src@sim", buddy, 15*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if err := link.Start(); err != nil {
		t.Fatal(err)
	}
	defer link.Stop()

	a := &simba.Alert{
		ID:       simba.NextAlertID("qs"),
		Source:   "quickstart",
		Keywords: []string{"Stocks"},
		Subject:  "MSFT earnings out",
		Body:     "Quarterly results beat expectations.",
		Urgency:  simba.UrgencyHigh,
		Created:  world.Clock.Now(),
	}
	var rep *simba.Report
	var derr error
	if err := world.Drive(func() { rep, derr = link.Deliver(a) }); err != nil {
		t.Fatal(err)
	}
	if derr != nil {
		t.Fatal(derr)
	}
	if !rep.Delivered || rep.DeliveredVia != "Buddy IM" {
		t.Fatalf("report = %+v", rep)
	}
	if !world.RunUntil(func() bool { return user.ReceiptCount() == 1 }, 500*time.Millisecond, time.Minute) {
		t.Fatal("alert never reached the user")
	}
	receipts := user.Receipts()
	if receipts[0].Channel != simba.TypeIM || receipts[0].Alert.Keywords[0] != "Investment" {
		t.Fatalf("receipt = %+v", receipts[0])
	}
}

// TestFigure4ModeRoundTrip exercises the XML surface of the public API.
func TestFigure4ModeRoundTrip(t *testing.T) {
	m := simba.Figure4Mode()
	data, err := m.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	got, err := simba.ParseDeliveryMode(data)
	if err != nil {
		t.Fatal(err)
	}
	if got.Name != "Urgent" || len(got.Blocks) != 2 {
		t.Fatalf("mode = %+v", got)
	}
}

// TestWatchdogSupervisesBuddy exercises the MDC path of the public API.
func TestWatchdogSupervisesBuddy(t *testing.T) {
	world, err := simba.NewWorld(simba.WorldOptions{Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	buddy, err := simba.NewBuddy(world, simba.BuddyOptions{
		IMHandle:                   "wd-buddy",
		EmailAddress:               "wd@sim",
		LogPath:                    filepath.Join(t.TempDir(), "buddy.plog"),
		DisableNightlyRejuvenation: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	wd, err := simba.NewWatchdog(world, buddy)
	if err != nil {
		t.Fatal(err)
	}
	wd.Start()
	defer wd.Stop()
	if !world.RunUntil(buddy.Running, time.Second, time.Minute) {
		t.Fatal("buddy never started under watchdog")
	}
	buddy.InjectCrash()
	if !world.RunUntil(func() bool { return !buddy.Running() }, time.Second, time.Minute) {
		t.Fatal("crash not observed")
	}
	if !world.RunUntil(buddy.Running, 5*time.Second, 5*time.Minute) {
		t.Fatal("watchdog never restarted the buddy")
	}
	if wd.Restarts() != 1 {
		t.Fatalf("Restarts = %d", wd.Restarts())
	}
}
