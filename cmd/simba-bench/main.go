// Command simba-bench regenerates every quantitative result in the
// SIMBA paper's evaluation (Section 5), the baseline comparison
// motivated by Section 2.3, the portal-scale workload from Section 1,
// and the design ablations — printing one paper-vs-measured table per
// experiment.
//
// Usage:
//
//	simba-bench [-quick] [-days N] [-out FILE]
//
// -quick runs reduced sizes (a few seconds); the default sizes
// reproduce the full study, including the 30-day fault log, in a few
// minutes of wall time.
package main

import (
	"flag"
	"fmt"
	"io"
	"log"
	"os"

	"simba/internal/harness"
)

func main() {
	quick := flag.Bool("quick", false, "reduced experiment sizes")
	days := flag.Int("days", 0, "override the fault-study length in days")
	out := flag.String("out", "", "also write the tables to this file")
	flag.Parse()

	sizes := harness.Sizes{}
	if *quick {
		sizes = harness.QuickSizes()
	}
	if *days > 0 {
		sizes.E5Days = *days
	}

	var w io.Writer = os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			log.Fatal(err)
		}
		defer f.Close()
		w = io.MultiWriter(os.Stdout, f)
	}

	tmp, err := os.MkdirTemp("", "simba-bench")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(tmp)

	fmt.Fprintln(w, "SIMBA experiment harness — reproducing MSR-TR-2000-117 / DSN 2001")
	fmt.Fprintln(w)
	if _, err := harness.RunAll(tmp, sizes, w); err != nil {
		log.Fatal(err)
	}
}
