// Command alertproxy demonstrates the standalone SIMBA alert proxy of
// Section 2.1 against a simulated web: it watches the Florida-recount
// block on a news page and the PlayStation2 availability block on a
// store page, printing an alert every time either block changes —
// including through a site outage.
//
// Usage:
//
//	alertproxy [-minutes N]
package main

import (
	"flag"
	"fmt"
	"log"
	"time"

	"simba/internal/addr"
	"simba/internal/alert"
	"simba/internal/clock"
	"simba/internal/core"
	"simba/internal/dist"
	"simba/internal/dmode"
	"simba/internal/email"
	"simba/internal/proxy"
	"simba/internal/websim"
)

func main() {
	minutes := flag.Int("minutes", 10, "virtual minutes to run")
	flag.Parse()
	if err := run(*minutes); err != nil {
		log.Fatal(err)
	}
}

func run(minutes int) error {
	sim := clock.NewSim(time.Time{})
	web, err := websim.New(sim, 200*time.Millisecond)
	if err != nil {
		return err
	}
	// Deliveries land in a collector mailbox (standing in for the
	// buddy) so this demo stays self-contained.
	emSvc, err := email.NewService(email.Config{
		Clock: sim, RNG: dist.NewRNG(1), Delay: dist.Fixed(time.Second),
	})
	if err != nil {
		return err
	}
	inbox, err := emSvc.CreateMailbox("collector@sim")
	if err != nil {
		return err
	}
	sender, err := core.NewDirectEmail(emSvc, "proxy@sim")
	if err != nil {
		return err
	}
	engine, err := core.NewEngine(sim, nil, sender)
	if err != nil {
		return err
	}
	reg := addr.NewRegistry("collector")
	if err := reg.Register(addr.Address{Type: addr.TypeEmail, Name: "inbox", Target: "collector@sim", Enabled: true}); err != nil {
		return err
	}
	mode := &dmode.Mode{Name: "email", Blocks: []dmode.Block{{Actions: []dmode.Action{{Address: "inbox"}}}}}
	target, err := core.NewTarget(engine, reg, mode)
	if err != nil {
		return err
	}

	cnn, err := web.CreateSite("cnn")
	if err != nil {
		return err
	}
	cnn.SetContent("election", "Results so far: [Gore 2909135, Bush 2909142] updated hourly", sim.Now())
	store, err := web.CreateSite("store")
	if err != nil {
		return err
	}
	store.SetContent("ps2", "PlayStation2: <stock>SOLD OUT</stock>", sim.Now())

	p, err := proxy.New(sim, web, target)
	if err != nil {
		return err
	}
	for _, m := range []proxy.Monitor{
		{Name: "florida-recount", URL: "cnn/election", PollEvery: time.Second,
			StartKeyword: "[", EndKeyword: "]", Source: "alert-proxy",
			Keywords: []string{"Election"}, Urgency: alert.UrgencyHigh},
		{Name: "ps2-availability", URL: "store/ps2", PollEvery: 5 * time.Second,
			StartKeyword: "<stock>", EndKeyword: "</stock>", Source: "alert-proxy",
			Keywords: []string{"PlayStation2"}},
	} {
		if err := p.AddMonitor(m); err != nil {
			return err
		}
	}
	p.Start()
	defer p.Stop()

	total := time.Duration(minutes) * time.Minute
	at := func(frac float64) time.Duration { return time.Duration(frac * float64(total)) }
	cnn.ScheduleUpdate(sim, at(0.2), "election", "Results so far: [Gore 2909135, Bush 2909537] updated hourly")
	store.ScheduleUpdate(sim, at(0.4), "ps2", "PlayStation2: <stock>IN STOCK - 12 units</stock>")
	sim.AfterFunc(at(0.55), func() {
		fmt.Printf("%s  cnn goes unreachable\n", sim.Now().Format("15:04:05"))
		cnn.Down().Set(true, sim.Now())
	})
	cnn.ScheduleUpdate(sim, at(0.6), "election", "Results so far: [Gore 2909135, Bush 2910212] updated hourly")
	sim.AfterFunc(at(0.75), func() {
		fmt.Printf("%s  cnn back online\n", sim.Now().Format("15:04:05"))
		cnn.Down().Set(false, sim.Now())
	})

	seen := 0
	for elapsed := time.Duration(0); elapsed < total; elapsed += time.Second {
		sim.Advance(time.Second)
		time.Sleep(time.Millisecond)
		for _, msg := range inbox.Fetch() {
			var a alert.Alert
			if err := a.UnmarshalText([]byte(msg.Body)); err != nil {
				continue
			}
			seen++
			fmt.Printf("%s  ALERT %-18s %q\n",
				sim.Now().Format("15:04:05"), a.Keywords[0], a.Body)
		}
	}
	fmt.Printf("%d change alerts over %d virtual minutes\n", seen, minutes)
	return nil
}
