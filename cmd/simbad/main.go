// Command simbad runs a live SIMBA deployment in simulated time and
// narrates it: every alert source from the paper (alert proxy,
// web-store monitor, Aladdin home, WISH location tracking, desktop
// assistant) feeds one MyAlertBuddy under a Master Daemon Controller,
// delivering to one user, while a fault script exercises the
// availability machinery. Events stream to stdout as virtual time
// advances.
//
// With -hub, simbad instead runs the multi-tenant hosting experiment:
// N MyAlertBuddy pipelines behind a K-way sharded hub over one shared
// group-commit WAL, fed a portal-style workload in real time, then
// reports throughput, fsync amplification, latency, and admission
// statistics.
//
// Usage:
//
//	simbad [-hours N] [-pprof ADDR]
//	simbad -hub [-users N] [-shards K] [-alerts M] [-window D] [-seed S] [-delivery-window W]
//	       [-wal-lanes L] [-wal-segment-bytes B] [-wal-checkpoint-every R]
//	       [-commit-max-records N] [-async-depth K]
//	       [-mode-frac F] [-ack-timeout D] [-im-ack-p P]
//	       [-guaranteed-frac F] [-outbox-dir DIR] [-outbox-backoff D]
//	       [-burst B] [-route-batch R] [-gc-stats] [-pprof ADDR]
//
// With -burst > 1 the portal workload is offered through
// Hub.SubmitBatch in bursts of that size (amortizing the group-commit
// durability wait across each burst); -route-batch caps how many
// queued alerts a shard loop routes per wakeup. -wal-lanes partitions
// the ingest WAL into that many independent group-commit lanes (0 =
// one per shard) so shards fsync in parallel; the run report breaks
// fsync counts and latency down per lane. The -window commit window is
// an upper bound, not a fixed tax: the adaptive scheduler fires
// immediately when the log is idle and -commit-max-records force-
// flushes a window whose staged backlog already justifies the fsync.
// With -async-depth > 1 each worker pipelines that many
// SubmitBatchAsync tickets instead of blocking per burst; the report's
// admission-latency line shows what the submitter-visible durability
// wait came to. -pprof serves net/http/pprof on the given address
// (e.g. localhost:6060) for profiling either mode while it runs.
// -gc-stats brackets the hub run with runtime.MemStats snapshots and
// appends heap allocations per alert plus a GC pause histogram to the
// report.
//
// A -mode-frac fraction of hosted tenants carries a personalized
// "IM with acknowledgement, fallback email" delivery mode executed by
// the hub's delivery stage through the shared mode executor: their IMs
// are acked with probability -im-ack-p, and unacked blocks fall back
// to email after -ack-timeout. The remaining tenants deliver through
// the flat simulated substrate.
//
// A -guaranteed-frac fraction of tenants subscribes at the guaranteed
// delivery tier: alerts that exhaust the in-memory attempt budget are
// persisted to a WAL-backed retry outbox (journal under -outbox-dir)
// and redelivered with escalating backoff starting at -outbox-backoff,
// surviving restarts. Everyone else is best-effort — exhausted alerts
// are dropped but counted. The run report ends with a per-tier
// delivered/duplicated/lost/escalated table and the outbox summary.
package main

import (
	"cmp"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	_ "net/http/pprof"
	"os"
	"path/filepath"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"simba/internal/addr"
	"simba/internal/alert"
	"simba/internal/clock"
	"simba/internal/core"
	"simba/internal/dist"
	"simba/internal/dmode"
	"simba/internal/faults"
	"simba/internal/harness"
	"simba/internal/hub"
	"simba/internal/im"
	"simba/internal/mab"
	"simba/internal/mdc"
	"simba/internal/metrics"
	"simba/internal/ops"
	"simba/internal/proxy"
	"simba/internal/wish"
)

func main() {
	hours := flag.Int("hours", 2, "virtual hours to run")
	hubMode := flag.Bool("hub", false, "run the multi-tenant hub experiment instead of the single-buddy day")
	users := flag.Int("users", 1000, "hub: hosted tenants")
	shards := flag.Int("shards", 8, "hub: shard-table size")
	alerts := flag.Int("alerts", 10000, "hub: alerts to submit")
	window := flag.Duration("window", 2*time.Millisecond, "hub: group-commit window")
	deliveryWindow := flag.Int("delivery-window", 0, "hub: in-flight deliveries per shard (0 = default, 1 = synchronous)")
	seed := flag.Int64("seed", 1, "hub: RNG seed")
	walLanes := flag.Int("wal-lanes", 0, "hub: independent WAL lanes, each with its own group commit and fsync pipeline (0 = one per shard)")
	walSegBytes := flag.Int64("wal-segment-bytes", 0, "hub: WAL segment size before rotation (0 = 4MiB default)")
	walCkptEvery := flag.Int64("wal-checkpoint-every", 0, "hub: WAL records between checkpoints (0 = default, <0 disables compaction)")
	modeFrac := flag.Float64("mode-frac", 0.1, "hub: fraction of tenants with a personalized IM-then-email delivery mode")
	ackTimeout := flag.Duration("ack-timeout", 50*time.Millisecond, "hub: ack wait before a hosted mode block falls back")
	imAckP := flag.Float64("im-ack-p", 0.7, "hub: probability a hosted IM delivery is acknowledged")
	burst := flag.Int("burst", 1, "hub: submit alerts in SubmitBatch bursts of this size (1 = one-at-a-time Submit)")
	commitMaxRecords := flag.Int("commit-max-records", 0, "hub: force-flush an in-progress commit window once this many records are staged (0 = commit MaxBatch)")
	asyncDepth := flag.Int("async-depth", 1, "hub: SubmitBatchAsync tickets each worker keeps in flight (1 = synchronous SubmitBatch)")
	submitInterval := flag.Duration("submit-interval", 0, "hub: pause each worker this long between bursts (paced low-load runs; 0 = full blast)")
	routeBatch := flag.Int("route-batch", 0, "hub: max queued alerts a shard loop routes per wakeup (0 = default, 1 = alert-at-a-time)")
	guaranteedFrac := flag.Float64("guaranteed-frac", 0.05, "hub: fraction of tenants on the guaranteed delivery tier (outbox-backed)")
	outboxDir := flag.String("outbox-dir", "", "hub: directory for the guaranteed-tier retry outbox journal (default: the run's temp dir)")
	outboxBackoff := flag.Duration("outbox-backoff", 50*time.Millisecond, "hub: base outbox redelivery backoff (doubles per round, capped)")
	gcStats := flag.Bool("gc-stats", false, "hub: report heap allocations per alert and the GC pause histogram for the run")
	adminAddr := flag.String("admin", "", "hub: serve the ops admin plane (healthz, shard health, tenant CRUD, rejuvenation) on this address (e.g. localhost:8025)")
	probePeriod := flag.Duration("probe-period", 0, "hub: shard watchdog probe cadence (0 = 1s default; supervision starts when -admin, -probe-period, or -rejuvenate-every is set)")
	rejuvenateEvery := flag.Duration("rejuvenate-every", 0, "hub: rolling shard rejuvenation period (0 = disabled)")
	linger := flag.Duration("linger", 0, "hub: keep serving this long after the workload (for poking the admin plane)")
	pprofAddr := flag.String("pprof", "", "serve net/http/pprof on this address (e.g. localhost:6060)")
	flag.Parse()
	if *pprofAddr != "" {
		go func() {
			log.Printf("pprof: listening on http://%s/debug/pprof/", *pprofAddr)
			if err := http.ListenAndServe(*pprofAddr, nil); err != nil {
				log.Printf("pprof: %v", err)
			}
		}()
	}
	if *hubMode {
		if err := runHub(hubParams{
			users: *users, shards: *shards, alerts: *alerts,
			window: *window, deliveryWindow: *deliveryWindow, seed: *seed,
			walLanes: *walLanes, walSegBytes: *walSegBytes, walCkptEvery: *walCkptEvery,
			modeFrac: *modeFrac, ackTimeout: *ackTimeout, imAckP: *imAckP,
			burst: *burst, routeBatch: *routeBatch,
			commitMaxRecords: *commitMaxRecords, asyncDepth: *asyncDepth,
			submitInterval: *submitInterval,
			guaranteedFrac: *guaranteedFrac, outboxDir: *outboxDir, outboxBackoff: *outboxBackoff,
			gcStats: *gcStats,
			admin:   *adminAddr, probePeriod: *probePeriod, rejuvenateEvery: *rejuvenateEvery,
			linger: *linger,
		}); err != nil {
			log.Fatal(err)
		}
		return
	}
	if err := run(*hours); err != nil {
		log.Fatal(err)
	}
}

func run(hours int) error {
	tmp, err := os.MkdirTemp("", "simbad")
	if err != nil {
		return err
	}
	defer os.RemoveAll(tmp)
	tb, err := harness.NewTestbed(harness.Options{TempDir: tmp, StartMDC: true})
	if err != nil {
		return err
	}
	tb.OnReceive = func(a *alert.Alert, at time.Time) {
		fmt.Printf("%s  buddy   received %q from %s\n", stamp(at), a.Subject, a.Source)
	}
	if err := tb.Start(); err != nil {
		return err
	}
	defer tb.Stop()
	fmt.Printf("%s  system  buddy online under MDC; user %s at the desk\n",
		stamp(tb.Sim.Now()), harness.UserName)

	// The election monitor from Section 2.1.
	site, err := tb.Web.CreateSite("cnn")
	if err != nil {
		return err
	}
	site.SetContent("election", "Florida recount: [Gore 2909135, Bush 2909142]", tb.Sim.Now())
	if err := tb.Proxy.AddMonitor(proxy.Monitor{
		Name: "florida-recount", URL: "cnn/election", PollEvery: time.Second,
		StartKeyword: "[", EndKeyword: "]",
		Source: "alert-proxy", Keywords: []string{"Election"}, Urgency: alert.UrgencyHigh,
	}); err != nil {
		return err
	}
	tb.Proxy.Start()

	// A critical home sensor and a tracked colleague.
	if _, err := tb.Home.AddSensor("basement-water", true); err != nil {
		return err
	}
	tb.Home.StartHeartbeats()
	tb.Wish.Track("yimin", harness.UserName)
	client, err := wish.NewClient(tb.Sim, tb.RNG, tb.Wish, "yimin", 2*time.Second)
	if err != nil {
		return err
	}
	client.MoveTo(10, 15)
	client.Start()
	defer client.Stop()

	// The day's script, spread across the run.
	total := time.Duration(hours) * time.Hour
	at := func(frac float64) time.Duration { return time.Duration(frac * float64(total)) }
	script := []struct {
		when time.Duration
		desc string
		do   func()
	}{
		{at(0.05), "recount number changes on cnn/election", func() {
			site.SetContent("election", "Florida recount: [Gore 2909135, Bush 2909537]", tb.Sim.Now())
		}},
		{at(0.15), "yimin walks to the east wing", func() { client.MoveTo(30, 15) }},
		{at(0.25), "basement water sensor fires", func() { _ = tb.Home.TriggerSensor("basement-water", "ON") }},
		{at(0.35), "IM service outage begins (4 minutes)", func() {
			tb.IMSvc.Outage().Set(true, tb.Sim.Now())
			tb.IMSvc.ForceLogoutAll()
		}},
		{at(0.35) + 4*time.Minute, "IM service back", func() { tb.IMSvc.Outage().Set(false, tb.Sim.Now()) }},
		{at(0.5), "desktop assistant: high-importance email while away", func() {
			tb.Assistant.IncomingEmail("boss@corp.sim", "contract signature needed", alert.UrgencyHigh)
		}},
		{at(0.6), "buddy crashes (unhandled exception)", func() { tb.Buddy.InjectCrash() }},
		{at(0.75), "yimin leaves the building", func() { client.MoveTo(200, 200) }},
		{at(0.85), "water sensor clears", func() { _ = tb.Home.TriggerSensor("basement-water", "OFF") }},
	}
	for _, ev := range script {
		ev := ev
		tb.Sim.AfterFunc(ev.when, func() {
			fmt.Printf("%s  fault   %s\n", stamp(tb.Sim.Now()), ev.desc)
			ev.do()
		})
	}
	// The user goes idle halfway so the assistant activates.
	tb.Sim.AfterFunc(at(0.45), func() {
		fmt.Printf("%s  user    steps away from the desktop\n", stamp(tb.Sim.Now()))
	})

	// Run, reporting new receipts as they land.
	seen := 0
	step := 5 * time.Second
	for elapsed := time.Duration(0); elapsed < total; elapsed += step {
		tb.Sim.Advance(step)
		time.Sleep(time.Millisecond)
		for _, r := range tb.User.Receipts()[seen:] {
			fmt.Printf("%s  user    %q via %s (end-to-end %v)\n",
				stamp(r.At), r.Alert.Subject, r.Channel, r.Latency.Round(time.Millisecond))
			seen++
		}
	}

	fmt.Printf("\n%s  system  run complete\n", stamp(tb.Sim.Now()))
	fmt.Printf("buddy counters: %s\n", tb.Buddy.Counters())
	fmt.Printf("MDC restarts: %d\n", tb.MDC.Restarts())
	fmt.Println("recovery journal:")
	for _, e := range tb.Journal.Entries() {
		fmt.Printf("  %s\n", e)
	}
	return nil
}

func stamp(t time.Time) string { return t.Format("15:04:05") }

// hubParams bundles the -hub experiment's knobs.
type hubParams struct {
	users, shards, alerts     int
	window                    time.Duration
	deliveryWindow            int
	seed                      int64
	walLanes                  int
	walSegBytes, walCkptEvery int64
	modeFrac                  float64
	ackTimeout                time.Duration
	imAckP                    float64
	burst, routeBatch         int
	commitMaxRecords          int
	asyncDepth                int
	submitInterval            time.Duration
	guaranteedFrac            float64
	outboxDir                 string
	outboxBackoff             time.Duration
	gcStats                   bool
	admin                     string
	probePeriod               time.Duration
	rejuvenateEvery           time.Duration
	linger                    time.Duration
}

// runHub hosts N tenants behind a K-way sharded hub and drives a
// portal-style workload through it, printing the capacity figures the
// hosted deployment is sized by: alerts/s, fsyncs per alert, commit
// batch size, the per-stage latency split (queue wait | route |
// deliver), delivery-stage concurrency, admission rejects, and the
// per-channel delivery split. A -mode-frac fraction of tenants executes
// a personalized IM-then-email delivery mode through the shared
// executor; the rest use the flat simulated substrate.
func runHub(p hubParams) error {
	users, shards, alerts := p.users, p.shards, p.alerts
	if users <= 0 || shards <= 0 || alerts <= 0 {
		return fmt.Errorf("simbad: -users, -shards, and -alerts must be positive")
	}
	if p.modeFrac < 0 || p.modeFrac > 1 || p.imAckP < 0 || p.imAckP > 1 {
		return fmt.Errorf("simbad: -mode-frac and -im-ack-p must be in [0,1]")
	}
	if p.guaranteedFrac < 0 || p.guaranteedFrac > 1 {
		return fmt.Errorf("simbad: -guaranteed-frac must be in [0,1]")
	}
	if p.burst < 1 {
		return fmt.Errorf("simbad: -burst must be >= 1")
	}
	if p.asyncDepth < 1 {
		return fmt.Errorf("simbad: -async-depth must be >= 1")
	}
	tmp, err := os.MkdirTemp("", "simbad-hub")
	if err != nil {
		return err
	}
	defer os.RemoveAll(tmp)

	clk := clock.NewReal()
	rng := dist.NewRNG(p.seed)
	sink := hub.NewSimSink(rng.Fork("substrate"), shards,
		dist.LogNormal{Mu: -1.4, Sigma: 0.5}, 0.01) // median ≈ 250ms substrate delay

	// Simulated IM + email channels for the mode-carrying tenants: an
	// IM send is acked with probability imAckP (the ack arrives shortly
	// after through the hub's ack intake); unacked blocks fall back to
	// email after -ack-timeout. Per-shard forked RNGs, as in SimSink.
	var h *hub.Hub
	var imSeq atomic.Uint64
	imRNGs := make([]*dist.RNG, shards)
	for i := range imRNGs {
		imRNGs[i] = rng.Fork(fmt.Sprintf("sim-im-shard-%d", i))
	}
	channels := core.NewChannels().
		Register(addr.TypeIM, core.ChannelFunc(func(req core.Send) (core.SendResult, error) {
			seq := imSeq.Add(1)
			if imRNGs[req.Shard%len(imRNGs)].Bool(p.imAckP) {
				handle := req.To
				go func() {
					time.Sleep(time.Millisecond)
					h.HandleIncoming(im.Message{From: handle, Text: core.AckText(seq)})
				}()
			}
			return core.SendResult{Seq: seq}, nil
		})).
		Register(addr.TypeEmail, core.ChannelFunc(func(req core.Send) (core.SendResult, error) {
			return core.SendResult{Confirmed: true}, nil
		}))

	outboxDir := p.outboxDir
	if outboxDir == "" {
		outboxDir = tmp
	} else if err := os.MkdirAll(outboxDir, 0o755); err != nil {
		return fmt.Errorf("creating outbox dir: %w", err)
	}
	// A bounded journal: the watchdog, stabilizer, and replay paths all
	// write here, and a lingering hub must not grow it without bound.
	journal := faults.NewRing(4096)
	h, err = hub.New(hub.Config{
		Clock:              clk,
		Sink:               sink,
		Channels:           channels,
		Journal:            journal,
		AckTimeout:         p.ackTimeout,
		WALPath:            filepath.Join(tmp, "hub.wal"),
		Shards:             shards,
		CommitWindow:       p.window,
		DeliveryWindow:     p.deliveryWindow,
		RNG:                rng,
		WALLanes:           p.walLanes,
		WALSegmentBytes:    p.walSegBytes,
		WALCheckpointEvery: p.walCkptEvery,
		RouteBatch:         p.routeBatch,
		CommitMaxRecords:   p.commitMaxRecords,
		OutboxPath:         filepath.Join(outboxDir, "hub.outbox"),
		OutboxBackoff:      p.outboxBackoff,
	})
	if err != nil {
		return err
	}
	modeUsers := int(p.modeFrac * float64(users))
	guaranteedUsers := int(p.guaranteedFrac * float64(users))
	for i := 0; i < users; i++ {
		user := fmt.Sprintf("user-%d", i)
		b, err := h.AddUser(user)
		if err != nil {
			return err
		}
		b.Pipeline().Classifier.Accept(mab.SourceRule{Source: "portal", Extract: mab.ExtractNative})
		b.Pipeline().Aggregator.Map("stocks", "Investment")
		if i < guaranteedUsers {
			if err := b.SetTier(core.TierGuaranteed); err != nil {
				return err
			}
		}
		if i < modeUsers {
			profile, err := core.NewProfile(user)
			if err != nil {
				return err
			}
			for _, a := range []addr.Address{
				{Type: addr.TypeIM, Name: "Pager IM", Target: user + "@im.sim", Enabled: true},
				{Type: addr.TypeEmail, Name: "Work email", Target: user + "@mail.sim", Enabled: true},
			} {
				if err := profile.Addresses().Register(a); err != nil {
					return err
				}
			}
			// Block timeout 0: Config.AckTimeout bounds the ack wait.
			if err := profile.DefineMode(dmode.IMThenEmail("Pager IM", "Work email", 0)); err != nil {
				return err
			}
			b.SetProfile(profile)
			if err := b.Subscribe("Investment", "IMThenEmail"); err != nil {
				return err
			}
		}
	}
	if err := h.Start(); err != nil {
		return err
	}
	fmt.Printf("hub: hosting %d users on %d shards (queue depth %d, commit window %v, %d mode tenants, %d guaranteed-tier, ack timeout %v, outbox backoff %v)\n",
		users, shards, hub.DefaultQueueDepth, p.window, modeUsers, guaranteedUsers, p.ackTimeout, p.outboxBackoff)

	// Supervision plane: shard watchdog + invariant checks + optional
	// rolling rejuvenation. On whenever any self-management flag asks
	// for it, so a bare -hub run keeps the zero-overhead hot path.
	var sup *hub.Supervisor
	if p.admin != "" || p.probePeriod > 0 || p.rejuvenateEvery > 0 {
		sup, err = h.Supervise(hub.SuperviseConfig{
			ProbePeriod:     p.probePeriod,
			RejuvenateEvery: p.rejuvenateEvery,
			Journal:         journal,
		})
		if err != nil {
			return err
		}
		defer sup.Stop()
		fmt.Printf("supervision: probing %d shards every %v, rejuvenate-every %v\n",
			shards, cmp.Or(p.probePeriod, mdc.DefaultUnitProbePeriod), p.rejuvenateEvery)
	}
	if p.admin != "" {
		admin, err := ops.NewServer(ops.Config{Hub: h, Supervisor: sup})
		if err != nil {
			return err
		}
		bound, err := admin.Listen(p.admin)
		if err != nil {
			return err
		}
		defer admin.Close()
		fmt.Printf("admin: listening on http://%s (GET /healthz /shards /users, POST /rejuvenate /shards/{id}/restart, DELETE /users/{user})\n", bound)
	}

	workers := 32
	if workers > alerts {
		workers = alerts
	}
	// With -gc-stats the run is bracketed by MemStats snapshots; the
	// forced GC gives the delta a clean baseline so warmup garbage from
	// setup does not pollute the per-alert numbers.
	var mem0, mem1 runtime.MemStats
	if p.gcStats {
		runtime.GC()
		runtime.ReadMemStats(&mem0)
	}
	start := time.Now()
	var wg sync.WaitGroup
	errc := make(chan error, workers)
	makeAlert := func(i int) hub.Submission {
		return hub.Submission{
			User: fmt.Sprintf("user-%d", i%users),
			Alert: &alert.Alert{
				ID:       fmt.Sprintf("a-%d", i),
				Source:   "portal",
				Keywords: []string{"stocks"},
				Subject:  "quote update",
				Urgency:  alert.UrgencyNormal,
				Created:  clk.Now(),
			},
		}
	}
	// Each worker owns a contiguous range of the alert index space and
	// offers it either one alert at a time (the Submit path), in
	// blocking SubmitBatch bursts, or — with -async-depth > 1 — through
	// a sliding window of SubmitBatchAsync tickets; overloaded entries
	// retry after the hint.
	per := (alerts + workers - 1) / workers
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			// retryLoop resubmits overloaded entries synchronously until
			// they land (overload is the slow path either way).
			retryLoop := func(burst []hub.Submission, errs []error) []hub.Submission {
				for {
					retry := burst[:0]
					var hint time.Duration
					for idx, err := range errs {
						var over *hub.OverloadError
						if errors.As(err, &over) {
							retry = append(retry, burst[idx])
							hint = over.RetryAfter
							continue
						}
						if err != nil {
							errc <- err
							return nil
						}
					}
					if len(retry) == 0 {
						return burst[:0]
					}
					time.Sleep(hint)
					burst = retry
					errs = h.SubmitBatch(burst)
				}
			}
			type flight struct {
				tk   *hub.Ticket
				subs []hub.Submission
			}
			free := make([][]hub.Submission, p.asyncDepth)
			for s := range free {
				free[s] = make([]hub.Submission, 0, p.burst)
			}
			window := make([]flight, 0, p.asyncDepth)
			settle := func(f flight) []hub.Submission {
				if subs := retryLoop(f.subs, f.tk.Wait()); subs != nil {
					return subs
				}
				return f.subs[:0]
			}
			lo, hi := w*per, (w+1)*per
			if hi > alerts {
				hi = alerts
			}
			for i := lo; i < hi; i += p.burst {
				if p.submitInterval > 0 && i > lo {
					time.Sleep(p.submitInterval)
				}
				var burst []hub.Submission
				if n := len(free); n > 0 {
					burst, free = free[n-1], free[:n-1]
				} else {
					burst = settle(window[0])
					window = window[1:]
				}
				for k := i; k < i+p.burst && k < hi; k++ {
					burst = append(burst, makeAlert(k))
				}
				if p.asyncDepth > 1 {
					window = append(window, flight{h.SubmitBatchAsync(burst, nil), burst})
					continue
				}
				if retryLoop(burst, h.SubmitBatch(burst)) == nil {
					return
				}
				free = append(free, burst[:0])
			}
			for _, f := range window {
				settle(f)
			}
		}(w)
	}
	wg.Wait()
	if p.linger > 0 {
		fmt.Printf("lingering %v for the admin plane...\n", p.linger)
		time.Sleep(p.linger)
	}
	// Stop self-management before draining: a rejuvenation racing the
	// drain would just fail against quiesced shards, but there is no
	// reason to journal that noise.
	if sup != nil {
		sup.Stop()
	}
	if err := h.Drain(); err != nil {
		return err
	}
	select {
	case err := <-errc:
		return err
	default:
	}
	elapsed := time.Since(start)
	if p.gcStats {
		runtime.ReadMemStats(&mem1)
	}

	st := h.Stats()
	c := h.Counters()
	fmt.Printf("\nsubmitted %d alerts in %v (%.0f alerts/s)\n",
		alerts, elapsed.Round(time.Millisecond), float64(alerts)/elapsed.Seconds())
	fmt.Printf("WAL: %d appends over %d fsyncs — %.1f records/fsync, %.2f fsyncs/alert\n",
		st.Appends, st.Syncs, st.MeanBatch, float64(st.Syncs)/float64(alerts))
	w := st.WAL
	fmt.Printf("WAL segments: %d live (created %d, replayed %d at start), %d checkpoints (gen %d), %.1f MB compacted, %d records retired, %.1f MB on disk\n",
		w.Segments, w.SegmentsCreated, w.SegmentsReplayed, w.Checkpoints, w.CheckpointGen,
		float64(w.CompactedBytes)/(1<<20), w.Retired, float64(w.DiskBytes)/(1<<20))
	fmt.Printf("fsync latency (µs): %s\n", h.WALFsyncLatency())
	fmt.Printf("commit batch sizes (records): %s\n", h.WALBatchSizes())
	fmt.Printf("staged ingest batch sizes (alerts): %s\n", w.StagedBatches)
	fmt.Printf("WAL lanes: %d\n", h.WALLanes())
	fmt.Printf("  %-4s %9s %8s %10s %10s\n", "lane", "records", "fsyncs", "rec/fsync", "disk(MB)")
	for i, ls := range st.WALPerLane {
		perFsync := 0.0
		if ls.Syncs > 0 {
			perFsync = float64(ls.Total) / float64(ls.Syncs)
		}
		fmt.Printf("  %-4d %9d %8d %10.1f %10.2f\n",
			i, ls.Total, ls.Syncs, perFsync, float64(ls.DiskBytes)/(1<<20))
		fmt.Printf("       fsync latency (µs): %s\n", ls.FsyncLatency)
	}
	lat := h.Latency().Summarize()
	fmt.Printf("end-to-end latency: mean %v, p50 %v, p99 %v (n=%d)\n",
		lat.Mean.Round(time.Microsecond), lat.P50.Round(time.Microsecond),
		lat.P99.Round(time.Microsecond), lat.Count)
	stages := h.Stages()
	// Machine-parseable (scripts/latency_smoke.sh keys off this line):
	// integer microseconds, space-separated.
	fmt.Printf("admission latency (us): p50 %d p99 %d n %d\n",
		stages.Admission.P50.Microseconds(), stages.Admission.P99.Microseconds(),
		stages.Admission.Count)
	fmt.Printf("stage split: queue-wait p50 %v / p99 %v | route p50 %v / p99 %v | deliver p50 %v / p99 %v\n",
		stages.QueueWait.P50.Round(time.Microsecond), stages.QueueWait.P99.Round(time.Microsecond),
		stages.Route.P50.Round(time.Microsecond), stages.Route.P99.Round(time.Microsecond),
		stages.Deliver.P50.Round(time.Microsecond), stages.Deliver.P99.Round(time.Microsecond))
	fmt.Printf("delivered %d, simulated drops %d, delivery retries %d, undeliverable %d, overload rejects %d, duplicates %d\n",
		c.Get("delivered"), sink.Dropped(), c.Get("delivery-retries"), c.Get("undeliverable"),
		c.Get("rejects-overload"), c.Get("duplicates"))
	fmt.Printf("delivered by channel: IM %d, SMS %d, email %d, flat substrate %d\n",
		st.DeliveredByChannel[addr.TypeIM], st.DeliveredByChannel[addr.TypeSMS],
		st.DeliveredByChannel[addr.TypeEmail], st.DeliveredByChannel[addr.TypeSink])
	fmt.Printf("delivery tiers:\n")
	fmt.Printf("  %-12s %10s %11s %6s %10s\n", "tier", "delivered", "duplicated", "lost", "escalated")
	for _, ts := range st.Tiers {
		fmt.Printf("  %-12s %10d %11d %6d %10d\n",
			ts.Tier, ts.Delivered, ts.Duplicated, ts.Lost, ts.Escalated)
	}
	if ob := st.Outbox; ob != nil {
		fmt.Printf("outbox: %d handoffs, %d redelivered (%d failed rounds, %d escalations), %d dropped, %d still pending\n",
			st.OutboxHandoffs, ob.Redelivered, ob.Rounds, ob.Escalated, ob.Dropped, ob.Pending)
	}
	for _, s := range st.Shards {
		fmt.Printf("  shard %d: gen %d (%d restarts, %d rejuvenations), peak queue depth %d, peak in-flight deliveries %d\n",
			s.Shard, s.Generation, s.Restarts, s.Rejuvenations, s.PeakDepth, s.PeakInFlight)
	}
	if sup != nil {
		fmt.Printf("supervision:\n")
		fmt.Printf("  probe latency (µs): %s\n", sup.ProbeLatency())
		fmt.Printf("  %-24s %8s %9s %9s %8s\n", "unit", "probes", "failures", "restarts", "errors")
		for _, us := range sup.WatchdogStats() {
			fmt.Printf("  %-24s %8d %9d %9d %8d\n", us.Name, us.Probes, us.Failures, us.Restarts, us.RestartErrors)
		}
		fmt.Printf("  %-24s %8s %9s %6s %12s\n", "invariant", "runs", "failures", "heals", "escalations")
		for _, cs := range sup.InvariantStats() {
			fmt.Printf("  %-24s %8d %9d %6d %12d\n", cs.Name, cs.Executions, cs.Failures, cs.Heals, cs.Escalations)
		}
		fmt.Printf("  journal: %d entries (%d rejuvenations, %d daemon restarts, %d unrecovered)\n",
			journal.Len(), journal.Count(faults.KindRejuvenation),
			journal.Count(faults.KindDaemonRestart), journal.Count(faults.KindUnrecovered))
	}
	if p.gcStats {
		reportGCStats(&mem0, &mem1, alerts)
	}
	return nil
}

// reportGCStats prints the heap-allocation and GC-pause cost of the
// run from the bracketing MemStats snapshots: objects and bytes
// allocated per submitted alert, the GC cycle count, and a histogram
// of the stop-the-world pauses that landed inside the run.
func reportGCStats(before, after *runtime.MemStats, alerts int) {
	mallocs := after.Mallocs - before.Mallocs
	bytes := after.TotalAlloc - before.TotalAlloc
	cycles := after.NumGC - before.NumGC
	fmt.Printf("\nGC stats (-gc-stats):\n")
	fmt.Printf("  heap allocations: %d objects, %.1f MB total — %.1f allocs/alert, %.0f B/alert\n",
		mallocs, float64(bytes)/(1<<20),
		float64(mallocs)/float64(alerts), float64(bytes)/float64(alerts))
	fmt.Printf("  GC cycles: %d, total pause %v\n",
		cycles, (time.Duration(after.PauseTotalNs-before.PauseTotalNs) * time.Nanosecond).Round(time.Microsecond))
	// PauseNs is a circular buffer indexed by (NumGC+255)%256; walk the
	// cycles the run triggered (bounded by the buffer length).
	n := cycles
	if n > uint32(len(after.PauseNs)) {
		n = uint32(len(after.PauseNs))
	}
	var pauses metrics.Histogram
	for i := uint32(0); i < n; i++ {
		gc := after.NumGC - i // cycle numbers, newest first
		pauses.Observe(int64(after.PauseNs[(gc+255)%256] / 1000))
	}
	fmt.Printf("  GC pauses (µs): %s\n", pauses.Snapshot())
}
