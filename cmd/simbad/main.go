// Command simbad runs a live SIMBA deployment in simulated time and
// narrates it: every alert source from the paper (alert proxy,
// web-store monitor, Aladdin home, WISH location tracking, desktop
// assistant) feeds one MyAlertBuddy under a Master Daemon Controller,
// delivering to one user, while a fault script exercises the
// availability machinery. Events stream to stdout as virtual time
// advances.
//
// Usage:
//
//	simbad [-hours N]
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"time"

	"simba/internal/alert"
	"simba/internal/harness"
	"simba/internal/proxy"
	"simba/internal/wish"
)

func main() {
	hours := flag.Int("hours", 2, "virtual hours to run")
	flag.Parse()
	if err := run(*hours); err != nil {
		log.Fatal(err)
	}
}

func run(hours int) error {
	tmp, err := os.MkdirTemp("", "simbad")
	if err != nil {
		return err
	}
	defer os.RemoveAll(tmp)
	tb, err := harness.NewTestbed(harness.Options{TempDir: tmp, StartMDC: true})
	if err != nil {
		return err
	}
	tb.OnReceive = func(a *alert.Alert, at time.Time) {
		fmt.Printf("%s  buddy   received %q from %s\n", stamp(at), a.Subject, a.Source)
	}
	if err := tb.Start(); err != nil {
		return err
	}
	defer tb.Stop()
	fmt.Printf("%s  system  buddy online under MDC; user %s at the desk\n",
		stamp(tb.Sim.Now()), harness.UserName)

	// The election monitor from Section 2.1.
	site, err := tb.Web.CreateSite("cnn")
	if err != nil {
		return err
	}
	site.SetContent("election", "Florida recount: [Gore 2909135, Bush 2909142]", tb.Sim.Now())
	if err := tb.Proxy.AddMonitor(proxy.Monitor{
		Name: "florida-recount", URL: "cnn/election", PollEvery: time.Second,
		StartKeyword: "[", EndKeyword: "]",
		Source: "alert-proxy", Keywords: []string{"Election"}, Urgency: alert.UrgencyHigh,
	}); err != nil {
		return err
	}
	tb.Proxy.Start()

	// A critical home sensor and a tracked colleague.
	if _, err := tb.Home.AddSensor("basement-water", true); err != nil {
		return err
	}
	tb.Home.StartHeartbeats()
	tb.Wish.Track("yimin", harness.UserName)
	client, err := wish.NewClient(tb.Sim, tb.RNG, tb.Wish, "yimin", 2*time.Second)
	if err != nil {
		return err
	}
	client.MoveTo(10, 15)
	client.Start()
	defer client.Stop()

	// The day's script, spread across the run.
	total := time.Duration(hours) * time.Hour
	at := func(frac float64) time.Duration { return time.Duration(frac * float64(total)) }
	script := []struct {
		when time.Duration
		desc string
		do   func()
	}{
		{at(0.05), "recount number changes on cnn/election", func() {
			site.SetContent("election", "Florida recount: [Gore 2909135, Bush 2909537]", tb.Sim.Now())
		}},
		{at(0.15), "yimin walks to the east wing", func() { client.MoveTo(30, 15) }},
		{at(0.25), "basement water sensor fires", func() { _ = tb.Home.TriggerSensor("basement-water", "ON") }},
		{at(0.35), "IM service outage begins (4 minutes)", func() {
			tb.IMSvc.Outage().Set(true, tb.Sim.Now())
			tb.IMSvc.ForceLogoutAll()
		}},
		{at(0.35) + 4*time.Minute, "IM service back", func() { tb.IMSvc.Outage().Set(false, tb.Sim.Now()) }},
		{at(0.5), "desktop assistant: high-importance email while away", func() {
			tb.Assistant.IncomingEmail("boss@corp.sim", "contract signature needed", alert.UrgencyHigh)
		}},
		{at(0.6), "buddy crashes (unhandled exception)", func() { tb.Buddy.InjectCrash() }},
		{at(0.75), "yimin leaves the building", func() { client.MoveTo(200, 200) }},
		{at(0.85), "water sensor clears", func() { _ = tb.Home.TriggerSensor("basement-water", "OFF") }},
	}
	for _, ev := range script {
		ev := ev
		tb.Sim.AfterFunc(ev.when, func() {
			fmt.Printf("%s  fault   %s\n", stamp(tb.Sim.Now()), ev.desc)
			ev.do()
		})
	}
	// The user goes idle halfway so the assistant activates.
	tb.Sim.AfterFunc(at(0.45), func() {
		fmt.Printf("%s  user    steps away from the desktop\n", stamp(tb.Sim.Now()))
	})

	// Run, reporting new receipts as they land.
	seen := 0
	step := 5 * time.Second
	for elapsed := time.Duration(0); elapsed < total; elapsed += step {
		tb.Sim.Advance(step)
		time.Sleep(time.Millisecond)
		for _, r := range tb.User.Receipts()[seen:] {
			fmt.Printf("%s  user    %q via %s (end-to-end %v)\n",
				stamp(r.At), r.Alert.Subject, r.Channel, r.Latency.Round(time.Millisecond))
			seen++
		}
	}

	fmt.Printf("\n%s  system  run complete\n", stamp(tb.Sim.Now()))
	fmt.Printf("buddy counters: %s\n", tb.Buddy.Counters())
	fmt.Printf("MDC restarts: %d\n", tb.MDC.Restarts())
	fmt.Println("recovery journal:")
	for _, e := range tb.Journal.Entries() {
		fmt.Printf("  %s\n", e)
	}
	return nil
}

func stamp(t time.Time) string { return t.Format("15:04:05") }
