// Benchmarks regenerating every quantitative result in the paper's
// evaluation (one benchmark per experiment; see DESIGN.md's experiment
// index), the design-choice ablations, and micro-benchmarks of the
// SIMBA library's hot paths. Macro benchmarks report the measured
// virtual-time latencies via ReportMetric so `go test -bench .` shows
// the paper-vs-measured figures alongside wall-clock cost.
package simba_test

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"simba/internal/addr"
	"simba/internal/alert"
	"simba/internal/clock"
	"simba/internal/core"
	"simba/internal/dist"
	"simba/internal/dmode"
	"simba/internal/harness"
	"simba/internal/hub"
	"simba/internal/im"
	"simba/internal/mab"
	"simba/internal/plog"
	"simba/internal/sss"
)

func rowDuration(res *harness.Result, metric string) (time.Duration, bool) {
	for _, row := range res.Rows {
		if row.Metric == metric {
			d, err := time.ParseDuration(row.Measured)
			if err != nil {
				return 0, false
			}
			return d, true
		}
	}
	return 0, false
}

// BenchmarkE1IMDelivery — Section 5: one-way IM < 1 s, ack ≈ 1.5 s.
func BenchmarkE1IMDelivery(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := harness.E1IMDelivery(b.TempDir(), 10)
		if err != nil {
			b.Fatal(err)
		}
		if d, ok := rowDuration(res, "one-way IM delivery (mean)"); ok {
			b.ReportMetric(float64(d.Milliseconds()), "oneway-ms")
		}
		if d, ok := rowDuration(res, "ack with pessimistic logging (mean)"); ok {
			b.ReportMetric(float64(d.Milliseconds()), "ack-ms")
		}
	}
}

// BenchmarkE2ProxyRouting — Section 5: detection → user ≈ 2.5 s.
func BenchmarkE2ProxyRouting(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := harness.E2ProxyRouting(b.TempDir(), 6)
		if err != nil {
			b.Fatal(err)
		}
		if d, ok := rowDuration(res, "detection → user delivery (mean)"); ok {
			b.ReportMetric(float64(d.Milliseconds()), "detect-to-user-ms")
		}
	}
}

// BenchmarkE3AladdinEndToEnd — Section 5: remote press → IM ≈ 11 s.
func BenchmarkE3AladdinEndToEnd(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := harness.E3Aladdin(b.TempDir(), 5)
		if err != nil {
			b.Fatal(err)
		}
		if d, ok := rowDuration(res, "remote press → user IM (mean)"); ok {
			b.ReportMetric(float64(d.Milliseconds()), "end-to-end-ms")
		}
	}
}

// BenchmarkE4WISHLocation — Section 5: laptop send → subscriber ≈ 5 s.
func BenchmarkE4WISHLocation(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := harness.E4WISH(b.TempDir(), 5)
		if err != nil {
			b.Fatal(err)
		}
		if d, ok := rowDuration(res, "laptop send → subscriber IM (mean)"); ok {
			b.ReportMetric(float64(d.Milliseconds()), "send-to-user-ms")
		}
	}
}

// BenchmarkE5FaultMonth — Section 5's one-month availability study,
// compressed to 3 simulated days per iteration (run cmd/simba-bench
// for the full 30-day table).
func BenchmarkE5FaultMonth(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := harness.E5FaultMonth(b.TempDir(), 3)
		if err != nil {
			b.Fatal(err)
		}
		_ = res
	}
}

// BenchmarkE6BaselineRedundancy — naive 2-email+2-SMS vs SIMBA.
func BenchmarkE6BaselineRedundancy(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := harness.E6Baseline(b.TempDir(), 15); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkE7PortalScale — Section 1's portal workload (≈9 alerts/s).
func BenchmarkE7PortalScale(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := harness.E7PortalScale(1000, 10000); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAblationNoPlog — value of pessimistic logging.
func BenchmarkAblationNoPlog(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := harness.AblationNoPlog(b.TempDir(), 4); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAblationNoMonkey — value of the dialog-handling monkey.
func BenchmarkAblationNoMonkey(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := harness.AblationNoMonkey(b.TempDir(), 2); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkA4AckTimeoutSweep — delivery-mode timeout tradeoff.
func BenchmarkA4AckTimeoutSweep(b *testing.B) {
	for i := 0; i < b.N; i++ {
		timeouts := []time.Duration{2 * time.Second, 15 * time.Second}
		if _, err := harness.A4AckTimeoutSweep(b.TempDir(), 8, timeouts); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAblationProbePeriod — MDC probe-period sweep.
func BenchmarkAblationProbePeriod(b *testing.B) {
	for i := 0; i < b.N; i++ {
		periods := []time.Duration{time.Minute, 3 * time.Minute}
		if _, err := harness.AblationProbePeriod(b.TempDir(), periods); err != nil {
			b.Fatal(err)
		}
	}
}

// --- micro-benchmarks of the library's hot paths -----------------------

// BenchmarkF4DeliveryModeCodec — Figure 4's XML document round trip.
func BenchmarkF4DeliveryModeCodec(b *testing.B) {
	m := dmode.Figure4()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		data, err := m.Marshal()
		if err != nil {
			b.Fatal(err)
		}
		if _, err := dmode.Unmarshal(data); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAlertWireCodec — the alert payload round trip.
func BenchmarkAlertWireCodec(b *testing.B) {
	a := &alert.Alert{
		ID: "bench-1", Source: "bench", Keywords: []string{"Stocks", "Earnings"},
		Subject: "MSFT earnings", Body: "Quarterly results are out.",
		Urgency: alert.UrgencyHigh, Created: time.Unix(985597200, 0),
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		data, err := a.MarshalText()
		if err != nil {
			b.Fatal(err)
		}
		var out alert.Alert
		if err := out.UnmarshalText(data); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkEngineDeliverEmail — one fire-and-forget delivery through
// the engine with an instant transport.
func BenchmarkEngineDeliverEmail(b *testing.B) {
	clk := clock.NewReal()
	engine, err := core.NewEngine(clk, nil, instantSender{})
	if err != nil {
		b.Fatal(err)
	}
	reg := addr.NewRegistry("u")
	if err := reg.Register(addr.Address{Type: addr.TypeEmail, Name: "inbox", Target: "u@x", Enabled: true}); err != nil {
		b.Fatal(err)
	}
	mode := &dmode.Mode{Name: "m", Blocks: []dmode.Block{{Actions: []dmode.Action{{Address: "inbox"}}}}}
	a := &alert.Alert{ID: "x", Source: "s", Urgency: alert.UrgencyNormal, Created: clk.Now()}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := engine.Deliver(a, reg, mode); err != nil {
			b.Fatal(err)
		}
	}
}

type instantSender struct{}

func (instantSender) Send(to, subject, body string) error { return nil }

// BenchmarkClassifyAggregateFilter — the MyAlertBuddy pipeline stages.
func BenchmarkClassifyAggregateFilter(b *testing.B) {
	cls := mab.NewClassifier()
	cls.Accept(mab.SourceRule{Source: "portal", Extract: mab.ExtractNative})
	agg := mab.NewAggregator()
	agg.Map("Stocks", "Investment")
	fil := mab.NewFilter()
	a := &alert.Alert{
		ID: "x", Source: "portal", Keywords: []string{"Stocks"},
		Urgency: alert.UrgencyNormal, Created: time.Unix(985597200, 0),
	}
	now := a.Created
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		kws, ok := cls.Classify(a, "")
		if !ok {
			b.Fatal("rejected")
		}
		cat := agg.Aggregate(kws)
		if !fil.Allow(cat, now) {
			b.Fatal("filtered")
		}
	}
}

// BenchmarkPlogLogReceived — pessimistic-log append+fsync cost.
func BenchmarkPlogLogReceived(b *testing.B) {
	l, err := plog.Open(b.TempDir() + "/bench.plog")
	if err != nil {
		b.Fatal(err)
	}
	defer l.Close()
	payload := []byte("SIMBA-ALERT/1\nID: x\n...")
	at := time.Unix(985597200, 0)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := l.LogReceived(fmt.Sprintf("k-%d", i), payload, at); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSSSWrite — soft-state store update + event dispatch.
func BenchmarkSSSWrite(b *testing.B) {
	sim := clock.NewSim(time.Time{})
	s, err := sss.NewStore(sim, "bench")
	if err != nil {
		b.Fatal(err)
	}
	if err := s.Define(sss.Spec{Name: "v", RefreshEvery: time.Hour, MaxMissed: 3}); err != nil {
		b.Fatal(err)
	}
	events := 0
	s.Subscribe("", func(sss.Event) { events++ })
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := s.Write("v", fmt.Sprintf("state-%d", i&1)); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkWISHLocate — fingerprint localization over the grid.
func BenchmarkWISHLocate(b *testing.B) {
	tb, err := harness.NewTestbed(harness.Options{TempDir: b.TempDir()})
	if err != nil {
		b.Fatal(err)
	}
	rng := dist.NewRNG(1)
	strengths := []float64{-60, -70, -65, -72}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := tb.Wish.Locate(strengths); err != nil {
			b.Fatal(err)
		}
	}
	_ = rng
}

// BenchmarkHubThroughput — the multi-tenant hosting experiment: 1,000
// hosted buddies on 8 shards over one shared group-commit WAL, fed a
// portal workload by concurrent submitters with overload retry.
// Reports sustained alerts/s and fsync amplification; the
// fsyncs-per-alert figure should be ≥10× below the per-append plog
// baseline (2 fsyncs per alert: RECV + DONE).
func BenchmarkHubThroughput(b *testing.B) {
	const users, alerts, workers = 1000, 5000, 32
	clk := clock.NewReal()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		rng := dist.NewRNG(int64(i) + 1)
		sink := hub.NewSimSink(rng.Fork("substrate"), 8, nil, 0)
		h, err := hub.New(hub.Config{
			Clock: clk, Sink: sink,
			WALPath: b.TempDir() + "/hub.wal",
			Shards:  8, QueueDepth: 512,
			CommitWindow: 2 * time.Millisecond,
			RNG:          rng,
		})
		if err != nil {
			b.Fatal(err)
		}
		for u := 0; u < users; u++ {
			bd, err := h.AddUser(fmt.Sprintf("user-%d", u))
			if err != nil {
				b.Fatal(err)
			}
			bd.Pipeline().Classifier.Accept(mab.SourceRule{Source: "portal", Extract: mab.ExtractNative})
			bd.Pipeline().Aggregator.Map("stocks", "Investment")
		}
		if err := h.Start(); err != nil {
			b.Fatal(err)
		}
		b.StartTimer()
		start := time.Now()
		var wg sync.WaitGroup
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				for j := w; j < alerts; j += workers {
					a := &alert.Alert{
						ID: fmt.Sprintf("a-%d-%d", i, j), Source: "portal",
						Keywords: []string{"stocks"}, Subject: "quote update",
						Urgency: alert.UrgencyNormal, Created: clk.Now(),
					}
					for {
						err := h.Submit(fmt.Sprintf("user-%d", j%users), a)
						var over *hub.OverloadError
						if errors.As(err, &over) {
							time.Sleep(over.RetryAfter)
							continue
						}
						if err != nil {
							b.Error(err)
							return
						}
						break
					}
				}
			}(w)
		}
		wg.Wait()
		if err := h.Drain(); err != nil {
			b.Fatal(err)
		}
		elapsed := time.Since(start)
		st := h.Stats()
		b.ReportMetric(float64(alerts)/elapsed.Seconds(), "alerts/s")
		b.ReportMetric(float64(st.Syncs)/float64(alerts), "fsyncs/alert")
		b.ReportMetric(st.MeanBatch, "records/fsync")
	}
}

// BenchmarkHubBatchIngest — the batched-ingest experiment: the same
// hosted portal workload as BenchmarkHubThroughput (1,000 buddies, 8
// shards, shared group-commit WAL) but offered in bursts of 64 through
// SubmitBatch by 128 concurrent submitters. A burst pays for
// validation, admission, and — decisively — the group-commit
// durability wait once instead of per alert, so sustained ingest must
// reach ≥2× the one-at-a-time BenchmarkHubThroughput figure at equal
// shard count; see BENCH_hub.json for recorded runs.
func BenchmarkHubBatchIngest(b *testing.B) {
	for _, lanes := range []int{1, 4, 8} {
		b.Run(fmt.Sprintf("lanes-%d", lanes), func(b *testing.B) {
			benchHubBatchIngest(b, lanes, false)
		})
	}
	// The supervised variant prices the self-management plane: watchdog
	// probes and invariant checks read shard atomics only, never shard
	// locks, so this must stay within noise of lanes-8.
	b.Run("lanes-8-supervised", func(b *testing.B) {
		benchHubBatchIngest(b, 8, true)
	})
}

// benchIngestFixture preallocates everything the timed submit loop
// would otherwise allocate — user names, per-alert IDs, and the alert
// structs themselves — so the benchmark's allocs/op measures the hub's
// ingest path, not the harness's fmt.Sprintf traffic. Built under
// StopTimer each iteration (IDs embed the iteration index to stay
// dedup-unique across b.N).
type benchIngestFixture struct {
	names  []string
	alerts []alert.Alert
}

func newBenchIngestFixture(iter, users, alerts int, clk clock.Clock) *benchIngestFixture {
	f := &benchIngestFixture{
		names:  make([]string, users),
		alerts: make([]alert.Alert, alerts),
	}
	for u := range f.names {
		f.names[u] = fmt.Sprintf("user-%d", u)
	}
	kws := []string{"stocks"} // read-only downstream: one shared slice
	now := clk.Now()
	for k := range f.alerts {
		f.alerts[k] = alert.Alert{
			ID: fmt.Sprintf("a-%d-%d", iter, k), Source: "portal",
			Keywords: kws, Subject: "quote update",
			Urgency: alert.UrgencyNormal, Created: now,
		}
	}
	return f
}

// sub returns the k-th submission, referencing preallocated storage.
func (f *benchIngestFixture) sub(k int) hub.Submission {
	return hub.Submission{User: f.names[k%len(f.names)], Alert: &f.alerts[k]}
}

// benchHubBatchIngest runs the batched portal workload against an
// 8-shard hub whose WAL is partitioned into the given number of lanes
// (shard i stages on lane i%lanes), so the sweep isolates what
// parallel group commit buys at equal shard count. With supervised,
// the full supervision plane (shard watchdog + invariant checks) runs
// at its default cadence throughout the ingest.
func benchHubBatchIngest(b *testing.B, lanes int, supervised bool) {
	const users, alerts, submitters, burstSize = 1000, 20000, 128, 64
	clk := clock.NewReal()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		rng := dist.NewRNG(int64(i) + 1)
		sink := hub.NewSimSink(rng.Fork("substrate"), 8, nil, 0)
		h, err := hub.New(hub.Config{
			Clock: clk, Sink: sink,
			WALPath: b.TempDir() + "/hub.wal",
			Shards:  8, QueueDepth: 512,
			WALLanes:     lanes,
			CommitWindow: 2 * time.Millisecond,
			RNG:          rng,
		})
		if err != nil {
			b.Fatal(err)
		}
		fix := newBenchIngestFixture(i, users, alerts, clk)
		for u := 0; u < users; u++ {
			bd, err := h.AddUser(fix.names[u])
			if err != nil {
				b.Fatal(err)
			}
			bd.Pipeline().Classifier.Accept(mab.SourceRule{Source: "portal", Extract: mab.ExtractNative})
			bd.Pipeline().Aggregator.Map("stocks", "Investment")
		}
		if err := h.Start(); err != nil {
			b.Fatal(err)
		}
		var sup *hub.Supervisor
		if supervised {
			if sup, err = h.Supervise(hub.SuperviseConfig{}); err != nil {
				b.Fatal(err)
			}
		}
		b.StartTimer()
		start := time.Now()
		var wg sync.WaitGroup
		per := alerts / submitters
		for w := 0; w < submitters; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				burst := make([]hub.Submission, 0, burstSize)
				lo, hi := w*per, (w+1)*per
				for j := lo; j < hi; j += burstSize {
					burst = burst[:0]
					for k := j; k < j+burstSize && k < hi; k++ {
						burst = append(burst, fix.sub(k))
					}
					for len(burst) > 0 {
						errs := h.SubmitBatch(burst)
						retry := burst[:0]
						var hint time.Duration
						for idx, err := range errs {
							var over *hub.OverloadError
							if errors.As(err, &over) {
								retry = append(retry, burst[idx])
								hint = over.RetryAfter
								continue
							}
							if err != nil {
								b.Error(err)
								return
							}
						}
						burst = retry
						if len(burst) > 0 {
							time.Sleep(hint)
						}
					}
				}
			}(w)
		}
		wg.Wait()
		if sup != nil {
			sup.Stop()
		}
		if err := h.Drain(); err != nil {
			b.Fatal(err)
		}
		elapsed := time.Since(start)
		st := h.Stats()
		b.ReportMetric(float64(alerts)/elapsed.Seconds(), "alerts/s")
		b.ReportMetric(float64(st.Syncs)/float64(alerts), "fsyncs/alert")
		b.ReportMetric(st.MeanBatch, "records/fsync")
		b.ReportMetric(st.WAL.StagedBatches.Mean(), "alerts/staged-batch")
	}
}

// BenchmarkHubAsyncIngest — the pipelined-ingest experiment: the
// batched portal workload of BenchmarkHubBatchIngest offered by a
// SMALL submitter pool (the client-limited regime, where a blocking
// submitter leaves the commit pipeline idle between bursts), each
// submitter keeping a sliding window of `depth` SubmitBatchAsync
// tickets in flight. depth-1 IS the synchronous baseline — the window
// degenerates to submit-then-wait, exactly SubmitBatch's blocking
// behavior — so the sweep isolates what pipelining buys at equal
// submitter and lane count: depth ≥ 4 must reach ≥1.3× the depth-1
// figure. (Single host, single core shared between submitters, WAL
// committers, and delivery — see BENCH_hub.json for recorded runs and
// caveats.) Also reports the adaptive scheduler's p99 admission
// latency.
func BenchmarkHubAsyncIngest(b *testing.B) {
	for _, cfg := range []struct{ lanes, depth, submitters int }{
		{4, 1, 1}, // synchronous baseline: window of one ticket
		{4, 4, 1},
		{4, 8, 1},
	} {
		b.Run(fmt.Sprintf("lanes-%d-depth-%d-sub-%d", cfg.lanes, cfg.depth, cfg.submitters), func(b *testing.B) {
			benchHubAsyncIngest(b, cfg.lanes, cfg.depth, cfg.submitters)
		})
	}
}

func benchHubAsyncIngest(b *testing.B, lanes, depth, submitters int) {
	const users, alerts, burstSize = 1000, 20000, 64
	clk := clock.NewReal()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		rng := dist.NewRNG(int64(i) + 1)
		sink := hub.NewSimSink(rng.Fork("substrate"), 8, nil, 0)
		// QueueDepth sized so the deepest window (submitters × depth ×
		// burstSize alerts in flight) fits admission capacity: the sweep
		// measures pipelining, not overload-retry thrash.
		h, err := hub.New(hub.Config{
			Clock: clk, Sink: sink,
			WALPath: b.TempDir() + "/hub.wal",
			Shards:  8, QueueDepth: 2048,
			WALLanes:      lanes,
			CommitWindow:  2 * time.Millisecond,
			AsyncInFlight: submitters * depth,
			RNG:           rng,
		})
		if err != nil {
			b.Fatal(err)
		}
		fix := newBenchIngestFixture(i, users, alerts, clk)
		for u := 0; u < users; u++ {
			bd, err := h.AddUser(fix.names[u])
			if err != nil {
				b.Fatal(err)
			}
			bd.Pipeline().Classifier.Accept(mab.SourceRule{Source: "portal", Extract: mab.ExtractNative})
			bd.Pipeline().Aggregator.Map("stocks", "Investment")
		}
		if err := h.Start(); err != nil {
			b.Fatal(err)
		}
		b.StartTimer()
		start := time.Now()
		var wg sync.WaitGroup
		per := alerts / submitters
		for w := 0; w < submitters; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				type flight struct {
					tk   *hub.Ticket
					subs []hub.Submission
				}
				free := make([][]hub.Submission, depth)
				for s := range free {
					free[s] = make([]hub.Submission, 0, burstSize)
				}
				window := make([]flight, 0, depth)
				scratch := make([]hub.Submission, 0, burstSize)
				// settle waits out a ticket and resubmits (synchronously —
				// overload is the slow path) any overloaded entries, then
				// returns the flight's burst slice for reuse.
				settle := func(f flight) []hub.Submission {
					retry := scratch[:0]
					var hint time.Duration
					for idx, err := range f.tk.Wait() {
						var over *hub.OverloadError
						if errors.As(err, &over) {
							retry = append(retry, f.subs[idx])
							hint = over.RetryAfter
							continue
						}
						if err != nil {
							b.Error(err)
						}
					}
					for len(retry) > 0 {
						time.Sleep(hint)
						next := retry[:0]
						for idx, err := range h.SubmitBatch(retry) {
							var over *hub.OverloadError
							if errors.As(err, &over) {
								next = append(next, retry[idx])
								hint = over.RetryAfter
								continue
							}
							if err != nil {
								b.Error(err)
							}
						}
						retry = next
					}
					return f.subs[:0]
				}
				lo, hi := w*per, (w+1)*per
				for j := lo; j < hi; j += burstSize {
					var burst []hub.Submission
					if n := len(free); n > 0 {
						burst, free = free[n-1], free[:n-1]
					} else {
						burst = settle(window[0])
						window = window[1:]
					}
					for k := j; k < j+burstSize && k < hi; k++ {
						burst = append(burst, fix.sub(k))
					}
					window = append(window, flight{h.SubmitBatchAsync(burst, nil), burst})
				}
				for _, f := range window {
					settle(f)
				}
			}(w)
		}
		wg.Wait()
		if err := h.Drain(); err != nil {
			b.Fatal(err)
		}
		elapsed := time.Since(start)
		st := h.Stats()
		b.ReportMetric(float64(alerts)/elapsed.Seconds(), "alerts/s")
		b.ReportMetric(float64(st.Syncs)/float64(alerts), "fsyncs/alert")
		b.ReportMetric(st.MeanBatch, "records/fsync")
		b.ReportMetric(float64(h.Stages().Admission.P99.Microseconds()), "admit-p99-us")
	}
}

// BenchmarkHubGuaranteedOverhead — the QoS-tier experiment: the
// batched portal workload of BenchmarkHubBatchIngest against a flaky
// substrate (10% simulated drop, attempt budget 2), with 0% vs 50% of
// tenants on the guaranteed tier. The 0% variant prices the tier
// plumbing alone (plan tier resolution + per-tier counters) and must
// stay within noise of BenchmarkHubBatchIngest; the 50% variant adds
// the real cost — WAL-backed outbox handoffs for every
// attempt-exhausted guaranteed alert — which stays off the ingest hot
// path entirely. See BENCH_hub.json for recorded runs.
func BenchmarkHubGuaranteedOverhead(b *testing.B) {
	const users, alerts, submitters, burstSize = 1000, 20000, 128, 64
	for _, frac := range []struct {
		name string
		frac float64
	}{{"guaranteed-0pct", 0}, {"guaranteed-50pct", 0.5}} {
		b.Run(frac.name, func(b *testing.B) {
			clk := clock.NewReal()
			for i := 0; i < b.N; i++ {
				b.StopTimer()
				rng := dist.NewRNG(int64(i) + 1)
				sink := hub.NewSimSink(rng.Fork("substrate"), 8, nil, 0.1)
				h, err := hub.New(hub.Config{
					Clock: clk, Sink: sink,
					WALPath: b.TempDir() + "/hub.wal",
					Shards:  8, QueueDepth: 512,
					CommitWindow:        2 * time.Millisecond,
					DeliveryMaxAttempts: 2,
					OutboxPath:          b.TempDir() + "/hub.outbox",
					OutboxBackoff:       time.Millisecond,
					RNG:                 rng,
				})
				if err != nil {
					b.Fatal(err)
				}
				guaranteed := int(frac.frac * users)
				for u := 0; u < users; u++ {
					bd, err := h.AddUser(fmt.Sprintf("user-%d", u))
					if err != nil {
						b.Fatal(err)
					}
					bd.Pipeline().Classifier.Accept(mab.SourceRule{Source: "portal", Extract: mab.ExtractNative})
					bd.Pipeline().Aggregator.Map("stocks", "Investment")
					if u < guaranteed {
						if err := bd.SetTier(core.TierGuaranteed); err != nil {
							b.Fatal(err)
						}
					}
				}
				if err := h.Start(); err != nil {
					b.Fatal(err)
				}
				b.StartTimer()
				start := time.Now()
				var wg sync.WaitGroup
				per := alerts / submitters
				for w := 0; w < submitters; w++ {
					wg.Add(1)
					go func(w int) {
						defer wg.Done()
						burst := make([]hub.Submission, 0, burstSize)
						lo, hi := w*per, (w+1)*per
						for j := lo; j < hi; j += burstSize {
							burst = burst[:0]
							for k := j; k < j+burstSize && k < hi; k++ {
								burst = append(burst, hub.Submission{
									User: fmt.Sprintf("user-%d", k%users),
									Alert: &alert.Alert{
										ID: fmt.Sprintf("a-%d-%d", i, k), Source: "portal",
										Keywords: []string{"stocks"}, Subject: "quote update",
										Urgency: alert.UrgencyNormal, Created: clk.Now(),
									},
								})
							}
							for len(burst) > 0 {
								errs := h.SubmitBatch(burst)
								retry := burst[:0]
								var hint time.Duration
								for idx, err := range errs {
									var over *hub.OverloadError
									if errors.As(err, &over) {
										retry = append(retry, burst[idx])
										hint = over.RetryAfter
										continue
									}
									if err != nil {
										b.Error(err)
										return
									}
								}
								burst = retry
								if len(burst) > 0 {
									time.Sleep(hint)
								}
							}
						}
					}(w)
				}
				wg.Wait()
				if err := h.Drain(); err != nil {
					b.Fatal(err)
				}
				elapsed := time.Since(start)
				st := h.Stats()
				b.ReportMetric(float64(alerts)/elapsed.Seconds(), "alerts/s")
				b.ReportMetric(float64(st.OutboxHandoffs), "outbox-handoffs")
				b.ReportMetric(float64(st.Tiers[core.TierBestEffort].Lost), "best-effort-lost")
			}
		})
	}
}

// BenchmarkHubSlowSink — the pipelined-delivery experiment: 1,000
// hosted buddies on 8 shards fed through a sink that really sleeps 1 ms
// per delivery (an IM manager or email fallback at realistic latency).
// The "sync" baseline serializes deliveries per shard (DeliveryWindow
// 1 — the pre-pipeline behavior, where one slow delivery stalls every
// tenant on the shard); "pipelined" uses the default bounded in-flight
// window, so only same-user deliveries chain. The pipelined variant
// must sustain ≥5× the baseline throughput at equal shard count; see
// BENCH_hub.json for recorded figures.
func BenchmarkHubSlowSink(b *testing.B) {
	const users, alerts, workers = 1000, 8000, 128
	const sinkLatency = time.Millisecond
	for _, mode := range []struct {
		name   string
		window int
	}{
		{"sync", 1},
		{"pipelined", 0}, // default DeliveryWindow
	} {
		b.Run(mode.name, func(b *testing.B) {
			clk := clock.NewReal()
			for i := 0; i < b.N; i++ {
				b.StopTimer()
				var delivered atomic.Int64
				sink := hub.FuncSink(func(shard int, user string, a *alert.Alert) error {
					time.Sleep(sinkLatency)
					delivered.Add(1)
					return nil
				})
				h, err := hub.New(hub.Config{
					Clock: clk, Sink: sink,
					WALPath: b.TempDir() + "/hub.wal",
					Shards:  8, QueueDepth: 512,
					CommitWindow:   2 * time.Millisecond,
					DeliveryWindow: mode.window,
					RNG:            dist.NewRNG(int64(i) + 1),
				})
				if err != nil {
					b.Fatal(err)
				}
				for u := 0; u < users; u++ {
					bd, err := h.AddUser(fmt.Sprintf("user-%d", u))
					if err != nil {
						b.Fatal(err)
					}
					bd.Pipeline().Classifier.Accept(mab.SourceRule{Source: "portal", Extract: mab.ExtractNative})
					bd.Pipeline().Aggregator.Map("stocks", "Investment")
				}
				if err := h.Start(); err != nil {
					b.Fatal(err)
				}
				b.StartTimer()
				start := time.Now()
				var wg sync.WaitGroup
				for w := 0; w < workers; w++ {
					wg.Add(1)
					go func(w int) {
						defer wg.Done()
						for j := w; j < alerts; j += workers {
							a := &alert.Alert{
								ID: fmt.Sprintf("a-%d-%d", i, j), Source: "portal",
								Keywords: []string{"stocks"}, Subject: "quote update",
								Urgency: alert.UrgencyNormal, Created: clk.Now(),
							}
							for {
								err := h.Submit(fmt.Sprintf("user-%d", j%users), a)
								var over *hub.OverloadError
								if errors.As(err, &over) {
									time.Sleep(over.RetryAfter)
									continue
								}
								if err != nil {
									b.Error(err)
									return
								}
								break
							}
						}
					}(w)
				}
				wg.Wait()
				if err := h.Drain(); err != nil {
					b.Fatal(err)
				}
				elapsed := time.Since(start)
				if got := delivered.Load(); got != alerts {
					b.Fatalf("delivered %d, want %d", got, alerts)
				}
				st := h.Stats()
				b.ReportMetric(float64(alerts)/elapsed.Seconds(), "alerts/s")
				peak := 0
				for _, sh := range st.Shards {
					if sh.PeakInFlight > peak {
						peak = sh.PeakInFlight
					}
				}
				b.ReportMetric(float64(peak), "peak-inflight/shard")
			}
		})
	}
}

// BenchmarkPipelineEvaluate — the per-tenant classify→aggregate→filter
// hot path with a mixed-case keyword, the case the hub's routing stage
// hits on every alert. The stages read copy-on-write snapshots, so the
// native-keyword path takes zero mutex acquisitions and zero
// allocations per evaluation (the classifier returns the alert's own
// keyword slice instead of copying it; the aggregator's case fold is
// allocation-free).
func BenchmarkPipelineEvaluate(b *testing.B) {
	p := mab.NewPipeline()
	p.Classifier.Accept(mab.SourceRule{Source: "portal", Extract: mab.ExtractNative})
	p.Aggregator.Map("Stocks", "Investment")
	a := &alert.Alert{
		ID: "x", Source: "portal", Keywords: []string{"Stocks"},
		Urgency: alert.UrgencyNormal, Created: time.Unix(985597200, 0),
	}
	now := a.Created
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, v := p.Evaluate(a, now); v != mab.VerdictRoute {
			b.Fatal(v)
		}
	}
}

// BenchmarkHubModeDelivery — the shared-mode-executor experiment: the
// same hosted portal workload delivered through the flat substrate
// (every tenant executes the synthesized one-block Flat mode over the
// SINK channel) versus through real per-tenant "IM with
// acknowledgement, fallback email" modes, with IM acks injected back
// through the hub after a 1 ms round trip. Reports sustained alerts/s
// for both variants and, for the mode variant, the fraction confirmed
// over IM (the remainder fell back to email on ack timeout).
func BenchmarkHubModeDelivery(b *testing.B) {
	const users, alerts, workers, shards = 500, 2500, 32, 8
	clk := clock.NewReal()
	run := func(b *testing.B, withModes bool) {
		for i := 0; i < b.N; i++ {
			b.StopTimer()
			sink := hub.FuncSink(func(shard int, user string, a *alert.Alert) error { return nil })
			var h *hub.Hub
			var imSeq atomic.Uint64
			channels := core.NewChannels().
				Register(addr.TypeIM, core.ChannelFunc(func(req core.Send) (core.SendResult, error) {
					seq := imSeq.Add(1)
					handle := req.To
					go func() {
						time.Sleep(time.Millisecond)
						h.HandleIncoming(im.Message{From: handle, Text: core.AckText(seq)})
					}()
					return core.SendResult{Seq: seq}, nil
				})).
				Register(addr.TypeEmail, core.ChannelFunc(func(req core.Send) (core.SendResult, error) {
					return core.SendResult{Confirmed: true}, nil
				}))
			h, err := hub.New(hub.Config{
				Clock: clk, Sink: sink, Channels: channels,
				WALPath: b.TempDir() + "/hub.wal",
				Shards:  shards, QueueDepth: 512,
				CommitWindow: 2 * time.Millisecond,
				AckTimeout:   25 * time.Millisecond,
				RNG:          dist.NewRNG(int64(i) + 1),
			})
			if err != nil {
				b.Fatal(err)
			}
			for u := 0; u < users; u++ {
				user := fmt.Sprintf("user-%d", u)
				bd, err := h.AddUser(user)
				if err != nil {
					b.Fatal(err)
				}
				bd.Pipeline().Classifier.Accept(mab.SourceRule{Source: "portal", Extract: mab.ExtractNative})
				bd.Pipeline().Aggregator.Map("stocks", "Investment")
				if withModes {
					p, err := core.NewProfile(user)
					if err != nil {
						b.Fatal(err)
					}
					for _, a := range []addr.Address{
						{Type: addr.TypeIM, Name: "Pager IM", Target: user + "@im", Enabled: true},
						{Type: addr.TypeEmail, Name: "Work email", Target: user + "@mail", Enabled: true},
					} {
						if err := p.Addresses().Register(a); err != nil {
							b.Fatal(err)
						}
					}
					// Zero block timeout: the hub substitutes AckTimeout.
					if err := p.DefineMode(dmode.IMThenEmail("Pager IM", "Work email", 0)); err != nil {
						b.Fatal(err)
					}
					bd.SetProfile(p)
					if err := bd.Subscribe("Investment", "IMThenEmail"); err != nil {
						b.Fatal(err)
					}
				}
			}
			if err := h.Start(); err != nil {
				b.Fatal(err)
			}
			b.StartTimer()
			start := time.Now()
			var wg sync.WaitGroup
			for w := 0; w < workers; w++ {
				wg.Add(1)
				go func(w int) {
					defer wg.Done()
					for j := w; j < alerts; j += workers {
						a := &alert.Alert{
							ID: fmt.Sprintf("a-%d-%d", i, j), Source: "portal",
							Keywords: []string{"stocks"}, Subject: "quote update",
							Urgency: alert.UrgencyNormal, Created: clk.Now(),
						}
						for {
							err := h.Submit(fmt.Sprintf("user-%d", j%users), a)
							var over *hub.OverloadError
							if errors.As(err, &over) {
								time.Sleep(over.RetryAfter)
								continue
							}
							if err != nil {
								b.Error(err)
								return
							}
							break
						}
					}
				}(w)
			}
			wg.Wait()
			if err := h.Drain(); err != nil {
				b.Fatal(err)
			}
			elapsed := time.Since(start)
			st := h.Stats()
			b.ReportMetric(float64(alerts)/elapsed.Seconds(), "alerts/s")
			if withModes {
				b.ReportMetric(float64(st.DeliveredByChannel[addr.TypeIM])/float64(alerts), "im-share")
			}
		}
	}
	b.Run("flat", func(b *testing.B) { run(b, false) })
	b.Run("mode", func(b *testing.B) { run(b, true) })
}

// BenchmarkSoakRandomFaults — randomized fault soak (2 simulated days
// of Poisson fault arrivals under the MDC).
func BenchmarkSoakRandomFaults(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := harness.SoakRandomFaults(b.TempDir(), int64(i)+1, 2)
		if err != nil {
			b.Fatal(err)
		}
		if !res.Recovered {
			b.Fatalf("soak did not recover: %s", res)
		}
	}
}
