// Command investment demonstrates the dynamic-customization story of
// Section 3.3: three services' alerts aggregate into one personal
// "Investment" category; the user switches that whole category from
// SMS to IM with one operation at the buddy; and disabling the SMS
// address while traveling makes SMS blocks fail over to email — all
// without touching any of the three services.
package main

import (
	"fmt"
	"log"
	"os"
	"path/filepath"
	"time"

	"simba"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	world, err := simba.NewWorld(simba.WorldOptions{Seed: 2})
	if err != nil {
		return err
	}
	if err := world.CreatePersonalAccounts("alice-im", []string{"alice@work.sim"}, "5551234"); err != nil {
		return err
	}
	tmp, err := os.MkdirTemp("", "simba-investment")
	if err != nil {
		return err
	}
	defer os.RemoveAll(tmp)
	buddy, err := simba.NewBuddy(world, simba.BuddyOptions{
		IMHandle: "my-alert-buddy", EmailAddress: "buddy@sim",
		LogPath:                    filepath.Join(tmp, "buddy.plog"),
		DisableNightlyRejuvenation: true,
	})
	if err != nil {
		return err
	}

	// Three financial services; their native keywords all aggregate
	// into the personal "Investment" category.
	for _, src := range []string{"yahoo-finance", "wsj", "cbs-marketwatch"} {
		buddy.Classifier().Accept(simba.SourceRule{Source: src, Extract: simba.ExtractNative})
	}
	agg := buddy.Aggregator()
	agg.Map("Stocks", "Investment")
	agg.Map("Financial news", "Investment")
	agg.Map("Earnings reports", "Investment")

	profile, err := buddy.Store().RegisterUser("alice")
	if err != nil {
		return err
	}
	for _, a := range []simba.Address{
		{Type: simba.TypeIM, Name: "MSN IM", Target: "alice-im", Enabled: true},
		{Type: simba.TypeSMS, Name: "Cell SMS", Target: simba.SMSGatewayAddress("5551234"), Enabled: true},
		{Type: simba.TypeEmail, Name: "Work email", Target: "alice@work.sim", Enabled: true},
	} {
		if err := profile.Addresses().Register(a); err != nil {
			return err
		}
	}
	smsFirst := &simba.DeliveryMode{Name: "SMSFirst", Blocks: []simba.Block{
		{Actions: []simba.Action{{Address: "Cell SMS"}}},
		{Actions: []simba.Action{{Address: "Work email"}}},
	}}
	imFirst := &simba.DeliveryMode{Name: "IMFirst", Blocks: []simba.Block{
		{Timeout: simba.ModeDuration(10 * time.Second), Actions: []simba.Action{{Address: "MSN IM"}}},
		{Actions: []simba.Action{{Address: "Work email"}}},
	}}
	for _, m := range []*simba.DeliveryMode{smsFirst, imFirst} {
		if err := profile.DefineMode(m); err != nil {
			return err
		}
	}
	if err := buddy.Store().Subscribe("Investment", "alice", "SMSFirst"); err != nil {
		return err
	}

	user, err := simba.NewUser(world, simba.UserOptions{
		Name: "alice", IMHandle: "alice-im",
		EmailAddresses: []string{"alice@work.sim"}, PhoneNumber: "5551234",
		EmailCheckPeriod: 30 * time.Second,
	})
	if err != nil {
		return err
	}
	if err := user.Start(); err != nil {
		return err
	}
	defer user.Stop()
	if err := simba.StartBuddy(world, buddy); err != nil {
		return err
	}
	defer buddy.Kill()

	link, err := simba.NewSourceLink(world, "finance-src", "finance@sim", buddy, 15*time.Second)
	if err != nil {
		return err
	}
	if err := link.Start(); err != nil {
		return err
	}
	defer link.Stop()

	send := func(source, keyword, subject string) error {
		a := &simba.Alert{
			ID: simba.NextAlertID("inv"), Source: source, Keywords: []string{keyword},
			Subject: subject, Urgency: simba.UrgencyHigh, Created: world.Clock.Now(),
		}
		return world.Drive(func() { _, _ = link.Deliver(a) })
	}
	waitReceipts := func(n int) *simba.Receipt {
		if !world.RunUntil(func() bool { return user.ReceiptCount() >= n }, time.Second, 5*time.Minute) {
			log.Fatalf("receipt %d never arrived", n)
		}
		r := user.Receipts()[n-1]
		return &r
	}

	// Phase 1: all three services land in "Investment" via SMS.
	fmt.Println("--- phase 1: Investment category delivered by SMS ---")
	if err := send("yahoo-finance", "Stocks", "MSFT up 3%"); err != nil {
		return err
	}
	if err := send("wsj", "Financial news", "Fed holds rates"); err != nil {
		return err
	}
	if err := send("cbs-marketwatch", "Earnings reports", "Earnings preview"); err != nil {
		return err
	}
	for i := 1; i <= 3; i++ {
		r := waitReceipts(i)
		fmt.Printf("  %-28s → %s via %s in %v\n", r.Alert.Subject, r.Alert.Keywords[0], r.Channel, r.Latency.Round(time.Second))
	}

	// Phase 2: the one-stop switch — re-subscribe the category to the
	// IM-first mode. No service is touched.
	fmt.Println("--- phase 2: switch the whole category to IM with one call ---")
	if err := buddy.Store().Subscribe("Investment", "alice", "IMFirst"); err != nil {
		return err
	}
	if err := send("yahoo-finance", "Stocks", "MSFT up 5%"); err != nil {
		return err
	}
	r := waitReceipts(4)
	fmt.Printf("  %-28s → %s via %s in %v\n", r.Alert.Subject, r.Alert.Keywords[0], r.Channel, r.Latency.Round(time.Second))

	// Phase 3: traveling without cell coverage — disable the SMS
	// address; an SMS-first subscription falls back to email.
	fmt.Println("--- phase 3: SMS disabled while traveling; blocks fail over ---")
	if err := buddy.Store().Subscribe("Investment", "alice", "SMSFirst"); err != nil {
		return err
	}
	if err := profile.Addresses().SetEnabled("Cell SMS", false); err != nil {
		return err
	}
	user.SetPresent(false) // away from the desk too
	if err := send("wsj", "Financial news", "Market closes mixed"); err != nil {
		return err
	}
	r = waitReceipts(5)
	fmt.Printf("  %-28s → %s via %s in %v\n", r.Alert.Subject, r.Alert.Keywords[0], r.Channel, r.Latency.Round(time.Second))
	fmt.Printf("buddy counters: %s\n", buddy.Counters())
	return nil
}
