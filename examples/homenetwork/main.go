// Command homenetwork replays the paper's Section 5 Aladdin scenario:
// the kid comes home and disarms the security system with an RF remote
// control; the signal crosses the powerline transceiver to a monitor
// PC, becomes a Soft-State Store update, replicates over the phoneline
// Ethernet to the home gateway, and the Aladdin home server sends the
// alert through SIMBA to the parent's IM — about 11 seconds end to
// end. It then shows the soft-state side of the design: a garage-door
// sensor whose battery dies stops refreshing and raises a "Sensor
// Broken" alert.
package main

import (
	"fmt"
	"log"
	"os"
	"path/filepath"
	"time"

	"simba"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	world, err := simba.NewWorld(simba.WorldOptions{Seed: 3})
	if err != nil {
		return err
	}
	if err := world.CreatePersonalAccounts("parent-im", []string{"parent@work.sim"}, ""); err != nil {
		return err
	}
	tmp, err := os.MkdirTemp("", "simba-home")
	if err != nil {
		return err
	}
	defer os.RemoveAll(tmp)
	buddy, err := simba.NewBuddy(world, simba.BuddyOptions{
		IMHandle: "my-alert-buddy", EmailAddress: "buddy@sim",
		LogPath:                    filepath.Join(tmp, "buddy.plog"),
		DisableNightlyRejuvenation: true,
	})
	if err != nil {
		return err
	}
	buddy.Classifier().Accept(simba.SourceRule{Source: "aladdin", Extract: simba.ExtractNative})
	agg := buddy.Aggregator()
	agg.Map("Security", "HomeSecurity")
	agg.Map("Sensor ON", "HomeSecurity")
	agg.Map("Sensor Broken", "HomeMaintenance")

	profile, err := buddy.Store().RegisterUser("parent")
	if err != nil {
		return err
	}
	for _, a := range []simba.Address{
		{Type: simba.TypeIM, Name: "MSN IM", Target: "parent-im", Enabled: true},
		{Type: simba.TypeEmail, Name: "Work email", Target: "parent@work.sim", Enabled: true},
	} {
		if err := profile.Addresses().Register(a); err != nil {
			return err
		}
	}
	if err := profile.DefineMode(simba.IMThenEmailMode("MSN IM", "Work email", simba.ModeDuration(10*time.Second))); err != nil {
		return err
	}
	for _, cat := range []string{"HomeSecurity", "HomeMaintenance"} {
		if err := buddy.Store().Subscribe(cat, "parent", "IMThenEmail"); err != nil {
			return err
		}
	}

	parent, err := simba.NewUser(world, simba.UserOptions{
		Name: "parent", IMHandle: "parent-im", EmailAddresses: []string{"parent@work.sim"},
	})
	if err != nil {
		return err
	}
	if err := parent.Start(); err != nil {
		return err
	}
	defer parent.Stop()
	if err := simba.StartBuddy(world, buddy); err != nil {
		return err
	}
	defer buddy.Kill()

	link, err := simba.NewSourceLink(world, "aladdin-gw", "aladdin@home.sim", buddy, 15*time.Second)
	if err != nil {
		return err
	}
	if err := link.Start(); err != nil {
		return err
	}
	defer link.Stop()

	home, err := simba.NewHome(world, link, simba.HomeOptions{})
	if err != nil {
		return err
	}
	if _, err := home.AddSensor("garage-door", false); err != nil {
		return err
	}
	world.RunFor(10*time.Second, time.Second) // let the install settle
	home.StartHeartbeats()
	defer home.StopHeartbeats()

	// Scene 1: the disarm chain.
	fmt.Println("--- the kid disarms the alarm with the RF remote ---")
	pressAt := world.Clock.Now()
	home.PressRemote(false)
	if !world.RunUntil(func() bool { return parent.ReceiptCount() >= 1 }, time.Second, 2*time.Minute) {
		return fmt.Errorf("disarm alert never arrived")
	}
	r := parent.Receipts()[0]
	fmt.Printf("  parent's IM: %q after %v (paper: ~11 s)\n",
		r.Alert.Subject, r.At.Sub(pressAt).Round(time.Millisecond))

	// Scene 2: the garage-door sensor's battery dies; its soft-state
	// variable misses its refreshes and times out.
	fmt.Println("--- the garage door sensor's battery dies ---")
	if err := home.SetBattery("garage-door", false); err != nil {
		return err
	}
	deadAt := world.Clock.Now()
	if !world.RunUntil(func() bool { return parent.ReceiptCount() >= 2 }, 10*time.Second, 30*time.Minute) {
		return fmt.Errorf("sensor-broken alert never arrived")
	}
	r = parent.Receipts()[1]
	fmt.Printf("  parent's IM: %q after %v (refresh 30s × 4 missed)\n",
		r.Alert.Subject, r.At.Sub(deadAt).Round(time.Second))
	fmt.Printf("phoneline multicast: %d replication messages\n", home.Multicast().Sent())
	return nil
}
