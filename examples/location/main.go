// Command location replays the paper's WISH scenario: a colleague's
// laptop periodically reports RF signal strengths; the WISH server
// localizes it against a propagation model and alerts a subscriber
// over SIMBA whenever the colleague changes zones — about 5 seconds
// from wireless send to the subscriber's IM.
package main

import (
	"fmt"
	"log"
	"os"
	"path/filepath"
	"time"

	"simba"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	world, err := simba.NewWorld(simba.WorldOptions{Seed: 4})
	if err != nil {
		return err
	}
	if err := world.CreatePersonalAccounts("paramvir-im", []string{"paramvir@msr.sim"}, ""); err != nil {
		return err
	}
	tmp, err := os.MkdirTemp("", "simba-location")
	if err != nil {
		return err
	}
	defer os.RemoveAll(tmp)
	buddy, err := simba.NewBuddy(world, simba.BuddyOptions{
		IMHandle: "my-alert-buddy", EmailAddress: "buddy@sim",
		LogPath:                    filepath.Join(tmp, "buddy.plog"),
		DisableNightlyRejuvenation: true,
	})
	if err != nil {
		return err
	}
	buddy.Classifier().Accept(simba.SourceRule{Source: "wish", Extract: simba.ExtractNative})
	buddy.Aggregator().Map("Location", "People")
	profile, err := buddy.Store().RegisterUser("paramvir")
	if err != nil {
		return err
	}
	for _, a := range []simba.Address{
		{Type: simba.TypeIM, Name: "MSN IM", Target: "paramvir-im", Enabled: true},
		{Type: simba.TypeEmail, Name: "Work email", Target: "paramvir@msr.sim", Enabled: true},
	} {
		if err := profile.Addresses().Register(a); err != nil {
			return err
		}
	}
	if err := profile.DefineMode(simba.IMThenEmailMode("MSN IM", "Work email", simba.ModeDuration(10*time.Second))); err != nil {
		return err
	}
	if err := buddy.Store().Subscribe("People", "paramvir", "IMThenEmail"); err != nil {
		return err
	}

	subscriber, err := simba.NewUser(world, simba.UserOptions{
		Name: "paramvir", IMHandle: "paramvir-im", EmailAddresses: []string{"paramvir@msr.sim"},
	})
	if err != nil {
		return err
	}
	if err := subscriber.Start(); err != nil {
		return err
	}
	defer subscriber.Stop()
	if err := simba.StartBuddy(world, buddy); err != nil {
		return err
	}
	defer buddy.Kill()

	link, err := simba.NewSourceLink(world, "wish-server", "wish@msr.sim", buddy, 15*time.Second)
	if err != nil {
		return err
	}
	if err := link.Start(); err != nil {
		return err
	}
	defer link.Stop()

	// The building: four APs, two wings.
	server, err := simba.NewWISHServer(world, link, simba.WISHOptions{
		APs: []simba.AccessPoint{
			simba.WISHAP("ap-1", 0, 0), simba.WISHAP("ap-2", 40, 0),
			simba.WISHAP("ap-3", 0, 30), simba.WISHAP("ap-4", 40, 30),
		},
		Zones: []simba.Zone{
			simba.WISHZone("west-wing", 0, 0, 20, 30),
			simba.WISHZone("east-wing", 20, 0, 40, 30),
		},
	})
	if err != nil {
		return err
	}
	server.Track("yimin", "paramvir")

	client, err := simba.NewWISHClient(world, server, "yimin", 2*time.Second)
	if err != nil {
		return err
	}
	client.MoveTo(10, 15) // west wing office
	client.Start()
	defer client.Stop()
	world.RunFor(10*time.Second, time.Second) // establish the starting zone

	walk := []struct {
		desc string
		x, y float64
	}{
		{"walks to the east wing lab", 30, 15},
		{"steps outside the building", 120, 120},
		{"returns to the west wing", 10, 15},
	}
	for i, leg := range walk {
		before := subscriber.ReceiptCount()
		moveAt := world.Clock.Now()
		client.MoveTo(leg.x, leg.y)
		if !world.RunUntil(func() bool { return subscriber.ReceiptCount() > before }, time.Second, 2*time.Minute) {
			return fmt.Errorf("leg %d: no alert", i)
		}
		receipts := subscriber.Receipts()
		r := receipts[len(receipts)-1]
		fmt.Printf("yimin %-32s → IM %q after %v\n",
			leg.desc, r.Alert.Subject, r.At.Sub(moveAt).Round(time.Millisecond))
	}
	if v, err := server.Store().Read("wish/user/yimin"); err == nil {
		fmt.Printf("soft-state position record: %s\n", v)
	}
	return nil
}
