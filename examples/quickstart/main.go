// Command quickstart is the minimal SIMBA program: one simulated
// world, one MyAlertBuddy, one user, one alert source. It sends a
// single alert and shows it traveling source → buddy (IM with
// acknowledgement) → user (IM), with every latency measured in
// virtual time.
package main

import (
	"fmt"
	"log"
	"os"
	"path/filepath"
	"time"

	"simba"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	// A simulated world: virtual clock, IM/email/SMS services, a
	// machine for the buddy's client software.
	world, err := simba.NewWorld(simba.WorldOptions{Seed: 1})
	if err != nil {
		return err
	}
	if err := world.CreatePersonalAccounts("alice-im", []string{"alice@work.sim"}, "5551234"); err != nil {
		return err
	}

	// MyAlertBuddy: the always-on personal alert router. Only ITS
	// addresses are ever given to alert services.
	tmp, err := os.MkdirTemp("", "simba-quickstart")
	if err != nil {
		return err
	}
	defer os.RemoveAll(tmp)
	buddy, err := simba.NewBuddy(world, simba.BuddyOptions{
		IMHandle:                   "my-alert-buddy",
		EmailAddress:               "buddy@sim",
		LogPath:                    filepath.Join(tmp, "buddy.plog"),
		DisableNightlyRejuvenation: true,
	})
	if err != nil {
		return err
	}

	// The user's configuration at the buddy: accepted sources, keyword
	// aggregation, addresses, a delivery mode, a subscription.
	buddy.Classifier().Accept(simba.SourceRule{Source: "quickstart", Extract: simba.ExtractNative})
	buddy.Aggregator().Map("Stocks", "Investment")
	profile, err := buddy.Store().RegisterUser("alice")
	if err != nil {
		return err
	}
	for _, a := range []simba.Address{
		{Type: simba.TypeIM, Name: "MSN IM", Target: "alice-im", Enabled: true},
		{Type: simba.TypeEmail, Name: "Work email", Target: "alice@work.sim", Enabled: true},
	} {
		if err := profile.Addresses().Register(a); err != nil {
			return err
		}
	}
	mode := simba.IMThenEmailMode("MSN IM", "Work email", simba.ModeDuration(10*time.Second))
	if err := profile.DefineMode(mode); err != nil {
		return err
	}
	if err := buddy.Store().Subscribe("Investment", "alice", "IMThenEmail"); err != nil {
		return err
	}

	// The human at the other end: auto-acknowledges alert IMs.
	user, err := simba.NewUser(world, simba.UserOptions{
		Name: "alice", IMHandle: "alice-im", EmailAddresses: []string{"alice@work.sim"},
	})
	if err != nil {
		return err
	}
	if err := user.Start(); err != nil {
		return err
	}
	defer user.Stop()

	if err := simba.StartBuddy(world, buddy); err != nil {
		return err
	}
	defer buddy.Kill()
	fmt.Println("buddy started; user online")

	// An alert source, speaking "IM with acknowledgement, fallback
	// email" to the buddy.
	link, err := simba.NewSourceLink(world, "src-im", "src@sim", buddy, 15*time.Second)
	if err != nil {
		return err
	}
	if err := link.Start(); err != nil {
		return err
	}
	defer link.Stop()

	a := &simba.Alert{
		ID:       simba.NextAlertID("qs"),
		Source:   "quickstart",
		Keywords: []string{"Stocks"},
		Subject:  "MSFT earnings out",
		Body:     "Quarterly results beat expectations.",
		Urgency:  simba.UrgencyHigh,
		Created:  world.Clock.Now(),
	}
	var rep *simba.Report
	var derr error
	if err := world.Drive(func() { rep, derr = link.Deliver(a) }); err != nil {
		return err
	}
	if derr != nil {
		return derr
	}
	fmt.Printf("source → buddy: delivered via %q, acknowledged in %v\n",
		rep.DeliveredVia, rep.Latency().Round(time.Millisecond))

	if !world.RunUntil(func() bool { return user.ReceiptCount() == 1 }, 500*time.Millisecond, time.Minute) {
		return fmt.Errorf("alert never reached the user")
	}
	r := user.Receipts()[0]
	fmt.Printf("buddy → user:   %q over %s, end-to-end %v (category %s)\n",
		r.Alert.Subject, r.Channel, r.Latency.Round(time.Millisecond), r.Alert.Keywords[0])
	fmt.Printf("buddy counters: %s\n", buddy.Counters())
	return nil
}
