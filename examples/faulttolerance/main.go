// Command faulttolerance demonstrates MyAlertBuddy's availability
// machinery under fire: the IM client is logged out, hung, and shown
// modal dialogs; the buddy itself is crashed mid-alert and restarted
// by the Master Daemon Controller; and the pessimistic log replays the
// alert the crash would otherwise have lost. Every recovery action is
// journaled, exactly like the paper's one-month study.
package main

import (
	"fmt"
	"log"
	"os"
	"path/filepath"
	"time"

	"simba"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	world, err := simba.NewWorld(simba.WorldOptions{Seed: 5})
	if err != nil {
		return err
	}
	if err := world.CreatePersonalAccounts("alice-im", []string{"alice@work.sim"}, ""); err != nil {
		return err
	}
	tmp, err := os.MkdirTemp("", "simba-ft")
	if err != nil {
		return err
	}
	defer os.RemoveAll(tmp)
	buddy, err := simba.NewBuddy(world, simba.BuddyOptions{
		IMHandle: "my-alert-buddy", EmailAddress: "buddy@sim",
		LogPath:                    filepath.Join(tmp, "buddy.plog"),
		DisableNightlyRejuvenation: true,
	})
	if err != nil {
		return err
	}
	buddy.Classifier().Accept(simba.SourceRule{Source: "demo", Extract: simba.ExtractNative})
	buddy.Aggregator().Map("Critical", "Critical")
	profile, err := buddy.Store().RegisterUser("alice")
	if err != nil {
		return err
	}
	for _, a := range []simba.Address{
		{Type: simba.TypeIM, Name: "MSN IM", Target: "alice-im", Enabled: true},
		{Type: simba.TypeEmail, Name: "Work email", Target: "alice@work.sim", Enabled: true},
	} {
		if err := profile.Addresses().Register(a); err != nil {
			return err
		}
	}
	if err := profile.DefineMode(simba.IMThenEmailMode("MSN IM", "Work email", simba.ModeDuration(10*time.Second))); err != nil {
		return err
	}
	if err := buddy.Store().Subscribe("Critical", "alice", "IMThenEmail"); err != nil {
		return err
	}

	user, err := simba.NewUser(world, simba.UserOptions{
		Name: "alice", IMHandle: "alice-im", EmailAddresses: []string{"alice@work.sim"},
	})
	if err != nil {
		return err
	}
	if err := user.Start(); err != nil {
		return err
	}
	defer user.Stop()

	// Supervise the buddy with the watchdog instead of starting it
	// directly.
	watchdog, err := simba.NewWatchdog(world, buddy)
	if err != nil {
		return err
	}
	watchdog.Start()
	defer watchdog.Stop()
	if !world.RunUntil(buddy.Running, time.Second, time.Minute) {
		return fmt.Errorf("buddy never started")
	}
	fmt.Println("buddy running under the Master Daemon Controller")

	link, err := simba.NewSourceLink(world, "demo-src", "demo@sim", buddy, 15*time.Second)
	if err != nil {
		return err
	}
	if err := link.Start(); err != nil {
		return err
	}
	defer link.Stop()
	send := func(subject string) error {
		a := &simba.Alert{
			ID: simba.NextAlertID("ft"), Source: "demo", Keywords: []string{"Critical"},
			Subject: subject, Urgency: simba.UrgencyCritical, Created: world.Clock.Now(),
		}
		return world.Drive(func() { _, _ = link.Deliver(a) })
	}

	// Fault 1: the IM service logs the buddy's client out; the
	// 1-minute sanity check re-logs it in.
	fmt.Println("--- fault 1: spontaneous IM logout ---")
	world.IM.ForceLogout(buddy.IMHandle())
	world.RunFor(90*time.Second, 5*time.Second)
	if err := send("alert after logout"); err != nil {
		return err
	}
	if !world.RunUntil(func() bool { return user.ReceiptCount() >= 1 }, time.Second, 2*time.Minute) {
		return fmt.Errorf("alert after logout never arrived")
	}
	fmt.Println("  re-login healed it; alert delivered")

	// Fault 2: the IM client hangs; the sanity check's call timeout
	// detects it and the Shutdown/Restart API replaces the client.
	fmt.Println("--- fault 2: hanging IM client ---")
	buddy.InjectIMClientHang()
	world.RunFor(2*time.Minute, 5*time.Second)
	if err := send("alert after client hang"); err != nil {
		return err
	}
	if !world.RunUntil(func() bool { return user.ReceiptCount() >= 2 }, time.Second, 2*time.Minute) {
		return fmt.Errorf("alert after hang never arrived")
	}
	fmt.Println("  client killed and relaunched; alert delivered")

	// Fault 3: the buddy itself crashes right after acknowledging an
	// alert. The MDC restarts it; the pessimistic log replays the
	// unprocessed alert.
	fmt.Println("--- fault 3: buddy crash between ack and routing ---")
	if err := send("alert lost without the log?"); err != nil {
		return err
	}
	buddy.InjectCrash()
	if !world.RunUntil(buddy.Running, 5*time.Second, 5*time.Minute) {
		return fmt.Errorf("MDC never restarted the buddy")
	}
	if !world.RunUntil(func() bool { return user.ReceiptCount() >= 3 }, time.Second, 5*time.Minute) {
		return fmt.Errorf("replayed alert never arrived")
	}
	fmt.Println("  MDC restarted the buddy; the log replayed the alert")

	fmt.Printf("\nwatchdog restarts: %d, user duplicates discarded: %d\n",
		watchdog.Restarts(), user.Duplicates())
	fmt.Println("recovery journal:")
	for _, e := range world.Journal.Entries() {
		fmt.Printf("  %s\n", e)
	}
	return nil
}
