module simba

go 1.24
