// Package simba is a Go implementation of the SIMBA user alert
// service architecture for dependable alert delivery (Wang, Bahl,
// Russell — Microsoft Research, DSN 2001 / MSR-TR-2000-117).
//
// SIMBA routes user-subscribed alerts from many sources (web alert
// proxies, home-automation gateways, location trackers, desktop
// assistants, portal services) to many devices (instant messaging,
// SMS, email) through a personal, always-on router called
// MyAlertBuddy. Its contributions, all implemented here:
//
//   - Instant Messaging with application-level acknowledgements as the
//     timely, reliable alert channel, with email as the fallback;
//   - delivery modes — XML documents of communication blocks, each a
//     set of addressed actions with a confirmation timeout — as the
//     user's abstraction for personalized dependability levels;
//   - MyAlertBuddy, a level of indirection between alert services and
//     the user that classifies, aggregates, filters, and routes
//     alerts, protecting the privacy of the user's real addresses;
//   - exception-handling automation (sanity checking, shutdown/
//     restart, and dialog-box handling via a "monkey thread") plus
//     pessimistic logging, a watchdog, self-stabilization, and
//     software rejuvenation to keep the buddy highly available.
//
// Because the paper's substrate (MSN Messenger, Outlook/Exchange, a
// cellular SMS carrier, real web sites, an instrumented house, an
// 802.11 testbed) is not reproducible offline, every external
// dependency is provided as a faithful simulator driven by a virtual
// clock; see DESIGN.md for the substitution table and EXPERIMENTS.md
// for the paper-vs-measured results.
//
// # Quick start
//
// Build a simulated world, a buddy, and a user; subscribe; deliver:
//
//	world, _ := simba.NewWorld(simba.WorldOptions{Seed: 1})
//	buddy, _ := simba.NewBuddy(world, simba.BuddyOptions{
//		IMHandle: "my-buddy", EmailAddress: "buddy@sim", LogPath: "buddy.plog",
//	})
//	// ... register the user's addresses, modes, and subscriptions,
//	// start everything, and send alerts through a SourceLink.
//
// See examples/quickstart for the complete runnable program.
package simba
