#!/usr/bin/env bash
# Benchmark allocation gate for the ingest hot path.
#
# Runs BenchmarkHubBatchIngest/lanes-1 with -benchmem and fails if its
# allocs/op exceeds the checked-in baseline
# (scripts/hub_allocs_baseline.txt) by more than the tolerance.
# Allocation counts, unlike wall-clock throughput, are nearly
# deterministic per op, so a single -benchtime=1x run is a meaningful
# regression signal even on noisy CI hosts.
set -euo pipefail
cd "$(dirname "$0")/.."

tolerance_pct=10
baseline=$(grep -v '^#' scripts/hub_allocs_baseline.txt | head -1 | tr -d '[:space:]')
if ! [[ "$baseline" =~ ^[0-9]+$ ]]; then
  echo "alloc gate: bad baseline '$baseline' in scripts/hub_allocs_baseline.txt" >&2
  exit 1
fi

out=$(go test -bench 'BenchmarkHubBatchIngest/lanes-1$' -benchtime=1x -benchmem -run '^$' .)
echo "$out"
allocs=$(echo "$out" | awk '/^BenchmarkHubBatchIngest/ {
  for (i = 1; i <= NF; i++) if ($i == "allocs/op") print $(i-1)
}' | head -1)
if ! [[ "${allocs:-}" =~ ^[0-9]+$ ]]; then
  echo "alloc gate: could not parse allocs/op from benchmark output" >&2
  exit 1
fi

limit=$((baseline + baseline * tolerance_pct / 100))
echo "alloc gate: measured ${allocs} allocs/op, baseline ${baseline}, limit ${limit} (+${tolerance_pct}%)"
if ((allocs > limit)); then
  echo "alloc gate: FAIL — BenchmarkHubBatchIngest/lanes-1 allocates ${allocs} objects/op," >&2
  echo "more than ${tolerance_pct}% over the checked-in baseline ${baseline}." >&2
  echo "If the regression is intentional, update scripts/hub_allocs_baseline.txt." >&2
  exit 1
fi
echo "alloc gate: PASS"
