#!/usr/bin/env bash
# Admission-latency smoke for the adaptive group-commit scheduler.
#
# Runs `simbad -hub` at low, paced load and fails if p99 admission
# latency (submit → burst durable) exceeds HALF the commit window.
# The pre-adaptive committer flushed on a fixed timer, so every
# admission waited out the window's remainder and p99 sat at ≈ the
# window; the adaptive scheduler fires immediately at idle, so p99
# collapses to fsync + scheduling cost. Gating at window/2 cleanly
# separates the two behaviors.
#
# The WAL goes on /dev/shm when available: the gate is about the
# scheduler, not the disk, and a cold ext4 fsync (1–7 ms on shared CI
# hosts) would drown the signal. Submission is paced (-submit-interval)
# so the hub is genuinely idle between bursts — this measures the
# idle-fire path, not saturated-pipeline batching.
set -euo pipefail
cd "$(dirname "$0")/.."

window_ms=4
gate_us=$((window_ms * 1000 / 2))
if [[ -d /dev/shm && -w /dev/shm ]]; then
  export TMPDIR=/dev/shm
fi

out=$(go run ./cmd/simbad -hub \
  -users 100 -alerts 1000 -burst 1 -mode-frac 0 \
  -submit-interval 20ms -window "${window_ms}ms")
echo "$out" | grep -E 'admission latency|alerts/s' || true

p99=$(echo "$out" | awk '/^admission latency \(us\):/ {
  for (i = 1; i <= NF; i++) if ($i == "p99") print $(i+1)
}' | head -1)
if ! [[ "${p99:-}" =~ ^[0-9]+$ ]]; then
  echo "latency smoke: could not parse p99 from simbad output" >&2
  exit 1
fi

echo "latency smoke: p99 ${p99}us, gate ${gate_us}us (half the ${window_ms}ms commit window)"
if ((p99 > gate_us)); then
  echo "latency smoke: FAIL — idle-load admission p99 ${p99}us exceeds ${gate_us}us." >&2
  echo "The adaptive committer should fire immediately at idle; p99 near the" >&2
  echo "window (${window_ms}ms) means admissions are waiting out the commit timer." >&2
  exit 1
fi
echo "latency smoke: PASS"
