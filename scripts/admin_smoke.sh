#!/usr/bin/env bash
# Admin-plane smoke: start simbad -hub with the ops plane enabled,
# verify /healthz reports every shard running, trigger a rolling
# rejuvenation over HTTP while the workload is still lingering, verify
# the generation bump, and assert the process then drains cleanly
# (exit 0, zero lost, zero duplicated).
set -euo pipefail
cd "$(dirname "$0")/.."

addr=127.0.0.1:18025
log=$(mktemp)
trap 'kill "$pid" 2>/dev/null || true; rm -f "$log"' EXIT

go run ./cmd/simbad -hub -users 100 -shards 4 -alerts 5000 \
  -admin "$addr" -probe-period 100ms -linger 6s >"$log" 2>&1 &
pid=$!

# Wait for the admin plane to come up.
for i in $(seq 1 50); do
  if curl -sf "http://$addr/healthz" >/dev/null 2>&1; then break; fi
  if ! kill -0 "$pid" 2>/dev/null; then
    echo "admin smoke: simbad exited before the admin plane came up" >&2
    cat "$log" >&2
    exit 1
  fi
  sleep 0.2
done

healthz=$(curl -sf "http://$addr/healthz")
echo "$healthz"
running=$(echo "$healthz" | grep -c '"state": "running"')
if [ "$running" -ne 4 ]; then
  echo "admin smoke: expected 4 running shards, saw $running" >&2
  exit 1
fi

# Trigger a rolling rejuvenation and check every shard's generation
# advanced past 1.
rejuv=$(curl -sf -X POST "http://$addr/rejuvenate")
echo "$rejuv"
if echo "$rejuv" | grep -q '"generation": 1,'; then
  echo "admin smoke: a shard's generation did not advance after /rejuvenate" >&2
  exit 1
fi
if [ "$(echo "$rejuv" | grep -c '"rejuvenations": 0')" -ne 0 ]; then
  echo "admin smoke: a shard reported zero rejuvenations after /rejuvenate" >&2
  exit 1
fi

# Tenant CRUD round-trip.
curl -sf -X POST "http://$addr/users" -d '{"user":"smoke-tenant"}' >/dev/null
curl -sf "http://$addr/users" | grep -q smoke-tenant
curl -sf -X DELETE "http://$addr/users/smoke-tenant" >/dev/null

# The run must still drain cleanly after the remote-triggered
# rejuvenation: exit 0 and a report with zero lost/duplicated alerts.
wait "$pid"
cat "$log"
grep -qE 'best-effort +[0-9]+ +0 +0' "$log" || {
  echo "admin smoke: best-effort tier reported losses or duplicates" >&2
  exit 1
}
grep -q 'duplicates 0' "$log" || {
  echo "admin smoke: report shows duplicates" >&2
  exit 1
}
echo "admin smoke: OK"
