package simba

import (
	"errors"
	"time"

	"simba/internal/automation"
	"simba/internal/clock"
	"simba/internal/dist"
	"simba/internal/email"
	"simba/internal/faults"
	"simba/internal/im"
	"simba/internal/sms"
	"simba/internal/websim"
)

// WorldOptions tunes a simulated world.
type WorldOptions struct {
	// Seed drives all randomness (default 1).
	Seed int64
	// HeavyTails selects realistic heavy-tailed email/SMS delays with
	// loss; the default uses fixed short delays for determinism.
	HeavyTails bool
	// EmailLoss / SMSLoss apply when HeavyTails is set (defaults
	// 0.02 / 0.05).
	EmailLoss, SMSLoss float64
}

// World bundles the simulated communication substrate: the virtual
// clock, the machine the buddy runs on, the IM/email/SMS services, the
// web, and a journal of fault/recovery actions.
type World struct {
	Clock   *SimClock
	Machine *Machine
	IM      *IMService
	Email   *EmailService
	SMS     *SMSCarrier
	Web     *Web
	Journal *Journal

	seed int64
}

// NewWorld builds a simulated world.
func NewWorld(opts WorldOptions) (*World, error) {
	if opts.Seed == 0 {
		opts.Seed = 1
	}
	if opts.EmailLoss == 0 {
		opts.EmailLoss = 0.02
	}
	if opts.SMSLoss == 0 {
		opts.SMSLoss = 0.05
	}
	sim := clock.NewSim(time.Time{})
	imSvc, err := im.NewService(im.Config{
		Clock: sim,
		RNG:   dist.NewRNG(opts.Seed + 1),
		HopDelay: dist.Normal{
			Mean: 300 * time.Millisecond, Stddev: 80 * time.Millisecond, Floor: 100 * time.Millisecond,
		},
	})
	if err != nil {
		return nil, err
	}
	emailDelay := dist.Dist(dist.Fixed(20 * time.Second))
	smsDelay := dist.Dist(dist.Fixed(8 * time.Second))
	emailLoss, smsLoss := 0.0, 0.0
	if opts.HeavyTails {
		emailDelay = dist.LogNormal{Mu: 3.0, Sigma: 1.6}
		mix, merr := dist.NewMixture(
			dist.Component{Weight: 0.85, Dist: dist.Normal{Mean: 8 * time.Second, Stddev: 4 * time.Second, Floor: time.Second}},
			dist.Component{Weight: 0.15, Dist: dist.LogNormal{Mu: 5.5, Sigma: 1.5}},
		)
		if merr != nil {
			return nil, merr
		}
		smsDelay = mix
		emailLoss, smsLoss = opts.EmailLoss, opts.SMSLoss
	}
	emSvc, err := email.NewService(email.Config{
		Clock:           sim,
		RNG:             dist.NewRNG(opts.Seed + 2),
		Delay:           emailDelay,
		LossProbability: emailLoss,
	})
	if err != nil {
		return nil, err
	}
	carrier, err := sms.NewCarrier(sms.Config{
		Clock:           sim,
		RNG:             dist.NewRNG(opts.Seed + 3),
		Delay:           smsDelay,
		LossProbability: smsLoss,
	})
	if err != nil {
		return nil, err
	}
	web, err := websim.New(sim, 0)
	if err != nil {
		return nil, err
	}
	return &World{
		Clock:   sim,
		Machine: automation.NewMachine(sim),
		IM:      imSvc,
		Email:   emSvc,
		SMS:     carrier,
		Web:     web,
		Journal: &faults.Journal{},
		seed:    opts.Seed,
	}, nil
}

// CreatePersonalAccounts provisions an IM handle, any number of
// mailboxes, and optionally a phone (with its email gateway bridge)
// in one call.
func (w *World) CreatePersonalAccounts(imHandle string, mailboxes []string, phone string) error {
	if imHandle != "" {
		if err := w.IM.Register(imHandle); err != nil {
			return err
		}
	}
	for _, mb := range mailboxes {
		if _, err := w.Email.CreateMailbox(mb); err != nil {
			return err
		}
	}
	if phone != "" {
		if _, err := w.SMS.Provision(phone); err != nil {
			return err
		}
		if _, err := sms.AttachGateway(w.Clock, w.Email, w.SMS, phone); err != nil {
			return err
		}
	}
	return nil
}

// RunFor advances virtual time by total in steps, yielding real time
// between steps so goroutines keep up.
func (w *World) RunFor(total, step time.Duration) {
	if step <= 0 {
		step = time.Second
	}
	for elapsed := time.Duration(0); elapsed < total; elapsed += step {
		w.Clock.Advance(step)
		time.Sleep(time.Millisecond)
	}
}

// RunUntil advances until cond holds or maxVirtual elapses, reporting
// whether cond held. cond must not block on virtual time.
func (w *World) RunUntil(cond func() bool, step, maxVirtual time.Duration) bool {
	if step <= 0 {
		step = time.Second
	}
	for elapsed := time.Duration(0); elapsed < maxVirtual; elapsed += step {
		if cond() {
			return true
		}
		w.Clock.Advance(step)
		time.Sleep(time.Millisecond)
	}
	return cond()
}

// Drive runs fn in its own goroutine while advancing the clock until
// it returns — the pattern for calling APIs (like Target.Deliver) that
// block on virtual time.
func (w *World) Drive(fn func()) error {
	done := make(chan struct{})
	go func() {
		fn()
		close(done)
	}()
	deadline := time.Now().Add(30 * time.Second)
	for {
		select {
		case <-done:
			return nil
		default:
		}
		if time.Now().After(deadline) {
			return errors.New("simba: Drive: function did not finish within 30s of wall time")
		}
		w.Clock.Advance(500 * time.Millisecond)
		time.Sleep(time.Millisecond)
	}
}
