// Package plog implements the pessimistic logging MyAlertBuddy uses to
// avoid losing alerts across crashes. Per the paper: upon receiving an
// IM alert, the buddy saves a copy to a log file *before* sending the
// acknowledgement (the sender will not resend once acked); after
// processing, the entry is marked "Processed"; on every restart the
// log is scanned for unprocessed entries, which are replayed before
// new alerts are accepted. Duplicate deliveries that arise when the
// buddy fails between routing and marking are detected downstream via
// alert timestamps.
//
// The on-disk format is a line-oriented append-only journal:
//
//	RECV <unix-nanos> <key-base64> <payload-base64>
//	DONE <unix-nanos> <key-base64>
//
// Every append is fsynced — that is what makes the logging pessimistic
// — and a torn final line (crash mid-write) is tolerated on recovery.
package plog

import (
	"bufio"
	"encoding/base64"
	"errors"
	"fmt"
	"os"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Log errors.
var (
	// ErrUnknownKey indicates MarkProcessed was called for a key that
	// was never logged.
	ErrUnknownKey = errors.New("plog: unknown key")
	// ErrClosed indicates use after Close.
	ErrClosed = errors.New("plog: log closed")
)

// Record is one logged alert.
type Record struct {
	Key        string
	Payload    []byte
	ReceivedAt time.Time
	Processed  bool
}

// Log is a pessimistic write-ahead log. It is safe for concurrent use:
// concurrent Append callers (LogReceived / MarkProcessed) are
// serialized under one mutex, so journal lines are written in the order
// callers acquire it, each line is fsynced before its call returns, and
// a call that returned before another began always precedes it in the
// journal (the prefix-durability ordering the group-commit layer builds
// on — see GroupLog).
type Log struct {
	mu     sync.Mutex
	path   string
	f      *os.File
	closed bool
	syncs  atomic.Int64
	// index maps key → position in order; order preserves arrival.
	index map[string]int
	order []Record
}

// Open opens (creating if needed) the log at path and rebuilds its
// in-memory state from the journal.
func Open(path string) (*Log, error) {
	f, err := os.OpenFile(path, os.O_CREATE|os.O_RDWR, 0o644)
	if err != nil {
		return nil, fmt.Errorf("plog: opening %s: %w", path, err)
	}
	l := &Log{path: path, f: f, index: make(map[string]int)}
	if err := l.replayJournal(); err != nil {
		f.Close()
		return nil, err
	}
	return l, nil
}

// replayJournal scans the journal. A torn final line — a crash during
// an append — is truncated away so subsequent appends start on a clean
// line boundary.
func (l *Log) replayJournal() error {
	r := bufio.NewReader(l.f)
	var goodBytes int64
	for {
		line, err := r.ReadString('\n')
		if err != nil {
			// No trailing newline: torn tail. Leave goodBytes where it is.
			break
		}
		goodBytes += int64(len(line))
		line = strings.TrimSuffix(line, "\n")
		if line == "" {
			continue
		}
		fields := strings.Split(line, " ")
		switch fields[0] {
		case "RECV":
			if len(fields) != 4 {
				continue // torn or corrupt line: skip
			}
			nanos, err := strconv.ParseInt(fields[1], 10, 64)
			if err != nil {
				continue
			}
			key, err := base64.StdEncoding.DecodeString(fields[2])
			if err != nil {
				continue
			}
			payload, err := base64.StdEncoding.DecodeString(fields[3])
			if err != nil {
				continue
			}
			l.addReceivedLocked(string(key), payload, time.Unix(0, nanos).UTC())
		case "DONE":
			if len(fields) != 3 {
				continue
			}
			key, err := base64.StdEncoding.DecodeString(fields[2])
			if err != nil {
				continue
			}
			if i, ok := l.index[string(key)]; ok {
				l.order[i].Processed = true
			}
		default:
			// Unknown record type: skip (forward compatibility).
		}
	}
	if err := l.f.Truncate(goodBytes); err != nil {
		return fmt.Errorf("plog: truncating torn tail of %s: %w", l.path, err)
	}
	if _, err := l.f.Seek(goodBytes, 0); err != nil {
		return fmt.Errorf("plog: seeking %s: %w", l.path, err)
	}
	return nil
}

func (l *Log) addReceivedLocked(key string, payload []byte, at time.Time) {
	if _, ok := l.index[key]; ok {
		return // duplicate RECV: first wins
	}
	l.index[key] = len(l.order)
	l.order = append(l.order, Record{
		Key:        key,
		Payload:    append([]byte(nil), payload...),
		ReceivedAt: at,
	})
}

// LogReceived durably records an incoming alert before it is
// acknowledged. Logging the same key twice is a no-op (idempotent), so
// replay after a crash-during-ack is safe.
func (l *Log) LogReceived(key string, payload []byte, at time.Time) error {
	if key == "" {
		return errors.New("plog: empty key")
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return ErrClosed
	}
	if _, ok := l.index[key]; ok {
		return nil
	}
	line := fmt.Sprintf("RECV %d %s %s\n",
		at.UnixNano(),
		base64.StdEncoding.EncodeToString([]byte(key)),
		base64.StdEncoding.EncodeToString(payload))
	if err := l.append(line); err != nil {
		return err
	}
	l.addReceivedLocked(key, payload, at)
	return nil
}

// MarkProcessed durably records that the alert has been fully routed.
func (l *Log) MarkProcessed(key string, at time.Time) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return ErrClosed
	}
	i, ok := l.index[key]
	if !ok {
		return fmt.Errorf("plog: mark processed %q: %w", key, ErrUnknownKey)
	}
	if l.order[i].Processed {
		return nil
	}
	line := fmt.Sprintf("DONE %d %s\n",
		at.UnixNano(),
		base64.StdEncoding.EncodeToString([]byte(key)))
	if err := l.append(line); err != nil {
		return err
	}
	l.order[i].Processed = true
	return nil
}

// append writes and fsyncs one journal line. The caller holds l.mu.
func (l *Log) append(line string) error {
	if _, err := l.f.WriteString(line); err != nil {
		return fmt.Errorf("plog: appending to %s: %w", l.path, err)
	}
	if err := l.f.Sync(); err != nil {
		return fmt.Errorf("plog: syncing %s: %w", l.path, err)
	}
	l.syncs.Add(1)
	return nil
}

// appendBatch writes a group of journal lines with a single fsync — the
// group-commit primitive. Lines land on disk in slice order; a crash
// mid-write tears at most a suffix of the batch, which recovery
// truncates at the last complete line.
func (l *Log) appendBatch(lines []string) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return ErrClosed
	}
	var b strings.Builder
	for _, line := range lines {
		b.WriteString(line)
	}
	if _, err := l.f.WriteString(b.String()); err != nil {
		return fmt.Errorf("plog: appending batch to %s: %w", l.path, err)
	}
	if err := l.f.Sync(); err != nil {
		return fmt.Errorf("plog: syncing %s: %w", l.path, err)
	}
	l.syncs.Add(1)
	return nil
}

// stageReceived records the alert in memory and returns the encoded
// journal line for the caller to persist (via appendBatch). fresh is
// false when the key was already logged. Used by GroupLog, which must
// stage entries before their batch is durable.
func (l *Log) stageReceived(key string, payload []byte, at time.Time) (line string, fresh bool, err error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return "", false, ErrClosed
	}
	if _, ok := l.index[key]; ok {
		return "", false, nil
	}
	line = fmt.Sprintf("RECV %d %s %s\n",
		at.UnixNano(),
		base64.StdEncoding.EncodeToString([]byte(key)),
		base64.StdEncoding.EncodeToString(payload))
	l.addReceivedLocked(key, payload, at)
	return line, true, nil
}

// stageProcessed is stageReceived's counterpart for DONE records.
func (l *Log) stageProcessed(key string, at time.Time) (line string, fresh bool, err error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return "", false, ErrClosed
	}
	i, ok := l.index[key]
	if !ok {
		return "", false, fmt.Errorf("plog: mark processed %q: %w", key, ErrUnknownKey)
	}
	if l.order[i].Processed {
		return "", false, nil
	}
	line = fmt.Sprintf("DONE %d %s\n",
		at.UnixNano(),
		base64.StdEncoding.EncodeToString([]byte(key)))
	l.order[i].Processed = true
	return line, true, nil
}

// Syncs returns the number of fsyncs issued since Open — the figure of
// merit group commit improves.
func (l *Log) Syncs() int64 { return l.syncs.Load() }

// Has reports whether key has been logged.
func (l *Log) Has(key string) bool {
	l.mu.Lock()
	defer l.mu.Unlock()
	_, ok := l.index[key]
	return ok
}

// IsProcessed reports whether key has been marked processed.
func (l *Log) IsProcessed(key string) bool {
	l.mu.Lock()
	defer l.mu.Unlock()
	i, ok := l.index[key]
	return ok && l.order[i].Processed
}

// Unprocessed returns the records received but not yet processed, in
// arrival order — the restart replay set.
func (l *Log) Unprocessed() []Record {
	l.mu.Lock()
	defer l.mu.Unlock()
	var out []Record
	for _, r := range l.order {
		if !r.Processed {
			cp := r
			cp.Payload = append([]byte(nil), r.Payload...)
			out = append(out, cp)
		}
	}
	return out
}

// Len returns the total number of logged alerts.
func (l *Log) Len() int {
	l.mu.Lock()
	defer l.mu.Unlock()
	return len(l.order)
}

// Path returns the journal file path.
func (l *Log) Path() string { return l.path }

// Close releases the file handle. Further appends fail with ErrClosed.
func (l *Log) Close() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return nil
	}
	l.closed = true
	return l.f.Close()
}
