// Package plog implements the pessimistic logging MyAlertBuddy uses to
// avoid losing alerts across crashes. Per the paper: upon receiving an
// IM alert, the buddy saves a copy to a log file *before* sending the
// acknowledgement (the sender will not resend once acked); after
// processing, the entry is marked "Processed"; on every restart the
// log is scanned for unprocessed entries, which are replayed before
// new alerts are accepted. Duplicate deliveries that arise when the
// buddy fails between routing and marking are detected downstream via
// alert timestamps.
//
// The on-disk format is an append-only journal of length-prefixed
// binary frames (RECV carries key+payload, DONE carries key), each
// protected by a CRC32C trailer — see binary.go for the byte layout.
// Every append is fsynced — that is what makes the logging pessimistic
// — and a torn final frame (crash mid-write) is detected by checksum
// and truncated on recovery. Journals written by earlier versions in
// the line-oriented text format replay once through the legacy parser
// (segment.go) and migrate to binary segments on open.
//
// The journal is *segmented* so that disk, memory, and restart time
// amortize to O(unprocessed) instead of O(all-time): appends go to a
// fixed-size active segment (<base>.NNNNNNNN.seg) that rotates at
// Options.SegmentBytes; a background compactor periodically writes a
// checkpoint file (<base>.ckpt.NNNNNNNN) holding only the unprocessed
// records plus an all-time total, then deletes every segment the
// checkpoint covers; processed records are retired from memory by a
// periodic sweep. Recovery loads the newest valid checkpoint and
// replays only the segments after its watermark, preserving the
// per-segment prefix-durability and torn-tail truncation guarantees.
// See segment.go for the segment lifecycle and checkpoint.go for the
// checkpoint format and compactor.
package plog

import (
	"bufio"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"
	"time"

	"simba/internal/metrics"
)

// Log errors.
var (
	// ErrUnknownKey indicates MarkProcessed was called for a key that
	// was never logged (or was already retired from memory by the
	// sweep after being processed).
	ErrUnknownKey = errors.New("plog: unknown key")
	// ErrClosed indicates use after Close.
	ErrClosed = errors.New("plog: log closed")
)

// Defaults for Options.
const (
	// DefaultSegmentBytes caps the active segment before rotation.
	DefaultSegmentBytes = 4 << 20
	// DefaultSweepEvery is how many processed (tombstoned) records may
	// accumulate in memory before a sweep retires them.
	DefaultSweepEvery = 4096
)

// Options tune the segmented journal. The zero value gives a 4 MiB
// segment size, in-memory sweeping every 4096 processed records, and
// no background checkpointing (call Checkpoint explicitly, or set
// CheckpointEvery).
type Options struct {
	// SegmentBytes caps the active segment: an append that would push
	// it past this size rotates to a fresh segment first (one append
	// or group-commit batch never spans a rotation). Zero means
	// DefaultSegmentBytes.
	SegmentBytes int64
	// CheckpointEvery triggers a background checkpoint + compaction
	// after this many journal records have been appended since the
	// last checkpoint. Zero disables the background compactor
	// (Checkpoint can still be called explicitly).
	CheckpointEvery int64
	// SweepEvery bounds how many processed records stay resident: once
	// this many tombstones accumulate, a sweep drops them from the
	// in-memory index (Has/IsProcessed then report false for them —
	// safe, because a re-received retired alert merely replays into
	// the downstream timestamp dedup). Zero means DefaultSweepEvery;
	// negative disables sweeping (the pre-segmentation behavior).
	SweepEvery int
}

func (o Options) withDefaults() Options {
	if o.SegmentBytes <= 0 {
		o.SegmentBytes = DefaultSegmentBytes
	}
	if o.SweepEvery == 0 {
		o.SweepEvery = DefaultSweepEvery
	}
	return o
}

// Record is one logged alert.
type Record struct {
	Key        string
	Payload    []byte
	ReceivedAt time.Time
	Processed  bool
}

// Stats is a point-in-time snapshot of the log's segmentation,
// compaction, and recovery state.
type Stats struct {
	// Total is the all-time number of logged alerts, including records
	// retired from memory and compacted off disk (carried forward in
	// each checkpoint header).
	Total int64
	// Live is the number of records currently resident in memory;
	// Unprocessed of those are awaiting replay/processing.
	Live        int
	Unprocessed int
	// Retired counts processed records the sweep dropped from memory.
	Retired int64
	// CorruptRecords counts journal records that failed validation
	// during replay — CRC32C mismatches and malformed frames in binary
	// segments, malformed lines in legacy text segments (clean torn
	// tails are truncated, not counted).
	CorruptRecords int64
	// Segments is the number of on-disk segments (including the active
	// one); ActiveSegment is the active segment's sequence number.
	Segments      int
	ActiveSegment uint64
	// SegmentsCreated counts rotations since Open (plus the initial
	// segment if it was created rather than reopened).
	SegmentsCreated int64
	// SegmentsReplayed is how many segments Open had to replay — the
	// bounded-recovery figure of merit.
	SegmentsReplayed int
	// CheckpointGen is the generation of the newest durable
	// checkpoint (0 = none); Checkpoints counts checkpoints written
	// since Open; CompactedBytes counts segment bytes deleted.
	CheckpointGen  uint64
	Checkpoints    int64
	CompactedBytes int64
	// DiskBytes is the current on-disk footprint (segments plus the
	// newest checkpoint).
	DiskBytes int64
	// Syncs counts fsyncs issued since Open; FsyncLatency is their
	// latency histogram (microseconds). Carried in Stats so per-lane
	// snapshots (LaneSet.PerLaneStats) are self-contained.
	Syncs        int64
	FsyncLatency metrics.HistogramSnapshot
	// CommitBatches and StagedBatches summarize the group-commit layer
	// (populated by GroupLog.Stats, zero for a bare Log): journal
	// records per fsync, and fresh records per LogReceivedBatch ingest
	// burst.
	CommitBatches metrics.HistogramSnapshot
	StagedBatches metrics.HistogramSnapshot
	// CommitWait is the batch-open→durable latency histogram
	// (microseconds) — how long staged records waited for their fsync
	// under the adaptive commit schedule (populated by GroupLog.Stats,
	// zero for a bare Log).
	CommitWait metrics.HistogramSnapshot
}

// Log is a pessimistic, segmented write-ahead log. It is safe for
// concurrent use: concurrent Append callers (LogReceived /
// MarkProcessed) are serialized under one mutex, so journal lines are
// written in the order callers acquire it, each line is fsynced before
// its call returns, and a call that returned before another began
// always precedes it in the journal (the prefix-durability ordering
// the group-commit layer builds on — see GroupLog).
type Log struct {
	mu     sync.Mutex
	base   string // base path; segments and checkpoints live alongside
	dirf   *os.File
	f      *os.File // active segment
	opts   Options
	closed bool

	activeSeq  uint64 // sequence number of the active segment
	activeSize int64
	oldestSeq  uint64 // lowest on-disk segment sequence
	liveSegs   int
	// activeIsText marks a legacy text segment adopted as active during
	// recovery; recover() rotates it away before any binary append.
	activeIsText bool

	syncs    atomic.Int64
	fsyncLat *metrics.Histogram // microseconds per fsync

	// index maps key → position in order; order preserves arrival.
	index map[string]int
	order []Record
	// total is the all-time logged-alert count; retired counts
	// processed records swept from memory; processedLive counts
	// tombstones still resident (the sweep trigger).
	total         int64
	retired       int64
	processedLive int
	corrupt       int64

	// Checkpoint state: gen of the newest durable checkpoint,
	// watermark (segments <= ckptSeq are covered and deletable), and
	// records appended since (the compaction trigger).
	ckptGen   uint64
	ckptSeq   uint64
	sinceCkpt int64

	segsCreated    atomic.Int64
	ckptsWritten   atomic.Int64
	compactedBytes atomic.Int64
	replayedSegs   int

	encBuf []byte // reusable per-append encode buffer (guarded by mu)

	// Background compactor plumbing (nil when CheckpointEvery == 0).
	ckptMu      sync.Mutex // serializes Checkpoint calls
	compactReq  chan struct{}
	compactStop chan struct{}
	compactDone chan struct{}
}

// Open opens (creating if needed) the log at path with default Options
// and rebuilds its in-memory state from the newest checkpoint plus the
// segments after it.
func Open(path string) (*Log, error) {
	return OpenWithOptions(path, Options{})
}

// OpenWithOptions is Open with explicit segmentation/compaction
// tuning. A legacy single-file journal at path is migrated in place to
// segment 1.
func OpenWithOptions(path string, opts Options) (*Log, error) {
	l := &Log{
		base:     path,
		opts:     opts.withDefaults(),
		index:    make(map[string]int),
		fsyncLat: &metrics.Histogram{},
	}
	dirf, err := os.Open(filepath.Dir(path))
	if err != nil {
		return nil, fmt.Errorf("plog: opening directory of %s: %w", path, err)
	}
	l.dirf = dirf
	if err := l.recover(); err != nil {
		if l.f != nil {
			l.f.Close()
		}
		dirf.Close()
		return nil, err
	}
	if l.opts.CheckpointEvery > 0 {
		l.compactReq = make(chan struct{}, 1)
		l.compactStop = make(chan struct{})
		l.compactDone = make(chan struct{})
		go l.compactor()
	}
	return l, nil
}

// addReceivedLocked records one received alert in memory, taking
// ownership of payload. Callers pass a private copy when the bytes
// came from outside.
func (l *Log) addReceivedLocked(key string, payload []byte, at time.Time) {
	if _, ok := l.index[key]; ok {
		return // duplicate RECV: first wins
	}
	l.index[key] = len(l.order)
	l.order = append(l.order, Record{Key: key, Payload: payload, ReceivedAt: at})
	l.total++
}

// markProcessedLocked tombstones one record, dropping its payload
// immediately; the periodic sweep retires the tombstone itself.
func (l *Log) markProcessedLocked(i int) {
	l.order[i].Processed = true
	l.order[i].Payload = nil
	l.processedLive++
}

// maybeSweepLocked retires accumulated tombstones once SweepEvery of
// them are resident, keeping memory O(unprocessed).
func (l *Log) maybeSweepLocked() {
	if l.opts.SweepEvery <= 0 || l.processedLive < l.opts.SweepEvery {
		return
	}
	kept := make([]Record, 0, len(l.order)-l.processedLive)
	for _, r := range l.order {
		if !r.Processed {
			kept = append(kept, r)
		}
	}
	l.retired += int64(len(l.order) - len(kept))
	l.order = kept
	l.index = make(map[string]int, len(kept))
	for i, r := range kept {
		l.index[r.Key] = i
	}
	l.processedLive = 0
}

// LogReceived durably records an incoming alert before it is
// acknowledged. Logging the same key twice is a no-op (idempotent), so
// replay after a crash-during-ack is safe.
func (l *Log) LogReceived(key string, payload []byte, at time.Time) error {
	if key == "" {
		return errors.New("plog: empty key")
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return ErrClosed
	}
	if _, ok := l.index[key]; ok {
		return nil
	}
	l.encBuf = appendRecv(l.encBuf[:0], at.UnixNano(), key, payload)
	if err := l.appendLocked(l.encBuf, 1); err != nil {
		return err
	}
	l.addReceivedLocked(key, append([]byte(nil), payload...), at)
	return nil
}

// Replace atomically supersedes oldKey with a fresh record under
// newKey: one fsynced append carrying RECV(newKey) followed by
// DONE(oldKey), so a crash can never lose both generations — a torn
// tail drops at most the DONE, leaving old and new records visible for
// the caller's replay collapse to reconcile (newKey is written first
// for exactly that reason). A missing or already-processed oldKey is
// tolerated (the supersede is then a plain LogReceived); a newKey that
// already exists is idempotent, and oldKey is still retired. This is
// the retry outbox's round-update primitive: each redelivery round
// re-persists the envelope under a round-stamped key and tombstones
// the previous round in the same fsync.
func (l *Log) Replace(oldKey, newKey string, payload []byte, at time.Time) error {
	if newKey == "" {
		return errors.New("plog: empty key")
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return ErrClosed
	}
	var records int64
	buf := l.encBuf[:0]
	_, newExists := l.index[newKey]
	if !newExists {
		buf = appendRecv(buf, at.UnixNano(), newKey, payload)
		records++
	}
	oldIdx, oldOK := l.index[oldKey]
	retireOld := oldOK && oldKey != newKey && !l.order[oldIdx].Processed
	if retireOld {
		buf = appendDone(buf, at.UnixNano(), oldKey)
		records++
	}
	l.encBuf = buf
	if records == 0 {
		return nil
	}
	if err := l.appendLocked(buf, records); err != nil {
		return err
	}
	if !newExists {
		l.addReceivedLocked(newKey, append([]byte(nil), payload...), at)
	}
	if retireOld {
		// addReceivedLocked may have grown l.order; re-resolve the index.
		l.markProcessedLocked(l.index[oldKey])
		l.maybeSweepLocked()
	}
	return nil
}

// MarkProcessed durably records that the alert has been fully routed.
func (l *Log) MarkProcessed(key string, at time.Time) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return ErrClosed
	}
	i, ok := l.index[key]
	if !ok {
		return fmt.Errorf("plog: mark processed %q: %w", key, ErrUnknownKey)
	}
	if l.order[i].Processed {
		return nil
	}
	l.encBuf = appendDone(l.encBuf[:0], at.UnixNano(), key)
	if err := l.appendLocked(l.encBuf, 1); err != nil {
		return err
	}
	l.markProcessedLocked(i)
	l.maybeSweepLocked()
	return nil
}

// appendLocked writes and fsyncs buf (records complete journal lines)
// to the active segment, rotating first if the append would overflow
// it — so one write, and in particular one group-commit batch, never
// spans a rotation fsync. The caller holds l.mu.
func (l *Log) appendLocked(buf []byte, records int64) error {
	if l.activeSize > segHeaderSize && l.activeSize+int64(len(buf)) > l.opts.SegmentBytes {
		if err := l.rotateLocked(); err != nil {
			return err
		}
	}
	n, err := l.f.Write(buf)
	if err != nil {
		return fmt.Errorf("plog: appending to %s: %w", l.f.Name(), err)
	}
	start := time.Now()
	if err := l.f.Sync(); err != nil {
		return fmt.Errorf("plog: syncing %s: %w", l.f.Name(), err)
	}
	l.fsyncLat.Observe(time.Since(start).Microseconds())
	l.syncs.Add(1)
	l.activeSize += int64(n)
	l.sinceCkpt += records
	l.maybeCompactLocked()
	return nil
}

// appendBatch writes a group of journal records with a single fsync —
// the group-commit primitive. Records land on disk in buf order; a
// crash mid-write tears at most a suffix of the batch, which recovery
// truncates at the last complete line. The whole batch lands in one
// segment (rotation happens before the write, never inside it).
func (l *Log) appendBatch(buf []byte, records int64) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return ErrClosed
	}
	return l.appendLocked(buf, records)
}

// stageReceived records the alert in memory and appends the encoded
// journal line to dst, returning the grown buffer. fresh is false when
// the key was already logged. Used by GroupLog, which must stage
// entries before their batch is durable.
func (l *Log) stageReceived(dst []byte, key string, payload []byte, at time.Time) (out []byte, fresh bool, err error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return dst, false, ErrClosed
	}
	if _, ok := l.index[key]; ok {
		return dst, false, nil
	}
	dst = appendRecv(dst, at.UnixNano(), key, payload)
	l.addReceivedLocked(key, append([]byte(nil), payload...), at)
	return dst, true, nil
}

// stageProcessed is stageReceived's counterpart for DONE records.
func (l *Log) stageProcessed(dst []byte, key string, at time.Time) (out []byte, fresh bool, err error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return dst, false, ErrClosed
	}
	i, ok := l.index[key]
	if !ok {
		return dst, false, fmt.Errorf("plog: mark processed %q: %w", key, ErrUnknownKey)
	}
	if l.order[i].Processed {
		return dst, false, nil
	}
	dst = appendDone(dst, at.UnixNano(), key)
	l.markProcessedLocked(i)
	l.maybeSweepLocked()
	return dst, true, nil
}

// BatchEntry is one incoming record in a batched ingest call
// (GroupLog.LogReceivedBatch).
type BatchEntry struct {
	Key     string
	Payload []byte
	At      time.Time
}

// stageReceivedBatch is stageReceived vectorized: it stages every fresh
// entry under a single index-lock acquisition, appending all encoded
// journal lines to dst in entry order. staged counts the fresh entries;
// duplicates are skipped (first RECV wins, as in LogReceived).
func (l *Log) stageReceivedBatch(dst []byte, entries []BatchEntry) (out []byte, staged int64, err error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return dst, 0, ErrClosed
	}
	for i := range entries {
		e := &entries[i]
		if _, ok := l.index[e.Key]; ok {
			continue
		}
		dst = appendRecv(dst, e.At.UnixNano(), e.Key, e.Payload)
		l.addReceivedLocked(e.Key, append([]byte(nil), e.Payload...), e.At)
		staged++
	}
	return dst, staged, nil
}

// stageProcessedBatch is stageProcessed vectorized: DONE records for
// every key staged under one index-lock acquisition, with one sweep
// check at the end. Per-key failures (ErrUnknownKey) land in errs,
// which is nil when every key staged cleanly and otherwise parallel to
// keys; already-processed keys are no-ops.
func (l *Log) stageProcessedBatch(dst []byte, keys []string, at time.Time) (out []byte, staged int64, errs []error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		errs = make([]error, len(keys))
		for i := range errs {
			errs[i] = ErrClosed
		}
		return dst, 0, errs
	}
	nanos := at.UnixNano()
	for i, key := range keys {
		j, ok := l.index[key]
		if !ok {
			if errs == nil {
				errs = make([]error, len(keys))
			}
			errs[i] = fmt.Errorf("plog: mark processed %q: %w", key, ErrUnknownKey)
			continue
		}
		if l.order[j].Processed {
			continue
		}
		dst = appendDone(dst, nanos, key)
		l.markProcessedLocked(j)
		staged++
	}
	if staged > 0 {
		l.maybeSweepLocked()
	}
	return dst, staged, errs
}

// Syncs returns the number of fsyncs issued since Open — the figure of
// merit group commit improves.
func (l *Log) Syncs() int64 { return l.syncs.Load() }

// FsyncLatency returns the fsync-latency histogram (microseconds).
func (l *Log) FsyncLatency() metrics.HistogramSnapshot { return l.fsyncLat.Snapshot() }

// Has reports whether key is resident in the log's memory: logged and
// not yet retired by the sweep (a retired key re-logs as a fresh
// record, which downstream timestamp dedup discards).
func (l *Log) Has(key string) bool {
	l.mu.Lock()
	defer l.mu.Unlock()
	_, ok := l.index[key]
	return ok
}

// IsProcessed reports whether key has been marked processed and is
// still resident in memory.
func (l *Log) IsProcessed(key string) bool {
	l.mu.Lock()
	defer l.mu.Unlock()
	i, ok := l.index[key]
	return ok && l.order[i].Processed
}

// Unprocessed returns the records received but not yet processed, in
// arrival order — the restart replay set.
func (l *Log) Unprocessed() []Record {
	l.mu.Lock()
	defer l.mu.Unlock()
	var out []Record
	for _, r := range l.order {
		if !r.Processed {
			cp := r
			cp.Payload = append([]byte(nil), r.Payload...)
			out = append(out, cp)
		}
	}
	return out
}

// Len returns the all-time number of logged alerts, including records
// retired from memory and compacted off disk.
func (l *Log) Len() int {
	l.mu.Lock()
	defer l.mu.Unlock()
	return int(l.total)
}

// Pending returns the number of live records not yet marked processed
// — the replay backlog a restart would face right now. Cheap (two
// fields under the lock, no payload copies), so resource-invariant
// checks can poll it.
func (l *Log) Pending() int {
	l.mu.Lock()
	defer l.mu.Unlock()
	return len(l.order) - l.processedLive
}

// Stats snapshots the segmentation/compaction state.
func (l *Log) Stats() Stats {
	l.mu.Lock()
	defer l.mu.Unlock()
	s := Stats{
		Total:            l.total,
		Live:             len(l.order),
		Unprocessed:      len(l.order) - l.processedLive,
		Retired:          l.retired,
		CorruptRecords:   l.corrupt,
		Segments:         l.liveSegs,
		ActiveSegment:    l.activeSeq,
		SegmentsCreated:  l.segsCreated.Load(),
		SegmentsReplayed: l.replayedSegs,
		CheckpointGen:    l.ckptGen,
		Checkpoints:      l.ckptsWritten.Load(),
		CompactedBytes:   l.compactedBytes.Load(),
		Syncs:            l.syncs.Load(),
		FsyncLatency:     l.fsyncLat.Snapshot(),
	}
	for seq := l.oldestSeq; seq < l.activeSeq; seq++ {
		if fi, err := os.Stat(l.segPath(seq)); err == nil {
			s.DiskBytes += fi.Size()
		}
	}
	// The active segment counts its written bytes, not its preallocated
	// file size.
	s.DiskBytes += l.activeSize
	if l.ckptGen > 0 {
		if fi, err := os.Stat(l.ckptPath(l.ckptGen)); err == nil {
			s.DiskBytes += fi.Size()
		}
	}
	return s
}

// Path returns the journal base path (segments and checkpoints are
// derived from it).
func (l *Log) Path() string { return l.base }

// Close stops the background compactor and releases the file handles.
// Further appends fail with ErrClosed.
func (l *Log) Close() error {
	l.mu.Lock()
	if l.closed {
		l.mu.Unlock()
		return nil
	}
	l.closed = true
	l.mu.Unlock()
	if l.compactStop != nil {
		close(l.compactStop)
		<-l.compactDone
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	// Drop the preallocated tail so a closed journal occupies only its
	// real bytes (best-effort; an untruncated zero tail replays
	// cleanly).
	_ = l.f.Truncate(l.activeSize)
	err := l.f.Close()
	if derr := l.dirf.Close(); err == nil {
		err = derr
	}
	return err
}

// replayLines scans one journal stream, applying complete lines and
// returning the byte length of the intact prefix (everything before a
// torn final line). Replayed records count toward the compaction
// trigger, so reopening with a long post-checkpoint tail schedules a
// fresh checkpoint promptly.
func (l *Log) replayLines(r *bufio.Reader) (goodBytes int64) {
	for {
		line, err := r.ReadString('\n')
		if err != nil {
			// No trailing newline: torn tail. Leave goodBytes where it is.
			return goodBytes
		}
		goodBytes += int64(len(line))
		l.applyLine(line[:len(line)-1])
		l.sinceCkpt++
	}
}
