//go:build linux

package plog

import (
	"os"
	"syscall"
)

// preallocate reserves size bytes for f so appends extend into already
// allocated blocks instead of growing the file under each fsync
// (ext4/xfs can then skip the metadata journal commit on most syncs).
// Best-effort: filesystems without fallocate support (ext2/ext3, some
// network mounts) return EOPNOTSUPP and the caller ignores the error.
func preallocate(f *os.File, size int64) error {
	return syscall.Fallocate(int(f.Fd()), 0, 0, size)
}
