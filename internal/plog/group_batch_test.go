package plog

import (
	"errors"
	"fmt"
	"testing"
	"time"
)

// TestLogReceivedBatchDurableAndOrdered stages a burst, verifies
// in-memory state, and replays from disk: entries must survive in
// slice order (one journal write per burst notwithstanding).
func TestLogReceivedBatchDurableAndOrdered(t *testing.T) {
	g := openGroupTemp(t, GroupOptions{})
	const n = 50
	entries := make([]BatchEntry, n)
	for i := range entries {
		entries[i] = BatchEntry{
			Key:     fmt.Sprintf("k%03d", i),
			Payload: []byte(fmt.Sprintf("p%03d", i)),
			At:      t0.Add(time.Duration(i) * time.Millisecond),
		}
	}
	if err := g.LogReceivedBatch(entries); err != nil {
		t.Fatal(err)
	}
	if got := g.Len(); got != n {
		t.Fatalf("Len = %d, want %d", got, n)
	}
	if snap := g.StagedBatchSizes(); snap.Count != 1 || snap.Sum != n {
		t.Fatalf("StagedBatchSizes = %+v, want one burst of %d", snap, n)
	}
	path := g.Path()
	if err := g.Close(); err != nil {
		t.Fatal(err)
	}
	l, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	un := l.Unprocessed()
	if len(un) != n {
		t.Fatalf("recovered %d records, want %d", len(un), n)
	}
	for i, r := range un {
		if want := fmt.Sprintf("k%03d", i); r.Key != want {
			t.Fatalf("record %d key = %q, want %q (order lost)", i, r.Key, want)
		}
	}
}

// TestLogReceivedBatchDuplicates re-submits half the burst: duplicates
// are idempotent no-ops, and an all-duplicate burst returns nil
// without staging anything.
func TestLogReceivedBatchDuplicates(t *testing.T) {
	g := openGroupTemp(t, GroupOptions{})
	burst := []BatchEntry{
		{Key: "a", Payload: []byte("pa"), At: t0},
		{Key: "b", Payload: []byte("pb"), At: t0},
	}
	if err := g.LogReceivedBatch(burst); err != nil {
		t.Fatal(err)
	}
	mixed := []BatchEntry{
		{Key: "b", Payload: []byte("changed"), At: t0},
		{Key: "c", Payload: []byte("pc"), At: t0},
	}
	if err := g.LogReceivedBatch(mixed); err != nil {
		t.Fatal(err)
	}
	if got := g.Len(); got != 3 {
		t.Fatalf("Len = %d, want 3", got)
	}
	// All-duplicate burst: still succeeds, stages nothing.
	if err := g.LogReceivedBatch(burst); err != nil {
		t.Fatal(err)
	}
	if got := g.Appended(); got != 3 {
		t.Fatalf("Appended = %d, want 3", got)
	}
	if err := g.LogReceivedBatch([]BatchEntry{{Key: "", At: t0}}); err == nil {
		t.Fatal("empty key accepted")
	}
}

// TestMarkProcessedBatchAsync stages DONEs for a burst (with one
// unknown key mixed in), flushes via Close, and replays: processed
// entries must be gone from the recovery set, and the unknown key must
// surface a per-key error.
func TestMarkProcessedBatchAsync(t *testing.T) {
	g := openGroupTemp(t, GroupOptions{})
	entries := []BatchEntry{
		{Key: "a", Payload: []byte("pa"), At: t0},
		{Key: "b", Payload: []byte("pb"), At: t0},
		{Key: "c", Payload: []byte("pc"), At: t0},
	}
	if err := g.LogReceivedBatch(entries); err != nil {
		t.Fatal(err)
	}
	errs := g.MarkProcessedBatchAsync([]string{"a", "ghost", "c"}, t0.Add(time.Second))
	if errs == nil {
		t.Fatal("expected per-key errors for unknown key")
	}
	if errs[0] != nil || errs[2] != nil {
		t.Fatalf("known keys errored: %v", errs)
	}
	if !errors.Is(errs[1], ErrUnknownKey) {
		t.Fatalf("errs[1] = %v, want ErrUnknownKey", errs[1])
	}
	// Re-marking already-processed keys is a clean no-op.
	if errs := g.MarkProcessedBatchAsync([]string{"a", "c"}, t0.Add(2*time.Second)); errs != nil {
		t.Fatalf("re-mark errs = %v", errs)
	}
	path := g.Path()
	if err := g.Close(); err != nil {
		t.Fatal(err)
	}
	l, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	un := l.Unprocessed()
	if len(un) != 1 || un[0].Key != "b" {
		t.Fatalf("recovered unprocessed = %+v, want just b", un)
	}
}
