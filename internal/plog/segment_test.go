package plog

import (
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

// fill appends n received alerts keyed k0..k(n-1), marking every key
// processed for which keep(i) is false.
func fill(t *testing.T, l *Log, n int, keep func(i int) bool) {
	t.Helper()
	for i := 0; i < n; i++ {
		key := fmt.Sprintf("k%04d", i)
		if err := l.LogReceived(key, []byte("payload-"+key), t0.Add(time.Duration(i)*time.Millisecond)); err != nil {
			t.Fatal(err)
		}
		if !keep(i) {
			if err := l.MarkProcessed(key, t0.Add(time.Hour)); err != nil {
				t.Fatal(err)
			}
		}
	}
}

// TestSegmentRotationAndReplay forces rotations with a tiny segment cap
// and checks that recovery replays every segment in order.
func TestSegmentRotationAndReplay(t *testing.T) {
	path := filepath.Join(t.TempDir(), "rot.plog")
	l, err := OpenWithOptions(path, Options{SegmentBytes: 256})
	if err != nil {
		t.Fatal(err)
	}
	fill(t, l, 50, func(i int) bool { return i%2 == 0 })
	st := l.Stats()
	if st.Segments < 3 {
		t.Fatalf("SegmentBytes=256 with 100 appends produced only %d segments", st.Segments)
	}
	if got := len(segmentsOf(t, path)); got != st.Segments {
		t.Fatalf("on-disk segments = %d, Stats says %d", got, st.Segments)
	}
	l.Close()

	re, err := OpenWithOptions(path, Options{SegmentBytes: 256})
	if err != nil {
		t.Fatal(err)
	}
	defer re.Close()
	rst := re.Stats()
	if rst.SegmentsReplayed != st.Segments {
		t.Fatalf("replayed %d segments, want %d", rst.SegmentsReplayed, st.Segments)
	}
	if re.Len() != 50 {
		t.Fatalf("Len = %d, want 50", re.Len())
	}
	un := re.Unprocessed()
	if len(un) != 25 {
		t.Fatalf("Unprocessed = %d, want 25", len(un))
	}
	for j, rec := range un {
		want := fmt.Sprintf("k%04d", 2*j)
		if rec.Key != want || string(rec.Payload) != "payload-"+want {
			t.Fatalf("Unprocessed[%d] = %q/%q, want %q", j, rec.Key, rec.Payload, want)
		}
	}
}

// TestCheckpointCompactsSegments checks the core compaction contract:
// after a checkpoint, covered segments are gone, disk is bounded, and a
// reopen sees exactly the same logical state.
func TestCheckpointCompactsSegments(t *testing.T) {
	path := filepath.Join(t.TempDir(), "ckpt.plog")
	l, err := OpenWithOptions(path, Options{SegmentBytes: 256})
	if err != nil {
		t.Fatal(err)
	}
	fill(t, l, 60, func(i int) bool { return i >= 55 }) // only the last 5 stay unprocessed
	before := l.Stats()
	if err := l.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	st := l.Stats()
	if st.CheckpointGen != 1 || st.Checkpoints != 1 {
		t.Fatalf("checkpoint state = gen %d / %d written", st.CheckpointGen, st.Checkpoints)
	}
	if st.Segments != 1 {
		t.Fatalf("segments after compaction = %d, want 1 (fresh active)", st.Segments)
	}
	if st.CompactedBytes == 0 {
		t.Fatal("CompactedBytes = 0 after compaction")
	}
	if st.DiskBytes >= before.DiskBytes {
		t.Fatalf("disk grew across compaction: %d -> %d", before.DiskBytes, st.DiskBytes)
	}
	// Idempotent when nothing new was appended.
	if err := l.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	if got := l.Stats().Checkpoints; got != 1 {
		t.Fatalf("no-op checkpoint still wrote a file (%d)", got)
	}
	l.Close()

	re, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer re.Close()
	if re.Len() != 60 {
		t.Fatalf("Len after compacted reopen = %d, want 60", re.Len())
	}
	un := re.Unprocessed()
	if len(un) != 5 || un[0].Key != "k0055" || un[4].Key != "k0059" {
		t.Fatalf("Unprocessed after compacted reopen = %+v", un)
	}
	if rs := re.Stats().SegmentsReplayed; rs > 1 {
		t.Fatalf("reopen replayed %d segments, want <= 1", rs)
	}
}

// TestBoundedRecovery is the headline property: with background
// checkpointing on, recovery work stays O(unprocessed + tail) no matter
// how many alerts have flowed through the log.
func TestBoundedRecovery(t *testing.T) {
	path := filepath.Join(t.TempDir(), "bounded.plog")
	opts := Options{SegmentBytes: 1024, CheckpointEvery: 200, SweepEvery: 64}
	l, err := OpenWithOptions(path, opts)
	if err != nil {
		t.Fatal(err)
	}
	const n = 2000
	fill(t, l, n, func(i int) bool { return i >= n-3 })
	// The compactor runs in the background; force one last checkpoint so
	// the bound is deterministic, then verify it actually compacted.
	if err := l.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	st := l.Stats()
	if st.Checkpoints == 0 || st.CompactedBytes == 0 {
		t.Fatalf("compaction never ran: %+v", st)
	}
	if st.Retired == 0 {
		t.Fatalf("sweep never retired processed records: %+v", st)
	}
	if st.Live > 2*opts.SweepEvery+3 {
		t.Fatalf("resident records = %d, want O(SweepEvery)", st.Live)
	}
	l.Close()

	re, err := OpenWithOptions(path, opts)
	if err != nil {
		t.Fatal(err)
	}
	defer re.Close()
	rst := re.Stats()
	if rst.SegmentsReplayed > 3 {
		t.Fatalf("bounded recovery replayed %d segments after %d alerts", rst.SegmentsReplayed, n)
	}
	if re.Len() != n {
		t.Fatalf("Len survived compaction wrong: %d, want %d", re.Len(), n)
	}
	un := re.Unprocessed()
	if len(un) != 3 || un[0].Key != fmt.Sprintf("k%04d", n-3) {
		t.Fatalf("Unprocessed after bounded recovery = %+v", un)
	}
	// The log keeps working after a checkpointed reopen.
	if err := re.LogReceived("post", []byte("p"), t0); err != nil {
		t.Fatal(err)
	}
	if err := re.MarkProcessed(fmt.Sprintf("k%04d", n-1), t0); err != nil {
		t.Fatal(err)
	}
}

// TestCorruptCheckpointFallsBack simulates a crash mid-checkpoint: a
// leftover tmp file plus a torn "newer" checkpoint whose covered
// segments were NOT yet deleted (deletion is ordered after checkpoint
// durability). Recovery must discard both and recover everything from
// the previous checkpoint + full segment replay.
func TestCorruptCheckpointFallsBack(t *testing.T) {
	path := filepath.Join(t.TempDir(), "fallback.plog")
	l, err := OpenWithOptions(path, Options{SegmentBytes: 256})
	if err != nil {
		t.Fatal(err)
	}
	fill(t, l, 20, func(i int) bool { return i%4 == 0 })
	if err := l.Checkpoint(); err != nil { // durable gen 1
		t.Fatal(err)
	}
	fill2 := func(i int) bool { return i%3 == 0 }
	for i := 20; i < 40; i++ {
		key := fmt.Sprintf("k%04d", i)
		if err := l.LogReceived(key, []byte("payload-"+key), t0); err != nil {
			t.Fatal(err)
		}
		if !fill2(i) {
			if err := l.MarkProcessed(key, t0.Add(time.Hour)); err != nil {
				t.Fatal(err)
			}
		}
	}
	wantUn := l.Unprocessed()
	wantLen := l.Len()
	l.Close()

	// Crash artifacts: a half-written tmp and a torn gen-2 checkpoint
	// (renamed into place but missing its END trailer — e.g. a torn
	// sector). The gen-1 checkpoint and every later segment still exist.
	if err := os.WriteFile(path+".ckpt.tmp", []byte("CKPT 1 3 9 9"), 0o644); err != nil {
		t.Fatal(err)
	}
	torn := "CKPT 1 2 99 2 40 0\nRECV 0 " + b64("k0000") + " " + b64("x") + "\n"
	if err := os.WriteFile(path+".ckpt.00000002", []byte(torn), 0o644); err != nil {
		t.Fatal(err)
	}

	re, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer re.Close()
	if re.Len() != wantLen {
		t.Fatalf("Len after fallback = %d, want %d", re.Len(), wantLen)
	}
	gotUn := re.Unprocessed()
	if len(gotUn) != len(wantUn) {
		t.Fatalf("Unprocessed after fallback = %d records, want %d", len(gotUn), len(wantUn))
	}
	for i := range gotUn {
		if gotUn[i].Key != wantUn[i].Key || string(gotUn[i].Payload) != string(wantUn[i].Payload) {
			t.Fatalf("Unprocessed[%d] = %+v, want %+v", i, gotUn[i], wantUn[i])
		}
	}
	st := re.Stats()
	if st.CheckpointGen != 1 {
		t.Fatalf("fallback checkpoint gen = %d, want 1", st.CheckpointGen)
	}
	if st.CorruptRecords == 0 {
		t.Fatal("corrupt checkpoint not counted")
	}
	// The torn artifacts are gone from disk.
	if _, err := os.Stat(path + ".ckpt.tmp"); !os.IsNotExist(err) {
		t.Fatal("tmp checkpoint survived recovery")
	}
	if _, err := os.Stat(path + ".ckpt.00000002"); !os.IsNotExist(err) {
		t.Fatal("corrupt checkpoint survived recovery")
	}
	// And checkpointing resumes past the poisoned generation.
	if err := re.LogReceived("resume", []byte("p"), t0); err != nil {
		t.Fatal(err)
	}
	if err := re.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	if gen := re.Stats().CheckpointGen; gen != 2 {
		t.Fatalf("post-fallback checkpoint gen = %d, want 2", gen)
	}
}

// TestSweepRetiresProcessed checks the memory bound: processed records
// are tombstoned immediately (payload freed) and the periodic sweep
// drops them from the index entirely.
func TestSweepRetiresProcessed(t *testing.T) {
	path := filepath.Join(t.TempDir(), "sweep.plog")
	l, err := OpenWithOptions(path, Options{SweepEvery: 8})
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	fill(t, l, 20, func(i int) bool { return i >= 16 })
	st := l.Stats()
	if st.Retired != 16 {
		t.Fatalf("Retired = %d, want 16", st.Retired)
	}
	if st.Live != 4 || st.Unprocessed != 4 {
		t.Fatalf("Live/Unprocessed = %d/%d, want 4/4", st.Live, st.Unprocessed)
	}
	if l.Len() != 20 {
		t.Fatalf("Len = %d, want 20 (all-time)", l.Len())
	}
	// Swept keys are gone from the index…
	if l.Has("k0000") || l.IsProcessed("k0000") {
		t.Fatal("swept key still resident")
	}
	if err := l.MarkProcessed("k0000", t0); !strings.Contains(fmt.Sprint(err), "unknown key") {
		t.Fatalf("MarkProcessed(swept) = %v, want ErrUnknownKey", err)
	}
	// …while survivors keep full fidelity and arrival order.
	un := l.Unprocessed()
	if len(un) != 4 || un[0].Key != "k0016" || un[3].Key != "k0019" {
		t.Fatalf("Unprocessed after sweep = %+v", un)
	}
}
