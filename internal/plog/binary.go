package plog

import (
	"bufio"
	"encoding/binary"
	"hash/crc32"
	"io"
	"time"
)

// Binary journal framing. Segments written by this version open with an
// 8-byte magic header and then carry length-prefixed binary frames:
//
//	offset  size  field
//	0       4     frame length N (u32 LE; bytes after this prefix)
//	4       1     record type ('R' = RECV, 'D' = DONE)
//	5       8     unix-nanos timestamp (i64 LE)
//	13      4     key length K (u32 LE)
//	17      K     key bytes
//	17+K    P     payload bytes (P = N − 17 − K; empty for DONE)
//	17+K+P  4     CRC32C (Castagnoli, LE) over bytes [4, 4+N−4)
//
// so N = 17 + K + P and a frame occupies 4 + N bytes on disk. The CRC
// covers everything after the length prefix except itself, so any
// single-bit flip inside a frame body is detected; replay stops at the
// first frame that fails its checksum (frames cannot be resynchronized
// past a corrupt length), counting it in Stats.CorruptRecords. A
// zero-valued length prefix marks the clean end of a preallocated
// segment's zero tail, and a frame cut short by a crash mid-write is a
// torn tail: replay keeps the intact prefix, exactly as the old
// line-oriented format truncated at the last complete line. CRC-valid
// frames with an unknown record type are skipped (forward
// compatibility, mirroring the old format's unknown-opcode rule).
//
// Replacing the text+base64 lines, this framing writes keys and
// payloads verbatim (no 4/3 base64 expansion, no per-byte encode work)
// and validates with hardware-accelerated CRC32C instead of line
// heuristics.

// segMagic opens every binary segment. Files without it replay through
// the legacy text parser, which is how pre-binary journals migrate: the
// old segments are read once as text and the active segment rotates to
// a fresh binary one before any new append.
const segMagic = "SIMBAW1\n"

// segHeaderSize is the byte offset of the first frame in a binary
// segment.
const segHeaderSize = int64(len(segMagic))

const (
	frameRecv = byte('R')
	frameDone = byte('D')
	// frameOverhead is a frame's fixed body cost: type + nanos + key
	// length + CRC. The minimum frame length (empty key, no payload).
	frameOverhead = 1 + 8 + 4 + 4
	// frameMaxLen rejects absurd length prefixes (torn or corrupt)
	// before any allocation is sized from them.
	frameMaxLen = 1 << 28
)

// castagnoli is the CRC32C polynomial table; hash/crc32 dispatches to
// the hardware instruction (SSE4.2 CRC32 / ARMv8 CRC) when available.
var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// appendFrame appends one binary frame to dst.
func appendFrame(dst []byte, typ byte, nanos int64, key string, payload []byte) []byte {
	n := frameOverhead + len(key) + len(payload)
	dst = binary.LittleEndian.AppendUint32(dst, uint32(n))
	body := len(dst)
	dst = append(dst, typ)
	dst = binary.LittleEndian.AppendUint64(dst, uint64(nanos))
	dst = binary.LittleEndian.AppendUint32(dst, uint32(len(key)))
	dst = append(dst, key...)
	dst = append(dst, payload...)
	sum := crc32.Checksum(dst[body:], castagnoli)
	return binary.LittleEndian.AppendUint32(dst, sum)
}

// appendRecv appends a RECV frame to dst. (The name is kept from the
// text encoder it replaces; all new appends are binary.)
func appendRecv(dst []byte, nanos int64, key string, payload []byte) []byte {
	return appendFrame(dst, frameRecv, nanos, key, payload)
}

// appendDone appends a DONE frame to dst.
func appendDone(dst []byte, nanos int64, key string) []byte {
	return appendFrame(dst, frameDone, nanos, key, nil)
}

// replayFrames scans one binary segment stream positioned just past the
// magic header, applying every CRC-valid frame and returning the byte
// length of the intact frame sequence (excluding the header). It stops
// at the clean end (EOF or a zero length prefix — the preallocated
// tail), at a torn frame (length prefix promising more bytes than
// exist), or at the first checksum failure (counted in CorruptRecords;
// binary frames cannot resync past a bad record). Replayed records
// count toward the compaction trigger, as in text replay.
func (l *Log) replayFrames(r *bufio.Reader) (goodBytes int64) {
	var hdr [4]byte
	var buf []byte
	for {
		if _, err := io.ReadFull(r, hdr[:]); err != nil {
			return goodBytes // EOF or torn length prefix
		}
		n := binary.LittleEndian.Uint32(hdr[:])
		if n == 0 {
			return goodBytes // preallocated zero tail: clean end
		}
		if n < frameOverhead || n > frameMaxLen {
			l.corrupt++
			return goodBytes
		}
		if cap(buf) < int(n) {
			buf = make([]byte, n)
		}
		buf = buf[:n]
		if _, err := io.ReadFull(r, buf); err != nil {
			return goodBytes // torn tail: incomplete frame
		}
		body := buf[:n-4]
		if crc32.Checksum(body, castagnoli) != binary.LittleEndian.Uint32(buf[n-4:]) {
			l.corrupt++
			return goodBytes
		}
		l.applyFrame(body)
		goodBytes += int64(4 + n)
		l.sinceCkpt++
	}
}

// applyFrame applies one CRC-validated frame body (type through
// payload, checksum already stripped and verified).
func (l *Log) applyFrame(body []byte) {
	typ := body[0]
	nanos := int64(binary.LittleEndian.Uint64(body[1:9]))
	klen := int(binary.LittleEndian.Uint32(body[9:13]))
	if 13+klen > len(body) {
		// Checksum-valid but structurally inconsistent: a writer bug,
		// not disk damage. Count it and keep scanning — the frame
		// boundary itself is intact.
		l.corrupt++
		return
	}
	key := body[13 : 13+klen]
	payload := body[13+klen:]
	switch typ {
	case frameRecv:
		l.addReceivedLocked(string(key), append([]byte(nil), payload...), time.Unix(0, nanos).UTC())
	case frameDone:
		if i, ok := l.index[string(key)]; ok && !l.order[i].Processed {
			l.markProcessedLocked(i)
		}
	default:
		// Unknown record type: skip (forward compatibility).
	}
}
