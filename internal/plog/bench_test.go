package plog

import (
	"fmt"
	"path/filepath"
	"sync"
	"testing"
	"time"
)

// BenchmarkLogAppend measures the per-append cost of the journal
// encoder on the plain (fsync-per-append) log: one LogReceived plus one
// MarkProcessed per iteration. The figure of merit is allocs/op — the
// encoder should reuse one append buffer instead of allocating
// per-line strings.
func BenchmarkLogAppend(b *testing.B) {
	l, err := Open(filepath.Join(b.TempDir(), "bench.plog"))
	if err != nil {
		b.Fatal(err)
	}
	defer l.Close()
	payload := []byte("subject=quote-update source=portal urgency=normal body=MSFT+0.42")
	keys := make([]string, b.N)
	for i := range keys {
		keys[i] = fmt.Sprintf("user-%d\x1fa-%d", i%1024, i)
	}
	at := time.Date(2001, 3, 26, 9, 0, 0, 0, time.UTC)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := l.LogReceived(keys[i], payload, at); err != nil {
			b.Fatal(err)
		}
		if err := l.MarkProcessed(keys[i], at); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkLaneAppend pushes the same concurrent workload through 1,
// 4, and 8 WAL lanes (workers pinned to lanes, as the hub pins
// shards): the sweep measures what partitioned group commit buys —
// independent fsync pipelines instead of one serialized committer.
func BenchmarkLaneAppend(b *testing.B) {
	const alerts = 100_000
	payload := []byte("subject=quote-update source=portal urgency=normal body=MSFT+0.42")
	at := time.Date(2001, 3, 26, 9, 0, 0, 0, time.UTC)
	for _, lanes := range []int{1, 4, 8} {
		b.Run(fmt.Sprintf("lanes-%d", lanes), func(b *testing.B) {
			for n := 0; n < b.N; n++ {
				s, err := OpenLanes(filepath.Join(b.TempDir(), "lanes.plog"), lanes, GroupOptions{})
				if err != nil {
					b.Fatal(err)
				}
				start := time.Now()
				const workers = 64
				var wg sync.WaitGroup
				for w := 0; w < workers; w++ {
					wg.Add(1)
					go func(w int) {
						defer wg.Done()
						lane := s.Lane(w % lanes)
						for i := w; i < alerts; i += workers {
							key := fmt.Sprintf("user-%d\x1fa-%d", i%4096, i)
							if err := lane.LogReceived(key, payload, at); err != nil {
								b.Error(err)
								return
							}
							if err := lane.MarkProcessedAsync(key, at); err != nil {
								b.Error(err)
								return
							}
						}
					}(w)
				}
				wg.Wait()
				elapsed := time.Since(start)
				b.ReportMetric(float64(alerts)/elapsed.Seconds(), "alerts/s")
				b.ReportMetric(float64(s.Syncs())/float64(alerts), "fsyncs/alert")
				if err := s.Close(); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkLogSustained pushes ~200k alerts through a group-commit log
// and reports what segmentation buys on a long-lived journal: bounded
// disk (segments + checkpoint instead of one ever-growing file) and
// bounded reopen time (checkpoint load + short tail replay instead of a
// full scan). The unbounded sub-benchmark is the pre-segmentation
// configuration, kept as the baseline.
func BenchmarkLogSustained(b *testing.B) {
	const alerts = 200_000
	run := func(b *testing.B, opts Options) {
		payload := []byte("subject=quote-update source=portal urgency=normal body=MSFT+0.42")
		at := time.Date(2001, 3, 26, 9, 0, 0, 0, time.UTC)
		for n := 0; n < b.N; n++ {
			path := filepath.Join(b.TempDir(), "sustained.plog")
			g, err := OpenGroup(path, GroupOptions{Log: opts})
			if err != nil {
				b.Fatal(err)
			}
			const workers = 64
			var wg sync.WaitGroup
			for w := 0; w < workers; w++ {
				wg.Add(1)
				go func(w int) {
					defer wg.Done()
					for i := w; i < alerts; i += workers {
						key := fmt.Sprintf("user-%d\x1fa-%d", i%4096, i)
						if err := g.LogReceived(key, payload, at); err != nil {
							b.Error(err)
							return
						}
						if err := g.MarkProcessedAsync(key, at); err != nil {
							b.Error(err)
							return
						}
					}
				}(w)
			}
			wg.Wait()
			if err := g.Close(); err != nil {
				b.Fatal(err)
			}

			st := func() Stats {
				l, err := OpenWithOptions(path, opts)
				if err != nil {
					b.Fatal(err)
				}
				defer l.Close()
				return l.Stats()
			}
			start := time.Now()
			s := st()
			reopen := time.Since(start)
			if s.Total != alerts {
				b.Fatalf("reopened Total = %d, want %d", s.Total, alerts)
			}
			b.ReportMetric(float64(reopen.Milliseconds()), "reopen-ms")
			b.ReportMetric(float64(s.DiskBytes)/(1<<20), "disk-MB")
			b.ReportMetric(float64(s.SegmentsReplayed), "segs-replayed")
		}
	}
	b.Run("segmented", func(b *testing.B) {
		run(b, Options{SegmentBytes: 4 << 20, CheckpointEvery: 50_000})
	})
	b.Run("unbounded", func(b *testing.B) {
		// Pre-segmentation behavior: one giant segment, no checkpoints,
		// no sweep — recovery rescans everything.
		run(b, Options{SegmentBytes: 1 << 40, SweepEvery: -1})
	})
}
