package plog

import (
	"fmt"
	"runtime"
	"strings"
	"sync"
	"testing"
	"time"
)

// The adaptive committer's contract: Window is an upper bound on the
// commit wait, not a constant tax. These tests pick absurdly large
// windows so a scheduler that ever waits the full window times out
// loudly, while the adaptive paths (idle fire, threshold force-flush,
// close) finish in milliseconds. Generous elapsed bounds keep them
// honest on slow CI machines.

// TestAdaptiveIdleFiresImmediately: an append that wakes a parked
// committer commits immediately — even right after a previous fsync.
// A lone committer is never delayed; pacing needs company (a backlog
// staged while an fsync was in flight).
func TestAdaptiveIdleFiresImmediately(t *testing.T) {
	g := openGroupTemp(t, GroupOptions{Window: 30 * time.Second})
	for i := 0; i < 3; i++ {
		start := time.Now()
		if err := g.LogReceived(fmt.Sprintf("k%d", i), []byte("p"), t0); err != nil {
			t.Fatal(err)
		}
		if el := time.Since(start); el > 5*time.Second {
			t.Fatalf("idle append %d took %v, want immediate (window 30s)", i, el)
		}
	}
}

// TestAdaptiveIdleGapCountsAsWindow: with a small window, a burst, an
// idle gap longer than the window, then another burst — the second
// burst must commit without re-waiting the window.
func TestAdaptiveIdleGapCountsAsWindow(t *testing.T) {
	const window = 50 * time.Millisecond
	g := openGroupTemp(t, GroupOptions{Window: window})
	if err := g.LogReceived("k0", []byte("p"), t0); err != nil {
		t.Fatal(err)
	}
	time.Sleep(2 * window) // idle longer than the window
	start := time.Now()
	if err := g.LogReceived("k1", []byte("p"), t0); err != nil {
		t.Fatal(err)
	}
	if el := time.Since(start); el > window/2 {
		t.Fatalf("post-idle append waited %v, want well under the %v window", el, window)
	}
}

// TestAdaptiveForceFlushRecords: a backlog at or over CommitMaxRecords
// must commit without waiting out the window. With the threshold at 1
// record, every backlog qualifies, so no interleaving of the
// concurrent appends below can leave a sub-threshold straggler parked
// for the 30s window — any wait at all fails the elapsed bound.
func TestAdaptiveForceFlushRecords(t *testing.T) {
	g := openGroupTemp(t, GroupOptions{Window: 30 * time.Second, CommitMaxRecords: 1})
	// Warm-up commit so lastSync is recent and a paced committer would,
	// absent the threshold, hold any backlog for the window remainder.
	if err := g.LogReceived("warm", []byte("p"), t0); err != nil {
		t.Fatal(err)
	}
	start := time.Now()
	const n = 8
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			if err := g.LogReceived(fmt.Sprintf("k%d", i), []byte("p"), t0); err != nil {
				t.Error(err)
			}
		}(i)
	}
	wg.Wait()
	if el := time.Since(start); el > 10*time.Second {
		t.Fatalf("%d appends with CommitMaxRecords=1 took %v, want force-flush (window 30s)", n, el)
	}
}

// TestAdaptiveForceFlushBytes: byte-volume threshold, same contract —
// each 128-byte payload alone exceeds CommitMaxBytes, so any backlog
// the concurrent appends form is over threshold and must not park.
func TestAdaptiveForceFlushBytes(t *testing.T) {
	g := openGroupTemp(t, GroupOptions{Window: 30 * time.Second, CommitMaxBytes: 64})
	if err := g.LogReceived("warm", []byte("p"), t0); err != nil {
		t.Fatal(err)
	}
	start := time.Now()
	const n = 8
	payload := []byte(strings.Repeat("x", 128))
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			if err := g.LogReceived(fmt.Sprintf("big%d", i), payload, t0); err != nil {
				t.Error(err)
			}
		}(i)
	}
	wg.Wait()
	if el := time.Since(start); el > 10*time.Second {
		t.Fatalf("%d over-bytes appends took %v, want force-flush (window 30s)", n, el)
	}
}

// TestAdaptiveCloseCutsWindowShort: Close must not strand a committer
// parked mid-window — the staged batch commits and Close returns.
func TestAdaptiveCloseCutsWindowShort(t *testing.T) {
	g := openGroupTemp(t, GroupOptions{Window: 30 * time.Second})
	if err := g.LogReceived("warm", []byte("p"), t0); err != nil {
		t.Fatal(err)
	}
	errc := make(chan error, 1)
	go func() { errc <- g.LogReceived("parked", []byte("p"), t0) }()
	// Wait until the record is staged (Appended counts staging, not
	// commit) so Close races the window wait, not the append itself.
	deadline := time.Now().Add(5 * time.Second)
	for g.Appended() < 2 {
		if time.Now().After(deadline) {
			t.Fatal("append never staged")
		}
		time.Sleep(100 * time.Microsecond)
	}
	start := time.Now()
	if err := g.Close(); err != nil {
		t.Fatal(err)
	}
	if el := time.Since(start); el > 10*time.Second {
		t.Fatalf("Close took %v, want immediate flush (window 30s)", el)
	}
	if err := <-errc; err != nil {
		t.Fatalf("append staged before Close failed: %v", err)
	}
}

// TestGroupLogOpenCloseLeak cycles a journal open/append/close 1000
// times and checks the process goroutine count stays flat: every
// committer exits and every window timer is stopped and drained.
func TestGroupLogOpenCloseLeak(t *testing.T) {
	if testing.Short() {
		t.Skip("1k open/close cycles")
	}
	dir := t.TempDir()
	before := runtime.NumGoroutine()
	for i := 0; i < 1000; i++ {
		g, err := OpenGroup(fmt.Sprintf("%s/leak%03d.plog", dir, i%8), GroupOptions{Window: time.Millisecond})
		if err != nil {
			t.Fatal(err)
		}
		if err := g.LogReceived(fmt.Sprintf("k%d", i), []byte("p"), t0); err != nil {
			t.Fatal(err)
		}
		if err := g.Close(); err != nil {
			t.Fatal(err)
		}
	}
	// Give any stragglers a moment, then compare with slack for runtime
	// background goroutines.
	var after int
	for wait := 0; wait < 50; wait++ {
		runtime.GC()
		after = runtime.NumGoroutine()
		if after <= before+5 {
			return
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Fatalf("goroutines grew from %d to %d across 1000 open/close cycles", before, after)
}
