package plog

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"simba/internal/metrics"
)

// A LaneSet partitions one logical journal into n independent
// group-commit lanes, each a complete GroupLog — its own segmented
// files, commit window, committer goroutine, and fsync pipeline — so
// callers that shard their keys (the hub routes each shard to a lane)
// stage and sync in parallel instead of serializing on one log.
//
// On-disk, lane 0 lives at the base path itself (so a 1-lane set is
// bit-identical to a plain GroupLog, and existing single-lane journals
// open as lane 0 of any set), and lane i > 0 lives at
// "<base>.lane<NN>". Opening discovers lanes left by a previous run
// with a higher lane count and recovers them too — records never
// strand when the configured count shrinks — though new appends only
// go wherever the caller routes them.
//
// The merged replay contract: Unprocessed returns all lanes' pending
// records ordered by received-at timestamp (ties broken by lane
// index). Since a key is always routed to the same lane while the
// lane count is stable, per-key — hence per-user — replay order
// matches what a single-lane journal would produce; only cross-user
// interleaving differs, which the downstream timestamp dedup already
// tolerates (the same freedom the paper's per-user ordering contract
// grants).
type LaneSet struct {
	base  string
	lanes []*GroupLog
}

// LanePath returns lane i's journal base path.
func LanePath(base string, lane int) string {
	if lane == 0 {
		return base
	}
	return fmt.Sprintf("%s.lane%02d", base, lane)
}

// scanLanes returns the highest lane index with files on disk (0 when
// only the base journal, or nothing, exists).
func scanLanes(base string) (int, error) {
	entries, err := os.ReadDir(filepath.Dir(base))
	if err != nil {
		return 0, fmt.Errorf("plog: scanning lanes of %s: %w", base, err)
	}
	prefix := filepath.Base(base) + ".lane"
	maxLane := 0
	for _, e := range entries {
		rest, ok := strings.CutPrefix(e.Name(), prefix)
		if !ok {
			continue
		}
		digits := rest
		if i := strings.IndexByte(rest, '.'); i >= 0 {
			digits = rest[:i]
		}
		if lane, err := strconv.Atoi(digits); err == nil && lane > maxLane {
			maxLane = lane
		}
	}
	return maxLane, nil
}

// OpenLanes opens (creating as needed) an n-lane journal set at base,
// recovering every lane concurrently. Lanes left behind by a previous
// run with a higher count are opened as well, so their unprocessed
// records replay; n is a minimum, not an exact width. All lanes share
// the same options. On any failure every opened lane is closed and the
// joined error returned.
func OpenLanes(base string, n int, opts GroupOptions) (*LaneSet, error) {
	if n < 1 {
		n = 1
	}
	if found, err := scanLanes(base); err != nil {
		return nil, err
	} else if found+1 > n {
		n = found + 1
	}
	lanes := make([]*GroupLog, n)
	errs := make([]error, n)
	var wg sync.WaitGroup
	for i := range lanes {
		wg.Add(1)
		go func() {
			defer wg.Done()
			lanes[i], errs[i] = OpenGroup(LanePath(base, i), opts)
		}()
	}
	wg.Wait()
	if err := errors.Join(errs...); err != nil {
		for _, l := range lanes {
			if l != nil {
				l.Close()
			}
		}
		return nil, err
	}
	return &LaneSet{base: base, lanes: lanes}, nil
}

// Lanes returns the number of open lanes (>= the n requested at open).
func (s *LaneSet) Lanes() int { return len(s.lanes) }

// Lane returns lane i for direct appends; the caller owns the
// key→lane routing and must keep it stable for per-key ordering.
func (s *LaneSet) Lane(i int) *GroupLog { return s.lanes[i] }

// Path returns the journal base path (lane 0's path).
func (s *LaneSet) Path() string { return s.base }

// Pending sums the lanes' live not-yet-processed record counts — the
// set's current replay backlog. Cheap enough for resource-invariant
// checks to poll, unlike Unprocessed (which copies payloads).
func (s *LaneSet) Pending() int {
	n := 0
	for _, l := range s.lanes {
		n += l.Pending()
	}
	return n
}

// Has reports whether key is resident in any lane.
func (s *LaneSet) Has(key string) bool {
	for _, l := range s.lanes {
		if l.Has(key) {
			return true
		}
	}
	return false
}

// IsProcessed reports whether key is marked processed in any lane.
func (s *LaneSet) IsProcessed(key string) bool {
	for _, l := range s.lanes {
		if l.IsProcessed(key) {
			return true
		}
	}
	return false
}

// Len returns the all-time number of logged alerts across lanes.
func (s *LaneSet) Len() int {
	n := 0
	for _, l := range s.lanes {
		n += l.Len()
	}
	return n
}

// Syncs returns the total fsyncs issued across lanes.
func (s *LaneSet) Syncs() int64 {
	var n int64
	for _, l := range s.lanes {
		n += l.Syncs()
	}
	return n
}

// Appended returns the total records staged across lanes.
func (s *LaneSet) Appended() int64 {
	var n int64
	for _, l := range s.lanes {
		n += l.Appended()
	}
	return n
}

// LaneRecord is one unprocessed record tagged with the lane holding
// it, so the caller can retire it on the same lane after replay.
type LaneRecord struct {
	Record
	Lane int
}

// Unprocessed returns every lane's pending records merged by
// received-at timestamp (ties broken by lane index) — the restart
// replay set. See the type comment for why this preserves per-user
// order.
func (s *LaneSet) Unprocessed() []LaneRecord {
	var out []LaneRecord
	for i, l := range s.lanes {
		for _, r := range l.Unprocessed() {
			out = append(out, LaneRecord{Record: r, Lane: i})
		}
	}
	sort.SliceStable(out, func(a, b int) bool {
		return out[a].ReceivedAt.Before(out[b].ReceivedAt)
	})
	return out
}

// Stats returns one aggregated snapshot: counters summed across lanes,
// histograms merged, ActiveSegment/CheckpointGen reported as the
// maximum (they are per-lane sequence numbers with no meaningful sum).
func (s *LaneSet) Stats() Stats {
	var agg Stats
	for i, l := range s.lanes {
		ls := l.Stats()
		if i == 0 {
			agg = ls
			continue
		}
		agg.Total += ls.Total
		agg.Live += ls.Live
		agg.Unprocessed += ls.Unprocessed
		agg.Retired += ls.Retired
		agg.CorruptRecords += ls.CorruptRecords
		agg.Segments += ls.Segments
		agg.SegmentsCreated += ls.SegmentsCreated
		agg.SegmentsReplayed += ls.SegmentsReplayed
		agg.Checkpoints += ls.Checkpoints
		agg.CompactedBytes += ls.CompactedBytes
		agg.DiskBytes += ls.DiskBytes
		agg.Syncs += ls.Syncs
		if ls.ActiveSegment > agg.ActiveSegment {
			agg.ActiveSegment = ls.ActiveSegment
		}
		if ls.CheckpointGen > agg.CheckpointGen {
			agg.CheckpointGen = ls.CheckpointGen
		}
		agg.FsyncLatency = agg.FsyncLatency.Merge(ls.FsyncLatency)
		agg.CommitBatches = agg.CommitBatches.Merge(ls.CommitBatches)
		agg.StagedBatches = agg.StagedBatches.Merge(ls.StagedBatches)
		agg.CommitWait = agg.CommitWait.Merge(ls.CommitWait)
	}
	return agg
}

// FsyncLatency returns the fsync-latency histogram (microseconds)
// merged across lanes.
func (s *LaneSet) FsyncLatency() metrics.HistogramSnapshot {
	var m metrics.HistogramSnapshot
	for _, l := range s.lanes {
		m = m.Merge(l.FsyncLatency())
	}
	return m
}

// BatchSizes returns the group-commit batch-size histogram (records
// per fsync) merged across lanes.
func (s *LaneSet) BatchSizes() metrics.HistogramSnapshot {
	var m metrics.HistogramSnapshot
	for _, l := range s.lanes {
		m = m.Merge(l.BatchSizes())
	}
	return m
}

// StagedBatchSizes returns the ingest staged-batch histogram (fresh
// records per LogReceivedBatch call) merged across lanes.
func (s *LaneSet) StagedBatchSizes() metrics.HistogramSnapshot {
	var m metrics.HistogramSnapshot
	for _, l := range s.lanes {
		m = m.Merge(l.StagedBatchSizes())
	}
	return m
}

// CommitWaitLatency returns the batch-open→durable latency histogram
// (microseconds) merged across lanes.
func (s *LaneSet) CommitWaitLatency() metrics.HistogramSnapshot {
	var m metrics.HistogramSnapshot
	for _, l := range s.lanes {
		m = m.Merge(l.CommitWaitLatency())
	}
	return m
}

// PerLaneStats snapshots each lane separately, index-aligned with the
// lane numbering (each Stats carries its own Syncs and FsyncLatency,
// so per-lane fsync behavior is visible).
func (s *LaneSet) PerLaneStats() []Stats {
	out := make([]Stats, len(s.lanes))
	for i, l := range s.lanes {
		out[i] = l.Stats()
	}
	return out
}

// MarkProcessed durably retires key on the lane that holds it,
// scanning lanes when the caller does not know the home lane (replay
// tombstoning). Returns ErrUnknownKey when no lane has it.
func (s *LaneSet) MarkProcessed(key string, at time.Time) error {
	for _, l := range s.lanes {
		if l.Has(key) {
			return l.MarkProcessed(key, at)
		}
	}
	return fmt.Errorf("plog: mark processed %q: %w", key, ErrUnknownKey)
}

// Checkpoint forces a checkpoint + compaction on every lane.
func (s *LaneSet) Checkpoint() error {
	errs := make([]error, len(s.lanes))
	var wg sync.WaitGroup
	for i, l := range s.lanes {
		wg.Add(1)
		go func() {
			defer wg.Done()
			errs[i] = l.Checkpoint()
		}()
	}
	wg.Wait()
	return errors.Join(errs...)
}

// Close flushes and closes every lane (concurrently — each lane's
// Close waits out its committer).
func (s *LaneSet) Close() error {
	errs := make([]error, len(s.lanes))
	var wg sync.WaitGroup
	for i, l := range s.lanes {
		wg.Add(1)
		go func() {
			defer wg.Done()
			errs[i] = l.Close()
		}()
	}
	wg.Wait()
	return errors.Join(errs...)
}
