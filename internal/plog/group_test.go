package plog

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"math/rand"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"testing/quick"
	"time"
)

func openGroupTemp(t *testing.T, opts GroupOptions) *GroupLog {
	t.Helper()
	g, err := OpenGroup(filepath.Join(t.TempDir(), "group.plog"), opts)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { g.Close() })
	return g
}

func TestGroupLogRoundTrip(t *testing.T) {
	g := openGroupTemp(t, GroupOptions{})
	if err := g.LogReceived("k1", []byte("p1"), t0); err != nil {
		t.Fatal(err)
	}
	if err := g.MarkProcessed("k1", t0.Add(time.Second)); err != nil {
		t.Fatal(err)
	}
	if err := g.LogReceived("k2", []byte("p2"), t0); err != nil {
		t.Fatal(err)
	}
	if !g.Has("k1") || !g.IsProcessed("k1") || g.IsProcessed("k2") {
		t.Fatal("in-memory state wrong")
	}
	path := g.Path()
	if err := g.Close(); err != nil {
		t.Fatal(err)
	}
	l, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	un := l.Unprocessed()
	if len(un) != 1 || un[0].Key != "k2" || string(un[0].Payload) != "p2" {
		t.Fatalf("recovered unprocessed = %+v", un)
	}
}

// TestLogConcurrentAppend hammers the plain per-append Log from many
// goroutines: every append must survive and the journal must replay
// cleanly.
func TestLogConcurrentAppend(t *testing.T) {
	l := openTemp(t)
	const workers, per = 8, 50
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				key := fmt.Sprintf("w%d-%d", w, i)
				if err := l.LogReceived(key, []byte("payload"), t0); err != nil {
					t.Error(err)
					return
				}
				if err := l.MarkProcessed(key, t0.Add(time.Second)); err != nil {
					t.Error(err)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	if l.Len() != workers*per {
		t.Fatalf("Len = %d, want %d", l.Len(), workers*per)
	}
	path := l.Path()
	l.Close()
	re, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer re.Close()
	if re.Len() != workers*per {
		t.Fatalf("recovered Len = %d, want %d", re.Len(), workers*per)
	}
	if un := re.Unprocessed(); len(un) != 0 {
		t.Fatalf("recovered %d unprocessed, want 0", len(un))
	}
}

// TestGroupLogConcurrentAppend does the same through group commit and
// additionally checks that batching actually happened.
func TestGroupLogConcurrentAppend(t *testing.T) {
	g := openGroupTemp(t, GroupOptions{Window: time.Millisecond})
	const workers, per = 16, 40
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				key := fmt.Sprintf("w%d-%d", w, i)
				if err := g.LogReceived(key, []byte("payload"), t0); err != nil {
					t.Error(err)
					return
				}
				if err := g.MarkProcessed(key, t0.Add(time.Second)); err != nil {
					t.Error(err)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	appends, syncs := g.Appended(), g.Syncs()
	if appends != workers*per*2 {
		t.Fatalf("Appended = %d, want %d", appends, workers*per*2)
	}
	if syncs >= appends {
		t.Fatalf("group commit did not batch: %d syncs for %d appends", syncs, appends)
	}
	path := g.Path()
	if err := g.Close(); err != nil {
		t.Fatal(err)
	}
	re, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer re.Close()
	if re.Len() != workers*per {
		t.Fatalf("recovered Len = %d, want %d", re.Len(), workers*per)
	}
	if un := re.Unprocessed(); len(un) != 0 {
		t.Fatalf("recovered %d unprocessed, want 0", len(un))
	}
}

func TestGroupLogDuplicateIsIdempotent(t *testing.T) {
	g := openGroupTemp(t, GroupOptions{})
	if err := g.LogReceived("k", []byte("first"), t0); err != nil {
		t.Fatal(err)
	}
	if err := g.LogReceived("k", []byte("second"), t0.Add(time.Minute)); err != nil {
		t.Fatal(err)
	}
	if err := g.MarkProcessed("k", t0.Add(time.Hour)); err != nil {
		t.Fatal(err)
	}
	if err := g.MarkProcessed("k", t0.Add(2*time.Hour)); err != nil {
		t.Fatal(err)
	}
	if g.Appended() != 2 {
		t.Fatalf("Appended = %d, want 2 (duplicates are no-ops)", g.Appended())
	}
}

func TestGroupLogClosedRejectsAppends(t *testing.T) {
	g := openGroupTemp(t, GroupOptions{})
	if err := g.Close(); err != nil {
		t.Fatal(err)
	}
	if err := g.LogReceived("k", nil, t0); err != ErrClosed {
		t.Fatalf("LogReceived after close = %v, want ErrClosed", err)
	}
	if err := g.Close(); err != nil {
		t.Fatalf("second Close = %v", err)
	}
}

// TestGroupLogMaxBatchSplits checks that MaxBatch bounds commit size.
func TestGroupLogMaxBatchSplits(t *testing.T) {
	g := openGroupTemp(t, GroupOptions{Window: 2 * time.Millisecond, MaxBatch: 4})
	const n = 32
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			if err := g.LogReceived(fmt.Sprintf("k%d", i), nil, t0); err != nil {
				t.Error(err)
			}
		}(i)
	}
	wg.Wait()
	if syncs := g.Syncs(); syncs < n/4 {
		t.Fatalf("MaxBatch=4 with %d appends took %d syncs, want >= %d", n, syncs, n/4)
	}
}

// countFrames mirrors binary recovery over raw segment bytes: the
// magic header, then complete CRC-valid frames until the data runs
// out. A file whose magic itself was torn replays as empty.
func countFrames(data []byte) (recv, done int) {
	if len(data) < len(segMagic) || string(data[:len(segMagic)]) != segMagic {
		return 0, 0
	}
	rest := data[len(segMagic):]
	for len(rest) >= 4 {
		n := int(binary.LittleEndian.Uint32(rest[:4]))
		if n < frameOverhead || n > frameMaxLen || len(rest) < 4+n {
			return
		}
		body := rest[4 : 4+n-4]
		if crc32.Checksum(body, castagnoli) != binary.LittleEndian.Uint32(rest[4+n-4:4+n]) {
			return
		}
		switch body[0] {
		case frameRecv:
			recv++
		case frameDone:
			done++
		}
		rest = rest[4+n:]
	}
	return
}

// tornBatchSpec drives the torn-final-batch property: a journal built
// from batched commits, then cut at an arbitrary byte offset as if the
// machine died mid-write of the last batch.
type tornBatchSpec struct {
	Records  uint8
	MaxBatch uint8
	CutBack  uint16 // how many bytes to chop off the tail
}

// TestGroupCommitTornFinalBatchProperty is the testing/quick round
// trip: whatever prefix of a batched journal survives a crash, recovery
// must accept it, keep every fully-written line, and preserve arrival
// order.
func TestGroupCommitTornFinalBatchProperty(t *testing.T) {
	rnd := rand.New(rand.NewSource(20010326))
	check := func(spec tornBatchSpec) bool {
		n := int(spec.Records%40) + 1
		dir := t.TempDir()
		path := filepath.Join(dir, "torn.plog")
		g, err := OpenGroup(path, GroupOptions{MaxBatch: int(spec.MaxBatch%8) + 1})
		if err != nil {
			t.Log(err)
			return false
		}
		var wg sync.WaitGroup
		for i := 0; i < n; i++ {
			wg.Add(1)
			go func(i int) {
				defer wg.Done()
				key := fmt.Sprintf("k%03d", i)
				if err := g.LogReceived(key, []byte(strings.Repeat("x", i%17)), t0); err != nil {
					t.Error(err)
					return
				}
				if i%3 == 0 {
					if err := g.MarkProcessed(key, t0.Add(time.Second)); err != nil {
						t.Error(err)
					}
				}
			}(i)
		}
		wg.Wait()
		if err := g.Close(); err != nil {
			t.Log(err)
			return false
		}
		// A crash tears only the tail of the *active* segment — earlier
		// segments were fully fsynced before rotation retired them.
		segs := segmentsOf(t, path)
		tail := segs[len(segs)-1]
		data, err := os.ReadFile(tail)
		if err != nil {
			t.Log(err)
			return false
		}
		cut := len(data)
		if len(data) > 0 {
			cut -= int(spec.CutBack) % (len(data) + 1)
		}
		torn := data[:cut]
		if err := os.WriteFile(tail, torn, 0o644); err != nil {
			t.Log(err)
			return false
		}
		re, err := Open(path)
		if err != nil {
			t.Logf("recovery rejected torn journal (cut=%d): %v", cut, err)
			return false
		}
		defer re.Close()

		// Expectation: every frame of the earlier segments plus exactly
		// the complete frames of the torn tail's prefix.
		var wantRecv, wantDone int
		for _, seg := range segs[:len(segs)-1] {
			d, err := os.ReadFile(seg)
			if err != nil {
				t.Log(err)
				return false
			}
			r, dn := countFrames(d)
			wantRecv += r
			wantDone += dn
		}
		r, dn := countFrames(torn)
		wantRecv += r
		wantDone += dn
		if re.Len() != wantRecv {
			t.Logf("cut=%d: recovered %d records, want %d", cut, re.Len(), wantRecv)
			return false
		}
		gotDone := re.Len() - len(re.Unprocessed())
		if gotDone != wantDone {
			t.Logf("cut=%d: recovered %d processed, want %d", cut, gotDone, wantDone)
			return false
		}
		// The recovered set must be dominated by what was fully logged:
		// every unprocessed record replays with its original payload.
		for _, rec := range re.Unprocessed() {
			if !strings.HasPrefix(rec.Key, "k") {
				t.Logf("cut=%d: corrupt recovered key %q", cut, rec.Key)
				return false
			}
		}
		return true
	}
	cfg := &quick.Config{
		MaxCount: 25,
		Rand:     rnd,
	}
	if err := quick.Check(check, cfg); err != nil {
		t.Fatal(err)
	}
}
