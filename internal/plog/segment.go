package plog

import (
	"bufio"
	"encoding/base64"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"time"
)

// Segment naming: <base>.NNNNNNNN.seg, sequence numbers ascending from
// 1 with no reuse. The highest-numbered segment is the active one; all
// others are immutable. Checkpoints are <base>.ckpt.NNNNNNNN (see
// checkpoint.go), written atomically via <base>.ckpt.tmp + rename.

func (l *Log) segPath(seq uint64) string { return fmt.Sprintf("%s.%08d.seg", l.base, seq) }

func (l *Log) ckptPath(gen uint64) string { return fmt.Sprintf("%s.ckpt.%08d", l.base, gen) }

func (l *Log) ckptTmpPath() string { return l.base + ".ckpt.tmp" }

// syncDir fsyncs the journal's parent directory so renames and newly
// created segment files are durable.
func (l *Log) syncDir() error {
	if err := l.dirf.Sync(); err != nil {
		return fmt.Errorf("plog: syncing directory of %s: %w", l.base, err)
	}
	return nil
}

// scanFiles lists the on-disk segment sequences and checkpoint
// generations for this base path, both ascending.
func (l *Log) scanFiles() (segs, ckpts []uint64, err error) {
	entries, err := os.ReadDir(filepath.Dir(l.base))
	if err != nil {
		return nil, nil, fmt.Errorf("plog: scanning %s: %w", l.base, err)
	}
	prefix := filepath.Base(l.base) + "."
	for _, e := range entries {
		name := e.Name()
		rest, ok := strings.CutPrefix(name, prefix)
		if !ok {
			continue
		}
		if numeric, ok := strings.CutSuffix(rest, ".seg"); ok {
			if seq, err := strconv.ParseUint(numeric, 10, 64); err == nil && seq > 0 {
				segs = append(segs, seq)
			}
			continue
		}
		if numeric, ok := strings.CutPrefix(rest, "ckpt."); ok && numeric != "tmp" {
			if gen, err := strconv.ParseUint(numeric, 10, 64); err == nil && gen > 0 {
				ckpts = append(ckpts, gen)
			}
		}
	}
	sort.Slice(segs, func(i, j int) bool { return segs[i] < segs[j] })
	sort.Slice(ckpts, func(i, j int) bool { return ckpts[i] < ckpts[j] })
	return segs, ckpts, nil
}

// recover rebuilds the in-memory state: migrate a legacy single-file
// journal, load the newest valid checkpoint, delete segments the
// checkpoint covers (a crash may have interrupted the compactor's
// deletions), and replay only the segments past the watermark — the
// bounded-recovery path. The final segment's torn tail, if any, is
// truncated and the segment becomes the active one.
func (l *Log) recover() error {
	segs, ckpts, err := l.scanFiles()
	if err != nil {
		return err
	}
	// Legacy migration: a bare journal file at the base path becomes
	// segment 1 (only when no segments exist yet — segments supersede).
	if len(segs) == 0 {
		if _, err := os.Stat(l.base); err == nil {
			if err := os.Rename(l.base, l.segPath(1)); err != nil {
				return fmt.Errorf("plog: migrating legacy journal %s: %w", l.base, err)
			}
			if err := l.syncDir(); err != nil {
				return err
			}
			segs = []uint64{1}
		}
	}
	os.Remove(l.ckptTmpPath()) // a torn checkpoint write; never valid

	// Load the newest checkpoint that validates; fall back to the
	// previous one on corruption (the compactor retains it, and only
	// deletes segments once the *newer* checkpoint is durable, so the
	// fallback still has every segment it needs).
	for i := len(ckpts) - 1; i >= 0; i-- {
		hdr, recs, err := l.loadCheckpoint(l.ckptPath(ckpts[i]))
		if err != nil {
			// A torn or corrupt checkpoint is useless; drop it and fall
			// back to the previous generation (its segments still exist
			// — the compactor deletes segments only after the *newer*
			// checkpoint is durable).
			l.corrupt++
			os.Remove(l.ckptPath(ckpts[i]))
			continue
		}
		for _, r := range recs {
			l.addReceivedLocked(r.Key, r.Payload, r.ReceivedAt)
		}
		l.total = hdr.total
		l.ckptSeq = hdr.watermark
		l.ckptGen = ckpts[i]
		break
	}

	// Segments at or below the watermark are fully captured by the
	// checkpoint; remove any the compactor didn't get to.
	remaining := segs[:0]
	for _, seq := range segs {
		if seq <= l.ckptSeq {
			if fi, err := os.Stat(l.segPath(seq)); err == nil {
				l.compactedBytes.Add(fi.Size())
			}
			os.Remove(l.segPath(seq))
			continue
		}
		remaining = append(remaining, seq)
	}

	// Replay the tail segments in order. Only the last one can have a
	// torn tail (earlier segments were retired by a rotation, which
	// happens only between fsynced appends) — but every segment is
	// replayed with the same tolerant line scanner.
	for i, seq := range remaining {
		last := i == len(remaining)-1
		if err := l.replaySegment(seq, last); err != nil {
			return err
		}
		l.replayedSegs++
	}
	if len(remaining) > 0 {
		l.oldestSeq = remaining[0]
		l.liveSegs = len(remaining)
		if l.activeIsText {
			// The adopted active segment is legacy text; retire it so
			// every new append is a binary frame. Formats never mix
			// within one file.
			if err := l.rotateLocked(); err != nil {
				return err
			}
		}
		return nil
	}
	// No segments past the watermark: start a fresh one.
	seq := l.ckptSeq + 1
	if seq == 0 {
		seq = 1
	}
	f, err := l.createSegment(seq, false)
	if err != nil {
		return err
	}
	l.f, l.activeSeq, l.activeSize = f, seq, segHeaderSize
	l.oldestSeq = seq
	l.liveSegs = 1
	l.segsCreated.Add(1)
	return nil
}

// replaySegment replays one segment, sniffing the format from its
// first bytes: the binary magic selects frame replay, anything else
// falls back to the legacy text scanner (how pre-binary journals
// migrate). The last (active) segment keeps its handle for appends,
// with the torn tail truncated away so subsequent appends start on a
// clean frame boundary. A legacy text segment adopted as active is
// flagged so recover() rotates to a fresh binary segment before any
// new append — formats are never mixed within one file.
func (l *Log) replaySegment(seq uint64, active bool) error {
	path := l.segPath(seq)
	flags := os.O_RDONLY
	if active {
		flags = os.O_RDWR
	}
	f, err := os.OpenFile(path, flags, 0)
	if err != nil {
		return fmt.Errorf("plog: opening segment %s: %w", path, err)
	}
	r := bufio.NewReader(f)
	peek, _ := r.Peek(len(segMagic))
	var goodBytes int64
	binaryFmt := string(peek) == segMagic
	empty := false
	switch {
	case binaryFmt:
		r.Discard(len(segMagic))
		goodBytes = segHeaderSize + l.replayFrames(r)
	case len(peek) == 0:
		// Empty (or torn-before-magic) segment: nothing to replay; if
		// active it is re-initialized as binary below.
		empty = true
	default:
		goodBytes = l.replayLines(r)
		empty = goodBytes == 0
	}
	if !active {
		return f.Close()
	}
	if err := f.Truncate(goodBytes); err != nil {
		f.Close()
		return fmt.Errorf("plog: truncating torn tail of %s: %w", path, err)
	}
	if _, err := f.Seek(goodBytes, 0); err != nil {
		f.Close()
		return fmt.Errorf("plog: seeking %s: %w", path, err)
	}
	if !binaryFmt && empty {
		// Nothing survived replay: claim the file for the binary format
		// in place instead of rotating.
		if _, err := f.Write([]byte(segMagic)); err != nil {
			f.Close()
			return fmt.Errorf("plog: writing segment header %s: %w", path, err)
		}
		goodBytes = segHeaderSize
		binaryFmt = true
	}
	if binaryFmt {
		l.preallocActive(f)
	}
	l.f, l.activeSeq, l.activeSize = f, seq, goodBytes
	l.activeIsText = !binaryFmt
	return nil
}

// preallocCap bounds segment preallocation so configurations with an
// effectively unbounded SegmentBytes (sustained-write benchmarks use
// 1 TiB) don't reserve that much disk up front.
const preallocCap = 64 << 20

// preallocActive best-effort-reserves the configured segment size for
// f. Failure is ignored: ext2/ext3 and some network filesystems lack
// fallocate, and the segment then simply grows on demand as before.
// Replay treats the preallocated zero tail as a clean end (a zero
// length prefix is not a valid frame).
func (l *Log) preallocActive(f *os.File) {
	if sb := l.opts.SegmentBytes; sb > 0 && sb <= preallocCap {
		_ = preallocate(f, sb)
	}
}

// createSegment creates a fresh binary segment file: magic header,
// best-effort preallocation, directory entry fsynced. The magic bytes
// themselves are not fsynced — the first append's Sync covers them,
// and a torn magic replays as an empty segment.
func (l *Log) createSegment(seq uint64, excl bool) (*os.File, error) {
	flags := os.O_CREATE | os.O_RDWR
	if excl {
		flags |= os.O_EXCL
	}
	f, err := os.OpenFile(l.segPath(seq), flags, 0o644)
	if err != nil {
		return nil, fmt.Errorf("plog: creating segment %s: %w", l.segPath(seq), err)
	}
	if _, err := f.Write([]byte(segMagic)); err != nil {
		f.Close()
		return nil, fmt.Errorf("plog: writing segment header %s: %w", l.segPath(seq), err)
	}
	l.preallocActive(f)
	if err := l.syncDir(); err != nil {
		f.Close()
		return nil, err
	}
	return f, nil
}

// rotateLocked retires the active segment and opens the next one. The
// caller holds l.mu. The old segment's contents are already durable
// (every append fsyncs), so rotation only needs the new file's name to
// be durable before appends land in it. The retired segment is
// truncated to its real length so retained segments don't keep their
// preallocated tails (best-effort: an untruncated zero tail replays
// cleanly anyway).
func (l *Log) rotateLocked() error {
	seq := l.activeSeq + 1
	f, err := l.createSegment(seq, true)
	if err != nil {
		return fmt.Errorf("plog: rotating: %w", err)
	}
	_ = l.f.Truncate(l.activeSize)
	if err := l.f.Close(); err != nil {
		f.Close()
		return fmt.Errorf("plog: closing retired segment: %w", err)
	}
	l.f, l.activeSeq, l.activeSize = f, seq, segHeaderSize
	l.activeIsText = false
	l.liveSegs++
	l.segsCreated.Add(1)
	return nil
}

// applyLine parses and applies one journal line (without its trailing
// newline). Malformed RECV/DONE lines are skipped and counted; unknown
// record types are skipped silently (forward compatibility). Parsing
// is allocation-light: fields are index-scanned with strings.Cut, so
// no per-line []string is built.
func (l *Log) applyLine(line string) {
	if line == "" {
		return
	}
	op, rest, ok := strings.Cut(line, " ")
	if !ok {
		if op == "RECV" || op == "DONE" {
			l.corrupt++
		}
		return
	}
	switch op {
	case "RECV":
		ts, rest, ok := strings.Cut(rest, " ")
		if !ok {
			l.corrupt++
			return
		}
		keyf, payf, ok := strings.Cut(rest, " ")
		if !ok || strings.IndexByte(payf, ' ') >= 0 {
			l.corrupt++
			return
		}
		nanos, err := strconv.ParseInt(ts, 10, 64)
		if err != nil {
			l.corrupt++
			return
		}
		key, err := base64.StdEncoding.DecodeString(keyf)
		if err != nil {
			l.corrupt++
			return
		}
		payload, err := base64.StdEncoding.DecodeString(payf)
		if err != nil {
			l.corrupt++
			return
		}
		l.addReceivedLocked(string(key), payload, time.Unix(0, nanos).UTC())
	case "DONE":
		ts, keyf, ok := strings.Cut(rest, " ")
		if !ok || strings.IndexByte(keyf, ' ') >= 0 {
			l.corrupt++
			return
		}
		if _, err := strconv.ParseInt(ts, 10, 64); err != nil {
			l.corrupt++
			return
		}
		key, err := base64.StdEncoding.DecodeString(keyf)
		if err != nil {
			l.corrupt++
			return
		}
		if i, ok := l.index[string(key)]; ok {
			if !l.order[i].Processed {
				l.markProcessedLocked(i)
			}
		}
	default:
		// Unknown record type: skip (forward compatibility).
	}
}

// The binary frame encoders (appendRecv/appendDone) live in binary.go;
// this file retains only the legacy text *parser* so pre-binary
// journals replay once and migrate.
