package plog

import (
	"errors"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"simba/internal/metrics"
)

// GroupLog layers group commit over a Log: concurrent appenders stage
// their records in memory, join the open batch, and block until one
// fsync makes the whole batch durable. Under load this cuts fsyncs from
// one per append to one per commit window while preserving the
// pessimistic contract — LogReceived / MarkProcessed do not return
// until the record is on disk, so log-before-ack still holds for every
// caller.
//
// Ordering guarantee (what the hub relies on): appends are assigned to
// batches in the order callers acquire the group lock; batches are
// written and fsynced strictly in that order, each as a single write.
// Therefore if append A returned before append B was invoked, A's line
// precedes B's in the journal, and a crash can lose only a suffix of
// the final in-flight batch — which recovery truncates at the last
// complete line (prefix durability).
//
// Batches are rotation-aware: the underlying segmented log rotates
// *before* a batch that would overflow the active segment, never
// inside it, so one batch (one fsync) always lands in one segment.
type GroupLog struct {
	log  *Log
	opts GroupOptions

	appended atomic.Int64

	batchSizes  *metrics.Histogram // journal lines per commit
	stagedSizes *metrics.Histogram // fresh records per LogReceivedBatch call
	commitWait  *metrics.Histogram // µs from batch open to durable

	mu       sync.Mutex
	cond     *sync.Cond
	queue    []*groupBatch // accumulating batches, FIFO
	flushing *groupBatch   // batch currently being fsynced, if any
	closed   bool
	failed   error // sticky: first batch-write failure poisons the log
	done     chan struct{}
	// flushNow (capacity 1) cuts an in-progress commit window short:
	// staging paths signal it when the backlog crosses a force-flush
	// threshold, and Close signals it so shutdown never waits out a
	// window.
	flushNow chan struct{}
	scratch  []byte // staging buffer reused across appends (guarded by mu)
	// freeBufs recycles committed batches' encode buffers back into new
	// batches (guarded by mu): the committer strips a batch's buf after
	// its fsync — waiters only ever read err past done — so steady-state
	// commit windows stop allocating a fresh multi-KB buffer each.
	freeBufs [][]byte
}

// Free-list bounds: keep at most maxFreeBufs buffers, and never retain
// one grown past maxFreeBufBytes by a burst — a transient spike must
// not pin its high-water memory forever.
const (
	maxFreeBufs    = 8
	maxFreeBufByte = 1 << 20
)

// GroupOptions tune the commit policy.
type GroupOptions struct {
	// Window is the committer's adaptive upper bound on batching delay,
	// not a fixed tax: an append that ends an idle spell (no fsync in
	// flight and at least a window since the last one) commits
	// immediately, a backlog that accumulated while the previous fsync
	// ran commits immediately (the fsync was its window — the two-deep
	// pipeline), and only a steady stream that keeps the committer fed
	// is paced so fsyncs land at most one per window. Zero always
	// commits as soon as the previous fsync completes.
	Window time.Duration
	// MaxBatch caps the journal lines per commit. Zero means 1024.
	MaxBatch int
	// CommitMaxRecords force-flushes an in-progress commit window once
	// the staged backlog reaches this many journal lines, so a heavy
	// burst never waits out the timer. Zero means MaxBatch.
	CommitMaxRecords int
	// CommitMaxBytes force-flushes once the staged backlog reaches this
	// many encoded bytes. Zero means 1 MiB.
	CommitMaxBytes int
	// Log configures the underlying segmented journal (segment size,
	// background checkpointing, in-memory sweep).
	Log Options
}

// OpenGroup opens (creating if needed) a group-commit log at path,
// rebuilding in-memory state from the checkpoint + segments exactly as
// Open does.
func OpenGroup(path string, opts GroupOptions) (*GroupLog, error) {
	if opts.MaxBatch <= 0 {
		opts.MaxBatch = 1024
	}
	if opts.CommitMaxRecords <= 0 {
		opts.CommitMaxRecords = opts.MaxBatch
	}
	if opts.CommitMaxBytes <= 0 {
		opts.CommitMaxBytes = 1 << 20
	}
	l, err := OpenWithOptions(path, opts.Log)
	if err != nil {
		return nil, err
	}
	g := &GroupLog{
		log:         l,
		opts:        opts,
		done:        make(chan struct{}),
		flushNow:    make(chan struct{}, 1),
		batchSizes:  &metrics.Histogram{},
		stagedSizes: &metrics.Histogram{},
		commitWait:  &metrics.Histogram{},
	}
	g.cond = sync.NewCond(&g.mu)
	go g.committer()
	return g, nil
}

type groupBatch struct {
	buf      []byte // encoded journal lines, in staging order
	lines    int64
	openedAt time.Time // when the batch was opened (commit-wait clock)
	err      error
	done     chan struct{}
}

// LogReceived durably records an incoming alert, returning once the
// batch holding it has been fsynced. Duplicate keys are idempotent but
// still wait for any in-flight batch, so a caller acking the duplicate
// cannot outrun the original's durability.
func (g *GroupLog) LogReceived(key string, payload []byte, at time.Time) error {
	if key == "" {
		return errors.New("plog: empty key")
	}
	return g.commit(func(dst []byte) ([]byte, bool, error) {
		return g.log.stageReceived(dst, key, payload, at)
	})
}

// MarkProcessed durably records that the alert has been fully routed,
// returning once the batch holding the DONE record has been fsynced.
func (g *GroupLog) MarkProcessed(key string, at time.Time) error {
	return g.commit(func(dst []byte) ([]byte, bool, error) {
		return g.log.stageProcessed(dst, key, at)
	})
}

// LogReceivedBatch durably records a burst of incoming alerts in one
// shot: one group-lock acquisition, one encode pass through the shared
// staging buffer (a single underlying index-lock round-trip), one
// group-commit join, and one durability wait for the whole burst —
// the per-call fixed costs of LogReceived amortized across the batch.
// Entries land in the journal in slice order. Duplicate keys are
// idempotent no-ops; if every entry is a duplicate the call still
// waits for any in-flight batch, so acking the burst cannot outrun the
// originals' durability. The pessimistic contract is unchanged: when
// LogReceivedBatch returns nil, every entry is on disk.
//
// A burst joins the open batch as a unit, even when that overshoots
// GroupOptions.MaxBatch (the cap then closes the batch to later
// appends); a batch still never spans a segment rotation.
func (g *GroupLog) LogReceivedBatch(entries []BatchEntry) error {
	c, err := g.LogReceivedBatchStart(entries)
	if err != nil {
		return err
	}
	return c.Wait()
}

// Commit is a pending durability ticket from LogReceivedBatchStart:
// the burst is staged into a group-commit batch, and Wait blocks until
// that batch's fsync completes. The zero Commit waits for nothing
// (returned when the burst staged no fresh records and no batch was
// pending).
type Commit struct{ b *groupBatch }

// Wait blocks until the staged records are durable, reporting the
// batch's write error (sticky failures poison the log for later
// appends).
func (c Commit) Wait() error {
	if c.b == nil {
		return nil
	}
	<-c.b.done
	return c.b.err
}

// LogReceivedBatchStart is the staging half of LogReceivedBatch: it
// stages the burst and returns a Commit to wait on instead of blocking.
// The caller may stage bursts into several independent logs (the hub's
// per-shard WAL lanes) and then wait on all the Commits, overlapping
// the lanes' fsyncs; records are NOT durable until Wait returns nil.
// All other LogReceivedBatch semantics (ordering, duplicate no-ops,
// duplicate bursts still waiting out in-flight batches) are unchanged.
func (g *GroupLog) LogReceivedBatchStart(entries []BatchEntry) (Commit, error) {
	if len(entries) == 0 {
		return Commit{}, nil
	}
	for i := range entries {
		if entries[i].Key == "" {
			return Commit{}, errors.New("plog: empty key")
		}
	}
	g.mu.Lock()
	if g.closed {
		g.mu.Unlock()
		return Commit{}, ErrClosed
	}
	if g.failed != nil {
		err := g.failed
		g.mu.Unlock()
		return Commit{}, err
	}
	buf, staged, err := g.log.stageReceivedBatch(g.scratch[:0], entries)
	g.scratch = buf[:0]
	if err != nil {
		g.mu.Unlock()
		return Commit{}, err
	}
	var b *groupBatch
	if staged > 0 {
		g.stagedSizes.Observe(staged)
		b = g.openBatchLocked()
		b.buf = append(b.buf, buf...)
		b.lines += staged
		g.appended.Add(staged)
		g.noteStagedLocked()
	} else {
		// Every entry was a duplicate: wait for the youngest pending
		// work, if any (mirrors the no-op path in commit).
		switch {
		case len(g.queue) > 0:
			b = g.queue[len(g.queue)-1]
		case g.flushing != nil:
			b = g.flushing
		}
	}
	g.mu.Unlock()
	return Commit{b: b}, nil
}

// MarkProcessedBatchAsync stages DONE records for a burst of keys into
// the next group commit without waiting for the fsync — the batched
// counterpart of MarkProcessedAsync, costing one group-lock and one
// index-lock round-trip for the whole burst. Per-key staging failures
// (ErrUnknownKey) are reported in the returned slice, which is nil
// when every key staged cleanly and otherwise parallel to keys.
func (g *GroupLog) MarkProcessedBatchAsync(keys []string, at time.Time) []error {
	if len(keys) == 0 {
		return nil
	}
	g.mu.Lock()
	defer g.mu.Unlock()
	sticky := g.failed
	if g.closed {
		sticky = ErrClosed
	}
	if sticky != nil {
		errs := make([]error, len(keys))
		for i := range errs {
			errs[i] = sticky
		}
		return errs
	}
	buf, staged, errs := g.log.stageProcessedBatch(g.scratch[:0], keys, at)
	g.scratch = buf[:0]
	if staged > 0 {
		b := g.openBatchLocked()
		b.buf = append(b.buf, buf...)
		b.lines += staged
		g.appended.Add(staged)
		g.noteStagedLocked()
	}
	return errs
}

// MarkProcessedAsync stages the DONE record into the next group commit
// and returns without waiting for the fsync (staging errors, e.g.
// ErrUnknownKey, are still reported). Unlike RECV records — which must
// be durable before the ack — an unflushed DONE is safe to lose: the
// entry replays on restart and downstream timestamp dedup discards the
// duplicate. Shard loops use this so marking does not cost them a full
// commit window per alert. Close still flushes every staged DONE.
func (g *GroupLog) MarkProcessedAsync(key string, at time.Time) error {
	return g.commitNoWait(func(dst []byte) ([]byte, bool, error) {
		return g.log.stageProcessed(dst, key, at)
	})
}

// stageFn stages one record, appending its encoded journal line to dst.
type stageFn func(dst []byte) (out []byte, fresh bool, err error)

// stageLocked runs one staging function against the open batch,
// encoding through g.scratch so no per-append line is allocated. The
// caller holds g.mu. Returns the batch joined (nil when not fresh).
func (g *GroupLog) stageLocked(stage stageFn) (*groupBatch, error) {
	line, fresh, err := stage(g.scratch[:0])
	g.scratch = line[:0]
	if err != nil || !fresh {
		return nil, err
	}
	b := g.openBatchLocked()
	b.buf = append(b.buf, line...)
	b.lines++
	g.appended.Add(1)
	g.noteStagedLocked()
	return b, nil
}

// noteStagedLocked wakes the committer for newly staged records and,
// when the backlog has crossed a force-flush threshold, cuts any
// in-progress commit window short. Caller holds g.mu.
func (g *GroupLog) noteStagedLocked() {
	g.cond.Signal()
	if g.overThresholdLocked() {
		select {
		case g.flushNow <- struct{}{}:
		default:
		}
	}
}

// overThresholdLocked reports whether the staged backlog already
// justifies an immediate commit — the CommitMaxRecords/CommitMaxBytes
// force-flush test. The queue is at most a couple of batches deep, so
// the scan is cheap. Caller holds g.mu.
func (g *GroupLog) overThresholdLocked() bool {
	var lines, bytes int64
	for _, b := range g.queue {
		lines += b.lines
		bytes += int64(len(b.buf))
	}
	return lines >= int64(g.opts.CommitMaxRecords) || bytes >= int64(g.opts.CommitMaxBytes)
}

// commitNoWait stages one record and joins a batch without waiting for
// durability.
func (g *GroupLog) commitNoWait(stage stageFn) error {
	g.mu.Lock()
	defer g.mu.Unlock()
	if g.closed {
		return ErrClosed
	}
	if g.failed != nil {
		return g.failed
	}
	_, err := g.stageLocked(stage)
	return err
}

// commit stages one record, joins a batch, and waits for durability.
func (g *GroupLog) commit(stage stageFn) error {
	g.mu.Lock()
	if g.closed {
		g.mu.Unlock()
		return ErrClosed
	}
	if g.failed != nil {
		err := g.failed
		g.mu.Unlock()
		return err
	}
	b, err := g.stageLocked(stage)
	if err != nil {
		g.mu.Unlock()
		return err
	}
	if b == nil {
		// No-op append (duplicate RECV or repeated DONE): the original
		// record is either already durable or in a pending batch; wait
		// for the youngest pending work, if any.
		switch {
		case len(g.queue) > 0:
			b = g.queue[len(g.queue)-1]
		case g.flushing != nil:
			b = g.flushing
		default:
			g.mu.Unlock()
			return nil
		}
	}
	g.mu.Unlock()
	<-b.done
	return b.err
}

// openBatchLocked returns the batch new appends should join, starting a
// new one when none is open or the tail is full. Caller holds g.mu.
func (g *GroupLog) openBatchLocked() *groupBatch {
	if n := len(g.queue); n > 0 && g.queue[n-1].lines < int64(g.opts.MaxBatch) {
		return g.queue[n-1]
	}
	b := &groupBatch{done: make(chan struct{}), openedAt: time.Now()}
	if n := len(g.freeBufs); n > 0 {
		b.buf = g.freeBufs[n-1][:0]
		g.freeBufs[n-1] = nil
		g.freeBufs = g.freeBufs[:n-1]
	}
	g.queue = append(g.queue, b)
	return b
}

// committer is the single goroutine that flushes batches in order.
// Each cycle drains as many queued batches as fit under MaxBatch
// cumulative records and writes them as one vectored append — one
// write, one fsync — so a backlog built up during a slow fsync clears
// in a single follow-up sync instead of one per batch. An oversized
// batch (a burst that overshot the cap when it joined) still commits
// alone.
//
// The commit schedule is adaptive rather than a fixed timer. A wake
// that ends an idle spell (the committer was parked: no backlog, no
// fsync in flight) commits immediately — the append had no peers to
// wait for while it staged, so idle admission latency is the fsync
// itself, not the window. Pacing applies only when a backlog of two
// or more records is already waiting at the top of the cycle, i.e.
// peers staged while the previous fsync ran (the two-deep pipeline:
// batch N+1 accumulates under fsync N). Such a backlog proves
// concurrent load,
// so the committer sleeps out the window's remainder to let the
// batch fill — fsyncs land at most one per Window under a sustained
// stream — and the wait is cut short the moment the backlog crosses
// a force-flush threshold (CommitMaxRecords/CommitMaxBytes) or the
// log closes. The shape follows commit_delay/commit_siblings in
// Postgres: never delay a lone committer, only one with company.
func (g *GroupLog) committer() {
	defer close(g.done)
	var take []*groupBatch
	var vec []byte
	var lastSync time.Time // completion time of the previous fsync
	for {
		g.mu.Lock()
		idle := false
		for len(g.queue) == 0 && !g.closed {
			idle = true // parked: no backlog, no fsync in flight
			g.cond.Wait()
		}
		if len(g.queue) == 0 {
			g.mu.Unlock()
			return // closed and drained
		}
		if idle && !g.closed {
			// Commit immediately, but yield the processor once first:
			// appenders that are already runnable (woken together with
			// us, or starved while GOMAXPROCS=1 kept them off the core
			// during the last fsync) get to stage into this batch. At
			// true idle nothing is runnable and the yield costs a few
			// microseconds, so idle admission stays sub-window.
			g.mu.Unlock()
			runtime.Gosched()
			g.mu.Lock()
		}
		// Pace only a backlog with company (two or more records): a lone
		// record that happened to stage while the previous fsync ran has
		// no peers to amortize with, and holding it for the window
		// remainder would put a window-sized tail on otherwise-idle
		// admission latency.
		if w := g.opts.Window; w > 0 && !idle && !g.closed && !g.overThresholdLocked() &&
			(len(g.queue) > 1 || g.queue[0].lines > 1) {
			if wait := w - time.Since(lastSync); wait > 0 {
				g.waitWindow(wait)
			}
		}
		take = take[:0]
		var lines int64
		for len(g.queue) > 0 {
			next := g.queue[0]
			if len(take) > 0 && lines+next.lines > int64(g.opts.MaxBatch) {
				break
			}
			take = append(take, next)
			lines += next.lines
			g.queue = g.queue[1:]
		}
		g.flushing = take[len(take)-1]
		g.mu.Unlock()

		buf := take[0].buf
		if len(take) > 1 {
			vec = vec[:0]
			for _, b := range take {
				vec = append(vec, b.buf...)
			}
			buf = vec
		}
		err := g.log.appendBatch(buf, lines)
		g.batchSizes.Observe(lines)
		lastSync = time.Now()
		for _, b := range take {
			g.commitWait.Observe(lastSync.Sub(b.openedAt).Microseconds())
		}

		g.mu.Lock()
		g.flushing = nil
		if err != nil && g.failed == nil {
			g.failed = err
		}
		// Reclaim the written batches' encode buffers: waiters blocked on
		// b.done only read b.err, so the buffers are free the moment the
		// vectored append returns.
		for _, b := range take {
			if c := cap(b.buf); c > 0 && c <= maxFreeBufByte && len(g.freeBufs) < maxFreeBufs {
				g.freeBufs = append(g.freeBufs, b.buf[:0])
			}
			b.buf = nil
		}
		g.mu.Unlock()
		for _, b := range take {
			b.err = err
			close(b.done)
		}
	}
}

// waitWindow parks the committer for up to d, waking early when a
// staging path signals a force-flush threshold or Close fires. The
// timer is stopped and drained on the early-wake path, and a stale
// threshold token is dropped before parking, so neither the timer nor
// the signal channel leaks state into later cycles. Called with g.mu
// held; returns with it re-held.
func (g *GroupLog) waitWindow(d time.Duration) {
	select {
	// Drop a threshold token left by a backlog an earlier cycle already
	// committed: overThresholdLocked just said the current backlog does
	// not justify an immediate flush.
	case <-g.flushNow:
	default:
	}
	g.mu.Unlock()
	t := time.NewTimer(d)
	select {
	case <-t.C:
	case <-g.flushNow:
		if !t.Stop() {
			<-t.C // the timer fired while we were waking: drain it
		}
	}
	g.mu.Lock()
}

// Has reports whether key is resident (logged, possibly not yet
// durable, and not yet retired by the sweep).
func (g *GroupLog) Has(key string) bool { return g.log.Has(key) }

// IsProcessed reports whether key has been marked processed.
func (g *GroupLog) IsProcessed(key string) bool { return g.log.IsProcessed(key) }

// Unprocessed returns the records received but not yet processed, in
// arrival order — the restart replay set.
func (g *GroupLog) Unprocessed() []Record { return g.log.Unprocessed() }

// Len returns the all-time number of logged alerts.
func (g *GroupLog) Len() int { return g.log.Len() }

// Pending returns the live not-yet-processed record count — the
// journal's current replay backlog. Cheap enough to poll.
func (g *GroupLog) Pending() int { return g.log.Pending() }

// Path returns the journal base path.
func (g *GroupLog) Path() string { return g.log.Path() }

// Syncs returns the number of fsyncs issued since OpenGroup.
func (g *GroupLog) Syncs() int64 { return g.log.Syncs() }

// Appended returns the number of journal lines staged through the
// group-commit path; Appended()/Syncs() is the mean commit batch size.
func (g *GroupLog) Appended() int64 { return g.appended.Load() }

// Stats snapshots the underlying log's segmentation/compaction state
// plus the group-commit batch histograms (lines per fsync, and staged
// ingest-burst sizes from LogReceivedBatch).
func (g *GroupLog) Stats() Stats {
	s := g.log.Stats()
	s.CommitBatches = g.batchSizes.Snapshot()
	s.StagedBatches = g.stagedSizes.Snapshot()
	s.CommitWait = g.commitWait.Snapshot()
	return s
}

// Checkpoint forces a checkpoint + compaction of the underlying log.
func (g *GroupLog) Checkpoint() error { return g.log.Checkpoint() }

// FsyncLatency returns the fsync-latency histogram (microseconds).
func (g *GroupLog) FsyncLatency() metrics.HistogramSnapshot { return g.log.FsyncLatency() }

// BatchSizes returns the group-commit batch-size histogram (journal
// lines per fsync).
func (g *GroupLog) BatchSizes() metrics.HistogramSnapshot { return g.batchSizes.Snapshot() }

// StagedBatchSizes returns the ingest staged-batch histogram (fresh
// records per LogReceivedBatch call).
func (g *GroupLog) StagedBatchSizes() metrics.HistogramSnapshot { return g.stagedSizes.Snapshot() }

// CommitWaitLatency returns the batch-open→durable latency histogram
// (microseconds) — how long staged records actually waited for their
// fsync under the adaptive schedule.
func (g *GroupLog) CommitWaitLatency() metrics.HistogramSnapshot { return g.commitWait.Snapshot() }

// Close flushes every pending batch, waits for the committer to exit,
// and closes the underlying journal. Further appends fail with
// ErrClosed.
func (g *GroupLog) Close() error {
	g.mu.Lock()
	if g.closed {
		g.mu.Unlock()
		<-g.done
		return nil
	}
	g.closed = true
	g.cond.Broadcast()
	select {
	case g.flushNow <- struct{}{}: // cut short an in-progress commit window
	default:
	}
	g.mu.Unlock()
	<-g.done
	return g.log.Close()
}
