package plog

import (
	"encoding/base64"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"testing"
	"testing/quick"
	"time"
)

func openTemp(t *testing.T) *Log {
	t.Helper()
	l, err := Open(filepath.Join(t.TempDir(), "alerts.plog"))
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { l.Close() })
	return l
}

// segmentsOf returns the on-disk segment paths for base, ascending
// (zero-padded sequence numbers sort lexically).
func segmentsOf(t *testing.T, base string) []string {
	t.Helper()
	matches, err := filepath.Glob(base + ".*.seg")
	if err != nil {
		t.Fatal(err)
	}
	sort.Strings(matches)
	return matches
}

// activeSegmentPath returns the highest-numbered (active) segment.
func activeSegmentPath(t *testing.T, base string) string {
	t.Helper()
	segs := segmentsOf(t, base)
	if len(segs) == 0 {
		t.Fatalf("no segments for %s", base)
	}
	return segs[len(segs)-1]
}

var t0 = time.Date(2001, 3, 26, 9, 0, 0, 0, time.UTC)

func TestLogReceivedAndMark(t *testing.T) {
	l := openTemp(t)
	if err := l.LogReceived("", []byte("x"), t0); err == nil {
		t.Fatal("empty key accepted")
	}
	if err := l.LogReceived("k1", []byte("payload-1"), t0); err != nil {
		t.Fatal(err)
	}
	if !l.Has("k1") || l.IsProcessed("k1") {
		t.Fatal("wrong state after LogReceived")
	}
	if got := l.Unprocessed(); len(got) != 1 || got[0].Key != "k1" || string(got[0].Payload) != "payload-1" {
		t.Fatalf("Unprocessed = %+v", got)
	}
	if err := l.MarkProcessed("k1", t0.Add(time.Second)); err != nil {
		t.Fatal(err)
	}
	if !l.IsProcessed("k1") || len(l.Unprocessed()) != 0 {
		t.Fatal("wrong state after MarkProcessed")
	}
	if err := l.MarkProcessed("k1", t0); err != nil {
		t.Fatal("second MarkProcessed should be a no-op")
	}
	if err := l.MarkProcessed("ghost", t0); !errors.Is(err, ErrUnknownKey) {
		t.Fatalf("MarkProcessed(ghost) = %v", err)
	}
}

func TestDuplicateLogReceivedIdempotent(t *testing.T) {
	l := openTemp(t)
	if err := l.LogReceived("k", []byte("first"), t0); err != nil {
		t.Fatal(err)
	}
	if err := l.LogReceived("k", []byte("second"), t0.Add(time.Hour)); err != nil {
		t.Fatal(err)
	}
	if l.Len() != 1 {
		t.Fatalf("Len() = %d", l.Len())
	}
	if got := l.Unprocessed(); string(got[0].Payload) != "first" {
		t.Fatalf("duplicate overwrote payload: %q", got[0].Payload)
	}
}

func TestRecoveryAfterCrash(t *testing.T) {
	path := filepath.Join(t.TempDir(), "alerts.plog")
	l, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		key := fmt.Sprintf("k%d", i)
		if err := l.LogReceived(key, []byte("p"+key), t0.Add(time.Duration(i)*time.Second)); err != nil {
			t.Fatal(err)
		}
	}
	if err := l.MarkProcessed("k0", t0); err != nil {
		t.Fatal(err)
	}
	if err := l.MarkProcessed("k3", t0); err != nil {
		t.Fatal(err)
	}
	// Simulate crash: no orderly shutdown beyond closing the handle.
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}

	l2, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer l2.Close()
	un := l2.Unprocessed()
	wantKeys := []string{"k1", "k2", "k4"}
	if len(un) != len(wantKeys) {
		t.Fatalf("Unprocessed after recovery = %+v", un)
	}
	for i, k := range wantKeys {
		if un[i].Key != k {
			t.Fatalf("Unprocessed[%d] = %q, want %q (arrival order)", i, un[i].Key, k)
		}
		if string(un[i].Payload) != "p"+k {
			t.Fatalf("payload mismatch for %q", k)
		}
		if !un[i].ReceivedAt.Equal(t0.Add(time.Duration(k[1]-'0') * time.Second)) {
			t.Fatalf("timestamp mismatch for %q: %v", k, un[i].ReceivedAt)
		}
	}
	// Writing after recovery works.
	if err := l2.LogReceived("k5", []byte("p"), t0); err != nil {
		t.Fatal(err)
	}
	if err := l2.MarkProcessed("k1", t0); err != nil {
		t.Fatal(err)
	}
}

func TestRecoveryToleratesTornTail(t *testing.T) {
	path := filepath.Join(t.TempDir(), "alerts.plog")
	l, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := l.LogReceived("good", []byte("p"), t0); err != nil {
		t.Fatal(err)
	}
	l.Close()
	// Append a torn RECV line (crash mid-write) to the active segment.
	f, err := os.OpenFile(activeSegmentPath(t, path), os.O_APPEND|os.O_WRONLY, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteString("RECV 123 aGFsZg"); err != nil { // no payload field, no newline
		t.Fatal(err)
	}
	f.Close()

	l2, err := Open(path)
	if err != nil {
		t.Fatalf("recovery failed on torn tail: %v", err)
	}
	defer l2.Close()
	if l2.Len() != 1 || !l2.Has("good") {
		t.Fatalf("recovered state wrong: len=%d", l2.Len())
	}
	// And the log remains appendable.
	if err := l2.LogReceived("after-tear", []byte("p"), t0); err != nil {
		t.Fatal(err)
	}
	l2.Close()
	l3, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer l3.Close()
	if !l3.Has("after-tear") {
		t.Fatal("post-tear append lost")
	}
}

func TestRecoveryIgnoresGarbageLines(t *testing.T) {
	path := filepath.Join(t.TempDir(), "alerts.plog")
	content := "RECV notanumber a a\n" +
		"BANANA 1 2 3\n" +
		"RECV 42 !!!bad-base64 aGk=\n" +
		"DONE 42 !!!bad\n" +
		"DONE 42\n" +
		"RECV 99 " + b64("real") + " " + b64("payload") + "\n"
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	l, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	if l.Len() != 1 || !l.Has("real") {
		t.Fatalf("Len() = %d", l.Len())
	}
	// The malformed RECV/DONE lines (not the unknown BANANA record,
	// which is forward-compatibility skip) are counted, not silent.
	if got := l.Stats().CorruptRecords; got != 4 {
		t.Fatalf("CorruptRecords = %d, want 4", got)
	}
}

func TestClosedLogRejectsWrites(t *testing.T) {
	l := openTemp(t)
	if err := l.LogReceived("k", []byte("p"), t0); err != nil {
		t.Fatal(err)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	if err := l.Close(); err != nil {
		t.Fatal("double close should be nil")
	}
	if err := l.LogReceived("k2", []byte("p"), t0); !errors.Is(err, ErrClosed) {
		t.Fatalf("LogReceived after close = %v", err)
	}
	if err := l.MarkProcessed("k", t0); !errors.Is(err, ErrClosed) {
		t.Fatalf("MarkProcessed after close = %v", err)
	}
}

func TestUnprocessedReturnsCopies(t *testing.T) {
	l := openTemp(t)
	if err := l.LogReceived("k", []byte("abc"), t0); err != nil {
		t.Fatal(err)
	}
	got := l.Unprocessed()
	got[0].Payload[0] = 'X'
	if string(l.Unprocessed()[0].Payload) != "abc" {
		t.Fatal("Unprocessed aliases internal payload")
	}
}

// Property: for any interleaving of receive/process operations, a
// reopened log reports exactly the keys that were received but not
// processed, in arrival order — i.e. replay is lossless and idempotent.
func TestRecoveryProperty(t *testing.T) {
	type op struct {
		Key     uint8
		Process bool
	}
	f := func(ops []op) bool {
		// Fresh directory per run: segments and checkpoints live
		// alongside the base path.
		dir, err := os.MkdirTemp(t.TempDir(), "prop")
		if err != nil {
			return false
		}
		path := filepath.Join(dir, "prop.plog")
		l, err := Open(path)
		if err != nil {
			return false
		}
		received := map[string]bool{}
		processed := map[string]bool{}
		var arrival []string
		for _, o := range ops {
			key := fmt.Sprintf("k%d", o.Key%16)
			if o.Process {
				if received[key] {
					if err := l.MarkProcessed(key, t0); err != nil {
						l.Close()
						return false
					}
					processed[key] = true
				}
				continue
			}
			if !received[key] {
				arrival = append(arrival, key)
				received[key] = true
			}
			if err := l.LogReceived(key, []byte(key), t0); err != nil {
				l.Close()
				return false
			}
		}
		l.Close()
		l2, err := Open(path)
		if err != nil {
			return false
		}
		defer l2.Close()
		var wantUnprocessed []string
		for _, k := range arrival {
			if !processed[k] {
				wantUnprocessed = append(wantUnprocessed, k)
			}
		}
		got := l2.Unprocessed()
		if len(got) != len(wantUnprocessed) {
			return false
		}
		for i := range got {
			if got[i].Key != wantUnprocessed[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func b64(s string) string {
	return base64.StdEncoding.EncodeToString([]byte(s))
}
