//go:build !linux

package plog

import "os"

// preallocate is a no-op where fallocate is unavailable; segments grow
// on demand as before.
func preallocate(*os.File, int64) error { return nil }
