package plog

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"math/rand"
	"os"
	"path/filepath"
	"reflect"
	"sync"
	"testing"
	"testing/quick"
	"time"
)

// frameEnds walks a binary segment exactly like recovery does and
// returns the absolute end offset of every complete CRC-valid frame.
func frameEnds(data []byte) []int {
	if len(data) < int(segHeaderSize) || string(data[:len(segMagic)]) != segMagic {
		return nil
	}
	var ends []int
	off := int(segHeaderSize)
	for off+4 <= len(data) {
		n := int(binary.LittleEndian.Uint32(data[off : off+4]))
		if n < frameOverhead || n > frameMaxLen || off+4+n > len(data) {
			break
		}
		body := data[off+4 : off+4+n-4]
		if crc32.Checksum(body, castagnoli) != binary.LittleEndian.Uint32(data[off+4+n-4:off+4+n]) {
			break
		}
		off += 4 + n
		ends = append(ends, off)
	}
	return ends
}

// TestLanePathLayout pins the on-disk contract: lane 0 IS the base
// journal (single-lane sets are bit-compatible with a plain log) and
// higher lanes get numbered suffixes.
func TestLanePathLayout(t *testing.T) {
	if got := LanePath("/x/hub.wal", 0); got != "/x/hub.wal" {
		t.Fatalf("LanePath(0) = %q, want the base path itself", got)
	}
	if got := LanePath("/x/hub.wal", 3); got != "/x/hub.wal.lane03" {
		t.Fatalf("LanePath(3) = %q", got)
	}

	// A 1-lane set round-trips with a plain Log on the same path.
	base := filepath.Join(t.TempDir(), "compat.plog")
	s, err := OpenLanes(base, 1, GroupOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Lane(0).LogReceived("k", []byte("p"), t0); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	l, err := Open(base)
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	if !l.Has("k") || l.IsProcessed("k") {
		t.Fatal("plain Log does not see the 1-lane set's record")
	}
}

// TestOpenLanesDiscoversStaleLanes shrinks the configured lane count
// across a restart: records written to a high lane by the previous run
// must still be recovered, not stranded.
func TestOpenLanesDiscoversStaleLanes(t *testing.T) {
	base := filepath.Join(t.TempDir(), "shrink.plog")
	s, err := OpenLanes(base, 4, GroupOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Lane(3).LogReceived("high", []byte("p"), t0); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	re, err := OpenLanes(base, 1, GroupOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer re.Close()
	if re.Lanes() != 4 {
		t.Fatalf("reopen with n=1 found %d lanes, want 4 (stale lanes recovered)", re.Lanes())
	}
	un := re.Unprocessed()
	if len(un) != 1 || un[0].Key != "high" || un[0].Lane != 3 {
		t.Fatalf("stale-lane record not recovered: %+v", un)
	}
}

// TestLaneTailCorruptionFuzz flips random bytes in one lane's binary
// tail: recovery must stop at the last frame before the flip, count the
// corruption, keep the surviving prefix intact, and leave every other
// lane untouched.
func TestLaneTailCorruptionFuzz(t *testing.T) {
	const perLane = 24
	base := filepath.Join(t.TempDir(), "fuzz.plog")
	s, err := OpenLanes(base, 2, GroupOptions{})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 2*perLane; i++ {
		key := fmt.Sprintf("k%04d", i)
		if err := s.Lane(i%2).LogReceived(key, []byte("payload-"+key), t0.Add(time.Duration(i)*time.Millisecond)); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	lane1 := activeSegmentPath(t, LanePath(base, 1))
	pristine, err := os.ReadFile(lane1)
	if err != nil {
		t.Fatal(err)
	}
	ends := frameEnds(pristine)
	if len(ends) != perLane || ends[len(ends)-1] != len(pristine) {
		t.Fatalf("pristine lane 1 holds %d frames over %d/%d bytes", len(ends), ends[len(ends)-1], len(pristine))
	}

	rnd := rand.New(rand.NewSource(20010326))
	for trial := 0; trial < 25; trial++ {
		off := int(segHeaderSize) + rnd.Intn(len(pristine)-int(segHeaderSize))
		data := append([]byte(nil), pristine...)
		data[off] ^= 0xFF
		if err := os.WriteFile(lane1, data, 0o644); err != nil {
			t.Fatal(err)
		}
		// Every frame ending at or before the flip survives; the flipped
		// frame and everything after it is lost.
		survivors := 0
		for _, e := range ends {
			if e <= off {
				survivors++
			}
		}
		// Whether the stop is *provably* corruption depends on where the
		// flip landed: a bad length or failed checksum is counted, but a
		// flipped length prefix that claims more bytes than the file
		// holds is indistinguishable from a torn write and stops silently.
		b := int(segHeaderSize)
		if survivors > 0 {
			b = ends[survivors-1]
		}
		wantCorrupt := false
		if b+4 <= len(data) {
			n := int(binary.LittleEndian.Uint32(data[b : b+4]))
			if n < frameOverhead || n > frameMaxLen {
				wantCorrupt = true
			} else if b+4+n <= len(data) {
				wantCorrupt = true // frame complete, so the flip breaks its CRC
			}
		}
		re, err := OpenLanes(base, 2, GroupOptions{})
		if err != nil {
			t.Fatalf("trial %d (flip@%d): recovery rejected corrupt lane: %v", trial, off, err)
		}
		if got := re.Lane(1).Len(); got != survivors {
			t.Fatalf("trial %d (flip@%d): lane 1 recovered %d records, want %d", trial, off, got, survivors)
		}
		if got := re.Lane(1).Stats().CorruptRecords > 0; got != wantCorrupt {
			t.Fatalf("trial %d (flip@%d): corruption counted = %v, want %v", trial, off, got, wantCorrupt)
		}
		if got := re.Lane(0).Len(); got != perLane {
			t.Fatalf("trial %d: intact lane 0 recovered %d records, want %d", trial, got, perLane)
		}
		un := re.Lane(1).Unprocessed()
		if len(un) != survivors {
			t.Fatalf("trial %d: lane 1 unprocessed = %d, want %d", trial, len(un), survivors)
		}
		for j, rec := range un {
			want := fmt.Sprintf("k%04d", 2*j+1)
			if rec.Key != want || string(rec.Payload) != "payload-"+want {
				t.Fatalf("trial %d: surviving prefix diverges at %d: %q/%q", trial, j, rec.Key, rec.Payload)
			}
		}
		if err := re.Close(); err != nil {
			t.Fatal(err)
		}
	}
}

// laneMergeSpec drives the merged-replay property.
type laneMergeSpec struct {
	Users   uint8
	PerUser uint8
	Lanes   uint8
	Seed    int64
}

// TestLaneMergeReplayProperty is the lane-partitioning ordering
// contract: for any lane count, routing each user to a fixed lane and
// merging replay by received-at timestamp yields exactly the per-user
// unprocessed sequence a single-lane journal produces, and the merged
// stream is globally time-ordered.
func TestLaneMergeReplayProperty(t *testing.T) {
	check := func(spec laneMergeSpec) bool {
		users := int(spec.Users%5) + 2
		per := int(spec.PerUser%6) + 2
		lanes := int(spec.Lanes%4) + 1
		rnd := rand.New(rand.NewSource(spec.Seed))
		dir := t.TempDir()
		multiPath := filepath.Join(dir, "multi.plog")
		singlePath := filepath.Join(dir, "single.plog")
		multi, err := OpenLanes(multiPath, lanes, GroupOptions{Window: time.Millisecond})
		if err != nil {
			t.Log(err)
			return false
		}
		single, err := OpenLanes(singlePath, 1, GroupOptions{Window: time.Millisecond})
		if err != nil {
			t.Log(err)
			return false
		}

		// One interleaved global submission order with strictly
		// increasing timestamps; a random third of it gets retired.
		type rec struct {
			user, key string
			at        time.Time
			done      bool
		}
		var recs []rec
		for p := 0; p < per; p++ {
			for u := 0; u < users; u++ {
				user := fmt.Sprintf("user-%d", u)
				recs = append(recs, rec{
					user: user,
					key:  fmt.Sprintf("%s/a%03d", user, p),
					at:   t0.Add(time.Duration(len(recs)) * time.Millisecond),
					done: rnd.Intn(3) == 0,
				})
			}
		}

		// Multi-lane: one concurrent writer per user against the user's
		// home lane, per-user submission order preserved.
		var wg sync.WaitGroup
		for u := 0; u < users; u++ {
			wg.Add(1)
			go func(u int) {
				defer wg.Done()
				user := fmt.Sprintf("user-%d", u)
				lane := multi.Lane(u % lanes)
				for _, r := range recs {
					if r.user != user {
						continue
					}
					if err := lane.LogReceived(r.key, []byte(r.key), r.at); err != nil {
						t.Error(err)
						return
					}
					if r.done {
						if err := lane.MarkProcessed(r.key, r.at.Add(time.Hour)); err != nil {
							t.Error(err)
							return
						}
					}
				}
			}(u)
		}
		wg.Wait()
		// Single-lane reference: the same stream in global order.
		for _, r := range recs {
			if err := single.Lane(0).LogReceived(r.key, []byte(r.key), r.at); err != nil {
				t.Log(err)
				return false
			}
			if r.done {
				if err := single.Lane(0).MarkProcessed(r.key, r.at.Add(time.Hour)); err != nil {
					t.Log(err)
					return false
				}
			}
		}
		if err := multi.Close(); err != nil {
			t.Log(err)
			return false
		}
		if err := single.Close(); err != nil {
			t.Log(err)
			return false
		}

		m, err := OpenLanes(multiPath, lanes, GroupOptions{})
		if err != nil {
			t.Log(err)
			return false
		}
		defer m.Close()
		ref, err := OpenLanes(singlePath, 1, GroupOptions{})
		if err != nil {
			t.Log(err)
			return false
		}
		defer ref.Close()

		perUser := func(un []LaneRecord) map[string][]string {
			out := make(map[string][]string)
			for _, r := range un {
				u := r.Key[:len(r.Key)-5] // strip "/aNNN"
				out[u] = append(out[u], r.Key)
			}
			return out
		}
		mun := m.Unprocessed()
		if !reflect.DeepEqual(perUser(mun), perUser(ref.Unprocessed())) {
			t.Logf("lanes=%d users=%d per=%d: per-user replay order diverges from single-lane", lanes, users, per)
			return false
		}
		for j := 1; j < len(mun); j++ {
			if mun[j].ReceivedAt.Before(mun[j-1].ReceivedAt) {
				t.Logf("merged replay not time-ordered at %d: %v after %v", j, mun[j].ReceivedAt, mun[j-1].ReceivedAt)
				return false
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 12, Rand: rand.New(rand.NewSource(7))}); err != nil {
		t.Fatal(err)
	}
}
