package plog

import (
	"bufio"
	"encoding/base64"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"strconv"
	"strings"
	"time"
)

// Checkpoint format (version 2):
//
//	CKPT 2 <gen> <watermark> <count> <total> <unix-nanos>
//	<binary RECV frame>   × count      (see binary.go for the layout)
//	END <count>
//
// Version 1 checkpoints carried text records instead
// ("RECV <unix-nanos> <key-base64> <payload-base64>" lines); they are
// still readable, so a journal checkpointed by an earlier version
// recovers cleanly and re-checkpoints as version 2.
//
// The header names the format version, the checkpoint generation,
// the watermark (every segment with sequence <= watermark is fully
// captured), the number of unprocessed records that follow, and the
// all-time logged-alert total (so Len survives compaction). The END
// trailer makes truncation detectable. A checkpoint is written to
// <base>.ckpt.tmp, fsynced, renamed to <base>.ckpt.<gen>, and the
// directory fsynced — so a crash at any point leaves either the
// previous checkpoint intact or both: a half-written tmp file is
// ignored by recovery, and segments are deleted only after the rename
// is durable, which is what lets recovery fall back to the previous
// checkpoint plus full segment replay.

type ckptHeader struct {
	gen       uint64
	watermark uint64
	count     int64
	total     int64
}

// maybeCompactLocked schedules a background checkpoint once
// CheckpointEvery records have been appended since the last one. The
// caller holds l.mu; the send never blocks (a pending request already
// covers this trigger).
func (l *Log) maybeCompactLocked() {
	if l.compactReq == nil || l.opts.CheckpointEvery <= 0 || l.sinceCkpt < l.opts.CheckpointEvery {
		return
	}
	select {
	case l.compactReq <- struct{}{}:
	default:
	}
}

// compactor is the background goroutine that turns checkpoint requests
// into Checkpoint calls. Errors are sticky only for observability —
// the journal itself stays correct without checkpoints, just unbounded.
func (l *Log) compactor() {
	defer close(l.compactDone)
	for {
		select {
		case <-l.compactStop:
			return
		case <-l.compactReq:
			_ = l.Checkpoint()
		}
	}
}

// Checkpoint writes a durable checkpoint of the unprocessed set and
// compacts away every segment it covers, bounding disk and recovery
// time to O(unprocessed + tail). Safe to call concurrently with
// appends; concurrent Checkpoint calls serialize. Returns nil without
// writing when nothing was appended since the last checkpoint.
func (l *Log) Checkpoint() error {
	l.ckptMu.Lock()
	defer l.ckptMu.Unlock()

	l.mu.Lock()
	if l.closed {
		l.mu.Unlock()
		return ErrClosed
	}
	if l.sinceCkpt == 0 {
		l.mu.Unlock()
		return nil
	}
	// Rotate so the watermark covers every durable record: everything
	// at or below activeSeq-1 is immutable and captured by the
	// snapshot; appends racing the checkpoint land past the watermark
	// and replay on recovery.
	if l.activeSize > segHeaderSize {
		if err := l.rotateLocked(); err != nil {
			l.mu.Unlock()
			return err
		}
	}
	hdr := ckptHeader{
		gen:       l.ckptGen + 1,
		watermark: l.activeSeq - 1,
		total:     l.total,
	}
	recs := make([]Record, 0, len(l.order)-l.processedLive)
	for _, r := range l.order {
		if !r.Processed {
			recs = append(recs, r) // payload bytes are immutable once logged
		}
	}
	hdr.count = int64(len(recs))
	l.sinceCkpt = 0
	prevGen := l.ckptGen
	prevSeq := l.ckptSeq
	l.mu.Unlock()

	if err := l.writeCheckpoint(hdr, recs); err != nil {
		return err
	}

	l.mu.Lock()
	l.ckptGen = hdr.gen
	l.ckptSeq = hdr.watermark
	l.oldestSeq = hdr.watermark + 1
	l.liveSegs = int(l.activeSeq - hdr.watermark)
	l.mu.Unlock()
	l.ckptsWritten.Add(1)

	// Only now — with the new checkpoint durable — delete the segments
	// it covers, and prune checkpoints down to the new generation plus
	// its fallback (the previous durable one).
	for seq := prevSeq + 1; seq <= hdr.watermark; seq++ {
		path := l.segPath(seq)
		if fi, err := os.Stat(path); err == nil {
			l.compactedBytes.Add(fi.Size())
		}
		os.Remove(path)
	}
	if _, ckpts, err := l.scanFiles(); err == nil {
		for _, gen := range ckpts {
			if gen != hdr.gen && gen != prevGen {
				os.Remove(l.ckptPath(gen))
			}
		}
	}
	return nil
}

// writeCheckpoint persists one checkpoint atomically: tmp file, fsync,
// rename into place, directory fsync.
func (l *Log) writeCheckpoint(hdr ckptHeader, recs []Record) error {
	tmp := l.ckptTmpPath()
	f, err := os.OpenFile(tmp, os.O_CREATE|os.O_TRUNC|os.O_WRONLY, 0o644)
	if err != nil {
		return fmt.Errorf("plog: creating checkpoint temp %s: %w", tmp, err)
	}
	w := bufio.NewWriterSize(f, 1<<16)
	fmt.Fprintf(w, "CKPT 2 %d %d %d %d %d\n", hdr.gen, hdr.watermark, hdr.count, hdr.total, time.Now().UnixNano())
	var buf []byte
	for _, r := range recs {
		buf = appendRecv(buf[:0], r.ReceivedAt.UnixNano(), r.Key, r.Payload)
		if _, err := w.Write(buf); err != nil {
			f.Close()
			os.Remove(tmp)
			return fmt.Errorf("plog: writing checkpoint: %w", err)
		}
	}
	fmt.Fprintf(w, "END %d\n", hdr.count)
	if err := w.Flush(); err != nil {
		f.Close()
		os.Remove(tmp)
		return fmt.Errorf("plog: flushing checkpoint: %w", err)
	}
	if err := f.Sync(); err != nil {
		f.Close()
		os.Remove(tmp)
		return fmt.Errorf("plog: syncing checkpoint: %w", err)
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("plog: closing checkpoint: %w", err)
	}
	final := l.ckptPath(hdr.gen)
	if err := os.Rename(tmp, final); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("plog: installing checkpoint %s: %w", final, err)
	}
	return l.syncDir()
}

// loadCheckpoint reads and fully validates one checkpoint file. Any
// deviation — bad header, short record list, malformed record, missing
// or mismatched END trailer, trailing garbage — rejects the file so
// recovery falls back to the previous generation.
func (l *Log) loadCheckpoint(path string) (ckptHeader, []Record, error) {
	var hdr ckptHeader
	f, err := os.Open(path)
	if err != nil {
		return hdr, nil, err
	}
	defer f.Close()
	r := bufio.NewReaderSize(f, 1<<16)
	line, err := r.ReadString('\n')
	if err != nil {
		return hdr, nil, fmt.Errorf("plog: checkpoint %s: truncated header", path)
	}
	var version int
	if n, err := fmt.Sscanf(strings.TrimSuffix(line, "\n"), "CKPT %d %d %d %d %d",
		&version, &hdr.gen, &hdr.watermark, &hdr.count, &hdr.total); n != 5 || err != nil || (version != 1 && version != 2) {
		return hdr, nil, fmt.Errorf("plog: checkpoint %s: bad header %q", path, line)
	}
	if hdr.count < 0 || hdr.total < hdr.count {
		return hdr, nil, fmt.Errorf("plog: checkpoint %s: inconsistent counts", path)
	}
	recs := make([]Record, 0, hdr.count)
	for i := int64(0); i < hdr.count; i++ {
		var rec Record
		if version >= 2 {
			rec, err = readCheckpointFrame(r)
		} else {
			line, lerr := r.ReadString('\n')
			if lerr != nil {
				return hdr, nil, fmt.Errorf("plog: checkpoint %s: truncated at record %d", path, i)
			}
			rec, err = parseCheckpointRecord(strings.TrimSuffix(line, "\n"))
		}
		if err != nil {
			return hdr, nil, fmt.Errorf("plog: checkpoint %s record %d: %w", path, i, err)
		}
		recs = append(recs, rec)
	}
	line, err = r.ReadString('\n')
	if err != nil {
		return hdr, nil, fmt.Errorf("plog: checkpoint %s: missing END trailer", path)
	}
	var endCount int64
	if n, err := fmt.Sscanf(strings.TrimSuffix(line, "\n"), "END %d", &endCount); n != 1 || err != nil || endCount != hdr.count {
		return hdr, nil, fmt.Errorf("plog: checkpoint %s: bad END trailer %q", path, line)
	}
	if _, err := r.ReadByte(); err != io.EOF {
		return hdr, nil, fmt.Errorf("plog: checkpoint %s: trailing garbage", path)
	}
	return hdr, recs, nil
}

// readCheckpointFrame reads one binary RECV frame from a version-2
// checkpoint body strictly: any malformation — short read, bad length,
// CRC mismatch, non-RECV type — invalidates the whole file (unlike
// journal replay, which tolerates a torn tail), because checkpoints are
// written atomically.
func readCheckpointFrame(r *bufio.Reader) (Record, error) {
	var rec Record
	var hdr [4]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return rec, fmt.Errorf("truncated frame length: %w", err)
	}
	n := binary.LittleEndian.Uint32(hdr[:])
	if n < frameOverhead || n > frameMaxLen {
		return rec, fmt.Errorf("bad frame length %d", n)
	}
	buf := make([]byte, n)
	if _, err := io.ReadFull(r, buf); err != nil {
		return rec, fmt.Errorf("truncated frame: %w", err)
	}
	body := buf[:n-4]
	if crc32.Checksum(body, castagnoli) != binary.LittleEndian.Uint32(buf[n-4:]) {
		return rec, fmt.Errorf("frame checksum mismatch")
	}
	if body[0] != frameRecv {
		return rec, fmt.Errorf("unexpected frame type %q", body[0])
	}
	klen := int(binary.LittleEndian.Uint32(body[9:13]))
	if 13+klen > len(body) {
		return rec, fmt.Errorf("inconsistent key length")
	}
	rec.Key = string(body[13 : 13+klen])
	rec.Payload = append([]byte(nil), body[13+klen:]...)
	rec.ReceivedAt = time.Unix(0, int64(binary.LittleEndian.Uint64(body[1:9]))).UTC()
	return rec, nil
}

// parseCheckpointRecord parses one "RECV <nanos> <key> <payload>"
// version-1 checkpoint line strictly (checkpoints are written
// atomically, so unlike journal replay, any malformation invalidates
// the whole file).
func parseCheckpointRecord(line string) (Record, error) {
	var rec Record
	rest, ok := strings.CutPrefix(line, "RECV ")
	if !ok {
		return rec, fmt.Errorf("not a RECV line")
	}
	ts, rest, ok := strings.Cut(rest, " ")
	if !ok {
		return rec, fmt.Errorf("missing fields")
	}
	keyf, payf, ok := strings.Cut(rest, " ")
	if !ok || strings.IndexByte(payf, ' ') >= 0 {
		return rec, fmt.Errorf("wrong field count")
	}
	nanos, err := strconv.ParseInt(ts, 10, 64)
	if err != nil {
		return rec, fmt.Errorf("bad timestamp: %w", err)
	}
	key, err := base64.StdEncoding.DecodeString(keyf)
	if err != nil {
		return rec, fmt.Errorf("bad key: %w", err)
	}
	payload, err := base64.StdEncoding.DecodeString(payf)
	if err != nil {
		return rec, fmt.Errorf("bad payload: %w", err)
	}
	rec.Key = string(key)
	rec.Payload = payload
	rec.ReceivedAt = time.Unix(0, nanos).UTC()
	return rec, nil
}
