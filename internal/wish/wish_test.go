package wish

import (
	"math"
	"strings"
	"sync"
	"testing"
	"time"

	"simba/internal/addr"
	"simba/internal/alert"
	"simba/internal/clock"
	"simba/internal/core"
	"simba/internal/dist"
	"simba/internal/dmode"
	"simba/internal/email"
)

func testModel() Model {
	return Model{
		APs: []AP{
			{ID: "ap-1", X: 0, Y: 0},
			{ID: "ap-2", X: 40, Y: 0},
			{ID: "ap-3", X: 0, Y: 30},
			{ID: "ap-4", X: 40, Y: 30},
		},
		NoiseStddevDB: 1,
	}
}

func testZones() []Zone {
	return []Zone{
		{Name: "building-west", MinX: 0, MinY: 0, MaxX: 20, MaxY: 30},
		{Name: "building-east", MinX: 20, MinY: 0, MaxX: 40, MaxY: 30},
	}
}

type fixture struct {
	t      *testing.T
	sim    *clock.Sim
	server *Server
	inbox  *email.Mailbox

	mu     sync.Mutex
	alerts []*alert.Alert
}

func newFixture(t *testing.T) *fixture {
	t.Helper()
	sim := clock.NewSim(time.Time{})
	emSvc, err := email.NewService(email.Config{Clock: sim, RNG: dist.NewRNG(1), Delay: dist.Fixed(time.Second)})
	if err != nil {
		t.Fatal(err)
	}
	inbox, err := emSvc.CreateMailbox("buddy@sim")
	if err != nil {
		t.Fatal(err)
	}
	sender, err := core.NewDirectEmail(emSvc, "wish@sim")
	if err != nil {
		t.Fatal(err)
	}
	engine, err := core.NewEngine(sim, nil, sender)
	if err != nil {
		t.Fatal(err)
	}
	reg := addr.NewRegistry("buddy")
	if err := reg.Register(addr.Address{Type: addr.TypeEmail, Name: "Buddy email", Target: "buddy@sim", Enabled: true}); err != nil {
		t.Fatal(err)
	}
	mode := &dmode.Mode{Name: "email", Blocks: []dmode.Block{{Actions: []dmode.Action{{Address: "Buddy email"}}}}}
	target, err := core.NewTarget(engine, reg, mode)
	if err != nil {
		t.Fatal(err)
	}
	f := &fixture{t: t, sim: sim, inbox: inbox}
	server, err := NewServer(ServerConfig{
		Clock:  sim,
		RNG:    dist.NewRNG(2),
		Model:  testModel(),
		Zones:  testZones(),
		Target: target,
		OnReport: func(a *alert.Alert, rep *core.Report, err error) {
			f.mu.Lock()
			f.alerts = append(f.alerts, a)
			f.mu.Unlock()
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	f.server = server
	return f
}

func (f *fixture) advance(total, step time.Duration) {
	f.t.Helper()
	for elapsed := time.Duration(0); elapsed < total; elapsed += step {
		f.sim.Advance(step)
		time.Sleep(time.Millisecond)
	}
}

func TestNewServerValidation(t *testing.T) {
	sim := clock.NewSim(time.Time{})
	if _, err := NewServer(ServerConfig{}); err == nil {
		t.Fatal("empty config accepted")
	}
	if _, err := NewServer(ServerConfig{Clock: sim, RNG: dist.NewRNG(1)}); err == nil {
		t.Fatal("model without APs accepted")
	}
}

func TestLocateAccuracy(t *testing.T) {
	f := newFixture(t)
	rng := dist.NewRNG(42)
	model := f.server.model
	// Localize many random true positions; the estimate should land
	// within a few meters (paper: "to within a few meters").
	var worst float64
	for i := 0; i < 50; i++ {
		tx := rng.Float64() * 40
		ty := rng.Float64() * 30
		est, err := f.server.Locate(model.SignalAt(tx, ty, rng))
		if err != nil {
			t.Fatal(err)
		}
		errDist := math.Hypot(est.X-tx, est.Y-ty)
		if errDist > worst {
			worst = errDist
		}
		if est.Confidence < 0 || est.Confidence > 100 {
			t.Fatalf("confidence = %v", est.Confidence)
		}
	}
	if worst > 10 {
		t.Fatalf("worst localization error = %.1fm, want within a few meters", worst)
	}
}

func TestLocateRejectsWrongVectorLength(t *testing.T) {
	f := newFixture(t)
	if _, err := f.server.Locate([]float64{-50}); err == nil {
		t.Fatal("wrong-length vector accepted")
	}
}

func TestZoneAssignment(t *testing.T) {
	f := newFixture(t)
	if got := f.server.zoneOf(5, 5); got != "building-west" {
		t.Fatalf("zoneOf(5,5) = %q", got)
	}
	if got := f.server.zoneOf(30, 5); got != "building-east" {
		t.Fatalf("zoneOf(30,5) = %q", got)
	}
	if got := f.server.zoneOf(-10, -10); got != OutsideZone {
		t.Fatalf("zoneOf outside = %q", got)
	}
}

func TestUpdateWritesSoftState(t *testing.T) {
	f := newFixture(t)
	rng := dist.NewRNG(3)
	strengths := f.server.model.SignalAt(10, 15, rng)
	done := make(chan Estimate, 1)
	go func() {
		est, err := f.server.Update("yimin", strengths)
		if err != nil {
			t.Error(err)
		}
		done <- est
	}()
	f.advance(2*time.Second, 250*time.Millisecond)
	est := <-done
	if est.Zone != "building-west" {
		t.Fatalf("estimate zone = %q", est.Zone)
	}
	v, err := f.server.Store().Read("wish/user/yimin")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(v, "building-west|") {
		t.Fatalf("stored value = %q", v)
	}
}

func TestTrackingAlertsOnZoneTransitions(t *testing.T) {
	f := newFixture(t)
	f.server.Track("yimin", "paramvir")
	f.server.Track("yimin", "paramvir") // idempotent
	rng := dist.NewRNG(4)
	c, err := NewClient(f.sim, rng, f.server, "yimin", 2*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	c.MoveTo(10, 15) // center of building-west
	c.Start()
	defer c.Stop()
	f.advance(10*time.Second, 500*time.Millisecond)
	if f.server.AlertsSent() != 0 {
		t.Fatal("alert without a transition")
	}
	// Move to the east wing.
	c.MoveTo(30, 15)
	f.advance(10*time.Second, 500*time.Millisecond)
	f.mu.Lock()
	n := len(f.alerts)
	var first *alert.Alert
	if n > 0 {
		first = f.alerts[0]
	}
	f.mu.Unlock()
	if n != 1 || first == nil {
		t.Fatalf("alerts = %d", n)
	}
	if first.Subject != "yimin moved to building-east" {
		t.Fatalf("subject = %q", first.Subject)
	}
	// Leave the building entirely.
	c.MoveTo(200, 200)
	f.advance(10*time.Second, 500*time.Millisecond)
	f.mu.Lock()
	last := f.alerts[len(f.alerts)-1]
	f.mu.Unlock()
	if !strings.Contains(last.Subject, "left") {
		t.Fatalf("subject = %q", last.Subject)
	}
	// Re-enter.
	c.MoveTo(10, 15)
	f.advance(10*time.Second, 500*time.Millisecond)
	f.mu.Lock()
	last = f.alerts[len(f.alerts)-1]
	f.mu.Unlock()
	if !strings.Contains(last.Subject, "entered") {
		t.Fatalf("subject = %q", last.Subject)
	}
}

func TestNoAlertsWithoutTrackers(t *testing.T) {
	f := newFixture(t)
	rng := dist.NewRNG(5)
	c, err := NewClient(f.sim, rng, f.server, "ghost-user", time.Second)
	if err != nil {
		t.Fatal(err)
	}
	c.MoveTo(5, 5)
	c.Start()
	defer c.Stop()
	f.advance(5*time.Second, 500*time.Millisecond)
	c.MoveTo(35, 5)
	f.advance(5*time.Second, 500*time.Millisecond)
	if f.server.AlertsSent() != 0 {
		t.Fatal("untracked user generated alerts")
	}
}

func TestUntrack(t *testing.T) {
	f := newFixture(t)
	f.server.Track("u", "s")
	f.server.Untrack("u", "s")
	f.server.Untrack("u", "never-there")
	rng := dist.NewRNG(6)
	c, _ := NewClient(f.sim, rng, f.server, "u", time.Second)
	c.MoveTo(5, 5)
	c.Start()
	defer c.Stop()
	f.advance(5*time.Second, 500*time.Millisecond)
	c.MoveTo(35, 5)
	f.advance(5*time.Second, 500*time.Millisecond)
	if f.server.AlertsSent() != 0 {
		t.Fatal("untracked subscription fired")
	}
}

func TestSilentClientExpiresSoftState(t *testing.T) {
	f := newFixture(t)
	rng := dist.NewRNG(7)
	c, _ := NewClient(f.sim, rng, f.server, "u", 2*time.Second)
	c.MoveTo(5, 5)
	c.Start()
	f.advance(10*time.Second, 500*time.Millisecond)
	if _, err := f.server.Store().Read("wish/user/u"); err != nil {
		t.Fatalf("live user unreadable: %v", err)
	}
	c.Stop()
	// Refresh 10s × (2+1) = 30s deadline.
	f.advance(time.Minute, 2*time.Second)
	expired, err := f.server.Store().Expired("wish/user/u")
	if err != nil || !expired {
		t.Fatalf("Expired = %v, %v", expired, err)
	}
}

func TestClientValidation(t *testing.T) {
	f := newFixture(t)
	if _, err := NewClient(nil, nil, nil, "", 0); err == nil {
		t.Fatal("nil deps accepted")
	}
	if _, err := NewClient(f.sim, dist.NewRNG(1), f.server, "", 0); err == nil {
		t.Fatal("empty user accepted")
	}
}

func TestTransitionKindString(t *testing.T) {
	for _, tt := range []struct {
		k    TransitionKind
		want string
	}{
		{TransitionEnter, "entered"}, {TransitionMove, "moved to"},
		{TransitionLeave, "left"}, {TransitionKind(9), "transition(9)"},
	} {
		if got := tt.k.String(); got != tt.want {
			t.Fatalf("String = %q", got)
		}
	}
}
