// Package wish simulates the WISH user-location system (built on the
// RADAR [11] approach): clients on wireless devices report the access
// point they hear and the received signal strengths; the server holds
// an RF signal-propagation model and an AP→location map and estimates
// the user's position to within a few meters, attaching a confidence
// percentage. Zone transitions (entering a building, moving to a
// different part, leaving) feed the WISH alert service, which sends
// alerts through SIMBA. User positions are soft state in an SSS store,
// so a silent client eventually expires.
package wish

import (
	"errors"
	"fmt"
	"math"
	"sync"
	"time"

	"simba/internal/alert"
	"simba/internal/clock"
	"simba/internal/core"
	"simba/internal/dist"
	"simba/internal/sss"
)

// AP is one 802.11 access point at a known position (meters).
type AP struct {
	ID   string
	X, Y float64
}

// Zone is a named rectangular region of the map.
type Zone struct {
	Name                   string
	MinX, MinY, MaxX, MaxY float64
}

// contains reports whether (x, y) falls inside the zone.
func (z *Zone) contains(x, y float64) bool {
	return x >= z.MinX && x < z.MaxX && y >= z.MinY && y < z.MaxY
}

// OutsideZone is the zone name reported when no zone contains the
// estimate (the user has left the building).
const OutsideZone = "outside"

// Model is the RF signal-propagation model: log-distance path loss
// with Gaussian shadowing.
type Model struct {
	// APs are the access points.
	APs []AP
	// RefPowerDBm is the received power at 1 m (default -40 dBm).
	RefPowerDBm float64
	// PathLossExponent is the decay exponent (default 3.0, indoor).
	PathLossExponent float64
	// NoiseStddevDB is the shadowing noise (default 3 dB).
	NoiseStddevDB float64
}

func (m *Model) withDefaults() Model {
	out := *m
	if out.RefPowerDBm == 0 {
		out.RefPowerDBm = -40
	}
	if out.PathLossExponent == 0 {
		out.PathLossExponent = 3.0
	}
	if out.NoiseStddevDB == 0 {
		out.NoiseStddevDB = 3.0
	}
	return out
}

// expected returns the noise-free RSSI from each AP at (x, y).
func (m *Model) expected(x, y float64) []float64 {
	out := make([]float64, len(m.APs))
	for i, ap := range m.APs {
		d := math.Hypot(x-ap.X, y-ap.Y)
		if d < 1 {
			d = 1
		}
		out[i] = m.RefPowerDBm - 10*m.PathLossExponent*math.Log10(d)
	}
	return out
}

// SignalAt samples noisy signal strengths at (x, y) — what a client's
// wireless card would measure.
func (m *Model) SignalAt(x, y float64, rng *dist.RNG) []float64 {
	out := m.expected(x, y)
	for i := range out {
		out[i] += rng.NormFloat64() * m.NoiseStddevDB
	}
	return out
}

// Estimate is one localization result.
type Estimate struct {
	X, Y float64
	// Zone is the containing zone name (OutsideZone if none).
	Zone string
	// Confidence is the estimate's confidence percentage (0–100).
	Confidence float64
	At         time.Time
}

// TransitionKind classifies zone changes.
type TransitionKind int

// Zone transition kinds.
const (
	TransitionEnter TransitionKind = iota + 1
	TransitionMove
	TransitionLeave
)

// String implements fmt.Stringer.
func (k TransitionKind) String() string {
	switch k {
	case TransitionEnter:
		return "entered"
	case TransitionMove:
		return "moved to"
	case TransitionLeave:
		return "left"
	default:
		return fmt.Sprintf("transition(%d)", int(k))
	}
}

// ServerConfig parameterizes a Server.
type ServerConfig struct {
	// Clock and RNG are required.
	Clock clock.Clock
	RNG   *dist.RNG
	// Model is the propagation model; at least one AP required.
	Model Model
	// Zones are the named map regions.
	Zones []Zone
	// GridResolution is the fingerprint grid cell size in meters
	// (default 2 m — "within a few meters").
	GridResolution float64
	// Target is where location alerts go (the buddy). Optional: a
	// server without a target only tracks.
	Target *core.Target
	// ProcessDelay models server-side localization cost per update.
	ProcessDelay time.Duration
	// UserRefresh/UserMaxMissed are the soft-state parameters for user
	// position variables (defaults 10 s / 2).
	UserRefresh   time.Duration
	UserMaxMissed int
	// OnReport observes alert deliveries. Optional.
	OnReport func(a *alert.Alert, rep *core.Report, err error)
}

// Server is the WISH location server plus its alert service.
type Server struct {
	cfg   ServerConfig
	model Model
	cells []cell
	store *sss.Store

	mu         sync.Mutex
	lastZone   map[string]string // user → zone
	trackers   map[string][]string
	alertsSent int
}

type cell struct {
	x, y     float64
	expected []float64
}

// NewServer builds the server, precomputing the fingerprint grid over
// the bounding box of APs and zones.
func NewServer(cfg ServerConfig) (*Server, error) {
	if cfg.Clock == nil || cfg.RNG == nil {
		return nil, errors.New("wish: ServerConfig requires Clock and RNG")
	}
	if len(cfg.Model.APs) == 0 {
		return nil, errors.New("wish: model needs at least one AP")
	}
	if cfg.GridResolution <= 0 {
		cfg.GridResolution = 2
	}
	if cfg.ProcessDelay <= 0 {
		cfg.ProcessDelay = 500 * time.Millisecond
	}
	if cfg.UserRefresh <= 0 {
		cfg.UserRefresh = 10 * time.Second
	}
	if cfg.UserMaxMissed <= 0 {
		cfg.UserMaxMissed = 2
	}
	model := cfg.Model.withDefaults()
	store, err := sss.NewStore(cfg.Clock, "wish-server")
	if err != nil {
		return nil, err
	}
	s := &Server{
		cfg:      cfg,
		model:    model,
		store:    store,
		lastZone: make(map[string]string),
		trackers: make(map[string][]string),
	}
	s.buildGrid()
	return s, nil
}

// buildGrid precomputes expected signal vectors on a regular grid.
func (s *Server) buildGrid() {
	minX, minY := math.Inf(1), math.Inf(1)
	maxX, maxY := math.Inf(-1), math.Inf(-1)
	for _, ap := range s.model.APs {
		minX, minY = math.Min(minX, ap.X), math.Min(minY, ap.Y)
		maxX, maxY = math.Max(maxX, ap.X), math.Max(maxY, ap.Y)
	}
	for _, z := range s.cfg.Zones {
		minX, minY = math.Min(minX, z.MinX), math.Min(minY, z.MinY)
		maxX, maxY = math.Max(maxX, z.MaxX), math.Max(maxY, z.MaxY)
	}
	const margin = 4
	minX, minY = minX-margin, minY-margin
	maxX, maxY = maxX+margin, maxY+margin
	r := s.cfg.GridResolution
	for x := minX; x <= maxX; x += r {
		for y := minY; y <= maxY; y += r {
			s.cells = append(s.cells, cell{x: x, y: y, expected: s.model.expected(x, y)})
		}
	}
}

// Store exposes the server's soft-state store (user variables live
// under "wish/user/").
func (s *Server) Store() *sss.Store { return s.store }

// AlertsSent returns how many location alerts were sent.
func (s *Server) AlertsSent() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.alertsSent
}

// Locate estimates a position from measured signal strengths using
// nearest-neighbor search in signal space over the fingerprint grid.
// Confidence compares the best match against the best sufficiently
// distant alternative.
func (s *Server) Locate(strengths []float64) (Estimate, error) {
	if len(strengths) != len(s.model.APs) {
		return Estimate{}, fmt.Errorf("wish: got %d strengths for %d APs", len(strengths), len(s.model.APs))
	}
	best, second := math.Inf(1), math.Inf(1)
	var bx, by float64
	for _, c := range s.cells {
		d := signalDistance(strengths, c.expected)
		if d < best {
			// The previous best becomes a candidate second place if it
			// is spatially distinct.
			if math.Hypot(c.x-bx, c.y-by) > 2*s.cfg.GridResolution {
				second = best
			}
			best, bx, by = d, c.x, c.y
		} else if d < second && math.Hypot(c.x-bx, c.y-by) > 2*s.cfg.GridResolution {
			second = d
		}
	}
	confidence := 100.0
	if !math.IsInf(second, 1) && best+second > 0 {
		confidence = 100 * second / (best + second)
	}
	return Estimate{
		X: bx, Y: by,
		Zone:       s.zoneOf(bx, by),
		Confidence: confidence,
		At:         s.cfg.Clock.Now(),
	}, nil
}

func (s *Server) zoneOf(x, y float64) string {
	for i := range s.cfg.Zones {
		if s.cfg.Zones[i].contains(x, y) {
			return s.cfg.Zones[i].Name
		}
	}
	return OutsideZone
}

func signalDistance(a, b []float64) float64 {
	var sum float64
	for i := range a {
		d := a[i] - b[i]
		sum += d * d
	}
	return math.Sqrt(sum)
}

// Track subscribes subscriber to zone-change alerts for the tracked
// user — the Web interface of the paper's WISH alert service.
func (s *Server) Track(tracked, subscriber string) {
	s.mu.Lock()
	defer s.mu.Unlock()
	for _, sub := range s.trackers[tracked] {
		if sub == subscriber {
			return
		}
	}
	s.trackers[tracked] = append(s.trackers[tracked], subscriber)
}

// Untrack removes a tracking subscription.
func (s *Server) Untrack(tracked, subscriber string) {
	s.mu.Lock()
	defer s.mu.Unlock()
	subs := s.trackers[tracked]
	for i, sub := range subs {
		if sub == subscriber {
			s.trackers[tracked] = append(subs[:i], subs[i+1:]...)
			return
		}
	}
}

// Update ingests one client measurement: localize (consuming the
// processing delay), refresh the user's soft-state variable, and send
// alerts on zone transitions.
func (s *Server) Update(user string, strengths []float64) (Estimate, error) {
	if user == "" {
		return Estimate{}, errors.New("wish: empty user")
	}
	s.cfg.Clock.Sleep(s.cfg.ProcessDelay)
	est, err := s.Locate(strengths)
	if err != nil {
		return Estimate{}, err
	}
	varName := "wish/user/" + user
	if err := s.store.Define(sss.Spec{
		Name:         varName,
		RefreshEvery: s.cfg.UserRefresh,
		MaxMissed:    s.cfg.UserMaxMissed,
	}); err != nil {
		return Estimate{}, err
	}
	value := fmt.Sprintf("%s|%.1f|%.1f|%.0f%%", est.Zone, est.X, est.Y, est.Confidence)
	if err := s.store.Write(varName, value); err != nil {
		return Estimate{}, err
	}

	s.mu.Lock()
	prev, had := s.lastZone[user]
	s.lastZone[user] = est.Zone
	subs := append([]string(nil), s.trackers[user]...)
	s.mu.Unlock()
	if had && prev != est.Zone && len(subs) > 0 {
		s.sendTransitionAlert(user, prev, est)
	}
	return est, nil
}

// sendTransitionAlert notifies subscribers of a zone change.
func (s *Server) sendTransitionAlert(user, prev string, est Estimate) {
	kind := TransitionMove
	switch {
	case prev == OutsideZone:
		kind = TransitionEnter
	case est.Zone == OutsideZone:
		kind = TransitionLeave
	}
	place := est.Zone
	if kind == TransitionLeave {
		place = prev
	}
	a := &alert.Alert{
		ID:       alert.NextID("wish"),
		Source:   "wish",
		Keywords: []string{"Location"},
		Subject:  fmt.Sprintf("%s %s %s", user, kind, place),
		Body: fmt.Sprintf("%s %s %s (estimate %.1f, %.1f; confidence %.0f%%).",
			user, kind, place, est.X, est.Y, est.Confidence),
		Urgency: alert.UrgencyNormal,
		Created: est.At,
	}
	s.mu.Lock()
	s.alertsSent++
	s.mu.Unlock()
	if s.cfg.Target == nil {
		return
	}
	rep, err := s.cfg.Target.Deliver(a)
	if s.cfg.OnReport != nil {
		s.cfg.OnReport(a, rep, err)
	}
}

// Client is the WISH client software on a user's wireless device: it
// measures signal strengths at its current position and beacons them
// to the server.
type Client struct {
	clk           clock.Clock
	rng           *dist.RNG
	server        *Server
	user          string
	beaconPeriod  time.Duration
	wirelessDelay time.Duration

	mu   sync.Mutex
	x, y float64
	stop chan struct{}
}

// NewClient builds a client for user, beaconing every beaconPeriod.
func NewClient(clk clock.Clock, rng *dist.RNG, server *Server, user string, beaconPeriod time.Duration) (*Client, error) {
	if clk == nil || rng == nil || server == nil {
		return nil, errors.New("wish: client requires clock, rng, and server")
	}
	if user == "" {
		return nil, errors.New("wish: client requires user")
	}
	if beaconPeriod <= 0 {
		beaconPeriod = 2 * time.Second
	}
	return &Client{
		clk:           clk,
		rng:           rng,
		server:        server,
		user:          user,
		beaconPeriod:  beaconPeriod,
		wirelessDelay: 500 * time.Millisecond,
	}, nil
}

// MoveTo sets the device's true position.
func (c *Client) MoveTo(x, y float64) {
	c.mu.Lock()
	c.x, c.y = x, y
	c.mu.Unlock()
}

// Position returns the device's true position.
func (c *Client) Position() (x, y float64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.x, c.y
}

// Beacon sends one measurement immediately (after the wireless
// transmission delay).
func (c *Client) Beacon() {
	x, y := c.Position()
	strengths := c.server.model.SignalAt(x, y, c.rng)
	c.clk.AfterFunc(c.wirelessDelay, func() {
		_, _ = c.server.Update(c.user, strengths)
	})
}

// Start begins periodic beaconing.
func (c *Client) Start() {
	c.mu.Lock()
	if c.stop != nil {
		c.mu.Unlock()
		return
	}
	stop := make(chan struct{})
	c.stop = stop
	c.mu.Unlock()
	go func() {
		ticker := c.clk.NewTicker(c.beaconPeriod)
		defer ticker.Stop()
		for {
			select {
			case <-stop:
				return
			case <-ticker.C():
				c.Beacon()
			}
		}
	}()
}

// Stop halts beaconing; the user's soft-state variable will expire.
func (c *Client) Stop() {
	c.mu.Lock()
	if c.stop != nil {
		close(c.stop)
		c.stop = nil
	}
	c.mu.Unlock()
}
