// Package addr implements the user address book of SIMBA's
// subscription layer. Each user registers a list of communication
// addresses, each tagged with a communication type (IM, SMS, or EM for
// email) and identified by a friendly name such as "MSN IM" or "Work
// email". Delivery-mode actions refer to addresses exclusively through
// friendly names, and addresses can be enabled and disabled at run time
// — per the paper, disabling the SMS address while traveling makes any
// block containing an SMS action fail over to the next backup block.
//
// Address books are expressed in XML, following the paper's choice of
// XML "to allow extensibility for accommodating new communication
// addresses".
package addr

import (
	"encoding/xml"
	"fmt"
	"sync"
)

// Type is a communication type.
type Type string

// Communication types from the paper.
const (
	TypeIM    Type = "IM"
	TypeSMS   Type = "SMS"
	TypeEmail Type = "EM"
	// TypeSink is the hosting substrate's pseudo-channel: hosted
	// tenants without a personalized delivery mode deliver through the
	// hub's flat sink, which registers its adapter channel under this
	// type. It never appears in a user-authored address book.
	TypeSink Type = "SINK"
)

// Valid reports whether t is a known communication type.
func (t Type) Valid() bool {
	switch t {
	case TypeIM, TypeSMS, TypeEmail, TypeSink:
		return true
	default:
		return false
	}
}

// Address is one registered delivery address.
type Address struct {
	// Type is the communication type.
	Type Type `xml:"type,attr"`
	// Name is the user-chosen friendly name, unique within the book.
	Name string `xml:"name,attr"`
	// Target is the network address: an IM handle, an SMS gateway
	// address, or an email address.
	Target string `xml:"target,attr"`
	// Enabled marks the address usable for delivery.
	Enabled bool `xml:"enabled,attr"`
}

// Validate reports whether the address is well-formed.
func (a *Address) Validate() error {
	switch {
	case !a.Type.Valid():
		return fmt.Errorf("addr: unknown communication type %q", a.Type)
	case a.Name == "":
		return fmt.Errorf("addr: address of type %s missing friendly name", a.Type)
	case a.Target == "":
		return fmt.Errorf("addr: address %q missing target", a.Name)
	default:
		return nil
	}
}

// Book is the XML document form of a user's address list.
type Book struct {
	XMLName   xml.Name  `xml:"addresses"`
	User      string    `xml:"user,attr"`
	Addresses []Address `xml:"address"`
}

// Validate checks the whole document, including friendly-name
// uniqueness.
func (b *Book) Validate() error {
	if b.User == "" {
		return fmt.Errorf("addr: address book missing user")
	}
	seen := make(map[string]bool, len(b.Addresses))
	for i := range b.Addresses {
		a := &b.Addresses[i]
		if err := a.Validate(); err != nil {
			return err
		}
		if seen[a.Name] {
			return fmt.Errorf("addr: duplicate friendly name %q", a.Name)
		}
		seen[a.Name] = true
	}
	return nil
}

// Marshal renders the book as an XML document.
func (b *Book) Marshal() ([]byte, error) {
	if err := b.Validate(); err != nil {
		return nil, err
	}
	return xml.MarshalIndent(b, "", "  ")
}

// Unmarshal parses and validates an XML address book.
func Unmarshal(data []byte) (*Book, error) {
	var b Book
	if err := xml.Unmarshal(data, &b); err != nil {
		return nil, fmt.Errorf("addr: parsing address book: %w", err)
	}
	if err := b.Validate(); err != nil {
		return nil, err
	}
	return &b, nil
}

// Registry is the mutable, concurrency-safe view of one user's address
// book that the delivery engine consults at routing time.
type Registry struct {
	mu     sync.RWMutex
	user   string
	byName map[string]*Address
	order  []string // friendly names in registration order
}

// NewRegistry returns an empty registry for the user.
func NewRegistry(user string) *Registry {
	return &Registry{user: user, byName: make(map[string]*Address)}
}

// FromBook builds a registry from a validated document.
func FromBook(b *Book) (*Registry, error) {
	if err := b.Validate(); err != nil {
		return nil, err
	}
	r := NewRegistry(b.User)
	for i := range b.Addresses {
		if err := r.Register(b.Addresses[i]); err != nil {
			return nil, err
		}
	}
	return r, nil
}

// User returns the owning user name.
func (r *Registry) User() string { return r.user }

// Register adds an address. The friendly name must be unused.
func (r *Registry) Register(a Address) error {
	if err := a.Validate(); err != nil {
		return err
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, ok := r.byName[a.Name]; ok {
		return fmt.Errorf("addr: friendly name %q already registered", a.Name)
	}
	cp := a
	r.byName[a.Name] = &cp
	r.order = append(r.order, a.Name)
	return nil
}

// Lookup returns the address with the given friendly name.
func (r *Registry) Lookup(name string) (Address, bool) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	a, ok := r.byName[name]
	if !ok {
		return Address{}, false
	}
	return *a, true
}

// SetEnabled enables or disables the named address.
func (r *Registry) SetEnabled(name string, enabled bool) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	a, ok := r.byName[name]
	if !ok {
		return fmt.Errorf("addr: no address named %q", name)
	}
	a.Enabled = enabled
	return nil
}

// SetTypeEnabled enables or disables every address of the given type —
// the paper's "temporarily disable her SMS address" operation in one
// call. It returns how many addresses changed state.
func (r *Registry) SetTypeEnabled(t Type, enabled bool) int {
	r.mu.Lock()
	defer r.mu.Unlock()
	n := 0
	for _, a := range r.byName {
		if a.Type == t && a.Enabled != enabled {
			a.Enabled = enabled
			n++
		}
	}
	return n
}

// All returns every address in registration order.
func (r *Registry) All() []Address {
	r.mu.RLock()
	defer r.mu.RUnlock()
	out := make([]Address, 0, len(r.order))
	for _, name := range r.order {
		out = append(out, *r.byName[name])
	}
	return out
}

// Book renders the registry back into document form.
func (r *Registry) Book() *Book {
	return &Book{User: r.user, Addresses: r.All()}
}
