package addr

import (
	"strings"
	"testing"
	"testing/quick"
)

func sampleBook() *Book {
	return &Book{
		User: "alice",
		Addresses: []Address{
			{Type: TypeIM, Name: "MSN IM", Target: "alice@im.sim", Enabled: true},
			{Type: TypeSMS, Name: "Cell SMS", Target: "5551234@sms.sim", Enabled: true},
			{Type: TypeEmail, Name: "Work email", Target: "alice@work.sim", Enabled: true},
			{Type: TypeEmail, Name: "Home email", Target: "alice@home.sim", Enabled: false},
		},
	}
}

func TestTypeValid(t *testing.T) {
	for _, tt := range []struct {
		in   Type
		want bool
	}{
		{TypeIM, true}, {TypeSMS, true}, {TypeEmail, true},
		{Type("FAX"), false}, {Type(""), false}, {Type("im"), false},
	} {
		if got := tt.in.Valid(); got != tt.want {
			t.Fatalf("Valid(%q) = %v", tt.in, got)
		}
	}
}

func TestAddressValidate(t *testing.T) {
	tests := []struct {
		name    string
		addr    Address
		wantErr string
	}{
		{"valid", Address{Type: TypeIM, Name: "x", Target: "t"}, ""},
		{"bad type", Address{Type: "FAX", Name: "x", Target: "t"}, "unknown communication type"},
		{"no name", Address{Type: TypeIM, Target: "t"}, "missing friendly name"},
		{"no target", Address{Type: TypeIM, Name: "x"}, "missing target"},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			err := tt.addr.Validate()
			if tt.wantErr == "" {
				if err != nil {
					t.Fatalf("Validate() = %v", err)
				}
				return
			}
			if err == nil || !strings.Contains(err.Error(), tt.wantErr) {
				t.Fatalf("Validate() = %v, want contains %q", err, tt.wantErr)
			}
		})
	}
}

func TestBookValidateDuplicates(t *testing.T) {
	b := sampleBook()
	b.Addresses = append(b.Addresses, Address{Type: TypeIM, Name: "MSN IM", Target: "other"})
	if err := b.Validate(); err == nil || !strings.Contains(err.Error(), "duplicate") {
		t.Fatalf("Validate() = %v, want duplicate error", err)
	}
}

func TestBookValidateMissingUser(t *testing.T) {
	b := sampleBook()
	b.User = ""
	if err := b.Validate(); err == nil {
		t.Fatal("Validate() accepted missing user")
	}
}

func TestBookXMLRoundTrip(t *testing.T) {
	b := sampleBook()
	data, err := b.Marshal()
	if err != nil {
		t.Fatalf("Marshal: %v", err)
	}
	got, err := Unmarshal(data)
	if err != nil {
		t.Fatalf("Unmarshal: %v", err)
	}
	if got.User != b.User || len(got.Addresses) != len(b.Addresses) {
		t.Fatalf("round trip mismatch: %+v", got)
	}
	for i := range b.Addresses {
		if got.Addresses[i] != b.Addresses[i] {
			t.Fatalf("address %d mismatch: got %+v want %+v", i, got.Addresses[i], b.Addresses[i])
		}
	}
}

func TestUnmarshalRejectsInvalid(t *testing.T) {
	for _, in := range []string{
		"not xml at all <",
		`<addresses user=""><address type="IM" name="a" target="t" enabled="true"/></addresses>`,
		`<addresses user="u"><address type="ZZ" name="a" target="t" enabled="true"/></addresses>`,
	} {
		if _, err := Unmarshal([]byte(in)); err == nil {
			t.Fatalf("Unmarshal(%q) succeeded", in)
		}
	}
}

func TestBookXMLRoundTripProperty(t *testing.T) {
	f := func(user string, names []string) bool {
		user = xmlSafe(user)
		if user == "" {
			return true
		}
		b := &Book{User: user}
		seen := map[string]bool{}
		types := []Type{TypeIM, TypeSMS, TypeEmail}
		for i, n := range names {
			n = xmlSafe(n)
			if n == "" || seen[n] {
				return true
			}
			seen[n] = true
			b.Addresses = append(b.Addresses, Address{
				Type:    types[i%len(types)],
				Name:    n,
				Target:  "target-" + n,
				Enabled: i%2 == 0,
			})
		}
		data, err := b.Marshal()
		if err != nil {
			return false
		}
		got, err := Unmarshal(data)
		if err != nil {
			return false
		}
		if got.User != b.User || len(got.Addresses) != len(b.Addresses) {
			return false
		}
		for i := range b.Addresses {
			if got.Addresses[i] != b.Addresses[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestRegistryRegisterAndLookup(t *testing.T) {
	r := NewRegistry("alice")
	if r.User() != "alice" {
		t.Fatalf("User() = %q", r.User())
	}
	a := Address{Type: TypeIM, Name: "MSN IM", Target: "alice@im.sim", Enabled: true}
	if err := r.Register(a); err != nil {
		t.Fatalf("Register: %v", err)
	}
	if err := r.Register(a); err == nil {
		t.Fatal("duplicate Register succeeded")
	}
	if err := r.Register(Address{Type: "FAX", Name: "f", Target: "t"}); err == nil {
		t.Fatal("invalid Register succeeded")
	}
	got, ok := r.Lookup("MSN IM")
	if !ok || got != a {
		t.Fatalf("Lookup = %+v, %v", got, ok)
	}
	if _, ok := r.Lookup("nope"); ok {
		t.Fatal("Lookup(nope) found something")
	}
}

func TestRegistryRegisterCopies(t *testing.T) {
	r := NewRegistry("alice")
	a := Address{Type: TypeIM, Name: "MSN IM", Target: "x", Enabled: true}
	if err := r.Register(a); err != nil {
		t.Fatal(err)
	}
	a.Target = "mutated"
	got, _ := r.Lookup("MSN IM")
	if got.Target != "x" {
		t.Fatal("Register aliased caller's struct")
	}
}

func TestRegistrySetEnabled(t *testing.T) {
	r, err := FromBook(sampleBook())
	if err != nil {
		t.Fatal(err)
	}
	if err := r.SetEnabled("Cell SMS", false); err != nil {
		t.Fatalf("SetEnabled: %v", err)
	}
	got, _ := r.Lookup("Cell SMS")
	if got.Enabled {
		t.Fatal("address still enabled")
	}
	if err := r.SetEnabled("missing", true); err == nil {
		t.Fatal("SetEnabled(missing) succeeded")
	}
}

func TestRegistrySetTypeEnabled(t *testing.T) {
	r, err := FromBook(sampleBook())
	if err != nil {
		t.Fatal(err)
	}
	// Two EM addresses, one already disabled → only one changes.
	if n := r.SetTypeEnabled(TypeEmail, false); n != 1 {
		t.Fatalf("SetTypeEnabled disabled %d, want 1", n)
	}
	for _, a := range r.All() {
		if a.Type == TypeEmail && a.Enabled {
			t.Fatalf("email address %q still enabled", a.Name)
		}
	}
	if n := r.SetTypeEnabled(TypeEmail, true); n != 2 {
		t.Fatalf("SetTypeEnabled enabled %d, want 2", n)
	}
}

func TestRegistryAllPreservesOrder(t *testing.T) {
	r, err := FromBook(sampleBook())
	if err != nil {
		t.Fatal(err)
	}
	all := r.All()
	want := []string{"MSN IM", "Cell SMS", "Work email", "Home email"}
	for i, name := range want {
		if all[i].Name != name {
			t.Fatalf("All()[%d] = %q, want %q", i, all[i].Name, name)
		}
	}
}

func TestRegistryBookRoundTrip(t *testing.T) {
	r, err := FromBook(sampleBook())
	if err != nil {
		t.Fatal(err)
	}
	b := r.Book()
	if err := b.Validate(); err != nil {
		t.Fatalf("regenerated book invalid: %v", err)
	}
	if len(b.Addresses) != 4 || b.User != "alice" {
		t.Fatalf("regenerated book = %+v", b)
	}
}

func TestFromBookRejectsInvalid(t *testing.T) {
	b := sampleBook()
	b.User = ""
	if _, err := FromBook(b); err == nil {
		t.Fatal("FromBook accepted invalid book")
	}
}

// xmlSafe reduces an arbitrary string to characters that encoding/xml
// can round-trip through an attribute value.
func xmlSafe(s string) string {
	var b strings.Builder
	for _, r := range s {
		if r >= 'a' && r <= 'z' || r >= 'A' && r <= 'Z' || r >= '0' && r <= '9' || r == ' ' || r == '-' {
			b.WriteRune(r)
		}
	}
	return strings.TrimSpace(b.String())
}
