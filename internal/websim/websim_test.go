package websim

import (
	"errors"
	"testing"
	"time"

	"simba/internal/clock"
)

func newWeb(t *testing.T) (*Web, *clock.Sim) {
	t.Helper()
	sim := clock.NewSim(time.Time{})
	w, err := New(sim, 200*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	return w, sim
}

func TestNewValidation(t *testing.T) {
	if _, err := New(nil, 0); err == nil {
		t.Fatal("nil clock accepted")
	}
}

func TestCreateSiteValidation(t *testing.T) {
	w, _ := newWeb(t)
	if _, err := w.CreateSite(""); err == nil {
		t.Fatal("empty name accepted")
	}
	if _, err := w.CreateSite("a/b"); err == nil {
		t.Fatal("slash in name accepted")
	}
	if _, err := w.CreateSite("cnn"); err != nil {
		t.Fatal(err)
	}
	if _, err := w.CreateSite("cnn"); err == nil {
		t.Fatal("duplicate accepted")
	}
	if _, ok := w.Site("cnn"); !ok {
		t.Fatal("Site lookup failed")
	}
}

func TestGetContent(t *testing.T) {
	w, sim := newWeb(t)
	site, _ := w.CreateSite("cnn")
	site.SetContent("election", "Gore 2000 Bush 1999", sim.Now())

	done := make(chan struct{})
	var content string
	var err error
	go func() {
		content, err = w.Get("cnn/election")
		close(done)
	}()
	deadline := time.Now().Add(5 * time.Second)
	for {
		select {
		case <-done:
		default:
			if time.Now().After(deadline) {
				t.Fatal("Get never returned")
			}
			sim.Advance(100 * time.Millisecond)
			time.Sleep(time.Millisecond)
			continue
		}
		break
	}
	if err != nil || content != "Gore 2000 Bush 1999" {
		t.Fatalf("Get = %q, %v", content, err)
	}
}

func TestGetErrors(t *testing.T) {
	sim := clock.NewSim(time.Time{})
	w, err := New(sim, -1) // default delay
	if err != nil {
		t.Fatal(err)
	}
	// Use a background driver to satisfy fetch delays.
	stop := make(chan struct{})
	defer close(stop)
	go func() {
		for {
			select {
			case <-stop:
				return
			default:
				sim.Advance(time.Second)
				time.Sleep(time.Millisecond)
			}
		}
	}()

	if _, err := w.Get("noslash"); err == nil {
		t.Fatal("malformed url accepted")
	}
	if _, err := w.Get("ghost/page"); !errors.Is(err, ErrNoSuchSite) {
		t.Fatalf("Get(ghost) = %v", err)
	}
	site, _ := w.CreateSite("cnn")
	if _, err := w.Get("cnn/missing"); !errors.Is(err, ErrNoSuchPage) {
		t.Fatalf("Get(missing page) = %v", err)
	}
	site.SetContent("p", "x", sim.Now())
	site.Down().Set(true, sim.Now())
	if _, err := w.Get("cnn/p"); !errors.Is(err, ErrUnreachable) {
		t.Fatalf("Get(down site) = %v", err)
	}
	site.Down().Set(false, sim.Now())
	if _, err := w.Get("cnn/p"); err != nil {
		t.Fatalf("Get after recovery = %v", err)
	}
}

func TestVersionTracksChanges(t *testing.T) {
	w, sim := newWeb(t)
	site, _ := w.CreateSite("s")
	if site.Version("p") != 0 {
		t.Fatal("missing page has a version")
	}
	site.SetContent("p", "v1", sim.Now())
	site.SetContent("p", "v1", sim.Now()) // unchanged: version stays
	if got := site.Version("p"); got != 1 {
		t.Fatalf("Version = %d", got)
	}
	site.SetContent("p", "v2", sim.Now())
	if got := site.Version("p"); got != 2 {
		t.Fatalf("Version = %d", got)
	}
}

func TestScheduleUpdate(t *testing.T) {
	w, sim := newWeb(t)
	site, _ := w.CreateSite("s")
	site.SetContent("p", "before", sim.Now())
	site.ScheduleUpdate(sim, time.Minute, "p", "after")
	sim.Advance(59 * time.Second)
	time.Sleep(time.Millisecond)
	if site.Version("p") != 1 {
		t.Fatal("update fired early")
	}
	sim.Advance(2 * time.Second)
	deadline := time.Now().Add(time.Second)
	for site.Version("p") != 2 {
		if time.Now().After(deadline) {
			t.Fatal("scheduled update never fired")
		}
		time.Sleep(time.Millisecond)
	}
}
