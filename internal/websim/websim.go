// Package websim simulates the Web sites the alert proxy polls: named
// sites holding mutable pages, with configurable fetch latency and
// injectable unreachability. The harness scripts content changes at
// known virtual instants (the Florida-recount and PlayStation2
// monitors of Section 5), which lets the experiments measure exact
// detection-to-delivery latency.
package websim

import (
	"errors"
	"fmt"
	"strings"
	"sync"
	"time"

	"simba/internal/clock"
	"simba/internal/faults"
)

// Fetch errors.
var (
	// ErrNoSuchSite indicates the site name is unknown.
	ErrNoSuchSite = errors.New("websim: no such site")
	// ErrNoSuchPage indicates the path is unknown on the site.
	ErrNoSuchPage = errors.New("websim: no such page")
	// ErrUnreachable indicates the site is down or the network path to
	// it is broken.
	ErrUnreachable = errors.New("websim: site unreachable")
)

// DefaultFetchDelay models one HTTP round trip.
const DefaultFetchDelay = 200 * time.Millisecond

// Web is the collection of simulated sites.
type Web struct {
	clk        clock.Clock
	fetchDelay time.Duration

	mu    sync.Mutex
	sites map[string]*Site
}

// New builds an empty web. fetchDelay <= 0 selects the default.
func New(clk clock.Clock, fetchDelay time.Duration) (*Web, error) {
	if clk == nil {
		return nil, errors.New("websim: clock is required")
	}
	if fetchDelay <= 0 {
		fetchDelay = DefaultFetchDelay
	}
	return &Web{clk: clk, fetchDelay: fetchDelay, sites: make(map[string]*Site)}, nil
}

// CreateSite registers a new site.
func (w *Web) CreateSite(name string) (*Site, error) {
	if name == "" || strings.Contains(name, "/") {
		return nil, fmt.Errorf("websim: invalid site name %q", name)
	}
	w.mu.Lock()
	defer w.mu.Unlock()
	if _, ok := w.sites[name]; ok {
		return nil, fmt.Errorf("websim: site %q already exists", name)
	}
	s := &Site{
		name:  name,
		pages: make(map[string]*page),
		down:  faults.NewFlag("site-down:" + name),
	}
	w.sites[name] = s
	return s, nil
}

// Site returns the named site.
func (w *Web) Site(name string) (*Site, bool) {
	w.mu.Lock()
	defer w.mu.Unlock()
	s, ok := w.sites[name]
	return s, ok
}

// Get fetches url ("site/path"), consuming the fetch delay of virtual
// time.
func (w *Web) Get(url string) (string, error) {
	siteName, path, ok := strings.Cut(url, "/")
	if !ok {
		return "", fmt.Errorf("websim: malformed url %q (want site/path)", url)
	}
	w.mu.Lock()
	site, found := w.sites[siteName]
	w.mu.Unlock()
	if !found {
		return "", fmt.Errorf("websim: get %q: %w", url, ErrNoSuchSite)
	}
	w.clk.Sleep(w.fetchDelay)
	return site.get(path)
}

// Site is one simulated web site.
type Site struct {
	name string
	down *faults.Flag

	mu    sync.Mutex
	pages map[string]*page
}

type page struct {
	content  string
	version  int
	modified time.Time
}

// Name returns the site name.
func (s *Site) Name() string { return s.name }

// Down returns the site's unreachability flag.
func (s *Site) Down() *faults.Flag { return s.down }

// SetContent creates or replaces a page.
func (s *Site) SetContent(path, content string, now time.Time) {
	s.mu.Lock()
	defer s.mu.Unlock()
	p, ok := s.pages[path]
	if !ok {
		p = &page{}
		s.pages[path] = p
	}
	if p.content != content {
		p.version++
		p.modified = now
	}
	p.content = content
}

// Version returns a page's change counter.
func (s *Site) Version(path string) int {
	s.mu.Lock()
	defer s.mu.Unlock()
	if p, ok := s.pages[path]; ok {
		return p.version
	}
	return 0
}

func (s *Site) get(path string) (string, error) {
	if s.down.Active() {
		return "", fmt.Errorf("websim: %s: %w", s.name, ErrUnreachable)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	p, ok := s.pages[path]
	if !ok {
		return "", fmt.Errorf("websim: %s/%s: %w", s.name, path, ErrNoSuchPage)
	}
	return p.content, nil
}

// ScheduleUpdate arms a content change at a virtual-time offset.
func (s *Site) ScheduleUpdate(clk clock.Clock, after time.Duration, path, content string) {
	clk.AfterFunc(after, func() {
		s.SetContent(path, content, clk.Now())
	})
}
