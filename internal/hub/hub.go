// Package hub is the multi-tenant hosting layer that multiplexes many
// MyAlertBuddies into one simbad process. The paper's buddy is a
// personal, always-on router — one process per user; the hub keeps the
// same dependability contract (pessimistic log before ack, replay on
// restart, timestamp-based duplicate detection downstream) while
// hosting thousands of users behind a shard table:
//
//   - User IDs hash onto K shards. Each shard owns a single-goroutine
//     event loop and a bounded inbound queue with explicit admission
//     control: when the queue is full, Submit fails with an
//     OverloadError carrying a retry hint. An alert is never
//     acknowledged (Submit never returns nil) unless it is durable, and
//     a durable alert is never silently dropped — it is either routed
//     and marked processed or replayed by the next incarnation.
//   - Routing and delivery are pipelined: the shard loop evaluates the
//     tenant pipeline and stages WAL work, while Sink.Deliver runs in a
//     per-shard delivery stage — a bounded in-flight window of workers
//     with capped, jittered retry backoff. Alerts for the same user are
//     chained (per-user FIFO), alerts for different users overlap, so a
//     slow delivery stalls one tenant's chain instead of the shard.
//   - Durability is partitioned into per-shard WAL lanes
//     (plog.LaneSet): each lane is an independent group-commit journal
//     with its own committer and fsync pipeline, so shards stage and
//     sync in parallel instead of serializing on one log, while RECV
//     and DONE records within a lane still batch into one fsync per
//     commit window — log-before-ack preserved, fsyncs cut by orders
//     of magnitude. Config.WALLanes tunes the partition width (default
//     one lane per shard).
//   - On restart all lanes are recovered concurrently and the merged
//     unprocessed set (ordered by received-at timestamp — per-user
//     order is exact because a user's shard, hence lane, is stable) is
//     replayed through the rebuilt buddies before the hub accepts new
//     traffic.
//   - Per-shard queue depths, admission rejects, commit-batch sizes,
//     and end-to-end routing latency are exposed via internal/metrics;
//     Drain stops intake, lets the shards finish their queues, and
//     flushes the WAL.
package hub

import (
	"errors"
	"fmt"
	"hash/fnv"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"simba/internal/addr"
	"simba/internal/alert"
	"simba/internal/clock"
	"simba/internal/core"
	"simba/internal/dist"
	"simba/internal/dmode"
	"simba/internal/faults"
	"simba/internal/im"
	"simba/internal/mab"
	"simba/internal/metrics"
	"simba/internal/outbox"
	"simba/internal/plog"
)

// Defaults.
const (
	// DefaultShards is the shard count when Config.Shards is zero.
	DefaultShards = 4
	// DefaultQueueDepth bounds each shard's inbound queue (covering
	// both queued and in-admission alerts).
	DefaultQueueDepth = 256
	// DefaultCommitMaxBatch caps WAL lines per group commit.
	DefaultCommitMaxBatch = 1024
	// DefaultLatencyReservoir bounds the end-to-end latency recorder's
	// memory on million-alert runs.
	DefaultLatencyReservoir = 4096
	// DefaultDeliveryWindow bounds each shard's concurrently executing
	// deliveries.
	DefaultDeliveryWindow = 32
	// DefaultDeliveryMaxAttempts is the per-alert delivery attempt cap
	// (1 initial try + retries) before the alert counts as
	// undeliverable.
	DefaultDeliveryMaxAttempts = 4
	// DefaultDeliveryBackoff is the base retry backoff; attempt n waits
	// roughly backoff·2ⁿ⁻¹ with jitter, capped.
	DefaultDeliveryBackoff = time.Millisecond
	// DefaultDeliveryBackoffCap caps the exponential retry backoff.
	DefaultDeliveryBackoffCap = 100 * time.Millisecond
	// DefaultWALCheckpointEvery triggers a WAL checkpoint + segment
	// compaction after this many journal records — large enough that
	// short runs never pay for a checkpoint, small enough that a
	// long-lived hub's disk and restart time stay bounded.
	DefaultWALCheckpointEvery = 65536
	// DefaultRouteBatch caps how many queued envelopes a shard loop
	// drains per wakeup, amortizing per-alert WAL staging and delivery
	// handoff costs across the drained batch.
	DefaultRouteBatch = 64
	// DefaultQuiesceTimeout bounds how long a graceful shard
	// rejuvenation waits for the shard's admitted work to drain before
	// escalating to a kill+replay restart; it also bounds how long a
	// kill+replay restart waits for the abandoned generation's loop and
	// delivery workers to stop before scanning the WAL.
	DefaultQuiesceTimeout = 5 * time.Second
	// DefaultAsyncInFlight caps the hub-wide number of unresolved
	// SubmitBatchAsync tickets when Config.AsyncInFlight is zero.
	DefaultAsyncInFlight = 256
	// laneQueueDepth buffers each WAL lane's commit-resolver inbox; a
	// full inbox backpressures stagers onto the resolver.
	laneQueueDepth = 128
)

// keySep joins the tenant ID and the alert's dedup key inside WAL
// record keys, so recovery can attribute each entry to its user. It is
// a control character no user ID or dedup key contains.
const keySep = "\x1f"

// Hub errors.
var (
	// ErrNotAccepting indicates the hub is not started, draining, or
	// killed. The sender should fail over, not retry immediately.
	ErrNotAccepting = errors.New("hub: not accepting alerts")
	// ErrUnknownUser indicates no tenant is registered for the user.
	ErrUnknownUser = errors.New("hub: unknown user")
)

// OverloadError is the admission-control rejection: the target shard's
// queue is full. The alert was NOT logged or acknowledged — the sender
// must retry (after RetryAfter) or fall back, exactly as if the ack had
// been lost. Rejecting before the pessimistic log keeps the invariant
// "never silently drop an acknowledged alert".
type OverloadError struct {
	User  string
	Shard int
	// Depth is the shard queue's configured capacity.
	Depth int
	// RetryAfter is a hint: roughly how long until the shard has
	// drained enough of its queue to admit new work.
	RetryAfter time.Duration
}

// Error implements error.
func (e *OverloadError) Error() string {
	return fmt.Sprintf("hub: shard %d overloaded (queue depth %d); retry after %v",
		e.Shard, e.Depth, e.RetryAfter)
}

// Sink is the flat delivery substrate the hub routes into: one call
// per routed alert, no delivery modes. shard identifies the calling
// shard so simulated substrates can use per-shard forked RNGs instead
// of serializing on one.
//
// Deprecated: Sink predates the shared mode executor. New delivery
// substrates should implement core.Channel and register through
// Config.Channels; a Sink is still accepted and is adapted into the
// channel registry as the FlatSink substrate channel, which tenants
// without a personalized delivery mode execute through.
type Sink interface {
	Deliver(shard int, user string, a *alert.Alert) error
}

// flatAddressName is the friendly name of the synthesized address that
// routes profile-less tenants through the FlatSink substrate channel.
const flatAddressName = "substrate"

// Config parameterizes the hub.
type Config struct {
	// Clock is required. At least one of Sink and Channels must be set.
	Clock clock.Clock
	// Sink is the flat delivery substrate. When set, it is registered
	// into the channel registry as the FlatSink channel under
	// addr.TypeSink, which tenants without a personalized delivery mode
	// execute through.
	Sink Sink
	// Channels is the delivery channel registry the shared mode
	// executor draws from (IM, email, SMS, ...). Optional; the hub
	// creates an empty registry when nil. Note the hub registers its
	// FlatSink adapter under addr.TypeSink in this registry.
	Channels *core.Channels
	// AckTimeout, when positive, substitutes for the default block
	// timeout in hosted delivery modes: blocks that do not specify a
	// timeout wait this long for an acknowledgement before falling
	// back, instead of dmode.DefaultBlockTimeout. It bounds how long a
	// tenant's ack wait can occupy its delivery chain.
	AckTimeout time.Duration
	// OnDelivery, when set, observes every delivery-mode execution
	// attempt on the hub's delivery workers: the per-attempt report
	// (block fallback trace) and the attempt's error, nil on success.
	// Must be safe for concurrent calls.
	OnDelivery func(user string, rep *core.Report, err error)
	// WALPath is the journal base path; required. Lane 0 lives at this
	// path (so a 1-lane hub's journal is identical to the historical
	// single-WAL layout) and lane i at "<WALPath>.lane<NN>".
	WALPath string
	// WALLanes is the number of independent WAL lanes durability is
	// partitioned across; each shard appends to lane shard%WALLanes, so
	// lanes stage and fsync in parallel. Zero means one lane per shard;
	// values above Shards are clamped (extra lanes would never be
	// routed to). Lanes left by a previous run with a higher count are
	// still recovered and replayed.
	WALLanes int
	// Shards is the shard-table size; zero means DefaultShards.
	Shards int
	// QueueDepth bounds each shard's inbound queue; zero means
	// DefaultQueueDepth.
	QueueDepth int
	// CommitWindow is the group-commit window's upper bound (wall
	// clock). The commit schedule is adaptive (plog.GroupOptions.Window):
	// an append that ends an idle spell commits immediately, so the
	// window taxes only steady streams. Zero commits as soon as the
	// previous fsync finishes.
	CommitWindow time.Duration
	// CommitMaxBatch caps WAL lines per fsync; zero means
	// DefaultCommitMaxBatch.
	CommitMaxBatch int
	// CommitMaxRecords force-flushes an in-progress commit window once
	// a lane's staged backlog reaches this many journal lines, so heavy
	// bursts never wait out the timer. Zero means CommitMaxBatch.
	CommitMaxRecords int
	// CommitMaxBytes force-flushes once a lane's staged backlog reaches
	// this many encoded bytes. Zero means plog's default (1 MiB).
	CommitMaxBytes int
	// AsyncInFlight caps the hub-wide number of unresolved
	// SubmitBatchAsync tickets — the pipelined ingest path's
	// backpressure. An async submitter past the cap blocks until a
	// ticket resolves. Zero means DefaultAsyncInFlight.
	AsyncInFlight int
	// WALSegmentBytes caps the WAL's active segment before it rotates;
	// zero means plog.DefaultSegmentBytes (4 MiB).
	WALSegmentBytes int64
	// WALCheckpointEvery triggers a background WAL checkpoint +
	// compaction after this many journal records; zero means
	// DefaultWALCheckpointEvery, negative disables checkpointing.
	WALCheckpointEvery int64
	// RNG seeds the per-shard forked RNGs handed to simulated
	// substrates. Optional.
	RNG *dist.RNG
	// Journal records replay/recovery actions. Optional.
	Journal *faults.Journal
	// LatencyReservoir caps the routing-latency recorder's sample
	// memory; zero means DefaultLatencyReservoir.
	LatencyReservoir int
	// DeliveryWindow bounds each shard's concurrently executing
	// deliveries; zero means DefaultDeliveryWindow. One serializes
	// deliveries per shard — the pre-pipeline synchronous behavior,
	// kept as the benchmark baseline.
	DeliveryWindow int
	// DeliveryMaxAttempts caps delivery attempts per alert (initial try
	// plus retries); zero means DefaultDeliveryMaxAttempts.
	DeliveryMaxAttempts int
	// DeliveryBackoff is the base retry backoff (exponential per
	// attempt, jittered); zero means DefaultDeliveryBackoff.
	DeliveryBackoff time.Duration
	// DeliveryBackoffCap caps the exponential backoff; zero means
	// DefaultDeliveryBackoffCap.
	DeliveryBackoffCap time.Duration
	// RouteBatch caps how many queued envelopes a shard loop drains and
	// evaluates per wakeup; reject/filter verdicts from one drain stage
	// their WAL DONE records as a single batch and delivery jobs are
	// handed off under one delivery-stage lock acquisition. Zero means
	// DefaultRouteBatch; one restores strict alert-at-a-time routing.
	RouteBatch int
	// OutboxPath, when set, opens the guaranteed-tier retry outbox at
	// this journal base path. Guaranteed-tier deliveries that exhaust
	// the in-memory attempt budget are persisted there and redelivered
	// with escalating backoff across restarts; when empty, guaranteed
	// subscriptions degrade to best-effort (the drop is still counted
	// as lost). Optional.
	OutboxPath string
	// OutboxBackoff is the outbox's base per-round redelivery backoff;
	// zero means outbox.DefaultBackoff.
	OutboxBackoff time.Duration
	// OutboxBackoffCap caps the outbox's exponential round backoff;
	// zero means outbox.DefaultBackoffCap.
	OutboxBackoffCap time.Duration
	// OutboxEscalateEvery is how many exhausted outbox rounds an
	// envelope spends per delivery-mode block before escalating to the
	// next block; zero means outbox.DefaultEscalateEvery, negative
	// disables escalation.
	OutboxEscalateEvery int
	// CrashBeforeMark is a fault-injection point: when the flag is
	// active, a delivery worker that has just executed a delivery kills
	// the whole hub before marking the alert processed — the paper's
	// crash-between-routing-and-marking window, now inside the
	// asynchronous delivery stage. Optional.
	CrashBeforeMark *faults.Flag
	// CrashAfterOutboxPut is a fault-injection point for the
	// guaranteed-tier handoff window: when the flag is active, a
	// delivery worker that has just persisted an exhausted envelope to
	// the outbox kills the hub before retiring the ingest WAL entry —
	// the instant both logs own the alert. The next incarnation replays
	// it from both; the duplicate is the dedup contract's case.
	// Optional.
	CrashAfterOutboxPut *faults.Flag
	// CrashAfterBatchFsync is a fault-injection point for the batched
	// ingest path: when the flag is active, SubmitBatch kills the hub
	// after its RECV batch is durable but before any entry is enqueued
	// — the window where alerts are acknowledged yet not routed, which
	// the next incarnation must cover by replay. Optional.
	CrashAfterBatchFsync *faults.Flag
	// RouteHook, when set, runs at the top of every shard-loop routing
	// batch, before any envelope is touched, with the shard ID and the
	// running generation's kill signal. It exists for fault injection —
	// a hook that blocks wedges the shard exactly where a stuck
	// pipeline stage would, and observing killed lets the wedge clear
	// when the supervisor kills the generation. Optional.
	RouteHook func(shard int, killed <-chan struct{})
	// QuiesceTimeout bounds a graceful rejuvenation's drain wait (after
	// which it escalates to kill+replay) and a restart's wait for the
	// abandoned generation to stop (after which the WAL scan proceeds
	// anyway). Zero means DefaultQuiesceTimeout.
	QuiesceTimeout time.Duration
}

// Buddy is one hosted tenant: the per-user MyAlertBuddy pipeline
// rebuilt inside the hub. Configure its stages through Pipeline(), and
// optionally attach a delivery profile (addresses + modes) with
// SetProfile + Subscribe to make the hub execute the tenant's
// personalized delivery modes instead of the flat substrate.
type Buddy struct {
	user string
	pipe *mab.Pipeline

	// Delivery state is copy-on-write: mutators rebuild a buddyState
	// and swap it in, so plan() on the routing hot path reads the
	// profile and subscriptions without any lock.
	mu    sync.Mutex // serializes SetProfile/Subscribe
	state atomic.Pointer[buddyState]

	routed, rejected, filtered, delivered atomic.Int64
}

// buddyState is one immutable snapshot of a tenant's delivery
// configuration.
type buddyState struct {
	profile *core.Profile
	subs    map[string]string // routing category → delivery-mode name
	// tiers holds per-category QoS overrides (SubscribeTier);
	// categories without an entry use defaultTier.
	tiers       map[string]core.Tier
	defaultTier core.Tier
}

// clone copies the snapshot for a mutator, sharing the immutable maps
// the mutation does not touch.
func (s *buddyState) clone() *buddyState {
	if s == nil {
		return &buddyState{}
	}
	c := *s
	return &c
}

// User returns the tenant's user ID.
func (b *Buddy) User() string { return b.user }

// Pipeline returns the tenant's classify→aggregate→filter stages.
func (b *Buddy) Pipeline() *mab.Pipeline { return b.pipe }

// SetProfile attaches the tenant's delivery profile. Alerts routed to
// a category the tenant subscribed (Subscribe) execute that
// subscription's delivery mode — block fallback, ack timeouts — on the
// hub's delivery workers; all other alerts use the flat substrate.
func (b *Buddy) SetProfile(p *core.Profile) {
	b.mu.Lock()
	next := b.state.Load().clone() // maps are immutable once published; safe to share
	next.profile = p
	b.state.Store(next)
	b.mu.Unlock()
}

// Profile returns the tenant's delivery profile (nil when flat).
func (b *Buddy) Profile() *core.Profile {
	if s := b.state.Load(); s != nil {
		return s.profile
	}
	return nil
}

// Subscribe maps a routing category to one of the profile's delivery
// modes, mirroring Store.Subscribe on the hosted path. The profile
// must be set and must define the mode. The subscription's QoS tier is
// the tenant's default (SetTier); SubscribeTier overrides it
// per-category.
func (b *Buddy) Subscribe(category, mode string) error {
	return b.subscribe(category, mode, nil)
}

// SubscribeTier is Subscribe with an explicit per-category delivery
// QoS tier, mirroring Store.SubscribeTier on the hosted path.
func (b *Buddy) SubscribeTier(category, mode string, tier core.Tier) error {
	if !tier.Valid() {
		return fmt.Errorf("hub: subscribe %s/%s: invalid tier %d", b.user, category, tier)
	}
	return b.subscribe(category, mode, &tier)
}

func (b *Buddy) subscribe(category, mode string, tier *core.Tier) error {
	if category == "" {
		return errors.New("hub: empty category")
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	cur := b.state.Load()
	if cur == nil || cur.profile == nil {
		return fmt.Errorf("hub: subscribe %s/%s: tenant has no profile", b.user, category)
	}
	if _, err := cur.profile.Mode(mode); err != nil {
		return err
	}
	next := cur.clone()
	next.subs = make(map[string]string, len(cur.subs)+1)
	for k, v := range cur.subs {
		next.subs[k] = v
	}
	next.subs[category] = mode
	if tier != nil {
		next.tiers = make(map[string]core.Tier, len(cur.tiers)+1)
		for k, v := range cur.tiers {
			next.tiers[k] = v
		}
		next.tiers[category] = *tier
	}
	b.state.Store(next)
	return nil
}

// SetTier sets the tenant's default delivery QoS tier: the tier of
// every category without a SubscribeTier override, including alerts
// that route through the flat substrate. The zero default is
// TierBestEffort — the historical semantics.
func (b *Buddy) SetTier(tier core.Tier) error {
	if !tier.Valid() {
		return fmt.Errorf("hub: tenant %s: invalid tier %d", b.user, tier)
	}
	b.mu.Lock()
	next := b.state.Load().clone()
	next.defaultTier = tier
	b.state.Store(next)
	b.mu.Unlock()
	return nil
}

// DefaultTier returns the tenant's default delivery QoS tier.
func (b *Buddy) DefaultTier() core.Tier {
	if s := b.state.Load(); s != nil {
		return s.defaultTier
	}
	return core.TierBestEffort
}

// Tier returns the delivery QoS tier alerts routed to category carry:
// the category's SubscribeTier override when present, else the
// tenant's default.
func (b *Buddy) Tier(category string) core.Tier {
	s := b.state.Load()
	if s == nil {
		return core.TierBestEffort
	}
	if t, ok := s.tiers[category]; ok {
		return t
	}
	return s.defaultTier
}

// Routed returns how many alerts passed the tenant's pipeline.
func (b *Buddy) Routed() int64 { return b.routed.Load() }

// Delivered returns how many alerts the sink accepted for the tenant.
func (b *Buddy) Delivered() int64 { return b.delivered.Load() }

// Hub hosts N per-user buddies across K shards over per-shard
// group-commit WAL lanes. It is safe for concurrent use.
type Hub struct {
	cfg    Config
	wal    *plog.LaneSet
	shards []*shard
	// outbox is the guaranteed-tier retry outbox; nil when
	// Config.OutboxPath is empty.
	outbox *outbox.Outbox

	// The shared delivery machinery: channel registry, ack table, and
	// the stateless mode executor every delivery worker calls into.
	channels *core.Channels
	acks     *core.Acks
	exec     *core.Executor
	// The synthesized flat plan profile-less tenants execute: one block,
	// one action, through the FlatSink substrate channel.
	flatReg  *addr.Registry
	flatMode *dmode.Mode

	mu      sync.RWMutex
	users   map[string]*Buddy
	started bool

	// Pipelined ingest plumbing: each WAL lane has a FIFO resolver
	// goroutine that waits out staged bursts' commit tickets in staging
	// order and only then enqueues them to their shards — the deferred
	// enqueue that keeps admission→log→ack→enqueue ordering intact when
	// submitters hold several batches in flight.
	laneq []chan *lanePart
	// asyncSem bounds unresolved SubmitBatchAsync tickets
	// (Config.AsyncInFlight); ingestPending counts staged-but-unresolved
	// tickets of either path so Drain can wait out deferred enqueues.
	asyncSem      chan struct{}
	ingestPending atomic.Int64

	accepting atomic.Bool
	killed    chan struct{}
	killOnce  sync.Once
	crashOnce sync.Once
	stopOnce  sync.Once
	stopped   chan struct{}
	closeErr  error

	counters *metrics.CounterSet
	// Hot-path counter handles, resolved once in New: bumping one is a
	// single striped atomic add — no name lookup, no mutex.
	ctr struct {
		received, duplicates, rejectsOverload, rejectedInvalid, rejectedUnknownUser *metrics.Counter
		routed, rejected, filtered, markFailed                                      *metrics.Counter
		delivered, undeliverable, deliveryRetries, outboxHandoffs                   *metrics.Counter
		// Per-QoS-tier outcome counters, indexed by core.Tier:
		// delivered-tier-*, duplicates-tier-*, lost-tier-*.
		tierDelivered, tierDuplicated, tierLost [core.NumTiers]*metrics.Counter
	}
	// deliveredVia maps the standard channel types to their resolved
	// delivered-via-<type> counters, built once in New and read-only
	// after — the delivery hot path bumps a handle instead of
	// concatenating a counter name per alert. Unknown (custom-channel)
	// types fall back to CounterSet's name lookup.
	deliveredVia map[addr.Type]*metrics.Counter

	latency *metrics.Recorder
	// Per-stage latency split: time in the shard inbound queue, pipeline
	// evaluation on the shard loop, and handoff → delivery completion
	// (chain/window wait + sink attempts + backoff).
	queueWait  *metrics.Recorder
	routeLat   *metrics.Recorder
	deliverLat *metrics.Recorder
	// admitLat is submit → burst acknowledged (every lane durable) —
	// the admission latency the adaptive commit scheduler shrinks.
	admitLat *metrics.Recorder
}

// New validates the config and opens the hub's WAL. Call AddUser for
// each tenant, then Start.
func New(cfg Config) (*Hub, error) {
	if cfg.Clock == nil {
		return nil, errors.New("hub: Config requires Clock")
	}
	if cfg.Sink == nil && cfg.Channels == nil {
		return nil, errors.New("hub: Config requires a Sink or a Channels registry")
	}
	if cfg.WALPath == "" {
		return nil, errors.New("hub: Config requires WALPath")
	}
	if cfg.Shards <= 0 {
		cfg.Shards = DefaultShards
	}
	if cfg.QueueDepth <= 0 {
		cfg.QueueDepth = DefaultQueueDepth
	}
	if cfg.CommitMaxBatch <= 0 {
		cfg.CommitMaxBatch = DefaultCommitMaxBatch
	}
	if cfg.AsyncInFlight <= 0 {
		cfg.AsyncInFlight = DefaultAsyncInFlight
	}
	if cfg.LatencyReservoir <= 0 {
		cfg.LatencyReservoir = DefaultLatencyReservoir
	}
	if cfg.DeliveryWindow <= 0 {
		cfg.DeliveryWindow = DefaultDeliveryWindow
	}
	if cfg.DeliveryMaxAttempts <= 0 {
		cfg.DeliveryMaxAttempts = DefaultDeliveryMaxAttempts
	}
	if cfg.DeliveryBackoff <= 0 {
		cfg.DeliveryBackoff = DefaultDeliveryBackoff
	}
	if cfg.DeliveryBackoffCap <= 0 {
		cfg.DeliveryBackoffCap = DefaultDeliveryBackoffCap
	}
	if cfg.DeliveryBackoffCap < cfg.DeliveryBackoff {
		cfg.DeliveryBackoffCap = cfg.DeliveryBackoff
	}
	if cfg.RNG == nil {
		cfg.RNG = dist.NewRNG(1)
	}
	if cfg.RouteBatch <= 0 {
		cfg.RouteBatch = DefaultRouteBatch
	}
	if cfg.QuiesceTimeout <= 0 {
		cfg.QuiesceTimeout = DefaultQuiesceTimeout
	}
	switch {
	case cfg.WALCheckpointEvery == 0:
		cfg.WALCheckpointEvery = DefaultWALCheckpointEvery
	case cfg.WALCheckpointEvery < 0:
		cfg.WALCheckpointEvery = 0 // disable background compaction
	}
	if cfg.WALLanes <= 0 || cfg.WALLanes > cfg.Shards {
		cfg.WALLanes = cfg.Shards
	}
	wal, err := plog.OpenLanes(cfg.WALPath, cfg.WALLanes, plog.GroupOptions{
		Window:           cfg.CommitWindow,
		MaxBatch:         cfg.CommitMaxBatch,
		CommitMaxRecords: cfg.CommitMaxRecords,
		CommitMaxBytes:   cfg.CommitMaxBytes,
		Log: plog.Options{
			SegmentBytes:    cfg.WALSegmentBytes,
			CheckpointEvery: cfg.WALCheckpointEvery,
		},
	})
	if err != nil {
		return nil, fmt.Errorf("hub: opening WAL: %w", err)
	}
	h := &Hub{
		cfg:        cfg,
		wal:        wal,
		users:      make(map[string]*Buddy),
		killed:     make(chan struct{}),
		stopped:    make(chan struct{}),
		counters:   &metrics.CounterSet{},
		latency:    metrics.NewReservoir(cfg.LatencyReservoir),
		queueWait:  metrics.NewReservoir(cfg.LatencyReservoir),
		routeLat:   metrics.NewReservoir(cfg.LatencyReservoir),
		deliverLat: metrics.NewReservoir(cfg.LatencyReservoir),
		admitLat:   metrics.NewReservoir(cfg.LatencyReservoir),
		asyncSem:   make(chan struct{}, cfg.AsyncInFlight),
	}
	h.laneq = make([]chan *lanePart, cfg.WALLanes)
	for i := range h.laneq {
		h.laneq[i] = make(chan *lanePart, laneQueueDepth)
	}
	h.ctr.received = h.counters.Counter("received")
	h.ctr.duplicates = h.counters.Counter("duplicates")
	h.ctr.rejectsOverload = h.counters.Counter("rejects-overload")
	h.ctr.rejectedInvalid = h.counters.Counter("rejected-invalid")
	h.ctr.rejectedUnknownUser = h.counters.Counter("rejected-unknown-user")
	h.ctr.routed = h.counters.Counter("routed")
	h.ctr.rejected = h.counters.Counter("rejected")
	h.ctr.filtered = h.counters.Counter("filtered")
	h.ctr.markFailed = h.counters.Counter("mark-failed")
	h.ctr.delivered = h.counters.Counter("delivered")
	h.ctr.undeliverable = h.counters.Counter("undeliverable")
	h.ctr.deliveryRetries = h.counters.Counter("delivery-retries")
	h.ctr.outboxHandoffs = h.counters.Counter("outbox-handoffs")
	for t := core.Tier(0); t < core.NumTiers; t++ {
		h.ctr.tierDelivered[t] = h.counters.Counter("delivered-tier-" + t.String())
		h.ctr.tierDuplicated[t] = h.counters.Counter("duplicates-tier-" + t.String())
		h.ctr.tierLost[t] = h.counters.Counter("lost-tier-" + t.String())
	}
	h.deliveredVia = make(map[addr.Type]*metrics.Counter, 4)
	for _, t := range []addr.Type{addr.TypeIM, addr.TypeSMS, addr.TypeEmail, addr.TypeSink} {
		h.deliveredVia[t] = h.counters.Counter(deliveredViaCounter(t))
	}
	h.channels = cfg.Channels
	if h.channels == nil {
		h.channels = core.NewChannels()
	}
	if cfg.Sink != nil {
		h.channels.Register(addr.TypeSink, FlatSink{Sink: cfg.Sink})
	}
	h.acks = core.NewAcks(cfg.Clock)
	exec, err := core.NewExecutor(cfg.Clock, h.channels, h.acks)
	if err != nil {
		_ = wal.Close()
		return nil, err
	}
	h.exec = exec
	h.flatReg = addr.NewRegistry("hub")
	if err := h.flatReg.Register(addr.Address{
		Type: addr.TypeSink, Name: flatAddressName, Target: flatAddressName, Enabled: true,
	}); err != nil {
		_ = wal.Close()
		return nil, err
	}
	h.flatMode = &dmode.Mode{
		Name:   "Flat",
		Blocks: []dmode.Block{{Actions: []dmode.Action{{Address: flatAddressName}}}},
	}
	h.shards = make([]*shard, cfg.Shards)
	for i := range h.shards {
		// The shard's generation 1 — queue, loop latches, delivery stage
		// — is built by Start; the shard itself carries only what
		// survives restarts.
		h.shards[i] = newShard(i, cfg.QueueDepth, cfg.RNG.Fork(fmt.Sprintf("hub-shard-%d", i)))
	}
	if cfg.OutboxPath != "" {
		ob, err := outbox.Open(outbox.Options{
			Clock:         cfg.Clock,
			Path:          cfg.OutboxPath,
			Backoff:       cfg.OutboxBackoff,
			BackoffCap:    cfg.OutboxBackoffCap,
			EscalateEvery: cfg.OutboxEscalateEvery,
			Journal:       cfg.Journal,
		})
		if err != nil {
			_ = wal.Close()
			return nil, err
		}
		h.outbox = ob
	}
	return h, nil
}

// Outbox returns the guaranteed-tier retry outbox, nil when the hub
// was configured without one.
func (h *Hub) Outbox() *outbox.Outbox { return h.outbox }

// Executor returns the hub's shared mode executor.
func (h *Hub) Executor() *core.Executor { return h.exec }

// Channels returns the hub's delivery channel registry. Channels may
// be registered (or swapped) at run time; deliveries in flight keep
// the channel they looked up.
func (h *Hub) Channels() *core.Channels { return h.channels }

// HandleIncoming feeds an inbound IM to the shared ack table. If the
// message acknowledges an IM sent by a hosted delivery in flight, the
// waiting block resolves and HandleIncoming reports true (the message
// is consumed). Wire the hub's IM endpoint receive callback here.
func (h *Hub) HandleIncoming(msg im.Message) bool {
	return h.acks.HandleIncoming(msg)
}

// plan resolves which registry and delivery mode one routed alert
// executes — the tenant's subscribed mode for the alert's category
// when the tenant carries a profile, else the hub's synthesized flat
// mode (one pass through the FlatSink substrate channel) — plus the
// QoS tier the delivery runs under. Personalized blocks without an
// explicit timeout are bounded by Config.AckTimeout. Reads the
// tenant's copy-on-write state snapshot — no locks.
func (h *Hub) plan(b *Buddy, category string) (*addr.Registry, *dmode.Mode, core.Tier) {
	s := b.state.Load()
	if s == nil {
		return h.flatReg, h.flatMode, core.TierBestEffort
	}
	tier, hasTier := s.tiers[category]
	if !hasTier {
		tier = s.defaultTier
	}
	if s.profile == nil {
		return h.flatReg, h.flatMode, tier
	}
	p := s.profile
	modeName, subscribed := s.subs[category]
	if !subscribed {
		return h.flatReg, h.flatMode, tier
	}
	mode, err := p.Mode(modeName)
	if err != nil {
		// The mode was deleted after Subscribe; deliver flat rather
		// than losing the alert.
		return h.flatReg, h.flatMode, tier
	}
	if h.cfg.AckTimeout > 0 {
		for i := range mode.Blocks {
			if mode.Blocks[i].Timeout == 0 {
				mode.Blocks[i].Timeout = dmode.Duration(h.cfg.AckTimeout)
			}
		}
	}
	return p.Addresses(), mode, tier
}

// AddUser registers a tenant. The returned Buddy's pipeline accepts no
// sources until configured. Tenants may be added before or after Start.
func (h *Hub) AddUser(user string) (*Buddy, error) {
	if user == "" {
		return nil, errors.New("hub: empty user")
	}
	if strings.Contains(user, keySep) {
		return nil, fmt.Errorf("hub: user %q contains reserved separator", user)
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	if _, ok := h.users[user]; ok {
		return nil, fmt.Errorf("hub: user %q already hosted", user)
	}
	b := &Buddy{user: user, pipe: mab.NewPipeline()}
	h.users[user] = b
	return b, nil
}

// Users returns the number of hosted tenants.
func (h *Hub) Users() int {
	h.mu.RLock()
	defer h.mu.RUnlock()
	return len(h.users)
}

// buddy looks up a tenant.
func (h *Hub) buddy(user string) (*Buddy, bool) {
	h.mu.RLock()
	defer h.mu.RUnlock()
	b, ok := h.users[user]
	return b, ok
}

// shardOf maps a user ID onto its shard.
func (h *Hub) shardOf(user string) *shard {
	f := fnv.New32a()
	f.Write([]byte(user))
	return h.shards[int(f.Sum32())%len(h.shards)]
}

// laneFor maps a shard onto its WAL lane. The mapping is pure
// arithmetic on stable inputs, so a user's records always land in the
// same lane while the lane count is unchanged — the invariant that
// makes merged lane replay order-exact per user.
func (h *Hub) laneFor(shardID int) int { return shardID % h.cfg.WALLanes }

// Start launches the shard loops, starts the outbox redelivery loop
// over the envelopes it recovered, replays every user's unprocessed
// WAL entries through their rebuilt buddies, and only then opens
// admission. Recovery ordering: the outbox starts before the WAL
// replay is enqueued — an alert that crashed inside the handoff window
// is owed by both logs, and scheduling the outbox's (older, already
// attempt-exhausted) copy first means its redelivery is never starved
// behind the replayed ingest backlog. Both recovery streams run before
// admission opens; their duplicates are the dedup contract's case.
func (h *Hub) Start() error {
	h.mu.Lock()
	if h.started {
		h.mu.Unlock()
		return errors.New("hub: already started")
	}
	h.started = true
	h.mu.Unlock()
	for _, sh := range h.shards {
		g := h.openGen(sh, 1, nil)
		sh.mu.Lock()
		sh.cur = g
		sh.mu.Unlock()
		sh.gen.Store(1)
		sh.beat(h.cfg.Clock.Now())
		sh.setState(ShardRunning)
		go h.runLoop(sh, g)
	}
	if h.outbox != nil {
		if err := h.outbox.Start(h.redeliver); err != nil {
			return err
		}
	}
	h.replay()
	for _, ch := range h.laneq {
		go h.laneResolver(ch)
	}
	h.accepting.Store(true)
	return nil
}

// redeliver executes one outbox redelivery round: re-resolve the
// tenant's plan (the subscription may have changed since the envelope
// was persisted), slice off the blocks the envelope's escalation
// offset has advanced past, and run the remainder through the shared
// mode executor. Reports the plan's full block count so the outbox
// knows the escalation ceiling. A tenant that is no longer hosted
// retires the envelope as undeliverable (outbox.ErrDrop).
func (h *Hub) redeliver(e *outbox.Entry) (int, error) {
	b, hosted := h.buddy(e.User)
	if !hosted {
		h.ctr.tierLost[core.TierGuaranteed].Add1()
		return 0, fmt.Errorf("hub: outbox envelope for unhosted user %q: %w", e.User, outbox.ErrDrop)
	}
	reg, mode, _ := h.plan(b, e.Category)
	blocks := len(mode.Blocks)
	if e.Offset >= blocks {
		e.Offset = blocks - 1 // plan shrank since the offset advanced
	}
	if e.Offset > 0 {
		mode = &dmode.Mode{Name: mode.Name, Blocks: mode.Blocks[e.Offset:]}
	}
	ctx := core.DeliveryContext{User: e.User, Shard: h.shardOf(e.User).id}
	rep, err := h.exec.DeliverAs(ctx, e.Alert, reg, mode)
	if f := h.cfg.OnDelivery; f != nil {
		f(e.User, rep, err)
	}
	if err == nil {
		b.delivered.Add(1)
		h.ctr.delivered.Add1()
		h.ctr.tierDelivered[core.TierGuaranteed].Add1()
		h.deliveredViaCounterFor(rep.DeliveredType()).Add1()
	}
	return blocks, err
}

// deliveredViaCounterFor resolves the delivered-via counter for a
// channel type: a map hit for the standard types (no per-delivery name
// building), CounterSet's lock-free lookup for custom ones.
func (h *Hub) deliveredViaCounterFor(t addr.Type) *metrics.Counter {
	if via, ok := h.deliveredVia[t]; ok {
		return via
	}
	return h.counters.Counter(deliveredViaCounter(t))
}

// replay re-enqueues the WAL lanes' unprocessed entries, merged by
// received-at timestamp (exact per-user order — a user's lane is
// stable). Runs before admission opens, so replayed alerts are routed
// ahead of new traffic. Each envelope remembers the lane that owns its
// record — possibly a stale lane beyond the configured count — so its
// eventual DONE retires the right journal.
func (h *Hub) replay() {
	for _, rec := range h.wal.Unprocessed() {
		lane := h.wal.Lane(rec.Lane)
		user, _, ok := strings.Cut(rec.Key, keySep)
		if !ok {
			h.journal(faults.KindReplay, "tombstoning WAL entry with malformed key %q", rec.Key)
			_ = lane.MarkProcessed(rec.Key, h.cfg.Clock.Now())
			h.counters.Add1("tombstoned")
			continue
		}
		b, hosted := h.buddy(user)
		if !hosted {
			h.journal(faults.KindReplay, "tombstoning WAL entry for unhosted user %q", user)
			_ = lane.MarkProcessed(rec.Key, h.cfg.Clock.Now())
			h.counters.Add1("tombstoned")
			continue
		}
		var a alert.Alert
		if err := a.UnmarshalText(rec.Payload); err != nil {
			h.journal(faults.KindReplay, "tombstoning unparsable WAL entry %q: %v", rec.Key, err)
			_ = lane.MarkProcessed(rec.Key, h.cfg.Clock.Now())
			h.counters.Add1("tombstoned")
			continue
		}
		h.journal(faults.KindReplay, "replaying unprocessed alert %s for %s", a.DedupKey(), user)
		h.counters.Add1("replayed")
		sh := h.shardOf(user)
		sh.reserveBlocking() // startup: loops are draining, so this cannot wedge
		env := getEnvelope()
		env.fill(b, &a, rec.Key, rec.Lane, h.cfg.Clock.Now())
		sh.enqueue(env)
	}
}

// Submission is one alert offered to SubmitBatch on behalf of a user.
type Submission struct {
	User  string
	Alert *alert.Alert
}

// Submit offers one alert for the user. A nil return is the hub's
// acknowledgement: the alert is durably logged and will be routed (or
// replayed by the next incarnation). Errors mean NOT acknowledged —
// OverloadError asks the sender to retry after the hint; other errors
// indicate rejection (unknown user, invalid alert, closed hub).
// Submit is the size-1 case of SubmitBatch.
func (h *Hub) Submit(user string, a *alert.Alert) error {
	return h.SubmitBatch([]Submission{{User: user, Alert: a}})[0]
}

// submitPending is one burst entry that passed validation and awaits
// admission + the batch fsync.
type submitPending struct {
	idx   int
	buddy *Buddy
	sh    *shard
	a     *alert.Alert
	key   string
	lane  int
	dup   bool // already durable (or duplicated within the burst): re-ack only
	// env is the pooled envelope filled in pass 3 (fresh admissions
	// only): its inline alert copy backs the WAL payload encode and is
	// what the shard routes, so the submitter's alert is never aliased.
	env *envelope
}

// Ticket is a pending acknowledgement from SubmitBatchAsync (and,
// internally, SubmitBatch): the burst's RECV records are staged into
// the WAL lanes' group commits, and the ticket resolves once every
// lane's fsync lands and the admitted entries are enqueued to their
// shards. Until then nothing is acknowledged and nothing is routed —
// the admission→log→ack→enqueue order of a synchronous submit is
// preserved; the submitter has merely stopped standing in it.
type Ticket struct {
	errs        []error
	pending     atomic.Int32 // unresolved lane parts
	done        chan struct{}
	onCommitted func([]error)
	start       time.Time
	staged      bool // at least one lane part was dispatched to a resolver
	sem         bool // holds an async backpressure slot until resolved
}

// Done is closed when the ticket has resolved (every entry acked or
// failed).
func (t *Ticket) Done() <-chan struct{} { return t.done }

// Wait blocks until the ticket resolves and returns the per-entry
// results, parallel to the submitted burst with exactly SubmitBatch's
// semantics: errs[i] == nil is the hub's durable acknowledgement for
// entry i. The slice is shared with the onCommitted callback; treat it
// as read-only.
func (t *Ticket) Wait() []error {
	<-t.done
	return t.errs
}

// lanePart is the slice of one staged burst that landed in a single
// WAL lane: the lane's commit ticket plus the burst entries (fresh
// envelopes and duplicate re-acks) whose fate that commit decides. The
// lane's resolver goroutine processes parts strictly in staging order,
// so deferred enqueues can never reorder a user's alerts — a user's
// shard, hence lane, is stable.
type lanePart struct {
	t       *Ticket
	c       plog.Commit
	lane    int
	entries []partEntry
}

// partEntry is one burst entry inside a lanePart.
type partEntry struct {
	idx   int
	dup   bool
	buddy *Buddy
	sh    *shard    // nil for duplicates
	env   *envelope // nil for duplicates
}

// SubmitBatchAsync is the pipelined ingest path: it validates, admits,
// and stages the burst's RECV records exactly as SubmitBatch does, but
// returns a commit Ticket instead of blocking on the WAL fsync. The
// burst is acknowledged — and only then enqueued for routing — when
// the ticket resolves; onCommitted (optional) runs once at that point
// with the per-entry results, on a resolver goroutine, so it must not
// block. A submitter keeps several batches in flight by holding
// several tickets; Config.AsyncInFlight bounds the hub-wide total, and
// a submitter past the bound blocks here until a ticket resolves.
//
// Entries that fail before staging (invalid alert, unknown user,
// overloaded shard) are reported in the ticket's results exactly as
// SubmitBatch reports them. A lane whose fsync fails NACKs only that
// lane's entries — other lanes' entries stay acknowledged.
func (h *Hub) SubmitBatchAsync(subs []Submission, onCommitted func(errs []error)) *Ticket {
	if !h.accepting.Load() {
		return h.rejectedTicket(subs, onCommitted)
	}
	h.asyncSem <- struct{}{}
	if !h.accepting.Load() {
		<-h.asyncSem
		return h.rejectedTicket(subs, onCommitted)
	}
	return h.submit(subs, onCommitted, true)
}

// rejectedTicket resolves a whole burst with ErrNotAccepting without
// touching the ingest path.
func (h *Hub) rejectedTicket(subs []Submission, onCommitted func([]error)) *Ticket {
	t := &Ticket{errs: make([]error, len(subs)), done: make(chan struct{}), onCommitted: onCommitted}
	for i := range t.errs {
		t.errs[i] = ErrNotAccepting
	}
	h.finishTicket(t)
	return t
}

// SubmitBatch offers a burst of alerts, amortizing the ingest path's
// fixed costs: one validation/dedup pass, bulk admission reservation
// per shard, one marshal pass, and a single group-commit WAL join for
// every RECV record in the burst (plog.GroupLog.LogReceivedBatch — one
// lock round-trip and one fsync wait instead of per-alert ones).
//
// The result is parallel to subs: errs[i] == nil is the hub's
// acknowledgement for subs[i], with exactly Submit's semantics — the
// alert is durably logged before the ack, OverloadError means the
// target shard rejected it before logging (retry after the hint), and
// other errors mean rejection. Entries for a full shard fail
// individually; the rest of the burst proceeds. Duplicate submissions
// (against the WAL or within the burst) are re-acked idempotently once
// the original is durable.
//
// SubmitBatch is the staging half of SubmitBatchAsync followed
// immediately by Wait: the deferred enqueue runs on the same per-lane
// resolvers, so the synchronous and pipelined paths cannot reorder
// each other's entries.
func (h *Hub) SubmitBatch(subs []Submission) []error {
	if len(subs) == 0 {
		return nil
	}
	if !h.accepting.Load() {
		errs := make([]error, len(subs))
		for i := range errs {
			errs[i] = ErrNotAccepting
		}
		return errs
	}
	return h.submit(subs, nil, false).Wait()
}

// submit is the shared staging half of SubmitBatch/SubmitBatchAsync:
// validate and dedup the burst, bulk-reserve admission, marshal the
// admitted entries, and stage every lane's RECV slice into its group
// commit. The returned Ticket resolves on the lanes' resolver
// goroutines once the commits land (or synchronously here, when
// nothing staged).
func (h *Hub) submit(subs []Submission, onCommitted func([]error), sem bool) *Ticket {
	errs := make([]error, len(subs))
	t := &Ticket{errs: errs, done: make(chan struct{}), onCommitted: onCommitted, sem: sem}
	if !h.accepting.Load() {
		for i := range errs {
			errs[i] = ErrNotAccepting
		}
		h.finishTicket(t)
		return t
	}
	now := h.cfg.Clock.Now()
	t.start = now

	// Pass 1: validate, resolve tenants, and split duplicates from
	// fresh admissions. Burst-internal duplicates count as duplicates
	// too — exactly what sequential Submits of the same key would see.
	pending := make([]submitPending, 0, len(subs))
	var seen map[string]struct{} // lazily built; bursts of 1 never need it
	counts := make([]int64, len(h.shards))
	var keyArr [96]byte // stack scratch: key building costs one string alloc, not three
	keyBuf := keyArr[:0]
	for i := range subs {
		s := &subs[i]
		if err := s.Alert.Validate(); err != nil {
			h.ctr.rejectedInvalid.Add1()
			errs[i] = err
			continue
		}
		b, ok := h.buddy(s.User)
		if !ok {
			h.ctr.rejectedUnknownUser.Add1()
			errs[i] = fmt.Errorf("hub: submit for %q: %w", s.User, ErrUnknownUser)
			continue
		}
		keyBuf = append(keyBuf[:0], s.User...)
		keyBuf = append(keyBuf, keySep...)
		keyBuf = s.Alert.AppendDedupKey(keyBuf)
		key := string(keyBuf)
		sh := h.shardOf(s.User)
		lane := h.laneFor(sh.id)
		inBurst := false
		if seen != nil {
			_, inBurst = seen[key]
		}
		// Dedup checks only the user's home lane: that is where a stable
		// shard→lane mapping always put (and will put) the key. A record
		// stranded in a foreign lane by a lane-count change re-logs
		// fresh here and replays as a duplicate delivery, which the
		// downstream timestamp dedup discards.
		if inBurst || h.wal.Lane(lane).Has(key) {
			pending = append(pending, submitPending{idx: i, buddy: b, key: key, lane: lane, dup: true})
			continue
		}
		if seen == nil {
			seen = make(map[string]struct{}, len(subs))
		}
		seen[key] = struct{}{}
		counts[sh.id]++
		pending = append(pending, submitPending{idx: i, buddy: b, sh: sh, a: s.Alert, key: key, lane: lane})
	}
	if len(pending) == 0 {
		h.finishTicket(t)
		return t
	}

	// Pass 2: bulk admission BEFORE the pessimistic log — one CAS per
	// shard claims as many slots as the shard can grant; ungranted
	// entries fail with OverloadError exactly as a lone Submit would,
	// in burst order. A rejected alert was never logged or acked, so
	// the sender retries and nothing can be lost.
	granted := counts // reuse: granted[i] = slots shard i granted us
	for id := range counts {
		if counts[id] > 0 {
			granted[id] = h.shards[id].reserveN(counts[id])
		}
	}
	// Pass 3: marshal the admitted entries and split the burst by WAL
	// lane — the journal entries the lane stages plus the parallel
	// partEntry bookkeeping its resolver needs (duplicates ride along
	// as idempotent no-ops so their re-ack waits for the original's
	// durability).
	byLane := make([][]plog.BatchEntry, h.cfg.WALLanes)
	byPart := make([][]partEntry, h.cfg.WALLanes)
	staged := 0
	for _, p := range pending {
		if p.dup {
			byLane[p.lane] = append(byLane[p.lane], plog.BatchEntry{Key: p.key, At: now})
			byPart[p.lane] = append(byPart[p.lane], partEntry{idx: p.idx, dup: true, buddy: p.buddy})
			staged++
			continue
		}
		if granted[p.sh.id] <= 0 {
			h.ctr.rejectsOverload.Add1()
			errs[p.idx] = &OverloadError{
				User:       subs[p.idx].User,
				Shard:      p.sh.id,
				Depth:      h.cfg.QueueDepth,
				RetryAfter: p.sh.retryHint(h.cfg.CommitWindow),
			}
			continue
		}
		granted[p.sh.id]--
		// Fill a pooled envelope and encode its wire form into
		// envelope-owned storage; the group log copies the payload
		// synchronously while staging, so the buffer is reusable the
		// moment LogReceivedBatchStart returns.
		env := getEnvelope()
		env.fill(p.buddy, p.a, p.key, p.lane, now)
		payload, err := env.alert.AppendWire(env.payload[:0])
		if err != nil {
			putEnvelope(env)
			p.sh.release()
			h.ctr.rejectedInvalid.Add1()
			errs[p.idx] = err
			continue
		}
		env.payload = payload
		byLane[p.lane] = append(byLane[p.lane], plog.BatchEntry{Key: p.key, Payload: payload, At: now})
		byPart[p.lane] = append(byPart[p.lane], partEntry{idx: p.idx, buddy: p.buddy, sh: p.sh, env: env})
		staged++
	}
	if staged == 0 {
		h.finishTicket(t)
		return t
	}

	// Pessimistic logging with parallel group commit: stage every
	// lane's slice of the burst (each join signals that lane's
	// committer), collecting one lanePart per touched lane. A staging
	// failure NACKs the whole burst before any part is dispatched:
	// entries already staged on other lanes stay durable and replay on
	// the next restart, where the dedup contract absorbs them; a sender
	// retry meanwhile re-acks them as duplicates.
	parts := make([]*lanePart, 0, len(byLane))
	for lane, entries := range byLane {
		if len(entries) == 0 {
			continue
		}
		c, err := h.wal.Lane(lane).LogReceivedBatchStart(entries)
		if err != nil {
			for _, lp := range byPart {
				for i := range lp {
					if !lp[i].dup {
						lp[i].sh.release()
					}
					errs[lp[i].idx] = err
				}
			}
			h.finishTicket(t)
			return t
		}
		parts = append(parts, &lanePart{t: t, c: c, lane: lane, entries: byPart[lane]})
	}

	// Dispatch the parts to their lanes' resolvers, which wait out the
	// commits in staging order and complete the ack + deferred enqueue.
	// The ticket resolves when the last part does.
	t.staged = true
	t.pending.Store(int32(len(parts)))
	h.ingestPending.Add(1)
	for _, p := range parts {
		h.laneq[p.lane] <- p
	}
	return t
}

// laneResolver is one WAL lane's commit-resolver goroutine: it
// processes the lane's staged burst parts strictly in staging order —
// waiting out each part's group commit, acknowledging, and enqueueing
// the entries to their shards. FIFO order here is what lets deferred
// enqueues preserve per-user submission order: commits within a lane
// resolve in batch order, and two bursts sharing one commit batch are
// still enqueued in the order they staged. After the hub stops, the
// resolver drains whatever is buffered (commits resolve instantly once
// the closed WAL flushed them) and exits.
func (h *Hub) laneResolver(ch chan *lanePart) {
	for {
		select {
		case p := <-ch:
			h.resolvePart(p)
		case <-h.stopped:
			for {
				select {
				case p := <-ch:
					h.resolvePart(p)
				default:
					return
				}
			}
		}
	}
}

// resolvePart completes one lane's slice of a staged burst once its
// group commit lands: bump the received/duplicate counters, stamp the
// ack time, and enqueue the fresh envelopes to their shards. A commit
// error NACKs only this part's entries (slots released, envelopes
// abandoned to the collector — they may still be referenced by the
// failed batch).
func (h *Hub) resolvePart(p *lanePart) {
	if err := p.c.Wait(); err != nil {
		for i := range p.entries {
			e := &p.entries[i]
			if !e.dup {
				e.sh.release()
			}
			p.t.errs[e.idx] = err
		}
		h.resolvedPart(p.t)
		return
	}
	// Fault injection: the part is durable (its callers are acked) but
	// nothing is enqueued — the next incarnation must replay it.
	if f := h.cfg.CrashAfterBatchFsync; f != nil && f.Active() {
		h.crashOnce.Do(func() {
			h.journal(faults.KindFaultInjected,
				"hub killed between batch fsync and enqueue (%d staged alerts)", len(p.entries))
			h.Kill()
		})
		h.resolvedPart(p.t)
		return
	}
	acked := h.cfg.Clock.Now() // post-fsync: latency measures ack → processed
	for i := range p.entries {
		e := &p.entries[i]
		if e.dup {
			h.ctr.duplicates.Add1()
			// The routing category (and with it any per-category tier
			// override) is unknown until the pipeline runs, so duplicate
			// suppression is attributed to the tenant's default tier.
			h.ctr.tierDuplicated[e.buddy.DefaultTier()].Add1()
			continue
		}
		h.ctr.received.Add1()
		e.env.at = acked // latency measures ack → processed
		e.sh.enqueue(e.env)
	}
	h.resolvedPart(p.t)
}

// resolvedPart retires one lane part; the last part resolves the
// ticket.
func (h *Hub) resolvedPart(t *Ticket) {
	if t.pending.Add(-1) == 0 {
		h.finishTicket(t)
	}
}

// finishTicket resolves a ticket: observe the admission latency (for
// bursts that actually staged durability work), release the async
// backpressure slot, wake waiters, and run the commit callback.
func (h *Hub) finishTicket(t *Ticket) {
	if t.staged {
		h.admitLat.Observe(h.cfg.Clock.Since(t.start))
		h.ingestPending.Add(-1)
	}
	if t.sem {
		<-h.asyncSem
	}
	close(t.done)
	if t.onCommitted != nil {
		t.onCommitted(t.errs)
	}
}

// openGen builds one shard generation: fresh queue and latches plus a
// fresh delivery stage bound to the generation's kill signal. The
// caller publishes it under sh.mu and launches runLoop.
func (h *Hub) openGen(sh *shard, n int64, suppress map[string]struct{}) *shardGen {
	g := sh.newGen(n, suppress)
	g.delivery = newDeliveryStage(h, sh, g.killed)
	return g
}

// runLoop is one shard generation's event loop: drain up to
// Config.RouteBatch queued envelopes per wakeup and route them as a
// batch, so WAL DONE staging and delivery handoff amortize their lock
// round-trips across the drained burst. The loop owns its generation's
// queue — never the shard's current one — so a restart's generation
// swap can never redirect a live loop onto a queue it does not own.
func (h *Hub) runLoop(sh *shard, g *shardGen) {
	defer close(g.done)
	var (
		batch   = make([]*envelope, 0, h.cfg.RouteBatch)
		scratch routeScratch
	)
	for {
		select {
		case <-g.killed:
			return
		case env, ok := <-g.q:
			if !ok {
				return
			}
			// A kill may have landed while this envelope was ready;
			// honor it before touching more work so a killed generation
			// stops deterministically.
			select {
			case <-g.killed:
				return
			default:
			}
			batch = append(batch[:0], env)
			drained := true
			for drained && len(batch) < h.cfg.RouteBatch {
				select {
				case env, ok := <-g.q:
					if !ok {
						drained = false // queue closed: route what we have, then exit
						break
					}
					batch = append(batch, env)
				default:
					drained = false
				}
			}
			h.processBatch(sh, g, batch, &scratch)
		}
	}
}

// routeScratch is a shard loop's reusable batch-routing buffers.
type routeScratch struct {
	finished []*envelope // reject/filter verdicts awaiting a batched DONE
	keys     []string    // finished WAL keys, parallel to finished
	jobs     []*envelope // routed envelopes awaiting delivery handoff
}

// processBatch is the routing stage: evaluate each envelope's tenant
// pipeline on the shard loop, then complete the batch's bookkeeping in
// bulk — reject/filter verdicts stage their WAL DONE records as one
// batch (one group-lock round-trip) and routed alerts are handed to
// the delivery stage under a single submit lock acquisition. The shard
// loop never calls into delivery substrates, so a slow delivery stalls
// only its own user's chain — not every tenant hashed to the shard.
//
// The fault hook and the kill check run before any envelope is
// touched: a generation that wedges in the hook and is killed while
// parked abandons the whole batch unprocessed — nothing marked,
// nothing delivered — so the batch replays exactly once through the
// replacement generation, never half-through both.
func (h *Hub) processBatch(sh *shard, g *shardGen, envs []*envelope, scr *routeScratch) {
	if hook := h.cfg.RouteHook; hook != nil {
		hook(sh.id, g.killed)
	}
	select {
	case <-g.killed:
		return // abandoned: the WAL still owns every envelope in the batch
	default:
	}
	scr.finished = scr.finished[:0]
	scr.keys = scr.keys[:0]
	scr.jobs = scr.jobs[:0]
	for _, env := range envs {
		dequeued := h.cfg.Clock.Now()
		h.queueWait.Observe(dequeued.Sub(env.at))
		b := env.buddy
		category, verdict := b.pipe.Evaluate(&env.alert, dequeued)
		h.routeLat.Observe(h.cfg.Clock.Since(dequeued))
		switch verdict {
		case mab.VerdictReject:
			b.rejected.Add(1)
			h.ctr.rejected.Add1()
			scr.finished = append(scr.finished, env)
			scr.keys = append(scr.keys, env.key)
		case mab.VerdictFilter:
			b.filtered.Add(1)
			h.ctr.filtered.Add1()
			scr.finished = append(scr.finished, env)
			scr.keys = append(scr.keys, env.key)
		default:
			// Annotate the envelope's inline alert in place: the routed
			// category replaces the submit-time keywords, backed by the
			// envelope-owned one-element array — no per-alert slice.
			env.kw[0] = category
			env.alert.Keywords = env.kw[:1]
			env.category = category
			env.handed = h.cfg.Clock.Now()
			b.routed.Add(1)
			h.ctr.routed.Add1()
			scr.jobs = append(scr.jobs, env)
		}
	}
	if len(scr.finished) > 0 {
		h.finishBatch(sh, scr.finished, scr.keys)
	}
	if len(scr.jobs) > 0 {
		g.delivery.submitBatch(scr.jobs)
	}
	sh.beat(h.cfg.Clock.Now())
}

// finishBatch durably completes alerts that need no delivery: stage
// every WAL DONE record into the next group commit as one batch and
// release the admission slots. Losing an unflushed DONE only causes a
// replay, which the dedup contract covers; Drain/Close still flush
// every staged record.
func (h *Hub) finishBatch(sh *shard, envs []*envelope, keys []string) {
	now := h.cfg.Clock.Now()
	// A shard's fresh traffic all lives in one lane, so the common case
	// stages the whole batch there in one call; mixed lanes appear only
	// right after a restart, when replayed foreign-lane records share
	// the queue with new traffic.
	lane, uniform := envs[0].lane, true
	for i := 1; i < len(envs); i++ {
		if envs[i].lane != lane {
			uniform = false
			break
		}
	}
	var markErrs []error
	if uniform {
		markErrs = h.wal.Lane(lane).MarkProcessedBatchAsync(keys, now)
	} else {
		for i, env := range envs {
			if err := h.wal.Lane(env.lane).MarkProcessedAsync(keys[i], now); err != nil {
				if markErrs == nil {
					markErrs = make([]error, len(envs))
				}
				markErrs[i] = err
			}
		}
	}
	done := h.cfg.Clock.Now()
	for i, env := range envs {
		if markErrs != nil && markErrs[i] != nil && !errors.Is(markErrs[i], plog.ErrClosed) {
			h.ctr.markFailed.Add1()
		}
		h.latency.Observe(done.Sub(env.at))
		sh.release()
		putEnvelope(env) // DONE staged on the home lane, slot released: recycle
	}
}

// Kill abruptly terminates the hub, simulating a crash: admission stops
// immediately, shard loops abandon their queues, and the delivery stage
// abandons its in-flight window (delivered-but-unmarked alerts stay
// unprocessed in the WAL for the next incarnation to replay — the
// documented duplicate of the dedup contract). Teardown completes
// asynchronously — wait on Stopped() before reopening the WAL path.
// Kill is safe to call from inside a shard loop or delivery worker (the
// fault-injection path does exactly that).
func (h *Hub) Kill() {
	h.killOnce.Do(func() {
		h.accepting.Store(false)
		close(h.killed)
		for _, sh := range h.shards {
			sh.setState(ShardStopped)
			sh.killCurrent()
		}
		go h.shutdown()
	})
}

// Stopped is closed once the hub has fully shut down (loops exited, WAL
// flushed and closed).
func (h *Hub) Stopped() <-chan struct{} { return h.stopped }

// shutdown waits for the loops, quiesces the delivery stages (unless
// killed, in which case in-flight deliveries are abandoned), and closes
// the WAL. Runs at most once.
func (h *Hub) shutdown() {
	h.stopOnce.Do(func() {
		// Wait for each shard's CURRENT generation loop — not a global
		// WaitGroup over every loop ever started — so a generation
		// abandoned by an earlier targeted restart (possibly still
		// wedged) cannot block the whole process's shutdown.
		for _, sh := range h.shards {
			if g := sh.current(); g != nil {
				<-g.done
			}
		}
		var outboxErr error
		select {
		case <-h.killed:
			// Crash semantics: do not wait for delivery workers — they
			// observe the kill and abandon; the WAL replays their undone
			// entries. A worker racing past the kill check hits the
			// closed WAL and ErrClosed is tolerated. The outbox journal
			// closes the same way: a redelivery round racing its mark
			// replays next incarnation.
			if h.outbox != nil {
				h.outbox.Kill()
			}
		default:
			// Graceful drain: the shard loops have exited, so no new
			// jobs can reach the stages; wait for every in-flight and
			// chained delivery to complete and stage its DONE record
			// (guaranteed-tier exhaustions hand off to the outbox, so
			// the stages must quiesce before the outbox closes). Still-
			// pending envelopes stay durable for the next incarnation.
			for _, sh := range h.shards {
				if g := sh.current(); g != nil {
					g.delivery.wg.Wait()
				}
			}
			if h.outbox != nil {
				outboxErr = h.outbox.Close()
			}
		}
		h.closeErr = errors.Join(h.wal.Close(), outboxErr)
		close(h.stopped)
	})
}

// Drain gracefully shuts the hub down: admission stops with
// ErrNotAccepting, every shard finishes its queue, the delivery stages
// complete their in-flight and chained deliveries, and the WAL is
// flushed and closed. Taking each shard's lifecycle lock first means a
// restart or rejuvenation in flight finishes (or aborts) before its
// shard is closed — Drain never tears a generation swap in half.
func (h *Hub) Drain() error {
	h.accepting.Store(false)
	// Quiesce the async ingest pipeline: tickets already admitted keep
	// their ordering contract (commit → ack → enqueue), so wait for the
	// lane resolvers to retire every outstanding burst before closing
	// shard intake. Bounded — a wedged WAL resolves tickets with errors
	// on Close below anyway.
	deadline := time.Now().Add(h.cfg.QuiesceTimeout)
	for h.ingestPending.Load() > 0 && time.Now().Before(deadline) {
		time.Sleep(100 * time.Microsecond)
	}
	for _, sh := range h.shards {
		sh.lifeMu.Lock()
		sh.setState(ShardStopped)
		sh.closeIntake()
		sh.lifeMu.Unlock()
	}
	h.shutdown()
	<-h.stopped
	return h.closeErr
}

// RestartShard kills shard id's current generation and brings up a
// replacement that replays the shard's unprocessed WAL backlog, while
// every other shard keeps serving — the targeted-recovery escalation
// path for a wedged or misbehaving shard. Admission to the shard is
// rejected (OverloadError) for the duration; senders ride it out with
// their usual retry hint. reason lands in the fault journal.
func (h *Hub) RestartShard(id int, reason string) error {
	sh, err := h.shardByID(id)
	if err != nil {
		return err
	}
	sh.lifeMu.Lock()
	defer sh.lifeMu.Unlock()
	return h.restartLocked(sh, reason)
}

// restartLocked is the kill+replay restart; the caller holds
// sh.lifeMu. Ordering is load-bearing:
//
//  1. Close admission (state Restarting) and kill the old generation.
//  2. Wait (bounded) for the old loop and delivery workers to stop, so
//     a straggler cannot mark a record processed after the scan below
//     decided to replay it.
//  3. Scan the WAL for the shard's unprocessed records. The scan also
//     becomes the new generation's suppression set: a submitter that
//     reserved before the kill and enqueues after the swap would
//     otherwise double-route a record the replay owns.
//  4. Publish the new generation, reset the admission gauge (abandoned
//     reservations died with the old generation), start its loop.
//  5. Re-enqueue the backlog, then reopen admission.
func (h *Hub) restartLocked(sh *shard, reason string) error {
	select {
	case <-h.killed:
		return ErrNotAccepting
	default:
	}
	if st := sh.State(); st != ShardRunning && st != ShardQuiescing {
		return fmt.Errorf("hub: shard %d not restartable in state %s", sh.id, st)
	}
	sh.setState(ShardRestarting)
	old := sh.current()
	old.kill()
	h.journal(faults.KindDaemonRestart, "shard %d: killing generation %d: %s", sh.id, old.n, reason)

	bounded := func(c <-chan struct{}) bool {
		select {
		case <-c:
			return true
		case <-time.After(h.cfg.QuiesceTimeout):
			return false
		}
	}
	loopStopped := bounded(old.done)
	workers := make(chan struct{})
	go func() { old.delivery.wg.Wait(); close(workers) }()
	workersStopped := bounded(workers)
	if !loopStopped || !workersStopped {
		// A truly stuck goroutine (blocked inside a pipeline stage or a
		// delivery substrate, deaf to the kill) is abandoned for good.
		// If it later completes and marks a record the scan already
		// replayed, the downstream timestamp dedup absorbs the
		// duplicate — the documented contract for every crash window.
		h.journal(faults.KindUnrecovered,
			"shard %d: generation %d did not stop within %v (loop stopped: %v, workers stopped: %v); replaying anyway",
			sh.id, old.n, h.cfg.QuiesceTimeout, loopStopped, workersStopped)
	}

	type replayRec struct {
		b    *Buddy
		a    alert.Alert
		key  string
		lane int
	}
	var backlog []replayRec
	suppress := make(map[string]struct{})
	for _, rec := range h.wal.Unprocessed() {
		user, _, ok := strings.Cut(rec.Key, keySep)
		if !ok {
			continue // malformed key: shard unknown; next process restart tombstones it
		}
		if h.shardOf(user) != sh {
			continue
		}
		lane := h.wal.Lane(rec.Lane)
		b, hosted := h.buddy(user)
		if !hosted {
			h.journal(faults.KindReplay, "shard %d: tombstoning WAL entry for unhosted user %q", sh.id, user)
			_ = lane.MarkProcessed(rec.Key, h.cfg.Clock.Now())
			h.counters.Add1("tombstoned")
			continue
		}
		r := replayRec{b: b, key: rec.Key, lane: rec.Lane}
		if err := r.a.UnmarshalText(rec.Payload); err != nil {
			h.journal(faults.KindReplay, "shard %d: tombstoning unparsable WAL entry %q: %v", sh.id, rec.Key, err)
			_ = lane.MarkProcessed(rec.Key, h.cfg.Clock.Now())
			h.counters.Add1("tombstoned")
			continue
		}
		suppress[rec.Key] = struct{}{}
		backlog = append(backlog, r)
	}

	next := h.openGen(sh, old.n+1, suppress)
	sh.mu.Lock()
	select {
	case <-h.killed:
		sh.mu.Unlock()
		sh.setState(ShardStopped)
		return ErrNotAccepting
	default:
	}
	sh.cur = next
	sh.mu.Unlock()
	sh.gen.Store(next.n)
	// Reservations admitted by the dead generation died with it; a
	// straggler's release of one is floored at zero.
	sh.depth.Store(0)
	sh.beat(h.cfg.Clock.Now())
	go h.runLoop(sh, next)

	for i := range backlog {
		r := &backlog[i]
		h.journal(faults.KindReplay, "shard %d: replaying unprocessed alert %s for %s", sh.id, r.a.DedupKey(), r.b.user)
		h.counters.Add1("replayed")
		sh.reserveBlocking() // the new loop is live and draining, so this cannot wedge
		env := getEnvelope()
		env.fill(r.b, &r.a, r.key, r.lane, h.cfg.Clock.Now())
		sh.enqueueReplay(env)
	}
	sh.restarts.Add(1)
	select {
	case <-h.killed:
		sh.setState(ShardStopped)
	default:
		sh.setState(ShardRunning)
	}
	h.journal(faults.KindDaemonRestart, "shard %d: restarted as generation %d (%d replayed)", sh.id, next.n, len(backlog))
	return nil
}

// RejuvenateShard gracefully recycles shard id: admission closes, the
// admitted work drains to zero, and a fresh generation — new queue,
// new delivery stage, new timer wheel — takes over with no replay and
// no duplicate risk. Because nothing is admitted mid-swap, every
// envelope completes in its original admission order, so per-user
// delivery order is preserved exactly. A quiesce that exceeds
// Config.QuiesceTimeout escalates to the kill+replay restart.
func (h *Hub) RejuvenateShard(id int) error {
	sh, err := h.shardByID(id)
	if err != nil {
		return err
	}
	sh.lifeMu.Lock()
	defer sh.lifeMu.Unlock()
	select {
	case <-h.killed:
		return ErrNotAccepting
	default:
	}
	if st := sh.State(); st != ShardRunning {
		return fmt.Errorf("hub: shard %d not rejuvenatable in state %s", sh.id, st)
	}
	sh.setState(ShardQuiescing)
	// depth counts queued + in-delivery + mid-admission work, and
	// Quiescing blocks new reservations, so zero means the shard is
	// fully idle — nothing in the queue, no delivery in flight, no
	// submitter between reservation and enqueue.
	deadline := time.Now().Add(h.cfg.QuiesceTimeout)
	for sh.depth.Load() > 0 {
		if time.Now().After(deadline) {
			h.journal(faults.KindRejuvenation,
				"shard %d: quiesce timed out (depth %d); escalating to kill+replay",
				sh.id, sh.depth.Load())
			return h.restartLocked(sh, "rejuvenation quiesce timeout")
		}
		time.Sleep(200 * time.Microsecond)
	}
	old := sh.current()
	next := h.openGen(sh, old.n+1, nil)
	sh.mu.Lock()
	select {
	case <-h.killed:
		sh.mu.Unlock()
		sh.setState(ShardStopped)
		return ErrNotAccepting
	default:
	}
	old.closed = true
	close(old.q)
	sh.cur = next
	sh.mu.Unlock()
	sh.gen.Store(next.n)
	// The old loop drains its empty queue and exits; its delivery stage
	// is already idle. Retiring both before reopening admission keeps
	// "one live generation per shard" unconditional on this path.
	<-old.done
	old.delivery.wg.Wait()
	go h.runLoop(sh, next)
	sh.beat(h.cfg.Clock.Now())
	sh.rejuvenations.Add(1)
	sh.setState(ShardRunning)
	h.journal(faults.KindRejuvenation, "shard %d: rejuvenated as generation %d", sh.id, next.n)
	return nil
}

// RejuvenateAll recycles every shard one at a time — rolling
// rejuvenation under live traffic: at most one shard is quiescing at
// any moment, so the hub never loses more than one shard's worth of
// admission capacity.
func (h *Hub) RejuvenateAll() error {
	for _, sh := range h.shards {
		if err := h.RejuvenateShard(sh.id); err != nil {
			return fmt.Errorf("hub: rolling rejuvenation stopped at shard %d: %w", sh.id, err)
		}
	}
	return nil
}

func (h *Hub) shardByID(id int) (*shard, error) {
	if id < 0 || id >= len(h.shards) {
		return nil, fmt.Errorf("hub: no shard %d (have %d)", id, len(h.shards))
	}
	return h.shards[id], nil
}

// ShardCount returns the shard-table size.
func (h *Hub) ShardCount() int { return len(h.shards) }

// ShardHealth returns shard id's supervision snapshot. Reads atomics
// only — safe to call against a wedged shard.
func (h *Hub) ShardHealth(id int) (Health, error) {
	sh, err := h.shardByID(id)
	if err != nil {
		return Health{}, err
	}
	return sh.health(), nil
}

// Healths snapshots every shard's supervision state (atomics only).
func (h *Hub) Healths() []Health {
	out := make([]Health, len(h.shards))
	for i, sh := range h.shards {
		out[i] = sh.health()
	}
	return out
}

// WALBacklog returns the lanes' live not-yet-processed record count —
// the replay debt a restart would face right now.
func (h *Hub) WALBacklog() int { return h.wal.Pending() }

// RemoveUser unregisters a tenant. Alerts already admitted keep their
// buddy reference and finish normally; later submissions fail with
// ErrUnknownUser and unprocessed WAL entries for the user are
// tombstoned at the next replay.
func (h *Hub) RemoveUser(user string) error {
	h.mu.Lock()
	defer h.mu.Unlock()
	if _, ok := h.users[user]; !ok {
		return fmt.Errorf("hub: remove %q: %w", user, ErrUnknownUser)
	}
	delete(h.users, user)
	return nil
}

// UserNames returns the hosted tenant IDs, sorted.
func (h *Hub) UserNames() []string {
	h.mu.RLock()
	defer h.mu.RUnlock()
	names := make([]string, 0, len(h.users))
	for u := range h.users {
		names = append(names, u)
	}
	sort.Strings(names)
	return names
}

// Counters returns the hub-level counters: received, delivered, routed,
// rejected, filtered, duplicates, rejects-overload, replayed,
// tombstoned, undeliverable, delivery-retries.
func (h *Hub) Counters() *metrics.CounterSet { return h.counters }

// Latency returns the end-to-end latency recorder
// (admission → marked processed), reservoir-sampled.
func (h *Hub) Latency() *metrics.Recorder { return h.latency }

// StageLatencies is the per-stage latency split of the hub's pipeline.
type StageLatencies struct {
	// Admission is submit → burst durable (ticket resolved): the
	// group-commit wait the adaptive scheduler is minimizing.
	Admission metrics.Summary
	// QueueWait is admission → dequeued by the shard loop.
	QueueWait metrics.Summary
	// Route is the pipeline evaluation on the shard loop.
	Route metrics.Summary
	// Deliver is handoff → delivery completion: per-user chain wait,
	// window wait, sink attempts, and retry backoff.
	Deliver metrics.Summary
}

// Stages summarizes the per-stage latency split.
func (h *Hub) Stages() StageLatencies {
	return StageLatencies{
		Admission: h.admitLat.Summarize(),
		QueueWait: h.queueWait.Summarize(),
		Route:     h.routeLat.Summarize(),
		Deliver:   h.deliverLat.Summarize(),
	}
}

// ShardStat is one shard's observability snapshot.
type ShardStat struct {
	Shard     int
	Depth     int // current queued + in-admission + in-delivery alerts
	PeakDepth int
	// InFlight / PeakInFlight count concurrently executing deliveries
	// in the shard's delivery stage (bounded by DeliveryWindow).
	InFlight     int
	PeakInFlight int
	// State is the shard's lifecycle state; Generation counts the
	// incarnations of its restartable machinery (1 = never recycled).
	State      ShardState
	Generation int64
	// Restarts counts kill+replay recoveries; Rejuvenations counts
	// graceful recycles.
	Restarts      int64
	Rejuvenations int64
}

// TierStat is one delivery QoS tier's outcome counters.
type TierStat struct {
	Tier core.Tier
	// Delivered counts confirmed deliveries under the tier (outbox
	// redeliveries included for the guaranteed tier).
	Delivered int64
	// Duplicated counts duplicate submissions suppressed for tenants
	// whose default tier this is.
	Duplicated int64
	// Lost counts alerts dropped after the attempt budget (best-effort)
	// or retired as permanently undeliverable (guaranteed; tenant gone).
	Lost int64
	// Escalated counts outbox channel escalations: redelivery advancing
	// to the delivery mode's next block. Always zero for best-effort.
	Escalated int64
}

// Stats is a point-in-time snapshot of the hub's health.
type Stats struct {
	Users   int
	Shards  []ShardStat
	Appends int64 // WAL lines staged (RECV + DONE)
	Syncs   int64 // fsyncs issued
	// MeanBatch is Appends/Syncs — the group-commit amplification.
	MeanBatch float64
	// InFlight is the current hub-wide count of executing deliveries.
	InFlight int64
	// DeliveredByChannel splits successful deliveries by the
	// communication type that confirmed them (addr.TypeSink is the flat
	// substrate). Types with zero deliveries are omitted.
	DeliveredByChannel map[addr.Type]int64
	// Tiers splits delivery outcomes by QoS tier, indexed by core.Tier.
	Tiers [core.NumTiers]TierStat
	// OutboxHandoffs counts guaranteed-tier deliveries that exhausted
	// the in-memory budget and were persisted to the retry outbox.
	OutboxHandoffs int64
	// Outbox is the retry outbox's snapshot; nil when the hub runs
	// without one.
	Outbox *outbox.Stats
	// WAL is the aggregated journal snapshot across every lane:
	// counters (fsyncs, staged batches, corrupt records, disk bytes)
	// summed, histograms merged.
	WAL plog.Stats
	// WALPerLane is each lane's own snapshot, index-aligned with the
	// lane numbering (lane 0 is the base journal path). Each entry
	// carries its lane's Syncs and FsyncLatency, so per-lane fsync
	// behavior — one slow disk region, one hot shard — is visible.
	WALPerLane []plog.Stats
}

// Stats snapshots queue depths, delivery in-flight gauges, and WAL
// commit statistics.
func (h *Hub) Stats() Stats {
	s := Stats{
		Users:      h.Users(),
		Appends:    h.wal.Appended(),
		Syncs:      h.wal.Syncs(),
		WAL:        h.wal.Stats(),
		WALPerLane: h.wal.PerLaneStats(),
	}
	for _, t := range []addr.Type{addr.TypeIM, addr.TypeSMS, addr.TypeEmail, addr.TypeSink} {
		if n := h.counters.Get(deliveredViaCounter(t)); n > 0 {
			if s.DeliveredByChannel == nil {
				s.DeliveredByChannel = make(map[addr.Type]int64)
			}
			s.DeliveredByChannel[t] = n
		}
	}
	for t := core.Tier(0); t < core.NumTiers; t++ {
		s.Tiers[t] = TierStat{
			Tier:       t,
			Delivered:  h.ctr.tierDelivered[t].Value(),
			Duplicated: h.ctr.tierDuplicated[t].Value(),
			Lost:       h.ctr.tierLost[t].Value(),
		}
	}
	s.OutboxHandoffs = h.ctr.outboxHandoffs.Value()
	if h.outbox != nil {
		ob := h.outbox.Stats()
		s.Outbox = &ob
		s.Tiers[core.TierGuaranteed].Escalated = ob.Escalated
	}
	if s.Syncs > 0 {
		s.MeanBatch = float64(s.Appends) / float64(s.Syncs)
	}
	for _, sh := range h.shards {
		inflight := sh.inflight.Load()
		s.InFlight += inflight
		s.Shards = append(s.Shards, ShardStat{
			Shard:         sh.id,
			Depth:         int(sh.depth.Load()),
			PeakDepth:     int(sh.peak.Load()),
			InFlight:      int(inflight),
			PeakInFlight:  int(sh.inflight.Peak()),
			State:         sh.State(),
			Generation:    sh.gen.Load(),
			Restarts:      sh.restarts.Load(),
			Rejuvenations: sh.rejuvenations.Load(),
		})
	}
	return s
}

// WALSyncs returns the number of fsyncs issued across all WAL lanes.
func (h *Hub) WALSyncs() int64 { return h.wal.Syncs() }

// WALAppends returns the number of records staged across all WAL lanes.
func (h *Hub) WALAppends() int64 { return h.wal.Appended() }

// WALLanes returns the number of open WAL lanes (the configured count,
// plus any stale lanes recovered from a previous run).
func (h *Hub) WALLanes() int { return h.wal.Lanes() }

// WALFsyncLatency returns the fsync-latency histogram (microseconds
// per fsync) merged across lanes.
func (h *Hub) WALFsyncLatency() metrics.HistogramSnapshot { return h.wal.FsyncLatency() }

// WALBatchSizes returns the group-commit batch-size histogram (journal
// records per fsync) merged across lanes.
func (h *Hub) WALBatchSizes() metrics.HistogramSnapshot { return h.wal.BatchSizes() }

// CheckpointWAL forces a checkpoint + segment compaction on every WAL
// lane, as the background compactors would at the WALCheckpointEvery
// threshold.
func (h *Hub) CheckpointWAL() error { return h.wal.Checkpoint() }

func (h *Hub) journal(kind faults.Kind, format string, args ...any) {
	if h.cfg.Journal != nil {
		h.cfg.Journal.Recordf(h.cfg.Clock.Now(), kind, format, args...)
	}
}
