package hub

import (
	"errors"
	"path/filepath"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"simba/internal/addr"
	"simba/internal/alert"
	"simba/internal/clock"
	"simba/internal/core"
	"simba/internal/faults"
	"simba/internal/mab"
	"simba/internal/plog"
)

// faultySink counts per-(user, key) deliveries across hub incarnations
// and fails every delivery while failing is set — the permanently-down
// substrate the guaranteed tier exists for.
type faultySink struct {
	failing atomic.Bool

	mu     sync.Mutex
	counts map[string]int
}

func newFaultySink(failing bool) *faultySink {
	s := &faultySink{counts: make(map[string]int)}
	s.failing.Store(failing)
	return s
}

func (s *faultySink) Deliver(shard int, user string, a *alert.Alert) error {
	if s.failing.Load() {
		return errors.New("substrate down")
	}
	s.mu.Lock()
	s.counts[user+"/"+a.DedupKey()]++
	s.mu.Unlock()
	return nil
}

func (s *faultySink) count(user, key string) int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.counts[user+"/"+key]
}

// waitCond polls cond until it holds or the deadline passes.
func waitCond(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %s", what)
		}
		time.Sleep(time.Millisecond)
	}
}

// outboxTestConfig is the shared two-incarnation config: one shard, a
// tight in-memory attempt budget, and a fast outbox.
func outboxTestConfig(t *testing.T, dir string, sink Sink, journal *faults.Journal) Config {
	t.Helper()
	return Config{
		Clock:               clock.NewReal(),
		Sink:                sink,
		WALPath:             filepath.Join(dir, "hub.wal"),
		OutboxPath:          filepath.Join(dir, "hub.outbox"),
		OutboxBackoff:       5 * time.Millisecond,
		OutboxBackoffCap:    20 * time.Millisecond,
		Shards:              1,
		DeliveryMaxAttempts: 2,
		DeliveryBackoff:     time.Millisecond,
		DeliveryBackoffCap:  2 * time.Millisecond,
		Journal:             journal,
	}
}

// addGuaranteedUser hosts user-0 at the guaranteed tier.
func addGuaranteedUser(t *testing.T, h *Hub) *Buddy {
	t.Helper()
	b, err := h.AddUser("user-0")
	if err != nil {
		t.Fatal(err)
	}
	b.Pipeline().Classifier.Accept(mab.SourceRule{Source: "portal", Extract: mab.ExtractNative})
	b.Pipeline().Aggregator.Map("stocks", "Investment")
	if err := b.SetTier(core.TierGuaranteed); err != nil {
		t.Fatal(err)
	}
	return b
}

// TestHubGuaranteedOutboxRedeliversAfterRestart is the clean
// cross-restart path: a guaranteed alert exhausts its in-memory budget
// against a down substrate and is handed to the outbox; the hub shuts
// down mid-outbox-backoff; the next incarnation loads the envelope and
// redelivers it exactly once — nothing replays from the ingest WAL
// (ownership transferred), nothing is lost, and the third incarnation
// finds both journals clean.
func TestHubGuaranteedOutboxRedeliversAfterRestart(t *testing.T) {
	dir := t.TempDir()
	sink := newFaultySink(true)
	journal := &faults.Journal{}
	cfg := outboxTestConfig(t, dir, sink, journal)

	h1, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	addGuaranteedUser(t, h1)
	if err := h1.Start(); err != nil {
		t.Fatal(err)
	}
	clk := cfg.Clock
	a := portalAlert(0, clk.Now())
	if err := h1.Submit("user-0", a); err != nil {
		t.Fatal(err)
	}
	waitCond(t, "outbox handoff", func() bool { return h1.Counters().Get("outbox-handoffs") == 1 })
	if err := h1.Drain(); err != nil {
		t.Fatal(err)
	}
	st := h1.Stats()
	if st.Outbox == nil || st.Outbox.Pending != 1 {
		t.Fatalf("outbox stats after drain = %+v, want 1 pending", st.Outbox)
	}
	if got := st.Tiers[core.TierGuaranteed].Lost; got != 0 {
		t.Fatalf("guaranteed lost = %d before restart, want 0", got)
	}
	if got := h1.Counters().Get("undeliverable"); got != 0 {
		t.Fatalf("undeliverable = %d for a guaranteed alert, want 0 (handed off, not dropped)", got)
	}
	if got := sink.count("user-0", a.DedupKey()); got != 0 {
		t.Fatalf("pre-restart deliveries = %d, want 0", got)
	}

	// Substrate healed; the next incarnation owes the alert.
	sink.failing.Store(false)
	h2, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	addGuaranteedUser(t, h2)
	if err := h2.Start(); err != nil {
		t.Fatal(err)
	}
	if got := h2.Counters().Get("replayed"); got != 0 {
		t.Fatalf("WAL replayed = %d, want 0 (the outbox owns the alert)", got)
	}
	waitCond(t, "outbox redelivery", func() bool { return h2.Outbox().Redelivered() == 1 })
	if err := h2.Drain(); err != nil {
		t.Fatal(err)
	}
	if got := sink.count("user-0", a.DedupKey()); got != 1 {
		t.Fatalf("deliveries after recovery = %d, want exactly 1", got)
	}
	st2 := h2.Stats()
	if got := st2.Tiers[core.TierGuaranteed].Delivered; got != 1 {
		t.Fatalf("guaranteed delivered = %d, want 1", got)
	}
	if got := st2.Tiers[core.TierGuaranteed].Lost; got != 0 {
		t.Fatalf("guaranteed lost = %d, want 0", got)
	}
	if st2.Outbox.Loaded != 1 || st2.Outbox.Pending != 0 {
		t.Fatalf("outbox stats = %+v, want loaded 1, pending 0", st2.Outbox)
	}
	if journal.Count(faults.KindOutbox) == 0 {
		t.Fatal("no outbox journal entries recorded")
	}

	// Third incarnation: both journals clean, nothing resurrects.
	h3, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	addGuaranteedUser(t, h3)
	if err := h3.Start(); err != nil {
		t.Fatal(err)
	}
	if err := h3.Drain(); err != nil {
		t.Fatal(err)
	}
	if got := h3.Counters().Get("replayed") + h3.Stats().Outbox.Loaded; got != 0 {
		t.Fatalf("third incarnation recovered %d entries, want 0", got)
	}
	if got := sink.count("user-0", a.DedupKey()); got != 1 {
		t.Fatalf("deliveries after third incarnation = %d, want still 1", got)
	}
}

// TestHubGuaranteedCrashInHandoffWindowDedups drives the faults-driven
// kill through the handoff window: the envelope is durable in the
// outbox but the ingest WAL entry was never retired, so the next
// incarnation is owed the alert by BOTH logs. It must deliver from
// both — the WAL replay and the outbox redelivery — and the duplicate
// is exactly the one the timestamp dedup contract detects downstream;
// nothing is lost.
func TestHubGuaranteedCrashInHandoffWindowDedups(t *testing.T) {
	dir := t.TempDir()
	sink := newFaultySink(true)
	journal := &faults.Journal{}
	crash := faults.NewFlag("crash-after-outbox-put")
	cfg := outboxTestConfig(t, dir, sink, journal)
	cfg.CrashAfterOutboxPut = crash

	h1, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	addGuaranteedUser(t, h1)
	if err := h1.Start(); err != nil {
		t.Fatal(err)
	}
	crash.Set(true, cfg.Clock.Now())
	a := portalAlert(0, cfg.Clock.Now())
	if err := h1.Submit("user-0", a); err != nil {
		t.Fatal(err)
	}
	select {
	case <-h1.Stopped():
	case <-time.After(10 * time.Second):
		t.Fatal("hub did not die after fault injection")
	}
	if got := h1.Counters().Get("outbox-handoffs"); got != 1 {
		t.Fatalf("outbox handoffs = %d, want 1 (the crash fires after the put)", got)
	}
	if got := journal.Count(faults.KindFaultInjected); got != 1 {
		t.Fatalf("fault-injected journal entries = %d, want 1", got)
	}

	// Recovery: both logs own the alert; substrate healed.
	crash.Set(false, cfg.Clock.Now())
	sink.failing.Store(false)
	h2, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	addGuaranteedUser(t, h2)
	if err := h2.Start(); err != nil {
		t.Fatal(err)
	}
	if got := h2.Counters().Get("replayed"); got != 1 {
		t.Fatalf("WAL replayed = %d, want 1 (the DONE record never landed)", got)
	}
	waitCond(t, "outbox redelivery", func() bool { return h2.Outbox().Redelivered() == 1 })
	waitCond(t, "replayed delivery", func() bool { return sink.count("user-0", a.DedupKey()) >= 2 })
	if err := h2.Drain(); err != nil {
		t.Fatal(err)
	}
	// Exactly-once after dedup: two raw deliveries of ONE dedup key —
	// the receiver-side audit collapses them by Created timestamp.
	if got := sink.count("user-0", a.DedupKey()); got != 2 {
		t.Fatalf("raw deliveries = %d, want exactly 2 (WAL replay + outbox redelivery)", got)
	}
	st := h2.Stats()
	if got := st.Tiers[core.TierGuaranteed].Lost; got != 0 {
		t.Fatalf("guaranteed lost = %d, want 0", got)
	}
	if st.Outbox.Pending != 0 {
		t.Fatalf("outbox pending = %d after recovery, want 0", st.Outbox.Pending)
	}
	// Both journals clean for the next incarnation.
	l, err := plog.Open(cfg.WALPath)
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	if un := l.Unprocessed(); len(un) != 0 {
		t.Fatalf("%d unprocessed WAL entries after recovery", len(un))
	}
}

// TestHubBestEffortDropsAreCountedNotResurrected is the companion
// contract: a best-effort alert that exhausts its attempt budget is
// dropped and counted — and stays dropped across a restart, never
// reaching the outbox or the replay path.
func TestHubBestEffortDropsAreCountedNotResurrected(t *testing.T) {
	dir := t.TempDir()
	sink := newFaultySink(true)
	cfg := outboxTestConfig(t, dir, sink, nil)

	h1, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Default tier: best-effort, the historical semantics.
	b, err := h1.AddUser("user-0")
	if err != nil {
		t.Fatal(err)
	}
	b.Pipeline().Classifier.Accept(mab.SourceRule{Source: "portal", Extract: mab.ExtractNative})
	b.Pipeline().Aggregator.Map("stocks", "Investment")
	if err := h1.Start(); err != nil {
		t.Fatal(err)
	}
	a := portalAlert(0, cfg.Clock.Now())
	if err := h1.Submit("user-0", a); err != nil {
		t.Fatal(err)
	}
	if err := h1.Drain(); err != nil {
		t.Fatal(err)
	}
	st := h1.Stats()
	if got := st.Tiers[core.TierBestEffort].Lost; got != 1 {
		t.Fatalf("best-effort lost = %d, want 1 (dropped but counted)", got)
	}
	if got := h1.Counters().Get("undeliverable"); got != 1 {
		t.Fatalf("undeliverable = %d, want 1", got)
	}
	if got := st.OutboxHandoffs; got != 0 {
		t.Fatalf("outbox handoffs = %d for best-effort, want 0", got)
	}
	if st.Outbox.Pending != 0 {
		t.Fatalf("outbox pending = %d for best-effort, want 0", st.Outbox.Pending)
	}

	// Restart with a healthy substrate: the drop is final — no WAL
	// replay, no outbox resurrection.
	sink.failing.Store(false)
	h2, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b2, err := h2.AddUser("user-0")
	if err != nil {
		t.Fatal(err)
	}
	b2.Pipeline().Classifier.Accept(mab.SourceRule{Source: "portal", Extract: mab.ExtractNative})
	b2.Pipeline().Aggregator.Map("stocks", "Investment")
	if err := h2.Start(); err != nil {
		t.Fatal(err)
	}
	if err := h2.Drain(); err != nil {
		t.Fatal(err)
	}
	if got := h2.Counters().Get("replayed") + h2.Stats().Outbox.Loaded; got != 0 {
		t.Fatalf("best-effort drop resurrected: %d recovered entries", got)
	}
	if got := sink.count("user-0", a.DedupKey()); got != 0 {
		t.Fatalf("dropped alert delivered %d times after restart, want 0", got)
	}
}

// TestHubOutboxEscalatesToBackupChannel is the escalation property
// test: a guaranteed tenant's primary channel (IM) is permanently
// down, so after EscalateEvery exhausted outbox rounds the envelope's
// offset advances past the IM block and redelivery runs the mode's
// backup (email) block directly. When email heals, the alert lands
// there — and the successful redelivery's fallback trace matches what
// the buddy path's core.Executor produces for the same escalated
// (sliced) mode, extending the hub/buddy differential contract to
// outbox redeliveries.
func TestHubOutboxEscalatesToBackupChannel(t *testing.T) {
	const user = "user-0"
	clk := clock.NewReal()
	var emailDown atomic.Bool
	emailDown.Store(true)

	// IM is always down; email heals mid-test.
	mkChannels := func() *core.Channels {
		return core.NewChannels().
			Register(addr.TypeIM, core.ChannelFunc(func(req core.Send) (core.SendResult, error) {
				return core.SendResult{}, errors.New("im endpoint offline")
			})).
			Register(addr.TypeEmail, core.ChannelFunc(func(req core.Send) (core.SendResult, error) {
				if emailDown.Load() {
					return core.SendResult{}, errors.New("email relay offline")
				}
				return core.SendResult{Confirmed: true}, nil
			}))
	}

	var mu sync.Mutex
	var successTrace *fallbackTrace
	h := newTestHub(t, Config{
		Clock:               clk,
		Channels:            mkChannels(),
		Shards:              1,
		DeliveryMaxAttempts: 1, // first execution exhausts the budget → outbox
		OutboxPath:          filepath.Join(t.TempDir(), "hub.outbox"),
		OutboxBackoff:       2 * time.Millisecond,
		OutboxBackoffCap:    10 * time.Millisecond,
		OutboxEscalateEvery: 2,
		OnDelivery: func(u string, rep *core.Report, err error) {
			if err == nil && rep != nil {
				tr := traceOf(rep)
				mu.Lock()
				successTrace = &tr
				mu.Unlock()
			}
		},
	})
	b, err := h.AddUser(user)
	if err != nil {
		t.Fatal(err)
	}
	b.Pipeline().Classifier.Accept(mab.SourceRule{Source: "portal", Extract: mab.ExtractNative})
	b.Pipeline().Aggregator.Map("stocks", "Investment")
	profile := modeProfile(t, user, 10*time.Millisecond)
	b.SetProfile(profile)
	if err := b.SubscribeTier("Investment", "IMThenEmail", core.TierGuaranteed); err != nil {
		t.Fatal(err)
	}
	if got := b.Tier("Investment"); got != core.TierGuaranteed {
		t.Fatalf("subscription tier = %v, want guaranteed", got)
	}
	if err := h.Start(); err != nil {
		t.Fatal(err)
	}
	if err := h.Submit(user, portalAlert(0, clk.Now())); err != nil {
		t.Fatal(err)
	}

	// Both channels down: the first execution fails every block and the
	// envelope enters the outbox; after 2 exhausted rounds it escalates
	// past the dead IM block.
	waitCond(t, "channel escalation", func() bool { return h.Outbox().Escalated() >= 1 })
	emailDown.Store(false)
	waitCond(t, "redelivery via backup channel", func() bool { return h.Outbox().Redelivered() == 1 })

	mu.Lock()
	got := successTrace
	mu.Unlock()
	if got == nil {
		t.Fatal("no successful delivery trace captured")
	}

	// Differential reference: the buddy path's executor running the
	// same escalated plan (the mode sliced past the IM block) against
	// the same channel fates must make the same decisions.
	acks := core.NewAcks(clk)
	exec, err := core.NewExecutor(clk, mkChannels(), acks)
	if err != nil {
		t.Fatal(err)
	}
	mode, err := profile.Mode("IMThenEmail")
	if err != nil {
		t.Fatal(err)
	}
	escalated := *mode
	escalated.Blocks = mode.Blocks[1:]
	routed := portalAlert(0, clk.Now())
	routed.Keywords = []string{"Investment"}
	rep, err := exec.DeliverAs(core.DeliveryContext{User: user}, routed, profile.Addresses(), &escalated)
	if err != nil {
		t.Fatal(err)
	}
	want := traceOf(rep)
	if *got != want {
		t.Fatalf("escalated redelivery trace %+v != buddy executor trace %+v", *got, want)
	}
	if want.viaType != addr.TypeEmail || want.blocks != "0:ok" {
		t.Fatalf("buddy reference trace = %+v, want single-block email success", want)
	}

	st := h.Stats()
	if got := st.Tiers[core.TierGuaranteed].Escalated; got < 1 {
		t.Fatalf("guaranteed escalations = %d, want >= 1", got)
	}
	if got := st.Tiers[core.TierGuaranteed].Delivered; got != 1 {
		t.Fatalf("guaranteed delivered = %d, want 1", got)
	}
	if got := st.DeliveredByChannel[addr.TypeEmail]; got != 1 {
		t.Fatalf("delivered via email = %d, want 1", got)
	}
}
