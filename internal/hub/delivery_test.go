package hub

import (
	"errors"
	"fmt"
	"path/filepath"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"simba/internal/alert"
	"simba/internal/clock"
	"simba/internal/dist"
	"simba/internal/faults"
	"simba/internal/plog"
)

// orderSink sleeps a random per-delivery delay (real time, so worker
// interleavings genuinely race) and records each user's delivered alert
// IDs in completion order, plus the peak number of concurrently
// executing deliveries.
type orderSink struct {
	rngs  []*dist.RNG
	maxUS int // per-delivery delay in [0, maxUS) microseconds

	cur, peak atomic.Int64

	mu  sync.Mutex
	seq map[string][]string // user → delivered IDs, completion order
}

func newOrderSink(rng *dist.RNG, shards, maxUS int) *orderSink {
	s := &orderSink{maxUS: maxUS, seq: make(map[string][]string)}
	for i := 0; i < shards; i++ {
		s.rngs = append(s.rngs, rng.Fork(fmt.Sprintf("order-sink-%d", i)))
	}
	return s
}

func (s *orderSink) Deliver(shard int, user string, a *alert.Alert) error {
	c := s.cur.Add(1)
	for {
		p := s.peak.Load()
		if c <= p || s.peak.CompareAndSwap(p, c) {
			break
		}
	}
	if s.maxUS > 0 {
		time.Sleep(time.Duration(s.rngs[shard%len(s.rngs)].Intn(s.maxUS)) * time.Microsecond)
	}
	s.mu.Lock()
	s.seq[user] = append(s.seq[user], a.ID)
	s.mu.Unlock()
	s.cur.Add(-1)
	return nil
}

func (s *orderSink) sequence(user string) []string {
	s.mu.Lock()
	defer s.mu.Unlock()
	return append([]string(nil), s.seq[user]...)
}

// submitAll drives one user's alerts through Submit in order, retrying
// overloads; IDs are "a-<user>-<seq>".
func submitAll(t testing.TB, h *Hub, clk clock.Clock, user string, n int) {
	t.Helper()
	for i := 0; i < n; i++ {
		a := portalAlert(i, clk.Now())
		a.ID = fmt.Sprintf("a-%s-%d", user, i)
		for {
			err := h.Submit(user, a)
			var over *OverloadError
			if errors.As(err, &over) {
				time.Sleep(over.RetryAfter)
				continue
			}
			if err != nil {
				t.Errorf("submit %s/%d: %v", user, i, err)
			}
			break
		}
	}
}

// TestHubPerUserFIFOUnderAsyncDelivery is the ordering property test:
// interleaved alerts for many users flow through a randomly-delayed
// sink, and each user's deliveries must still arrive in submission
// order while different users' deliveries overlap.
func TestHubPerUserFIFOUnderAsyncDelivery(t *testing.T) {
	const users, perUser = 40, 25
	clk := clock.NewReal()
	sink := newOrderSink(dist.NewRNG(11), 4, 300)
	h := newTestHub(t, Config{Clock: clk, Sink: sink, Shards: 4, QueueDepth: 1024})
	addUsers(t, h, users)
	if err := h.Start(); err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for u := 0; u < users; u++ {
		wg.Add(1)
		go func(u int) {
			defer wg.Done()
			submitAll(t, h, clk, fmt.Sprintf("user-%d", u), perUser)
		}(u)
	}
	wg.Wait()
	if err := h.Drain(); err != nil {
		t.Fatal(err)
	}
	for u := 0; u < users; u++ {
		user := fmt.Sprintf("user-%d", u)
		got := sink.sequence(user)
		if len(got) != perUser {
			t.Fatalf("%s delivered %d alerts, want %d", user, len(got), perUser)
		}
		for i, id := range got {
			if want := fmt.Sprintf("a-%s-%d", user, i); id != want {
				t.Fatalf("%s delivery %d = %s, want %s (FIFO violated: %v)", user, i, id, want, got)
			}
		}
	}
	// The point of the pipeline: deliveries for different users overlap.
	if peak := sink.peak.Load(); peak < 2 {
		t.Fatalf("peak concurrent deliveries = %d; async stage never overlapped", peak)
	}
	st := h.Stats()
	for _, sh := range st.Shards {
		if sh.InFlight != 0 {
			t.Fatalf("shard %d in-flight %d after drain", sh.Shard, sh.InFlight)
		}
	}
	stages := h.Stages()
	if stages.Deliver.Count != users*perUser {
		t.Fatalf("deliver-stage samples = %d, want %d", stages.Deliver.Count, users*perUser)
	}
	if stages.QueueWait.Count == 0 || stages.Route.Count == 0 {
		t.Fatal("queue-wait / route stage recorders empty")
	}
}

// TestHubAsyncDeliveryCrashRecovery is the crash property test: alerts
// for many users flow through a randomly-delayed sink, the
// crash-before-mark fault is armed mid-stream so the hub dies inside
// the delivery window, and after a restart on the same WAL every
// acknowledged alert must be delivered at least once (no silent drop),
// at most twice (replay duplicates only), with at most one duplicate
// per user (per-user FIFO marks each delivery before the next starts)
// and per-user first-delivery order still matching submission order.
func TestHubAsyncDeliveryCrashRecovery(t *testing.T) {
	const users, perUser = 12, 6
	walPath := filepath.Join(t.TempDir(), "hub.wal")
	clk := clock.NewReal()
	crash := faults.NewFlag("crash-mid-delivery")
	sink := newOrderSink(dist.NewRNG(23), 2, 500)

	cfg := Config{
		Clock: clk, Sink: sink, WALPath: walPath,
		Shards: 2, QueueDepth: 256, CrashBeforeMark: crash,
	}
	h1, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	addUsers(t, h1, users)
	if err := h1.Start(); err != nil {
		t.Fatal(err)
	}

	// Submit the first half, arm the fault, keep submitting: some later
	// delivery necessarily completes after arming and kills the hub
	// while other deliveries are mid-flight. Track what was acked — an
	// ErrNotAccepting just means the crash already landed.
	acked := make(map[string][]string) // user → acked IDs in order
	submit := func(u, i int) bool {
		user := fmt.Sprintf("user-%d", u)
		a := portalAlert(i, clk.Now())
		a.ID = fmt.Sprintf("a-%s-%d", user, i)
		for {
			err := h1.Submit(user, a)
			var over *OverloadError
			switch {
			case err == nil:
				acked[user] = append(acked[user], a.ID)
				return true
			case errors.As(err, &over):
				time.Sleep(over.RetryAfter)
			case errors.Is(err, ErrNotAccepting):
				return false
			default:
				t.Fatalf("submit: %v", err)
			}
		}
	}
	for i := 0; i < perUser/2; i++ {
		for u := 0; u < users; u++ {
			submit(u, i)
		}
	}
	crash.Set(true, clk.Now())
	for i := perUser / 2; i < perUser; i++ {
		for u := 0; u < users; u++ {
			submit(u, i)
		}
	}
	select {
	case <-h1.Stopped():
	case <-time.After(15 * time.Second):
		t.Fatal("hub did not die after fault armed")
	}

	// Restart on the same WAL and let the replay finish.
	crash.Set(false, clk.Now())
	h2, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	addUsers(t, h2, users)
	if err := h2.Start(); err != nil {
		t.Fatal(err)
	}
	if err := h2.Drain(); err != nil {
		t.Fatal(err)
	}
	if got := h2.Counters().Get("replayed"); got < 1 {
		t.Fatalf("replayed = %d, want >= 1 (the crashing delivery was never marked)", got)
	}

	// Exactly-once-plus-dedup, per user.
	totalDup := 0
	for user, ids := range acked {
		got := sink.sequence(user)
		counts := make(map[string]int)
		var firsts []string
		for _, id := range got {
			if counts[id] == 0 {
				firsts = append(firsts, id)
			}
			counts[id]++
		}
		dup := 0
		for _, id := range ids {
			switch counts[id] {
			case 1:
			case 2:
				dup++
			default:
				t.Fatalf("%s alert %s delivered %d times, want 1 or 2", user, id, counts[id])
			}
		}
		if len(firsts) != len(ids) {
			t.Fatalf("%s delivered %d distinct alerts, acked %d", user, len(firsts), len(ids))
		}
		for i, id := range firsts {
			if id != ids[i] {
				t.Fatalf("%s first-delivery order %v diverges from submission order %v", user, firsts, ids)
			}
		}
		// Per-user FIFO marks each delivery before the next starts, so
		// at most one delivered-but-unmarked alert per user can replay.
		if dup > 1 {
			t.Fatalf("%s has %d duplicates, want <= 1", user, dup)
		}
		totalDup += dup
	}
	if totalDup > users {
		t.Fatalf("total duplicates %d exceeds user count %d", totalDup, users)
	}
	// The WAL is clean: nothing left to replay.
	l, err := plog.OpenLanes(walPath, 1, plog.GroupOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	if un := l.Unprocessed(); len(un) != 0 {
		t.Fatalf("%d unprocessed WAL entries after recovery", len(un))
	}
}

// TestHubDeliveryRetriesTransientFailures checks the retry/backoff
// path: a sink failing the first two attempts per alert still delivers
// every alert, and the hub counts the retries.
func TestHubDeliveryRetriesTransientFailures(t *testing.T) {
	const alerts = 5
	clk := clock.NewReal()
	var mu sync.Mutex
	attempts := make(map[string]int)
	sink := FuncSink(func(shard int, user string, a *alert.Alert) error {
		mu.Lock()
		defer mu.Unlock()
		attempts[a.ID]++
		if attempts[a.ID] <= 2 {
			return fmt.Errorf("transient failure %d", attempts[a.ID])
		}
		return nil
	})
	h := newTestHub(t, Config{
		Clock: clk, Sink: sink, Shards: 1,
		DeliveryMaxAttempts: 4,
		DeliveryBackoff:     100 * time.Microsecond,
		DeliveryBackoffCap:  time.Millisecond,
	})
	addUsers(t, h, 1)
	if err := h.Start(); err != nil {
		t.Fatal(err)
	}
	submitAll(t, h, clk, "user-0", alerts)
	if err := h.Drain(); err != nil {
		t.Fatal(err)
	}
	if got := h.Counters().Get("delivered"); got != alerts {
		t.Fatalf("delivered = %d, want %d", got, alerts)
	}
	if got := h.Counters().Get("delivery-retries"); got != 2*alerts {
		t.Fatalf("delivery-retries = %d, want %d", got, 2*alerts)
	}
	if got := h.Counters().Get("undeliverable"); got != 0 {
		t.Fatalf("undeliverable = %d, want 0", got)
	}
	if un := h.wal.Unprocessed(); len(un) != 0 {
		t.Fatalf("%d unprocessed after drain", len(un))
	}
}

// TestHubDeliveryExhaustsRetriesThenMarks checks that a permanently
// failing delivery gives up after DeliveryMaxAttempts, counts as
// undeliverable, and is still marked processed — the hub must not
// replay a poison alert forever.
func TestHubDeliveryExhaustsRetriesThenMarks(t *testing.T) {
	const alerts = 3
	clk := clock.NewReal()
	var calls atomic.Int64
	sink := FuncSink(func(shard int, user string, a *alert.Alert) error {
		calls.Add(1)
		return errors.New("substrate down")
	})
	h := newTestHub(t, Config{
		Clock: clk, Sink: sink, Shards: 1,
		DeliveryMaxAttempts: 3,
		DeliveryBackoff:     100 * time.Microsecond,
		DeliveryBackoffCap:  time.Millisecond,
	})
	addUsers(t, h, 1)
	if err := h.Start(); err != nil {
		t.Fatal(err)
	}
	submitAll(t, h, clk, "user-0", alerts)
	if err := h.Drain(); err != nil {
		t.Fatal(err)
	}
	if got := calls.Load(); got != 3*alerts {
		t.Fatalf("sink calls = %d, want %d (3 attempts per alert)", got, 3*alerts)
	}
	if got := h.Counters().Get("undeliverable"); got != alerts {
		t.Fatalf("undeliverable = %d, want %d", got, alerts)
	}
	if got := h.Counters().Get("delivered"); got != 0 {
		t.Fatalf("delivered = %d, want 0", got)
	}
	if un := h.wal.Unprocessed(); len(un) != 0 {
		t.Fatalf("%d unprocessed after drain — undeliverable alerts must not replay forever", len(un))
	}
}

// TestHubDeliveryWindowBounds checks the in-flight window: with
// DeliveryWindow=2 on one shard, the sink never observes more than two
// concurrent deliveries even with twenty users' worth of parallelism
// available, and the stage reaches the bound.
func TestHubDeliveryWindowBounds(t *testing.T) {
	const users, perUser, window = 20, 3, 2
	clk := clock.NewReal()
	var cur, peak atomic.Int64
	slow := FuncSink(func(shard int, user string, a *alert.Alert) error {
		c := cur.Add(1)
		for {
			p := peak.Load()
			if c <= p || peak.CompareAndSwap(p, c) {
				break
			}
		}
		time.Sleep(time.Millisecond)
		cur.Add(-1)
		return nil
	})
	h := newTestHub(t, Config{
		Clock: clk, Sink: slow, Shards: 1, QueueDepth: 256,
		DeliveryWindow: window,
	})
	addUsers(t, h, users)
	if err := h.Start(); err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for u := 0; u < users; u++ {
		wg.Add(1)
		go func(u int) {
			defer wg.Done()
			submitAll(t, h, clk, fmt.Sprintf("user-%d", u), perUser)
		}(u)
	}
	wg.Wait()
	if err := h.Drain(); err != nil {
		t.Fatal(err)
	}
	if p := peak.Load(); p > window {
		t.Fatalf("peak concurrent deliveries = %d, window is %d", p, window)
	}
	st := h.Stats()
	if st.Shards[0].PeakInFlight > window {
		t.Fatalf("shard peak in-flight gauge = %d, window is %d", st.Shards[0].PeakInFlight, window)
	}
	if st.Shards[0].PeakInFlight < window {
		t.Fatalf("shard peak in-flight gauge = %d, never saturated window %d", st.Shards[0].PeakInFlight, window)
	}
}
