package hub

import (
	"encoding/binary"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"testing"
	"time"

	"simba/internal/clock"
	"simba/internal/faults"
	"simba/internal/plog"
)

// TestHubCrashAcrossWALRotation crashes the hub while its WAL is
// rotating segments: WALSegmentBytes is tiny, so the workload spans
// several segments when the kill lands. The next incarnation must
// replay the multi-segment tail without losing a single logged alert.
func TestHubCrashAcrossWALRotation(t *testing.T) {
	const users, perUser = 4, 5
	walPath := filepath.Join(t.TempDir(), "hub.wal")
	clk := clock.NewReal()
	crash := faults.NewFlag("hub-crash-before-mark")
	hold := make(chan struct{})
	sink := newCountingSink(hold)

	cfg := Config{
		Clock: clk, Sink: sink, WALPath: walPath,
		Shards: 1, QueueDepth: 64,
		WALSegmentBytes:    256, // force a rotation every couple of records
		WALCheckpointEvery: -1,  // deterministic: replay every segment
		CrashBeforeMark:    crash,
	}
	h1, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	addUsers(t, h1, users)
	if err := h1.Start(); err != nil {
		t.Fatal(err)
	}
	var keys []string
	for i := 0; i < users*perUser; i++ {
		user := fmt.Sprintf("user-%d", i%users)
		a := portalAlert(i, clk.Now())
		if err := h1.Submit(user, a); err != nil {
			t.Fatal(err)
		}
		keys = append(keys, user+"/"+a.DedupKey())
	}
	if segs := h1.Stats().WAL.Segments; segs < 3 {
		t.Fatalf("workload only spans %d segments; rotation not exercised", segs)
	}
	sink.waitArrivals(t, users)
	crash.Set(true, clk.Now())
	close(hold)
	select {
	case <-h1.Stopped():
	case <-time.After(10 * time.Second):
		t.Fatal("hub did not die after fault injection")
	}
	sink.waitTotal(t, users)

	// Restart on the same multi-segment WAL.
	crash.Set(false, clk.Now())
	sink.hold = nil
	cfg.Sink = sink
	h2, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	addUsers(t, h2, users)
	if err := h2.Start(); err != nil {
		t.Fatal(err)
	}
	if replayed := h2.Stats().WAL.SegmentsReplayed; replayed < 3 {
		t.Fatalf("recovery replayed %d segments, expected the full multi-segment tail", replayed)
	}
	if err := h2.Drain(); err != nil {
		t.Fatal(err)
	}
	// No DONE record landed before the crash, so everything replays; the
	// parked heads are the documented dedup-contract duplicates.
	if got := h2.Counters().Get("replayed"); got != users*perUser {
		t.Fatalf("replayed = %d, want %d", got, users*perUser)
	}
	for i, uk := range keys {
		want := 1
		if i < users {
			want = 2
		}
		user, key, _ := cut(uk)
		if got := sink.count(user, key); got != want {
			t.Fatalf("alert %d (%s) delivered %d times, want %d", i, uk, got, want)
		}
	}
	l, err := plog.Open(walPath)
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	if un := l.Unprocessed(); len(un) != 0 {
		t.Fatalf("%d unprocessed WAL entries after recovery", len(un))
	}
	if l.Len() != users*perUser {
		t.Fatalf("WAL holds %d records, want %d", l.Len(), users*perUser)
	}
}

// TestHubCrashDuringWALCheckpoint simulates dying mid-checkpoint: after
// a durable generation-1 checkpoint, the hub crashes with a torn
// generation-2 checkpoint and a half-written tmp file on disk (the
// compactor's crash window — its covered segments are deleted only
// after the checkpoint is durable, so they all still exist). Recovery
// must discard the torn artifacts, fall back to generation 1, and
// replay the full segment tail: no unprocessed alert may be lost.
func TestHubCrashDuringWALCheckpoint(t *testing.T) {
	const users, phase1, phase2 = 2, 8, 4
	walPath := filepath.Join(t.TempDir(), "hub.wal")
	clk := clock.NewReal()
	crash := faults.NewFlag("hub-crash-before-mark")
	sink := newCountingSink(nil)

	cfg := Config{
		Clock: clk, Sink: sink, WALPath: walPath,
		Shards: 1, QueueDepth: 64,
		WALSegmentBytes:    256,
		WALCheckpointEvery: -1, // checkpoints are forced explicitly below
		CrashBeforeMark:    crash,
	}
	h1, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	addUsers(t, h1, users)
	if err := h1.Start(); err != nil {
		t.Fatal(err)
	}
	// Phase 1 flows through and is checkpointed (generation 1).
	var keys []string
	for i := 0; i < phase1; i++ {
		user := fmt.Sprintf("user-%d", i%users)
		a := portalAlert(i, clk.Now())
		if err := h1.Submit(user, a); err != nil {
			t.Fatal(err)
		}
		keys = append(keys, user+"/"+a.DedupKey())
	}
	sink.waitTotal(t, phase1)
	if err := h1.CheckpointWAL(); err != nil {
		t.Fatal(err)
	}
	if gen := h1.Stats().WAL.CheckpointGen; gen != 1 {
		t.Fatalf("checkpoint generation = %d, want 1", gen)
	}
	// Phase 2 is parked inside the delivery window when the crash fires.
	// Phase 1's arrival signals are stale by now — drain them so
	// waitArrivals below waits for phase 2's parked deliveries, not
	// buffered history.
	sink.drainArrivals()
	hold := make(chan struct{})
	sink.hold = hold
	for i := phase1; i < phase1+phase2; i++ {
		user := fmt.Sprintf("user-%d", i%users)
		a := portalAlert(i, clk.Now())
		if err := h1.Submit(user, a); err != nil {
			t.Fatal(err)
		}
		keys = append(keys, user+"/"+a.DedupKey())
	}
	sink.waitArrivals(t, users)
	crash.Set(true, clk.Now())
	close(hold)
	select {
	case <-h1.Stopped():
	case <-time.After(10 * time.Second):
		t.Fatal("hub did not die after fault injection")
	}
	sink.waitTotal(t, phase1+users)

	// Crash artifacts of a torn generation-2 checkpoint write.
	if err := os.WriteFile(walPath+".ckpt.tmp", []byte("CKPT 1 2 9"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(walPath+".ckpt.00000002", []byte("CKPT 1 2 99 1 99 0\n"), 0o644); err != nil {
		t.Fatal(err)
	}

	crash.Set(false, clk.Now())
	sink.hold = nil
	cfg.Sink = sink
	h2, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	addUsers(t, h2, users)
	if err := h2.Start(); err != nil {
		t.Fatal(err)
	}
	wst := h2.Stats().WAL
	if wst.CheckpointGen != 1 {
		t.Fatalf("recovery used checkpoint generation %d, want fallback to 1", wst.CheckpointGen)
	}
	if wst.CorruptRecords == 0 {
		t.Fatal("torn checkpoint not counted as corruption")
	}
	if err := h2.Drain(); err != nil {
		t.Fatal(err)
	}
	// Every phase-2 alert was unprocessed at the crash and must replay;
	// phase-1 DONEs may or may not have been flushed (they are staged
	// asynchronously), so replays of those are legal duplicates — but
	// nothing may be lost.
	if got := h2.Counters().Get("replayed"); got < phase2 {
		t.Fatalf("replayed = %d, want >= %d", got, phase2)
	}
	for i, uk := range keys {
		user, key, _ := cut(uk)
		if got := sink.count(user, key); got < 1 {
			t.Fatalf("alert %d (%s) lost across checkpoint crash (delivered %d times)", i, uk, got)
		}
	}
	l, err := plog.Open(walPath)
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	if un := l.Unprocessed(); len(un) != 0 {
		t.Fatalf("%d unprocessed WAL entries after recovery", len(un))
	}
	if l.Len() != phase1+phase2 {
		t.Fatalf("all-time WAL total = %d, want %d", l.Len(), phase1+phase2)
	}
}

// laneActiveSegment returns the highest-numbered segment of one lane's
// journal (zero-padded sequence numbers sort lexically).
func laneActiveSegment(t *testing.T, lanePath string) string {
	t.Helper()
	all, err := filepath.Glob(lanePath + ".*.seg")
	if err != nil {
		t.Fatal(err)
	}
	// Lane 0's base-path glob also matches the other lanes' segments
	// (hub.wal.lane03.00000001.seg); keep only this lane's own files.
	var matches []string
	for _, m := range all {
		if !strings.HasPrefix(m, lanePath+".lane") {
			matches = append(matches, m)
		}
	}
	if len(matches) == 0 {
		t.Fatalf("no segments for lane %s", lanePath)
	}
	sort.Strings(matches)
	return matches[len(matches)-1]
}

// laneFrames walks one binary segment by its length prefixes and
// returns how many complete frames it holds and where valid data ends
// (the preallocated zero tail parses as a zero length and stops the
// walk, exactly like recovery).
func laneFrames(t *testing.T, path string) (frames int, validEnd int64) {
	t.Helper()
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	const magicLen, overhead = 8, 17
	off := magicLen
	for off+4 <= len(data) {
		n := int(binary.LittleEndian.Uint32(data[off : off+4]))
		if n < overhead || off+4+n > len(data) {
			break
		}
		off += 4 + n
		frames++
	}
	return frames, int64(off)
}

// TestHubCrashTearsOneLaneWhileOthersCommit simulates the machine
// dying while one WAL lane's fsync was still in flight: the other
// lanes' batches are fully committed, the torn lane ends mid-frame.
// Recovery must replay every record from the intact lanes plus the
// torn lane's valid prefix, isolate the loss to that one lane, and
// dedup a re-submission of the burst down to exactly the torn record.
func TestHubCrashTearsOneLaneWhileOthersCommit(t *testing.T) {
	const users, perUser = 8, 4
	walPath := filepath.Join(t.TempDir(), "hub.wal")
	clk := clock.NewReal()
	crash := faults.NewFlag("crash-after-batch-fsync")
	journal := &faults.Journal{}
	sink1 := newCountingSink(nil)
	cfg := Config{
		Clock: clk, Sink: sink1, WALPath: walPath,
		Shards: 4, QueueDepth: 256,
		CrashAfterBatchFsync: crash, Journal: journal,
	}
	h1, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	addUsers(t, h1, users)
	if err := h1.Start(); err != nil {
		t.Fatal(err)
	}
	var burst []Submission
	var keys []string
	for u := 0; u < users; u++ {
		user := fmt.Sprintf("user-%d", u)
		for i := 0; i < perUser; i++ {
			a := portalAlert(i, clk.Now())
			a.ID = fmt.Sprintf("a-%s-%d", user, i)
			burst = append(burst, Submission{User: user, Alert: a})
			keys = append(keys, user+"/"+a.DedupKey())
		}
	}
	// The kill lands after all four lanes fsynced, before any enqueue:
	// every record is durable somewhere on disk, nothing delivered.
	crash.Set(true, clk.Now())
	for i, err := range h1.SubmitBatch(burst) {
		if err != nil {
			t.Fatalf("burst entry %d: %v", i, err)
		}
	}
	select {
	case <-h1.Stopped():
	case <-time.After(15 * time.Second):
		t.Fatal("hub did not stop after injected crash")
	}

	// The burst spread across all four lanes; now tear one lane's tail
	// mid-frame, as if that lane's last write never finished hitting
	// the platter.
	perLane := make([]int, 4)
	total := 0
	for lane := range perLane {
		perLane[lane], _ = laneFrames(t, laneActiveSegment(t, plog.LanePath(walPath, lane)))
		total += perLane[lane]
	}
	if total != len(burst) {
		t.Fatalf("lanes hold %d records, want %d", total, len(burst))
	}
	torn := -1
	for lane, n := range perLane {
		if n >= 2 {
			torn = lane
			break
		}
	}
	if torn < 0 {
		t.Fatal("no lane holds >= 2 records; user hashing changed?")
	}
	seg := laneActiveSegment(t, plog.LanePath(walPath, torn))
	_, validEnd := laneFrames(t, seg)
	if err := os.Truncate(seg, validEnd-5); err != nil {
		t.Fatal(err)
	}

	crash.Set(false, clk.Now())
	sink2 := newCountingSink(nil)
	cfg.Sink = sink2
	h2, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	addUsers(t, h2, users)
	if err := h2.Start(); err != nil {
		t.Fatal(err)
	}
	if got := h2.Counters().Get("replayed"); got != int64(len(burst)-1) {
		t.Fatalf("replayed = %d, want %d (all but the torn record)", got, len(burst)-1)
	}
	st := h2.Stats()
	if st.WAL.CorruptRecords != 0 {
		t.Fatalf("clean torn tail counted as %d corrupt records", st.WAL.CorruptRecords)
	}
	if len(st.WALPerLane) != 4 {
		t.Fatalf("per-lane stats cover %d lanes, want 4", len(st.WALPerLane))
	}
	for lane, ls := range st.WALPerLane {
		want := perLane[lane]
		if lane == torn {
			want--
		}
		if ls.Total != int64(want) {
			t.Fatalf("lane %d recovered %d records, want %d (loss not isolated)", lane, ls.Total, want)
		}
	}
	// Re-submitting the burst re-admits exactly the torn record; the
	// rest dedup against their replayed RECV entries.
	for i, err := range h2.SubmitBatch(burst) {
		if err != nil {
			t.Fatalf("re-submit entry %d: %v", i, err)
		}
	}
	if got := h2.Counters().Get("duplicates"); got != int64(len(burst)-1) {
		t.Fatalf("duplicates = %d, want %d", got, len(burst)-1)
	}
	if err := h2.Drain(); err != nil {
		t.Fatal(err)
	}
	for i, uk := range keys {
		user, key, _ := cut(uk)
		if got := sink2.count(user, key); got != 1 {
			t.Fatalf("alert %d (%s) delivered %d times, want exactly 1", i, uk, got)
		}
	}
}
