package hub

import (
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"simba/internal/clock"
	"simba/internal/dist"
	"simba/internal/faults"
)

// TestHubWedgedShardAutoRecovers is the tentpole fault test: a fault
// hook wedges one shard's route loop mid-batch, sibling shards keep
// delivering while it hangs, and the supervision plane detects the
// stall from the shard's stale progress beat, kills the generation,
// and replays its WAL lane — with the wedged alert delivered exactly
// once and a visible generation bump.
func TestHubWedgedShardAutoRecovers(t *testing.T) {
	const users = 32
	clk := clock.NewReal()
	sink := newCountingSink(nil)
	j := &faults.Journal{}

	// wedgeTarget selects the shard whose next routed batch hangs until
	// its generation is killed; -1 disarms.
	var wedgeTarget atomic.Int32
	wedgeTarget.Store(-1)
	wedged := make(chan struct{}, 1)
	hook := func(shard int, killed <-chan struct{}) {
		if int32(shard) == wedgeTarget.Load() {
			select {
			case wedged <- struct{}{}:
			default:
			}
			<-killed
		}
	}

	h := newTestHub(t, Config{
		Clock:              clk,
		Sink:               sink,
		Shards:             4,
		QueueDepth:         64,
		Journal:            j,
		RouteHook:          hook,
		QuiesceTimeout:     time.Second,
		DeliveryBackoff:    time.Millisecond,
		DeliveryBackoffCap: 2 * time.Millisecond,
	})
	addUsers(t, h, users)
	if err := h.Start(); err != nil {
		t.Fatal(err)
	}

	// Pick a tenant on shard 0 and tenants on every other shard.
	var targetUser string
	siblingUsers := make([]string, 0, users)
	for i := 0; i < users; i++ {
		user := fmt.Sprintf("user-%d", i)
		if h.shardOf(user).id == 0 {
			if targetUser == "" {
				targetUser = user
			}
		} else {
			siblingUsers = append(siblingUsers, user)
		}
	}
	if targetUser == "" || len(siblingUsers) == 0 {
		t.Fatalf("user spread left a shard empty (target %q, %d siblings)", targetUser, len(siblingUsers))
	}

	// Wedge shard 0 on an admitted alert: the route loop dequeues it and
	// hangs, leaving it logged but unprocessed.
	wedgeTarget.Store(0)
	wedgeAlert := portalAlert(0, clk.Now())
	wedgeAlert.ID = "a-wedged"
	if err := h.Submit(targetUser, wedgeAlert); err != nil {
		t.Fatal(err)
	}
	select {
	case <-wedged:
	case <-time.After(5 * time.Second):
		t.Fatal("route loop never hit the wedge hook")
	}
	// Disarm so the replayed generation routes normally; the blocked
	// hook invocation stays blocked until the kill releases it.
	wedgeTarget.Store(-1)

	// Siblings must keep serving while shard 0 hangs (no supervision
	// yet, so the hang is guaranteed to still be in force).
	const perSibling = 2
	siblingKeys := make(map[string][]string, len(siblingUsers))
	for i, user := range siblingUsers {
		for k := 0; k < perSibling; k++ {
			a := portalAlert(i, clk.Now())
			a.ID = fmt.Sprintf("a-sib-%d-%d", i, k)
			siblingKeys[user] = append(siblingKeys[user], a.DedupKey())
			if err := h.Submit(user, a); err != nil {
				t.Fatal(err)
			}
		}
	}
	sink.waitTotal(t, len(siblingUsers)*perSibling)
	if got := sink.count(targetUser, wedgeAlert.DedupKey()); got != 0 {
		t.Fatalf("wedged alert delivered %d times while its shard hung", got)
	}
	if hl, err := h.ShardHealth(0); err != nil || hl.State != ShardRunning || hl.Depth == 0 {
		t.Fatalf("wedged shard health = %+v, %v; want running with queued work", hl, err)
	}

	// Supervision: fast probes, stale budget past the backoff cap.
	sup, err := h.Supervise(SuperviseConfig{
		ProbePeriod:      20 * time.Millisecond,
		ReplyTimeout:     50 * time.Millisecond,
		FailureThreshold: 2,
		StaleAfter:       30 * time.Millisecond,
		InvariantPeriod:  time.Hour, // this test exercises the watchdog only
		Journal:          j,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer sup.Stop()

	deadline := time.Now().Add(10 * time.Second)
	for {
		hl, err := h.ShardHealth(0)
		if err != nil {
			t.Fatal(err)
		}
		if hl.Restarts == 1 && hl.State == ShardRunning && hl.Generation == 2 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("shard 0 never recovered: %+v", hl)
		}
		time.Sleep(5 * time.Millisecond)
	}

	// The replayed generation must deliver the wedged alert exactly once
	// and serve new traffic.
	sink.waitTotal(t, len(siblingUsers)*perSibling+1)
	if got := sink.count(targetUser, wedgeAlert.DedupKey()); got != 1 {
		t.Fatalf("wedged alert delivered %d times after replay; want exactly 1", got)
	}
	post := portalAlert(1, clk.Now())
	post.ID = "a-post-recovery"
	if err := h.Submit(targetUser, post); err != nil {
		t.Fatalf("recovered shard rejected new traffic: %v", err)
	}
	sink.waitTotal(t, len(siblingUsers)*perSibling+2)

	sup.Stop()
	if err := h.Drain(); err != nil {
		t.Fatal(err)
	}

	// Exactly-once across the board: no sibling delivery duplicated by
	// the targeted restart.
	for user, keys := range siblingKeys {
		for _, key := range keys {
			if got := sink.count(user, key); got != 1 {
				t.Fatalf("sibling alert %s/%s delivered %d times", user, key, got)
			}
		}
	}
	if stats := sup.WatchdogStats(); stats[0].Restarts != 1 || stats[0].Failures < 2 {
		t.Fatalf("watchdog stats for shard 0 = %+v", stats[0])
	}
	if j.CountMatching(faults.KindDaemonRestart, "shard-0") == 0 {
		t.Fatal("probe-driven restart not journaled")
	}
	if sup.ProbeLatency().Count == 0 {
		t.Fatal("probe latency histogram empty")
	}
}

// TestHubRollingRejuvenationPreservesOrder is the ordering property
// test under self-management: per-user submission order must survive
// repeated rolling rejuvenations racing live traffic, with every alert
// delivered exactly once.
func TestHubRollingRejuvenationPreservesOrder(t *testing.T) {
	const users, perUser = 24, 25
	clk := clock.NewReal()
	sink := newOrderSink(dist.NewRNG(23), 4, 200)
	h := newTestHub(t, Config{
		Clock:          clk,
		Sink:           sink,
		Shards:         4,
		QueueDepth:     256,
		QuiesceTimeout: 5 * time.Second,
	})
	addUsers(t, h, users)
	if err := h.Start(); err != nil {
		t.Fatal(err)
	}

	stopRejuvenating := make(chan struct{})
	var rejuvenated sync.WaitGroup
	rejuvenated.Add(1)
	go func() {
		defer rejuvenated.Done()
		for {
			select {
			case <-stopRejuvenating:
				return
			default:
			}
			if err := h.RejuvenateAll(); err != nil {
				t.Errorf("rolling rejuvenation: %v", err)
				return
			}
			time.Sleep(2 * time.Millisecond)
		}
	}()

	var wg sync.WaitGroup
	for u := 0; u < users; u++ {
		wg.Add(1)
		go func(u int) {
			defer wg.Done()
			submitAll(t, h, clk, fmt.Sprintf("user-%d", u), perUser)
		}(u)
	}
	wg.Wait()
	close(stopRejuvenating)
	rejuvenated.Wait()
	if err := h.Drain(); err != nil {
		t.Fatal(err)
	}

	// Differential check: each user's delivery sequence must equal the
	// submission sequence, element for element.
	for u := 0; u < users; u++ {
		user := fmt.Sprintf("user-%d", u)
		seq := sink.sequence(user)
		if len(seq) != perUser {
			t.Fatalf("%s: delivered %d alerts, want %d: %v", user, len(seq), perUser, seq)
		}
		for i, id := range seq {
			if want := fmt.Sprintf("a-%s-%d", user, i); id != want {
				t.Fatalf("%s: delivery %d = %s, want %s (rejuvenation broke FIFO)", user, i, id, want)
			}
		}
	}
	// The race above must actually have recycled shards, gracefully.
	totalRejuvenations := int64(0)
	for _, hl := range h.Healths() {
		totalRejuvenations += hl.Rejuvenations
		if hl.Restarts != 0 {
			t.Fatalf("shard %d escalated to a hard restart during graceful rejuvenation: %+v", hl.Shard, hl)
		}
	}
	if totalRejuvenations == 0 {
		t.Fatal("no shard was ever rejuvenated while traffic flowed")
	}
}
