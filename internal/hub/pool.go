package hub

import (
	"sync"
	"sync/atomic"
	"time"

	"simba/internal/alert"
)

// envelope is one admitted alert riding the hub, pooled and recycled.
// An envelope is born in SubmitBatch (or replay), crosses the shard
// queue, and either finishes on the shard loop (reject/filter verdict)
// or becomes the delivery stage's job — the routed category, handoff
// time, and per-user FIFO link live inline, so routing hands delivery
// a pointer instead of building a separate job value.
//
// Lifecycle/recycling contract: an envelope returns to the pool only
// after its WAL DONE record has been staged on its home lane and its
// admission slot released — the one point where no other component can
// still reach it. Abandoned envelopes (kill, crash injection, failed
// outbox handoff that leaves the WAL entry live) are NOT recycled; the
// pool is best-effort and the GC reclaims them. The alert value, its
// keyword backing, and the wire-form payload are envelope-owned
// storage, reused across recycles so the steady-state ingest path
// allocates nothing per alert.
type envelope struct {
	buddy *Buddy
	// alert is inline storage for the submitted alert. Its Keywords
	// alias the envelope's kwbuf (after fill) or kw (after routing) —
	// never the submitter's slice.
	alert alert.Alert
	key   string
	lane  int       // WAL lane owning the RECV record (its DONE goes there too)
	at    time.Time // admission time, for end-to-end latency

	// Delivery-stage fields, valid once the shard loop routes the
	// envelope.
	category string    // routing category, selects the tenant's subscribed delivery mode
	handed   time.Time // when routing handed the job off, for the deliver-stage latency split

	// Envelope-owned reusable storage.
	payload []byte    // wire form: the submitted alert at ingest, the routed alert during delivery
	kwbuf   []string  // backing for alert.Keywords (submitter copy)
	kw      [1]string // backing for the routed-category annotation

	// next links the envelope into its user's delivery FIFO chain (and
	// into nothing otherwise). Owned by the delivery stage's lock.
	next *envelope

	// poisoned records that poison() ran at recycle, so the next
	// getEnvelope knows to verify the marks survived the pool stay.
	poisoned bool
}

// envPool recycles envelopes across the whole process; sync.Pool's
// per-P caches keep Get/Put off any shared lock on the hot path.
var envPool = sync.Pool{New: func() any { return new(envelope) }}

// poolPoison, when set, scribbles on every recycled envelope so any
// use-after-recycle reads obvious garbage instead of stale-but-valid
// data. Test instrumentation only — see SetPoolPoison.
var poolPoison atomic.Bool

// SetPoolPoison toggles reuse-poisoning of recycled envelopes (and the
// delivery stages' timer-wheel nodes of hubs built while on). Tests
// enable it to turn silent pooling bugs into loud ones; never enable it
// in production — it burns cycles on every recycle.
func SetPoolPoison(on bool) { poolPoison.Store(on) }

// poisonSentinel marks every string field of a poisoned envelope.
const poisonSentinel = "POISONED-RECYCLED-ENVELOPE"

// poolPoisonHits counts recycled envelopes whose poison marks were
// disturbed between putEnvelope and the next getEnvelope — hard
// evidence of a use-after-recycle writer. Feeds the hub's pool-poison
// stabilize invariant; only advances while poisoning is on.
var poolPoisonHits atomic.Int64

// PoolPoisonHits returns how many recycled envelopes came back from
// the pool with their poison marks disturbed (use-after-recycle
// detection; counts only while SetPoolPoison is on).
func PoolPoisonHits() int64 { return poolPoisonHits.Load() }

// getEnvelope takes a (possibly recycled) envelope from the pool. The
// caller must fill every semantic field; the env-owned buffers keep
// their capacity.
func getEnvelope() *envelope {
	e := envPool.Get().(*envelope)
	if e.poisoned && !e.poisonIntact() {
		// The envelope was poisoned at recycle but a stale reference
		// wrote to it while pooled. Count it and discard the envelope —
		// its buffers are suspect.
		poolPoisonHits.Add(1)
		e = new(envelope)
	}
	e.poisoned = false
	e.next = nil
	return e
}

// poisonIntact reports whether a previously-poisoned envelope's marks
// survived its stay in the pool. Fresh envelopes (key == "") are never
// checked.
func (e *envelope) poisonIntact() bool {
	return e.key == poisonSentinel &&
		e.category == poisonSentinel &&
		e.kw[0] == poisonSentinel &&
		e.lane == -1<<20 &&
		e.alert.ID == poisonSentinel
}

// fill initializes a pooled envelope for one admitted alert, copying
// the alert by value and its keywords into envelope-owned backing so no
// submitter-owned memory is aliased after SubmitBatch returns.
func (e *envelope) fill(b *Buddy, a *alert.Alert, key string, lane int, at time.Time) {
	e.buddy = b
	e.alert = *a
	e.kwbuf = append(e.kwbuf[:0], a.Keywords...)
	e.alert.Keywords = e.kwbuf
	e.key = key
	e.lane = lane
	e.at = at
	e.category = ""
	e.handed = time.Time{}
	e.next = nil
}

// putEnvelope recycles an envelope. Only call once the envelope's DONE
// record is staged and nothing can reach it anymore.
func putEnvelope(e *envelope) {
	if poolPoison.Load() {
		e.poison()
		e.poisoned = true
	}
	e.buddy = nil
	e.next = nil
	envPool.Put(e)
}

// poison scribbles recognizable garbage over every field a stale reader
// could consume, while preserving the reusable buffers' capacity.
func (e *envelope) poison() {
	for i := range e.payload {
		e.payload[i] = 0xDB
	}
	for i := range e.kwbuf {
		e.kwbuf[i] = poisonSentinel
	}
	e.alert = alert.Alert{
		ID:      poisonSentinel,
		Source:  poisonSentinel,
		Subject: poisonSentinel,
		Body:    poisonSentinel,
		Urgency: -1,
		Created: time.Unix(-1<<40, 0),
	}
	e.key = poisonSentinel
	e.category = poisonSentinel
	e.kw[0] = poisonSentinel
	e.lane = -1 << 20
	e.at = time.Unix(-1<<40, 0)
	e.handed = time.Unix(-1<<40, 0)
}
