package hub

import (
	"errors"
	"fmt"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"simba/internal/alert"
	"simba/internal/clock"
	"simba/internal/faults"
	"simba/internal/mab"
	"simba/internal/plog"
)

// countingSink records per-(user, key) delivery counts across hub
// incarnations. With a hold channel, every delivery blocks until the
// channel is closed, and each Deliver call signals arrived before
// blocking — so a test can park a known set of deliveries inside the
// delivery window, arm a fault, and release them all at once.
type countingSink struct {
	hold    chan struct{} // nil = open
	arrived chan struct{} // buffered; one signal per Deliver entry

	mu     sync.Mutex
	counts map[string]int
}

func newCountingSink(hold chan struct{}) *countingSink {
	return &countingSink{
		hold:    hold,
		arrived: make(chan struct{}, 1024),
		counts:  make(map[string]int),
	}
}

func (s *countingSink) Deliver(shard int, user string, a *alert.Alert) error {
	select {
	case s.arrived <- struct{}{}:
	default:
	}
	if s.hold != nil {
		<-s.hold
	}
	s.mu.Lock()
	s.counts[user+"/"+a.DedupKey()]++
	s.mu.Unlock()
	return nil
}

// waitArrivals blocks until n deliveries have entered the sink.
func (s *countingSink) waitArrivals(t *testing.T, n int) {
	t.Helper()
	for i := 0; i < n; i++ {
		select {
		case <-s.arrived:
		case <-time.After(10 * time.Second):
			t.Fatalf("only %d of %d deliveries reached the sink", i, n)
		}
	}
}

func (s *countingSink) count(user, key string) int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.counts[user+"/"+key]
}

// drainArrivals discards buffered arrival signals, so a later
// waitArrivals observes only deliveries entering the sink after this
// point. Call it only while the sink is quiescent (e.g. right after
// waitTotal).
func (s *countingSink) drainArrivals() {
	for {
		select {
		case <-s.arrived:
		default:
			return
		}
	}
}

// waitTotal blocks until n deliveries have completed. Kill abandons
// in-flight deliveries without waiting for them (Stopped() can fire
// while a worker is still inside the sink), so tests asserting
// pre-crash counts must quiesce the sink explicitly.
func (s *countingSink) waitTotal(t *testing.T, n int) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for {
		s.mu.Lock()
		total := 0
		for _, c := range s.counts {
			total += c
		}
		s.mu.Unlock()
		if total >= n {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("sink saw %d deliveries, want %d", total, n)
		}
		time.Sleep(time.Millisecond)
	}
}

// TestHubCrashBetweenRoutingAndMark kills the hub in the window the
// paper's dedup contract covers — now *inside the asynchronous delivery
// stage*: each user's first delivery is parked in the sink (inside the
// in-flight window), the fault is armed, and the deliveries are
// released. The first to complete kills the hub before any DONE record
// lands, so every logged alert is replayed by the next incarnation; the
// delivered-but-unmarked alerts (one per user — per-user FIFO means
// only the head of each chain was in flight) are the documented
// duplicates the timestamp contract detects. Everything else is
// delivered exactly once and nothing is lost.
func TestHubCrashBetweenRoutingAndMark(t *testing.T) {
	const users, perUser = 4, 3
	walPath := filepath.Join(t.TempDir(), "hub.wal")
	clk := clock.NewReal()
	journal := &faults.Journal{}
	crash := faults.NewFlag("hub-crash-before-mark")
	hold := make(chan struct{})
	sink := newCountingSink(hold)

	cfg := Config{
		Clock: clk, Sink: sink, WALPath: walPath,
		Shards: 1, QueueDepth: 64,
		Journal: journal, CrashBeforeMark: crash,
	}
	h1, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	addUsers(t, h1, users)
	if err := h1.Start(); err != nil {
		t.Fatal(err)
	}

	// Submit everything while the sink holds every delivery, so the
	// whole workload is durably logged — and each user's first alert is
	// parked inside the delivery window — when the crash fires.
	var keys []string // "user/dedupKey", submission order
	for i := 0; i < users*perUser; i++ {
		user := fmt.Sprintf("user-%d", i%users)
		a := portalAlert(i, clk.Now())
		if err := h1.Submit(user, a); err != nil {
			t.Fatal(err)
		}
		keys = append(keys, user+"/"+a.DedupKey())
	}
	// Per-user FIFO: exactly one in-flight delivery per user; the rest
	// of each chain waits behind it.
	sink.waitArrivals(t, users)
	// Arm the fault and release the parked deliveries: each completes
	// its sink call, then dies before MarkProcessed.
	crash.Set(true, clk.Now())
	close(hold)
	select {
	case <-h1.Stopped():
	case <-time.After(10 * time.Second):
		t.Fatal("hub did not die after fault injection")
	}
	if journal.Count(faults.KindFaultInjected) != 1 {
		t.Fatalf("fault-injected journal entries = %d, want 1", journal.Count(faults.KindFaultInjected))
	}
	if err := h1.Submit("user-0", portalAlert(999, clk.Now())); !errors.Is(err, ErrNotAccepting) {
		t.Fatalf("submit to killed hub = %v, want ErrNotAccepting", err)
	}
	// Kill abandons the in-flight window: let the released sink calls
	// finish before reading counts.
	sink.waitTotal(t, users)
	// Pre-crash, exactly the head of each user's chain was delivered.
	for i, uk := range keys {
		want := 0
		if i < users {
			want = 1
		}
		user, key, _ := cut(uk)
		if got := sink.count(user, key); got != want {
			t.Fatalf("pre-crash deliveries of alert %d (%s) = %d, want %d", i, uk, got, want)
		}
	}

	// Restart on the same WAL, fault cleared.
	crash.Set(false, clk.Now())
	sink.hold = nil
	cfg.Sink = sink
	h2, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	addUsers(t, h2, users)
	if err := h2.Start(); err != nil {
		t.Fatal(err)
	}
	if err := h2.Drain(); err != nil {
		t.Fatal(err)
	}

	// Every logged alert was unprocessed at the crash (no DONE record
	// landed), so each is replayed exactly once.
	if got := h2.Counters().Get("replayed"); got != users*perUser {
		t.Fatalf("replayed = %d, want %d", got, users*perUser)
	}
	if got := journal.Count(faults.KindReplay); got != users*perUser {
		t.Fatalf("replay journal entries = %d, want %d", got, users*perUser)
	}
	// The delivered-but-unmarked alerts (each user's first) are the
	// duplicates: delivered twice under the same DedupKey. Every other
	// alert is delivered exactly once.
	for i, uk := range keys {
		want := 1
		if i < users {
			want = 2
		}
		user, key, _ := cut(uk)
		if got := sink.count(user, key); got != want {
			t.Fatalf("alert %d (%s) delivered %d times, want %d", i, uk, got, want)
		}
	}
	// And the WAL is clean: nothing left to replay.
	l, err := plog.Open(walPath)
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	if un := l.Unprocessed(); len(un) != 0 {
		t.Fatalf("%d unprocessed WAL entries after recovery", len(un))
	}
	if l.Len() != users*perUser {
		t.Fatalf("WAL holds %d records, want %d", l.Len(), users*perUser)
	}
}

// TestHubRestartTombstonesOrphans checks that WAL entries for users no
// longer hosted are tombstoned, not replayed forever.
func TestHubRestartTombstonesOrphans(t *testing.T) {
	walPath := filepath.Join(t.TempDir(), "hub.wal")
	clk := clock.NewReal()
	hold := make(chan struct{})
	sink := newCountingSink(hold)
	crash := faults.NewFlag("crash")
	h1, err := New(Config{Clock: clk, Sink: sink, WALPath: walPath, Shards: 1, CrashBeforeMark: crash})
	if err != nil {
		t.Fatal(err)
	}
	b, err := h1.AddUser("ghost")
	if err != nil {
		t.Fatal(err)
	}
	b.Pipeline().Classifier.Accept(mab.SourceRule{Source: "portal", Extract: mab.ExtractNative})
	if err := h1.Start(); err != nil {
		t.Fatal(err)
	}
	if err := h1.Submit("ghost", portalAlert(1, clk.Now())); err != nil {
		t.Fatal(err)
	}
	sink.waitArrivals(t, 1)
	crash.Set(true, clk.Now())
	close(hold)
	<-h1.Stopped()

	// Restart without re-registering "ghost".
	sink2 := newCountingSink(nil)
	h2, err := New(Config{Clock: clk, Sink: sink2, WALPath: walPath, Shards: 1})
	if err != nil {
		t.Fatal(err)
	}
	if err := h2.Start(); err != nil {
		t.Fatal(err)
	}
	if err := h2.Drain(); err != nil {
		t.Fatal(err)
	}
	if got := h2.Counters().Get("tombstoned"); got != 1 {
		t.Fatalf("tombstoned = %d, want 1", got)
	}
	if got := h2.Counters().Get("replayed"); got != 0 {
		t.Fatalf("replayed = %d, want 0", got)
	}
	l, err := plog.Open(walPath)
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	if un := l.Unprocessed(); len(un) != 0 {
		t.Fatalf("orphan entry not tombstoned: %d unprocessed", len(un))
	}
}

// cut splits "user/dedupKey" on the first slash.
func cut(uk string) (user, key string, ok bool) {
	for i := 0; i < len(uk); i++ {
		if uk[i] == '/' {
			return uk[:i], uk[i+1:], true
		}
	}
	return uk, "", false
}
