package hub

import (
	"errors"
	"fmt"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"simba/internal/alert"
	"simba/internal/clock"
	"simba/internal/faults"
	"simba/internal/mab"
	"simba/internal/plog"
)

// countingSink records per-(user, key) delivery counts across hub
// incarnations and can gate the first delivery until the test is ready.
type countingSink struct {
	gate chan struct{} // first delivery blocks until closed; nil = open

	mu     sync.Mutex
	gated  bool
	counts map[string]int
}

func newCountingSink(gate chan struct{}) *countingSink {
	return &countingSink{gate: gate, gated: gate != nil, counts: make(map[string]int)}
}

func (s *countingSink) Deliver(shard int, user string, a *alert.Alert) error {
	s.mu.Lock()
	first := s.gated
	s.gated = false
	s.mu.Unlock()
	if first {
		<-s.gate
	}
	s.mu.Lock()
	s.counts[user+"/"+a.DedupKey()]++
	s.mu.Unlock()
	return nil
}

func (s *countingSink) count(user, key string) int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.counts[user+"/"+key]
}

// TestHubCrashBetweenRoutingAndMark kills the hub in the window the
// paper's dedup contract covers — after an alert is routed but before
// its DONE record lands — then restarts it on the same WAL and checks
// that every user's unprocessed alerts are replayed exactly once. The
// routed-but-unmarked alert is delivered twice with an identical
// DedupKey (the receiver-side duplicate the timestamp contract
// detects); everything else is delivered exactly once and nothing is
// lost.
func TestHubCrashBetweenRoutingAndMark(t *testing.T) {
	const users, perUser = 4, 3
	walPath := filepath.Join(t.TempDir(), "hub.wal")
	clk := clock.NewReal()
	journal := &faults.Journal{}
	crash := faults.NewFlag("hub-crash-before-mark")
	gate := make(chan struct{})
	sink := newCountingSink(gate)

	cfg := Config{
		Clock: clk, Sink: sink, WALPath: walPath,
		Shards: 1, QueueDepth: 64,
		Journal: journal, CrashBeforeMark: crash,
	}
	h1, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	addUsers(t, h1, users)
	if err := h1.Start(); err != nil {
		t.Fatal(err)
	}

	// Submit everything while the first delivery is gated, so the whole
	// workload is durably logged and queued when the crash fires.
	var keys []string // "user/dedupKey", submission order
	for i := 0; i < users*perUser; i++ {
		user := fmt.Sprintf("user-%d", i%users)
		a := portalAlert(i, clk.Now())
		if err := h1.Submit(user, a); err != nil {
			t.Fatal(err)
		}
		keys = append(keys, user+"/"+a.DedupKey())
	}
	// Arm the fault and let the first alert through: it is routed, then
	// the hub dies before MarkProcessed.
	crash.Set(true, clk.Now())
	close(gate)
	select {
	case <-h1.Stopped():
	case <-time.After(10 * time.Second):
		t.Fatal("hub did not die after fault injection")
	}
	if journal.Count(faults.KindFaultInjected) != 1 {
		t.Fatalf("fault-injected journal entries = %d, want 1", journal.Count(faults.KindFaultInjected))
	}
	if err := h1.Submit("user-0", portalAlert(999, clk.Now())); !errors.Is(err, ErrNotAccepting) {
		t.Fatalf("submit to killed hub = %v, want ErrNotAccepting", err)
	}
	if got := sink.count("user-0", keys2dedup(keys[0])); got != 1 {
		t.Fatalf("pre-crash deliveries of first alert = %d, want 1", got)
	}

	// Restart on the same WAL, fault cleared.
	crash.Set(false, clk.Now())
	cfg.Sink = sink
	h2, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	addUsers(t, h2, users)
	if err := h2.Start(); err != nil {
		t.Fatal(err)
	}
	if err := h2.Drain(); err != nil {
		t.Fatal(err)
	}

	// Every logged alert was unprocessed at the crash (the first was
	// routed but unmarked), so each is replayed exactly once.
	if got := h2.Counters().Get("replayed"); got != users*perUser {
		t.Fatalf("replayed = %d, want %d", got, users*perUser)
	}
	if got := journal.Count(faults.KindReplay); got != users*perUser {
		t.Fatalf("replay journal entries = %d, want %d", got, users*perUser)
	}
	// The routed-but-unmarked alert is the one duplicate: delivered
	// twice under the same DedupKey. Every other alert is delivered
	// exactly once.
	for i, uk := range keys {
		want := 1
		if i == 0 {
			want = 2
		}
		user, key, _ := cut(uk)
		if got := sink.count(user, key); got != want {
			t.Fatalf("alert %d (%s) delivered %d times, want %d", i, uk, got, want)
		}
	}
	// And the WAL is clean: nothing left to replay.
	l, err := plog.Open(walPath)
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	if un := l.Unprocessed(); len(un) != 0 {
		t.Fatalf("%d unprocessed WAL entries after recovery", len(un))
	}
	if l.Len() != users*perUser {
		t.Fatalf("WAL holds %d records, want %d", l.Len(), users*perUser)
	}
}

// TestHubRestartTombstonesOrphans checks that WAL entries for users no
// longer hosted are tombstoned, not replayed forever.
func TestHubRestartTombstonesOrphans(t *testing.T) {
	walPath := filepath.Join(t.TempDir(), "hub.wal")
	clk := clock.NewReal()
	gate := make(chan struct{})
	sink := newCountingSink(gate)
	crash := faults.NewFlag("crash")
	h1, err := New(Config{Clock: clk, Sink: sink, WALPath: walPath, Shards: 1, CrashBeforeMark: crash})
	if err != nil {
		t.Fatal(err)
	}
	b, err := h1.AddUser("ghost")
	if err != nil {
		t.Fatal(err)
	}
	b.Pipeline().Classifier.Accept(mab.SourceRule{Source: "portal", Extract: mab.ExtractNative})
	if err := h1.Start(); err != nil {
		t.Fatal(err)
	}
	if err := h1.Submit("ghost", portalAlert(1, clk.Now())); err != nil {
		t.Fatal(err)
	}
	crash.Set(true, clk.Now())
	close(gate)
	<-h1.Stopped()

	// Restart without re-registering "ghost".
	sink2 := newCountingSink(nil)
	h2, err := New(Config{Clock: clk, Sink: sink2, WALPath: walPath, Shards: 1})
	if err != nil {
		t.Fatal(err)
	}
	if err := h2.Start(); err != nil {
		t.Fatal(err)
	}
	if err := h2.Drain(); err != nil {
		t.Fatal(err)
	}
	if got := h2.Counters().Get("tombstoned"); got != 1 {
		t.Fatalf("tombstoned = %d, want 1", got)
	}
	if got := h2.Counters().Get("replayed"); got != 0 {
		t.Fatalf("replayed = %d, want 0", got)
	}
	l, err := plog.Open(walPath)
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	if un := l.Unprocessed(); len(un) != 0 {
		t.Fatalf("orphan entry not tombstoned: %d unprocessed", len(un))
	}
}

// cut splits "user/dedupKey" on the first slash.
func cut(uk string) (user, key string, ok bool) {
	for i := 0; i < len(uk); i++ {
		if uk[i] == '/' {
			return uk[:i], uk[i+1:], true
		}
	}
	return uk, "", false
}

func keys2dedup(uk string) string {
	_, key, _ := cut(uk)
	return key
}
