package hub

import (
	"errors"
	"fmt"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"simba/internal/alert"
	"simba/internal/clock"
	"simba/internal/dist"
	"simba/internal/mab"
)

// addUsers registers n tenants user-0..n-1, each accepting the
// "portal" source and mapping its own keyword to a personal category.
func addUsers(t testing.TB, h *Hub, n int) {
	t.Helper()
	for i := 0; i < n; i++ {
		b, err := h.AddUser(fmt.Sprintf("user-%d", i))
		if err != nil {
			t.Fatal(err)
		}
		b.Pipeline().Classifier.Accept(mab.SourceRule{Source: "portal", Extract: mab.ExtractNative})
		b.Pipeline().Aggregator.Map("stocks", "Investment")
	}
}

func portalAlert(i int, at time.Time) *alert.Alert {
	return &alert.Alert{
		ID:       fmt.Sprintf("a-%d", i),
		Source:   "portal",
		Keywords: []string{"stocks"},
		Subject:  "quote update",
		Body:     "MSFT moved",
		Urgency:  alert.UrgencyNormal,
		Created:  at,
	}
}

func newTestHub(t testing.TB, cfg Config) *Hub {
	t.Helper()
	if cfg.Clock == nil {
		cfg.Clock = clock.NewReal()
	}
	if cfg.WALPath == "" {
		cfg.WALPath = filepath.Join(t.TempDir(), "hub.wal")
	}
	h, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = h.Drain() })
	return h
}

func TestHubRoutesThousandsOfTenants(t *testing.T) {
	const users, perUser = 1000, 3
	clk := clock.NewReal()
	sink := NewSimSink(dist.NewRNG(7), 8, nil, 0)
	h := newTestHub(t, Config{Clock: clk, Sink: sink, Shards: 8, QueueDepth: 512})
	addUsers(t, h, users)
	if err := h.Start(); err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for w := 0; w < 16; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := w; i < users*perUser; i += 16 {
				user := fmt.Sprintf("user-%d", i%users)
				a := portalAlert(i, clk.Now())
				for {
					err := h.Submit(user, a)
					var over *OverloadError
					if errors.As(err, &over) {
						time.Sleep(over.RetryAfter)
						continue
					}
					if err != nil {
						t.Errorf("submit: %v", err)
					}
					break
				}
			}
		}(w)
	}
	wg.Wait()
	if err := h.Drain(); err != nil {
		t.Fatal(err)
	}
	if got := sink.Delivered(); got != users*perUser {
		t.Fatalf("delivered %d, want %d", got, users*perUser)
	}
	if got := h.Counters().Get("routed"); got != users*perUser {
		t.Fatalf("routed %d, want %d", got, users*perUser)
	}
	if h.Latency().Count() != users*perUser {
		t.Fatalf("latency samples %d, want %d", h.Latency().Count(), users*perUser)
	}
	st := h.Stats()
	if st.Users != users {
		t.Fatalf("Stats.Users = %d", st.Users)
	}
	for _, sh := range st.Shards {
		if sh.Depth != 0 {
			t.Fatalf("shard %d depth %d after drain", sh.Shard, sh.Depth)
		}
	}
}

func TestHubGroupCommitCutsFsyncs(t *testing.T) {
	const users, alerts = 200, 3000
	clk := clock.NewReal()
	sink := NewSimSink(dist.NewRNG(3), 4, nil, 0)
	h := newTestHub(t, Config{
		Clock: clk, Sink: sink, Shards: 4, QueueDepth: 1024,
		CommitWindow: time.Millisecond,
	})
	addUsers(t, h, users)
	if err := h.Start(); err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for w := 0; w < 64; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := w; i < alerts; i += 64 {
				user := fmt.Sprintf("user-%d", i%users)
				a := portalAlert(i, clk.Now())
				for {
					err := h.Submit(user, a)
					var over *OverloadError
					if errors.As(err, &over) {
						time.Sleep(over.RetryAfter)
						continue
					}
					if err != nil {
						t.Errorf("submit: %v", err)
					}
					break
				}
			}
		}(w)
	}
	wg.Wait()
	if err := h.Drain(); err != nil {
		t.Fatal(err)
	}
	appends, syncs := h.WALAppends(), h.WALSyncs()
	if appends != alerts*2 {
		t.Fatalf("WAL appends = %d, want %d (RECV+DONE per alert)", appends, alerts*2)
	}
	// Per-append plog would fsync once per append. The acceptance bar
	// is ≥10× fewer fsyncs per alert.
	if ratio := float64(appends) / float64(syncs); ratio < 10 {
		t.Fatalf("group commit ratio %.1f appends/fsync (syncs=%d), want >= 10", ratio, syncs)
	}
}

func TestHubBackpressureRejectsBeforeLogging(t *testing.T) {
	clk := clock.NewReal()
	release := make(chan struct{})
	var mu sync.Mutex
	deliveredKeys := make(map[string]int)
	sink := FuncSink(func(shard int, user string, a *alert.Alert) error {
		<-release
		mu.Lock()
		deliveredKeys[user+"/"+a.DedupKey()]++
		mu.Unlock()
		return nil
	})
	h := newTestHub(t, Config{Clock: clk, Sink: sink, Shards: 1, QueueDepth: 3})
	b, err := h.AddUser("solo")
	if err != nil {
		t.Fatal(err)
	}
	b.Pipeline().Classifier.Accept(mab.SourceRule{Source: "portal", Extract: mab.ExtractNative})
	if err := h.Start(); err != nil {
		t.Fatal(err)
	}
	// Fill the queue (the loop blocks on the gated sink), then overfill.
	var acked []*alert.Alert
	var overloads int
	for i := 0; i < 10; i++ {
		a := portalAlert(i, clk.Now())
		err := h.Submit("solo", a)
		var over *OverloadError
		switch {
		case err == nil:
			acked = append(acked, a)
		case errors.As(err, &over):
			overloads++
			if over.RetryAfter <= 0 {
				t.Fatalf("overload with no retry hint: %+v", over)
			}
			// Invariant: a rejected alert was never logged, so the
			// sender's retry cannot be treated as a duplicate.
			if h.wal.Has("solo" + keySep + a.DedupKey()) {
				t.Fatalf("rejected alert %s was logged", a.DedupKey())
			}
		default:
			t.Fatal(err)
		}
	}
	if overloads == 0 {
		t.Fatal("queue depth 3 never overloaded across 10 submits")
	}
	if len(acked) == 0 {
		t.Fatal("no submits admitted")
	}
	close(release)
	if err := h.Drain(); err != nil {
		t.Fatal(err)
	}
	// Every acknowledged alert was delivered — no silent drops.
	mu.Lock()
	defer mu.Unlock()
	for _, a := range acked {
		if deliveredKeys["solo/"+a.DedupKey()] != 1 {
			t.Fatalf("acked alert %s delivered %d times, want 1",
				a.DedupKey(), deliveredKeys["solo/"+a.DedupKey()])
		}
	}
	if got := h.Counters().Get("rejects-overload"); got != int64(overloads) {
		t.Fatalf("rejects-overload counter = %d, want %d", got, overloads)
	}
}

func TestHubDuplicateSubmitIsIdempotent(t *testing.T) {
	clk := clock.NewReal()
	sink := NewSimSink(dist.NewRNG(5), 2, nil, 0)
	h := newTestHub(t, Config{Clock: clk, Sink: sink, Shards: 2})
	addUsers(t, h, 1)
	if err := h.Start(); err != nil {
		t.Fatal(err)
	}
	a := portalAlert(1, clk.Now())
	if err := h.Submit("user-0", a); err != nil {
		t.Fatal(err)
	}
	// The sender's ack got lost; it resends the same alert.
	if err := h.Submit("user-0", a); err != nil {
		t.Fatalf("duplicate submit = %v, want nil (idempotent re-ack)", err)
	}
	if err := h.Drain(); err != nil {
		t.Fatal(err)
	}
	if got := h.Counters().Get("duplicates"); got != 1 {
		t.Fatalf("duplicates = %d, want 1", got)
	}
	if got := sink.DeliveryCount("user-0", a.DedupKey()); got != 1 {
		t.Fatalf("duplicate submit delivered %d times, want 1", got)
	}
}

func TestHubRejectsUnknownUserAndInvalidAlert(t *testing.T) {
	clk := clock.NewReal()
	h := newTestHub(t, Config{Clock: clk, Sink: NewSimSink(dist.NewRNG(1), 1, nil, 0), Shards: 1})
	addUsers(t, h, 1)
	if err := h.Start(); err != nil {
		t.Fatal(err)
	}
	if err := h.Submit("nobody", portalAlert(1, clk.Now())); !errors.Is(err, ErrUnknownUser) {
		t.Fatalf("unknown user error = %v", err)
	}
	if err := h.Submit("user-0", &alert.Alert{}); err == nil {
		t.Fatal("invalid alert accepted")
	}
}

func TestHubNotAcceptingBeforeStartAndAfterDrain(t *testing.T) {
	clk := clock.NewReal()
	h := newTestHub(t, Config{Clock: clk, Sink: NewSimSink(dist.NewRNG(1), 1, nil, 0), Shards: 1})
	addUsers(t, h, 1)
	if err := h.Submit("user-0", portalAlert(1, clk.Now())); !errors.Is(err, ErrNotAccepting) {
		t.Fatalf("pre-start submit = %v, want ErrNotAccepting", err)
	}
	if err := h.Start(); err != nil {
		t.Fatal(err)
	}
	if err := h.Drain(); err != nil {
		t.Fatal(err)
	}
	if err := h.Submit("user-0", portalAlert(2, clk.Now())); !errors.Is(err, ErrNotAccepting) {
		t.Fatalf("post-drain submit = %v, want ErrNotAccepting", err)
	}
}

func TestHubTenantIsolationByPipeline(t *testing.T) {
	clk := clock.NewReal()
	sink := NewSimSink(dist.NewRNG(9), 2, nil, 0)
	h := newTestHub(t, Config{Clock: clk, Sink: sink, Shards: 2})
	accepts, err := h.AddUser("accepts")
	if err != nil {
		t.Fatal(err)
	}
	accepts.Pipeline().Classifier.Accept(mab.SourceRule{Source: "portal", Extract: mab.ExtractNative})
	if _, err := h.AddUser("rejects"); err != nil {
		t.Fatal(err) // pipeline left empty: accepts nothing
	}
	quiet, err := h.AddUser("quiet")
	if err != nil {
		t.Fatal(err)
	}
	quiet.Pipeline().Classifier.Accept(mab.SourceRule{Source: "portal", Extract: mab.ExtractNative})
	quiet.Pipeline().Filter.SetEnabled(mab.DefaultCategory, false)
	if err := h.Start(); err != nil {
		t.Fatal(err)
	}
	for i, user := range []string{"accepts", "rejects", "quiet"} {
		if err := h.Submit(user, portalAlert(i, clk.Now())); err != nil {
			t.Fatal(err)
		}
	}
	if err := h.Drain(); err != nil {
		t.Fatal(err)
	}
	if accepts.Delivered() != 1 || accepts.Routed() != 1 {
		t.Fatalf("accepts: delivered=%d routed=%d", accepts.Delivered(), accepts.Routed())
	}
	if got := h.Counters().Get("rejected"); got != 1 {
		t.Fatalf("rejected = %d, want 1 (tenant with empty classifier)", got)
	}
	if got := h.Counters().Get("filtered"); got != 1 {
		t.Fatalf("filtered = %d, want 1 (tenant with disabled category)", got)
	}
	// All three are marked processed either way — verdicts are final.
	if un := h.wal.Unprocessed(); len(un) != 0 {
		t.Fatalf("%d unprocessed after drain", len(un))
	}
}

func TestHubAddUserValidation(t *testing.T) {
	h := newTestHub(t, Config{Clock: clock.NewReal(), Sink: NewSimSink(dist.NewRNG(1), 1, nil, 0)})
	if _, err := h.AddUser(""); err == nil {
		t.Fatal("empty user accepted")
	}
	if _, err := h.AddUser("bad\x1fuser"); err == nil {
		t.Fatal("reserved separator accepted")
	}
	if _, err := h.AddUser("dup"); err != nil {
		t.Fatal(err)
	}
	if _, err := h.AddUser("dup"); err == nil {
		t.Fatal("duplicate user accepted")
	}
}

func TestNewValidatesConfig(t *testing.T) {
	if _, err := New(Config{}); err == nil {
		t.Fatal("empty config accepted")
	}
	if _, err := New(Config{Clock: clock.NewReal(), Sink: NewSimSink(dist.NewRNG(1), 1, nil, 0)}); err == nil {
		t.Fatal("missing WALPath accepted")
	}
}
