package hub

import (
	"sync"
	"sync/atomic"
	"time"

	"simba/internal/dist"
)

// shard owns a single-goroutine event loop and a bounded inbound
// queue. depth counts admitted-but-unfinished alerts (queued plus the
// one being processed plus those mid-admission waiting on the WAL), so
// reservation happens before the pessimistic log and a reserved slot
// guarantees the later enqueue cannot block or drop.
type shard struct {
	id  int
	cap int64
	q   chan *envelope
	rng *dist.RNG // forked per shard; simulated substrates draw from it

	// delivery is the shard's asynchronous delivery stage: the loop
	// routes, the stage delivers. Wired by Hub.New.
	delivery *deliveryStage

	depth atomic.Int64
	peak  atomic.Int64

	mu     sync.RWMutex
	closed bool
}

func newShard(id, queueDepth int, rng *dist.RNG) *shard {
	return &shard{
		id:  id,
		cap: int64(queueDepth),
		q:   make(chan *envelope, queueDepth),
		rng: rng,
	}
}

// reserve claims one queue slot, failing when the shard is at capacity.
func (s *shard) reserve() bool {
	for {
		d := s.depth.Load()
		if d >= s.cap {
			return false
		}
		if s.depth.CompareAndSwap(d, d+1) {
			s.notePeak(d + 1)
			return true
		}
	}
}

// reserveN bulk-claims up to n queue slots with a single successful
// CAS, returning how many it got (possibly zero) — the batched-ingest
// admission primitive. Partial grants let the rest of a burst fail
// with OverloadError individually instead of rejecting the whole
// burst.
func (s *shard) reserveN(n int64) int64 {
	for {
		d := s.depth.Load()
		grant := s.cap - d
		if grant <= 0 {
			return 0
		}
		if grant > n {
			grant = n
		}
		if s.depth.CompareAndSwap(d, d+grant) {
			s.notePeak(d + grant)
			return grant
		}
	}
}

// reserveBlocking claims a slot, waiting for one to free up. Only used
// during startup replay, while the loops are guaranteed to be draining.
func (s *shard) reserveBlocking() {
	for !s.reserve() {
		time.Sleep(time.Millisecond)
	}
}

// release returns a slot.
func (s *shard) release() { s.depth.Add(-1) }

func (s *shard) notePeak(d int64) {
	for {
		p := s.peak.Load()
		if d <= p || s.peak.CompareAndSwap(p, d) {
			return
		}
	}
}

// enqueue hands an admitted envelope to the loop. The caller must hold
// a reservation, so the buffered send cannot block; the read lock
// fences against close so a graceful drain never races a send.
func (s *shard) enqueue(env *envelope) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	if s.closed {
		// Drain raced us after reservation: the alert is durable and
		// unmarked, so the next incarnation replays it. Nothing is
		// silently lost.
		s.depth.Add(-1)
		return
	}
	s.q <- env
}

// close ends intake for a graceful drain; the loop exits after the
// queue empties.
func (s *shard) close() {
	s.mu.Lock()
	defer s.mu.Unlock()
	if !s.closed {
		s.closed = true
		close(s.q)
	}
}

// retryHint estimates how long the sender should back off: the queue
// needs roughly a commit window per batch of queued work to drain, plus
// jitter from the shard's own RNG so a thundering herd of rejected
// senders does not return in lockstep.
func (s *shard) retryHint(window time.Duration) time.Duration {
	if window <= 0 {
		window = 5 * time.Millisecond
	}
	base := window + time.Duration(s.depth.Load())*time.Millisecond
	jitter := time.Duration(s.rng.Float64() * float64(base) / 2)
	return base + jitter
}
