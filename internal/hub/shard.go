package hub

import (
	"sync"
	"sync/atomic"
	"time"

	"simba/internal/dist"
	"simba/internal/metrics"
)

// ShardState is one shard's lifecycle state. A shard is the hub's unit
// of recovery: it can be killed and replayed, or gracefully recycled,
// while its siblings keep serving.
type ShardState int32

// Shard lifecycle states.
const (
	// ShardIdle: created, loop not yet launched.
	ShardIdle ShardState = iota
	// ShardRunning: loop live, admission open.
	ShardRunning
	// ShardQuiescing: admission closed, draining queued and in-flight
	// work for a graceful rejuvenation.
	ShardQuiescing
	// ShardRestarting: the current generation was killed; the next one
	// is replaying the shard's WAL backlog before admission reopens.
	ShardRestarting
	// ShardStopped: the hub is draining or killed; the shard will not
	// run again in this process.
	ShardStopped
)

// String renders the state for stats, journals, and the ops plane.
func (s ShardState) String() string {
	switch s {
	case ShardIdle:
		return "idle"
	case ShardRunning:
		return "running"
	case ShardQuiescing:
		return "quiescing"
	case ShardRestarting:
		return "restarting"
	case ShardStopped:
		return "stopped"
	default:
		return "unknown"
	}
}

// shardGen is one incarnation of a shard's restartable machinery: the
// inbound queue, the kill signal, the loop-exit latch, and the delivery
// stage. Killing a shard abandons its generation wholesale — a wedged
// loop or a stuck delivery worker keeps the dead generation, while the
// replacement generation gets fresh channels and a fresh stage, so the
// two can never share a queue or a timer wheel.
type shardGen struct {
	n int64 // generation number, monotone per shard

	q chan *envelope
	// killed is closed to abandon the generation: the loop exits, the
	// delivery workers stop between deliveries, and everything undone
	// stays unprocessed in the WAL for replay. Hub-wide Kill closes the
	// current generation of every shard; a targeted restart closes one.
	killed   chan struct{}
	killOnce sync.Once
	// done is closed when the generation's loop goroutine has exited —
	// the drain path waits on it instead of a process-wide WaitGroup so
	// an abandoned (possibly wedged) old generation cannot block
	// shutdown.
	done chan struct{}

	delivery *deliveryStage

	// closed marks the queue closed for intake; guarded by shard.mu.
	closed bool

	// replaySuppress is the set of WAL keys this generation replayed at
	// birth (kill+replay restart only; nil otherwise). A submitter that
	// reserved a slot on the previous generation and enqueues after the
	// swap would otherwise double-route an alert the replay already
	// owns; enqueue drops those (the replayed copy delivers). The map is
	// read-only after the generation is published — no lock needed — and
	// can never suppress a legitimate later submission, because the WAL
	// dedup (Has) re-acks any resubmission of a logged key without
	// enqueueing it.
	replaySuppress map[string]struct{}
}

// kill abandons the generation. Idempotent.
func (g *shardGen) kill() {
	g.killOnce.Do(func() { close(g.killed) })
}

// shard owns a single-goroutine event loop and a bounded inbound
// queue. depth counts admitted-but-unfinished alerts (queued plus the
// one being processed plus those mid-admission waiting on the WAL), so
// reservation happens before the pessimistic log and a reserved slot
// guarantees the later enqueue cannot block or drop.
//
// The loop, queue, and delivery stage live in the current shardGen;
// the shard itself carries only what must survive a restart: the
// admission gauge, the lifecycle state, the progress heartbeat, and
// the restart counters.
type shard struct {
	id  int
	cap int64
	rng *dist.RNG // forked per shard; simulated substrates draw from it

	depth atomic.Int64
	peak  atomic.Int64
	// inflight gauges the delivery stage's concurrently executing
	// deliveries; it lives on the shard (not the stage) so the peak
	// survives generation swaps.
	inflight metrics.Gauge

	// Supervision-facing atomics: the health probe reads exactly these,
	// never a lock — a probe of a wedged shard must not block behind the
	// thing that wedged it.
	state    atomic.Int32 // ShardState
	gen      atomic.Int64 // current generation number
	progress atomic.Int64 // unix nanos of the last loop/delivery progress beat

	restarts      atomic.Int64 // kill+replay restarts
	rejuvenations atomic.Int64 // graceful recycles

	// lifeMu serializes lifecycle transitions (restart, rejuvenate,
	// drain-close) per shard; the hot path never touches it.
	lifeMu sync.Mutex

	mu  sync.RWMutex // guards cur and cur.closed
	cur *shardGen
}

func newShard(id, queueDepth int, rng *dist.RNG) *shard {
	return &shard{
		id:  id,
		cap: int64(queueDepth),
		rng: rng,
	}
}

// newGen builds the shard's next generation (queue capacity matches
// admission capacity, so a held reservation guarantees a non-blocking
// enqueue). The caller publishes it under mu.
func (s *shard) newGen(n int64, suppress map[string]struct{}) *shardGen {
	return &shardGen{
		n:              n,
		q:              make(chan *envelope, s.cap),
		killed:         make(chan struct{}),
		done:           make(chan struct{}),
		replaySuppress: suppress,
	}
}

// current returns the live generation.
func (s *shard) current() *shardGen {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.cur
}

// beat records loop/delivery progress at now. Probes compare this
// against the staleness budget; it is the only supervision cost on the
// hot path (one atomic store per routed batch / completed delivery).
func (s *shard) beat(now time.Time) { s.progress.Store(now.UnixNano()) }

// lastProgress returns the most recent beat (zero time if none).
func (s *shard) lastProgress() time.Time {
	n := s.progress.Load()
	if n == 0 {
		return time.Time{}
	}
	return time.Unix(0, n)
}

// setState publishes a lifecycle transition.
func (s *shard) setState(st ShardState) { s.state.Store(int32(st)) }

// State returns the shard's lifecycle state (lock-free).
func (s *shard) State() ShardState { return ShardState(s.state.Load()) }

// Health is a shard's lock-free supervision snapshot: everything a
// watchdog probe or invariant check needs, read from atomics only.
type Health struct {
	Shard         int
	State         ShardState
	Generation    int64
	Depth         int64
	InFlight      int64
	LastProgress  time.Time
	Restarts      int64
	Rejuvenations int64
}

// health snapshots the shard's supervision atomics. It never takes
// shard locks, so it is safe to call against a wedged shard.
func (s *shard) health() Health {
	return Health{
		Shard:         s.id,
		State:         s.State(),
		Generation:    s.gen.Load(),
		Depth:         s.depth.Load(),
		InFlight:      s.inflight.Load(),
		LastProgress:  s.lastProgress(),
		Restarts:      s.restarts.Load(),
		Rejuvenations: s.rejuvenations.Load(),
	}
}

// reserve claims one queue slot, failing when the shard is at capacity
// or not accepting (quiescing, restarting, stopped).
func (s *shard) reserve() bool {
	if s.State() != ShardRunning {
		return false
	}
	return s.reserveSlot()
}

// reserveSlot claims one slot regardless of lifecycle state — the
// replay path admits into a ShardRestarting shard through this.
func (s *shard) reserveSlot() bool {
	for {
		d := s.depth.Load()
		if d >= s.cap {
			return false
		}
		if s.depth.CompareAndSwap(d, d+1) {
			s.notePeak(d + 1)
			return true
		}
	}
}

// reserveN bulk-claims up to n queue slots with a single successful
// CAS, returning how many it got (possibly zero) — the batched-ingest
// admission primitive. Partial grants let the rest of a burst fail
// with OverloadError individually instead of rejecting the whole
// burst. A shard that is not Running grants nothing: restart and
// rejuvenation close admission the same way a full queue does, and the
// sender's retry-after-hint loop rides it out.
func (s *shard) reserveN(n int64) int64 {
	if s.State() != ShardRunning {
		return 0
	}
	for {
		d := s.depth.Load()
		grant := s.cap - d
		if grant <= 0 {
			return 0
		}
		if grant > n {
			grant = n
		}
		if s.depth.CompareAndSwap(d, d+grant) {
			s.notePeak(d + grant)
			return grant
		}
	}
}

// reserveBlocking claims a slot, waiting for one to free up,
// regardless of lifecycle state. Only used by replay, while the
// generation's loop is guaranteed to be draining.
func (s *shard) reserveBlocking() {
	for !s.reserveSlot() {
		time.Sleep(time.Millisecond)
	}
}

// release returns a slot. It floors at zero: after a kill+replay
// restart resets the gauge, a straggling worker from the abandoned
// generation may still release a reservation the reset already wiped,
// and a negative depth would both leak admission capacity and trip the
// queue-depth invariant.
func (s *shard) release() {
	for {
		d := s.depth.Load()
		if d <= 0 {
			return
		}
		if s.depth.CompareAndSwap(d, d-1) {
			return
		}
	}
}

func (s *shard) notePeak(d int64) {
	for {
		p := s.peak.Load()
		if d <= p || s.peak.CompareAndSwap(p, d) {
			return
		}
	}
}

// enqueue hands an admitted envelope to the current generation's loop.
// The caller must hold a reservation, so the buffered send cannot
// block; the read lock fences against close and generation swap so a
// graceful drain never races a send.
func (s *shard) enqueue(env *envelope) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	g := s.cur
	if g == nil || g.closed {
		// Drain (or a kill+replay restart) raced us after reservation:
		// the alert is durable and unmarked, so the next incarnation —
		// of the shard or of the process — replays it. Nothing is
		// silently lost.
		s.release()
		return
	}
	if g.replaySuppress != nil {
		if _, replayed := g.replaySuppress[env.key]; replayed {
			// This generation already replayed the alert from the WAL:
			// the submitter reserved on the previous generation and lost
			// the race with the restart. The replayed copy owns delivery;
			// routing this one too would deliver it twice.
			s.release()
			return
		}
	}
	g.q <- env
}

// enqueueReplay is enqueue for the replay path itself: it skips the
// suppression check (the replayed copies are exactly the keys in the
// suppression set).
func (s *shard) enqueueReplay(env *envelope) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	g := s.cur
	if g == nil || g.closed {
		s.release()
		return
	}
	g.q <- env
}

// closeIntake ends the current generation's intake for a graceful
// drain; the loop exits after the queue empties.
func (s *shard) closeIntake() {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.cur != nil && !s.cur.closed {
		s.cur.closed = true
		close(s.cur.q)
	}
}

// killCurrent abandons the current generation (hub-wide Kill).
func (s *shard) killCurrent() {
	s.mu.RLock()
	g := s.cur
	s.mu.RUnlock()
	if g != nil {
		g.kill()
	}
}

// retryHint estimates how long the sender should back off: the queue
// needs roughly a commit window per batch of queued work to drain, plus
// jitter from the shard's own RNG so a thundering herd of rejected
// senders does not return in lockstep.
func (s *shard) retryHint(window time.Duration) time.Duration {
	if window <= 0 {
		window = 5 * time.Millisecond
	}
	base := window + time.Duration(s.depth.Load())*time.Millisecond
	jitter := time.Duration(s.rng.Float64() * float64(base) / 2)
	return base + jitter
}
