package hub

import (
	"errors"
	"fmt"
	"path/filepath"
	"reflect"
	"sync"
	"testing"
	"time"

	"simba/internal/alert"
	"simba/internal/clock"
	"simba/internal/dist"
	"simba/internal/faults"
	"simba/internal/plog"
)

// batchStream builds one user's deterministic alert mix: mostly routed
// "stocks" alerts, every 5th re-submitted as a duplicate, every 7th
// filtered (disabled "Muted" category), every 11th rejected (source
// the classifier does not accept).
func batchStream(user string, n int, at time.Time) []Submission {
	var subs []Submission
	for i := 0; i < n; i++ {
		a := portalAlert(i, at)
		a.ID = fmt.Sprintf("a-%s-%d", user, i)
		switch {
		case i > 0 && i%11 == 0:
			a.Source = "spam-bot"
		case i > 0 && i%7 == 0:
			a.Keywords = []string{"muted"}
		}
		subs = append(subs, Submission{User: user, Alert: a})
		if i%5 == 0 {
			subs = append(subs, Submission{User: user, Alert: a.Clone()})
		}
	}
	return subs
}

// addBatchUsers is addUsers plus the muted-category wiring the
// batchStream mix exercises.
func addBatchUsers(t testing.TB, h *Hub, n int) {
	t.Helper()
	addUsers(t, h, n)
	for i := 0; i < n; i++ {
		b, ok := h.buddy(fmt.Sprintf("user-%d", i))
		if !ok {
			t.Fatalf("user-%d missing", i)
		}
		b.Pipeline().Aggregator.Map("muted", "Muted")
		b.Pipeline().Filter.SetEnabled("Muted", false)
	}
}

// equivalenceCounters picks the counters the equivalence test compares.
var equivalenceCounters = []string{
	"received", "duplicates", "routed", "rejected", "filtered",
	"delivered", "rejects-overload", "mark-failed", "undeliverable",
}

// TestHubSubmitBatchMatchesSubmit is the equivalence property test: the
// same alert stream driven through Submit one-at-a-time, through
// SubmitBatch bursts of varied sizes, and through SubmitBatchAsync with
// a sliding window of tickets in flight must yield identical hub
// counters, identical per-user delivery order, and identical WAL record
// sets. Run under -race in CI: one goroutine per user keeps each user's
// submission order fixed while cross-user interleaving races freely.
func TestHubSubmitBatchMatchesSubmit(t *testing.T) {
	const users, perUser = 24, 30
	clk := clock.NewReal()

	// The same streams drive both variants; nothing in the ingest path
	// mutates a submitted alert (routing annotates the hub's private
	// clone), so sharing the pointers is safe.
	streams := make([][]Submission, users)
	var wantKeys []string
	for u := 0; u < users; u++ {
		user := fmt.Sprintf("user-%d", u)
		streams[u] = batchStream(user, perUser, clk.Now())
		seen := make(map[string]bool)
		for _, s := range streams[u] {
			key := s.User + keySep + s.Alert.DedupKey()
			if !seen[key] {
				seen[key] = true
				wantKeys = append(wantKeys, key)
			}
		}
	}

	type result struct {
		counters  map[string]int64
		sequences map[string][]string
		walLive   int
	}
	run := func(name string, drive func(h *Hub, stream []Submission)) result {
		sink := newOrderSink(dist.NewRNG(23), 4, 200)
		walPath := filepath.Join(t.TempDir(), name+".wal")
		h := newTestHub(t, Config{
			Clock: clk, Sink: sink, WALPath: walPath,
			Shards: 4, QueueDepth: 1024,
			CommitWindow: 500 * time.Microsecond,
		})
		addBatchUsers(t, h, users)
		if err := h.Start(); err != nil {
			t.Fatal(err)
		}
		var wg sync.WaitGroup
		for u := 0; u < users; u++ {
			wg.Add(1)
			go func(stream []Submission) {
				defer wg.Done()
				drive(h, stream)
			}(streams[u])
		}
		wg.Wait()
		if err := h.Drain(); err != nil {
			t.Fatal(err)
		}
		r := result{
			counters:  make(map[string]int64),
			sequences: make(map[string][]string),
		}
		for _, c := range equivalenceCounters {
			r.counters[c] = h.Counters().Get(c)
		}
		for u := 0; u < users; u++ {
			user := fmt.Sprintf("user-%d", u)
			r.sequences[user] = sink.sequence(user)
		}
		// OpenLanes discovers every lane the 4-shard hub wrote, not just
		// the base (lane 0) journal.
		l, err := plog.OpenLanes(walPath, 1, plog.GroupOptions{})
		if err != nil {
			t.Fatal(err)
		}
		defer l.Close()
		r.walLive = l.Len()
		if un := l.Unprocessed(); len(un) != 0 {
			t.Fatalf("%s: %d unprocessed WAL records after drain", name, len(un))
		}
		for _, key := range wantKeys {
			if !l.Has(key) || !l.IsProcessed(key) {
				t.Fatalf("%s: WAL missing processed record for %q", name, key)
			}
		}
		return r
	}

	// Queue capacity (4 shards × 1024) exceeds the whole workload, so
	// overload is impossible and neither variant needs a retry loop —
	// which would otherwise let a retried burst reorder a user's stream.
	seq := run("submit", func(h *Hub, stream []Submission) {
		for _, s := range stream {
			if err := h.Submit(s.User, s.Alert); err != nil {
				t.Errorf("submit %s: %v", s.User, err)
			}
		}
	})
	burstSizes := []int{7, 1, 16, 64, 3} // varied, including 1 and RouteBatch-sized
	batch := run("submit-batch", func(h *Hub, stream []Submission) {
		for next, si := 0, 0; next < len(stream); si++ {
			end := next + burstSizes[si%len(burstSizes)]
			if end > len(stream) {
				end = len(stream)
			}
			for i, err := range h.SubmitBatch(stream[next:end]) {
				if err != nil {
					t.Errorf("submit batch %s: %v", stream[next+i].User, err)
				}
			}
			next = end
		}
	})
	// Pipelined: up to asyncDepth bursts in flight per user; the ticket
	// window preserves the user's submission order because bursts stage
	// in submit order and each lane resolves FIFO.
	async := run("submit-async", func(h *Hub, stream []Submission) {
		const asyncDepth = 4
		var inflight []*Ticket
		settle := func(tk *Ticket) {
			for _, err := range tk.Wait() {
				if err != nil {
					t.Errorf("submit async: %v", err)
				}
			}
		}
		for next, si := 0, 0; next < len(stream); si++ {
			end := next + burstSizes[si%len(burstSizes)]
			if end > len(stream) {
				end = len(stream)
			}
			inflight = append(inflight, h.SubmitBatchAsync(stream[next:end], nil))
			if len(inflight) >= asyncDepth {
				settle(inflight[0])
				inflight = inflight[1:]
			}
			next = end
		}
		for _, tk := range inflight {
			settle(tk)
		}
	})

	for name, got := range map[string]result{"submitBatch": batch, "submitBatchAsync": async} {
		if !reflect.DeepEqual(seq.counters, got.counters) {
			t.Errorf("counters diverge:\n  submit:  %v\n  %s: %v", seq.counters, name, got.counters)
		}
		for u := 0; u < users; u++ {
			user := fmt.Sprintf("user-%d", u)
			if !reflect.DeepEqual(seq.sequences[user], got.sequences[user]) {
				t.Errorf("%s delivery order diverges:\n  submit:  %v\n  %s: %v",
					user, seq.sequences[user], name, got.sequences[user])
			}
		}
		if seq.walLive != got.walLive {
			t.Errorf("WAL record counts diverge: submit=%d %s=%d", seq.walLive, name, got.walLive)
		}
	}
}

// TestHubCrashBetweenBatchFsyncAndEnqueue arms the batched-ingest
// fault: SubmitBatch makes a burst durable and acknowledges it, then
// the hub dies before enqueuing any entry. The next incarnation must
// replay and deliver every acknowledged alert exactly once, in
// per-user submission order, and re-submitting the burst afterwards
// must dedup — no second delivery.
func TestHubCrashBetweenBatchFsyncAndEnqueue(t *testing.T) {
	const users, perUser = 8, 6
	clk := clock.NewReal()
	walPath := filepath.Join(t.TempDir(), "crash.wal")
	crash := faults.NewFlag("crash-after-batch-fsync")
	journal := &faults.Journal{}
	sink1 := newOrderSink(dist.NewRNG(31), 4, 0)
	h1, err := New(Config{
		Clock: clk, Sink: sink1, WALPath: walPath, Shards: 4, QueueDepth: 256,
		CrashAfterBatchFsync: crash, Journal: journal,
	})
	if err != nil {
		t.Fatal(err)
	}
	addUsers(t, h1, users)
	if err := h1.Start(); err != nil {
		t.Fatal(err)
	}

	// The crashing burst is the hub's only traffic, so incarnation 2's
	// delivery counts are unambiguous.
	var burst []Submission
	for u := 0; u < users; u++ {
		user := fmt.Sprintf("user-%d", u)
		for i := 0; i < perUser; i++ {
			a := portalAlert(i, clk.Now())
			a.ID = fmt.Sprintf("a-%s-%d", user, i)
			burst = append(burst, Submission{User: user, Alert: a})
		}
	}
	crash.Set(true, clk.Now())
	for i, err := range h1.SubmitBatch(burst) {
		if err != nil {
			t.Fatalf("burst entry %d not acknowledged despite durable batch: %v", i, err)
		}
	}
	select {
	case <-h1.Stopped():
	case <-time.After(15 * time.Second):
		t.Fatal("hub did not stop after injected crash")
	}
	if got := journal.Count(faults.KindFaultInjected); got != 1 {
		t.Fatalf("journaled %d injected faults, want 1", got)
	}
	for u := 0; u < users; u++ {
		if got := sink1.sequence(fmt.Sprintf("user-%d", u)); len(got) != 0 {
			t.Fatalf("incarnation 1 delivered %v inside the crash window", got)
		}
	}

	// Incarnation 2: replay covers the acknowledged-but-unrouted burst.
	crash.Set(false, clk.Now())
	sink2 := newOrderSink(dist.NewRNG(37), 4, 0)
	h2, err := New(Config{Clock: clk, Sink: sink2, WALPath: walPath, Shards: 4, QueueDepth: 256})
	if err != nil {
		t.Fatal(err)
	}
	addUsers(t, h2, users)
	if err := h2.Start(); err != nil {
		t.Fatal(err)
	}
	if got := h2.Counters().Get("replayed"); got != int64(len(burst)) {
		t.Fatalf("replayed = %d, want %d", got, len(burst))
	}
	// Post-dedup: re-submitting the acked burst re-acks idempotently.
	for i, err := range h2.SubmitBatch(burst) {
		if err != nil {
			t.Fatalf("re-submit entry %d: %v", i, err)
		}
	}
	if got := h2.Counters().Get("duplicates"); got != int64(len(burst)) {
		t.Fatalf("duplicates = %d, want %d", got, len(burst))
	}
	if err := h2.Drain(); err != nil {
		t.Fatal(err)
	}
	for u := 0; u < users; u++ {
		user := fmt.Sprintf("user-%d", u)
		got := sink2.sequence(user)
		if len(got) != perUser {
			t.Fatalf("%s delivered %d alerts, want exactly %d: %v", user, len(got), perUser, got)
		}
		for i, id := range got {
			if want := fmt.Sprintf("a-%s-%d", user, i); id != want {
				t.Fatalf("%s delivery %d = %s, want %s (replay order lost)", user, i, id, want)
			}
		}
	}
	l, err := plog.OpenLanes(walPath, 1, plog.GroupOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	if un := l.Unprocessed(); len(un) != 0 {
		t.Fatalf("%d unprocessed WAL records after replay + drain", len(un))
	}
}

// TestHubCrashAsyncTicketBeforeEnqueue is the pipelined-ingest variant
// of the crash test above: SubmitBatchAsync stages a burst, the commit
// lands and the ticket resolves (every entry acknowledged), then the
// hub dies before the lane resolvers enqueue anything. The crash window
// is identical to the synchronous path's — a resolved ticket means
// durable, not delivered — so the next incarnation must replay and
// deliver every acknowledged alert exactly once, in per-user order.
func TestHubCrashAsyncTicketBeforeEnqueue(t *testing.T) {
	const users, perUser = 8, 6
	clk := clock.NewReal()
	walPath := filepath.Join(t.TempDir(), "crash-async.wal")
	crash := faults.NewFlag("crash-after-batch-fsync")
	journal := &faults.Journal{}
	sink1 := newOrderSink(dist.NewRNG(43), 4, 0)
	h1, err := New(Config{
		Clock: clk, Sink: sink1, WALPath: walPath, Shards: 4, QueueDepth: 256,
		CrashAfterBatchFsync: crash, Journal: journal,
	})
	if err != nil {
		t.Fatal(err)
	}
	addUsers(t, h1, users)
	if err := h1.Start(); err != nil {
		t.Fatal(err)
	}
	var burst []Submission
	for u := 0; u < users; u++ {
		user := fmt.Sprintf("user-%d", u)
		for i := 0; i < perUser; i++ {
			a := portalAlert(i, clk.Now())
			a.ID = fmt.Sprintf("a-%s-%d", user, i)
			burst = append(burst, Submission{User: user, Alert: a})
		}
	}
	crash.Set(true, clk.Now())
	tk := h1.SubmitBatchAsync(burst, nil)
	for i, err := range tk.Wait() {
		if err != nil {
			t.Fatalf("burst entry %d not acknowledged despite durable batch: %v", i, err)
		}
	}
	select {
	case <-h1.Stopped():
	case <-time.After(15 * time.Second):
		t.Fatal("hub did not stop after injected crash")
	}
	if got := journal.Count(faults.KindFaultInjected); got != 1 {
		t.Fatalf("journaled %d injected faults, want 1", got)
	}
	for u := 0; u < users; u++ {
		if got := sink1.sequence(fmt.Sprintf("user-%d", u)); len(got) != 0 {
			t.Fatalf("incarnation 1 delivered %v inside the crash window", got)
		}
	}

	// Incarnation 2: replay covers the resolved-but-unrouted burst.
	crash.Set(false, clk.Now())
	sink2 := newOrderSink(dist.NewRNG(47), 4, 0)
	h2, err := New(Config{Clock: clk, Sink: sink2, WALPath: walPath, Shards: 4, QueueDepth: 256})
	if err != nil {
		t.Fatal(err)
	}
	addUsers(t, h2, users)
	if err := h2.Start(); err != nil {
		t.Fatal(err)
	}
	if got := h2.Counters().Get("replayed"); got != int64(len(burst)) {
		t.Fatalf("replayed = %d, want %d", got, len(burst))
	}
	// Re-submitting the resolved burst async re-acks idempotently.
	for i, err := range h2.SubmitBatchAsync(burst, nil).Wait() {
		if err != nil {
			t.Fatalf("re-submit entry %d: %v", i, err)
		}
	}
	if got := h2.Counters().Get("duplicates"); got != int64(len(burst)) {
		t.Fatalf("duplicates = %d, want %d", got, len(burst))
	}
	if err := h2.Drain(); err != nil {
		t.Fatal(err)
	}
	for u := 0; u < users; u++ {
		user := fmt.Sprintf("user-%d", u)
		got := sink2.sequence(user)
		if len(got) != perUser {
			t.Fatalf("%s delivered %d alerts, want exactly %d: %v", user, len(got), perUser, got)
		}
		for i, id := range got {
			if want := fmt.Sprintf("a-%s-%d", user, i); id != want {
				t.Fatalf("%s delivery %d = %s, want %s (replay order lost)", user, i, id, want)
			}
		}
	}
	l, err := plog.OpenLanes(walPath, 1, plog.GroupOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	if un := l.Unprocessed(); len(un) != 0 {
		t.Fatalf("%d unprocessed WAL records after replay + drain", len(un))
	}
}

// TestSubmitBatchPartialErrors mixes an invalid alert and an unknown
// user into one burst: those entries fail with Submit's exact errors
// while the rest of the burst is acknowledged and delivered.
func TestSubmitBatchPartialErrors(t *testing.T) {
	clk := clock.NewReal()
	sink := newOrderSink(dist.NewRNG(41), 2, 0)
	h := newTestHub(t, Config{Clock: clk, Sink: sink, Shards: 2, QueueDepth: 64})
	addUsers(t, h, 2)
	if err := h.Start(); err != nil {
		t.Fatal(err)
	}
	good := portalAlert(0, clk.Now())
	good.ID = "a-good"
	burst := []Submission{
		{User: "user-0", Alert: good},
		{User: "user-0", Alert: &alert.Alert{Source: "portal"}}, // invalid: no ID
		{User: "nobody", Alert: portalAlert(1, clk.Now())},
		{User: "user-1", Alert: good.Clone()}, // same alert, different tenant: distinct WAL key
	}
	errs := h.SubmitBatch(burst)
	if errs[0] != nil {
		t.Fatalf("valid entry: %v", errs[0])
	}
	if errs[1] == nil {
		t.Fatal("invalid alert acknowledged")
	}
	if !errors.Is(errs[2], ErrUnknownUser) {
		t.Fatalf("unknown-user entry = %v, want ErrUnknownUser", errs[2])
	}
	if errs[3] != nil {
		t.Fatalf("user-1 entry: %v", errs[3])
	}
	// Re-submitting the acked alert twice in one burst: both are
	// idempotent re-acks, including the burst-internal repeat.
	again := h.SubmitBatch([]Submission{
		{User: "user-0", Alert: good.Clone()},
		{User: "user-0", Alert: good.Clone()},
	})
	if again[0] != nil || again[1] != nil {
		t.Fatalf("duplicate re-ack failed: %v", again)
	}
	if got := h.Counters().Get("duplicates"); got != 2 {
		t.Fatalf("duplicates = %d, want 2", got)
	}
	if err := h.Drain(); err != nil {
		t.Fatal(err)
	}
	if got := sink.sequence("user-0"); len(got) != 1 || got[0] != "a-good" {
		t.Fatalf("user-0 deliveries = %v, want just a-good", got)
	}
	if got := sink.sequence("user-1"); len(got) != 1 {
		t.Fatalf("user-1 deliveries = %v, want one", got)
	}
	if got := h.Counters().Get("rejected-invalid"); got != 1 {
		t.Fatalf("rejected-invalid = %d, want 1", got)
	}
	if got := h.Counters().Get("rejected-unknown-user"); got != 1 {
		t.Fatalf("rejected-unknown-user = %d, want 1", got)
	}
}

// TestSubmitBatchBulkOverload fills a one-shard hub whose deliveries
// are gated shut, then offers a burst twice the queue depth: the bulk
// reservation grants exactly the shard's free capacity, the admitted
// prefix is acked, and the overflow fails per-entry with OverloadError
// — never logged, never delivered.
func TestSubmitBatchBulkOverload(t *testing.T) {
	clk := clock.NewReal()
	gate := make(chan struct{})
	var gateOnce sync.Once
	openGate := func() { gateOnce.Do(func() { close(gate) }) }
	defer openGate()
	sink := FuncSink(func(shard int, user string, a *alert.Alert) error {
		<-gate
		return nil
	})
	h := newTestHub(t, Config{
		Clock: clk, Sink: sink, Shards: 1, QueueDepth: 4, DeliveryWindow: 1,
	})
	addUsers(t, h, 1)
	if err := h.Start(); err != nil {
		t.Fatal(err)
	}
	var burst []Submission
	for i := 0; i < 8; i++ {
		a := portalAlert(i, clk.Now())
		a.ID = fmt.Sprintf("a-ov-%d", i)
		burst = append(burst, Submission{User: "user-0", Alert: a})
	}
	errs := h.SubmitBatch(burst)
	for i, err := range errs {
		if i < 4 {
			if err != nil {
				t.Fatalf("entry %d inside capacity: %v", i, err)
			}
			continue
		}
		var over *OverloadError
		if !errors.As(err, &over) {
			t.Fatalf("entry %d = %v, want OverloadError", i, err)
		}
		if over.Shard != 0 || over.RetryAfter <= 0 {
			t.Fatalf("entry %d overload detail: %+v", i, over)
		}
		// The rejected alert was never logged, so a retry cannot be
		// mistaken for a duplicate.
		if h.wal.Has("user-0" + keySep + burst[i].Alert.DedupKey()) {
			t.Fatalf("overloaded entry %d was logged", i)
		}
	}
	if got := h.Counters().Get("rejects-overload"); got != 4 {
		t.Fatalf("rejects-overload = %d, want 4", got)
	}
	openGate()
	if err := h.Drain(); err != nil {
		t.Fatal(err)
	}
	if got := h.Counters().Get("delivered"); got != 4 {
		t.Fatalf("delivered = %d, want 4", got)
	}
}
