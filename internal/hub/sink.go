package hub

import (
	"fmt"
	"sync"
	"sync/atomic"

	"simba/internal/alert"
	"simba/internal/dist"
	"simba/internal/metrics"
)

// FuncSink adapts a function to the Sink interface.
type FuncSink func(shard int, user string, a *alert.Alert) error

// Deliver implements Sink.
func (f FuncSink) Deliver(shard int, user string, a *alert.Alert) error {
	return f(shard, user, a)
}

// SimSink is a simulated delivery substrate for hub-load experiments:
// it models per-delivery latency by sampling a distribution and a drop
// probability, recording outcomes instead of sleeping (virtual-time
// sleeps from thousands of tenants would serialize the shards the hub
// exists to parallelize). Each shard draws from its own forked RNG, so
// shards never contend on one RNG mutex and runs stay reproducible
// regardless of shard interleaving.
type SimSink struct {
	rngs    []*dist.RNG
	latency dist.Dist
	dropP   float64

	delivered atomic.Int64
	dropped   atomic.Int64
	simulated *metrics.Recorder

	mu     sync.Mutex
	perKey map[string]int // DedupKey → delivery count (duplicate audit)
}

// NewSimSink builds a substrate for the given shard count. latency may
// be nil (instant); dropP is the per-delivery failure probability.
func NewSimSink(rng *dist.RNG, shards int, latency dist.Dist, dropP float64) *SimSink {
	s := &SimSink{
		latency:   latency,
		dropP:     dropP,
		simulated: metrics.NewReservoir(DefaultLatencyReservoir),
		perKey:    make(map[string]int),
	}
	for i := 0; i < shards; i++ {
		s.rngs = append(s.rngs, rng.Fork(fmt.Sprintf("sim-sink-shard-%d", i)))
	}
	return s
}

// Deliver implements Sink.
func (s *SimSink) Deliver(shard int, user string, a *alert.Alert) error {
	g := s.rngs[shard%len(s.rngs)]
	if s.latency != nil {
		s.simulated.Observe(s.latency.Sample(g))
	}
	if g.Bool(s.dropP) {
		s.dropped.Add(1)
		return fmt.Errorf("hub: simulated delivery failure for %s", user)
	}
	s.mu.Lock()
	s.perKey[user+keySep+a.DedupKey()]++
	s.mu.Unlock()
	s.delivered.Add(1)
	return nil
}

// Delivered returns the number of successful deliveries.
func (s *SimSink) Delivered() int64 { return s.delivered.Load() }

// Dropped returns the number of simulated failures.
func (s *SimSink) Dropped() int64 { return s.dropped.Load() }

// SimulatedLatency summarizes the sampled substrate delays.
func (s *SimSink) SimulatedLatency() metrics.Summary { return s.simulated.Summarize() }

// DeliveryCount returns how many times the (user, dedup-key) pair was
// delivered — the receiver-side duplicate audit the paper's timestamp
// contract enables.
func (s *SimSink) DeliveryCount(user, dedupKey string) int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.perKey[user+keySep+dedupKey]
}

// Duplicates returns how many deliveries were repeats of an already
// delivered (user, key) pair.
func (s *SimSink) Duplicates() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	n := 0
	for _, c := range s.perKey {
		if c > 1 {
			n += c - 1
		}
	}
	return n
}
