package hub

import (
	"fmt"
	"sync"
	"sync/atomic"

	"simba/internal/alert"
	"simba/internal/core"
	"simba/internal/dist"
	"simba/internal/metrics"
)

// FuncSink adapts a function to the Sink interface.
type FuncSink func(shard int, user string, a *alert.Alert) error

// Deliver implements Sink.
func (f FuncSink) Deliver(shard int, user string, a *alert.Alert) error {
	return f(shard, user, a)
}

// FlatSink adapts the deprecated flat Sink to the executor's Channel
// interface. The hub registers it under addr.TypeSink so tenants
// without a personalized delivery mode execute the synthesized flat
// mode through it: one action, confirmed on accept. The shard and
// tenant come from the delivery context, not the address target.
type FlatSink struct {
	Sink Sink
}

// Send implements core.Channel.
func (f FlatSink) Send(req core.Send) (core.SendResult, error) {
	if err := f.Sink.Deliver(req.Shard, req.User, req.Alert); err != nil {
		return core.SendResult{}, err
	}
	return core.SendResult{Confirmed: true}, nil
}

// SimSink is a simulated delivery substrate for hub-load experiments:
// it models per-delivery latency by sampling a distribution and a drop
// probability, recording outcomes instead of sleeping (virtual-time
// sleeps from thousands of tenants would serialize the shards the hub
// exists to parallelize). Each shard draws from its own forked RNG, so
// shards never contend on one RNG mutex and runs stay reproducible
// regardless of shard interleaving.
type SimSink struct {
	rngs    []*dist.RNG
	latency dist.Dist
	dropP   float64

	delivered atomic.Int64
	dropped   atomic.Int64
	simulated *metrics.Recorder

	// The duplicate-audit map is striped by key hash: one global mutex
	// would re-serialize exactly the deliveries the pipelined hub runs
	// in parallel, hiding hub speedups behind sink contention.
	stripes [sinkStripes]sinkStripe
}

// sinkStripes is the audit-map stripe count; a power of two so the
// stripe pick is a mask, comfortably above any realistic shard ×
// delivery-window concurrency.
const sinkStripes = 64

type sinkStripe struct {
	mu     sync.Mutex
	perKey map[string]int // audit key → delivery count (duplicate audit)
	_      [40]byte       // pad to a cache line so stripes don't false-share
}

// stripeOf picks the stripe owning an audit key (inline FNV-1a: the
// hash/fnv digest would allocate on every delivery).
func (s *SimSink) stripeOf(key string) *sinkStripe {
	h := uint32(2166136261)
	for i := 0; i < len(key); i++ {
		h ^= uint32(key[i])
		h *= 16777619
	}
	return &s.stripes[h&(sinkStripes-1)]
}

// NewSimSink builds a substrate for the given shard count. latency may
// be nil (instant); dropP is the per-delivery failure probability.
func NewSimSink(rng *dist.RNG, shards int, latency dist.Dist, dropP float64) *SimSink {
	s := &SimSink{
		latency:   latency,
		dropP:     dropP,
		simulated: metrics.NewReservoir(DefaultLatencyReservoir),
	}
	for i := range s.stripes {
		s.stripes[i].perKey = make(map[string]int)
	}
	for i := 0; i < shards; i++ {
		s.rngs = append(s.rngs, rng.Fork(fmt.Sprintf("sim-sink-shard-%d", i)))
	}
	return s
}

// Deliver implements Sink.
func (s *SimSink) Deliver(shard int, user string, a *alert.Alert) error {
	g := s.rngs[shard%len(s.rngs)]
	if s.latency != nil {
		s.simulated.Observe(s.latency.Sample(g))
	}
	if g.Bool(s.dropP) {
		s.dropped.Add(1)
		return fmt.Errorf("hub: simulated delivery failure for %s", user)
	}
	// Build the audit key with one string conversion (the map key must
	// be a durable string, but DedupKey + concat would cost three).
	var kb [96]byte
	buf := append(kb[:0], user...)
	buf = append(buf, keySep...)
	buf = a.AppendDedupKey(buf)
	key := string(buf)
	st := s.stripeOf(key)
	st.mu.Lock()
	st.perKey[key]++
	st.mu.Unlock()
	s.delivered.Add(1)
	return nil
}

// Delivered returns the number of successful deliveries.
func (s *SimSink) Delivered() int64 { return s.delivered.Load() }

// Dropped returns the number of simulated failures.
func (s *SimSink) Dropped() int64 { return s.dropped.Load() }

// SimulatedLatency summarizes the sampled substrate delays.
func (s *SimSink) SimulatedLatency() metrics.Summary { return s.simulated.Summarize() }

// DeliveryCount returns how many times the (user, dedup-key) pair was
// delivered — the receiver-side duplicate audit the paper's timestamp
// contract enables.
func (s *SimSink) DeliveryCount(user, dedupKey string) int {
	key := user + keySep + dedupKey
	st := s.stripeOf(key)
	st.mu.Lock()
	defer st.mu.Unlock()
	return st.perKey[key]
}

// Duplicates returns how many deliveries were repeats of an already
// delivered (user, key) pair, merged across the stripes.
func (s *SimSink) Duplicates() int {
	n := 0
	for i := range s.stripes {
		st := &s.stripes[i]
		st.mu.Lock()
		for _, c := range st.perKey {
			if c > 1 {
				n += c - 1
			}
		}
		st.mu.Unlock()
	}
	return n
}
