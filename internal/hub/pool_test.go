package hub

import (
	"fmt"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"simba/internal/alert"
	"simba/internal/clock"
	"simba/internal/dist"
	"simba/internal/faults"
	"simba/internal/race"
)

// TestHubPlanZeroAllocs pins the per-delivery plan resolution for
// profile-less tenants at zero allocations: every delivery attempt
// calls plan, and the flat path is the benchmark's steady state.
func TestHubPlanZeroAllocs(t *testing.T) {
	if race.Enabled {
		t.Skip("alloc accounting is not meaningful under the race detector")
	}
	h := newTestHub(t, Config{Sink: FuncSink(func(int, string, *alert.Alert) error { return nil })})
	b, err := h.AddUser("user-0")
	if err != nil {
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(200, func() {
		reg, mode, _ := h.plan(b, "Investment")
		if reg == nil || mode == nil {
			t.Fatal("plan returned nil flat plan")
		}
	})
	if allocs != 0 {
		t.Fatalf("Hub.plan (flat) allocates %.1f objects per call, want 0", allocs)
	}
}

// usersMapSize sums the delivery stages' per-user chain map sizes.
func usersMapSize(h *Hub) int {
	n := 0
	for _, sh := range h.shards {
		g := sh.current()
		if g == nil {
			continue
		}
		g.delivery.mu.Lock()
		n += len(g.delivery.users)
		g.delivery.mu.Unlock()
	}
	return n
}

// TestDeliveryUsersMapDrains is the regression test for the unbounded
// users map: a churn of one-shot tenants must leave the delivery
// stages' chain maps empty once their deliveries finish — entries are
// deleted when a worker drains its chain, not retained forever.
func TestDeliveryUsersMapDrains(t *testing.T) {
	const users = 200
	sink := NewSimSink(dist.NewRNG(11), 4, nil, 0)
	h := newTestHub(t, Config{Sink: sink, Shards: 4, QueueDepth: 256})
	addUsers(t, h, users)
	if err := h.Start(); err != nil {
		t.Fatal(err)
	}
	clk := h.cfg.Clock
	for i := 0; i < users; i++ {
		if err := h.Submit(fmt.Sprintf("user-%d", i), portalAlert(i, clk.Now())); err != nil {
			t.Fatal(err)
		}
	}
	if err := h.Drain(); err != nil {
		t.Fatal(err)
	}
	if got := sink.Delivered(); got != users {
		t.Fatalf("delivered %d, want %d", got, users)
	}
	if n := usersMapSize(h); n != 0 {
		t.Fatalf("delivery users maps retain %d entries after drain, want 0", n)
	}
}

// TestDeliveryUsersMapDrainsOnKill pins the kill path: a worker that
// abandons its chain because the hub died must still delete its map
// entry — a crash mid-backlog cannot strand tenants in the map of a
// hub object the caller may keep inspecting.
func TestDeliveryUsersMapDrainsOnKill(t *testing.T) {
	const users, perUser = 8, 4
	hold := make(chan struct{})
	sink := newCountingSink(hold)
	h, err := New(Config{
		Clock: clock.NewReal(), Sink: sink,
		WALPath: filepath.Join(t.TempDir(), "hub.wal"),
		Shards:  2, QueueDepth: 256,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := h.Start(); err != nil {
		t.Fatal(err)
	}
	addUsers(t, h, users)
	clk := h.cfg.Clock
	for i := 0; i < users*perUser; i++ {
		if err := h.Submit(fmt.Sprintf("user-%d", i%users), portalAlert(i, clk.Now())); err != nil {
			t.Fatal(err)
		}
	}
	// Every user's first delivery is parked inside the sink; the rest of
	// each chain is queued behind it. Kill, release the parked workers,
	// and the workers must clean their map entries on the way out.
	sink.waitArrivals(t, users)
	h.Kill()
	close(hold)
	select {
	case <-h.Stopped():
	case <-time.After(10 * time.Second):
		t.Fatal("hub did not stop after Kill")
	}
	if n := usersMapSize(h); n != 0 {
		t.Fatalf("delivery users maps retain %d entries after kill, want 0", n)
	}
}

// poisonCheckSink validates every delivered alert against the pool's
// poison markers: a delivery observing a scribbled envelope means a
// pooled object was recycled while still reachable.
type poisonCheckSink struct {
	t  *testing.T
	mu sync.Mutex
	n  int
}

func (s *poisonCheckSink) Deliver(shard int, user string, a *alert.Alert) error {
	if strings.Contains(a.ID, poisonSentinel) || strings.Contains(a.Source, poisonSentinel) ||
		strings.Contains(a.Subject, poisonSentinel) || strings.Contains(a.Body, poisonSentinel) {
		s.t.Errorf("delivered a poisoned (recycled) envelope: %+v", *a)
	}
	if a.Created.Year() < 1900 {
		s.t.Errorf("delivered alert with poisoned timestamp %v", a.Created)
	}
	for _, kw := range a.Keywords {
		if kw == poisonSentinel {
			s.t.Errorf("delivered alert with poisoned keyword")
		}
	}
	s.mu.Lock()
	s.n++
	s.mu.Unlock()
	return nil
}

// TestPooledRecyclingCrashReplayPoisoned interleaves pooled-envelope
// recycling with kill/replay cycles under reuse poisoning: concurrent
// batched submitters race a mid-flight crash, the next incarnation
// replays the WAL tail through the same pools, and every delivered
// alert is checked for poison scribbles. Run with -race, this is the
// suite's use-after-recycle detector.
func TestPooledRecyclingCrashReplayPoisoned(t *testing.T) {
	SetPoolPoison(true)
	defer SetPoolPoison(false)

	const users, perUser, submitters = 16, 8, 4
	walPath := filepath.Join(t.TempDir(), "hub.wal")
	clk := clock.NewReal()
	sink := &poisonCheckSink{t: t}
	crash := faults.NewFlag("pool-crash")
	cfg := Config{
		Clock: clk, Sink: sink, WALPath: walPath,
		Shards: 4, QueueDepth: 512,
		CrashBeforeMark: crash,
	}

	submitRange := func(h *Hub, lo, hi int) {
		var wg sync.WaitGroup
		for w := 0; w < submitters; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				batch := make([]Submission, 0, perUser)
				for u := lo + w; u < hi; u += submitters {
					batch = batch[:0]
					user := fmt.Sprintf("user-%d", u)
					for i := 0; i < perUser; i++ {
						batch = append(batch, Submission{User: user, Alert: portalAlert(u*perUser+i, clk.Now())})
					}
					// NACKs (kill racing the batch) are expected; the
					// surviving WAL entries replay next incarnation.
					h.SubmitBatch(batch)
				}
			}(w)
		}
		wg.Wait()
	}

	// Incarnation 1: submit half the workload, arm the crash, then race
	// the second half against it — the first post-arm delivery that
	// completes kills the hub while recycling is in full swing.
	h1, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	addUsers(t, h1, users)
	if err := h1.Start(); err != nil {
		t.Fatal(err)
	}
	submitRange(h1, 0, users/2)
	crash.Set(true, clk.Now())
	submitRange(h1, users/2, users)
	select {
	case <-h1.Stopped():
	case <-time.After(10 * time.Second):
		t.Fatal("hub did not die after the crash flag was armed")
	}

	// Incarnation 2: replay the WAL tail through fresh (but
	// pool-sharing) hub machinery, then run the rest of the workload
	// cleanly and drain.
	crash.Set(false, clk.Now())
	h2, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	addUsers(t, h2, users)
	if err := h2.Start(); err != nil {
		t.Fatal(err)
	}
	submitRange(h2, 0, users) // duplicates of incarnation 1's workload re-ack
	if err := h2.Drain(); err != nil {
		t.Fatal(err)
	}

	sink.mu.Lock()
	delivered := sink.n
	sink.mu.Unlock()
	if delivered < users*perUser {
		t.Fatalf("delivered %d alerts across incarnations, want at least %d", delivered, users*perUser)
	}
}
