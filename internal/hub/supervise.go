package hub

import (
	"errors"
	"fmt"
	"sync"
	"time"

	"simba/internal/faults"
	"simba/internal/mdc"
	"simba/internal/metrics"
	"simba/internal/stabilize"
)

// Supervision defaults.
const (
	// DefaultStaleAfter is how old a busy shard's progress beat may be
	// before its probe reports unhealthy. It must comfortably exceed the
	// delivery retry backoff cap: a worker only beats after its current
	// delivery completes, so a legitimately retrying shard can go a full
	// backoff sequence between beats.
	DefaultStaleAfter = 3 * time.Second
	// DefaultInvariantPeriod is the stabilize checks' cadence.
	DefaultInvariantPeriod = time.Second
	// DefaultMaxOutboxAge is how far past due the outbox's earliest
	// envelope may be before the outbox-age invariant trips.
	DefaultMaxOutboxAge = time.Minute
)

// SuperviseConfig parameterizes Hub.Supervise.
type SuperviseConfig struct {
	// ProbePeriod is the shard watchdog's probe cadence; zero means
	// mdc.DefaultUnitProbePeriod.
	ProbePeriod time.Duration
	// ReplyTimeout bounds one probe reply; zero means
	// mdc.DefaultUnitReplyTimeout.
	ReplyTimeout time.Duration
	// FailureThreshold is how many consecutive probe failures restart a
	// shard; zero means mdc.DefaultUnitFailureThreshold.
	FailureThreshold int
	// StaleAfter is how old a busy shard's progress beat may be before
	// its probe fails; zero means DefaultStaleAfter. Must exceed the
	// hub's DeliveryBackoffCap or a merely-retrying shard looks hung.
	StaleAfter time.Duration
	// InvariantPeriod is the stabilize checks' cadence; zero means
	// DefaultInvariantPeriod.
	InvariantPeriod time.Duration
	// EscalateAfter is how many consecutive invariant violations of one
	// check escalate to a targeted shard restart; zero means
	// stabilize.DefaultEscalateAfter.
	EscalateAfter int
	// MaxWALBacklog trips the wal-backlog invariant; zero derives a
	// bound from the hub's admission capacity (4× shards×queue-depth —
	// replay debt beyond what admission control could have admitted
	// means DONE records are not being staged).
	MaxWALBacklog int
	// MaxOutboxAge trips the outbox-age invariant; zero means
	// DefaultMaxOutboxAge.
	MaxOutboxAge time.Duration
	// RejuvenateEvery, when positive, recycles the shards one at a time
	// (rolling) on this period.
	RejuvenateEvery time.Duration
	// Journal records watchdog and stabilizer actions. Optional; when
	// nil, the hub's own journal is used.
	Journal *faults.Journal
}

// Supervisor is the hub's self-management plane: an mdc.Supervisor
// probing every shard (AreYouWorking over the shards' lock-free health
// atomics), a stabilize.Stabilizer checking resource invariants over
// the hub's real gauges with escalation wired to targeted shard
// restart, and an optional rolling-rejuvenation schedule. Built by
// Hub.Supervise; stop with Stop before draining the hub.
type Supervisor struct {
	h        *Hub
	cfg      SuperviseConfig
	watchdog *mdc.Supervisor
	stab     *stabilize.Stabilizer

	mu      sync.Mutex
	running bool
	stop    chan struct{}
	done    chan struct{}
}

// shardUnit adapts one shard to mdc.Unit.
type shardUnit struct {
	h          *Hub
	sh         *shard
	staleAfter time.Duration
}

// Name implements mdc.Unit.
func (u *shardUnit) Name() string { return fmt.Sprintf("shard-%d", u.sh.id) }

// AreYouWorking implements mdc.Unit over the shard's supervision
// atomics — no locks, by design: probing a wedged shard must not block
// behind whatever wedged it. The rule: a Running shard with admitted
// work must show progress within StaleAfter; an idle shard, and a
// shard mid-lifecycle-transition (quiescing, restarting — transitions
// are already supervised by their own timeouts), is healthy.
func (u *shardUnit) AreYouWorking() bool {
	hl := u.sh.health()
	if hl.State != ShardRunning {
		return true
	}
	if hl.Depth == 0 {
		return true
	}
	return u.h.cfg.Clock.Since(hl.LastProgress) <= u.staleAfter
}

// Restart implements mdc.Unit: kill + WAL replay of this shard only.
func (u *shardUnit) Restart(reason string) error {
	return u.h.RestartShard(u.sh.id, reason)
}

// Supervise builds and starts the hub's supervision plane. Call after
// Start (the shards must be running) and Stop it before Drain.
func (h *Hub) Supervise(cfg SuperviseConfig) (*Supervisor, error) {
	h.mu.RLock()
	started := h.started
	h.mu.RUnlock()
	if !started {
		return nil, errors.New("hub: Supervise requires a started hub")
	}
	if cfg.StaleAfter <= 0 {
		cfg.StaleAfter = DefaultStaleAfter
	}
	if cfg.StaleAfter <= h.cfg.DeliveryBackoffCap {
		// A retrying delivery beats only between attempts; a stale
		// budget under the backoff cap would flag healthy retries.
		cfg.StaleAfter = 2 * h.cfg.DeliveryBackoffCap
	}
	if cfg.InvariantPeriod <= 0 {
		cfg.InvariantPeriod = DefaultInvariantPeriod
	}
	if cfg.MaxWALBacklog <= 0 {
		cfg.MaxWALBacklog = 4 * h.cfg.Shards * h.cfg.QueueDepth
	}
	if cfg.MaxOutboxAge <= 0 {
		cfg.MaxOutboxAge = DefaultMaxOutboxAge
	}
	if cfg.Journal == nil {
		cfg.Journal = h.cfg.Journal
	}
	s := &Supervisor{h: h, cfg: cfg}

	units := make([]mdc.Unit, len(h.shards))
	for i, sh := range h.shards {
		units[i] = &shardUnit{h: h, sh: sh, staleAfter: cfg.StaleAfter}
	}
	watchdog, err := mdc.NewSupervisor(mdc.SupervisorConfig{
		Clock:            h.cfg.Clock,
		ProbePeriod:      cfg.ProbePeriod,
		ReplyTimeout:     cfg.ReplyTimeout,
		FailureThreshold: cfg.FailureThreshold,
		Journal:          cfg.Journal,
	}, units...)
	if err != nil {
		return nil, err
	}
	s.watchdog = watchdog

	stab, err := stabilize.New(h.cfg.Clock, cfg.Journal, s.escalate)
	if err != nil {
		return nil, err
	}
	if err := s.registerInvariants(stab); err != nil {
		return nil, err
	}
	s.stab = stab

	s.mu.Lock()
	s.running = true
	s.stop = make(chan struct{})
	s.done = make(chan struct{})
	s.mu.Unlock()
	s.watchdog.Start()
	s.stab.Start()
	if cfg.RejuvenateEvery > 0 {
		go s.rejuvenateLoop(s.stop, s.done)
	} else {
		close(s.done)
	}
	return s, nil
}

// registerInvariants wires the stabilize checks over the hub's real
// resource gauges. Per-shard checks are named "shard-N <invariant>" so
// escalation can map a failing check back to the shard it guards.
func (s *Supervisor) registerInvariants(stab *stabilize.Stabilizer) error {
	h := s.h
	period := s.cfg.InvariantPeriod
	for _, sh := range h.shards {
		sh := sh
		if err := stab.Register(stabilize.Check{
			Name:          fmt.Sprintf("shard-%d queue-depth", sh.id),
			Period:        period,
			EscalateAfter: s.cfg.EscalateAfter,
			Fn: func() error {
				// Floor-at-zero release and restart's gauge reset keep
				// depth in [0, cap]; a sustained excursion means the
				// accounting broke and admission control with it.
				if d := sh.depth.Load(); d < 0 || d > sh.cap {
					return fmt.Errorf("queue depth %d outside [0, %d]", d, sh.cap)
				}
				return nil
			},
		}); err != nil {
			return err
		}
		if err := stab.Register(stabilize.Check{
			Name:          fmt.Sprintf("shard-%d inflight-window", sh.id),
			Period:        period,
			EscalateAfter: s.cfg.EscalateAfter,
			Fn: func() error {
				if f := sh.inflight.Load(); f < 0 || f > int64(h.cfg.DeliveryWindow) {
					return fmt.Errorf("in-flight %d outside [0, %d]", f, h.cfg.DeliveryWindow)
				}
				return nil
			},
		}); err != nil {
			return err
		}
	}
	if err := stab.Register(stabilize.Check{
		Name:          "wal-backlog",
		Period:        period,
		EscalateAfter: s.cfg.EscalateAfter,
		Fn: func() error {
			if n := h.WALBacklog(); n > s.cfg.MaxWALBacklog {
				return fmt.Errorf("WAL backlog %d exceeds %d", n, s.cfg.MaxWALBacklog)
			}
			return nil
		},
	}); err != nil {
		return err
	}
	if h.outbox != nil {
		if err := stab.Register(stabilize.Check{
			Name:          "outbox-age",
			Period:        period,
			EscalateAfter: s.cfg.EscalateAfter,
			Fn: func() error {
				due, ok := h.outbox.OldestDue()
				if !ok {
					return nil
				}
				if age := h.cfg.Clock.Since(due); age > s.cfg.MaxOutboxAge {
					return fmt.Errorf("outbox head %v past due (max %v)", age, s.cfg.MaxOutboxAge)
				}
				return nil
			},
		}); err != nil {
			return err
		}
	}
	return stab.Register(stabilize.Check{
		Name:          "pool-poison",
		Period:        period,
		EscalateAfter: -1, // corruption evidence: journal it, never "fix" it with a restart
		Fn: func() error {
			if n := PoolPoisonHits(); n > 0 {
				return fmt.Errorf("%d poisoned envelopes mutated while pooled (use-after-recycle)", n)
			}
			return nil
		},
	})
}

// escalate is the stabilizer's escalation path: a per-shard invariant
// that keeps failing restarts its shard; hub-wide invariants have no
// single faulty shard to restart, so they stay journaled (the
// operator-facing signal on /healthz).
func (s *Supervisor) escalate(check string, err error) {
	var id int
	if n, scanErr := fmt.Sscanf(check, "shard-%d", &id); scanErr == nil && n == 1 {
		if rerr := s.h.RestartShard(id, fmt.Sprintf("invariant %q: %v", check, err)); rerr != nil {
			s.journal(faults.KindUnrecovered, "escalation restart of shard %d failed: %v", id, rerr)
		}
		return
	}
	s.journal(faults.KindUnrecovered, "invariant %q kept failing with no shard to restart: %v", check, err)
}

// rejuvenateLoop recycles all shards, one at a time, every
// RejuvenateEvery.
func (s *Supervisor) rejuvenateLoop(stop, done chan struct{}) {
	defer close(done)
	ticker := s.h.cfg.Clock.NewTicker(s.cfg.RejuvenateEvery)
	defer ticker.Stop()
	for {
		select {
		case <-stop:
			return
		case <-ticker.C():
			if err := s.h.RejuvenateAll(); err != nil {
				s.journal(faults.KindRejuvenation, "scheduled rolling rejuvenation: %v", err)
			}
		}
	}
}

// Stop halts the watchdog, the stabilizer, and the rejuvenation
// schedule. The hub itself keeps serving.
func (s *Supervisor) Stop() {
	s.mu.Lock()
	if !s.running {
		s.mu.Unlock()
		return
	}
	s.running = false
	close(s.stop)
	done := s.done
	s.mu.Unlock()
	s.watchdog.Stop()
	s.stab.Stop()
	<-done
}

// WatchdogStats returns the per-shard probe/restart counters.
func (s *Supervisor) WatchdogStats() []mdc.UnitStats { return s.watchdog.Stats() }

// ProbeLatency returns the watchdog's probe round-trip histogram
// (microseconds).
func (s *Supervisor) ProbeLatency() metrics.HistogramSnapshot {
	return s.watchdog.ProbeLatency()
}

// InvariantStats returns the stabilizer's per-check counters.
func (s *Supervisor) InvariantStats() []stabilize.CheckStats { return s.stab.Stats() }

// RunInvariant executes the named invariant immediately (tests, ops).
func (s *Supervisor) RunInvariant(name string) error { return s.stab.RunOnce(name) }

func (s *Supervisor) journal(kind faults.Kind, format string, args ...any) {
	if s.cfg.Journal != nil {
		s.cfg.Journal.Recordf(s.h.cfg.Clock.Now(), kind, format, args...)
	}
}
