package hub

import (
	"errors"
	"fmt"
	"path/filepath"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"simba/internal/addr"
	"simba/internal/alert"
	"simba/internal/clock"
	"simba/internal/core"
	"simba/internal/dmode"
	"simba/internal/faults"
	"simba/internal/im"
	"simba/internal/mab"
	"simba/internal/plog"
)

// Scripted fault schedule: what the IM channel does for one alert.
const (
	imAck    = "ack"    // send succeeds, ack arrives shortly after
	imSilent = "silent" // send succeeds, no ack ever (block times out)
	imError  = "error"  // send fails outright
)

// scriptedChannels builds an IM + email registry driven by a per-alert
// fault schedule. ack injects an acknowledgement for (handle, seq)
// into whichever ack table the side under test uses, after ackDelay.
func scriptedChannels(schedule map[string]string, ackDelay time.Duration, ack func(handle string, seq uint64), emails *deliveryLog) *core.Channels {
	var seq atomic.Uint64
	imCh := core.ChannelFunc(func(req core.Send) (core.SendResult, error) {
		switch schedule[req.Alert.ID] {
		case imError:
			return core.SendResult{}, errors.New("im endpoint offline")
		case imAck:
			s := seq.Add(1)
			handle := req.To
			go func() {
				time.Sleep(ackDelay)
				ack(handle, s)
			}()
			return core.SendResult{Seq: s}, nil
		default:
			return core.SendResult{Seq: seq.Add(1)}, nil
		}
	})
	emCh := core.ChannelFunc(func(req core.Send) (core.SendResult, error) {
		if emails != nil {
			emails.add(req.Alert.ID)
		}
		return core.SendResult{Confirmed: true}, nil
	})
	return core.NewChannels().
		Register(addr.TypeIM, imCh).
		Register(addr.TypeEmail, emCh)
}

// deliveryLog counts channel sends per alert ID.
type deliveryLog struct {
	mu     sync.Mutex
	counts map[string]int
}

func newDeliveryLog() *deliveryLog { return &deliveryLog{counts: make(map[string]int)} }

func (l *deliveryLog) add(id string) {
	l.mu.Lock()
	l.counts[id]++
	l.mu.Unlock()
}

func (l *deliveryLog) count(id string) int {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.counts[id]
}

// modeProfile builds a tenant profile with one IM and one email
// address and an "IM with acknowledgement, fallback email" mode whose
// first block times out after blockTimeout.
func modeProfile(t *testing.T, user string, blockTimeout time.Duration) *core.Profile {
	t.Helper()
	p, err := core.NewProfile(user)
	if err != nil {
		t.Fatal(err)
	}
	for _, a := range []addr.Address{
		{Type: addr.TypeIM, Name: "Pager IM", Target: user + "@im", Enabled: true},
		{Type: addr.TypeEmail, Name: "Work email", Target: user + "@example.com", Enabled: true},
	} {
		if err := p.Addresses().Register(a); err != nil {
			t.Fatal(err)
		}
	}
	if err := p.DefineMode(dmode.IMThenEmail("Pager IM", "Work email", blockTimeout)); err != nil {
		t.Fatal(err)
	}
	return p
}

// fallbackTrace is the observable shape of one delivery-mode
// execution: the per-block outcome sequence and the confirming
// channel. Two deliveries with equal traces made the same fallback
// decisions and landed on the same channel.
type fallbackTrace struct {
	blocks    string // e.g. "0:fail 1:ok"
	via       string
	viaType   addr.Type
	delivered bool
}

func traceOf(rep *core.Report) fallbackTrace {
	tr := fallbackTrace{via: rep.DeliveredVia, viaType: rep.DeliveredType(), delivered: rep.Delivered}
	for i, b := range rep.Blocks {
		if i > 0 {
			tr.blocks += " "
		}
		outcome := "fail"
		if b.Succeeded {
			outcome = "ok"
		}
		tr.blocks += fmt.Sprintf("%d:%s", b.Index, outcome)
	}
	return tr
}

// TestHubModeDeliveryMatchesBuddyExecutor is the differential property
// test: for the same profile, delivery mode, and per-alert fault
// schedule, a hub-hosted tenant's delivery stage must produce the same
// block-fallback sequence and final channel as the buddy path's direct
// executor run. It also pins the acceptance scenario: an
// "IM-with-ack, fallback email" tenant observably falls back to email
// inside the hub's delivery stage when the IM ack times out.
func TestHubModeDeliveryMatchesBuddyExecutor(t *testing.T) {
	const blockTimeout = 200 * time.Millisecond
	const ackDelay = 20 * time.Millisecond
	scenarios := []string{imAck, imSilent, imError}
	users := len(scenarios) * 3

	clk := clock.NewReal()
	schedule := make(map[string]string, users)
	for i := 0; i < users; i++ {
		schedule[fmt.Sprintf("a-%d", i)] = scenarios[i%len(scenarios)]
	}

	// Buddy side: the same executor machinery mab.Service delegates to,
	// run directly against each profile.
	buddyAcks := core.NewAcks(clk)
	buddyChans := scriptedChannels(schedule, ackDelay, func(handle string, seq uint64) {
		buddyAcks.HandleIncoming(im.Message{From: handle, Text: core.AckText(seq)})
	}, nil)
	buddyExec, err := core.NewExecutor(clk, buddyChans, buddyAcks)
	if err != nil {
		t.Fatal(err)
	}

	// Hub side: hosted tenants with the same profiles, delivering
	// through the hub's delivery stage.
	var hb *Hub
	hubChans := scriptedChannels(schedule, ackDelay, func(handle string, seq uint64) {
		hb.HandleIncoming(im.Message{From: handle, Text: core.AckText(seq)})
	}, nil)
	var mu sync.Mutex
	hubTraces := make(map[string]fallbackTrace)
	hb = newTestHub(t, Config{
		Clock:    clk,
		Channels: hubChans,
		Shards:   4,
		OnDelivery: func(user string, rep *core.Report, err error) {
			if rep == nil {
				return
			}
			mu.Lock()
			hubTraces[rep.AlertKey] = traceOf(rep)
			mu.Unlock()
		},
	})
	addUsers(t, hb, users)

	buddyTraces := make(map[string]fallbackTrace)
	alerts := make([]*alert.Alert, users)
	var wg sync.WaitGroup
	for i := 0; i < users; i++ {
		user := fmt.Sprintf("user-%d", i)
		profile := modeProfile(t, user, blockTimeout)
		b, ok := hb.buddy(user)
		if !ok {
			t.Fatalf("tenant %s not hosted", user)
		}
		b.SetProfile(profile)
		if err := b.Subscribe("Investment", "IMThenEmail"); err != nil {
			t.Fatal(err)
		}
		// The buddy-path reference run, concurrently (the executor is
		// reentrant; silent scenarios each hold a full block timeout).
		alerts[i] = portalAlert(i, clk.Now())
		routed := alerts[i].Clone()
		routed.Keywords = []string{"Investment"}
		mode, err := profile.Mode("IMThenEmail")
		if err != nil {
			t.Fatal(err)
		}
		wg.Add(1)
		go func(user string) {
			defer wg.Done()
			rep, _ := buddyExec.DeliverAs(core.DeliveryContext{User: user}, routed, profile.Addresses(), mode)
			if rep == nil {
				t.Errorf("buddy executor returned nil report for %s", user)
				return
			}
			mu.Lock()
			buddyTraces[rep.AlertKey] = traceOf(rep)
			mu.Unlock()
		}(user)
	}
	if err := hb.Start(); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < users; i++ {
		user := fmt.Sprintf("user-%d", i)
		if err := hb.Submit(user, alerts[i]); err != nil {
			t.Fatal(err)
		}
	}
	if err := hb.Drain(); err != nil {
		t.Fatal(err)
	}
	wg.Wait()

	if len(hubTraces) != users || len(buddyTraces) != users {
		t.Fatalf("traced %d hub / %d buddy deliveries, want %d each", len(hubTraces), len(buddyTraces), users)
	}
	for i := 0; i < users; i++ {
		key := alerts[i].DedupKey()
		hubTr, buddyTr := hubTraces[key], buddyTraces[key]
		if hubTr != buddyTr {
			t.Errorf("alert a-%d (%s): hub trace %+v != buddy trace %+v",
				i, scenarios[i%len(scenarios)], hubTr, buddyTr)
		}
		// Pin the expected fallback decision per scenario.
		want := fallbackTrace{}
		switch scenarios[i%len(scenarios)] {
		case imAck:
			want = fallbackTrace{blocks: "0:ok", via: "Pager IM", viaType: addr.TypeIM, delivered: true}
		default: // silent and error both fall back to the email block
			want = fallbackTrace{blocks: "0:fail 1:ok", via: "Work email", viaType: addr.TypeEmail, delivered: true}
		}
		if hubTr != want {
			t.Errorf("alert a-%d (%s): hub trace %+v, want %+v", i, scenarios[i%len(scenarios)], hubTr, want)
		}
	}

	// The channel split must attribute the fallbacks: 1/3 of tenants
	// acked over IM, the rest landed on email.
	st := hb.Stats()
	if got := st.DeliveredByChannel[addr.TypeIM]; got != int64(users/3) {
		t.Errorf("delivered via IM = %d, want %d", got, users/3)
	}
	if got := st.DeliveredByChannel[addr.TypeEmail]; got != int64(2*users/3) {
		t.Errorf("delivered via email = %d, want %d", got, 2*users/3)
	}
}

// TestHubCrashMidModeFallbackReplaysAndDeduplicates injects a crash
// after a mode delivery completed its block fallback (IM timed out,
// email confirmed) but before the WAL mark. The next incarnation must
// replay the alert through the delivery mode again — the documented
// dedup-contract duplicate — and a re-submit of the same alert must be
// deduplicated, not delivered a third time.
func TestHubCrashMidModeFallbackReplaysAndDeduplicates(t *testing.T) {
	const blockTimeout = 50 * time.Millisecond
	walPath := filepath.Join(t.TempDir(), "hub.wal")
	clk := clock.NewReal()
	crash := faults.NewFlag("hub-crash-before-mark")
	emails := newDeliveryLog()
	schedule := map[string]string{"a-0": imSilent} // IM never acks: always falls back

	newHub := func() *Hub {
		chans := scriptedChannels(schedule, 0, func(string, uint64) {}, emails)
		h, err := New(Config{
			Clock: clk, Channels: chans, WALPath: walPath,
			Shards: 1, CrashBeforeMark: crash,
		})
		if err != nil {
			t.Fatal(err)
		}
		b, err := h.AddUser("user-0")
		if err != nil {
			t.Fatal(err)
		}
		b.Pipeline().Classifier.Accept(mab.SourceRule{Source: "portal", Extract: mab.ExtractNative})
		b.Pipeline().Aggregator.Map("stocks", "Investment")
		b.SetProfile(modeProfile(t, "user-0", blockTimeout))
		if err := b.Subscribe("Investment", "IMThenEmail"); err != nil {
			t.Fatal(err)
		}
		return h
	}

	h1 := newHub()
	if err := h1.Start(); err != nil {
		t.Fatal(err)
	}
	crash.Set(true, clk.Now())
	a := portalAlert(0, clk.Now())
	if err := h1.Submit("user-0", a); err != nil {
		t.Fatal(err)
	}
	select {
	case <-h1.Stopped():
	case <-time.After(10 * time.Second):
		t.Fatal("hub did not die after fault injection")
	}
	if got := emails.count("a-0"); got != 1 {
		t.Fatalf("pre-crash email deliveries = %d, want 1 (block fallback ran once)", got)
	}

	// Restart: the unmarked alert must replay through the mode executor.
	crash.Set(false, clk.Now())
	h2 := newHub()
	if err := h2.Start(); err != nil {
		t.Fatal(err)
	}
	if got := h2.Counters().Get("replayed"); got != 1 {
		t.Fatalf("replayed = %d, want 1", got)
	}
	// A duplicate submit of the already-logged alert is re-acked
	// idempotently, never re-routed.
	if err := h2.Submit("user-0", a); err != nil {
		t.Fatal(err)
	}
	if got := h2.Counters().Get("duplicates"); got != 1 {
		t.Fatalf("duplicates = %d, want 1", got)
	}
	if err := h2.Drain(); err != nil {
		t.Fatal(err)
	}
	if got := emails.count("a-0"); got != 2 {
		t.Fatalf("total email deliveries = %d, want 2 (replay once, duplicate deduplicated)", got)
	}

	l, err := plog.Open(walPath)
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	if un := l.Unprocessed(); len(un) != 0 {
		t.Fatalf("%d unprocessed WAL entries after recovery", len(un))
	}
}
