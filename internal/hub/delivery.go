package hub

import (
	"errors"
	"sync"
	"time"

	"simba/internal/addr"
	"simba/internal/alert"
	"simba/internal/core"
	"simba/internal/dist"
	"simba/internal/faults"
	"simba/internal/outbox"
	"simba/internal/plog"
	"simba/internal/timewheel"
)

// deliveredViaCounter names the per-channel-type delivery counter.
func deliveredViaCounter(t addr.Type) string {
	if t == "" {
		t = "?"
	}
	return "delivered-via-" + string(t)
}

// userQueue is one tenant's pending deliveries — an intrusive FIFO of
// envelopes linked through their next pointers — owned by at most one
// worker goroutine at a time so per-user FIFO is structural, not
// incidental: a user's next delivery starts only after the previous one
// (including its retries and WAL mark) has finished. Queue nodes are
// pooled; the envelopes themselves carry the links, so chaining a
// backlog allocates nothing.
type userQueue struct {
	head, tail *envelope
}

var userQueuePool = sync.Pool{New: func() any { return new(userQueue) }}

// deliveryStage is one shard's asynchronous delivery pipeline. The
// shard loop stays on routing and WAL work; deliveries — the calls into
// slow external substrates — run here under a bounded in-flight window,
// so one stalled Sink.Deliver no longer serializes every tenant hashed
// to the shard. Ordering contract: deliveries for the same user are
// chained; deliveries for different users overlap up to the window.
type deliveryStage struct {
	h   *Hub
	sh  *shard
	rng *dist.RNG // forked per stage: backoff jitter never contends across shards

	// killed is the owning generation's abandon signal. A hub-wide Kill
	// closes every current generation, so the old single check still
	// holds; a targeted shard restart closes only this stage's, so
	// sibling shards' workers never notice.
	killed <-chan struct{}

	// wheel multiplexes the stage's retry backoffs and its workers' ack
	// waits onto one clock timer (pooled nodes, no per-wait allocation).
	wheel *timewheel.Wheel

	// scratch pools the workers' reusable executor scratches (report +
	// result backing + ack keys), wired to the stage's wheel.
	scratch sync.Pool

	// window bounds concurrently executing deliveries (not queued work,
	// which the shard's admission depth already bounds). The in-flight
	// gauge lives on the shard so its peak survives generation swaps.
	window chan struct{}

	mu    sync.Mutex
	users map[string]*userQueue
	wg    sync.WaitGroup // live user workers; quiesced by Drain, abandoned by Kill

	// spawns is submitBatch's reusable scratch; only the shard loop
	// calls submitBatch, so no lock guards it.
	spawns []userSpawn
}

type userSpawn struct {
	user string
	q    *userQueue
}

func newDeliveryStage(h *Hub, sh *shard, killed <-chan struct{}) *deliveryStage {
	d := &deliveryStage{
		h:      h,
		sh:     sh,
		rng:    sh.rng.Fork("delivery"),
		killed: killed,
		wheel:  timewheel.New(h.cfg.Clock, timewheel.Options{Poison: poolPoison.Load()}),
		window: make(chan struct{}, h.cfg.DeliveryWindow),
		users:  make(map[string]*userQueue),
	}
	d.scratch.New = func() any { return core.NewScratch(d.wheel) }
	return d
}

// submitBatch hands a burst of routed envelopes to the stage under a
// single lock acquisition. Called only from the shard loop, so
// envelopes for one user arrive in routing order; it never blocks —
// backlog is bounded by the shard's admission depth, whose reservation
// is held until each delivery completes. Workers for users without a
// live chain are spawned after the lock is dropped.
func (d *deliveryStage) submitBatch(envs []*envelope) {
	spawns := d.spawns[:0]
	d.mu.Lock()
	for _, env := range envs {
		user := env.buddy.user
		if q, ok := d.users[user]; ok {
			// The user has a live worker: chain behind it (per-user FIFO).
			// An empty chain (the worker is mid-delivery on the last
			// envelope) restarts from the head — the worker re-checks
			// under the lock before exiting, so the envelope is seen.
			if q.head == nil {
				q.head, q.tail = env, env
			} else {
				q.tail.next = env
				q.tail = env
			}
			continue
		}
		q := userQueuePool.Get().(*userQueue)
		q.head, q.tail = env, env
		d.users[user] = q
		spawns = append(spawns, userSpawn{user: user, q: q})
	}
	d.wg.Add(len(spawns))
	d.mu.Unlock()
	for _, s := range spawns {
		go d.runUser(s.user, s.q)
	}
	d.spawns = spawns[:0]
}

// runUser drains one tenant's chain, envelope by envelope. The worker
// exits when the chain empties or the hub is killed; either way it
// deletes its map entry (a churn of one-shot tenants must not grow the
// users map) and recycles the queue node.
func (d *deliveryStage) runUser(user string, q *userQueue) {
	defer d.wg.Done()
	scr := d.scratch.Get().(*core.Scratch)
	for {
		d.mu.Lock()
		env := q.head
		if env == nil {
			delete(d.users, user)
			d.mu.Unlock()
			q.tail = nil
			userQueuePool.Put(q)
			d.scratch.Put(scr)
			return
		}
		q.head = env.next
		if q.head == nil {
			q.tail = nil
		}
		d.mu.Unlock()
		env.next = nil
		if !d.acquire() {
			// Generation killed: the undone entries replay from the WAL
			// (into this shard's next generation, or the next process
			// incarnation). Still drop the map entry so a kill
			// mid-backlog cannot strand it.
			d.mu.Lock()
			delete(d.users, user)
			d.mu.Unlock()
			return
		}
		d.perform(env, scr)
		d.release()
		d.sh.beat(d.h.cfg.Clock.Now())
	}
}

// acquire claims one in-flight slot, honoring the generation's kill
// both before and after the wait so an abandoned stage stops
// deterministically.
func (d *deliveryStage) acquire() bool {
	select {
	case <-d.killed:
		return false
	default:
	}
	select {
	case <-d.killed:
		return false
	case d.window <- struct{}{}:
	}
	select {
	case <-d.killed:
		<-d.window
		return false
	default:
	}
	d.sh.inflight.Inc()
	return true
}

func (d *deliveryStage) release() {
	d.sh.inflight.Dec()
	<-d.window
}

// perform executes one delivery: run the tenant's delivery mode (or
// the flat substrate plan) through the shared executor, retry failed
// attempts — every block exhausted — with capped exponential backoff +
// jitter, and only then stage the WAL DONE record. A kill abandons the
// envelope before the mark, leaving the entry for the next incarnation
// to replay. What attempt exhaustion means depends on the QoS tier:
// best-effort drops the alert (counted as lost); guaranteed persists
// the envelope to the retry outbox — durably, before the WAL entry is
// retired, so ownership transfers between the logs with no uncovered
// instant — and the outbox redelivers with escalating backoff.
//
// The routed alert's wire form is encoded once, into envelope-owned
// storage, and reused by every attempt; the report lands in the
// worker's scratch. An envelope that completes (delivered, dropped, or
// handed off) recycles into the pool after its DONE is staged on its
// home lane; abandoned paths leave recycling to the GC.
func (d *deliveryStage) perform(env *envelope, scr *core.Scratch) {
	h := d.h
	b := env.buddy
	reg, mode, tier := h.plan(b, env.category)
	ctx := core.DeliveryContext{User: b.user, Shard: d.sh.id}
	// env.key is user + keySep + dedup-key; slice off the alert key so
	// the executor does not rebuild it per attempt.
	alertKey := env.key[len(b.user)+len(keySep):]
	payload, perr := env.alert.AppendWire(env.payload[:0])
	if perr != nil {
		payload = nil // unreachable for validated alerts; executor re-derives
	} else {
		env.payload = payload
	}
	for attempt := 1; ; attempt++ {
		rep, err := h.exec.DeliverScratch(ctx, &env.alert, alertKey, payload, reg, mode, scr)
		if f := h.cfg.OnDelivery; f != nil {
			f(b.user, rep, err)
		}
		if err == nil {
			b.delivered.Add(1)
			h.ctr.delivered.Add1()
			h.ctr.tierDelivered[tier].Add1()
			h.deliveredViaCounterFor(rep.DeliveredType()).Add1()
			break
		}
		if attempt >= h.cfg.DeliveryMaxAttempts {
			if tier == core.TierGuaranteed && h.outbox != nil {
				if !d.handoff(env, attempt) {
					// The envelope could not be made durable in the
					// outbox; leave the WAL entry unprocessed so the next
					// incarnation replays the alert instead of losing it.
					h.deliverLat.Observe(h.cfg.Clock.Since(env.handed))
					d.sh.release()
					return
				}
				h.ctr.outboxHandoffs.Add1()
				if f := h.cfg.CrashAfterOutboxPut; f != nil && f.Active() {
					// The handoff window: the outbox owns the envelope but
					// the WAL entry is not yet retired — both logs replay
					// it next incarnation; dedup collapses the duplicate.
					h.crash(b.user, &env.alert)
					return
				}
			} else {
				h.ctr.undeliverable.Add1()
				h.ctr.tierLost[tier].Add1()
			}
			break
		}
		h.ctr.deliveryRetries.Add1()
		if !d.backoff(attempt) {
			return // killed mid-backoff
		}
	}
	h.deliverLat.Observe(h.cfg.Clock.Since(env.handed))
	if f := h.cfg.CrashBeforeMark; f != nil && f.Active() {
		h.crash(b.user, &env.alert)
		return
	}
	select {
	case <-h.killed:
		return // killed after delivery: the duplicate on replay is the dedup contract's case
	default:
	}
	if err := h.wal.Lane(env.lane).MarkProcessedAsync(env.key, h.cfg.Clock.Now()); err != nil && !errors.Is(err, plog.ErrClosed) {
		h.ctr.markFailed.Add1()
	}
	h.latency.Observe(h.cfg.Clock.Since(env.at))
	d.sh.release()
	putEnvelope(env)
}

// handoff persists an attempt-exhausted guaranteed-tier delivery to
// the retry outbox. A true return means the envelope is fsynced there
// and the caller may retire the ingest WAL entry; false means the
// outbox rejected it (closed during shutdown, encoding failure) and
// the WAL entry must stay unprocessed. The outbox retains the alert
// beyond this call, so the pooled envelope's inline alert is cloned.
func (d *deliveryStage) handoff(env *envelope, attempts int) bool {
	h := d.h
	err := h.outbox.Put(outbox.Entry{
		User:     env.buddy.user,
		Category: env.category,
		Alert:    env.alert.Clone(),
		Attempts: attempts,
	})
	if err != nil {
		h.journal(faults.KindOutbox, "outbox handoff failed for %s alert %s: %v",
			env.buddy.user, env.alert.DedupKey(), err)
		return false
	}
	h.journal(faults.KindOutbox, "handed %s alert %s to the outbox after %d attempts",
		env.buddy.user, env.alert.DedupKey(), attempts)
	return true
}

// backoff sleeps before retry attempt+1: exponential in the attempt
// number, capped, with multiplicative jitter from the stage's forked
// RNG so colliding retries across tenants decorrelate. The wait rides
// the stage's timer wheel — a pooled node, not a fresh clock timer.
// Returns false if the stage's generation was killed during the wait.
func (d *deliveryStage) backoff(attempt int) bool {
	h := d.h
	delay := h.cfg.DeliveryBackoff
	for i := 1; i < attempt && delay < h.cfg.DeliveryBackoffCap; i++ {
		delay *= 2
	}
	if delay > h.cfg.DeliveryBackoffCap {
		delay = h.cfg.DeliveryBackoffCap
	}
	// Full jitter over the upper half: [delay/2, delay).
	delay = delay/2 + time.Duration(d.rng.Float64()*float64(delay/2))
	t := d.wheel.After(delay)
	select {
	case <-d.killed:
		d.wheel.Release(t)
		return false
	case <-t.C():
		d.wheel.Release(t)
		return true
	}
}

// crash is the fault-injection kill switch, shared across delivery
// workers so exactly one journals the injected fault even when several
// deliveries complete inside the same crash window.
func (h *Hub) crash(user string, a *alert.Alert) {
	h.crashOnce.Do(func() {
		h.journal(faults.KindFaultInjected,
			"hub killed between delivery and mark-processed (user %s, alert %s)",
			user, a.DedupKey())
		h.Kill()
	})
}
