package hub

import (
	"errors"
	"time"

	"simba/internal/addr"
	"simba/internal/alert"
	"simba/internal/core"
	"simba/internal/dist"
	"simba/internal/faults"
	"simba/internal/metrics"
	"simba/internal/outbox"
	"simba/internal/plog"
	"sync"
)

// deliveredViaCounter names the per-channel-type delivery counter.
func deliveredViaCounter(t addr.Type) string {
	if t == "" {
		t = "?"
	}
	return "delivered-via-" + string(t)
}

// deliveryJob is one routed alert handed from the shard loop to the
// delivery stage.
type deliveryJob struct {
	env      envelope
	routed   *alert.Alert
	category string // routing category, selects the tenant's subscribed delivery mode
	handed   time.Time // when routing handed the job off, for the deliver-stage latency split
}

// userQueue is one tenant's pending deliveries, owned by at most one
// worker goroutine at a time so per-user FIFO is structural, not
// incidental: a user's next delivery starts only after the previous one
// (including its retries and WAL mark) has finished.
type userQueue struct {
	jobs []deliveryJob
}

// deliveryStage is one shard's asynchronous delivery pipeline. The
// shard loop stays on routing and WAL work; deliveries — the calls into
// slow external substrates — run here under a bounded in-flight window,
// so one stalled Sink.Deliver no longer serializes every tenant hashed
// to the shard. Ordering contract: deliveries for the same user are
// chained; deliveries for different users overlap up to the window.
type deliveryStage struct {
	h   *Hub
	sh  *shard
	rng *dist.RNG // forked per stage: backoff jitter never contends across shards

	// window bounds concurrently executing deliveries (not queued work,
	// which the shard's admission depth already bounds).
	window chan struct{}

	inflight metrics.Gauge

	mu    sync.Mutex
	users map[string]*userQueue
	wg    sync.WaitGroup // live user workers; quiesced by Drain, abandoned by Kill
}

func newDeliveryStage(h *Hub, sh *shard) *deliveryStage {
	return &deliveryStage{
		h:      h,
		sh:     sh,
		rng:    sh.rng.Fork("delivery"),
		window: make(chan struct{}, h.cfg.DeliveryWindow),
		users:  make(map[string]*userQueue),
	}
}

// submitBatch hands a burst of routed alerts to the stage under a
// single lock acquisition. Called only from the shard loop, so jobs
// for one user arrive in routing order; it never blocks — backlog is
// bounded by the shard's admission depth, whose reservation is held
// until each delivery completes. Workers for users without a live
// chain are spawned after the lock is dropped.
func (d *deliveryStage) submitBatch(jobs []deliveryJob) {
	type spawn struct {
		user string
		q    *userQueue
	}
	var spawns []spawn
	d.mu.Lock()
	for _, job := range jobs {
		user := job.env.buddy.user
		if q, ok := d.users[user]; ok {
			// The user has a live worker: chain behind it (per-user FIFO).
			q.jobs = append(q.jobs, job)
			continue
		}
		q := &userQueue{jobs: []deliveryJob{job}}
		d.users[user] = q
		spawns = append(spawns, spawn{user: user, q: q})
	}
	d.wg.Add(len(spawns))
	d.mu.Unlock()
	for _, s := range spawns {
		go d.runUser(s.user, s.q)
	}
}

// runUser drains one tenant's chain, job by job. The worker exits when
// the chain empties (deleting the queue under the lock, so a later
// submit starts a fresh worker) or when the hub is killed.
func (d *deliveryStage) runUser(user string, q *userQueue) {
	defer d.wg.Done()
	for {
		d.mu.Lock()
		if len(q.jobs) == 0 {
			delete(d.users, user)
			d.mu.Unlock()
			return
		}
		job := q.jobs[0]
		q.jobs = q.jobs[1:]
		d.mu.Unlock()
		if !d.acquire() {
			return // killed: the undone entries replay from the WAL
		}
		d.perform(job)
		d.release()
	}
}

// acquire claims one in-flight slot, honoring a kill both before and
// after the wait so a crashed hub stops deterministically.
func (d *deliveryStage) acquire() bool {
	select {
	case <-d.h.killed:
		return false
	default:
	}
	select {
	case <-d.h.killed:
		return false
	case d.window <- struct{}{}:
	}
	select {
	case <-d.h.killed:
		<-d.window
		return false
	default:
	}
	d.inflight.Inc()
	return true
}

func (d *deliveryStage) release() {
	d.inflight.Dec()
	<-d.window
}

// perform executes one delivery: run the tenant's delivery mode (or
// the flat substrate plan) through the shared executor, retry failed
// attempts — every block exhausted — with capped exponential backoff +
// jitter, and only then stage the WAL DONE record. A kill abandons the
// job before the mark, leaving the entry for the next incarnation to
// replay. What attempt exhaustion means depends on the QoS tier:
// best-effort drops the alert (counted as lost); guaranteed persists
// the envelope to the retry outbox — durably, before the WAL entry is
// retired, so ownership transfers between the logs with no uncovered
// instant — and the outbox redelivers with escalating backoff.
func (d *deliveryStage) perform(job deliveryJob) {
	h := d.h
	b := job.env.buddy
	reg, mode, tier := h.plan(b, job.category)
	ctx := core.DeliveryContext{User: b.user, Shard: d.sh.id}
	for attempt := 1; ; attempt++ {
		rep, err := h.exec.DeliverAs(ctx, job.routed, reg, mode)
		if f := h.cfg.OnDelivery; f != nil {
			f(b.user, rep, err)
		}
		if err == nil {
			b.delivered.Add(1)
			h.ctr.delivered.Add1()
			h.ctr.tierDelivered[tier].Add1()
			if via, ok := h.deliveredVia[rep.DeliveredType()]; ok {
				via.Add1()
			} else {
				h.counters.Add1(deliveredViaCounter(rep.DeliveredType()))
			}
			break
		}
		if attempt >= h.cfg.DeliveryMaxAttempts {
			if tier == core.TierGuaranteed && h.outbox != nil {
				if !d.handoff(job, attempt) {
					// The envelope could not be made durable in the
					// outbox; leave the WAL entry unprocessed so the next
					// incarnation replays the alert instead of losing it.
					h.deliverLat.Observe(h.cfg.Clock.Since(job.handed))
					d.sh.release()
					return
				}
				h.ctr.outboxHandoffs.Add1()
				if f := h.cfg.CrashAfterOutboxPut; f != nil && f.Active() {
					// The handoff window: the outbox owns the envelope but
					// the WAL entry is not yet retired — both logs replay
					// it next incarnation; dedup collapses the duplicate.
					h.crash(b.user, job.env.alert)
					return
				}
			} else {
				h.ctr.undeliverable.Add1()
				h.ctr.tierLost[tier].Add1()
			}
			break
		}
		h.ctr.deliveryRetries.Add1()
		if !d.backoff(attempt) {
			return // killed mid-backoff
		}
	}
	h.deliverLat.Observe(h.cfg.Clock.Since(job.handed))
	if f := h.cfg.CrashBeforeMark; f != nil && f.Active() {
		h.crash(b.user, job.env.alert)
		return
	}
	select {
	case <-h.killed:
		return // killed after delivery: the duplicate on replay is the dedup contract's case
	default:
	}
	if err := h.wal.Lane(job.env.lane).MarkProcessedAsync(job.env.key, h.cfg.Clock.Now()); err != nil && !errors.Is(err, plog.ErrClosed) {
		h.ctr.markFailed.Add1()
	}
	h.latency.Observe(h.cfg.Clock.Since(job.env.at))
	d.sh.release()
}

// handoff persists an attempt-exhausted guaranteed-tier delivery to
// the retry outbox. A true return means the envelope is fsynced there
// and the caller may retire the ingest WAL entry; false means the
// outbox rejected it (closed during shutdown, encoding failure) and
// the WAL entry must stay unprocessed.
func (d *deliveryStage) handoff(job deliveryJob, attempts int) bool {
	h := d.h
	err := h.outbox.Put(outbox.Entry{
		User:     job.env.buddy.user,
		Category: job.category,
		Alert:    job.routed,
		Attempts: attempts,
	})
	if err != nil {
		h.journal(faults.KindOutbox, "outbox handoff failed for %s alert %s: %v",
			job.env.buddy.user, job.routed.DedupKey(), err)
		return false
	}
	h.journal(faults.KindOutbox, "handed %s alert %s to the outbox after %d attempts",
		job.env.buddy.user, job.routed.DedupKey(), attempts)
	return true
}

// backoff sleeps before retry attempt+1: exponential in the attempt
// number, capped, with multiplicative jitter from the stage's forked
// RNG so colliding retries across tenants decorrelate. Returns false if
// the hub was killed during the wait.
func (d *deliveryStage) backoff(attempt int) bool {
	h := d.h
	delay := h.cfg.DeliveryBackoff
	for i := 1; i < attempt && delay < h.cfg.DeliveryBackoffCap; i++ {
		delay *= 2
	}
	if delay > h.cfg.DeliveryBackoffCap {
		delay = h.cfg.DeliveryBackoffCap
	}
	// Full jitter over the upper half: [delay/2, delay).
	delay = delay/2 + time.Duration(d.rng.Float64()*float64(delay/2))
	t := h.cfg.Clock.NewTimer(delay)
	defer t.Stop()
	select {
	case <-h.killed:
		return false
	case <-t.C():
		return true
	}
}

// crash is the fault-injection kill switch, shared across delivery
// workers so exactly one journals the injected fault even when several
// deliveries complete inside the same crash window.
func (h *Hub) crash(user string, a *alert.Alert) {
	h.crashOnce.Do(func() {
		h.journal(faults.KindFaultInjected,
			"hub killed between delivery and mark-processed (user %s, alert %s)",
			user, a.DedupKey())
		h.Kill()
	})
}
