// Package outbox implements the durable retry outbox behind SIMBA's
// guaranteed delivery tier. The hub's delivery stage retries failed
// deliveries in memory with a bounded attempt budget; historically an
// exhausted budget — or a crash mid-backoff — lost the alert
// permanently, which contradicts the paper's headline claim of
// dependable delivery. The outbox closes that gap for guaranteed-tier
// subscriptions:
//
//   - When the in-memory budget is exhausted, the delivery envelope
//     (alert + tenant + routing category + attempt state + next-due
//     time) is persisted to a per-hub outbox journal before the hub's
//     own WAL entry is retired, so ownership of the alert passes
//     durably from the ingest WAL to the outbox — there is no instant
//     at which neither log owns it.
//   - A background redelivery loop, driven by the (possibly virtual)
//     clock, re-executes due envelopes through a caller-supplied
//     delivery function with exponential per-round backoff. Every
//     failed round re-persists the envelope under a round-stamped key
//     and tombstones the previous round in the same fsync
//     (plog.Log.Replace), so the round/escalation state itself
//     survives restarts.
//   - After EscalateEvery exhausted rounds, the envelope's block
//     offset advances: redelivery skips the delivery mode's leading
//     (known-bad) blocks and starts at the next backup channel — the
//     paper's block fallback generalized across process restarts.
//   - On reopen, pending envelopes are loaded (stale rounds of the
//     same alert collapse onto the newest) and scheduled before the
//     host accepts traffic. Redelivered duplicates are covered by the
//     alert-timestamp dedup contract: at-least-once-with-dedup.
//
// The journal reuses the plog segment/checkpoint/tombstone machinery,
// so outbox disk and reopen time stay O(pending).
package outbox

import (
	"container/heap"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"simba/internal/clock"
	"simba/internal/faults"
	"simba/internal/metrics"
	"simba/internal/plog"
)

// Defaults.
const (
	// DefaultBackoff is the base redelivery backoff: round n fires
	// roughly Backoff·2ⁿ after the previous failure, capped.
	DefaultBackoff = 50 * time.Millisecond
	// DefaultBackoffCap caps the exponential round backoff.
	DefaultBackoffCap = 30 * time.Second
	// DefaultEscalateEvery is how many exhausted rounds an envelope
	// spends per delivery-mode block before escalating to the next one.
	DefaultEscalateEvery = 3
)

// ErrDrop, wrapped into a DeliverFunc error, tells the outbox the
// envelope can never be delivered (e.g. the tenant is no longer
// hosted) and should be retired and counted as lost instead of
// retried.
var ErrDrop = errors.New("outbox: undeliverable envelope")

// DeliverFunc executes one redelivery round for an envelope. blocks
// reports how many delivery-mode blocks the resolved plan has (the
// escalation ceiling; 0 when the plan could not be resolved). The
// callback may clamp e.Offset to the plan's last block; the clamped
// value is what the outbox re-persists. Returning an error that wraps
// ErrDrop retires the envelope as lost.
type DeliverFunc func(e *Entry) (blocks int, err error)

// Options parameterize an Outbox.
type Options struct {
	// Clock drives the redelivery loop; required.
	Clock clock.Clock
	// Path is the outbox journal base path; required.
	Path string
	// Backoff is the base per-round redelivery backoff; zero means
	// DefaultBackoff.
	Backoff time.Duration
	// BackoffCap caps the exponential round backoff; zero means
	// DefaultBackoffCap.
	BackoffCap time.Duration
	// EscalateEvery is how many exhausted rounds an envelope spends per
	// block offset before escalating to the next block; zero means
	// DefaultEscalateEvery, negative disables escalation.
	EscalateEvery int
	// Log tunes the underlying segmented journal.
	Log plog.Options
	// Journal records replay/recovery actions. Optional.
	Journal *faults.Journal
}

// Stats is a point-in-time snapshot of the outbox.
type Stats struct {
	// Pending is the number of envelopes awaiting redelivery.
	Pending int
	// OldestDue is the earliest scheduled redelivery time (zero when
	// nothing is pending). An OldestDue far in the past means the
	// redelivery loop has stopped draining.
	OldestDue time.Time
	// Loaded counts envelopes recovered from the journal at Open (after
	// collapsing stale rounds).
	Loaded int64
	// Puts counts envelopes handed to the outbox since Open.
	Puts int64
	// Redelivered counts redelivery rounds that landed.
	Redelivered int64
	// Rounds counts exhausted (failed) redelivery rounds.
	Rounds int64
	// Escalated counts block-offset advances (channel escalations).
	Escalated int64
	// Dropped counts envelopes retired as undeliverable (ErrDrop).
	Dropped int64
	// RoundsToSuccess is the distribution of outbox rounds a delivered
	// envelope needed (power-of-two buckets).
	RoundsToSuccess metrics.HistogramSnapshot
	// Log is the journal's segmentation/compaction snapshot.
	Log plog.Stats
}

// item is one scheduled envelope: the entry plus its current persisted
// key and the escalation ceiling learned from the delivery callback.
type item struct {
	e *Entry
	// key is the round-stamped journal key the entry is currently
	// persisted under.
	key string
	// maxOffset is the highest meaningful block offset (blocks-1), -1
	// until the first delivery attempt reports the plan size.
	maxOffset int
}

// entryHeap orders items by due time (earliest first).
type entryHeap []*item

func (h entryHeap) Len() int            { return len(h) }
func (h entryHeap) Less(i, j int) bool  { return h[i].e.Due.Before(h[j].e.Due) }
func (h entryHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *entryHeap) Push(x any)         { *h = append(*h, x.(*item)) }
func (h *entryHeap) Pop() any {
	old := *h
	n := len(old)
	it := old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	return it
}

// Outbox is a WAL-backed persistent retry queue with a clock-driven
// redelivery loop. It is safe for concurrent use; redeliveries
// themselves run sequentially on the loop goroutine (outbox traffic is
// the failure tail, not the hot path).
type Outbox struct {
	opts Options
	log  *plog.Log

	mu      sync.Mutex
	pending entryHeap
	started bool
	closed  bool

	deliver  DeliverFunc
	wake     chan struct{}
	stop     chan struct{}
	stopOnce sync.Once
	done     chan struct{}

	loaded, puts, redelivered, rounds, escalated, dropped atomic.Int64
	roundsToSuccess                                       *metrics.Histogram
}

// Open opens (creating if needed) the outbox journal and loads every
// pending envelope, collapsing stale rounds of the same alert onto the
// newest (the stale records are tombstoned). The redelivery loop does
// not run until Start.
func Open(opts Options) (*Outbox, error) {
	if opts.Clock == nil {
		return nil, errors.New("outbox: Options require Clock")
	}
	if opts.Path == "" {
		return nil, errors.New("outbox: Options require Path")
	}
	if opts.Backoff <= 0 {
		opts.Backoff = DefaultBackoff
	}
	if opts.BackoffCap <= 0 {
		opts.BackoffCap = DefaultBackoffCap
	}
	if opts.BackoffCap < opts.Backoff {
		opts.BackoffCap = opts.Backoff
	}
	if opts.EscalateEvery == 0 {
		opts.EscalateEvery = DefaultEscalateEvery
	}
	l, err := plog.OpenWithOptions(opts.Path, opts.Log)
	if err != nil {
		return nil, fmt.Errorf("outbox: opening journal: %w", err)
	}
	o := &Outbox{
		opts:            opts,
		log:             l,
		wake:            make(chan struct{}, 1),
		stop:            make(chan struct{}),
		done:            make(chan struct{}),
		roundsToSuccess: &metrics.Histogram{},
	}
	if err := o.load(); err != nil {
		_ = l.Close()
		return nil, err
	}
	return o, nil
}

// load rebuilds the pending heap from the journal's unprocessed
// records. A crash inside Replace can leave two rounds of the same
// alert unprocessed (the torn tail drops the DONE, never the fresh
// RECV); the highest round wins and the stale ones are tombstoned.
// Unparsable records are tombstoned and journaled, never replayed.
func (o *Outbox) load() error {
	newest := make(map[string]*item)
	now := o.opts.Clock.Now()
	for _, rec := range o.log.Unprocessed() {
		retire := func(key, why string) {
			o.journal(faults.KindReplay, "outbox: tombstoning %s record %q", why, key)
			_ = o.log.MarkProcessed(key, now)
		}
		dedup, round, err := splitKey(rec.Key)
		if err != nil {
			retire(rec.Key, "malformed-key")
			continue
		}
		e, err := decodeEntry(rec.Payload)
		if err != nil {
			retire(rec.Key, "unparsable")
			continue
		}
		if e.dedupKey() != dedup || e.Round != round {
			retire(rec.Key, "inconsistent")
			continue
		}
		prev, ok := newest[dedup]
		switch {
		case !ok:
			newest[dedup] = &item{e: e, key: rec.Key, maxOffset: -1}
		case prev.e.Round < round:
			retire(prev.key, "superseded")
			newest[dedup] = &item{e: e, key: rec.Key, maxOffset: -1}
		default:
			retire(rec.Key, "superseded")
		}
	}
	for _, it := range newest {
		o.journal(faults.KindReplay, "outbox: replaying pending envelope %s (round %d, offset %d)",
			it.key, it.e.Round, it.e.Offset)
		heap.Push(&o.pending, it)
		o.loaded.Add(1)
	}
	return nil
}

// Start launches the redelivery loop. deliver executes one round per
// due envelope; see DeliverFunc.
func (o *Outbox) Start(deliver DeliverFunc) error {
	if deliver == nil {
		return errors.New("outbox: Start requires a DeliverFunc")
	}
	o.mu.Lock()
	defer o.mu.Unlock()
	if o.closed {
		return plog.ErrClosed
	}
	if o.started {
		return errors.New("outbox: already started")
	}
	o.started = true
	o.deliver = deliver
	go o.loop()
	return nil
}

// Put durably hands one envelope to the outbox. When Put returns nil
// the envelope is fsynced; the caller may then retire its own record
// of the alert (ownership has transferred). A zero Due schedules the
// first round one backoff from now. Re-putting an alert that is
// already pending at the same round is idempotent.
func (o *Outbox) Put(e Entry) error {
	if err := e.validate(); err != nil {
		return err
	}
	if e.Due.IsZero() {
		e.Due = o.opts.Clock.Now().Add(o.backoffFor(e.Round))
	}
	payload, err := e.encode()
	if err != nil {
		return err
	}
	key := e.key()
	o.mu.Lock()
	if o.closed {
		o.mu.Unlock()
		return plog.ErrClosed
	}
	if o.log.Has(key) && !o.log.IsProcessed(key) {
		// Already pending (a crash-window double handoff): the scheduled
		// copy owns it.
		o.mu.Unlock()
		return nil
	}
	if err := o.log.LogReceived(key, payload, o.opts.Clock.Now()); err != nil {
		o.mu.Unlock()
		return err
	}
	heap.Push(&o.pending, &item{e: &e, key: key, maxOffset: -1})
	o.puts.Add(1)
	o.mu.Unlock()
	o.signal()
	return nil
}

// Pending reports how many envelopes await redelivery.
func (o *Outbox) Pending() int {
	o.mu.Lock()
	defer o.mu.Unlock()
	return len(o.pending)
}

// OldestDue returns the earliest scheduled redelivery time, false when
// nothing is pending. A due time far in the past is the signal a
// resource invariant watches for: the redelivery loop has stopped
// draining its heap.
func (o *Outbox) OldestDue() (time.Time, bool) {
	o.mu.Lock()
	defer o.mu.Unlock()
	if len(o.pending) == 0 {
		return time.Time{}, false
	}
	return o.pending[0].e.Due, true
}

// Stats snapshots the outbox counters and journal state.
func (o *Outbox) Stats() Stats {
	oldest, _ := o.OldestDue()
	return Stats{
		Pending:         o.Pending(),
		OldestDue:       oldest,
		Loaded:          o.loaded.Load(),
		Puts:            o.puts.Load(),
		Redelivered:     o.redelivered.Load(),
		Rounds:          o.rounds.Load(),
		Escalated:       o.escalated.Load(),
		Dropped:         o.dropped.Load(),
		RoundsToSuccess: o.roundsToSuccess.Snapshot(),
		Log:             o.log.Stats(),
	}
}

// Redelivered returns how many redelivery rounds landed.
func (o *Outbox) Redelivered() int64 { return o.redelivered.Load() }

// Escalated returns how many channel escalations occurred.
func (o *Outbox) Escalated() int64 { return o.escalated.Load() }

// Close gracefully shuts the outbox down: the loop finishes the round
// in flight (if any), pending envelopes stay durable for the next
// incarnation, and the journal is flushed and closed.
func (o *Outbox) Close() error {
	o.stopOnce.Do(func() { close(o.stop) })
	o.mu.Lock()
	started, closed := o.started, o.closed
	o.closed = true
	o.mu.Unlock()
	if started {
		<-o.done
	}
	if closed {
		return nil
	}
	return o.log.Close()
}

// Kill abruptly terminates the outbox, simulating a crash: the journal
// closes immediately and the loop is not waited for (a round in flight
// fails to complete its mark and the envelope replays on reopen — the
// dedup contract's documented duplicate).
func (o *Outbox) Kill() {
	o.stopOnce.Do(func() { close(o.stop) })
	o.mu.Lock()
	closed := o.closed
	o.closed = true
	o.mu.Unlock()
	if !closed {
		_ = o.log.Close()
	}
}

// signal nudges the loop to re-examine the heap (non-blocking).
func (o *Outbox) signal() {
	select {
	case o.wake <- struct{}{}:
	default:
	}
}

// backoffFor returns the wait before round (0-based): Backoff·2ʳ,
// capped. Deterministic — outbox rounds are sparse enough that jitter
// buys nothing and reproducibility under the virtual clock buys tests.
func (o *Outbox) backoffFor(round int) time.Duration {
	d := o.opts.Backoff
	for i := 0; i < round && d < o.opts.BackoffCap; i++ {
		d *= 2
	}
	if d > o.opts.BackoffCap {
		d = o.opts.BackoffCap
	}
	return d
}

// loop is the redelivery scheduler: sleep until the earliest due
// envelope (or a wake from Put), then run every due round.
func (o *Outbox) loop() {
	defer close(o.done)
	for {
		o.runDue()
		o.mu.Lock()
		var timer clock.Timer
		var timerC <-chan time.Time
		if len(o.pending) > 0 {
			d := o.pending[0].e.Due.Sub(o.opts.Clock.Now())
			if d < 0 {
				d = 0
			}
			timer = o.opts.Clock.NewTimer(d)
			timerC = timer.C()
		}
		o.mu.Unlock()
		select {
		case <-o.stop:
			if timer != nil {
				timer.Stop()
			}
			return
		case <-o.wake:
			if timer != nil {
				timer.Stop()
			}
		case <-timerC:
		}
	}
}

// runDue executes one redelivery round for every envelope whose due
// time has passed.
func (o *Outbox) runDue() {
	for {
		select {
		case <-o.stop:
			return
		default:
		}
		o.mu.Lock()
		if o.closed || len(o.pending) == 0 || o.pending[0].e.Due.After(o.opts.Clock.Now()) {
			o.mu.Unlock()
			return
		}
		it := heap.Pop(&o.pending).(*item)
		o.mu.Unlock()

		blocks, err := o.deliver(it.e)
		if blocks > 0 {
			it.maxOffset = blocks - 1
		}
		switch {
		case err == nil:
			o.retire(it)
			o.redelivered.Add(1)
			o.roundsToSuccess.Observe(int64(it.e.Round))
		case errors.Is(err, ErrDrop):
			o.journal(faults.KindOutbox, "outbox: dropping undeliverable envelope %s: %v", it.key, err)
			o.retire(it)
			o.dropped.Add(1)
		default:
			o.rounds.Add(1)
			o.reschedule(it)
		}
	}
}

// retire marks the envelope's journal record processed. ErrClosed is
// tolerated — a kill raced the mark, and the replay duplicate is the
// dedup contract's case.
func (o *Outbox) retire(it *item) {
	o.mu.Lock()
	defer o.mu.Unlock()
	if o.closed {
		return
	}
	if err := o.log.MarkProcessed(it.key, o.opts.Clock.Now()); err != nil && !errors.Is(err, plog.ErrClosed) {
		o.journal(faults.KindOutbox, "outbox: marking %s processed: %v", it.key, err)
	}
}

// reschedule advances a failed envelope's round (escalating the block
// offset every EscalateEvery rounds while backup blocks remain),
// re-persists it under the round-stamped key with the previous round
// tombstoned in the same fsync, and pushes it back on the heap.
func (o *Outbox) reschedule(it *item) {
	e := it.e
	e.Round++
	if k := o.opts.EscalateEvery; k > 0 && e.Round%k == 0 && it.maxOffset >= 0 && e.Offset < it.maxOffset {
		e.Offset++
		o.escalated.Add(1)
		o.journal(faults.KindOutbox, "outbox: escalating %s to block offset %d after %d rounds",
			e.dedupKey(), e.Offset, e.Round)
	}
	e.Due = o.opts.Clock.Now().Add(o.backoffFor(e.Round))
	o.mu.Lock()
	defer o.mu.Unlock()
	if o.closed {
		return // the previous round's record replays next incarnation
	}
	payload, err := e.encode()
	if err != nil {
		o.journal(faults.KindOutbox, "outbox: encoding %s round %d: %v", e.dedupKey(), e.Round, err)
		return
	}
	newKey := e.key()
	if err := o.log.Replace(it.key, newKey, payload, o.opts.Clock.Now()); err != nil {
		if !errors.Is(err, plog.ErrClosed) {
			o.journal(faults.KindOutbox, "outbox: persisting %s round %d: %v", e.dedupKey(), e.Round, err)
		}
		// Keep redelivering from memory; the journal still holds the
		// previous round, so nothing is lost across a restart.
	} else {
		it.key = newKey
	}
	heap.Push(&o.pending, it)
}

func (o *Outbox) journal(kind faults.Kind, format string, args ...any) {
	if o.opts.Journal != nil {
		o.opts.Journal.Recordf(o.opts.Clock.Now(), kind, format, args...)
	}
}
