package outbox

import (
	"errors"
	"fmt"
	"path/filepath"
	"sync/atomic"
	"testing"
	"time"

	"simba/internal/alert"
	"simba/internal/clock"
	"simba/internal/faults"
	"simba/internal/plog"
)

func testAlert(i int) *alert.Alert {
	return &alert.Alert{
		ID:       fmt.Sprintf("a-%d", i),
		Source:   "portal",
		Keywords: []string{"Investment"},
		Subject:  "quote update",
		Body:     "MSFT moved",
		Urgency:  alert.UrgencyNormal,
		Created:  time.Unix(0, int64(1000+i)),
	}
}

func testEntry(i int) Entry {
	return Entry{User: fmt.Sprintf("user-%d", i), Category: "Investment", Alert: testAlert(i), Attempts: 3}
}

func TestEntryCodecRoundTrip(t *testing.T) {
	e := testEntry(1)
	e.Round = 4
	e.Offset = 2
	e.Due = time.Unix(0, 987654321)
	payload, err := e.encode()
	if err != nil {
		t.Fatal(err)
	}
	got, err := decodeEntry(payload)
	if err != nil {
		t.Fatal(err)
	}
	if got.User != e.User || got.Category != e.Category ||
		got.Attempts != e.Attempts || got.Round != e.Round || got.Offset != e.Offset ||
		!got.Due.Equal(e.Due) {
		t.Fatalf("decoded entry %+v != original %+v", got, e)
	}
	if got.Alert.DedupKey() != e.Alert.DedupKey() {
		t.Fatalf("decoded alert key %q != %q", got.Alert.DedupKey(), e.Alert.DedupKey())
	}
	dedup, round, err := splitKey(e.key())
	if err != nil {
		t.Fatal(err)
	}
	if dedup != e.dedupKey() || round != e.Round {
		t.Fatalf("splitKey(%q) = (%q, %d)", e.key(), dedup, round)
	}
}

func openTestOutbox(t *testing.T, dir string, opts Options) *Outbox {
	t.Helper()
	opts.Clock = clock.NewReal()
	if opts.Path == "" {
		opts.Path = filepath.Join(dir, "test.outbox")
	}
	o, err := Open(opts)
	if err != nil {
		t.Fatal(err)
	}
	return o
}

// waitFor polls cond until it holds or the deadline passes.
func waitFor(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %s", what)
		}
		time.Sleep(time.Millisecond)
	}
}

// TestOutboxRedeliversUntilSuccess drives one envelope through two
// failed rounds and a success, checking the counters and that the
// journal record is retired.
func TestOutboxRedeliversUntilSuccess(t *testing.T) {
	dir := t.TempDir()
	o := openTestOutbox(t, dir, Options{Backoff: time.Millisecond, BackoffCap: 4 * time.Millisecond})
	var calls atomic.Int64
	if err := o.Start(func(e *Entry) (int, error) {
		if calls.Add(1) < 3 {
			return 1, errors.New("still down")
		}
		return 1, nil
	}); err != nil {
		t.Fatal(err)
	}
	if err := o.Put(testEntry(0)); err != nil {
		t.Fatal(err)
	}
	waitFor(t, "redelivery", func() bool { return o.Redelivered() == 1 })
	st := o.Stats()
	if st.Rounds != 2 || st.Pending != 0 || st.Puts != 1 {
		t.Fatalf("stats = %+v, want 2 rounds, 0 pending, 1 put", st)
	}
	if err := o.Close(); err != nil {
		t.Fatal(err)
	}
	// The journal must be clean: nothing to replay.
	reopened := openTestOutbox(t, dir, Options{})
	defer reopened.Close()
	if got := reopened.Stats().Loaded; got != 0 {
		t.Fatalf("reopen loaded %d envelopes, want 0", got)
	}
}

// TestOutboxSurvivesRestartWithRoundState kills the outbox after
// several failed rounds and checks the next incarnation resumes from
// the persisted round/offset state: exactly one pending envelope (the
// stale per-round records collapse onto the newest) carrying the
// accumulated round count.
func TestOutboxSurvivesRestartWithRoundState(t *testing.T) {
	dir := t.TempDir()
	o := openTestOutbox(t, dir, Options{Backoff: time.Millisecond, BackoffCap: time.Millisecond})
	if err := o.Start(func(e *Entry) (int, error) { return 1, errors.New("down") }); err != nil {
		t.Fatal(err)
	}
	if err := o.Put(testEntry(0)); err != nil {
		t.Fatal(err)
	}
	waitFor(t, "three failed rounds", func() bool { return o.Stats().Rounds >= 3 })
	o.Kill()

	journal := &faults.Journal{}
	o2 := openTestOutbox(t, dir, Options{Backoff: time.Millisecond, Journal: journal})
	st := o2.Stats()
	if st.Loaded != 1 || st.Pending != 1 {
		t.Fatalf("reopen loaded %d / pending %d, want 1 / 1", st.Loaded, st.Pending)
	}
	if journal.Count(faults.KindReplay) == 0 {
		t.Fatal("no replay journal entries for the recovered envelope")
	}
	var got atomic.Int64
	if err := o2.Start(func(e *Entry) (int, error) {
		got.Store(int64(e.Round))
		return 1, nil
	}); err != nil {
		t.Fatal(err)
	}
	waitFor(t, "redelivery after restart", func() bool { return o2.Redelivered() == 1 })
	if got.Load() < 3 {
		t.Fatalf("recovered envelope carried round %d, want >= 3", got.Load())
	}
	if err := o2.Close(); err != nil {
		t.Fatal(err)
	}
	// Third incarnation: everything retired, nothing stale left behind.
	o3 := openTestOutbox(t, dir, Options{})
	defer o3.Close()
	if got := o3.Stats().Loaded; got != 0 {
		t.Fatalf("final reopen loaded %d envelopes, want 0", got)
	}
}

// TestOutboxEscalatesEveryKRounds checks the offset advances after
// every EscalateEvery exhausted rounds and clamps at the delivery
// plan's last block.
func TestOutboxEscalatesEveryKRounds(t *testing.T) {
	dir := t.TempDir()
	o := openTestOutbox(t, dir, Options{Backoff: time.Millisecond, BackoffCap: time.Millisecond, EscalateEvery: 2})
	defer o.Close()
	const blocks = 3
	type seen struct{ round, offset int }
	var mu atomic.Pointer[[]seen]
	mu.Store(&[]seen{})
	if err := o.Start(func(e *Entry) (int, error) {
		s := append(*mu.Load(), seen{e.Round, e.Offset})
		mu.Store(&s)
		return blocks, errors.New("down")
	}); err != nil {
		t.Fatal(err)
	}
	if err := o.Put(testEntry(0)); err != nil {
		t.Fatal(err)
	}
	waitFor(t, "eight failed rounds", func() bool { return o.Stats().Rounds >= 8 })
	o.Kill()
	if got := o.Escalated(); got != blocks-1 {
		t.Fatalf("escalated %d times, want %d (then clamped)", got, blocks-1)
	}
	for _, s := range *mu.Load() {
		want := s.round / 2 // offset advances every 2 rounds...
		if want > blocks-1 {
			want = blocks - 1 // ...until the last block
		}
		if s.offset != want {
			t.Fatalf("round %d ran at offset %d, want %d", s.round, s.offset, want)
		}
	}
}

// TestOutboxDropsUndeliverable checks ErrDrop retires the envelope as
// lost instead of retrying forever.
func TestOutboxDropsUndeliverable(t *testing.T) {
	dir := t.TempDir()
	o := openTestOutbox(t, dir, Options{Backoff: time.Millisecond})
	if err := o.Start(func(e *Entry) (int, error) {
		return 0, fmt.Errorf("tenant gone: %w", ErrDrop)
	}); err != nil {
		t.Fatal(err)
	}
	if err := o.Put(testEntry(0)); err != nil {
		t.Fatal(err)
	}
	waitFor(t, "drop", func() bool { return o.Stats().Dropped == 1 })
	st := o.Stats()
	if st.Pending != 0 || st.Redelivered != 0 {
		t.Fatalf("stats after drop = %+v, want nothing pending or redelivered", st)
	}
	if err := o.Close(); err != nil {
		t.Fatal(err)
	}
	reopened := openTestOutbox(t, dir, Options{})
	defer reopened.Close()
	if got := reopened.Stats().Loaded; got != 0 {
		t.Fatalf("dropped envelope resurrected: loaded %d", got)
	}
}

// TestOutboxPutIsIdempotent re-puts an envelope already pending at the
// same round; the scheduled copy owns it.
func TestOutboxPutIsIdempotent(t *testing.T) {
	o := openTestOutbox(t, t.TempDir(), Options{Backoff: time.Hour})
	defer o.Kill()
	e := testEntry(0)
	if err := o.Put(e); err != nil {
		t.Fatal(err)
	}
	if err := o.Put(e); err != nil {
		t.Fatal(err)
	}
	if got := o.Pending(); got != 1 {
		t.Fatalf("pending = %d after double put, want 1", got)
	}
	if got := o.Stats().Puts; got != 1 {
		t.Fatalf("puts = %d, want 1", got)
	}
}

// TestOutboxRejectsInvalidEntries checks validation failures surface
// on Put instead of poisoning the journal.
func TestOutboxRejectsInvalidEntries(t *testing.T) {
	o := openTestOutbox(t, t.TempDir(), Options{})
	defer o.Kill()
	bad := []Entry{
		{},
		{User: "u" + keySep + "v", Category: "c", Alert: testAlert(0)},
		{User: "u", Category: "c\nd", Alert: testAlert(0)},
		{User: "u", Category: "c", Alert: testAlert(0), Round: -1},
	}
	for i, e := range bad {
		if err := o.Put(e); err == nil {
			t.Errorf("Put(bad[%d]) accepted invalid entry %+v", i, e)
		}
	}
	if got := o.Pending(); got != 0 {
		t.Fatalf("pending = %d after invalid puts, want 0", got)
	}
}

// TestOutboxTombstonesGarbageRecords seeds the journal with records no
// decoder can love and checks reopen tombstones them instead of
// replaying or crashing.
func TestOutboxTombstonesGarbageRecords(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "test.outbox")
	l, err := plog.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	now := time.Now()
	if err := l.LogReceived("no-separator", []byte("junk"), now); err != nil {
		t.Fatal(err)
	}
	if err := l.LogReceived("user"+keySep+"x|y|1"+keySep+"0", []byte("not an envelope"), now); err != nil {
		t.Fatal(err)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	o := openTestOutbox(t, dir, Options{Path: path})
	if st := o.Stats(); st.Loaded != 0 || st.Pending != 0 {
		t.Fatalf("garbage records replayed: %+v", st)
	}
	if err := o.Close(); err != nil {
		t.Fatal(err)
	}
	reopened := openTestOutbox(t, dir, Options{Path: path})
	defer reopened.Close()
	if got := len(reopened.log.Unprocessed()); got != 0 {
		t.Fatalf("garbage records not tombstoned: %d unprocessed", got)
	}
}
