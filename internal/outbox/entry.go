package outbox

import (
	"errors"
	"fmt"
	"strconv"
	"strings"
	"time"

	"simba/internal/alert"
)

// keySep joins the envelope key's fields (user, alert dedup key, round)
// inside the outbox journal. It is the same control character the hub
// uses in its WAL keys, which no user ID contains.
const keySep = "\x1f"

// envelopeHeader versions the persisted envelope payload.
const envelopeHeader = "SIMBA-OUTBOX/1"

// Entry is one guaranteed-tier delivery the outbox owes the user: the
// routed alert plus everything a later incarnation needs to resume the
// delivery — the tenant, the routing category (which selects the
// subscribed delivery mode), how much work has already been spent, the
// escalation offset, and when the next redelivery round is due.
type Entry struct {
	// User is the tenant the alert is owed to.
	User string
	// Category is the routing category the tenant's pipeline assigned;
	// redelivery resolves the subscribed delivery mode through it.
	Category string
	// Alert is the routed alert. Its Created timestamp is preserved, so
	// redelivered duplicates stay detectable downstream (the paper's
	// timestamp dedup contract).
	Alert *alert.Alert
	// Attempts counts the in-memory delivery attempts spent before the
	// envelope was handed to the outbox.
	Attempts int
	// Round counts completed (failed) outbox redelivery rounds.
	Round int
	// Offset is the escalation state: the index of the first delivery-
	// mode block redelivery should try. It advances after every
	// EscalateEvery exhausted rounds — the paper's block fallback
	// generalized across process restarts — and is clamped to the
	// mode's last block by the delivery callback.
	Offset int
	// Due is when the next redelivery round fires.
	Due time.Time
}

// validate checks the entry is persistable.
func (e *Entry) validate() error {
	switch {
	case e == nil:
		return errors.New("outbox: nil entry")
	case e.User == "":
		return errors.New("outbox: entry missing user")
	case strings.ContainsAny(e.User, keySep+"\n"):
		return fmt.Errorf("outbox: user %q contains reserved separator", e.User)
	case strings.ContainsAny(e.Category, "\n"):
		return fmt.Errorf("outbox: category %q contains newline", e.Category)
	case e.Alert == nil:
		return errors.New("outbox: entry missing alert")
	case e.Attempts < 0 || e.Round < 0 || e.Offset < 0:
		return errors.New("outbox: negative attempt state")
	}
	return e.Alert.Validate()
}

// dedupKey identifies the alert the entry redelivers, independent of
// its round: re-persisted rounds of the same alert collapse under it.
func (e *Entry) dedupKey() string { return e.User + keySep + e.Alert.DedupKey() }

// key is the round-stamped journal key the entry is persisted under.
func (e *Entry) key() string { return e.dedupKey() + keySep + strconv.Itoa(e.Round) }

// splitKey parses a journal key into the alert identity and round.
func splitKey(key string) (dedup string, round int, err error) {
	i := strings.LastIndex(key, keySep)
	if i < 0 {
		return "", 0, fmt.Errorf("outbox: malformed key %q", key)
	}
	round, err = strconv.Atoi(key[i+1:])
	if err != nil || round < 0 {
		return "", 0, fmt.Errorf("outbox: malformed round in key %q", key)
	}
	return key[:i], round, nil
}

// encode renders the envelope payload: a line-oriented header (in the
// style of the alert wire form) followed by the embedded alert.
//
//	SIMBA-OUTBOX/1
//	USER: <user>
//	CATEGORY: <category>
//	ATTEMPTS: <n>
//	ROUND: <n>
//	OFFSET: <n>
//	DUE: <unix-nanos>
//	ALERT:
//	<alert wire form...>
func (e *Entry) encode() ([]byte, error) {
	if err := e.validate(); err != nil {
		return nil, err
	}
	payload, err := e.Alert.MarshalText()
	if err != nil {
		return nil, err
	}
	var b strings.Builder
	b.Grow(len(payload) + 128)
	b.WriteString(envelopeHeader)
	b.WriteByte('\n')
	field := func(k, v string) {
		b.WriteString(k)
		b.WriteString(": ")
		b.WriteString(v)
		b.WriteByte('\n')
	}
	field("USER", e.User)
	field("CATEGORY", e.Category)
	field("ATTEMPTS", strconv.Itoa(e.Attempts))
	field("ROUND", strconv.Itoa(e.Round))
	field("OFFSET", strconv.Itoa(e.Offset))
	field("DUE", strconv.FormatInt(e.Due.UnixNano(), 10))
	b.WriteString("ALERT:\n")
	b.Write(payload)
	return []byte(b.String()), nil
}

// decodeEntry parses an envelope payload produced by encode.
func decodeEntry(payload []byte) (*Entry, error) {
	text := string(payload)
	lines := strings.Split(text, "\n")
	if len(lines) == 0 || strings.TrimSpace(lines[0]) != envelopeHeader {
		return nil, errors.New("outbox: not an outbox envelope")
	}
	e := &Entry{}
	i := 1
	for ; i < len(lines); i++ {
		if lines[i] == "ALERT:" {
			i++
			break
		}
		key, val, ok := strings.Cut(lines[i], ": ")
		if !ok {
			key, val, ok = strings.Cut(lines[i], ":")
			if !ok {
				return nil, fmt.Errorf("outbox: malformed envelope line %q", lines[i])
			}
		}
		var err error
		switch key {
		case "USER":
			e.User = val
		case "CATEGORY":
			e.Category = val
		case "ATTEMPTS":
			e.Attempts, err = strconv.Atoi(val)
		case "ROUND":
			e.Round, err = strconv.Atoi(val)
		case "OFFSET":
			e.Offset, err = strconv.Atoi(val)
		case "DUE":
			var nanos int64
			nanos, err = strconv.ParseInt(val, 10, 64)
			if err == nil {
				e.Due = time.Unix(0, nanos)
			}
		default:
			// Unknown fields are skipped for forward compatibility.
		}
		if err != nil {
			return nil, fmt.Errorf("outbox: malformed envelope field %s: %w", key, err)
		}
	}
	if i >= len(lines) {
		return nil, errors.New("outbox: envelope missing alert")
	}
	var a alert.Alert
	if err := a.UnmarshalText([]byte(strings.Join(lines[i:], "\n"))); err != nil {
		return nil, fmt.Errorf("outbox: envelope alert: %w", err)
	}
	e.Alert = &a
	return e, e.validate()
}
