package assistant

import (
	"strings"
	"testing"
	"time"

	"simba/internal/addr"
	"simba/internal/alert"
	"simba/internal/clock"
	"simba/internal/core"
	"simba/internal/dist"
	"simba/internal/dmode"
	"simba/internal/email"
)

type fixture struct {
	t     *testing.T
	sim   *clock.Sim
	asst  *Assistant
	inbox *email.Mailbox
}

func newFixture(t *testing.T) *fixture {
	t.Helper()
	sim := clock.NewSim(time.Time{})
	emSvc, err := email.NewService(email.Config{Clock: sim, RNG: dist.NewRNG(1), Delay: dist.Fixed(time.Second)})
	if err != nil {
		t.Fatal(err)
	}
	inbox, err := emSvc.CreateMailbox("buddy@sim")
	if err != nil {
		t.Fatal(err)
	}
	sender, err := core.NewDirectEmail(emSvc, "assistant@sim")
	if err != nil {
		t.Fatal(err)
	}
	engine, err := core.NewEngine(sim, nil, sender)
	if err != nil {
		t.Fatal(err)
	}
	reg := addr.NewRegistry("buddy")
	if err := reg.Register(addr.Address{Type: addr.TypeEmail, Name: "Buddy email", Target: "buddy@sim", Enabled: true}); err != nil {
		t.Fatal(err)
	}
	mode := &dmode.Mode{Name: "email", Blocks: []dmode.Block{{Actions: []dmode.Action{{Address: "Buddy email"}}}}}
	target, err := core.NewTarget(engine, reg, mode)
	if err != nil {
		t.Fatal(err)
	}
	asst, err := New(Config{Clock: sim, Target: target, IdleThreshold: 10 * time.Minute})
	if err != nil {
		t.Fatal(err)
	}
	return &fixture{t: t, sim: sim, asst: asst, inbox: inbox}
}

func (f *fixture) advance(total, step time.Duration) {
	f.t.Helper()
	for elapsed := time.Duration(0); elapsed < total; elapsed += step {
		f.sim.Advance(step)
		time.Sleep(time.Millisecond)
	}
}

func (f *fixture) goIdle() {
	f.t.Helper()
	f.advance(11*time.Minute, time.Minute)
	if !f.asst.active() {
		f.t.Fatal("assistant not active after idle period")
	}
}

func TestNewValidation(t *testing.T) {
	if _, err := New(Config{}); err == nil {
		t.Fatal("empty config accepted")
	}
}

func TestIdleTracking(t *testing.T) {
	f := newFixture(t)
	if f.asst.IdleFor() != 0 {
		t.Fatalf("IdleFor = %v at start", f.asst.IdleFor())
	}
	f.advance(5*time.Minute, time.Minute)
	if got := f.asst.IdleFor(); got < 5*time.Minute {
		t.Fatalf("IdleFor = %v", got)
	}
	f.asst.Activity()
	if got := f.asst.IdleFor(); got != 0 {
		t.Fatalf("IdleFor after activity = %v", got)
	}
}

func TestEmailForwardedOnlyWhenAwayAndImportant(t *testing.T) {
	f := newFixture(t)
	// User present: nothing forwarded.
	f.asst.IncomingEmail("boss@corp", "urgent!", alert.UrgencyHigh)
	if f.asst.AlertsSent() != 0 {
		t.Fatal("forwarded while user present")
	}
	f.goIdle()
	// Low importance: suppressed.
	f.asst.IncomingEmail("list@corp", "newsletter", alert.UrgencyNormal)
	if f.asst.AlertsSent() != 0 {
		t.Fatal("forwarded low-importance email")
	}
	// High importance while away: forwarded.
	f.asst.IncomingEmail("boss@corp", "urgent!", alert.UrgencyHigh)
	if f.asst.AlertsSent() != 1 {
		t.Fatalf("AlertsSent = %d", f.asst.AlertsSent())
	}
	if f.asst.SuppressedEmails() != 2 {
		t.Fatalf("SuppressedEmails = %d", f.asst.SuppressedEmails())
	}
	f.advance(5*time.Second, time.Second)
	msgs := f.inbox.Fetch()
	if len(msgs) != 1 {
		t.Fatalf("buddy mailbox has %d messages", len(msgs))
	}
	var a alert.Alert
	if err := a.UnmarshalText([]byte(msgs[0].Body)); err != nil {
		t.Fatal(err)
	}
	if a.Source != "desktop-assistant" || !strings.HasPrefix(a.Subject, "Email: ") {
		t.Fatalf("alert = %+v", a)
	}
	if a.Keywords[0] != "Email" {
		t.Fatalf("keywords = %v", a.Keywords)
	}
}

func TestEmailsReadElsewhereSuppresses(t *testing.T) {
	f := newFixture(t)
	f.goIdle()
	f.asst.SetEmailsReadElsewhere(true)
	f.asst.IncomingEmail("boss@corp", "urgent!", alert.UrgencyHigh)
	if f.asst.AlertsSent() != 0 {
		t.Fatal("forwarded despite reading elsewhere")
	}
	f.asst.SetEmailsReadElsewhere(false)
	f.asst.IncomingEmail("boss@corp", "urgent again", alert.UrgencyHigh)
	if f.asst.AlertsSent() != 1 {
		t.Fatal("not forwarded after flag cleared")
	}
}

func TestReminderPopsOnScreenWhenPresent(t *testing.T) {
	f := newFixture(t)
	f.asst.ScheduleReminder("standup", alert.UrgencyHigh, 2*time.Minute)
	f.advance(3*time.Minute, 30*time.Second)
	// User was active 3 minutes ago — still "present" (under threshold).
	if f.asst.AlertsSent() != 0 || f.asst.OnScreenPopups() != 1 {
		t.Fatalf("sent=%d popups=%d", f.asst.AlertsSent(), f.asst.OnScreenPopups())
	}
}

func TestReminderForwardedWhenAway(t *testing.T) {
	f := newFixture(t)
	f.asst.ScheduleReminder("board meeting", alert.UrgencyCritical, 20*time.Minute)
	f.advance(25*time.Minute, time.Minute)
	if f.asst.AlertsSent() != 1 {
		t.Fatalf("AlertsSent = %d", f.asst.AlertsSent())
	}
	f.advance(5*time.Second, time.Second)
	msgs := f.inbox.Fetch()
	if len(msgs) != 1 {
		t.Fatalf("buddy mailbox has %d messages", len(msgs))
	}
	var a alert.Alert
	if err := a.UnmarshalText([]byte(msgs[0].Body)); err != nil {
		t.Fatal(err)
	}
	if a.Keywords[0] != "Reminder" || !strings.Contains(a.Subject, "board meeting") {
		t.Fatalf("alert = %+v", a)
	}
}

func TestLowImportanceReminderNeverForwarded(t *testing.T) {
	f := newFixture(t)
	f.asst.ScheduleReminder("water plants", alert.UrgencyLow, 20*time.Minute)
	f.advance(25*time.Minute, time.Minute)
	if f.asst.AlertsSent() != 0 || f.asst.OnScreenPopups() != 1 {
		t.Fatalf("sent=%d popups=%d", f.asst.AlertsSent(), f.asst.OnScreenPopups())
	}
}
