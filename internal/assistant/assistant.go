// Package assistant implements the SIMBA Desktop Assistant of Section
// 2.5: software on the user's primary machine that stays inactive
// until the interactive idle time exceeds a user-specified threshold,
// then forwards high-importance incoming emails and calendar reminders
// as alerts (the paper sent them as SMS messages; under the SIMBA
// architecture they are routed through MyAlertBuddy like every other
// alert). If the software determines the user has processed email from
// somewhere else, email forwarding is suppressed.
package assistant

import (
	"errors"
	"fmt"
	"sync"
	"time"

	"simba/internal/alert"
	"simba/internal/clock"
	"simba/internal/core"
)

// DefaultIdleThreshold is how long the desktop must be idle before the
// assistant activates.
const DefaultIdleThreshold = 10 * time.Minute

// Config parameterizes an Assistant.
type Config struct {
	// Clock is required.
	Clock clock.Clock
	// Target is where alerts go (the buddy); required.
	Target *core.Target
	// IdleThreshold overrides DefaultIdleThreshold.
	IdleThreshold time.Duration
	// OnReport observes alert deliveries. Optional.
	OnReport func(a *alert.Alert, rep *core.Report, err error)
}

// Assistant is the desktop assistant.
type Assistant struct {
	cfg Config

	mu               sync.Mutex
	lastActivity     time.Time
	readElsewhere    bool
	alertsSent       int
	onScreenPopups   int
	suppressedEmails int
}

// New builds an assistant. The desktop starts "active" (activity now).
func New(cfg Config) (*Assistant, error) {
	if cfg.Clock == nil || cfg.Target == nil {
		return nil, errors.New("assistant: Config requires Clock and Target")
	}
	if cfg.IdleThreshold <= 0 {
		cfg.IdleThreshold = DefaultIdleThreshold
	}
	return &Assistant{cfg: cfg, lastActivity: cfg.Clock.Now()}, nil
}

// Activity records interactive input (keyboard/mouse), resetting the
// idle clock.
func (a *Assistant) Activity() {
	a.mu.Lock()
	a.lastActivity = a.cfg.Clock.Now()
	a.mu.Unlock()
}

// IdleFor returns how long the desktop has been idle.
func (a *Assistant) IdleFor() time.Duration {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.cfg.Clock.Now().Sub(a.lastActivity)
}

// active reports whether the assistant should forward alerts: the user
// is away (idle beyond threshold).
func (a *Assistant) active() bool {
	return a.IdleFor() >= a.cfg.IdleThreshold
}

// SetEmailsReadElsewhere tells the assistant the user is processing
// email from another device; incoming-email alerts are suppressed.
func (a *Assistant) SetEmailsReadElsewhere(v bool) {
	a.mu.Lock()
	a.readElsewhere = v
	a.mu.Unlock()
}

// AlertsSent returns how many alerts the assistant forwarded.
func (a *Assistant) AlertsSent() int {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.alertsSent
}

// OnScreenPopups returns how many reminders popped on the desktop
// instead of being forwarded (user present).
func (a *Assistant) OnScreenPopups() int {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.onScreenPopups
}

// SuppressedEmails returns emails not forwarded because the user reads
// mail elsewhere or importance was low.
func (a *Assistant) SuppressedEmails() int {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.suppressedEmails
}

// IncomingEmail notifies the assistant of a newly arrived email on the
// desktop. High-importance email is forwarded when the user is away.
func (a *Assistant) IncomingEmail(from, subject string, importance alert.Urgency) {
	a.mu.Lock()
	readElsewhere := a.readElsewhere
	a.mu.Unlock()
	if importance < alert.UrgencyHigh || !a.active() || readElsewhere {
		a.mu.Lock()
		a.suppressedEmails++
		a.mu.Unlock()
		return
	}
	a.send(&alert.Alert{
		ID:       alert.NextID("assist-em"),
		Source:   "desktop-assistant",
		Keywords: []string{"Email"},
		Subject:  fmt.Sprintf("Email: %s", subject),
		Body:     fmt.Sprintf("High-importance email from %s: %s", from, subject),
		Urgency:  importance,
		Created:  a.cfg.Clock.Now(),
	})
}

// ScheduleReminder arms a calendar reminder that fires after the given
// offset. When it fires, it pops on screen if the user is present, or
// is forwarded as an alert if the user is away and it is important.
func (a *Assistant) ScheduleReminder(subject string, importance alert.Urgency, in time.Duration) {
	a.cfg.Clock.AfterFunc(in, func() {
		if !a.active() || importance < alert.UrgencyHigh {
			a.mu.Lock()
			a.onScreenPopups++
			a.mu.Unlock()
			return
		}
		a.send(&alert.Alert{
			ID:       alert.NextID("assist-rem"),
			Source:   "desktop-assistant",
			Keywords: []string{"Reminder"},
			Subject:  fmt.Sprintf("Reminder: %s", subject),
			Body:     fmt.Sprintf("Calendar reminder: %s", subject),
			Urgency:  importance,
			Created:  a.cfg.Clock.Now(),
		})
	})
}

func (a *Assistant) send(al *alert.Alert) {
	a.mu.Lock()
	a.alertsSent++
	a.mu.Unlock()
	rep, err := a.cfg.Target.Deliver(al)
	if a.cfg.OnReport != nil {
		a.cfg.OnReport(al, rep, err)
	}
}
