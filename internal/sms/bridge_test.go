package sms

import (
	"errors"
	"testing"
	"time"

	"simba/internal/clock"
	"simba/internal/dist"
	"simba/internal/email"
)

func newBridgeFixture(t *testing.T) (*clock.Sim, *email.Service, *Carrier) {
	t.Helper()
	sim := clock.NewSim(time.Time{})
	emSvc, err := email.NewService(email.Config{Clock: sim, RNG: dist.NewRNG(1), Delay: dist.Fixed(time.Second)})
	if err != nil {
		t.Fatal(err)
	}
	carrier, err := NewCarrier(Config{Clock: sim, RNG: dist.NewRNG(2), Delay: dist.Fixed(3 * time.Second)})
	if err != nil {
		t.Fatal(err)
	}
	return sim, emSvc, carrier
}

func TestAttachGatewayValidation(t *testing.T) {
	sim, emSvc, carrier := newBridgeFixture(t)
	if _, err := AttachGateway(nil, emSvc, carrier, "555"); err == nil {
		t.Fatal("nil clock accepted")
	}
	if _, err := AttachGateway(sim, nil, carrier, "555"); err == nil {
		t.Fatal("nil email service accepted")
	}
	if _, err := AttachGateway(sim, emSvc, nil, "555"); err == nil {
		t.Fatal("nil carrier accepted")
	}
	if _, err := AttachGateway(sim, emSvc, carrier, "555"); !errors.Is(err, ErrUnknownNumber) {
		t.Fatalf("unprovisioned number = %v", err)
	}
}

func TestBridgeForwardsEmailToPhone(t *testing.T) {
	sim, emSvc, carrier := newBridgeFixture(t)
	phone, err := carrier.Provision("5551234")
	if err != nil {
		t.Fatal(err)
	}
	b, err := AttachGateway(sim, emSvc, carrier, "5551234")
	if err != nil {
		t.Fatal(err)
	}
	defer b.Stop()
	if b.Address() != "5551234@sms.sim" {
		t.Fatalf("Address = %q", b.Address())
	}
	if err := emSvc.Submit("buddy@sim", b.Address(), "subject", "sms body"); err != nil {
		t.Fatal(err)
	}
	// Email transit 1s → bridge pump → SMS transit 3s.
	for i := 0; i < 15; i++ {
		sim.Advance(time.Second)
		time.Sleep(time.Millisecond)
	}
	msgs := phone.Fetch()
	if len(msgs) != 1 || msgs[0].Text != "sms body" || msgs[0].From != "buddy@sim" {
		t.Fatalf("phone got %+v", msgs)
	}
}

func TestBridgeReusesExistingMailbox(t *testing.T) {
	sim, emSvc, carrier := newBridgeFixture(t)
	if _, err := carrier.Provision("555"); err != nil {
		t.Fatal(err)
	}
	if _, err := emSvc.CreateMailbox(GatewayAddress("555")); err != nil {
		t.Fatal(err)
	}
	b, err := AttachGateway(sim, emSvc, carrier, "555")
	if err != nil {
		t.Fatalf("AttachGateway with pre-existing mailbox: %v", err)
	}
	b.Stop()
	b.Stop() // idempotent
}

func TestBridgeStopHaltsForwarding(t *testing.T) {
	sim, emSvc, carrier := newBridgeFixture(t)
	phone, err := carrier.Provision("555")
	if err != nil {
		t.Fatal(err)
	}
	b, err := AttachGateway(sim, emSvc, carrier, "555")
	if err != nil {
		t.Fatal(err)
	}
	b.Stop()
	if err := emSvc.Submit("x@sim", b.Address(), "s", "text"); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 15; i++ {
		sim.Advance(time.Second)
		time.Sleep(time.Millisecond)
	}
	if phone.Len() != 0 {
		t.Fatal("stopped bridge forwarded a message")
	}
}

func TestBridgePollFallbackCatchesCoalescedMail(t *testing.T) {
	// Several messages landing between pump wakeups coalesce into one
	// notification; the bridge's Fetch drains them all.
	sim, emSvc, carrier := newBridgeFixture(t)
	phone, err := carrier.Provision("555")
	if err != nil {
		t.Fatal(err)
	}
	b, err := AttachGateway(sim, emSvc, carrier, "555")
	if err != nil {
		t.Fatal(err)
	}
	defer b.Stop()
	for i := 0; i < 4; i++ {
		if err := emSvc.Submit("x@sim", b.Address(), "s", "t"); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 20; i++ {
		sim.Advance(time.Second)
		time.Sleep(time.Millisecond)
	}
	if got := phone.Len(); got != 4 {
		t.Fatalf("phone has %d messages, want 4", got)
	}
}
