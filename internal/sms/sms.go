// Package sms simulates a cellular Short Message Service carrier. The
// paper reports that SMS delivery through a large carrier shows "a
// similar range of unpredictability" to email, so the simulator shares
// email's heavy-tailed delay/loss contract, addressed through an
// email-style gateway address (<number>@sms.sim) as real carriers
// provided. Phones can also lose coverage ("the carrier does not cover
// the area of the user's location"), during which messages are dropped
// or delayed.
package sms

import (
	"errors"
	"fmt"
	"sync"
	"time"

	"simba/internal/clock"
	"simba/internal/dist"
	"simba/internal/faults"
)

// Gateway errors.
var (
	// ErrUnknownNumber indicates no phone is provisioned for the number.
	ErrUnknownNumber = errors.New("sms: unknown number")
	// ErrGatewayDown indicates a carrier gateway outage.
	ErrGatewayDown = errors.New("sms: gateway unavailable")
)

// GatewayDomain is the email-style domain of the carrier gateway.
const GatewayDomain = "sms.sim"

// GatewayAddress returns the email-style gateway address for a phone
// number — the address users supply to alert services, and the reason
// the paper flags the privacy problem (the address reveals the number).
func GatewayAddress(number string) string { return number + "@" + GatewayDomain }

// Message is one delivered SMS.
type Message struct {
	From, ToNumber string
	Text           string
	SentAt         time.Time
	DeliveredAt    time.Time
}

// Config parameterizes a Carrier.
type Config struct {
	// Clock drives delivery latency; required.
	Clock clock.Clock
	// RNG seeds sampling; required.
	RNG *dist.RNG
	// Delay is the delivery latency distribution; defaults to a
	// heavy-tailed mixture (seconds, sometimes much longer).
	Delay dist.Dist
	// LossProbability is the chance a message is silently dropped.
	LossProbability float64
	// Outage, when active, fails Send calls. Optional.
	Outage *faults.Flag
}

// Carrier is the simulated SMS carrier.
type Carrier struct {
	clk    clock.Clock
	rng    *dist.RNG
	delay  dist.Dist
	lossP  float64
	outage *faults.Flag

	mu     sync.Mutex
	phones map[string]*Phone
	lost   int
}

// NewCarrier builds a carrier.
func NewCarrier(cfg Config) (*Carrier, error) {
	if cfg.Clock == nil {
		return nil, errors.New("sms: Config.Clock is required")
	}
	if cfg.RNG == nil {
		return nil, errors.New("sms: Config.RNG is required")
	}
	if cfg.Delay == nil {
		mix, err := dist.NewMixture(
			dist.Component{Weight: 0.85, Dist: dist.Normal{Mean: 8 * time.Second, Stddev: 4 * time.Second, Floor: time.Second}},
			dist.Component{Weight: 0.15, Dist: dist.LogNormal{Mu: 5.5, Sigma: 1.5}},
		)
		if err != nil {
			return nil, err
		}
		cfg.Delay = mix
	}
	if cfg.LossProbability < 0 || cfg.LossProbability >= 1 {
		return nil, fmt.Errorf("sms: loss probability %v outside [0, 1)", cfg.LossProbability)
	}
	if cfg.Outage == nil {
		cfg.Outage = faults.NewFlag("sms-gateway-outage")
	}
	return &Carrier{
		clk:    cfg.Clock,
		rng:    cfg.RNG,
		delay:  cfg.Delay,
		lossP:  cfg.LossProbability,
		outage: cfg.Outage,
		phones: make(map[string]*Phone),
	}, nil
}

// Outage returns the carrier's gateway outage flag.
func (c *Carrier) Outage() *faults.Flag { return c.outage }

// Provision creates a phone for number.
func (c *Carrier) Provision(number string) (*Phone, error) {
	if number == "" {
		return nil, errors.New("sms: empty number")
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if _, ok := c.phones[number]; ok {
		return nil, fmt.Errorf("sms: number %q already provisioned", number)
	}
	p := &Phone{number: number, covered: true, notify: make(chan struct{}, 1)}
	c.phones[number] = p
	return p, nil
}

// Phone returns the phone for number.
func (c *Carrier) Phone(number string) (*Phone, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	p, ok := c.phones[number]
	return p, ok
}

// Send queues text for the numbered phone. Acceptance is synchronous;
// delivery happens after a sampled delay and is dropped if the message
// is lost in the network or the phone is out of coverage at delivery
// time.
func (c *Carrier) Send(from, toNumber, text string) error {
	if c.outage.Active() {
		return ErrGatewayDown
	}
	c.mu.Lock()
	p, ok := c.phones[toNumber]
	c.mu.Unlock()
	if !ok {
		return fmt.Errorf("sms: send to %q: %w", toNumber, ErrUnknownNumber)
	}
	msg := Message{From: from, ToNumber: toNumber, Text: text, SentAt: c.clk.Now()}
	if c.rng.Bool(c.lossP) {
		c.noteLost()
		return nil
	}
	d := c.delay.Sample(c.rng)
	c.clk.AfterFunc(d, func() {
		if !p.Covered() {
			c.noteLost()
			return
		}
		msg.DeliveredAt = c.clk.Now()
		p.put(msg)
	})
	return nil
}

// Lost returns how many messages were dropped in transit or to
// coverage gaps.
func (c *Carrier) Lost() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.lost
}

func (c *Carrier) noteLost() {
	c.mu.Lock()
	c.lost++
	c.mu.Unlock()
}

// Phone is one subscriber handset.
type Phone struct {
	number string

	mu      sync.Mutex
	covered bool
	msgs    []Message
	notify  chan struct{}
}

// Number returns the phone's number.
func (p *Phone) Number() string { return p.number }

// Covered reports whether the phone currently has carrier coverage
// (and battery).
func (p *Phone) Covered() bool {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.covered
}

// SetCovered flips coverage, modeling travel outside the carrier's
// area or a dead battery.
func (p *Phone) SetCovered(covered bool) {
	p.mu.Lock()
	p.covered = covered
	p.mu.Unlock()
}

func (p *Phone) put(msg Message) {
	p.mu.Lock()
	p.msgs = append(p.msgs, msg)
	p.mu.Unlock()
	select {
	case p.notify <- struct{}{}:
	default:
	}
}

// Notify returns a coalescing new-message channel.
func (p *Phone) Notify() <-chan struct{} { return p.notify }

// Fetch removes and returns all delivered messages.
func (p *Phone) Fetch() []Message {
	p.mu.Lock()
	defer p.mu.Unlock()
	out := p.msgs
	p.msgs = nil
	return out
}

// Len returns the number of unread messages.
func (p *Phone) Len() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return len(p.msgs)
}
