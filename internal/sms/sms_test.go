package sms

import (
	"errors"
	"testing"
	"time"

	"simba/internal/clock"
	"simba/internal/dist"
)

func newTestCarrier(t *testing.T, lossP float64) (*Carrier, *clock.Sim) {
	t.Helper()
	sim := clock.NewSim(time.Time{})
	c, err := NewCarrier(Config{
		Clock:           sim,
		RNG:             dist.NewRNG(1),
		Delay:           dist.Fixed(8 * time.Second),
		LossProbability: lossP,
	})
	if err != nil {
		t.Fatal(err)
	}
	return c, sim
}

func TestGatewayAddress(t *testing.T) {
	if got := GatewayAddress("5551234"); got != "5551234@sms.sim" {
		t.Fatalf("GatewayAddress = %q", got)
	}
}

func TestNewCarrierValidation(t *testing.T) {
	sim := clock.NewSim(time.Time{})
	if _, err := NewCarrier(Config{RNG: dist.NewRNG(1)}); err == nil {
		t.Fatal("missing clock accepted")
	}
	if _, err := NewCarrier(Config{Clock: sim}); err == nil {
		t.Fatal("missing rng accepted")
	}
	if _, err := NewCarrier(Config{Clock: sim, RNG: dist.NewRNG(1), LossProbability: -0.1}); err == nil {
		t.Fatal("bad loss probability accepted")
	}
}

func TestProvision(t *testing.T) {
	c, _ := newTestCarrier(t, 0)
	if _, err := c.Provision(""); err == nil {
		t.Fatal("empty number accepted")
	}
	p, err := c.Provision("5551234")
	if err != nil {
		t.Fatal(err)
	}
	if p.Number() != "5551234" || !p.Covered() {
		t.Fatalf("phone = %+v", p)
	}
	if _, err := c.Provision("5551234"); err == nil {
		t.Fatal("duplicate number accepted")
	}
	got, ok := c.Phone("5551234")
	if !ok || got != p {
		t.Fatal("Phone lookup failed")
	}
}

func TestSendDelivers(t *testing.T) {
	c, sim := newTestCarrier(t, 0)
	p, _ := c.Provision("5551234")
	sent := sim.Now()
	if err := c.Send("simba", "5551234", "alert!"); err != nil {
		t.Fatal(err)
	}
	sim.Advance(7 * time.Second)
	if p.Len() != 0 {
		t.Fatal("delivered early")
	}
	sim.Advance(time.Second)
	msgs := p.Fetch()
	if len(msgs) != 1 {
		t.Fatalf("got %d messages", len(msgs))
	}
	if msgs[0].Text != "alert!" || msgs[0].From != "simba" {
		t.Fatalf("message = %+v", msgs[0])
	}
	if got := msgs[0].DeliveredAt.Sub(sent); got != 8*time.Second {
		t.Fatalf("latency = %v", got)
	}
	select {
	case <-p.Notify():
	default:
		t.Fatal("no notification")
	}
}

func TestSendToUnknownNumber(t *testing.T) {
	c, _ := newTestCarrier(t, 0)
	if err := c.Send("x", "000", "t"); !errors.Is(err, ErrUnknownNumber) {
		t.Fatalf("Send = %v", err)
	}
}

func TestGatewayOutage(t *testing.T) {
	c, sim := newTestCarrier(t, 0)
	_, _ = c.Provision("5551234")
	c.Outage().Set(true, sim.Now())
	if err := c.Send("x", "5551234", "t"); !errors.Is(err, ErrGatewayDown) {
		t.Fatalf("Send during outage = %v", err)
	}
	c.Outage().Set(false, sim.Now())
	if err := c.Send("x", "5551234", "t"); err != nil {
		t.Fatal(err)
	}
}

func TestCoverageGapDropsAtDelivery(t *testing.T) {
	c, sim := newTestCarrier(t, 0)
	p, _ := c.Provision("5551234")
	if err := c.Send("x", "5551234", "t"); err != nil {
		t.Fatal(err)
	}
	p.SetCovered(false)
	sim.Advance(time.Minute)
	if p.Len() != 0 {
		t.Fatal("delivered without coverage")
	}
	if c.Lost() != 1 {
		t.Fatalf("Lost() = %d", c.Lost())
	}
	p.SetCovered(true)
	if err := c.Send("x", "5551234", "t2"); err != nil {
		t.Fatal(err)
	}
	sim.Advance(time.Minute)
	if p.Len() != 1 {
		t.Fatal("not delivered after coverage restored")
	}
}

func TestSilentLossAccounting(t *testing.T) {
	c, sim := newTestCarrier(t, 0.4)
	p, _ := c.Provision("5551234")
	const n = 400
	for i := 0; i < n; i++ {
		if err := c.Send("x", "5551234", "t"); err != nil {
			t.Fatal(err)
		}
	}
	sim.Advance(time.Minute)
	if got := p.Len() + c.Lost(); got != n {
		t.Fatalf("delivered+lost = %d, want %d", got, n)
	}
	if c.Lost() < n/5 || c.Lost() > 3*n/5 {
		t.Fatalf("Lost() = %d of %d with p=0.4", c.Lost(), n)
	}
}

func TestDefaultDelayHasTail(t *testing.T) {
	sim := clock.NewSim(time.Time{})
	c, err := NewCarrier(Config{Clock: sim, RNG: dist.NewRNG(5)})
	if err != nil {
		t.Fatal(err)
	}
	p, _ := c.Provision("5551234")
	const n = 300
	for i := 0; i < n; i++ {
		if err := c.Send("x", "5551234", "t"); err != nil {
			t.Fatal(err)
		}
	}
	sim.Advance(30 * time.Second)
	fast := len(p.Fetch())
	sim.Advance(72 * time.Hour)
	if got := fast + p.Len(); got < n-1 { // the extreme tail may exceed 72h; tolerate one straggler
		t.Fatalf("delivered %d of %d after 72h", got, n)
	}
	if fast < n/2 || fast == n {
		t.Fatalf("delay distribution off: %d/%d within 30s", fast, n)
	}
}
