package sms

import (
	"errors"
	"time"

	"simba/internal/clock"
	"simba/internal/email"
)

// Bridge connects the carrier's email gateway to SMS delivery: email
// submitted to GatewayAddress(number) is forwarded to the phone as an
// SMS. This is how the paper's sources sent SMS — "to receive alerts
// as SMS messages on a cell phone, the user needs to supply the SMS
// email address" — and why SIMBA needs only IM and email senders.
type Bridge struct {
	clk     clock.Clock
	carrier *Carrier
	number  string
	mb      *email.Mailbox
	stop    chan struct{}
}

// AttachGateway provisions (or reuses) the gateway mailbox for number
// and starts forwarding. The phone must already be provisioned.
func AttachGateway(clk clock.Clock, emailSvc *email.Service, carrier *Carrier, number string) (*Bridge, error) {
	if clk == nil || emailSvc == nil || carrier == nil {
		return nil, errors.New("sms: AttachGateway requires clock, email service, and carrier")
	}
	if _, ok := carrier.Phone(number); !ok {
		return nil, ErrUnknownNumber
	}
	address := GatewayAddress(number)
	mb, ok := emailSvc.Mailbox(address)
	if !ok {
		var err error
		mb, err = emailSvc.CreateMailbox(address)
		if err != nil {
			return nil, err
		}
	}
	b := &Bridge{
		clk:     clk,
		carrier: carrier,
		number:  number,
		mb:      mb,
		stop:    make(chan struct{}),
	}
	go b.run()
	return b, nil
}

// Address returns the gateway's email address.
func (b *Bridge) Address() string { return GatewayAddress(b.number) }

// Stop ends forwarding.
func (b *Bridge) Stop() {
	select {
	case <-b.stop:
	default:
		close(b.stop)
	}
}

func (b *Bridge) run() {
	// Poll as a fallback so coalesced notifications never strand mail.
	ticker := b.clk.NewTicker(5 * time.Second)
	defer ticker.Stop()
	for {
		select {
		case <-b.stop:
			return
		case <-b.mb.Notify():
		case <-ticker.C():
		}
		// A notify/tick can win the select race against a just-closed
		// stop channel; re-check before forwarding.
		select {
		case <-b.stop:
			return
		default:
		}
		for _, msg := range b.mb.Fetch() {
			// Errors (gateway outage) drop the message, as real
			// gateways silently do.
			_ = b.carrier.Send(msg.From, b.number, msg.Body)
		}
	}
}
