// Package enduser simulates the human at the end of the SIMBA
// pipeline: an IM client that acknowledges alert IMs when the user is
// present, mailboxes the user checks periodically, and a phone whose
// SMS messages the user notices shortly after they arrive. The
// endpoint records a receipt for every alert it sees, measuring
// end-to-end latency from the alert's creation timestamp and
// discarding duplicates by timestamp, exactly as the paper prescribes
// for duplicate deliveries caused by MyAlertBuddy crash-replays.
package enduser

import (
	"errors"
	"sync"
	"time"

	"simba/internal/addr"
	"simba/internal/alert"
	"simba/internal/clock"
	"simba/internal/core"
	"simba/internal/email"
	"simba/internal/im"
	"simba/internal/sms"
)

// Receipt is one alert observed by the user.
type Receipt struct {
	// Channel is how the alert reached the user.
	Channel addr.Type
	// At is when the user saw it.
	At time.Time
	// Latency is At minus the alert's creation time.
	Latency time.Duration
	// Alert is the received alert.
	Alert *alert.Alert
}

// Config parameterizes a User.
type Config struct {
	// Clock is required.
	Clock clock.Clock
	// Name labels the user.
	Name string
	// IMService + IMHandle give the user an IM presence. Optional.
	IMService *im.Service
	IMHandle  string
	// EmailService + EmailAddresses are the user's mailboxes (must
	// exist). Optional.
	EmailService   *email.Service
	EmailAddresses []string
	// Carrier + PhoneNumber give the user a phone (must be
	// provisioned). Optional.
	Carrier     *sms.Carrier
	PhoneNumber string
	// AckDelay is the think time before the user acknowledges an alert
	// IM when present.
	AckDelay time.Duration
	// EmailCheckPeriod is how often the user reads email (default 5m).
	EmailCheckPeriod time.Duration
	// SMSReadDelay is how long after arrival the user notices an SMS
	// (default 30s).
	SMSReadDelay time.Duration
}

// User is the simulated endpoint. Create with New, then Start.
type User struct {
	cfg   Config
	imEp  *core.DirectIM
	phone *sms.Phone

	present sync2Bool

	mu       sync.Mutex
	receipts []Receipt
	seen     map[string]bool
	dups     int
	stop     chan struct{}
}

// sync2Bool is an atomic bool with a true default.
type sync2Bool struct {
	mu  sync.Mutex
	off bool
}

func (b *sync2Bool) get() bool { b.mu.Lock(); defer b.mu.Unlock(); return !b.off }
func (b *sync2Bool) set(v bool) {
	b.mu.Lock()
	b.off = !v
	b.mu.Unlock()
}

// New builds the user endpoint.
func New(cfg Config) (*User, error) {
	if cfg.Clock == nil {
		return nil, errors.New("enduser: Config.Clock is required")
	}
	if cfg.EmailCheckPeriod <= 0 {
		cfg.EmailCheckPeriod = 5 * time.Minute
	}
	if cfg.SMSReadDelay <= 0 {
		cfg.SMSReadDelay = 30 * time.Second
	}
	u := &User{cfg: cfg, seen: make(map[string]bool)}
	if cfg.IMService != nil && cfg.IMHandle != "" {
		ep, err := core.NewDirectIM(cfg.Clock, cfg.IMService, cfg.IMHandle, u.onIM)
		if err != nil {
			return nil, err
		}
		u.imEp = ep
	}
	if cfg.Carrier != nil && cfg.PhoneNumber != "" {
		p, ok := cfg.Carrier.Phone(cfg.PhoneNumber)
		if !ok {
			return nil, errors.New("enduser: phone not provisioned")
		}
		u.phone = p
	}
	return u, nil
}

// Start brings the user online.
func (u *User) Start() error {
	u.mu.Lock()
	if u.stop != nil {
		u.mu.Unlock()
		return nil
	}
	stop := make(chan struct{})
	u.stop = stop
	u.mu.Unlock()
	if u.imEp != nil {
		if err := u.imEp.Start(); err != nil {
			return err
		}
	}
	if u.cfg.EmailService != nil && len(u.cfg.EmailAddresses) > 0 {
		go u.emailLoop(stop)
	}
	if u.phone != nil {
		go u.smsLoop(stop)
	}
	return nil
}

// Stop takes the user offline.
func (u *User) Stop() {
	u.mu.Lock()
	if u.stop != nil {
		close(u.stop)
		u.stop = nil
	}
	u.mu.Unlock()
	if u.imEp != nil {
		u.imEp.Stop()
	}
}

// SetPresent controls whether the user is at the computer. When away,
// alert IMs are not acknowledged (so IM blocks time out and delivery
// falls back), and no IM receipts are recorded.
func (u *User) SetPresent(present bool) { u.present.set(present) }

// Present reports the user's presence.
func (u *User) Present() bool { return u.present.get() }

// Receipts returns a copy of all recorded receipts.
func (u *User) Receipts() []Receipt {
	u.mu.Lock()
	defer u.mu.Unlock()
	return append([]Receipt(nil), u.receipts...)
}

// ReceiptCount returns the number of distinct alerts received.
func (u *User) ReceiptCount() int {
	u.mu.Lock()
	defer u.mu.Unlock()
	return len(u.receipts)
}

// Duplicates returns how many duplicate deliveries the user discarded
// by timestamp.
func (u *User) Duplicates() int {
	u.mu.Lock()
	defer u.mu.Unlock()
	return u.dups
}

// onIM handles an inbound IM: acknowledge and record alert payloads
// when present.
func (u *User) onIM(msg im.Message) {
	if _, isAck := core.ParseAck(msg.Text); isAck {
		return
	}
	if !alert.IsWirePayload(msg.Text) {
		return
	}
	if !u.present.get() {
		return // nobody at the desk: no ack, no receipt
	}
	var a alert.Alert
	if err := a.UnmarshalText([]byte(msg.Text)); err != nil {
		return
	}
	ack := func() {
		_, _ = u.imEp.Send(msg.From, core.AckText(msg.Seq))
		u.record(addr.TypeIM, &a)
	}
	if u.cfg.AckDelay > 0 {
		u.cfg.Clock.AfterFunc(u.cfg.AckDelay, ack)
		return
	}
	ack()
}

// emailLoop models the user checking mail periodically.
func (u *User) emailLoop(stop chan struct{}) {
	ticker := u.cfg.Clock.NewTicker(u.cfg.EmailCheckPeriod)
	defer ticker.Stop()
	for {
		select {
		case <-stop:
			return
		case <-ticker.C():
			for _, address := range u.cfg.EmailAddresses {
				mb, ok := u.cfg.EmailService.Mailbox(address)
				if !ok {
					continue
				}
				for _, msg := range mb.Fetch() {
					if !alert.IsWirePayload(msg.Body) {
						continue
					}
					var a alert.Alert
					if err := a.UnmarshalText([]byte(msg.Body)); err != nil {
						continue
					}
					u.record(addr.TypeEmail, &a)
				}
			}
		}
	}
}

// smsLoop models the user noticing SMS messages on the phone.
func (u *User) smsLoop(stop chan struct{}) {
	for {
		select {
		case <-stop:
			return
		case <-u.phone.Notify():
			msgs := u.phone.Fetch()
			u.cfg.Clock.AfterFunc(u.cfg.SMSReadDelay, func() {
				for _, msg := range msgs {
					if !alert.IsWirePayload(msg.Text) {
						continue
					}
					var a alert.Alert
					if err := a.UnmarshalText([]byte(msg.Text)); err != nil {
						continue
					}
					u.record(addr.TypeSMS, &a)
				}
			})
		}
	}
}

// record stores a receipt, discarding duplicates by dedup key (which
// embeds the creation timestamp, per the paper's duplicate-detection
// scheme).
func (u *User) record(channel addr.Type, a *alert.Alert) {
	now := u.cfg.Clock.Now()
	key := a.DedupKey()
	u.mu.Lock()
	defer u.mu.Unlock()
	if u.seen[key] {
		u.dups++
		return
	}
	u.seen[key] = true
	u.receipts = append(u.receipts, Receipt{
		Channel: channel,
		At:      now,
		Latency: now.Sub(a.Created),
		Alert:   a,
	})
}
