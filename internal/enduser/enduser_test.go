package enduser

import (
	"testing"
	"time"

	"simba/internal/addr"
	"simba/internal/alert"
	"simba/internal/clock"
	"simba/internal/core"
	"simba/internal/dist"
	"simba/internal/email"
	"simba/internal/im"
	"simba/internal/sms"
)

type fixture struct {
	sim     *clock.Sim
	imSvc   *im.Service
	emSvc   *email.Service
	carrier *sms.Carrier
	user    *User
	sender  *core.DirectIM
}

func newFixture(t *testing.T) *fixture {
	t.Helper()
	sim := clock.NewSim(time.Time{})
	imSvc, err := im.NewService(im.Config{Clock: sim, RNG: dist.NewRNG(1), HopDelay: dist.Fixed(300 * time.Millisecond)})
	if err != nil {
		t.Fatal(err)
	}
	emSvc, err := email.NewService(email.Config{Clock: sim, RNG: dist.NewRNG(2), Delay: dist.Fixed(10 * time.Second)})
	if err != nil {
		t.Fatal(err)
	}
	carrier, err := sms.NewCarrier(sms.Config{Clock: sim, RNG: dist.NewRNG(3), Delay: dist.Fixed(5 * time.Second)})
	if err != nil {
		t.Fatal(err)
	}
	for _, h := range []string{"alice-im", "sender"} {
		if err := imSvc.Register(h); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := emSvc.CreateMailbox("alice@x"); err != nil {
		t.Fatal(err)
	}
	if _, err := carrier.Provision("555"); err != nil {
		t.Fatal(err)
	}
	user, err := New(Config{
		Clock:            sim,
		Name:             "alice",
		IMService:        imSvc,
		IMHandle:         "alice-im",
		EmailService:     emSvc,
		EmailAddresses:   []string{"alice@x"},
		Carrier:          carrier,
		PhoneNumber:      "555",
		EmailCheckPeriod: time.Minute,
		SMSReadDelay:     5 * time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := user.Start(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(user.Stop)
	sender, err := core.NewDirectIM(sim, imSvc, "sender", nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := sender.Start(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(sender.Stop)
	return &fixture{sim: sim, imSvc: imSvc, emSvc: emSvc, carrier: carrier, user: user, sender: sender}
}

func payload(t *testing.T, sim *clock.Sim, id string) (string, *alert.Alert) {
	t.Helper()
	a := &alert.Alert{
		ID: id, Source: "src", Subject: "s", Urgency: alert.UrgencyNormal, Created: sim.Now(),
	}
	data, err := a.MarshalText()
	if err != nil {
		t.Fatal(err)
	}
	return string(data), a
}

func (f *fixture) advance(t *testing.T, total, step time.Duration) {
	t.Helper()
	for elapsed := time.Duration(0); elapsed < total; elapsed += step {
		f.sim.Advance(step)
		time.Sleep(time.Millisecond)
	}
}

func TestConfigValidation(t *testing.T) {
	if _, err := New(Config{}); err == nil {
		t.Fatal("missing clock accepted")
	}
	sim := clock.NewSim(time.Time{})
	carrier, _ := sms.NewCarrier(sms.Config{Clock: sim, RNG: dist.NewRNG(1)})
	if _, err := New(Config{Clock: sim, Carrier: carrier, PhoneNumber: "none"}); err == nil {
		t.Fatal("unprovisioned phone accepted")
	}
}

func TestIMReceiptAndAck(t *testing.T) {
	f := newFixture(t)
	text, a := payload(t, f.sim, "a1")
	if _, err := f.sender.Send("alice-im", text); err != nil {
		t.Fatal(err)
	}
	f.advance(t, 3*time.Second, 500*time.Millisecond)
	receipts := f.user.Receipts()
	if len(receipts) != 1 || receipts[0].Channel != addr.TypeIM {
		t.Fatalf("receipts = %+v", receipts)
	}
	if receipts[0].Alert.DedupKey() != a.DedupKey() {
		t.Fatal("wrong alert recorded")
	}
	if receipts[0].Latency <= 0 || receipts[0].Latency > 2*time.Second {
		t.Fatalf("latency = %v", receipts[0].Latency)
	}
}

func TestAwayUserDoesNotAck(t *testing.T) {
	f := newFixture(t)
	f.user.SetPresent(false)
	if f.user.Present() {
		t.Fatal("Present() = true")
	}
	text, _ := payload(t, f.sim, "a1")
	if _, err := f.sender.Send("alice-im", text); err != nil {
		t.Fatal(err)
	}
	f.advance(t, 5*time.Second, time.Second)
	if f.user.ReceiptCount() != 0 {
		t.Fatal("away user recorded a receipt")
	}
}

func TestAckDelay(t *testing.T) {
	sim := clock.NewSim(time.Time{})
	imSvc, _ := im.NewService(im.Config{Clock: sim, RNG: dist.NewRNG(1), HopDelay: dist.Fixed(100 * time.Millisecond)})
	_ = imSvc.Register("u")
	_ = imSvc.Register("s")
	user, err := New(Config{Clock: sim, IMService: imSvc, IMHandle: "u", AckDelay: 2 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	if err := user.Start(); err != nil {
		t.Fatal(err)
	}
	defer user.Stop()
	sender, _ := core.NewDirectIM(sim, imSvc, "s", nil)
	if err := sender.Start(); err != nil {
		t.Fatal(err)
	}
	defer sender.Stop()
	text := "SIMBA-ALERT/1\nID: x\nSOURCE: s\nURGENCY: normal\nCREATED: 985597200000000000\nBODY:\n"
	if _, err := sender.Send("u", text); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 4; i++ {
		sim.Advance(500 * time.Millisecond)
		time.Sleep(time.Millisecond)
	}
	if user.ReceiptCount() != 0 {
		t.Fatal("receipt before think time")
	}
	for i := 0; i < 6; i++ {
		sim.Advance(500 * time.Millisecond)
		time.Sleep(time.Millisecond)
	}
	if user.ReceiptCount() != 1 {
		t.Fatalf("ReceiptCount = %d", user.ReceiptCount())
	}
}

func TestEmailReceiptOnCheck(t *testing.T) {
	f := newFixture(t)
	text, _ := payload(t, f.sim, "e1")
	if err := f.emSvc.Submit("buddy@x", "alice@x", "subject", text); err != nil {
		t.Fatal(err)
	}
	// Transit 10s + check period up to 1m.
	f.advance(t, 2*time.Minute, 5*time.Second)
	receipts := f.user.Receipts()
	if len(receipts) != 1 || receipts[0].Channel != addr.TypeEmail {
		t.Fatalf("receipts = %+v", receipts)
	}
}

func TestSMSReceiptAfterReadDelay(t *testing.T) {
	f := newFixture(t)
	text, _ := payload(t, f.sim, "s1")
	if err := f.carrier.Send("buddy", "555", text); err != nil {
		t.Fatal(err)
	}
	f.advance(t, 30*time.Second, 2*time.Second)
	receipts := f.user.Receipts()
	if len(receipts) != 1 || receipts[0].Channel != addr.TypeSMS {
		t.Fatalf("receipts = %+v", receipts)
	}
	// 5s transit + 5s read delay.
	if receipts[0].Latency < 10*time.Second {
		t.Fatalf("latency = %v", receipts[0].Latency)
	}
}

func TestDuplicateDiscardedByTimestamp(t *testing.T) {
	f := newFixture(t)
	text, _ := payload(t, f.sim, "d1")
	for i := 0; i < 3; i++ {
		if _, err := f.sender.Send("alice-im", text); err != nil {
			t.Fatal(err)
		}
	}
	f.advance(t, 5*time.Second, time.Second)
	if f.user.ReceiptCount() != 1 {
		t.Fatalf("ReceiptCount = %d", f.user.ReceiptCount())
	}
	if f.user.Duplicates() != 2 {
		t.Fatalf("Duplicates = %d", f.user.Duplicates())
	}
}

func TestNonAlertMessagesIgnored(t *testing.T) {
	f := newFixture(t)
	if _, err := f.sender.Send("alice-im", "hey, lunch?"); err != nil {
		t.Fatal(err)
	}
	f.advance(t, 2*time.Second, 500*time.Millisecond)
	if f.user.ReceiptCount() != 0 {
		t.Fatal("plain IM recorded as alert")
	}
}
