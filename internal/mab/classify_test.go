package mab

import (
	"testing"
	"time"

	"simba/internal/alert"
	"simba/internal/email"
)

func TestClassifierAcceptAndReject(t *testing.T) {
	c := NewClassifier()
	a := &alert.Alert{Source: "yahoo.sim", Keywords: []string{"Stocks"}}
	if _, accepted := c.Classify(a, ""); accepted {
		t.Fatal("empty classifier accepted an alert")
	}
	c.Accept(SourceRule{Source: "yahoo.sim", Extract: ExtractNative})
	kws, accepted := c.Classify(a, "")
	if !accepted || len(kws) != 1 || kws[0] != "Stocks" {
		t.Fatalf("Classify = %v, %v", kws, accepted)
	}
	c.Remove("yahoo.sim")
	if _, accepted := c.Classify(a, ""); accepted {
		t.Fatal("removed source still accepted")
	}
}

func TestClassifierExtractSender(t *testing.T) {
	c := NewClassifier()
	c.Accept(SourceRule{Source: "yahoo.sim", Extract: ExtractSender})
	a := &alert.Alert{Source: "yahoo.sim", Subject: "ignored"}
	kws, accepted := c.Classify(a, "stocks.earnings-reports@yahoo.sim")
	if !accepted {
		t.Fatal("not accepted")
	}
	want := []string{"stocks", "earnings", "reports"}
	if len(kws) != len(want) {
		t.Fatalf("keywords = %v", kws)
	}
	for i := range want {
		if kws[i] != want[i] {
			t.Fatalf("keywords = %v, want %v", kws, want)
		}
	}
	if kws, _ := c.Classify(a, ""); len(kws) != 0 {
		t.Fatalf("keywords from empty sender = %v", kws)
	}
}

func TestClassifierExtractSubject(t *testing.T) {
	c := NewClassifier()
	c.Accept(SourceRule{Source: "msn-mobile", Extract: ExtractSubject})
	a := &alert.Alert{Source: "msn-mobile", Subject: "Stocks: MSFT up 3%"}
	kws, _ := c.Classify(a, "")
	if len(kws) != 1 || kws[0] != "Stocks" {
		t.Fatalf("keywords = %v", kws)
	}
	a.Subject = "no colon here"
	if kws, _ := c.Classify(a, ""); len(kws) != 0 {
		t.Fatalf("keywords = %v", kws)
	}
}

func TestClassifierDefaultExtract(t *testing.T) {
	c := NewClassifier()
	c.Accept(SourceRule{Source: "s"}) // Extract unset → native
	a := &alert.Alert{Source: "s", Keywords: []string{"k"}}
	kws, _ := c.Classify(a, "")
	if len(kws) != 1 || kws[0] != "k" {
		t.Fatalf("keywords = %v", kws)
	}
	// The native path returns the alert's own slice (no copy); callers
	// treat it as read-only.
	if &kws[0] != &a.Keywords[0] {
		t.Fatal("Classify copied alert keywords on the native path")
	}
	if got := c.Sources(); len(got) != 1 || got[0] != "s" {
		t.Fatalf("Sources = %v", got)
	}
}

func TestAlertFromEmailWirePayload(t *testing.T) {
	orig := &alert.Alert{
		ID: "x-1", Source: "aladdin", Keywords: []string{"Sensor ON"},
		Subject: "Basement Water Sensor ON", Urgency: alert.UrgencyCritical,
		Created: time.Date(2001, 3, 26, 10, 0, 0, 0, time.UTC),
	}
	payload, err := orig.MarshalText()
	if err != nil {
		t.Fatal(err)
	}
	msg := email.Message{From: "gw@home.sim", Subject: "fallback", Body: string(payload)}
	got := AlertFromEmail(msg)
	if got.ID != "x-1" || got.Source != "aladdin" || got.Urgency != alert.UrgencyCritical {
		t.Fatalf("AlertFromEmail = %+v", got)
	}
}

func TestAlertFromEmailLegacy(t *testing.T) {
	sub := time.Date(2001, 3, 26, 10, 0, 0, 0, time.UTC)
	msg := email.Message{
		From: "stocks@yahoo.sim", Subject: "MSFT moved", Body: "plain text",
		SubmittedAt: sub,
	}
	got := AlertFromEmail(msg)
	if got.Source != "yahoo.sim" || got.Subject != "MSFT moved" || !got.Created.Equal(sub) {
		t.Fatalf("AlertFromEmail = %+v", got)
	}
	if err := got.Validate(); err != nil {
		t.Fatalf("legacy alert invalid: %v", err)
	}
}

func TestAggregator(t *testing.T) {
	g := NewAggregator()
	if got := g.Aggregate([]string{"anything"}); got != DefaultCategory {
		t.Fatalf("Aggregate = %q", got)
	}
	g.Map("Stocks", "Investment")
	g.Map("financial news", "Investment")
	g.Map("Earnings reports", "Investment")
	for _, kws := range [][]string{
		{"Stocks"},
		{"STOCKS"},
		{"Financial News"},
		{"junk", "earnings reports"},
	} {
		if got := g.Aggregate(kws); got != "Investment" {
			t.Fatalf("Aggregate(%v) = %q", kws, got)
		}
	}
	g.SetFallback("Misc")
	if got := g.Aggregate(nil); got != "Misc" {
		t.Fatalf("fallback = %q", got)
	}
	// First mapped keyword wins.
	g.Map("weather", "Weather")
	if got := g.Aggregate([]string{"weather", "stocks"}); got != "Weather" {
		t.Fatalf("Aggregate = %q", got)
	}
}

func TestFilterEnableDisable(t *testing.T) {
	f := NewFilter()
	now := time.Date(2001, 3, 26, 12, 0, 0, 0, time.UTC)
	if !f.Allow("Investment", now) {
		t.Fatal("fresh filter blocks")
	}
	f.SetEnabled("Investment", false)
	if f.Allow("Investment", now) {
		t.Fatal("disabled category allowed")
	}
	if !f.Allow("Other", now) {
		t.Fatal("unrelated category blocked")
	}
	f.SetEnabled("Investment", true)
	if !f.Allow("Investment", now) {
		t.Fatal("re-enabled category blocked")
	}
}

func TestFilterQuietHours(t *testing.T) {
	f := NewFilter()
	day := time.Date(2001, 3, 26, 0, 0, 0, 0, time.UTC)
	// Quiet 22:00–07:00 (wraps midnight).
	f.SetQuietHours("News", 22*time.Hour, 7*time.Hour)
	tests := []struct {
		hour  int
		allow bool
	}{
		{23, false}, {2, false}, {6, false},
		{7, true}, {12, true}, {21, true},
	}
	for _, tt := range tests {
		at := day.Add(time.Duration(tt.hour) * time.Hour)
		if got := f.Allow("News", at); got != tt.allow {
			t.Fatalf("Allow at %02d:00 = %v, want %v", tt.hour, got, tt.allow)
		}
	}
	// Non-wrapping window 09:00–17:00.
	f.SetQuietHours("Work", 9*time.Hour, 17*time.Hour)
	if f.Allow("Work", day.Add(12*time.Hour)) {
		t.Fatal("allowed inside quiet window")
	}
	if !f.Allow("Work", day.Add(8*time.Hour)) || !f.Allow("Work", day.Add(18*time.Hour)) {
		t.Fatal("blocked outside quiet window")
	}
	// Equal offsets clear.
	f.SetQuietHours("Work", time.Hour, time.Hour)
	if !f.Allow("Work", day.Add(12*time.Hour)) {
		t.Fatal("cleared window still blocks")
	}
}

func TestClassifierRulesInventory(t *testing.T) {
	c := NewClassifier()
	c.Accept(SourceRule{Source: "zeta", UnsubscribeHint: "email stop@zeta.sim"})
	c.Accept(SourceRule{Source: "alpha", UnsubscribeHint: "visit alpha.sim/unsubscribe"})
	rules := c.Rules()
	if len(rules) != 2 || rules[0].Source != "alpha" || rules[1].Source != "zeta" {
		t.Fatalf("Rules = %+v", rules)
	}
	if rules[0].UnsubscribeHint != "visit alpha.sim/unsubscribe" {
		t.Fatalf("hint = %q", rules[0].UnsubscribeHint)
	}
	// Updating a rule replaces it.
	c.Accept(SourceRule{Source: "alpha", Extract: ExtractSubject})
	rules = c.Rules()
	if len(rules) != 2 || rules[0].Extract != ExtractSubject {
		t.Fatalf("Rules after update = %+v", rules)
	}
}
