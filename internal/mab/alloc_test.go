package mab

import (
	"testing"
	"time"

	"simba/internal/alert"
	"simba/internal/race"
)

// TestPipelineEvaluateZeroAllocs pins the per-alert routing decision at
// zero allocations: classify → aggregate → filter runs on every shard
// loop iteration, so a single stray allocation here multiplies by the
// whole ingest volume.
func TestPipelineEvaluateZeroAllocs(t *testing.T) {
	if race.Enabled {
		t.Skip("alloc accounting is not meaningful under the race detector")
	}
	p := NewPipeline()
	p.Classifier.Accept(SourceRule{Source: "portal", Extract: ExtractNative})
	p.Aggregator.Map("stocks", "Investment")
	a := &alert.Alert{
		ID: "a-1", Source: "portal", Keywords: []string{"stocks"},
		Subject: "quote", Body: "MSFT moved", Urgency: alert.UrgencyNormal,
		Created: time.Unix(0, 1),
	}
	now := time.Unix(0, 2)
	if cat, v := p.Evaluate(a, now); v != VerdictRoute || cat != "Investment" {
		t.Fatalf("Evaluate = (%q, %v), want (Investment, route)", cat, v)
	}
	allocs := testing.AllocsPerRun(200, func() {
		p.Evaluate(a, now)
	})
	if allocs != 0 {
		t.Fatalf("Pipeline.Evaluate allocates %.1f objects per alert, want 0", allocs)
	}
}
