package mab

import (
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"simba/internal/alert"
	"simba/internal/email"
)

// ExtractFrom says where a source's category keywords live. The paper:
// "the keywords in alerts from Yahoo! and Alerts.com appear as part of
// the email sender name, while the keywords in MSN Mobile alerts and
// desktop assistant alerts reside in the email subject field."
type ExtractFrom int

// Keyword extraction strategies.
const (
	// ExtractNative uses the alert's own Keywords field (SIMBA-aware
	// sources that send structured payloads).
	ExtractNative ExtractFrom = iota + 1
	// ExtractSender tokenizes the email sender's local part on '.' and
	// '-' (e.g. "stocks.earnings@yahoo.sim" → "stocks", "earnings").
	ExtractSender
	// ExtractSubject takes the subject prefix before the first ':'
	// (e.g. "Stocks: MSFT up 3%" → "Stocks").
	ExtractSubject
)

// SourceRule is the user's per-source classification rule.
type SourceRule struct {
	// Source matches alert.Alert.Source (or the email sender's domain
	// for legacy email-only services).
	Source string
	// Extract picks the keyword extraction strategy.
	Extract ExtractFrom
	// UnsubscribeHint records how to stop this service's alerts — the
	// bookkeeping the paper says MyAlertBuddy keeps ("a list of all
	// the subscribed alert services, and the information about how to
	// unsubscribe them").
	UnsubscribeHint string
}

// Classifier implements MyAlertBuddy's alert classification: it keeps
// the user's list of accepted alert sources and how to extract
// category keywords from each. Unaccepted sources are dropped — that
// is the spam boundary MyAlertBuddy provides.
//
// The rule table is copy-on-write: mutators rebuild the map under a
// mutex and swap it in atomically, so Classify — the per-alert hot
// path — never takes a lock.
type Classifier struct {
	mu    sync.Mutex // serializes mutators
	rules atomic.Pointer[map[string]SourceRule]
}

// NewClassifier returns an empty classifier (which accepts nothing).
func NewClassifier() *Classifier {
	c := new(Classifier)
	empty := make(map[string]SourceRule)
	c.rules.Store(&empty)
	return c
}

// snapshot returns the current rule table (possibly nil for a zero
// Classifier). Callers must treat it as read-only.
func (c *Classifier) snapshot() map[string]SourceRule {
	if m := c.rules.Load(); m != nil {
		return *m
	}
	return nil
}

// rebuild swaps in a copy of the rule table with mutate applied.
// Callers must hold c.mu.
func (c *Classifier) rebuild(mutate func(map[string]SourceRule)) {
	cur := c.snapshot()
	next := make(map[string]SourceRule, len(cur)+1)
	for k, v := range cur {
		next[k] = v
	}
	mutate(next)
	c.rules.Store(&next)
}

// Accept registers (or updates) a source rule.
func (c *Classifier) Accept(rule SourceRule) {
	if rule.Extract == 0 {
		rule.Extract = ExtractNative
	}
	c.mu.Lock()
	c.rebuild(func(m map[string]SourceRule) { m[rule.Source] = rule })
	c.mu.Unlock()
}

// Remove unregisters a source (the unsubscribe bookkeeping the paper
// mentions).
func (c *Classifier) Remove(source string) {
	c.mu.Lock()
	c.rebuild(func(m map[string]SourceRule) { delete(m, source) })
	c.mu.Unlock()
}

// Sources returns the accepted source names.
func (c *Classifier) Sources() []string {
	rules := c.snapshot()
	out := make([]string, 0, len(rules))
	for s := range rules {
		out = append(out, s)
	}
	return out
}

// Rules returns a copy of every accepted source rule, sorted by source
// name — the user's one-stop inventory of everything they are
// subscribed to and how to leave it.
func (c *Classifier) Rules() []SourceRule {
	rules := c.snapshot()
	out := make([]SourceRule, 0, len(rules))
	for _, r := range rules {
		out = append(out, r)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Source < out[j].Source })
	return out
}

// Classify extracts category keywords from the alert. emailFrom is the
// sender address when the alert arrived by email (empty otherwise).
// accepted reports whether the alert's source is on the accepted list.
//
// For ExtractNative sources the returned slice aliases a.Keywords
// rather than copying it; callers must treat the result as read-only
// (routing clones the alert before rewriting its keywords).
func (c *Classifier) Classify(a *alert.Alert, emailFrom string) (keywords []string, accepted bool) {
	rule, ok := c.snapshot()[a.Source]
	if !ok {
		return nil, false
	}
	switch rule.Extract {
	case ExtractSender:
		return senderKeywords(emailFrom), true
	case ExtractSubject:
		return subjectKeywords(a.Subject), true
	default:
		return a.Keywords, true
	}
}

// senderKeywords tokenizes the local part of an email address.
func senderKeywords(from string) []string {
	local, _, _ := strings.Cut(from, "@")
	if local == "" {
		return nil
	}
	fields := strings.FieldsFunc(local, func(r rune) bool { return r == '.' || r == '-' || r == '_' })
	out := make([]string, 0, len(fields))
	for _, f := range fields {
		if f != "" {
			out = append(out, f)
		}
	}
	return out
}

// subjectKeywords takes the "Keyword:" prefix of a subject line.
func subjectKeywords(subject string) []string {
	head, _, ok := strings.Cut(subject, ":")
	head = strings.TrimSpace(head)
	if !ok || head == "" {
		return nil
	}
	return []string{head}
}

// AlertFromEmail converts a delivered email into an alert. SIMBA-aware
// senders embed a wire payload in the body; legacy email-only services
// yield a synthesized alert whose source is the sender's domain.
func AlertFromEmail(msg email.Message) *alert.Alert {
	if alert.IsWirePayload(msg.Body) {
		var a alert.Alert
		if err := a.UnmarshalText([]byte(msg.Body)); err == nil {
			return &a
		}
	}
	_, domain, _ := strings.Cut(msg.From, "@")
	created := msg.SubmittedAt
	if created.IsZero() {
		created = msg.DeliveredAt
	}
	return &alert.Alert{
		ID:      alert.NextID("em"),
		Source:  domain,
		Subject: msg.Subject,
		Body:    msg.Body,
		Urgency: alert.UrgencyNormal,
		Created: created,
	}
}

// DefaultCategory is where keywords with no aggregation mapping land.
const DefaultCategory = "Uncategorized"

// Aggregator implements alert aggregation: the user's mapping from
// native keywords to personal alert categories ("Stocks", "Financial
// news" and "Earnings reports" → "Investment"). Like Classifier, the
// state is copy-on-write: Aggregate reads an immutable snapshot and
// never takes a lock.
type Aggregator struct {
	mu    sync.Mutex // serializes mutators
	state atomic.Pointer[aggState]
}

type aggState struct {
	mapping  map[string]string // lowercased keyword → category
	fallback string
}

// NewAggregator returns an aggregator with DefaultCategory fallback.
func NewAggregator() *Aggregator {
	g := new(Aggregator)
	g.state.Store(&aggState{mapping: make(map[string]string), fallback: DefaultCategory})
	return g
}

// snapshot returns the current state; never nil (a zero Aggregator
// reads as empty with DefaultCategory fallback).
func (g *Aggregator) snapshot() *aggState {
	if s := g.state.Load(); s != nil {
		return s
	}
	return &aggState{fallback: DefaultCategory}
}

// rebuild swaps in a copy of the state with mutate applied. Callers
// must hold g.mu.
func (g *Aggregator) rebuild(mutate func(*aggState)) {
	cur := g.snapshot()
	next := &aggState{mapping: make(map[string]string, len(cur.mapping)+1), fallback: cur.fallback}
	for k, v := range cur.mapping {
		next.mapping[k] = v
	}
	mutate(next)
	g.state.Store(next)
}

// SetFallback overrides the category for unmapped keywords.
func (g *Aggregator) SetFallback(category string) {
	g.mu.Lock()
	g.rebuild(func(s *aggState) { s.fallback = category })
	g.mu.Unlock()
}

// Map routes a native keyword (case-insensitive) to a personal
// category.
func (g *Aggregator) Map(keyword, category string) {
	g.mu.Lock()
	g.rebuild(func(s *aggState) { s.mapping[strings.ToLower(keyword)] = category })
	g.mu.Unlock()
}

// Aggregate assigns the alert's personal category: the first keyword
// with a mapping wins; otherwise the fallback category. Matching is
// case-insensitive (the mapping is lowercased at Map time) without a
// per-lookup strings.ToLower allocation: already-lowercase keywords hit
// the map directly, and mixed-case ASCII keywords are folded into a
// stack buffer whose map lookup the compiler keeps allocation-free.
func (g *Aggregator) Aggregate(keywords []string) string {
	s := g.snapshot()
	if len(s.mapping) == 0 {
		return s.fallback
	}
	var buf [64]byte
	for _, k := range keywords {
		if cat, ok := s.mapping[k]; ok {
			return cat // already-lowercase fast path
		}
		folded, kind := foldASCII(buf[:0], k)
		switch kind {
		case foldIdentical:
			// Lowercase ASCII already missed above; next keyword.
		case foldChanged:
			if cat, ok := s.mapping[string(folded)]; ok {
				return cat
			}
		default: // non-ASCII or oversized: rare full-Unicode path
			if cat, ok := s.mapping[strings.ToLower(k)]; ok {
				return cat
			}
		}
	}
	return s.fallback
}

// foldASCII outcomes.
const (
	foldIdentical = iota // s is lowercase ASCII: folding is a no-op
	foldChanged          // folded holds the lowercased bytes
	foldUnable           // non-ASCII or longer than the buffer
)

// foldASCII lower-cases an ASCII string into buf without allocating.
func foldASCII(buf []byte, s string) ([]byte, int) {
	if len(s) > cap(buf) {
		return nil, foldUnable
	}
	changed := false
	for i := 0; i < len(s); i++ {
		c := s[i]
		if c >= 0x80 {
			return nil, foldUnable
		}
		if 'A' <= c && c <= 'Z' {
			c += 'a' - 'A'
			changed = true
		}
		buf = append(buf, c)
	}
	if !changed {
		return nil, foldIdentical
	}
	return buf, foldChanged
}

// Filter implements alert filtering: per-category enable/disable and
// delivery time constraints ("disable these alerts during certain
// hours to avoid distractions"). State is copy-on-write like the
// other pipeline stages: Allow reads an immutable snapshot lock-free.
type Filter struct {
	mu    sync.Mutex // serializes mutators
	state atomic.Pointer[filterState]
}

type filterState struct {
	disabled map[string]bool
	quiet    map[string]quietWindow
}

type quietWindow struct {
	start, end time.Duration // offsets since midnight; start==end means none
}

// NewFilter returns a filter that allows everything.
func NewFilter() *Filter {
	f := new(Filter)
	f.state.Store(&filterState{
		disabled: make(map[string]bool),
		quiet:    make(map[string]quietWindow),
	})
	return f
}

// snapshot returns the current state (possibly nil for a zero Filter,
// which allows everything).
func (f *Filter) snapshot() *filterState {
	return f.state.Load()
}

// rebuild swaps in a copy of the state with mutate applied. Callers
// must hold f.mu.
func (f *Filter) rebuild(mutate func(*filterState)) {
	cur := f.snapshot()
	next := &filterState{disabled: make(map[string]bool), quiet: make(map[string]quietWindow)}
	if cur != nil {
		for k, v := range cur.disabled {
			next.disabled[k] = v
		}
		for k, v := range cur.quiet {
			next.quiet[k] = v
		}
	}
	mutate(next)
	f.state.Store(next)
}

// SetEnabled enables or disables a category.
func (f *Filter) SetEnabled(category string, enabled bool) {
	f.mu.Lock()
	f.rebuild(func(s *filterState) {
		if enabled {
			delete(s.disabled, category)
		} else {
			s.disabled[category] = true
		}
	})
	f.mu.Unlock()
}

// SetQuietHours suppresses the category between start and end offsets
// from midnight (local to the alert timestamp). A window that wraps
// midnight (start > end) is supported. Equal offsets clear the window.
func (f *Filter) SetQuietHours(category string, start, end time.Duration) {
	f.mu.Lock()
	f.rebuild(func(s *filterState) {
		if start == end {
			delete(s.quiet, category)
		} else {
			s.quiet[category] = quietWindow{start: start, end: end}
		}
	})
	f.mu.Unlock()
}

// Allow reports whether an alert of the category should be routed at
// the given time.
func (f *Filter) Allow(category string, now time.Time) bool {
	s := f.snapshot()
	if s == nil {
		return true
	}
	if s.disabled[category] {
		return false
	}
	w, ok := s.quiet[category]
	if !ok {
		return true
	}
	offset := sinceMidnight(now)
	if w.start < w.end {
		return offset < w.start || offset >= w.end
	}
	// Wraps midnight: quiet when offset >= start OR offset < end.
	return offset < w.start && offset >= w.end
}

// sinceMidnight returns now's wall-clock offset from midnight, computed
// arithmetically from the clock reading instead of rebuilding midnight
// with time.Date on every alert. Quiet windows therefore track the
// local clock face across DST transitions: a 01:00–04:00 window on a
// spring-forward day ends when the wall clock reads 04:00, not after
// four elapsed hours (which time.Date-based subtraction would give).
func sinceMidnight(now time.Time) time.Duration {
	hour, min, sec := now.Clock()
	return time.Duration(hour)*time.Hour +
		time.Duration(min)*time.Minute +
		time.Duration(sec)*time.Second +
		time.Duration(now.Nanosecond())
}
