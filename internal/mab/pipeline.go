package mab

import (
	"time"

	"simba/internal/alert"
)

// Verdict is a Pipeline's decision for one alert.
type Verdict int

// Pipeline verdicts.
const (
	// VerdictRoute means the alert passed every stage and should be
	// delivered to the category's subscribers.
	VerdictRoute Verdict = iota + 1
	// VerdictReject means the alert's source is not on the accepted
	// list (the spam boundary).
	VerdictReject
	// VerdictFilter means the category is disabled or inside quiet
	// hours.
	VerdictFilter
)

// String implements fmt.Stringer.
func (v Verdict) String() string {
	switch v {
	case VerdictRoute:
		return "route"
	case VerdictReject:
		return "reject"
	case VerdictFilter:
		return "filter"
	default:
		return "verdict(?)"
	}
}

// Pipeline bundles MyAlertBuddy's per-user alert-processing stages —
// classification, aggregation, filtering — behind one Evaluate call.
// The full Service drives a Pipeline inside each incarnation, and the
// hosted hub (internal/hub) runs one Pipeline per tenant, so both
// incarnations of the buddy share the exact same routing semantics.
type Pipeline struct {
	Classifier *Classifier
	Aggregator *Aggregator
	Filter     *Filter
}

// NewPipeline returns a pipeline with empty stages: it accepts no
// sources until the user registers classification rules.
func NewPipeline() *Pipeline {
	return &Pipeline{
		Classifier: NewClassifier(),
		Aggregator: NewAggregator(),
		Filter:     NewFilter(),
	}
}

// Evaluate runs classify → aggregate → filter for one alert at the
// given (virtual) time. category is meaningful only when the verdict is
// VerdictRoute.
func (p *Pipeline) Evaluate(a *alert.Alert, now time.Time) (category string, v Verdict) {
	keywords, accepted := p.Classifier.Classify(a, a.EmailFrom)
	if !accepted {
		return "", VerdictReject
	}
	category = p.Aggregator.Aggregate(keywords)
	if !p.Filter.Allow(category, now) {
		return category, VerdictFilter
	}
	return category, VerdictRoute
}
