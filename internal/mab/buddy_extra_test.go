package mab

import (
	"testing"
	"time"

	"simba/internal/alert"
	"simba/internal/faults"
)

func TestRemoteRejuvenationViaEmail(t *testing.T) {
	f := newFixture(t)
	f.startBuddy()
	if err := f.emSvc.Submit("admin@sim", buddyEmail, RejuvenateKeyword+" now", "please restart"); err != nil {
		t.Fatal(err)
	}
	f.advanceUntil(func() bool { return !f.buddy.Running() }, 5*time.Second)
	if f.journal.CountMatching(faults.KindRejuvenation, "via email") == 0 {
		t.Fatal("email rejuvenation not journaled")
	}
}

func TestMemoryLeakTriggersClientRestart(t *testing.T) {
	f := newFixture(t)
	f.buddy.cfg.MemoryLimitMB = 100
	f.startBuddy()
	f.buddy.mu.Lock()
	inc := f.buddy.inc
	f.buddy.mu.Unlock()
	oldPID := inc.imMgr.App().PID()
	// Leak hard: every automation call adds 20MB; the sanity checks
	// themselves drive it over the limit quickly.
	inc.imMgr.App().SetLeakRate(20)
	f.advanceUntil(func() bool {
		return f.journal.CountMatching(faults.KindRejuvenation, "memory over") >= 1
	}, 30*time.Second)
	f.advanceUntil(func() bool {
		app := inc.imMgr.App()
		return app != nil && app.PID() != oldPID && app.Running()
	}, 10*time.Second)
	// The buddy itself kept running: client-level rejuvenation only.
	if !f.buddy.Running() {
		t.Fatal("buddy restarted for a client-level leak")
	}
}

func TestExplicitRejuvenateMethod(t *testing.T) {
	f := newFixture(t)
	f.startBuddy()
	f.buddy.Rejuvenate("operator request")
	f.advanceUntil(func() bool { return !f.buddy.Running() }, time.Second)
	if f.journal.CountMatching(faults.KindRejuvenation, "operator request") == 0 {
		t.Fatal("rejuvenation reason not journaled")
	}
	// Restartable afterwards.
	if err := f.buddy.Start(); err != nil {
		t.Fatal(err)
	}
	if !f.buddy.Running() {
		t.Fatal("buddy not running after restart")
	}
}

func TestInjectionHelpersWithoutIncarnation(t *testing.T) {
	f := newFixture(t)
	// All injection/observation methods must be safe before Start.
	if f.buddy.InjectIMClientHang() {
		t.Fatal("InjectIMClientHang reported success with no incarnation")
	}
	f.buddy.InjectHang()
	f.buddy.InjectCrash()
	f.buddy.Rejuvenate("noop")
	f.buddy.Kill()
	if f.buddy.AreYouWorking() {
		t.Fatal("AreYouWorking true with no incarnation")
	}
	select {
	case <-f.buddy.Exited():
	default:
		t.Fatal("Exited() not closed with no incarnation")
	}
}

func TestQuietHoursThroughBuddy(t *testing.T) {
	f := newFixture(t)
	f.startBuddy()
	// Sim epoch is 09:00; quiet 08:00–17:00 suppresses Investment now.
	f.buddy.Filter().SetQuietHours("Investment", 8*time.Hour, 17*time.Hour)
	f.sendToBuddy(f.newAlert())
	f.advanceUntil(func() bool { return f.buddy.Counters().Get("filtered") == 1 }, time.Second)
	if f.user.ReceiptCount() != 0 {
		t.Fatal("quiet-hours alert reached the user")
	}
	// Clear the window: alerts flow again.
	f.buddy.Filter().SetQuietHours("Investment", 0, 0)
	f.sendToBuddy(f.newAlert())
	f.advanceUntil(func() bool { return f.user.ReceiptCount() == 1 }, time.Second)
}

func TestUnsubscribedCategoryCounted(t *testing.T) {
	f := newFixture(t)
	f.startBuddy()
	a := f.newAlert()
	a.Keywords = []string{"UnmappedKeyword"} // → Uncategorized, no subscribers
	f.sendToBuddy(a)
	f.advanceUntil(func() bool { return f.buddy.Counters().Get("unsubscribed") == 1 }, time.Second)
}

func TestMalformedIMPayloadCounted(t *testing.T) {
	f := newFixture(t)
	f.startBuddy()
	if _, err := f.srcEp.Send(buddyIM, "SIMBA-ALERT/1\nURGENCY: bogus\nBODY:\n"); err != nil {
		t.Fatal(err)
	}
	f.advanceUntil(func() bool { return f.buddy.Counters().Get("im-malformed") == 1 }, time.Second)
	if _, err := f.srcEp.Send(buddyIM, "just chatting"); err != nil {
		t.Fatal(err)
	}
	f.advanceUntil(func() bool { return f.buddy.Counters().Get("im-ignored") == 1 }, time.Second)
}

func TestDuplicateIMAlertAckedButNotRerouted(t *testing.T) {
	f := newFixture(t)
	f.startBuddy()
	a := f.newAlert()
	payload, err := a.MarshalText()
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if _, err := f.srcEp.Send(buddyIM, string(payload)); err != nil {
			t.Fatal(err)
		}
		f.advance(5*time.Second, 500*time.Millisecond)
	}
	f.advanceUntil(func() bool { return f.buddy.Counters().Get("duplicates") == 2 }, time.Second)
	f.advanceUntil(func() bool { return f.user.ReceiptCount() == 1 }, time.Second)
	// All three IMs were acknowledged, though only one routed.
	if got := f.buddy.Counters().Get("acked"); got != 3 {
		t.Fatalf("acked = %d, want 3", got)
	}
}

func TestOnReceiveHookFires(t *testing.T) {
	f := newFixture(t)
	got := make(chan *alert.Alert, 1)
	f.buddy.cfg.OnReceive = func(a *alert.Alert, at time.Time) {
		select {
		case got <- a:
		default:
		}
	}
	f.startBuddy()
	sent := f.newAlert()
	f.sendToBuddy(sent)
	f.advanceUntil(func() bool { return len(got) == 1 }, time.Second)
	if a := <-got; a.ID != sent.ID {
		t.Fatalf("OnReceive saw %q, want %q", a.ID, sent.ID)
	}
}
