// Package mab implements MyAlertBuddy: the always-on personal alert
// router at the center of the SIMBA architecture. All alerts for a
// user are first sent to the buddy's own IM and email addresses; the
// buddy classifies them against the user's accepted-source rules,
// aggregates native keywords into personal categories, filters by
// category state and time constraints, and routes through the
// delivery mode of every subscription of the category.
//
// The buddy is engineered to stay up: incoming IM alerts are
// pessimistically logged before being acknowledged and replayed on
// restart; the communication client software it drives is kept healthy
// by the Communication Managers' exception-handling automation; a
// self-stabilization layer checks invariants on the paper's periods;
// and a Service incarnation exposes the mdc.Daemon interface so the
// Master Daemon Controller can restart it on termination or hang.
// Rejuvenation happens nightly at 23:30, on demand via a special
// IM/email keyword, and whenever a stabilization check cannot rectify
// a violation.
package mab

import (
	"errors"
	"fmt"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"simba/internal/alert"
	"simba/internal/automation"
	"simba/internal/clock"
	"simba/internal/commgr"
	"simba/internal/core"
	"simba/internal/email"
	"simba/internal/faults"
	"simba/internal/im"
	"simba/internal/mdc"
	"simba/internal/metrics"
	"simba/internal/plog"
	"simba/internal/stabilize"
)

// RejuvenateKeyword triggers remote rejuvenation when it appears in an
// IM text or email subject sent to the buddy.
const RejuvenateKeyword = "SIMBA-REJUVENATE"

// Defaults.
const (
	// DefaultLogDelay models the pessimistic-log fsync cost charged
	// before the acknowledgement is sent (the paper's 1.5s ack budget
	// is one IM hop + this + the return hop).
	DefaultLogDelay = 200 * time.Millisecond
	// DefaultPollPeriod is the fallback sweep for messages whose
	// new-message events were lost.
	DefaultPollPeriod = 30 * time.Second
	// DefaultHeartbeatMaxAge bounds loop staleness before
	// AreYouWorking reports failure.
	DefaultHeartbeatMaxAge = 5 * time.Minute
	// DefaultMemoryLimitMB is the client working-set size beyond which
	// the resource invariant restarts the client software.
	DefaultMemoryLimitMB = 400
	// DefaultRejuvenationTime is 23:30, per Section 4.2.1.
	DefaultRejuvenationTime = 23*time.Hour + 30*time.Minute
	// routeQueueSize bounds alerts awaiting routing.
	routeQueueSize = 1024
)

// Config parameterizes the buddy.
type Config struct {
	// Clock, Machine, IMService, EmailService are required.
	Clock        clock.Clock
	Machine      *automation.Machine
	IMService    *im.Service
	EmailService *email.Service
	// IMHandle and EmailAddress are the buddy's own addresses — the
	// only addresses ever revealed to alert services. Both required;
	// the IM account and mailbox must already exist.
	IMHandle     string
	EmailAddress string
	// LogPath is the pessimistic log file; required.
	LogPath string
	// Journal records fault/recovery actions. Optional.
	Journal *faults.Journal
	// LogDelay, PollPeriod, HeartbeatMaxAge, MemoryLimitMB,
	// SanityPeriod, DialogPeriod override the defaults; zero keeps
	// them.
	LogDelay        time.Duration
	PollPeriod      time.Duration
	HeartbeatMaxAge time.Duration
	MemoryLimitMB   float64
	SanityPeriod    time.Duration
	DialogPeriod    time.Duration
	// RejuvenationTime is the nightly restart offset from midnight;
	// zero keeps 23:30, negative disables nightly rejuvenation.
	RejuvenationTime time.Duration
	// RouteDelay models per-alert processing cost in the routing stage
	// (classification, parsing, bookkeeping). Default zero.
	RouteDelay time.Duration
	// CallTimeout and StartupDelay configure the Communication
	// Managers (see commgr).
	CallTimeout  time.Duration
	StartupDelay time.Duration
	// OnIMLaunch / OnEmailLaunch run against freshly launched client
	// software (fault injection).
	OnIMLaunch    func(*automation.IMClientApp)
	OnEmailLaunch func(*automation.EmailClientApp)
	// OnDelivery observes every routing attempt (metrics). Optional.
	OnDelivery func(a *alert.Alert, sub core.Subscription, rep *core.Report, err error)
	// ConfigureChannels runs against each fresh incarnation's channel
	// registry after the built-in IM/email channels are registered —
	// e.g. to add a direct-carrier SMS channel (core.NewSMSChannel) or
	// replace a built-in. Optional.
	ConfigureChannels func(*core.Channels)
	// OnReceive observes every alert accepted by the buddy, stamped
	// with the (virtual) arrival time. Optional.
	OnReceive func(a *alert.Alert, at time.Time)
	// DisableReplay skips the pessimistic-log replay on restart. It
	// exists only for the ablation experiment that quantifies what the
	// log buys; never set it in production wiring.
	DisableReplay bool
}

// Service is MyAlertBuddy across incarnations. It owns the user's
// configuration (store, classifier, aggregator, filter), which
// survives restarts; each Start creates a fresh incarnation. Service
// implements mdc.Daemon.
type Service struct {
	cfg      Config
	store    *core.Store
	pipeline *Pipeline
	counters *metrics.CounterSet

	mu  sync.Mutex
	inc *incarnation
}

var _ mdc.Daemon = (*Service)(nil)

// New validates the config and builds the service.
func New(cfg Config) (*Service, error) {
	if cfg.Clock == nil || cfg.Machine == nil || cfg.IMService == nil || cfg.EmailService == nil {
		return nil, errors.New("mab: Config requires Clock, Machine, IMService, and EmailService")
	}
	if cfg.IMHandle == "" || cfg.EmailAddress == "" {
		return nil, errors.New("mab: Config requires IMHandle and EmailAddress")
	}
	if cfg.LogPath == "" {
		return nil, errors.New("mab: Config requires LogPath")
	}
	if cfg.LogDelay == 0 {
		cfg.LogDelay = DefaultLogDelay
	}
	if cfg.PollPeriod <= 0 {
		cfg.PollPeriod = DefaultPollPeriod
	}
	if cfg.HeartbeatMaxAge <= 0 {
		cfg.HeartbeatMaxAge = DefaultHeartbeatMaxAge
	}
	if cfg.MemoryLimitMB <= 0 {
		cfg.MemoryLimitMB = DefaultMemoryLimitMB
	}
	if cfg.SanityPeriod <= 0 {
		cfg.SanityPeriod = stabilize.DefaultSanityPeriod
	}
	if cfg.DialogPeriod <= 0 {
		cfg.DialogPeriod = stabilize.DefaultDialogPeriod
	}
	if cfg.RejuvenationTime == 0 {
		cfg.RejuvenationTime = DefaultRejuvenationTime
	}
	return &Service{
		cfg:      cfg,
		store:    core.NewStore(),
		pipeline: NewPipeline(),
		counters: &metrics.CounterSet{},
	}, nil
}

// Store returns the buddy's subscription store (users, addresses,
// modes, subscriptions). It persists across incarnations.
func (s *Service) Store() *core.Store { return s.store }

// Pipeline returns the classify→aggregate→filter stages as one unit
// (shared with the hosted hub).
func (s *Service) Pipeline() *Pipeline { return s.pipeline }

// Classifier returns the accepted-source rules.
func (s *Service) Classifier() *Classifier { return s.pipeline.Classifier }

// Aggregator returns the keyword→category mapping.
func (s *Service) Aggregator() *Aggregator { return s.pipeline.Aggregator }

// Filter returns the category filter.
func (s *Service) Filter() *Filter { return s.pipeline.Filter }

// Counters returns cumulative processing counters: received, acked,
// routed, delivered, undeliverable, rejected, filtered, replayed,
// duplicates.
func (s *Service) Counters() *metrics.CounterSet { return s.counters }

// IMHandle returns the buddy's IM address (give this to alert
// services, never the user's own).
func (s *Service) IMHandle() string { return s.cfg.IMHandle }

// EmailAddress returns the buddy's email address.
func (s *Service) EmailAddress() string { return s.cfg.EmailAddress }

// Start implements mdc.Daemon: it launches a fresh incarnation. The
// service mutex is NOT held while the incarnation boots (booting
// sleeps on virtual time for the client-software startup delays, and
// holding the lock across that would block every other accessor).
func (s *Service) Start() error {
	s.mu.Lock()
	if s.inc != nil && !s.inc.done() {
		s.mu.Unlock()
		return errors.New("mab: already running")
	}
	s.mu.Unlock()
	inc, err := s.newIncarnation()
	if err != nil {
		return fmt.Errorf("mab: starting incarnation: %w", err)
	}
	s.mu.Lock()
	if s.inc != nil && !s.inc.done() {
		s.mu.Unlock()
		inc.terminate("concurrent start lost the race")
		return errors.New("mab: already running")
	}
	s.inc = inc
	s.mu.Unlock()
	return nil
}

// Exited implements mdc.Daemon.
func (s *Service) Exited() <-chan struct{} {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.inc == nil {
		closed := make(chan struct{})
		close(closed)
		return closed
	}
	return s.inc.exited
}

// Kill implements mdc.Daemon.
func (s *Service) Kill() {
	s.mu.Lock()
	inc := s.inc
	s.mu.Unlock()
	if inc != nil {
		inc.terminate("killed")
	}
}

// AreYouWorking implements mdc.Daemon: the incarnation is healthy when
// its process is alive and both loops have beaten recently.
func (s *Service) AreYouWorking() bool {
	s.mu.Lock()
	inc := s.inc
	s.mu.Unlock()
	if inc == nil || inc.done() {
		return false
	}
	return inc.healthy()
}

// Running reports whether an incarnation is live.
func (s *Service) Running() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.inc != nil && !s.inc.done()
}

// InjectHang wedges the current incarnation's loops (they stop beating
// and processing), simulating an internal deadlock. The MDC probe will
// eventually fail and restart the buddy.
func (s *Service) InjectHang() {
	s.mu.Lock()
	inc := s.inc
	s.mu.Unlock()
	if inc != nil {
		inc.hung.Store(true)
	}
}

// InjectCrash terminates the current incarnation abruptly, simulating
// an unhandled exception.
func (s *Service) InjectCrash() {
	s.mu.Lock()
	inc := s.inc
	s.mu.Unlock()
	if inc != nil {
		inc.terminate("crash (unhandled exception)")
	}
}

// InjectIMClientHang wedges the current incarnation's IM client
// software (fault injection): automation calls against it block until
// the sanity check times out and the Shutdown/Restart API replaces it.
func (s *Service) InjectIMClientHang() bool {
	s.mu.Lock()
	inc := s.inc
	s.mu.Unlock()
	if inc == nil || inc.done() {
		return false
	}
	app := inc.imMgr.App()
	if app == nil {
		return false
	}
	app.Hang()
	return true
}

// Rejuvenate gracefully terminates the current incarnation so the MDC
// restarts it at a clean state.
func (s *Service) Rejuvenate(reason string) {
	s.mu.Lock()
	inc := s.inc
	s.mu.Unlock()
	if inc != nil {
		inc.rejuvenate(reason)
	}
}

// incarnation is one run of the buddy between restarts.
type incarnation struct {
	svc   *Service
	clk   clock.Clock
	proc  *automation.Proc
	imMgr *commgr.IMManager
	emMgr *commgr.EmailManager
	eng   *core.Engine
	exec  *core.Executor // the engine's mode executor; shared delivery logic with the hub
	log   *plog.Log
	stab  *stabilize.Stabilizer

	recvBeat  stabilize.Progress
	routeBeat stabilize.Progress
	hung      atomic.Bool

	routeQ chan *alert.Alert

	exited     chan struct{}
	stopOnce   sync.Once
	rejuvTimer clock.Timer
}

func (s *Service) newIncarnation() (*incarnation, error) {
	cfg := s.cfg
	proc, err := cfg.Machine.StartProc("myalertbuddy")
	if err != nil {
		return nil, err
	}
	fail := func(e error) (*incarnation, error) {
		proc.Kill()
		return nil, e
	}
	log, err := plog.Open(cfg.LogPath)
	if err != nil {
		return fail(err)
	}
	imMgr, err := commgr.NewIMManager(commgr.IMManagerConfig{
		Clock:        cfg.Clock,
		Machine:      cfg.Machine,
		Service:      cfg.IMService,
		Handle:       cfg.IMHandle,
		CallTimeout:  cfg.CallTimeout,
		StartupDelay: cfg.StartupDelay,
		Journal:      cfg.Journal,
		OnLaunch:     cfg.OnIMLaunch,
		MonkeyPeriod: cfg.DialogPeriod,
	})
	if err != nil {
		log.Close()
		return fail(err)
	}
	emMgr, err := commgr.NewEmailManager(commgr.EmailManagerConfig{
		Clock:        cfg.Clock,
		Machine:      cfg.Machine,
		Service:      cfg.EmailService,
		Address:      cfg.EmailAddress,
		CallTimeout:  cfg.CallTimeout,
		StartupDelay: cfg.StartupDelay,
		Journal:      cfg.Journal,
		OnLaunch:     cfg.OnEmailLaunch,
		MonkeyPeriod: cfg.DialogPeriod,
	})
	if err != nil {
		log.Close()
		return fail(err)
	}
	eng, err := core.NewEngine(cfg.Clock, imMgr, emMgr)
	if err != nil {
		log.Close()
		return fail(err)
	}
	if cfg.ConfigureChannels != nil {
		cfg.ConfigureChannels(eng.Channels())
	}
	inc := &incarnation{
		svc:    s,
		clk:    cfg.Clock,
		proc:   proc,
		imMgr:  imMgr,
		emMgr:  emMgr,
		eng:    eng,
		exec:   eng.Executor(),
		log:    log,
		routeQ: make(chan *alert.Alert, routeQueueSize),
		exited: make(chan struct{}),
	}
	if err := imMgr.Start(); err != nil {
		inc.terminate("im manager start failed")
		return nil, err
	}
	if err := emMgr.Start(); err != nil {
		inc.terminate("email manager start failed")
		return nil, err
	}
	if err := inc.registerChecks(); err != nil {
		inc.terminate("check registration failed")
		return nil, err
	}
	now := cfg.Clock.Now()
	inc.recvBeat.Beat(now)
	inc.routeBeat.Beat(now)

	// Replay unprocessed alerts from the pessimistic log before
	// accepting new ones.
	if !cfg.DisableReplay {
		inc.replay()
	}

	inc.stab.Start()
	go inc.receiveLoop()
	go inc.routeLoop()
	go inc.watchProc()
	inc.scheduleNightlyRejuvenation()
	return inc, nil
}

func (inc *incarnation) registerChecks() error {
	cfg := inc.svc.cfg
	stab, err := stabilize.New(cfg.Clock, cfg.Journal, func(check string, err error) {
		inc.rejuvenate(fmt.Sprintf("unrectifiable invariant %q: %v", check, err))
	})
	if err != nil {
		return err
	}
	// Transient service-side failures (e.g. an IM service outage) are
	// not invariant violations the buddy can rectify by restarting
	// itself, so they do not count toward escalation; only failures to
	// repair the client locally do.
	localOnly := func(ensure func() error) func() error {
		return func() error {
			err := ensure()
			if err != nil && !commgr.Unfixable(err) {
				return nil
			}
			return err
		}
	}
	checks := []stabilize.Check{
		{Name: "im-client-sanity", Period: cfg.SanityPeriod, Fn: localOnly(inc.imMgr.EnsureHealthy)},
		{Name: "email-client-sanity", Period: cfg.SanityPeriod, Fn: localOnly(inc.emMgr.EnsureHealthy)},
		{Name: "client-memory", Period: cfg.SanityPeriod, Fn: inc.checkMemory},
		// Escalation for unprocessed messages never fires: the check
		// heals by draining.
		{Name: "unprocessed-messages", Period: cfg.SanityPeriod, Fn: inc.drainUnprocessed, EscalateAfter: -1},
	}
	for _, c := range checks {
		if err := stab.Register(c); err != nil {
			return err
		}
	}
	inc.stab = stab
	return nil
}

// checkMemory is the resource-consumption invariant: a leaking client
// is restarted (a form of client-level rejuvenation).
func (inc *incarnation) checkMemory() error {
	limit := inc.svc.cfg.MemoryLimitMB
	if inc.imMgr.MemoryMB() > limit {
		inc.journal(faults.KindRejuvenation, "im client memory over %vMB; restarting client", limit)
		return inc.imMgr.Restart()
	}
	if inc.emMgr.MemoryMB() > limit {
		inc.journal(faults.KindRejuvenation, "email client memory over %vMB; restarting client", limit)
		return inc.emMgr.Restart()
	}
	return nil
}

// drainUnprocessed sweeps messages whose new-message events were lost.
func (inc *incarnation) drainUnprocessed() error {
	if inc.hung.Load() {
		return nil
	}
	var firstErr error
	if n, err := inc.imMgr.UnreadCount(); err != nil {
		firstErr = err
	} else if n > 0 {
		inc.handleIMMessages()
	}
	if n, err := inc.emMgr.UnreadCount(); err != nil {
		if firstErr == nil {
			firstErr = err
		}
	} else if n > 0 {
		inc.handleEmailMessages()
	}
	return firstErr
}

// replay routes the pessimistic log's unprocessed alerts.
func (inc *incarnation) replay() {
	for _, rec := range inc.log.Unprocessed() {
		var a alert.Alert
		if err := a.UnmarshalText(rec.Payload); err != nil {
			inc.journal(faults.KindReplay, "dropping unparsable logged alert %s: %v", rec.Key, err)
			_ = inc.log.MarkProcessed(rec.Key, inc.clk.Now())
			continue
		}
		inc.journal(faults.KindReplay, "replaying unprocessed alert %s", rec.Key)
		inc.svc.counters.Add1("replayed")
		select {
		case inc.routeQ <- &a:
		default:
			// Queue full: leave unprocessed for the next incarnation.
			return
		}
	}
}

// receiveLoop drains IM and email messages, event-driven with a
// polling fallback.
func (inc *incarnation) receiveLoop() {
	poll := inc.clk.NewTicker(inc.svc.cfg.PollPeriod)
	defer poll.Stop()
	for {
		if inc.hung.Load() {
			<-inc.exited
			return
		}
		imEvents := inc.imMgr.Events()
		emEvents := inc.emMgr.Events()
		select {
		case <-inc.exited:
			return
		case <-imEvents:
			inc.handleIMMessages()
		case <-emEvents:
			inc.handleEmailMessages()
		case <-poll.C():
			inc.handleIMMessages()
			inc.handleEmailMessages()
		}
		inc.recvBeat.Beat(inc.clk.Now())
	}
}

// handleIMMessages fetches and processes new IMs: engine acks, then
// rejuvenation keywords, then alert payloads (pessimistically logged,
// acknowledged, and queued for routing).
func (inc *incarnation) handleIMMessages() {
	msgs, err := inc.imMgr.FetchNew()
	if err != nil {
		return // sanity checks will repair the client
	}
	for _, msg := range msgs {
		if inc.eng.HandleIncoming(msg) {
			continue // acknowledgement for one of our deliveries
		}
		if strings.Contains(msg.Text, RejuvenateKeyword) {
			inc.rejuvenate("remote rejuvenation keyword via IM from " + msg.From)
			return
		}
		if !alert.IsWirePayload(msg.Text) {
			inc.svc.counters.Add1("im-ignored")
			continue
		}
		var a alert.Alert
		if err := a.UnmarshalText([]byte(msg.Text)); err != nil {
			inc.svc.counters.Add1("im-malformed")
			continue
		}
		inc.svc.counters.Add1("received")
		if inc.svc.cfg.OnReceive != nil {
			inc.svc.cfg.OnReceive(&a, inc.clk.Now())
		}
		key := a.DedupKey()
		duplicate := inc.log.Has(key)
		if !duplicate {
			// Pessimistic logging: persist BEFORE acknowledging, and
			// charge the write latency.
			if err := inc.log.LogReceived(key, []byte(msg.Text), inc.clk.Now()); err != nil {
				continue // could not make it durable: do not ack; sender retries/falls back
			}
			inc.clk.Sleep(inc.svc.cfg.LogDelay)
		}
		if _, err := inc.imMgr.Send(msg.From, core.AckText(msg.Seq)); err == nil {
			inc.svc.counters.Add1("acked")
		}
		if duplicate {
			inc.svc.counters.Add1("duplicates")
			continue
		}
		select {
		case inc.routeQ <- &a:
		default:
			inc.svc.counters.Add1("route-queue-full")
		}
	}
}

// handleEmailMessages fetches and processes new emails (the fallback
// channel — no acks).
func (inc *incarnation) handleEmailMessages() {
	msgs, err := inc.emMgr.FetchNew()
	if err != nil {
		return
	}
	for _, msg := range msgs {
		if strings.Contains(msg.Subject, RejuvenateKeyword) {
			inc.rejuvenate("remote rejuvenation keyword via email from " + msg.From)
			return
		}
		a := AlertFromEmail(msg)
		a.EmailFrom = msg.From
		inc.svc.counters.Add1("received")
		if inc.svc.cfg.OnReceive != nil {
			inc.svc.cfg.OnReceive(a, inc.clk.Now())
		}
		key := a.DedupKey()
		if inc.log.Has(key) {
			inc.svc.counters.Add1("duplicates")
			continue
		}
		payload, err := a.MarshalText()
		if err != nil {
			inc.svc.counters.Add1("email-malformed")
			continue
		}
		if err := inc.log.LogReceived(key, payload, inc.clk.Now()); err != nil {
			continue
		}
		select {
		case inc.routeQ <- a:
		default:
			inc.svc.counters.Add1("route-queue-full")
		}
	}
}

// routeLoop classifies, aggregates, filters, and routes queued alerts.
func (inc *incarnation) routeLoop() {
	beat := inc.clk.NewTicker(inc.svc.cfg.PollPeriod)
	defer beat.Stop()
	for {
		if inc.hung.Load() {
			<-inc.exited
			return
		}
		select {
		case <-inc.exited:
			return
		case <-beat.C():
			inc.routeBeat.Beat(inc.clk.Now())
		case a := <-inc.routeQ:
			inc.route(a)
			inc.routeBeat.Beat(inc.clk.Now())
		}
	}
}

// route performs the four MyAlertBuddy stages for one alert.
func (inc *incarnation) route(a *alert.Alert) {
	svc := inc.svc
	if svc.cfg.RouteDelay > 0 {
		inc.clk.Sleep(svc.cfg.RouteDelay)
	}
	defer func() {
		_ = inc.log.MarkProcessed(a.DedupKey(), inc.clk.Now())
	}()

	category, verdict := svc.pipeline.Evaluate(a, inc.clk.Now())
	switch verdict {
	case VerdictReject:
		svc.counters.Add1("rejected")
		return
	case VerdictFilter:
		svc.counters.Add1("filtered")
		return
	}
	subs := svc.store.Subscribers(category)
	if len(subs) == 0 {
		svc.counters.Add1("unsubscribed")
		return
	}
	for _, sub := range subs {
		inc.routeOne(a, category, sub)
	}
	svc.counters.Add1("routed")
}

// routeOne executes one subscription's delivery mode for a routed
// alert, delegating mode → block fallback → action execution to the
// shared core.Executor (the same code path the hub's delivery workers
// run).
func (inc *incarnation) routeOne(a *alert.Alert, category string, sub core.Subscription) {
	svc := inc.svc
	profile, err := svc.store.User(sub.User)
	if err != nil {
		svc.counters.Add1("undeliverable")
		return
	}
	mode, err := profile.Mode(sub.Mode)
	if err != nil {
		svc.counters.Add1("undeliverable")
		return
	}
	routed := a.Clone()
	routed.Keywords = []string{category}
	rep, err := inc.exec.DeliverAs(core.DeliveryContext{User: sub.User}, routed, profile.Addresses(), mode)
	if err != nil {
		svc.counters.Add1("undeliverable")
	} else {
		svc.counters.Add1("delivered")
	}
	if svc.cfg.OnDelivery != nil {
		svc.cfg.OnDelivery(routed, sub, rep, err)
	}
}

// watchProc terminates the incarnation when its process dies (machine
// power-off, reboot, or an external kill).
func (inc *incarnation) watchProc() {
	ticker := inc.clk.NewTicker(5 * time.Second)
	defer ticker.Stop()
	for {
		select {
		case <-inc.exited:
			return
		case <-ticker.C():
			if !inc.proc.Running() {
				inc.terminate("process died")
				return
			}
		}
	}
}

// scheduleNightlyRejuvenation arms the 23:30 restart.
func (inc *incarnation) scheduleNightlyRejuvenation() {
	offset := inc.svc.cfg.RejuvenationTime
	if offset < 0 {
		return
	}
	now := inc.clk.Now()
	midnight := time.Date(now.Year(), now.Month(), now.Day(), 0, 0, 0, 0, now.Location())
	next := midnight.Add(offset)
	if !next.After(now) {
		next = next.Add(24 * time.Hour)
	}
	inc.rejuvTimer = inc.clk.AfterFunc(next.Sub(now), func() {
		inc.rejuvenate("nightly rejuvenation")
	})
}

// healthy is the AreYouWorking body.
func (inc *incarnation) healthy() bool {
	if !inc.proc.Running() {
		return false
	}
	now := inc.clk.Now()
	maxAge := inc.svc.cfg.HeartbeatMaxAge
	return !inc.recvBeat.StaleBy(now, maxAge) && !inc.routeBeat.StaleBy(now, maxAge)
}

func (inc *incarnation) done() bool {
	select {
	case <-inc.exited:
		return true
	default:
		return false
	}
}

// rejuvenate performs a graceful (journaled) termination; the MDC
// restarts the buddy at a clean state.
func (inc *incarnation) rejuvenate(reason string) {
	inc.journal(faults.KindRejuvenation, "graceful restart: %s", reason)
	inc.terminate(reason)
}

// terminate tears down the incarnation. Idempotent.
func (inc *incarnation) terminate(reason string) {
	inc.stopOnce.Do(func() {
		inc.journal(faults.KindDaemonRestart, "incarnation terminating: %s", reason)
		close(inc.exited)
		if inc.rejuvTimer != nil {
			inc.rejuvTimer.Stop()
		}
		if inc.stab != nil {
			inc.stab.Stop()
		}
		inc.imMgr.Stop()
		inc.emMgr.Stop()
		inc.log.Close()
		inc.proc.Kill()
	})
}

func (inc *incarnation) journal(kind faults.Kind, format string, args ...any) {
	if inc.svc.cfg.Journal != nil {
		inc.svc.cfg.Journal.Recordf(inc.clk.Now(), kind, format, args...)
	}
}
