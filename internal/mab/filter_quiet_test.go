package mab

import (
	"testing"
	"time"
	_ "time/tzdata" // DST fixtures must not depend on the host zone database
)

// TestFilterQuietHoursAcrossDST pins the quiet-window semantics across
// daylight-saving transitions: offsets are wall-clock ("the clock on
// the wall reads between 01:00 and 04:00"), not elapsed time since
// midnight. America/New_York springs forward 2021-03-14 02:00→03:00
// and falls back 2021-11-07 02:00→01:00.
func TestFilterQuietHoursAcrossDST(t *testing.T) {
	ny, err := time.LoadLocation("America/New_York")
	if err != nil {
		t.Fatal(err)
	}
	f := NewFilter()
	f.SetQuietHours("News", 1*time.Hour, 4*time.Hour)

	cases := []struct {
		name string
		at   time.Time
		want bool // Allow result
	}{
		{"spring: before window", time.Date(2021, 3, 14, 0, 30, 0, 0, ny), true},
		{"spring: inside window (EST)", time.Date(2021, 3, 14, 1, 30, 0, 0, ny), false},
		// 03:30 EDT is only 2.5 elapsed hours after midnight, but the
		// clock face is inside the window.
		{"spring: inside window (EDT)", time.Date(2021, 3, 14, 3, 30, 0, 0, ny), false},
		// 04:30 EDT is 3.5 elapsed hours after midnight — elapsed-time
		// arithmetic would still suppress it; the wall clock says the
		// window is over.
		{"spring: after window (EDT)", time.Date(2021, 3, 14, 4, 30, 0, 0, ny), true},
		// Fall-back day: 03:30 EST is 4.5 elapsed hours after midnight
		// (the 01:00 hour repeats) — elapsed-time arithmetic would
		// deliver it; the wall clock is still inside the window.
		{"fall: inside window (EST)", time.Date(2021, 11, 7, 3, 30, 0, 0, ny), false},
		{"fall: after window", time.Date(2021, 11, 7, 4, 30, 0, 0, ny), true},
	}
	for _, tc := range cases {
		if got := f.Allow("News", tc.at); got != tc.want {
			t.Errorf("%s: Allow(%v) = %v, want %v", tc.name, tc.at, got, tc.want)
		}
	}
}

// TestFilterQuietHoursWrapMidnight exercises a start>end window
// (22:00–07:00) spanning midnight.
func TestFilterQuietHoursWrapMidnight(t *testing.T) {
	f := NewFilter()
	f.SetQuietHours("News", 22*time.Hour, 7*time.Hour)

	day := func(h, m, s int) time.Time {
		return time.Date(2026, 8, 5, h, m, s, 0, time.UTC)
	}
	cases := []struct {
		name string
		at   time.Time
		want bool
	}{
		{"mid-day", day(12, 0, 0), true},
		{"just before start", day(21, 59, 59), true},
		{"at start", day(22, 0, 0), false},
		{"before midnight", day(23, 59, 59), false},
		{"just after midnight", day(0, 0, 1), false},
		{"just before end", day(6, 59, 59), false},
		{"at end", day(7, 0, 0), true},
	}
	for _, tc := range cases {
		if got := f.Allow("News", tc.at); got != tc.want {
			t.Errorf("%s: Allow(%v) = %v, want %v", tc.name, tc.at, got, tc.want)
		}
	}
}
