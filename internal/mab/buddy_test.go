package mab

import (
	"path/filepath"
	"testing"
	"time"

	"simba/internal/addr"
	"simba/internal/alert"
	"simba/internal/automation"
	"simba/internal/clock"
	"simba/internal/core"
	"simba/internal/dist"
	"simba/internal/dmode"
	"simba/internal/email"
	"simba/internal/enduser"
	"simba/internal/faults"
	"simba/internal/im"
	"simba/internal/sms"
)

// fixture wires the full Figure-5 style topology: one alert source,
// the buddy, and one user with IM + email + SMS endpoints.
type fixture struct {
	t       *testing.T
	sim     *clock.Sim
	machine *automation.Machine
	imSvc   *im.Service
	emSvc   *email.Service
	carrier *sms.Carrier
	journal *faults.Journal

	buddy     *Service
	srcEngine *core.Engine
	srcEp     *core.DirectIM
	buddyReg  *addr.Registry // the buddy's addresses, as a source sees them
	user      *enduser.User
}

const (
	buddyIM    = "my-alert-buddy"
	buddyEmail = "buddy@sim"
	userIM     = "alice-im"
	userEmail  = "alice@work.sim"
	userPhone  = "5551234"
)

func newFixture(t *testing.T) *fixture {
	t.Helper()
	sim := clock.NewSim(time.Time{})
	imSvc, err := im.NewService(im.Config{
		Clock:    sim,
		RNG:      dist.NewRNG(1),
		HopDelay: dist.Fixed(300 * time.Millisecond),
	})
	if err != nil {
		t.Fatal(err)
	}
	emSvc, err := email.NewService(email.Config{
		Clock: sim,
		RNG:   dist.NewRNG(2),
		Delay: dist.Fixed(20 * time.Second),
	})
	if err != nil {
		t.Fatal(err)
	}
	carrier, err := sms.NewCarrier(sms.Config{
		Clock: sim,
		RNG:   dist.NewRNG(3),
		Delay: dist.Fixed(8 * time.Second),
	})
	if err != nil {
		t.Fatal(err)
	}
	f := &fixture{
		t:       t,
		sim:     sim,
		machine: automation.NewMachine(sim),
		imSvc:   imSvc,
		emSvc:   emSvc,
		carrier: carrier,
		journal: &faults.Journal{},
	}

	// Accounts and endpoints.
	for _, h := range []string{buddyIM, "proxy-src", userIM} {
		if err := imSvc.Register(h); err != nil {
			t.Fatal(err)
		}
	}
	for _, a := range []string{buddyEmail, "proxy@sim", userEmail} {
		if _, err := emSvc.CreateMailbox(a); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := carrier.Provision(userPhone); err != nil {
		t.Fatal(err)
	}
	if _, err := sms.AttachGateway(sim, emSvc, carrier, userPhone); err != nil {
		t.Fatal(err)
	}

	// The buddy.
	buddy, err := New(Config{
		Clock:            sim,
		Machine:          f.machine,
		IMService:        imSvc,
		EmailService:     emSvc,
		IMHandle:         buddyIM,
		EmailAddress:     buddyEmail,
		LogPath:          filepath.Join(t.TempDir(), "buddy.plog"),
		Journal:          f.journal,
		PollPeriod:       5 * time.Second,
		StartupDelay:     -1,
		CallTimeout:      10 * time.Second,
		RejuvenationTime: -1,
	})
	if err != nil {
		t.Fatal(err)
	}
	f.buddy = buddy

	// The buddy's user configuration.
	buddy.Classifier().Accept(SourceRule{Source: "unit-src", Extract: ExtractNative})
	buddy.Aggregator().Map("Stocks", "Investment")
	profile, err := buddy.Store().RegisterUser("alice")
	if err != nil {
		t.Fatal(err)
	}
	for _, a := range []addr.Address{
		{Type: addr.TypeIM, Name: "MSN IM", Target: userIM, Enabled: true},
		{Type: addr.TypeSMS, Name: "Cell SMS", Target: sms.GatewayAddress(userPhone), Enabled: true},
		{Type: addr.TypeEmail, Name: "Work email", Target: userEmail, Enabled: true},
	} {
		if err := profile.Addresses().Register(a); err != nil {
			t.Fatal(err)
		}
	}
	if err := profile.DefineMode(dmode.IMThenEmail("MSN IM", "Work email", 10*time.Second)); err != nil {
		t.Fatal(err)
	}
	if err := buddy.Store().Subscribe("Investment", "alice", "IMThenEmail"); err != nil {
		t.Fatal(err)
	}

	// The source: delivers to the buddy over IM-with-ack + email.
	srcEmail, err := core.NewDirectEmail(emSvc, "proxy@sim")
	if err != nil {
		t.Fatal(err)
	}
	srcEp, err := core.NewDirectIM(sim, imSvc, "proxy-src", nil)
	if err != nil {
		t.Fatal(err)
	}
	srcEngine, err := core.NewEngine(sim, srcEp, srcEmail)
	if err != nil {
		t.Fatal(err)
	}
	wireDirectIM(srcEp, srcEngine)
	if err := srcEp.Start(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(srcEp.Stop)
	f.srcEngine = srcEngine
	f.srcEp = srcEp
	buddyReg := addr.NewRegistry("buddy-as-target")
	for _, a := range []addr.Address{
		{Type: addr.TypeIM, Name: "Buddy IM", Target: buddyIM, Enabled: true},
		{Type: addr.TypeEmail, Name: "Buddy email", Target: buddyEmail, Enabled: true},
	} {
		if err := buddyReg.Register(a); err != nil {
			t.Fatal(err)
		}
	}
	f.buddyReg = buddyReg

	// The user.
	user, err := enduser.New(enduser.Config{
		Clock:            sim,
		Name:             "alice",
		IMService:        imSvc,
		IMHandle:         userIM,
		EmailService:     emSvc,
		EmailAddresses:   []string{userEmail},
		Carrier:          carrier,
		PhoneNumber:      userPhone,
		EmailCheckPeriod: time.Minute,
		SMSReadDelay:     5 * time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := user.Start(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(user.Stop)
	f.user = user
	return f
}

// wireDirectIM connects inbound messages (acks) to the engine.
func wireDirectIM(ep *core.DirectIM, eng *core.Engine) {
	// DirectIM exposes its handler via construction only; tests inside
	// package core set it directly. Here we rebuild via the public
	// pattern: the fixture constructs with a nil handler, so use the
	// exported hook below.
	ep.SetOnMessage(func(m im.Message) { eng.HandleIncoming(m) })
}

func (f *fixture) startBuddy() {
	f.t.Helper()
	if err := f.buddy.Start(); err != nil {
		f.t.Fatal(err)
	}
	f.t.Cleanup(f.buddy.Kill)
}

// newAlert builds an alert from the accepted unit-src source.
func (f *fixture) newAlert() *alert.Alert {
	return &alert.Alert{
		ID:       alert.NextID("u"),
		Source:   "unit-src",
		Keywords: []string{"Stocks"},
		Subject:  "MSFT earnings",
		Body:     "Quarterly results are out.",
		Urgency:  alert.UrgencyHigh,
		Created:  f.sim.Now(),
	}
}

// sendToBuddy delivers an alert to the buddy with IM-then-email and
// drives the clock until the source-side delivery completes.
func (f *fixture) sendToBuddy(a *alert.Alert) *core.Report {
	f.t.Helper()
	mode := dmode.Mode{Name: "ToBuddy", Blocks: []dmode.Block{
		{Timeout: dmode.Duration(15 * time.Second), Actions: []dmode.Action{{Address: "Buddy IM"}}},
		{Actions: []dmode.Action{{Address: "Buddy email"}}},
	}}
	type result struct {
		rep *core.Report
		err error
	}
	done := make(chan result, 1)
	go func() {
		rep, err := f.srcEngine.Deliver(a, f.buddyReg, &mode)
		done <- result{rep, err}
	}()
	deadline := time.Now().Add(10 * time.Second)
	for {
		select {
		case r := <-done:
			if r.err != nil {
				f.t.Fatalf("source delivery failed: %v", r.err)
			}
			return r.rep
		default:
		}
		if time.Now().After(deadline) {
			f.t.Fatal("source delivery never completed")
		}
		f.sim.Advance(time.Second)
		time.Sleep(time.Millisecond)
	}
}

// advance drives the simulation forward by total in steps.
func (f *fixture) advance(total, step time.Duration) {
	f.t.Helper()
	for elapsed := time.Duration(0); elapsed < total; elapsed += step {
		f.sim.Advance(step)
		time.Sleep(time.Millisecond)
	}
}

// advanceUntil drives the simulation until cond holds.
func (f *fixture) advanceUntil(cond func() bool, step time.Duration) {
	f.t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			f.t.Fatal("condition not reached")
		}
		f.sim.Advance(step)
		time.Sleep(time.Millisecond)
	}
}

func TestConfigValidation(t *testing.T) {
	if _, err := New(Config{}); err == nil {
		t.Fatal("empty config accepted")
	}
	sim := clock.NewSim(time.Time{})
	imSvc, _ := im.NewService(im.Config{Clock: sim, RNG: dist.NewRNG(1)})
	emSvc, _ := email.NewService(email.Config{Clock: sim, RNG: dist.NewRNG(2)})
	machine := automation.NewMachine(sim)
	if _, err := New(Config{Clock: sim, Machine: machine, IMService: imSvc, EmailService: emSvc}); err == nil {
		t.Fatal("missing addresses accepted")
	}
	if _, err := New(Config{Clock: sim, Machine: machine, IMService: imSvc, EmailService: emSvc,
		IMHandle: "h", EmailAddress: "e"}); err == nil {
		t.Fatal("missing log path accepted")
	}
}

func TestEndToEndIMDelivery(t *testing.T) {
	f := newFixture(t)
	f.startBuddy()
	a := f.newAlert()
	rep := f.sendToBuddy(a)

	// The source's IM block succeeded: the buddy logged and acked.
	if !rep.Delivered || rep.DeliveredVia != "Buddy IM" {
		t.Fatalf("source report = %+v", rep)
	}
	// Ack budget per the paper: ~1.5s (hop + pessimistic log + hop).
	if got := rep.Latency(); got < 500*time.Millisecond || got > 4*time.Second {
		t.Fatalf("ack latency = %v, want ~1.5s", got)
	}

	// The user receives the routed alert over IM and acks it.
	f.advanceUntil(func() bool { return f.user.ReceiptCount() == 1 }, 500*time.Millisecond)
	receipts := f.user.Receipts()
	if receipts[0].Channel != addr.TypeIM {
		t.Fatalf("receipt channel = %v", receipts[0].Channel)
	}
	// End-to-end: source → buddy (0.3s) + log (0.2s) + buddy → user
	// (0.3s) plus scheduling slack.
	if receipts[0].Latency > 5*time.Second {
		t.Fatalf("end-to-end latency = %v", receipts[0].Latency)
	}
	if receipts[0].Alert.Keywords[0] != "Investment" {
		t.Fatalf("routed alert keywords = %v", receipts[0].Alert.Keywords)
	}

	// The user's receipt lands mid-route; wait for the routing stage to
	// finish before checking its counters.
	c := f.buddy.Counters()
	f.advanceUntil(func() bool {
		return c.Get("routed") == 1 && c.Get("delivered") == 1
	}, 500*time.Millisecond)
	for _, name := range []string{"received", "acked", "routed", "delivered"} {
		if c.Get(name) != 1 {
			t.Fatalf("counter %s = %d (%s)", name, c.Get(name), c)
		}
	}
}

func TestFallbackToEmailWhenUserAway(t *testing.T) {
	f := newFixture(t)
	f.startBuddy()
	f.user.SetPresent(false) // online but not acking
	a := f.newAlert()
	f.sendToBuddy(a)

	// IM block times out (10s), email fallback delivers (20s transit),
	// user checks mail every minute.
	f.advanceUntil(func() bool { return f.user.ReceiptCount() == 1 }, 2*time.Second)
	receipts := f.user.Receipts()
	if receipts[0].Channel != addr.TypeEmail {
		t.Fatalf("receipt channel = %v, want email", receipts[0].Channel)
	}
	if f.buddy.Counters().Get("delivered") != 1 {
		t.Fatal("buddy did not count the delivery")
	}
}

func TestRejectedSourceDropped(t *testing.T) {
	f := newFixture(t)
	f.startBuddy()
	a := f.newAlert()
	a.Source = "spam-source"
	f.sendToBuddy(a)
	f.advanceUntil(func() bool { return f.buddy.Counters().Get("rejected") == 1 }, 500*time.Millisecond)
	f.advance(30*time.Second, time.Second)
	if f.user.ReceiptCount() != 0 {
		t.Fatal("rejected alert reached the user")
	}
}

func TestFilteredCategoryDropped(t *testing.T) {
	f := newFixture(t)
	f.startBuddy()
	f.buddy.Filter().SetEnabled("Investment", false)
	f.sendToBuddy(f.newAlert())
	f.advanceUntil(func() bool { return f.buddy.Counters().Get("filtered") == 1 }, 500*time.Millisecond)
	f.advance(30*time.Second, time.Second)
	if f.user.ReceiptCount() != 0 {
		t.Fatal("filtered alert reached the user")
	}
}

func TestDynamicModeSwitch(t *testing.T) {
	// The paper's one-stop switch: change the Investment category from
	// IM-first to SMS-only at the buddy, without touching sources.
	f := newFixture(t)
	f.startBuddy()
	profile, err := f.buddy.Store().User("alice")
	if err != nil {
		t.Fatal(err)
	}
	smsMode := &dmode.Mode{Name: "SMSOnly", Blocks: []dmode.Block{
		{Actions: []dmode.Action{{Address: "Cell SMS"}}},
	}}
	if err := profile.DefineMode(smsMode); err != nil {
		t.Fatal(err)
	}
	if err := f.buddy.Store().Subscribe("Investment", "alice", "SMSOnly"); err != nil {
		t.Fatal(err)
	}
	f.sendToBuddy(f.newAlert())
	f.advanceUntil(func() bool { return f.user.ReceiptCount() == 1 }, time.Second)
	if got := f.user.Receipts()[0].Channel; got != addr.TypeSMS {
		t.Fatalf("receipt channel = %v, want SMS", got)
	}
}

func TestDisabledSMSFallsBackToEmail(t *testing.T) {
	// Cell out of coverage: user disables the SMS address at the buddy;
	// the SMS block fails automatically and email takes over.
	f := newFixture(t)
	f.startBuddy()
	profile, err := f.buddy.Store().User("alice")
	if err != nil {
		t.Fatal(err)
	}
	mode := &dmode.Mode{Name: "SMSThenEmail", Blocks: []dmode.Block{
		{Actions: []dmode.Action{{Address: "Cell SMS"}}},
		{Actions: []dmode.Action{{Address: "Work email"}}},
	}}
	if err := profile.DefineMode(mode); err != nil {
		t.Fatal(err)
	}
	if err := f.buddy.Store().Subscribe("Investment", "alice", "SMSThenEmail"); err != nil {
		t.Fatal(err)
	}
	if err := profile.Addresses().SetEnabled("Cell SMS", false); err != nil {
		t.Fatal(err)
	}
	f.sendToBuddy(f.newAlert())
	f.advanceUntil(func() bool { return f.user.ReceiptCount() == 1 }, 2*time.Second)
	if got := f.user.Receipts()[0].Channel; got != addr.TypeEmail {
		t.Fatalf("receipt channel = %v, want email", got)
	}
}

func TestLegacyEmailAlertClassifiedBySender(t *testing.T) {
	f := newFixture(t)
	f.startBuddy()
	f.buddy.Classifier().Accept(SourceRule{Source: "yahoo.sim", Extract: ExtractSender})
	f.buddy.Aggregator().Map("stocks", "Investment")
	// A legacy service emails the buddy directly (no SIMBA payload).
	if err := f.emSvc.Submit("stocks@yahoo.sim", buddyEmail, "MSFT news", "plain body"); err != nil {
		t.Fatal(err)
	}
	f.advanceUntil(func() bool { return f.user.ReceiptCount() == 1 }, 2*time.Second)
	got := f.user.Receipts()[0]
	if got.Alert.Keywords[0] != "Investment" {
		t.Fatalf("legacy alert keywords = %v", got.Alert.Keywords)
	}
}

func TestIMClientLogoutHealedBySanityCheck(t *testing.T) {
	f := newFixture(t)
	f.startBuddy()
	f.imSvc.ForceLogout(buddyIM)
	// The 1-minute sanity check re-logs-in.
	f.advanceUntil(func() bool {
		return f.journal.Count(faults.KindRelogin) >= 1
	}, 10*time.Second)
	// Alerts flow again.
	f.sendToBuddy(f.newAlert())
	f.advanceUntil(func() bool { return f.user.ReceiptCount() == 1 }, time.Second)
}

func TestHungIMClientRestartedBySanityCheck(t *testing.T) {
	f := newFixture(t)
	f.startBuddy()
	// Grab the current client app and hang it.
	f.advanceUntil(func() bool { return f.buddy.Running() }, time.Second)
	f.hangBuddyIMClient()
	f.advanceUntil(func() bool {
		return f.journal.Count(faults.KindClientRestart) >= 1
	}, 15*time.Second)
	f.sendToBuddy(f.newAlert())
	f.advanceUntil(func() bool { return f.user.ReceiptCount() == 1 }, time.Second)
}

// hangBuddyIMClient reaches into the incarnation to hang the client.
func (f *fixture) hangBuddyIMClient() {
	f.buddy.mu.Lock()
	inc := f.buddy.inc
	f.buddy.mu.Unlock()
	if inc == nil {
		f.t.Fatal("no incarnation")
	}
	inc.imMgr.App().Hang()
}

func TestLostEventsHealedByUnprocessedCheck(t *testing.T) {
	f := newFixture(t)
	f.buddy.cfg.OnIMLaunch = func(app *automation.IMClientApp) {
		app.SetEventLossProbability(1.0)
	}
	f.startBuddy()
	f.sendToBuddy(f.newAlert())
	// No events fire, but the poll/unprocessed sweep finds the alert
	// within a poll period.
	f.advanceUntil(func() bool { return f.user.ReceiptCount() == 1 }, 2*time.Second)
}

func TestCrashReplayDeliversUnprocessedAlert(t *testing.T) {
	f := newFixture(t)
	f.startBuddy()
	a := f.newAlert()
	rep := f.sendToBuddy(a)
	if !rep.Delivered {
		t.Fatal("source delivery failed")
	}
	// Crash immediately after the ack: routing may not have finished.
	f.buddy.InjectCrash()
	f.advanceUntil(func() bool { return !f.buddy.Running() }, 100*time.Millisecond)
	// Restart: the pessimistic log replays anything unprocessed.
	if err := f.buddy.Start(); err != nil {
		t.Fatal(err)
	}
	f.advanceUntil(func() bool { return f.user.ReceiptCount() >= 1 }, time.Second)
	// Exactly one distinct alert, duplicates (if the crash raced the
	// first delivery) discarded by timestamp.
	if got := f.user.ReceiptCount(); got != 1 {
		t.Fatalf("ReceiptCount = %d", got)
	}
}

func TestRemoteRejuvenationKeyword(t *testing.T) {
	f := newFixture(t)
	f.startBuddy()
	if _, err := f.srcEp.Send(buddyIM, RejuvenateKeyword+" please"); err != nil {
		t.Fatal(err)
	}
	f.advanceUntil(func() bool { return !f.buddy.Running() }, 500*time.Millisecond)
	if f.journal.CountMatching(faults.KindRejuvenation, "remote rejuvenation") == 0 {
		t.Fatal("remote rejuvenation not journaled")
	}
}

func TestNightlyRejuvenation(t *testing.T) {
	f := newFixture(t)
	// Sim epoch is 09:00; schedule rejuvenation for 09:30.
	f.buddy.cfg.RejuvenationTime = 9*time.Hour + 30*time.Minute
	f.startBuddy()
	f.advance(29*time.Minute, time.Minute)
	if !f.buddy.Running() {
		t.Fatal("buddy exited before the rejuvenation time")
	}
	f.advanceUntil(func() bool { return !f.buddy.Running() }, time.Minute)
	if f.journal.CountMatching(faults.KindRejuvenation, "nightly") == 0 {
		t.Fatal("nightly rejuvenation not journaled")
	}
}

func TestAreYouWorking(t *testing.T) {
	f := newFixture(t)
	if f.buddy.AreYouWorking() {
		t.Fatal("healthy before start")
	}
	f.startBuddy()
	if !f.buddy.AreYouWorking() {
		t.Fatal("unhealthy after start")
	}
	f.buddy.InjectHang()
	// Heartbeats go stale after HeartbeatMaxAge (5m default).
	f.advance(6*time.Minute, 30*time.Second)
	if f.buddy.AreYouWorking() {
		t.Fatal("hung buddy reports healthy")
	}
}

func TestDoubleStartRejected(t *testing.T) {
	f := newFixture(t)
	f.startBuddy()
	if err := f.buddy.Start(); err == nil {
		t.Fatal("second Start accepted while running")
	}
}

func TestMachinePowerOffKillsBuddy(t *testing.T) {
	f := newFixture(t)
	f.startBuddy()
	f.machine.PowerOff()
	f.advanceUntil(func() bool { return !f.buddy.Running() }, 2*time.Second)
	if err := f.buddy.Start(); err == nil {
		t.Fatal("Start succeeded with machine off")
	}
	f.machine.PowerOn()
	if err := f.buddy.Start(); err != nil {
		t.Fatalf("Start after power on: %v", err)
	}
}

func TestMultipleSubscribersAlertSharing(t *testing.T) {
	f := newFixture(t)
	f.startBuddy()
	// Second subscriber to the same category.
	if err := f.imSvc.Register("bob-im"); err != nil {
		t.Fatal(err)
	}
	bob, err := enduser.New(enduser.Config{
		Clock: f.sim, Name: "bob", IMService: f.imSvc, IMHandle: "bob-im",
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := bob.Start(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(bob.Stop)
	profile, err := f.buddy.Store().RegisterUser("bob")
	if err != nil {
		t.Fatal(err)
	}
	if err := profile.Addresses().Register(addr.Address{
		Type: addr.TypeIM, Name: "Bob IM", Target: "bob-im", Enabled: true,
	}); err != nil {
		t.Fatal(err)
	}
	mode := &dmode.Mode{Name: "IMOnly", Blocks: []dmode.Block{
		{Timeout: dmode.Duration(10 * time.Second), Actions: []dmode.Action{{Address: "Bob IM"}}},
	}}
	if err := profile.DefineMode(mode); err != nil {
		t.Fatal(err)
	}
	if err := f.buddy.Store().Subscribe("Investment", "bob", "IMOnly"); err != nil {
		t.Fatal(err)
	}
	f.sendToBuddy(f.newAlert())
	f.advanceUntil(func() bool {
		return f.user.ReceiptCount() == 1 && bob.ReceiptCount() == 1
	}, time.Second)
}
