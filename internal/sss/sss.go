// Package sss implements the Soft-State Store (SSS) server from the
// Aladdin system [9], which SIMBA's home-networking and user-location
// sources are built on: a store of soft-state variables, each
// associated with a required refresh frequency and a maximum number of
// allowed missing refreshes before the variable times out. Clients
// define variables, read/write them, and subscribe to change events.
// Stores on different home PCs replicate updates to each other through
// a simulated multicast (the phoneline Ethernet of the paper's
// disarm-the-alarm scenario).
package sss

import (
	"errors"
	"fmt"
	"strings"
	"sync"
	"time"

	"simba/internal/clock"
	"simba/internal/dist"
)

// Store errors.
var (
	// ErrUnknownVar indicates the variable has not been defined.
	ErrUnknownVar = errors.New("sss: unknown variable")
	// ErrExpired indicates the variable has timed out and holds no
	// live value.
	ErrExpired = errors.New("sss: variable expired")
)

// EventKind classifies variable events.
type EventKind int

// Event kinds.
const (
	EventCreated EventKind = iota + 1
	EventUpdated
	EventExpired
)

// String implements fmt.Stringer.
func (k EventKind) String() string {
	switch k {
	case EventCreated:
		return "created"
	case EventUpdated:
		return "updated"
	case EventExpired:
		return "expired"
	default:
		return fmt.Sprintf("kind(%d)", int(k))
	}
}

// Spec defines a soft-state variable.
type Spec struct {
	// Name identifies the variable (e.g. "home/security/armed" or
	// "wish/user/yimin").
	Name string
	// RefreshEvery is the required refresh frequency.
	RefreshEvery time.Duration
	// MaxMissed is how many consecutive refreshes may be missed before
	// the variable times out. The expiry deadline after each write or
	// refresh is RefreshEvery × (MaxMissed + 1).
	MaxMissed int
}

func (s *Spec) validate() error {
	switch {
	case s.Name == "":
		return errors.New("sss: spec requires Name")
	case s.RefreshEvery <= 0:
		return errors.New("sss: spec requires positive RefreshEvery")
	case s.MaxMissed < 0:
		return errors.New("sss: spec requires non-negative MaxMissed")
	default:
		return nil
	}
}

// deadline returns the expiry horizon implied by the spec.
func (s *Spec) deadline() time.Duration {
	return s.RefreshEvery * time.Duration(s.MaxMissed+1)
}

// Event is a variable change notification.
type Event struct {
	Node  string // name of the store that fired the event
	Var   string
	Kind  EventKind
	Value string
	At    time.Time
}

// Store is one SSS server instance (one home PC in the paper). It is
// safe for concurrent use.
type Store struct {
	clk  clock.Clock
	name string

	mu      sync.Mutex
	vars    map[string]*entry
	subs    map[int]subscription
	nextSub int
	// replicate, when set, forwards local (non-remote) writes to peers.
	replicate func(spec Spec, value string)
}

type entry struct {
	spec    Spec
	value   string
	expired bool
	timer   clock.Timer
}

type subscription struct {
	prefix string
	fn     func(Event)
}

// NewStore builds a named store.
func NewStore(clk clock.Clock, name string) (*Store, error) {
	if clk == nil {
		return nil, errors.New("sss: clock is required")
	}
	if name == "" {
		return nil, errors.New("sss: store name is required")
	}
	return &Store{
		clk:  clk,
		name: name,
		vars: make(map[string]*entry),
		subs: make(map[int]subscription),
	}, nil
}

// Name returns the store's node name.
func (s *Store) Name() string { return s.name }

// Define declares a variable. Redefining an existing variable updates
// its refresh parameters.
func (s *Store) Define(spec Spec) error {
	if err := spec.validate(); err != nil {
		return err
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	e, ok := s.vars[spec.Name]
	if !ok {
		s.vars[spec.Name] = &entry{spec: spec, expired: true}
		return nil
	}
	e.spec = spec
	return nil
}

// Specs returns the defined variable specs, for replication.
func (s *Store) Specs() []Spec {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]Spec, 0, len(s.vars))
	for _, e := range s.vars {
		out = append(out, e.spec)
	}
	return out
}

// Write sets the variable's value, counts as a refresh, and fires a
// Created or Updated event. The write replicates to linked peers.
func (s *Store) Write(name, value string) error {
	return s.write(name, value, true)
}

func (s *Store) write(name, value string, local bool) error {
	s.mu.Lock()
	e, ok := s.vars[name]
	if !ok {
		s.mu.Unlock()
		return fmt.Errorf("sss: write %q: %w", name, ErrUnknownVar)
	}
	wasExpired := e.expired
	changed := e.value != value
	e.value = value
	e.expired = false
	s.armLocked(e)
	spec := e.spec
	var repl func(Spec, string)
	if local {
		repl = s.replicate
	}
	s.mu.Unlock()

	switch {
	case wasExpired:
		s.fire(Event{Node: s.name, Var: name, Kind: EventCreated, Value: value, At: s.clk.Now()})
	case changed:
		s.fire(Event{Node: s.name, Var: name, Kind: EventUpdated, Value: value, At: s.clk.Now()})
	}
	if repl != nil {
		repl(spec, value)
	}
	return nil
}

// Refresh keeps the variable alive without changing its value. A
// refresh of an expired variable revives it (Created event).
func (s *Store) Refresh(name string) error {
	s.mu.Lock()
	e, ok := s.vars[name]
	if !ok {
		s.mu.Unlock()
		return fmt.Errorf("sss: refresh %q: %w", name, ErrUnknownVar)
	}
	value := e.value
	s.mu.Unlock()
	return s.write(name, value, true)
}

// Read returns the variable's live value.
func (s *Store) Read(name string) (string, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	e, ok := s.vars[name]
	if !ok {
		return "", fmt.Errorf("sss: read %q: %w", name, ErrUnknownVar)
	}
	if e.expired {
		return "", fmt.Errorf("sss: read %q: %w", name, ErrExpired)
	}
	return e.value, nil
}

// Expired reports whether the variable has timed out (true also for
// never-written variables).
func (s *Store) Expired(name string) (bool, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	e, ok := s.vars[name]
	if !ok {
		return false, fmt.Errorf("sss: expired %q: %w", name, ErrUnknownVar)
	}
	return e.expired, nil
}

// Subscribe registers fn for events on variables whose names start
// with prefix ("" matches all). It returns a subscription ID.
func (s *Store) Subscribe(prefix string, fn func(Event)) int {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.nextSub++
	s.subs[s.nextSub] = subscription{prefix: prefix, fn: fn}
	return s.nextSub
}

// Unsubscribe removes a subscription.
func (s *Store) Unsubscribe(id int) {
	s.mu.Lock()
	delete(s.subs, id)
	s.mu.Unlock()
}

// armLocked (re)arms the variable's expiry timer. Caller holds s.mu.
func (s *Store) armLocked(e *entry) {
	if e.timer != nil {
		e.timer.Stop()
	}
	name := e.spec.Name
	e.timer = s.clk.AfterFunc(e.spec.deadline(), func() {
		s.expire(name)
	})
}

// expire marks the variable timed out and fires the Expired event.
func (s *Store) expire(name string) {
	s.mu.Lock()
	e, ok := s.vars[name]
	if !ok || e.expired {
		s.mu.Unlock()
		return
	}
	e.expired = true
	value := e.value
	s.mu.Unlock()
	s.fire(Event{Node: s.name, Var: name, Kind: EventExpired, Value: value, At: s.clk.Now()})
}

// fire dispatches an event to matching subscribers.
func (s *Store) fire(ev Event) {
	s.mu.Lock()
	var fns []func(Event)
	for _, sub := range s.subs {
		if sub.prefix == "" || strings.HasPrefix(ev.Var, sub.prefix) {
			fns = append(fns, sub.fn)
		}
	}
	s.mu.Unlock()
	for _, fn := range fns {
		fn(ev)
	}
}

// applyRemote installs a replicated update (defining the variable on
// first sight) without re-replicating.
func (s *Store) applyRemote(spec Spec, value string) {
	s.mu.Lock()
	if _, ok := s.vars[spec.Name]; !ok {
		s.vars[spec.Name] = &entry{spec: spec, expired: true}
	}
	s.mu.Unlock()
	_ = s.write(spec.Name, value, false)
}

// Multicast links stores so that every local write on one store is
// replicated to all the others after a sampled network delay, with an
// optional loss probability (messages silently dropped, as on a real
// shared medium — the refresh mechanism papers over losses).
type Multicast struct {
	clk   clock.Clock
	rng   *dist.RNG
	delay dist.Dist
	lossP float64

	mu      sync.Mutex
	members []*Store
	sent    int
	lost    int
}

// NewMulticast builds an empty group.
func NewMulticast(clk clock.Clock, rng *dist.RNG, delay dist.Dist, lossP float64) (*Multicast, error) {
	if clk == nil || rng == nil {
		return nil, errors.New("sss: multicast requires clock and rng")
	}
	if delay == nil {
		delay = dist.Fixed(50 * time.Millisecond)
	}
	if lossP < 0 || lossP >= 1 {
		return nil, fmt.Errorf("sss: loss probability %v outside [0, 1)", lossP)
	}
	return &Multicast{clk: clk, rng: rng, delay: delay, lossP: lossP}, nil
}

// Join adds a store to the group and wires its replication hook.
func (m *Multicast) Join(s *Store) {
	m.mu.Lock()
	m.members = append(m.members, s)
	m.mu.Unlock()
	s.mu.Lock()
	s.replicate = func(spec Spec, value string) { m.send(s, spec, value) }
	s.mu.Unlock()
}

// Sent returns how many replication messages were sent (one per peer
// per write).
func (m *Multicast) Sent() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.sent
}

// Lost returns how many replication messages were dropped.
func (m *Multicast) Lost() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.lost
}

// send fans a write out to every other member.
func (m *Multicast) send(from *Store, spec Spec, value string) {
	m.mu.Lock()
	peers := make([]*Store, 0, len(m.members))
	for _, p := range m.members {
		if p != from {
			peers = append(peers, p)
		}
	}
	m.sent += len(peers)
	m.mu.Unlock()
	for _, peer := range peers {
		if m.rng.Bool(m.lossP) {
			m.mu.Lock()
			m.lost++
			m.mu.Unlock()
			continue
		}
		peer := peer
		m.clk.AfterFunc(m.delay.Sample(m.rng), func() {
			peer.applyRemote(spec, value)
		})
	}
}
