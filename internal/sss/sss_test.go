package sss

import (
	"errors"
	"sync"
	"testing"
	"testing/quick"
	"time"

	"simba/internal/clock"
	"simba/internal/dist"
)

func newStore(t *testing.T) (*Store, *clock.Sim) {
	t.Helper()
	sim := clock.NewSim(time.Time{})
	s, err := NewStore(sim, "gateway")
	if err != nil {
		t.Fatal(err)
	}
	return s, sim
}

func sensorSpec() Spec {
	return Spec{Name: "home/basement/water", RefreshEvery: 10 * time.Second, MaxMissed: 2}
}

type eventLog struct {
	mu     sync.Mutex
	events []Event
}

func (l *eventLog) add(ev Event) {
	l.mu.Lock()
	l.events = append(l.events, ev)
	l.mu.Unlock()
}

func (l *eventLog) kinds() []EventKind {
	l.mu.Lock()
	defer l.mu.Unlock()
	out := make([]EventKind, len(l.events))
	for i, ev := range l.events {
		out[i] = ev.Kind
	}
	return out
}

func TestNewStoreValidation(t *testing.T) {
	sim := clock.NewSim(time.Time{})
	if _, err := NewStore(nil, "x"); err == nil {
		t.Fatal("nil clock accepted")
	}
	if _, err := NewStore(sim, ""); err == nil {
		t.Fatal("empty name accepted")
	}
}

func TestDefineValidation(t *testing.T) {
	s, _ := newStore(t)
	for _, spec := range []Spec{
		{},
		{Name: "x"},
		{Name: "x", RefreshEvery: time.Second, MaxMissed: -1},
	} {
		if err := s.Define(spec); err == nil {
			t.Fatalf("invalid spec accepted: %+v", spec)
		}
	}
	if err := s.Define(sensorSpec()); err != nil {
		t.Fatal(err)
	}
	// Redefinition updates parameters.
	re := sensorSpec()
	re.MaxMissed = 5
	if err := s.Define(re); err != nil {
		t.Fatal(err)
	}
	specs := s.Specs()
	if len(specs) != 1 || specs[0].MaxMissed != 5 {
		t.Fatalf("Specs = %+v", specs)
	}
}

func TestWriteReadLifecycle(t *testing.T) {
	s, _ := newStore(t)
	if err := s.Write("ghost", "x"); !errors.Is(err, ErrUnknownVar) {
		t.Fatalf("Write(ghost) = %v", err)
	}
	if _, err := s.Read("ghost"); !errors.Is(err, ErrUnknownVar) {
		t.Fatalf("Read(ghost) = %v", err)
	}
	if err := s.Define(sensorSpec()); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Read(sensorSpec().Name); !errors.Is(err, ErrExpired) {
		t.Fatalf("Read before first write = %v", err)
	}
	if expired, _ := s.Expired(sensorSpec().Name); !expired {
		t.Fatal("unwritten variable not expired")
	}
	if err := s.Write(sensorSpec().Name, "OFF"); err != nil {
		t.Fatal(err)
	}
	got, err := s.Read(sensorSpec().Name)
	if err != nil || got != "OFF" {
		t.Fatalf("Read = %q, %v", got, err)
	}
}

func TestEventsFireOnChange(t *testing.T) {
	s, _ := newStore(t)
	var log eventLog
	s.Subscribe("home/", log.add)
	if err := s.Define(sensorSpec()); err != nil {
		t.Fatal(err)
	}
	mustWrite(t, s, sensorSpec().Name, "OFF") // Created
	mustWrite(t, s, sensorSpec().Name, "OFF") // refresh, no event
	mustWrite(t, s, sensorSpec().Name, "ON")  // Updated
	want := []EventKind{EventCreated, EventUpdated}
	got := log.kinds()
	if len(got) != len(want) {
		t.Fatalf("events = %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("events = %v, want %v", got, want)
		}
	}
}

func TestSubscribePrefixFiltering(t *testing.T) {
	s, _ := newStore(t)
	var home, all eventLog
	s.Subscribe("home/", home.add)
	id := s.Subscribe("", all.add)
	if err := s.Define(Spec{Name: "wish/u", RefreshEvery: time.Second, MaxMissed: 1}); err != nil {
		t.Fatal(err)
	}
	mustWrite(t, s, "wish/u", "office")
	if len(home.kinds()) != 0 {
		t.Fatal("prefix subscription leaked")
	}
	if len(all.kinds()) != 1 {
		t.Fatal("catch-all subscription missed")
	}
	s.Unsubscribe(id)
	mustWrite(t, s, "wish/u", "lab")
	if len(all.kinds()) != 1 {
		t.Fatal("unsubscribed handler still fired")
	}
}

func TestExpiryAfterMissedRefreshes(t *testing.T) {
	s, sim := newStore(t)
	var log eventLog
	s.Subscribe("", log.add)
	if err := s.Define(sensorSpec()); err != nil { // 10s × (2+1) = 30s deadline
		t.Fatal(err)
	}
	mustWrite(t, s, sensorSpec().Name, "OFF")
	// Keep refreshing: no expiry.
	for i := 0; i < 5; i++ {
		sim.Advance(10 * time.Second)
		time.Sleep(time.Millisecond)
		if err := s.Refresh(sensorSpec().Name); err != nil {
			t.Fatal(err)
		}
	}
	if expired, _ := s.Expired(sensorSpec().Name); expired {
		t.Fatal("refreshed variable expired")
	}
	// Stop refreshing: expires at +30s.
	sim.Advance(29 * time.Second)
	time.Sleep(time.Millisecond)
	if expired, _ := s.Expired(sensorSpec().Name); expired {
		t.Fatal("expired before the deadline")
	}
	sim.Advance(2 * time.Second)
	waitFor(t, func() bool {
		expired, _ := s.Expired(sensorSpec().Name)
		return expired
	})
	if _, err := s.Read(sensorSpec().Name); !errors.Is(err, ErrExpired) {
		t.Fatalf("Read after expiry = %v", err)
	}
	kinds := log.kinds()
	if kinds[len(kinds)-1] != EventExpired {
		t.Fatalf("events = %v", kinds)
	}
	// A write revives the variable with a Created event.
	mustWrite(t, s, sensorSpec().Name, "ON")
	kinds = log.kinds()
	if kinds[len(kinds)-1] != EventCreated {
		t.Fatalf("events after revival = %v", kinds)
	}
}

func TestMulticastReplication(t *testing.T) {
	sim := clock.NewSim(time.Time{})
	mc, err := NewMulticast(sim, dist.NewRNG(1), dist.Fixed(50*time.Millisecond), 0)
	if err != nil {
		t.Fatal(err)
	}
	var stores []*Store
	for _, name := range []string{"pc1", "pc2", "gateway"} {
		s, err := NewStore(sim, name)
		if err != nil {
			t.Fatal(err)
		}
		mc.Join(s)
		stores = append(stores, s)
	}
	// Only pc1 defines the variable; replication carries the spec.
	if err := stores[0].Define(sensorSpec()); err != nil {
		t.Fatal(err)
	}
	mustWrite(t, stores[0], sensorSpec().Name, "ON")
	sim.Advance(time.Second)
	for _, s := range stores[1:] {
		waitFor(t, func() bool {
			v, err := s.Read(sensorSpec().Name)
			return err == nil && v == "ON"
		})
	}
	if mc.Sent() != 2 {
		t.Fatalf("Sent = %d", mc.Sent())
	}
	// Remote applies do not re-replicate (no storm).
	sim.Advance(time.Second)
	if mc.Sent() != 2 {
		t.Fatalf("replication storm: Sent = %d", mc.Sent())
	}
}

func TestMulticastEventAtGateway(t *testing.T) {
	// The disarm scenario's plumbing: a write on the monitor PC fires
	// an event on the gateway store.
	sim := clock.NewSim(time.Time{})
	mc, _ := NewMulticast(sim, dist.NewRNG(1), dist.Fixed(100*time.Millisecond), 0)
	pc, _ := NewStore(sim, "monitor-pc")
	gw, _ := NewStore(sim, "gateway")
	mc.Join(pc)
	mc.Join(gw)
	var log eventLog
	gw.Subscribe("home/", log.add)
	if err := pc.Define(Spec{Name: "home/security/armed", RefreshEvery: time.Minute, MaxMissed: 3}); err != nil {
		t.Fatal(err)
	}
	mustWrite(t, pc, "home/security/armed", "false")
	sim.Advance(time.Second)
	waitFor(t, func() bool { return len(log.kinds()) == 1 })
	log.mu.Lock()
	defer log.mu.Unlock()
	ev := log.events[0]
	if ev.Node != "gateway" || ev.Value != "false" || ev.Kind != EventCreated {
		t.Fatalf("gateway event = %+v", ev)
	}
}

func TestMulticastLossToleratedByRefresh(t *testing.T) {
	sim := clock.NewSim(time.Time{})
	mc, err := NewMulticast(sim, dist.NewRNG(7), dist.Fixed(10*time.Millisecond), 0.5)
	if err != nil {
		t.Fatal(err)
	}
	src, _ := NewStore(sim, "src")
	dst, _ := NewStore(sim, "dst")
	mc.Join(src)
	mc.Join(dst)
	if err := src.Define(Spec{Name: "v", RefreshEvery: time.Second, MaxMissed: 1}); err != nil {
		t.Fatal(err)
	}
	// Repeated refreshes eventually get one through.
	mustWrite(t, src, "v", "x")
	for i := 0; i < 20; i++ {
		sim.Advance(time.Second)
		time.Sleep(time.Millisecond)
		if err := src.Refresh("v"); err != nil {
			t.Fatal(err)
		}
	}
	sim.Advance(time.Second)
	waitFor(t, func() bool {
		v, err := dst.Read("v")
		return err == nil && v == "x"
	})
	if mc.Lost() == 0 {
		t.Fatal("no losses at p=0.5")
	}
}

func TestEventKindString(t *testing.T) {
	for _, tt := range []struct {
		k    EventKind
		want string
	}{
		{EventCreated, "created"}, {EventUpdated, "updated"},
		{EventExpired, "expired"}, {EventKind(9), "kind(9)"},
	} {
		if got := tt.k.String(); got != tt.want {
			t.Fatalf("String = %q", got)
		}
	}
}

// Property: a variable written at t and refreshed every r never
// expires while refreshes continue; once refreshes stop, it expires
// within (MaxMissed+1)×r.
func TestExpiryDeadlineProperty(t *testing.T) {
	f := func(refreshSecs, maxMissed uint8) bool {
		r := time.Duration(int(refreshSecs)%20+1) * time.Second
		mm := int(maxMissed) % 4
		sim := clock.NewSim(time.Time{})
		s, err := NewStore(sim, "n")
		if err != nil {
			return false
		}
		if err := s.Define(Spec{Name: "v", RefreshEvery: r, MaxMissed: mm}); err != nil {
			return false
		}
		if err := s.Write("v", "x"); err != nil {
			return false
		}
		deadline := r * time.Duration(mm+1)
		// Just before the deadline: alive.
		sim.Advance(deadline - time.Millisecond)
		if expired, _ := s.Expired("v"); expired {
			return false
		}
		// Just after: expired.
		sim.Advance(2 * time.Millisecond)
		limit := time.Now().Add(time.Second)
		for {
			if expired, _ := s.Expired("v"); expired {
				return true
			}
			if time.Now().After(limit) {
				return false
			}
			time.Sleep(time.Millisecond)
		}
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func mustWrite(t *testing.T, s *Store, name, value string) {
	t.Helper()
	if err := s.Write(name, value); err != nil {
		t.Fatal(err)
	}
}

func waitFor(t *testing.T, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatal("condition not reached in time")
		}
		time.Sleep(time.Millisecond)
	}
}
