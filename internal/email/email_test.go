package email

import (
	"errors"
	"testing"
	"time"

	"simba/internal/clock"
	"simba/internal/dist"
)

func newTestService(t *testing.T, lossP float64) (*Service, *clock.Sim) {
	t.Helper()
	sim := clock.NewSim(time.Time{})
	svc, err := NewService(Config{
		Clock:           sim,
		RNG:             dist.NewRNG(1),
		Delay:           dist.Fixed(20 * time.Second),
		LossProbability: lossP,
	})
	if err != nil {
		t.Fatal(err)
	}
	return svc, sim
}

func TestNewServiceValidation(t *testing.T) {
	sim := clock.NewSim(time.Time{})
	if _, err := NewService(Config{RNG: dist.NewRNG(1)}); err == nil {
		t.Fatal("missing clock accepted")
	}
	if _, err := NewService(Config{Clock: sim}); err == nil {
		t.Fatal("missing rng accepted")
	}
	if _, err := NewService(Config{Clock: sim, RNG: dist.NewRNG(1), LossProbability: 1.5}); err == nil {
		t.Fatal("bad loss probability accepted")
	}
}

func TestCreateMailbox(t *testing.T) {
	svc, _ := newTestService(t, 0)
	if _, err := svc.CreateMailbox(""); err == nil {
		t.Fatal("empty address accepted")
	}
	mb, err := svc.CreateMailbox("alice@work.sim")
	if err != nil {
		t.Fatal(err)
	}
	if mb.Address() != "alice@work.sim" {
		t.Fatalf("Address() = %q", mb.Address())
	}
	if _, err := svc.CreateMailbox("alice@work.sim"); err == nil {
		t.Fatal("duplicate mailbox accepted")
	}
	got, ok := svc.Mailbox("alice@work.sim")
	if !ok || got != mb {
		t.Fatal("Mailbox lookup failed")
	}
	if _, ok := svc.Mailbox("ghost@x"); ok {
		t.Fatal("found nonexistent mailbox")
	}
}

func TestSubmitDeliversAfterDelay(t *testing.T) {
	svc, sim := newTestService(t, 0)
	mb, _ := svc.CreateMailbox("alice@work.sim")
	submitted := sim.Now()
	if err := svc.Submit("bob@x", "alice@work.sim", "hi", "body"); err != nil {
		t.Fatal(err)
	}
	sim.Advance(19 * time.Second)
	if mb.Len() != 0 {
		t.Fatal("delivered early")
	}
	sim.Advance(time.Second)
	msgs := mb.Fetch()
	if len(msgs) != 1 {
		t.Fatalf("got %d messages", len(msgs))
	}
	m := msgs[0]
	if m.From != "bob@x" || m.Subject != "hi" || m.Body != "body" {
		t.Fatalf("message = %+v", m)
	}
	if got := m.DeliveredAt.Sub(submitted); got != 20*time.Second {
		t.Fatalf("latency = %v", got)
	}
	if mb.Len() != 0 {
		t.Fatal("Fetch did not drain")
	}
}

func TestSubmitToUnknownBounces(t *testing.T) {
	svc, _ := newTestService(t, 0)
	if err := svc.Submit("a", "nobody@x", "s", "b"); !errors.Is(err, ErrNoSuchMailbox) {
		t.Fatalf("Submit = %v", err)
	}
}

func TestOutageFailsSubmit(t *testing.T) {
	svc, sim := newTestService(t, 0)
	_, _ = svc.CreateMailbox("alice@x")
	svc.Outage().Set(true, sim.Now())
	if err := svc.Submit("b", "alice@x", "s", "b"); !errors.Is(err, ErrServiceUnavailable) {
		t.Fatalf("Submit during outage = %v", err)
	}
	svc.Outage().Set(false, sim.Now())
	if err := svc.Submit("b", "alice@x", "s", "b"); err != nil {
		t.Fatalf("Submit after outage = %v", err)
	}
}

func TestSilentLoss(t *testing.T) {
	svc, sim := newTestService(t, 0.5)
	mb, _ := svc.CreateMailbox("alice@x")
	const n = 400
	for i := 0; i < n; i++ {
		if err := svc.Submit("b", "alice@x", "s", "b"); err != nil {
			t.Fatal(err)
		}
	}
	sim.Advance(time.Minute)
	delivered := mb.Len()
	lost := svc.Lost()
	if delivered+lost != n {
		t.Fatalf("delivered %d + lost %d != %d", delivered, lost, n)
	}
	if lost < n/4 || lost > 3*n/4 {
		t.Fatalf("lost %d of %d with p=0.5", lost, n)
	}
}

func TestNotifyCoalesces(t *testing.T) {
	svc, sim := newTestService(t, 0)
	mb, _ := svc.CreateMailbox("alice@x")
	for i := 0; i < 3; i++ {
		if err := svc.Submit("b", "alice@x", "s", "b"); err != nil {
			t.Fatal(err)
		}
	}
	sim.Advance(time.Minute)
	select {
	case <-mb.Notify():
	default:
		t.Fatal("no new-mail notification")
	}
	// Tokens coalesce: at most one more pending.
	drained := 0
	for {
		select {
		case <-mb.Notify():
			drained++
			if drained > 1 {
				t.Fatal("notifications did not coalesce")
			}
			continue
		default:
		}
		break
	}
	if got := len(mb.Fetch()); got != 3 {
		t.Fatalf("Fetch() = %d messages", got)
	}
}

func TestPeekDoesNotDrain(t *testing.T) {
	svc, sim := newTestService(t, 0)
	mb, _ := svc.CreateMailbox("alice@x")
	if err := svc.Submit("b", "alice@x", "s", "b"); err != nil {
		t.Fatal(err)
	}
	sim.Advance(time.Minute)
	if got := len(mb.Peek()); got != 1 {
		t.Fatalf("Peek() = %d", got)
	}
	if mb.Len() != 1 {
		t.Fatal("Peek drained the mailbox")
	}
	peeked := mb.Peek()
	peeked[0].Subject = "mutated"
	if mb.Peek()[0].Subject == "mutated" {
		t.Fatal("Peek aliases internal slice")
	}
}

func TestDefaultDelayIsHeavyTailed(t *testing.T) {
	sim := clock.NewSim(time.Time{})
	svc, err := NewService(Config{Clock: sim, RNG: dist.NewRNG(7)})
	if err != nil {
		t.Fatal(err)
	}
	mb, _ := svc.CreateMailbox("a@x")
	const n = 300
	for i := 0; i < n; i++ {
		if err := svc.Submit("b", "a@x", "s", "b"); err != nil {
			t.Fatal(err)
		}
	}
	sim.Advance(2 * time.Minute)
	fast := len(mb.Fetch())
	sim.Advance(48 * time.Hour)
	total := fast + mb.Len()
	if total != n {
		t.Fatalf("only %d of %d delivered after 48h", total, n)
	}
	if fast == 0 || fast == n {
		t.Fatalf("delay distribution lacks spread: %d/%d within 2m", fast, n)
	}
}
