// Package email simulates the store-and-forward email substrate SIMBA
// uses as its fallback alert channel. The paper's premise is that
// "email delivery is not guaranteed to be reliable, and the
// unpredictable delivery time can range from seconds to days"; the
// simulator reproduces exactly that contract with a configurable
// heavy-tailed delay distribution and a silent-loss probability.
package email

import (
	"errors"
	"fmt"
	"sync"
	"time"

	"simba/internal/clock"
	"simba/internal/dist"
	"simba/internal/faults"
)

// Service errors.
var (
	// ErrServiceUnavailable indicates the submission server is down.
	ErrServiceUnavailable = errors.New("email: service unavailable")
	// ErrNoSuchMailbox indicates the recipient does not exist.
	ErrNoSuchMailbox = errors.New("email: no such mailbox")
)

// Message is one email.
type Message struct {
	From, To string
	Subject  string
	Body     string
	// SubmittedAt and DeliveredAt are virtual timestamps; DeliveredAt
	// is zero until the message lands in the recipient's mailbox.
	SubmittedAt time.Time
	DeliveredAt time.Time
}

// Config parameterizes a Service.
type Config struct {
	// Clock drives delivery latency; required.
	Clock clock.Clock
	// RNG seeds the delay and loss sampling; required.
	RNG *dist.RNG
	// Delay is the end-to-end delivery latency distribution. The
	// default is heavy-tailed: usually tens of seconds, occasionally
	// hours.
	Delay dist.Dist
	// LossProbability is the chance a submitted message is silently
	// lost in transit.
	LossProbability float64
	// Outage, when active, fails Submit calls. Optional.
	Outage *faults.Flag
}

// Service is the simulated email infrastructure.
type Service struct {
	clk    clock.Clock
	rng    *dist.RNG
	delay  dist.Dist
	lossP  float64
	outage *faults.Flag

	mu        sync.Mutex
	mailboxes map[string]*Mailbox
	lost      int
}

// NewService builds an email service.
func NewService(cfg Config) (*Service, error) {
	if cfg.Clock == nil {
		return nil, errors.New("email: Config.Clock is required")
	}
	if cfg.RNG == nil {
		return nil, errors.New("email: Config.RNG is required")
	}
	if cfg.Delay == nil {
		// Median ~20s, 90th percentile minutes, tail into hours: the
		// "seconds to days" unpredictability from Section 3.1.
		cfg.Delay = dist.LogNormal{Mu: 3.0, Sigma: 1.6}
	}
	if cfg.LossProbability < 0 || cfg.LossProbability >= 1 {
		return nil, fmt.Errorf("email: loss probability %v outside [0, 1)", cfg.LossProbability)
	}
	if cfg.Outage == nil {
		cfg.Outage = faults.NewFlag("email-service-outage")
	}
	return &Service{
		clk:       cfg.Clock,
		rng:       cfg.RNG,
		delay:     cfg.Delay,
		lossP:     cfg.LossProbability,
		outage:    cfg.Outage,
		mailboxes: make(map[string]*Mailbox),
	}, nil
}

// Outage returns the service's outage flag.
func (s *Service) Outage() *faults.Flag { return s.outage }

// CreateMailbox provisions a mailbox for address.
func (s *Service) CreateMailbox(address string) (*Mailbox, error) {
	if address == "" {
		return nil, errors.New("email: empty address")
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, ok := s.mailboxes[address]; ok {
		return nil, fmt.Errorf("email: mailbox %q already exists", address)
	}
	mb := &Mailbox{address: address, notify: make(chan struct{}, 1)}
	s.mailboxes[address] = mb
	return mb, nil
}

// Mailbox returns the mailbox for address.
func (s *Service) Mailbox(address string) (*Mailbox, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	mb, ok := s.mailboxes[address]
	return mb, ok
}

// Submit accepts a message for delivery. Acceptance is synchronous
// (like an SMTP 250); actual delivery happens after a sampled delay
// and may silently fail. Submitting to an unknown recipient is an
// error (a synchronous bounce).
func (s *Service) Submit(from, to, subject, body string) error {
	if s.outage.Active() {
		return ErrServiceUnavailable
	}
	s.mu.Lock()
	mb, ok := s.mailboxes[to]
	s.mu.Unlock()
	if !ok {
		return fmt.Errorf("email: submit to %q: %w", to, ErrNoSuchMailbox)
	}
	msg := Message{
		From:        from,
		To:          to,
		Subject:     subject,
		Body:        body,
		SubmittedAt: s.clk.Now(),
	}
	if s.rng.Bool(s.lossP) {
		s.mu.Lock()
		s.lost++
		s.mu.Unlock()
		return nil // silent in-transit loss: sender saw a successful submit
	}
	d := s.delay.Sample(s.rng)
	s.clk.AfterFunc(d, func() {
		msg.DeliveredAt = s.clk.Now()
		mb.put(msg)
	})
	return nil
}

// Lost returns how many messages were silently lost in transit.
func (s *Service) Lost() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.lost
}

// Mailbox holds delivered messages for one address.
type Mailbox struct {
	address string

	mu     sync.Mutex
	msgs   []Message
	notify chan struct{}
}

// Address returns the mailbox's address.
func (m *Mailbox) Address() string { return m.address }

// put appends a delivered message and signals the new-mail event.
func (m *Mailbox) put(msg Message) {
	m.mu.Lock()
	m.msgs = append(m.msgs, msg)
	m.mu.Unlock()
	select {
	case m.notify <- struct{}{}:
	default:
	}
}

// Notify returns a channel that receives a token when new mail
// arrives. Tokens coalesce: one token may cover several messages, so
// consumers should drain with Fetch. (The paper's self-stabilization
// checks exist precisely because client software can lose new-email
// events; the coalescing channel models the eventing interface.)
func (m *Mailbox) Notify() <-chan struct{} { return m.notify }

// Fetch removes and returns all delivered messages.
func (m *Mailbox) Fetch() []Message {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := m.msgs
	m.msgs = nil
	return out
}

// Peek returns the delivered messages without removing them.
func (m *Mailbox) Peek() []Message {
	m.mu.Lock()
	defer m.mu.Unlock()
	return append([]Message(nil), m.msgs...)
}

// Len returns the number of unfetched messages.
func (m *Mailbox) Len() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return len(m.msgs)
}
