package timewheel

import (
	"sync"
	"testing"
	"time"

	"simba/internal/clock"
	"simba/internal/race"
)

// drainFired reports whether the timer has a fire waiting.
func fired(t *Timer) bool {
	select {
	case <-t.C():
		return true
	default:
		return false
	}
}

func TestWheelFiresAtExactSimDeadline(t *testing.T) {
	sim := clock.NewSim(time.Time{})
	w := New(sim, Options{})
	tm := w.After(50 * time.Millisecond)
	defer w.Release(tm)

	sim.Advance(49 * time.Millisecond)
	if fired(tm) {
		t.Fatal("timer fired 1ms early")
	}
	sim.Advance(1 * time.Millisecond)
	if !fired(tm) {
		t.Fatal("timer did not fire at its exact deadline")
	}
	if got := w.Pending(); got != 0 {
		t.Fatalf("pending = %d after fire, want 0", got)
	}
}

func TestWheelMultiplexesManyDeadlines(t *testing.T) {
	sim := clock.NewSim(time.Time{})
	w := New(sim, Options{Slots: 8})
	const n = 100
	timers := make([]*Timer, n)
	for i := range timers {
		timers[i] = w.After(time.Duration(i+1) * time.Millisecond)
	}
	if got := w.Pending(); got != n {
		t.Fatalf("pending = %d, want %d", got, n)
	}
	// Advance one millisecond at a time: exactly one timer fires per step.
	for i := 0; i < n; i++ {
		sim.Advance(time.Millisecond)
		if !fired(timers[i]) {
			t.Fatalf("timer %d did not fire at +%dms", i, i+1)
		}
		for j := i + 1; j < n; j++ {
			if fired(timers[j]) {
				t.Fatalf("timer %d fired early at +%dms", j, i+1)
			}
		}
	}
	for _, tm := range timers {
		w.Release(tm)
	}
	if got := w.Pending(); got != 0 {
		t.Fatalf("pending = %d after all fires, want 0", got)
	}
}

func TestWheelReleaseCancelsAndRecycles(t *testing.T) {
	sim := clock.NewSim(time.Time{})
	w := New(sim, Options{})
	tm := w.After(10 * time.Millisecond)
	w.Release(tm)
	if got := w.Pending(); got != 0 {
		t.Fatalf("pending = %d after release, want 0", got)
	}
	sim.Advance(20 * time.Millisecond)
	if fired(tm) {
		t.Fatal("released timer still fired")
	}
	// The node is recycled: the next After reuses it, with a clean channel.
	tm2 := w.After(5 * time.Millisecond)
	if tm2 != tm {
		t.Fatal("expected the released node to be recycled")
	}
	if fired(tm2) {
		t.Fatal("recycled node came back with a stale fire buffered")
	}
	sim.Advance(5 * time.Millisecond)
	if !fired(tm2) {
		t.Fatal("recycled node did not fire")
	}
	w.Release(tm2)
}

func TestWheelImmediateFire(t *testing.T) {
	sim := clock.NewSim(time.Time{})
	w := New(sim, Options{})
	tm := w.After(0)
	if !fired(tm) {
		t.Fatal("After(0) did not fire immediately")
	}
	w.Release(tm)
	tm = w.After(-time.Second)
	if !fired(tm) {
		t.Fatal("After(<0) did not fire immediately")
	}
	w.Release(tm)
}

func TestWheelPoisonScribblesOnRelease(t *testing.T) {
	sim := clock.NewSim(time.Time{})
	w := New(sim, Options{Poison: true})
	tm := w.After(time.Millisecond)
	w.Release(tm)
	if tm.when.Unix() != -1<<40 {
		t.Fatalf("poisoned node's deadline = %v, want the poison sentinel", tm.when)
	}
	// Recycling must still produce a working timer.
	tm2 := w.After(time.Millisecond)
	sim.Advance(time.Millisecond)
	if !fired(tm2) {
		t.Fatal("recycled poisoned node did not fire")
	}
	w.Release(tm2)
}

// TestWheelSteadyStateAllocs pins the arm/release cycle at zero
// allocations once the node pool and driver are warm. Runs on the real
// clock: the simulated clock allocates a heap event per re-arm by
// design.
func TestWheelSteadyStateAllocs(t *testing.T) {
	if race.Enabled {
		t.Skip("allocation counts are not stable under -race")
	}
	w := New(clock.Real{}, Options{})
	// Warm up: allocate the node and the driver.
	w.Release(w.After(time.Hour))
	if n := testing.AllocsPerRun(200, func() {
		tm := w.After(time.Hour)
		w.Release(tm)
	}); n != 0 {
		t.Fatalf("arm/release allocates %.1f per run, want 0", n)
	}
	if n := testing.AllocsPerRun(200, func() {
		tm := w.After(0)
		<-tm.C()
		w.Release(tm)
	}); n != 0 {
		t.Fatalf("immediate fire allocates %.1f per run, want 0", n)
	}
}

// TestWheelConcurrent hammers the wheel from many goroutines under
// short real-clock deadlines; run under -race this is the wheel's data
// race gate.
func TestWheelConcurrent(t *testing.T) {
	w := New(clock.Real{}, Options{Slots: 16, Poison: true})
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				tm := w.After(time.Duration(i%7) * 100 * time.Microsecond)
				if i%3 == 0 {
					// Abandon some waits without consuming the fire.
					w.Release(tm)
					continue
				}
				<-tm.C()
				w.Release(tm)
			}
		}(g)
	}
	wg.Wait()
	if got := w.Pending(); got != 0 {
		t.Fatalf("pending = %d after quiesce, want 0", got)
	}
}
