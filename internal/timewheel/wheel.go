// Package timewheel provides a hashed timer wheel over clock.Clock for
// the hub's high-churn waits: delivery retry backoffs and block ack
// timeouts. Each of those waits used to allocate a fresh Clock.NewTimer
// (a channel, a runtime timer, and — under the simulated clock — a heap
// event); at tens of thousands of alerts per second the timers became
// measurable garbage. The wheel multiplexes any number of waits onto
// ONE underlying clock timer:
//
//   - Timer nodes are pooled on an internal free list and linked
//     intrusively into hashed slots, so arming and canceling a wait is
//     O(1) and allocation-free in steady state.
//   - The single driver (clock.AfterFunc) is always armed at the exact
//     earliest pending deadline — not at the next coarse tick — so the
//     wheel is virtual-clock-exact: a test that advances a clock.Sim by
//     precisely the backoff delay observes the fire, just as with a
//     dedicated timer. The coarse tick only spreads nodes across slots.
//   - When nothing is pending the driver is stopped; an idle wheel owns
//     no goroutine and needs no Close.
//
// Usage contract: every Timer obtained from After must be returned with
// Release, fired or not. Release drains the channel and recycles the
// node; using a Timer after Release is a bug (enable poison mode in
// tests to scribble on recycled nodes and surface such bugs).
package timewheel

import (
	"sync"
	"time"

	"simba/internal/clock"
)

// Default wheel geometry.
const (
	// DefaultSlots is the hashed slot count (a power of two).
	DefaultSlots = 64
	// DefaultTick is the slot granularity. It affects only how nodes
	// spread across slots — firing is exact-deadline regardless.
	DefaultTick = time.Millisecond
)

// Options parameterize a wheel.
type Options struct {
	// Slots is the hashed slot count, rounded up to a power of two.
	// Zero means DefaultSlots.
	Slots int
	// Tick is the slot-hash granularity. Zero means DefaultTick.
	Tick time.Duration
	// Poison scribbles on recycled Timer nodes so tests catch
	// use-after-Release. Never enable outside tests.
	Poison bool
}

// Timer is one pending (or fired) wait, owned by the wheel's node pool.
// Obtain with Wheel.After, wait on C, and always return it with
// Wheel.Release.
type Timer struct {
	ch   chan time.Time
	when time.Time
	slot int // owning slot index; -1 when unlinked
	next *Timer
	prev *Timer
}

// C returns the channel the firing time is delivered on.
func (t *Timer) C() <-chan time.Time { return t.ch }

// Wheel multiplexes many waits onto one clock timer. Safe for
// concurrent use.
type Wheel struct {
	clk  clock.Clock
	tick time.Duration
	mask int

	mu       sync.Mutex
	slots    []*Timer // slot heads, intrusively linked
	pending  int
	free     *Timer // recycled nodes, linked by next
	driver   clock.Timer
	driverAt time.Time // deadline the driver is armed for; zero when idle
	poison   bool
}

// New builds a wheel over clk.
func New(clk clock.Clock, opts Options) *Wheel {
	slots := opts.Slots
	if slots <= 0 {
		slots = DefaultSlots
	}
	// Round up to a power of two so the slot pick is a mask.
	n := 1
	for n < slots {
		n <<= 1
	}
	tick := opts.Tick
	if tick <= 0 {
		tick = DefaultTick
	}
	return &Wheel{
		clk:    clk,
		tick:   tick,
		mask:   n - 1,
		slots:  make([]*Timer, n),
		poison: opts.Poison,
	}
}

// After arms a wait that fires once, d from now. Non-positive d fires
// immediately. The returned Timer must be passed to Release when the
// caller is done with it (fired or abandoned).
func (w *Wheel) After(d time.Duration) *Timer {
	w.mu.Lock()
	t := w.getLocked()
	now := w.clk.Now()
	if d <= 0 {
		t.when = now
		t.ch <- now // cap 1, drained on Release: never blocks
		w.mu.Unlock()
		return t
	}
	t.when = now.Add(d)
	slot := w.slotOf(t.when)
	t.slot = slot
	t.prev = nil
	t.next = w.slots[slot]
	if t.next != nil {
		t.next.prev = t
	}
	w.slots[slot] = t
	w.pending++
	w.armLocked(t.when, now)
	w.mu.Unlock()
	return t
}

// Release cancels the wait if still pending, drains any delivered fire,
// and recycles the node. It is the caller's obligation for every Timer
// from After; the Timer must not be used afterwards.
func (w *Wheel) Release(t *Timer) {
	if t == nil {
		return
	}
	w.mu.Lock()
	if t.slot >= 0 {
		w.unlinkLocked(t)
		// Last pending wait canceled: stop the driver so an idle wheel
		// holds no armed timer and cannot fire spuriously. A fire already
		// in flight (Stop reports false) is harmless — advance finds
		// nothing due and leaves the wheel idle.
		if w.pending == 0 && w.driver != nil && !w.driverAt.IsZero() {
			w.driver.Stop()
			w.driverAt = time.Time{}
		}
	}
	// Fires are sent under w.mu, so after the unlink above no send can
	// be in flight: draining here leaves the channel provably empty for
	// the next user of the node.
	select {
	case <-t.ch:
	default:
	}
	if w.poison {
		t.when = time.Unix(-1<<40, 0) // absurd deadline: reads after Release stand out
	}
	t.prev = nil
	t.next = w.free
	w.free = t
	w.mu.Unlock()
}

// Pending reports how many waits are armed.
func (w *Wheel) Pending() int {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.pending
}

// slotOf hashes a deadline onto a slot.
func (w *Wheel) slotOf(when time.Time) int {
	return int(when.UnixNano()/int64(w.tick)) & w.mask
}

// getLocked pops a recycled node or allocates a fresh one.
func (w *Wheel) getLocked() *Timer {
	if t := w.free; t != nil {
		w.free = t.next
		t.next = nil
		t.slot = -1
		return t
	}
	return &Timer{ch: make(chan time.Time, 1), slot: -1}
}

// unlinkLocked removes t from its slot list.
func (w *Wheel) unlinkLocked(t *Timer) {
	if t.prev != nil {
		t.prev.next = t.next
	} else {
		w.slots[t.slot] = t.next
	}
	if t.next != nil {
		t.next.prev = t.prev
	}
	t.prev, t.next = nil, nil
	t.slot = -1
	w.pending--
}

// armLocked ensures the driver fires at or before deadline. The driver
// is always armed at the exact earliest pending deadline, which keeps
// simulated-clock tests exact.
func (w *Wheel) armLocked(deadline, now time.Time) {
	if !w.driverAt.IsZero() && !deadline.Before(w.driverAt) {
		return
	}
	w.driverAt = deadline
	d := deadline.Sub(now)
	if w.driver == nil {
		w.driver = w.clk.AfterFunc(d, w.advance)
		return
	}
	w.driver.Reset(d)
}

// advance is the driver body: fire everything due, then re-arm at the
// next earliest deadline (or go idle). One pass over the slot heads is
// O(slots + pending) — slots is small and pending is bounded by the
// caller's wait concurrency.
func (w *Wheel) advance() {
	w.mu.Lock()
	now := w.clk.Now()
	var nextAt time.Time
	for i := range w.slots {
		t := w.slots[i]
		for t != nil {
			next := t.next
			if !t.when.After(now) {
				w.unlinkLocked(t)
				select {
				case t.ch <- t.when:
				default:
				}
			} else if nextAt.IsZero() || t.when.Before(nextAt) {
				nextAt = t.when
			}
			t = next
		}
	}
	w.driverAt = nextAt
	if !nextAt.IsZero() {
		w.driver.Reset(nextAt.Sub(now))
	}
	w.mu.Unlock()
}
