package harness

import (
	"fmt"
	"io"
	"path/filepath"
	"time"
)

// Sizes controls how much work each experiment does.
type Sizes struct {
	// E1Alerts, E2Changes, E3Presses, E4Moves, E6PerCell,
	// A1Crashes, A2Dialogs size the respective experiments (zero picks
	// each experiment's default).
	E1Alerts, E2Changes, E3Presses, E4Moves, E6PerCell int
	A1Crashes, A2Dialogs, A4PerCell                    int
	// E5Days is the fault-study length in days (default 30).
	E5Days int
	// E7Users / E7Alerts size the throughput run.
	E7Users, E7Alerts int
	// SkipSlow drops E5, E6 and the ablations (quick mode).
	SkipSlow bool
}

// QuickSizes runs everything at reduced scale (for tests).
func QuickSizes() Sizes {
	return Sizes{
		E1Alerts: 10, E2Changes: 6, E3Presses: 5, E4Moves: 5,
		E6PerCell: 20, A1Crashes: 4, A2Dialogs: 3, A4PerCell: 8,
		E5Days: 2, E7Users: 500, E7Alerts: 5000,
	}
}

// RunAll executes every experiment, streaming tables to w as they
// finish, and returns the results.
func RunAll(tempDir string, sizes Sizes, w io.Writer) ([]*Result, error) {
	type job struct {
		name string
		run  func() (*Result, error)
	}
	jobs := []job{
		{"E1", func() (*Result, error) { return E1IMDelivery(filepath.Join(tempDir, "e1"), sizes.E1Alerts) }},
		{"E2", func() (*Result, error) { return E2ProxyRouting(filepath.Join(tempDir, "e2"), sizes.E2Changes) }},
		{"E3", func() (*Result, error) { return E3Aladdin(filepath.Join(tempDir, "e3"), sizes.E3Presses) }},
		{"E4", func() (*Result, error) { return E4WISH(filepath.Join(tempDir, "e4"), sizes.E4Moves) }},
		{"E7", func() (*Result, error) { return E7PortalScale(sizes.E7Users, sizes.E7Alerts) }},
	}
	if !sizes.SkipSlow {
		jobs = append(jobs,
			job{"E5", func() (*Result, error) { return E5FaultMonth(filepath.Join(tempDir, "e5"), sizes.E5Days) }},
			job{"E6", func() (*Result, error) { return E6Baseline(filepath.Join(tempDir, "e6"), sizes.E6PerCell) }},
			job{"A1", func() (*Result, error) { return AblationNoPlog(filepath.Join(tempDir, "a1"), sizes.A1Crashes) }},
			job{"A2", func() (*Result, error) { return AblationNoMonkey(filepath.Join(tempDir, "a2"), sizes.A2Dialogs) }},
			job{"A3", func() (*Result, error) { return AblationProbePeriod(filepath.Join(tempDir, "a3"), nil) }},
			job{"A4", func() (*Result, error) { return A4AckTimeoutSweep(filepath.Join(tempDir, "a4"), sizes.A4PerCell, nil) }},
		)
	}
	var out []*Result
	for _, j := range jobs {
		start := time.Now()
		res, err := j.run()
		if err != nil {
			return out, fmt.Errorf("%s: %w", j.name, err)
		}
		out = append(out, res)
		if w != nil {
			fmt.Fprintf(w, "%s(completed in %s wall time)\n\n", res.Table(), time.Since(start).Round(time.Millisecond))
		}
	}
	return out, nil
}
