package harness

import (
	"fmt"
	"path/filepath"
	"time"

	"simba/internal/commgr"
	"simba/internal/mab"
	"simba/internal/metrics"
)

// AblationNoPlog quantifies what pessimistic logging buys: the buddy
// is crashed right after acknowledging each alert (the window the log
// protects), then restarted. With replay the alert still reaches the
// user; without it the alert is lost even though the source saw an
// acknowledgement and will never resend.
func AblationNoPlog(tempDir string, n int) (*Result, error) {
	if n <= 0 {
		n = 15
	}
	run := func(disableReplay bool, dir string) (delivered int, err error) {
		// A 5s routing delay makes the ack→route window deterministic:
		// the crash always lands while the alert is logged but not yet
		// routed.
		tb, err := NewTestbed(Options{TempDir: dir, DisableReplay: disableReplay, RouteDelay: 5 * time.Second})
		if err != nil {
			return 0, err
		}
		if err := tb.Start(); err != nil {
			return 0, err
		}
		defer tb.Stop()
		for i := 0; i < n; i++ {
			before := tb.User.ReceiptCount()
			a := benchAlert(tb)
			if _, err := deliverDriven(tb, a); err != nil {
				return 0, fmt.Errorf("alert %d: %w", i, err)
			}
			// Crash in the ack→route window.
			tb.Buddy.InjectCrash()
			tb.RunUntil(func() bool { return !tb.Buddy.Running() }, 100*time.Millisecond, 10*time.Second)
			startDone := make(chan error, 1)
			go func() { startDone <- tb.Buddy.Start() }()
			deadline := time.Now().Add(10 * time.Second)
			for {
				select {
				case serr := <-startDone:
					if serr != nil {
						return 0, serr
					}
				default:
					if time.Now().After(deadline) {
						return 0, fmt.Errorf("restart %d timed out", i)
					}
					tb.Sim.Advance(time.Second)
					time.Sleep(time.Millisecond)
					continue
				}
				break
			}
			if tb.RunUntil(func() bool { return tb.User.ReceiptCount() > before }, time.Second, 2*time.Minute) {
				delivered++
			}
		}
		return delivered, nil
	}
	withLog, err := run(false, filepath.Join(tempDir, "with-plog"))
	if err != nil {
		return nil, fmt.Errorf("ablation with plog: %w", err)
	}
	withoutLog, err := run(true, filepath.Join(tempDir, "without-plog"))
	if err != nil {
		return nil, fmt.Errorf("ablation without plog: %w", err)
	}
	res := &Result{ID: "A1", Title: "Ablation: pessimistic logging (crash after ack, before routing)"}
	res.AddRow("with log-before-ack + replay", "no alert loss",
		fmt.Sprintf("%d/%d delivered", withLog, n), "")
	res.AddRow("without replay (ablated)", "acked alerts lost",
		fmt.Sprintf("%d/%d delivered", withoutLog, n), "")
	res.AddNote("the crash lands between the acknowledgement and routing; the sender never resends an acked alert")
	return res, nil
}

// AblationNoMonkey measures the dialog-box-handling API's value: how
// long a known modal dialog keeps the IM client wedged, with the
// monkey thread sweeping every 20s versus disabled (recovery then
// waits for the sanity check to declare the client hung and restart
// it).
func AblationNoMonkey(tempDir string, n int) (*Result, error) {
	if n <= 0 {
		n = 8
	}
	run := func(dialogPeriod time.Duration, dir string) (*metrics.Summary, int, error) {
		tb, err := NewTestbed(Options{TempDir: dir, DialogPeriod: dialogPeriod})
		if err != nil {
			return nil, 0, err
		}
		if err := tb.Start(); err != nil {
			return nil, 0, err
		}
		defer tb.Stop()
		var rec metrics.Recorder
		pairs := commgr.IMClientPairs()
		for i := 0; i < n; i++ {
			// Pop a dialog the dismissal table knows, owned by the
			// buddy's current IM client.
			app := tb.currentIMApp()
			if app == nil {
				return nil, 0, fmt.Errorf("no live IM client before dialog %d", i)
			}
			popAt := tb.Sim.Now()
			tb.Machine.Desktop().PopDialog(pairs[0].Caption, []string{pairs[0].Button}, app.Proc, popAt)
			// Recovered when an alert flows over IM again.
			recovered := false
			for attempt := 0; attempt < 40; attempt++ {
				if probeIMDelivery(tb) {
					recovered = true
					break
				}
			}
			if !recovered {
				return nil, 0, fmt.Errorf("dialog %d never recovered", i)
			}
			rec.Observe(tb.Sim.Now().Sub(popAt))
			tb.RunFor(time.Minute, 5*time.Second)
		}
		s := rec.Summarize()
		return &s, tb.Journal.Count("client-restart"), nil
	}
	with, withRestarts, err := run(0, filepath.Join(tempDir, "with-monkey")) // default 20s sweep
	if err != nil {
		return nil, fmt.Errorf("with monkey: %w", err)
	}
	without, withoutRestarts, err := run(12*time.Hour, filepath.Join(tempDir, "without-monkey"))
	if err != nil {
		return nil, fmt.Errorf("without monkey: %w", err)
	}
	res := &Result{ID: "A2", Title: "Ablation: monkey-thread dialog handling"}
	res.AddRow("recovery with 20s monkey sweep", "≤ 20 s, no restart",
		fmt.Sprintf("mean %s, %d client restarts", fmtDur(with.Mean), withRestarts), "")
	res.AddRow("recovery with monkey disabled", "sanity-timeout + client restart",
		fmt.Sprintf("mean %s, %d client restarts", fmtDur(without.Mean), withoutRestarts), "")
	res.AddNote("%d modal dialogs per arm; recovery = dialog pop → next successful IM delivery to the buddy", n)
	return res, nil
}

// AblationProbePeriod sweeps the MDC's AreYouWorking period and
// measures hang-detection latency — the trade the paper settled at 3
// minutes.
func AblationProbePeriod(tempDir string, periods []time.Duration) (*Result, error) {
	if len(periods) == 0 {
		periods = []time.Duration{time.Minute, 3 * time.Minute, 10 * time.Minute}
	}
	res := &Result{ID: "A3", Title: "Ablation: MDC AreYouWorking probe period"}
	for i, period := range periods {
		tb, err := NewTestbed(Options{
			TempDir:     filepath.Join(tempDir, fmt.Sprintf("probe-%d", i)),
			StartMDC:    true,
			ProbePeriod: period,
		})
		if err != nil {
			return nil, err
		}
		if err := tb.Start(); err != nil {
			return nil, err
		}
		var rec metrics.Recorder
		const hangs = 4
		for h := 0; h < hangs; h++ {
			tb.RunFor(2*time.Minute, 30*time.Second)
			hangAt := tb.Sim.Now()
			baseRestarts := tb.MDC.Restarts()
			tb.Buddy.InjectHang()
			// Detection: heartbeats go stale (HeartbeatMaxAge), then the
			// next probe fails and the MDC kills and restarts the buddy.
			if !tb.RunUntil(func() bool { return tb.MDC.Restarts() > baseRestarts }, 30*time.Second, 4*time.Hour) {
				tb.Stop()
				return nil, fmt.Errorf("probe period %v: hang %d never detected", period, h)
			}
			// Recovery: restarted and answering probes again.
			ok := tb.RunUntil(func() bool {
				return tb.Buddy.Running() && tb.Buddy.AreYouWorking()
			}, 30*time.Second, time.Hour)
			if !ok {
				tb.Stop()
				return nil, fmt.Errorf("probe period %v: hang %d never recovered", period, h)
			}
			rec.Observe(tb.Sim.Now().Sub(hangAt))
		}
		s := rec.Summarize()
		paper := "—"
		if period == 3*time.Minute {
			paper = "the paper's operating point"
		}
		res.AddRow(fmt.Sprintf("probe every %s", period), paper,
			fmt.Sprintf("hang → healthy restart: mean %s", fmtDur(s.Mean)), "")
		tb.Stop()
	}
	res.AddNote("hang detection cannot beat heartbeat staleness (the buddy advertises progress up to %s old) plus one probe period", fmtDur(mab.DefaultHeartbeatMaxAge))
	return res, nil
}

// probeIMDelivery attempts one delivery to the buddy while driving the
// clock, reporting whether it succeeded over IM.
func probeIMDelivery(tb *Testbed) bool {
	done := make(chan bool, 1)
	go func() {
		rep, err := tb.Target.Deliver(benchAlert(tb))
		done <- err == nil && rep.DeliveredVia == "Buddy IM"
	}()
	deadline := time.Now().Add(20 * time.Second)
	for {
		select {
		case ok := <-done:
			return ok
		default:
		}
		if time.Now().After(deadline) {
			return false
		}
		tb.Sim.Advance(time.Second)
		time.Sleep(time.Millisecond)
	}
}
