package harness

import (
	"fmt"
	"strings"
	"testing"
	"time"
)

func TestTestbedRequiresTempDir(t *testing.T) {
	if _, err := NewTestbed(Options{}); err == nil {
		t.Fatal("missing TempDir accepted")
	}
}

func TestTestbedStartsAndDelivers(t *testing.T) {
	tb, err := NewTestbed(Options{TempDir: t.TempDir()})
	if err != nil {
		t.Fatal(err)
	}
	if err := tb.Start(); err != nil {
		t.Fatal(err)
	}
	defer tb.Stop()
	a := benchAlert(tb)
	rep, err := deliverDriven(tb, a)
	if err != nil {
		t.Fatal(err)
	}
	if rep.DeliveredVia != "Buddy IM" {
		t.Fatalf("DeliveredVia = %q", rep.DeliveredVia)
	}
	if !tb.RunUntil(func() bool { return tb.User.ReceiptCount() == 1 }, 500*time.Millisecond, time.Minute) {
		t.Fatal("alert never reached the user")
	}
}

func TestE1Numbers(t *testing.T) {
	res, err := E1IMDelivery(t.TempDir(), 8)
	if err != nil {
		t.Fatal(err)
	}
	assertRowDurationUnder(t, res, "one-way IM delivery (mean)", time.Second)
	assertRowDurationBetween(t, res, "ack with pessimistic logging (mean)", 500*time.Millisecond, 3*time.Second)
}

func TestE2Numbers(t *testing.T) {
	res, err := E2ProxyRouting(t.TempDir(), 5)
	if err != nil {
		t.Fatal(err)
	}
	assertRowDurationBetween(t, res, "detection → user delivery (mean)", 500*time.Millisecond, 6*time.Second)
}

func TestE3Numbers(t *testing.T) {
	res, err := E3Aladdin(t.TempDir(), 5)
	if err != nil {
		t.Fatal(err)
	}
	assertRowDurationBetween(t, res, "remote press → user IM (mean)", 7*time.Second, 16*time.Second)
}

func TestE4Numbers(t *testing.T) {
	res, err := E4WISH(t.TempDir(), 5)
	if err != nil {
		t.Fatal(err)
	}
	assertRowDurationBetween(t, res, "laptop send → subscriber IM (mean)", 2*time.Second, 9*time.Second)
}

func TestE7Throughput(t *testing.T) {
	res, err := E7PortalScale(200, 2000)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) == 0 || !strings.Contains(res.Rows[0].Measured, "alerts/s") {
		t.Fatalf("rows = %+v", res.Rows)
	}
}

func TestE5ShortRun(t *testing.T) {
	if testing.Short() {
		t.Skip("month simulation in -short mode")
	}
	res, err := E5FaultMonth(t.TempDir(), 1)
	if err != nil {
		t.Fatal(err)
	}
	rows := rowMap(res)
	if !strings.HasPrefix(rows["extended IM downtimes"], "5 ") {
		t.Fatalf("downtimes row = %q", rows["extended IM downtimes"])
	}
	if rows["failures not auto-recovered"] != "3" {
		t.Fatalf("unrecovered row = %q", rows["failures not auto-recovered"])
	}
	if rows["MyAlertBuddy restarts by MDC"] == "0" {
		t.Fatal("no MDC restarts recorded")
	}
	t.Log("\n" + res.Table())
}

func TestAblationNoPlogShowsLossWithoutReplay(t *testing.T) {
	if testing.Short() {
		t.Skip("slow ablation in -short mode")
	}
	res, err := AblationNoPlog(t.TempDir(), 4)
	if err != nil {
		t.Fatal(err)
	}
	rows := rowMap(res)
	if !strings.HasPrefix(rows["with log-before-ack + replay"], "4/4") {
		t.Fatalf("with-plog row = %q", rows["with log-before-ack + replay"])
	}
	without := rows["without replay (ablated)"]
	if strings.HasPrefix(without, "4/4") {
		t.Fatalf("ablated run lost nothing: %q", without)
	}
}

func TestResultTable(t *testing.T) {
	r := &Result{ID: "X", Title: "test"}
	r.AddRow("metric-a", "1 s", "2 s", "note")
	r.AddNote("hello %d", 42)
	table := r.Table()
	for _, want := range []string{"X — test", "metric-a", "note", "hello 42"} {
		if !strings.Contains(table, want) {
			t.Fatalf("table missing %q:\n%s", want, table)
		}
	}
}

func rowMap(r *Result) map[string]string {
	out := make(map[string]string, len(r.Rows))
	for _, row := range r.Rows {
		out[row.Metric] = row.Measured
	}
	return out
}

func assertRowDurationUnder(t *testing.T, r *Result, metric string, limit time.Duration) {
	t.Helper()
	d := rowDuration(t, r, metric)
	if d <= 0 || d > limit {
		t.Fatalf("%s = %v, want (0, %v]\n%s", metric, d, limit, r.Table())
	}
}

func assertRowDurationBetween(t *testing.T, r *Result, metric string, lo, hi time.Duration) {
	t.Helper()
	d := rowDuration(t, r, metric)
	if d < lo || d > hi {
		t.Fatalf("%s = %v, want [%v, %v]\n%s", metric, d, lo, hi, r.Table())
	}
}

func rowDuration(t *testing.T, r *Result, metric string) time.Duration {
	t.Helper()
	for _, row := range r.Rows {
		if row.Metric == metric {
			d, err := time.ParseDuration(row.Measured)
			if err != nil {
				t.Fatalf("row %q measured %q is not a duration: %v", metric, row.Measured, err)
			}
			return d
		}
	}
	t.Fatalf("no row %q in %s", metric, r.Table())
	return 0
}

func TestE6BaselineShapes(t *testing.T) {
	if testing.Short() {
		t.Skip("slow baseline comparison in -short mode")
	}
	res, err := E6Baseline(t.TempDir(), 10)
	if err != nil {
		t.Fatal(err)
	}
	rows := rowMap(res)
	simbaDesk := rows["SIMBA, user at desk"]
	naiveDesk := rows["naive, user at desk"]
	if simbaDesk == "" || naiveDesk == "" {
		t.Fatalf("rows = %+v", res.Rows)
	}
	// Shape: SIMBA lands ~1 message per alert at the desk; naive ~4.
	simbaMsgs := msgsPerAlert(t, simbaDesk)
	naiveMsgs := msgsPerAlert(t, naiveDesk)
	if simbaMsgs > 2.0 {
		t.Fatalf("SIMBA msgs/alert = %.1f (row %q)", simbaMsgs, simbaDesk)
	}
	if naiveMsgs < 2.5 {
		t.Fatalf("naive msgs/alert = %.1f (row %q)", naiveMsgs, naiveDesk)
	}
	if naiveMsgs <= simbaMsgs {
		t.Fatalf("naive (%f) not more irritating than SIMBA (%f)", naiveMsgs, simbaMsgs)
	}
	t.Log("\n" + res.Table())
}

func TestAblationNoMonkeyShapes(t *testing.T) {
	if testing.Short() {
		t.Skip("slow ablation in -short mode")
	}
	res, err := AblationNoMonkey(t.TempDir(), 2)
	if err != nil {
		t.Fatal(err)
	}
	t.Log("\n" + res.Table())
	if len(res.Rows) != 2 {
		t.Fatalf("rows = %+v", res.Rows)
	}
}

func TestAblationProbePeriodShapes(t *testing.T) {
	if testing.Short() {
		t.Skip("slow ablation in -short mode")
	}
	res, err := AblationProbePeriod(t.TempDir(), []time.Duration{time.Minute, 5 * time.Minute})
	if err != nil {
		t.Fatal(err)
	}
	t.Log("\n" + res.Table())
	if len(res.Rows) != 2 {
		t.Fatalf("rows = %+v", res.Rows)
	}
}

// msgsPerAlert extracts the trailing "X.Y msgs/alert" figure.
func msgsPerAlert(t *testing.T, row string) float64 {
	t.Helper()
	var v float64
	i := strings.LastIndex(row, "median")
	if i < 0 {
		t.Fatalf("row %q has no median field", row)
	}
	if _, err := fmt.Sscanf(row[strings.LastIndex(row, ", ")+2:], "%f msgs/alert", &v); err != nil {
		t.Fatalf("row %q: %v", row, err)
	}
	return v
}

func TestSoakRandomFaults(t *testing.T) {
	if testing.Short() {
		t.Skip("soak in -short mode")
	}
	for _, seed := range []int64{3, 17} {
		res, err := SoakRandomFaults(t.TempDir(), seed, 2)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		t.Log(res)
		if !res.Recovered {
			t.Fatalf("seed %d: buddy did not recover: %s", seed, res)
		}
		if res.AlertsSent > 0 && res.AlertsDelivered == 0 {
			t.Fatalf("seed %d: nothing delivered: %s", seed, res)
		}
	}
}

func TestA4AckTimeoutSweep(t *testing.T) {
	if testing.Short() {
		t.Skip("sweep in -short mode")
	}
	res, err := A4AckTimeoutSweep(t.TempDir(), 12, []time.Duration{2 * time.Second, 15 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	t.Log("\n" + res.Table())
	if len(res.Rows) != 2 {
		t.Fatalf("rows = %+v", res.Rows)
	}
	for _, row := range res.Rows {
		if !strings.Contains(row.Measured, "confirmed") {
			t.Fatalf("row = %+v", row)
		}
	}
}
