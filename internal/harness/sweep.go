package harness

import (
	"fmt"

	"sync"
	"time"

	"simba/internal/addr"
	"simba/internal/alert"
	"simba/internal/dist"
	"simba/internal/dmode"
	"simba/internal/metrics"
)

// A4AckTimeoutSweep quantifies the delivery-mode design trade the
// paper leaves to the user: the IM block's acknowledgement timeout.
// A user who is away half the time receives alerts under modes whose
// first block waits 2 s / 5 s / 15 s / 30 s for an ack before falling
// back to email. Short timeouts give snappy fallback but give up on
// reachable-but-slow users; long timeouts squeeze more deliveries onto
// the timely IM channel at the cost of slow fallbacks. This is the
// quantitative face of Section 3's "personalized dependability
// levels".
func A4AckTimeoutSweep(tempDir string, perCell int, timeouts []time.Duration) (*Result, error) {
	if perCell <= 0 {
		perCell = 40
	}
	if len(timeouts) == 0 {
		timeouts = []time.Duration{2 * time.Second, 5 * time.Second, 15 * time.Second, 30 * time.Second}
	}
	tb, err := NewTestbed(Options{TempDir: tempDir})
	if err != nil {
		return nil, err
	}
	if err := tb.Start(); err != nil {
		return nil, err
	}
	defer tb.Stop()

	reg := addr.NewRegistry(UserName)
	for _, a := range []addr.Address{
		{Type: addr.TypeIM, Name: "MSN IM", Target: UserIMHandle, Enabled: true},
		{Type: addr.TypeEmail, Name: "Work email", Target: UserEmailAddr, Enabled: true},
	} {
		if err := reg.Register(a); err != nil {
			return nil, err
		}
	}
	// The user flips between desk and away every few alerts,
	// deterministically from the seed.
	rng := dist.NewRNG(tb.Opts.Seed + 50)

	res := &Result{ID: "A4", Title: "Delivery-mode ack-timeout sweep (the §3 dependability/irritation dial)"}
	for ti, timeout := range timeouts {
		mode := &dmode.Mode{Name: fmt.Sprintf("sweep-%d", ti), Blocks: []dmode.Block{
			{Timeout: dmode.Duration(timeout), Actions: []dmode.Action{{Address: "MSN IM"}}},
			{Actions: []dmode.Action{{Address: "Work email"}}},
		}}
		var lat metrics.Recorder
		viaIM := 0
		delivered := 0
		var mu sync.Mutex
		for i := 0; i < perCell; i++ {
			tb.User.SetPresent(rng.Bool(0.5))
			a := &alert.Alert{
				ID:      fmt.Sprintf("a4-%d-%d", ti, i),
				Source:  "bench",
				Subject: "sweep alert",
				Urgency: alert.UrgencyHigh,
				Created: tb.Sim.Now(),
			}
			done := make(chan struct{})
			go func() {
				rep, err := tb.SrcEngine.Deliver(a, reg, mode)
				mu.Lock()
				if err == nil && rep.Delivered {
					delivered++
					lat.Observe(rep.Latency())
					if rep.DeliveredVia == "MSN IM" {
						viaIM++
					}
				}
				mu.Unlock()
				close(done)
			}()
			deadline := time.Now().Add(20 * time.Second)
			for {
				select {
				case <-done:
				default:
					if time.Now().After(deadline) {
						return nil, fmt.Errorf("A4 cell %d alert %d stuck", ti, i)
					}
					tb.Sim.Advance(250 * time.Millisecond)
					time.Sleep(time.Millisecond)
					continue
				}
				break
			}
			tb.RunFor(3*time.Second, time.Second)
		}
		mu.Lock()
		s := lat.Summarize()
		row := fmt.Sprintf("%d/%d confirmed, %d%% via IM, mean confirm %s, p90 %s",
			delivered, perCell, 100*viaIM/max(delivered, 1), fmtDur(s.Mean), fmtDur(s.P90))
		mu.Unlock()
		res.AddRow(fmt.Sprintf("ack timeout %s", timeout), "user at desk 50% of the time", row, "")
	}
	res.AddNote("%d alerts per cell; 'confirmed' = the source saw an IM ack or an accepted email fallback", perCell)
	res.AddNote("shape: IM share is flat (≈presence probability) once the timeout clears the ~1s ack RTT; mean confirm time grows with the timeout because every away-alert pays the full wait before falling back")
	return res, nil
}
