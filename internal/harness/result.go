package harness

import (
	"fmt"
	"strings"
)

// Row is one paper-vs-measured comparison line.
type Row struct {
	Metric   string
	Paper    string
	Measured string
	Note     string
}

// Result is one experiment's outcome.
type Result struct {
	ID    string
	Title string
	Rows  []Row
	Notes []string
}

// AddRow appends a comparison line.
func (r *Result) AddRow(metric, paper, measured, note string) {
	r.Rows = append(r.Rows, Row{Metric: metric, Paper: paper, Measured: measured, Note: note})
}

// AddNote appends a free-form note.
func (r *Result) AddNote(format string, args ...any) {
	r.Notes = append(r.Notes, fmt.Sprintf(format, args...))
}

// Table renders the result as an aligned text table.
func (r *Result) Table() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s — %s\n", r.ID, r.Title)
	widths := []int{len("metric"), len("paper"), len("measured")}
	for _, row := range r.Rows {
		widths[0] = max(widths[0], len(row.Metric))
		widths[1] = max(widths[1], len(row.Paper))
		widths[2] = max(widths[2], len(row.Measured))
	}
	line := func(a, b2, c, d string) string {
		out := fmt.Sprintf("  %-*s  %-*s  %-*s", widths[0], a, widths[1], b2, widths[2], c)
		if d != "" {
			out += "  " + d
		}
		return out + "\n"
	}
	b.WriteString(line("metric", "paper", "measured", ""))
	b.WriteString(line(strings.Repeat("-", widths[0]), strings.Repeat("-", widths[1]), strings.Repeat("-", widths[2]), ""))
	for _, row := range r.Rows {
		b.WriteString(line(row.Metric, row.Paper, row.Measured, row.Note))
	}
	for _, n := range r.Notes {
		fmt.Fprintf(&b, "  note: %s\n", n)
	}
	return b.String()
}
