package harness

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"simba/internal/addr"
	"simba/internal/alert"
	"simba/internal/clock"
	"simba/internal/core"
	"simba/internal/dmode"
	"simba/internal/mab"
)

// routingPipeline is the MyAlertBuddy processing pipeline — classify,
// aggregate, filter, route — wired to an in-memory transport, so E7
// measures SIMBA's own cost rather than simulated network delays.
type routingPipeline struct {
	classifier *mab.Classifier
	aggregator *mab.Aggregator
	filter     *mab.Filter
	store      *core.Store
	engine     *core.Engine
	clk        clock.Clock
	users      int
	sent       atomic.Int64
}

// instantEmailSender counts sends and never blocks.
type instantEmailSender struct{ n *atomic.Int64 }

func (s instantEmailSender) Send(to, subject, body string) error {
	s.n.Add(1)
	return nil
}

// newRoutingPipeline builds a pipeline with the given number of
// subscribed users, each with one personal category mapped from one
// native keyword.
func newRoutingPipeline(users int) (*routingPipeline, error) {
	p := &routingPipeline{
		classifier: mab.NewClassifier(),
		aggregator: mab.NewAggregator(),
		filter:     mab.NewFilter(),
		store:      core.NewStore(),
		clk:        clock.NewReal(),
		users:      users,
	}
	engine, err := core.NewEngine(p.clk, nil, instantEmailSender{n: &p.sent})
	if err != nil {
		return nil, err
	}
	p.engine = engine
	p.classifier.Accept(mab.SourceRule{Source: "portal", Extract: mab.ExtractNative})
	mode := &dmode.Mode{Name: "email", Blocks: []dmode.Block{
		{Actions: []dmode.Action{{Address: "inbox"}}},
	}}
	for i := 0; i < users; i++ {
		name := fmt.Sprintf("user-%d", i)
		profile, err := p.store.RegisterUser(name)
		if err != nil {
			return nil, err
		}
		if err := profile.Addresses().Register(addr.Address{
			Type: addr.TypeEmail, Name: "inbox", Target: name + "@portal.sim", Enabled: true,
		}); err != nil {
			return nil, err
		}
		if err := profile.DefineMode(mode); err != nil {
			return nil, err
		}
		category := fmt.Sprintf("cat-%d", i)
		p.aggregator.Map(fmt.Sprintf("kw-%d", i), category)
		if err := p.store.Subscribe(category, name, "email"); err != nil {
			return nil, err
		}
	}
	return p, nil
}

// route pushes one alert through the full pipeline, returning whether
// it was delivered.
func (p *routingPipeline) route(i int) bool {
	a := &alert.Alert{
		ID:       fmt.Sprintf("p-%d", i),
		Source:   "portal",
		Keywords: []string{fmt.Sprintf("kw-%d", i%p.users)},
		Subject:  "portal alert",
		Body:     "stock quote update",
		Urgency:  alert.UrgencyNormal,
		Created:  p.clk.Now(),
	}
	keywords, accepted := p.classifier.Classify(a, "")
	if !accepted {
		return false
	}
	category := p.aggregator.Aggregate(keywords)
	if !p.filter.Allow(category, p.clk.Now()) {
		return false
	}
	delivered := false
	for _, sub := range p.store.Subscribers(category) {
		profile, err := p.store.User(sub.User)
		if err != nil {
			continue
		}
		mode, err := profile.Mode(sub.Mode)
		if err != nil {
			continue
		}
		if _, err := p.engine.Deliver(a, profile.Addresses(), mode); err == nil {
			delivered = true
		}
	}
	return delivered
}

// E7PortalScale measures the routing pipeline against the portal
// workload from Section 1: about 225 thousand users receiving about
// 778 thousand alerts per day (≈9 alerts/second on average) at one
// commercial portal.
func E7PortalScale(users, alerts int) (*Result, error) {
	if users <= 0 {
		users = 2000
	}
	if alerts <= 0 {
		alerts = 20000
	}
	pipe, err := newRoutingPipeline(users)
	if err != nil {
		return nil, err
	}
	const workers = 8
	per := alerts / workers
	counts := make([]int64, workers)
	start := time.Now()
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			n := int64(0)
			for i := 0; i < per; i++ {
				if pipe.route(w*per + i) {
					n++
				}
			}
			counts[w] = n
		}(w)
	}
	wg.Wait()
	elapsed := time.Since(start)
	var delivered int64
	for _, c := range counts {
		delivered += c
	}
	throughput := float64(delivered) / elapsed.Seconds()
	res := &Result{ID: "E7", Title: "Portal-scale routing throughput (Section 1 workload)"}
	res.AddRow("portal load", "≈225k users, ≈778k alerts/day (≈9/s)",
		fmt.Sprintf("%.0f alerts/s sustained", throughput), "")
	res.AddRow("headroom over portal average", "—", fmt.Sprintf("%.0f×", throughput/9), "")
	res.AddNote("%d subscribed users, %d alerts through classify→aggregate→filter→route on %d workers with in-memory transport", users, delivered, workers)
	return res, nil
}
