package harness

import (
	"fmt"
	"sync/atomic"
	"time"

	"simba/internal/dist"
	"simba/internal/faults"
)

// SoakResult summarizes a randomized fault soak.
type SoakResult struct {
	Seed            int64
	Days            int
	FaultsInjected  int
	AlertsSent      int64
	AlertsDelivered int
	MDCRestarts     int
	Recovered       bool // buddy healthy at the end
}

// SoakRandomFaults runs the full testbed under a *randomized* fault
// timeline (as opposed to E5's scripted one): IM outages, forced
// logouts, client hangs, buddy crashes and buddy hangs arrive as
// Poisson processes, with background alert traffic throughout. It
// checks the property the paper's mechanisms promise: whatever the
// interleaving, the system returns to health and keeps delivering.
func SoakRandomFaults(tempDir string, seed int64, days int) (*SoakResult, error) {
	if days <= 0 {
		days = 3
	}
	horizon := time.Duration(days) * 24 * time.Hour
	tb, err := NewTestbed(Options{TempDir: tempDir, Seed: seed, StartMDC: true})
	if err != nil {
		return nil, err
	}
	if err := tb.Start(); err != nil {
		return nil, err
	}
	defer tb.Stop()

	rng := dist.NewRNG(seed + 100)
	perDay := func(n float64) float64 { return n * float64(days) }
	events := faults.RandomEvents(rng, horizon, map[string]float64{
		"im-outage":     perDay(0.3),
		"forced-logout": perDay(0.5),
		"client-hang":   perDay(0.4),
		"buddy-crash":   perDay(1.2),
		"buddy-hang":    perDay(0.2),
	})
	sched := faults.NewSchedule()
	for _, ev := range events {
		ev := ev
		switch ev.Kind {
		case "im-outage":
			duration := time.Duration(5+rng.Intn(40)) * time.Minute
			sched.At(ev.At, func() {
				tb.IMSvc.Outage().Set(true, tb.Sim.Now())
				tb.IMSvc.ForceLogoutAll()
			})
			sched.At(ev.At+duration, func() {
				tb.IMSvc.Outage().Set(false, tb.Sim.Now())
			})
		case "forced-logout":
			sched.At(ev.At, func() { tb.IMSvc.ForceLogout(BuddyIMHandle) })
		case "client-hang":
			sched.At(ev.At, func() { tb.Buddy.InjectIMClientHang() })
		case "buddy-crash":
			sched.At(ev.At, func() { tb.Buddy.InjectCrash() })
		case "buddy-hang":
			sched.At(ev.At, func() { tb.Buddy.InjectHang() })
		}
	}
	sched.Install(tb.Sim)

	var sent atomic.Int64
	trafficStop := make(chan struct{})
	go func() {
		ticker := tb.Sim.NewTicker(time.Hour)
		defer ticker.Stop()
		for {
			select {
			case <-trafficStop:
				return
			case <-ticker.C():
				a := benchAlert(tb)
				sent.Add(1)
				go func() { _, _ = tb.Target.Deliver(a) }()
			}
		}
	}()

	tb.RunFor(horizon, time.Minute)
	close(trafficStop)
	// Quiesce: let any ongoing recovery finish and stragglers deliver.
	tb.RunFor(30*time.Minute, time.Minute)

	recovered := tb.RunUntil(func() bool {
		return tb.Buddy.Running() && tb.Buddy.AreYouWorking()
	}, time.Minute, 2*time.Hour)

	res := &SoakResult{
		Seed:            seed,
		Days:            days,
		FaultsInjected:  len(events),
		AlertsSent:      sent.Load(),
		AlertsDelivered: tb.User.ReceiptCount(),
		MDCRestarts:     tb.MDC.Restarts(),
		Recovered:       recovered,
	}
	return res, nil
}

// String renders the soak summary.
func (r *SoakResult) String() string {
	return fmt.Sprintf("seed=%d days=%d faults=%d restarts=%d delivered=%d/%d recovered=%v",
		r.Seed, r.Days, r.FaultsInjected, r.MDCRestarts, r.AlertsDelivered, r.AlertsSent, r.Recovered)
}
