package harness

import (
	"fmt"
	"strings"
	"sync"
	"time"

	"simba/internal/addr"
	"simba/internal/aladdin"
	"simba/internal/alert"
	"simba/internal/dmode"
	"simba/internal/metrics"
	"simba/internal/sms"
)

// policyStats summarizes one policy under one presence scenario.
type policyStats struct {
	name      string
	sent      int // alerts injected
	delivered int // distinct alerts that reached the user in the horizon
	onTime    int // delivered within a minute
	median    time.Duration
	msgsPerAl float64 // messages arriving at the user's devices per alert
}

// E6Baseline compares the pre-SIMBA Aladdin delivery policy (every
// alert as 2 duplicated emails + 2 duplicated SMS, Section 2.3)
// against SIMBA's IM-with-ack + email fallback, under heavy-tailed
// email/SMS delay and loss, for a user at the desk and a user away.
// It reports timeliness, reliability, and the irritation factor
// (messages landing on the user's devices per alert).
func E6Baseline(tempDir string, n int) (*Result, error) {
	if n <= 0 {
		n = 80
	}
	tb, err := NewTestbed(Options{TempDir: tempDir, HeavyTails: true})
	if err != nil {
		return nil, err
	}
	if err := tb.Start(); err != nil {
		return nil, err
	}
	defer tb.Stop()

	reg := addr.NewRegistry(UserName)
	for _, a := range []addr.Address{
		{Type: addr.TypeIM, Name: "MSN IM", Target: UserIMHandle, Enabled: true},
		{Type: addr.TypeEmail, Name: "Work email", Target: UserEmailAddr, Enabled: true},
		{Type: addr.TypeEmail, Name: "Home email", Target: UserHomeEmail, Enabled: true},
		{Type: addr.TypeSMS, Name: "Cell SMS", Target: sms.GatewayAddress(UserPhone), Enabled: true},
		{Type: addr.TypeSMS, Name: "Cell SMS again", Target: sms.GatewayAddress(UserPhone), Enabled: true},
	} {
		if err := reg.Register(a); err != nil {
			return nil, err
		}
	}
	naive := aladdin.NaiveRedundantMode("Work email", "Home email", "Cell SMS", "Cell SMS again")
	simbaMode := &dmode.Mode{Name: "SIMBA", Blocks: []dmode.Block{
		{Timeout: dmode.Duration(15 * time.Second), Actions: []dmode.Action{{Address: "MSN IM"}}},
		{Actions: []dmode.Action{{Address: "Work email"}}},
	}}

	res := &Result{ID: "E6", Title: "Naive 2-email+2-SMS redundancy vs SIMBA IM-with-fallback (Section 2.3)"}
	for _, present := range []bool{true, false} {
		tb.User.SetPresent(present)
		scenario := "user at desk"
		if !present {
			scenario = "user away"
		}
		for _, policy := range []struct {
			name   string
			prefix string
			mode   *dmode.Mode
		}{
			{"naive", fmt.Sprintf("e6n%v", present), naive},
			{"SIMBA", fmt.Sprintf("e6s%v", present), simbaMode},
		} {
			st, err := runPolicy(tb, reg, policy.mode, policy.prefix, n)
			if err != nil {
				return nil, fmt.Errorf("E6 %s/%s: %w", policy.name, scenario, err)
			}
			st.name = policy.name + ", " + scenario
			paper := "unreliable AND irritating (4 msgs/alert)"
			if policy.name == "SIMBA" {
				paper = "timely, reliable, 1 msg/alert"
			}
			res.AddRow(st.name, paper,
				fmt.Sprintf("%d/%d delivered, %d on-time(1m), median %s, %.1f msgs/alert",
					st.delivered, st.sent, st.onTime, fmtDur(st.median), st.msgsPerAl), "")
		}
	}
	res.AddNote("heavy-tailed email/SMS delays with %.0f%%/%.0f%% loss; %d alerts per cell; 20-minute delivery horizon",
		tb.Opts.EmailLoss*100, tb.Opts.SMSLoss*100, n)
	res.AddNote("shape check: SIMBA dominates on timeliness when the user is reachable and matches the baseline when not, at a quarter of the message burden")
	return res, nil
}

// runPolicy injects n alerts under mode and measures the user side.
func runPolicy(tb *Testbed, reg *addr.Registry, mode *dmode.Mode, prefix string, n int) (*policyStats, error) {
	beforeReceipts := tb.User.ReceiptCount()
	beforeDups := tb.User.Duplicates()
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		a := &alert.Alert{
			ID:       fmt.Sprintf("%s-%d", prefix, i),
			Source:   "aladdin",
			Keywords: []string{"Sensor ON"},
			Subject:  "Basement Water Sensor ON",
			Urgency:  alert.UrgencyCritical,
			Created:  tb.Sim.Now(),
		}
		wg.Add(1)
		go func() {
			defer wg.Done()
			_, _ = tb.SrcEngine.Deliver(a, reg, mode)
		}()
		// Space alerts 10 virtual seconds apart.
		tb.RunFor(10*time.Second, 2*time.Second)
	}
	// Horizon for the delay tails.
	tb.RunFor(20*time.Minute, 10*time.Second)
	wg.Wait()

	st := &policyStats{sent: n}
	var lat metrics.Recorder
	for _, r := range tb.User.Receipts()[beforeReceipts:] {
		if !strings.HasPrefix(r.Alert.ID, prefix+"-") {
			continue
		}
		st.delivered++
		lat.Observe(r.Latency)
		if r.Latency <= time.Minute {
			st.onTime++
		}
	}
	st.median = lat.Summarize().P50
	arrivals := (tb.User.ReceiptCount() - beforeReceipts) + (tb.User.Duplicates() - beforeDups)
	st.msgsPerAl = float64(arrivals) / float64(n)
	return st, nil
}
