// Package harness builds the paper's Figure-5 experimental testbed —
// information alert proxy, web-store proxy, Aladdin home gateway, WISH
// location server and desktop assistant, all delivering through one
// MyAlertBuddy (supervised by a Master Daemon Controller) to a
// simulated end user — and reproduces every quantitative result in
// Section 5 plus the baseline comparison motivated by Section 2.3 and
// the portal-scale workload from Section 1.
package harness

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"time"

	"simba/internal/addr"
	"simba/internal/aladdin"
	"simba/internal/alert"
	"simba/internal/assistant"
	"simba/internal/automation"
	"simba/internal/clock"
	"simba/internal/core"
	"simba/internal/dist"
	"simba/internal/dmode"
	"simba/internal/email"
	"simba/internal/enduser"
	"simba/internal/faults"
	"simba/internal/im"
	"simba/internal/mab"
	"simba/internal/mdc"
	"simba/internal/proxy"
	"simba/internal/sms"
	"simba/internal/websim"
	"simba/internal/wish"
)

// Canonical testbed addresses.
const (
	BuddyIMHandle  = "my-alert-buddy"
	BuddyEmailAddr = "buddy@simba.sim"
	UserName       = "alice"
	UserIMHandle   = "alice-im"
	UserEmailAddr  = "alice@work.sim"
	UserHomeEmail  = "alice@home.sim"
	UserPhone      = "4255551234"
	SourceIMHandle = "simba-sources"
	SourceEmail    = "sources@simba.sim"
)

// Options tunes the testbed.
type Options struct {
	// Seed drives all randomness (default 1).
	Seed int64
	// TempDir holds the pessimistic log (required).
	TempDir string
	// HeavyTails selects realistic heavy-tailed email/SMS delay
	// distributions with loss (for the baseline comparison); the
	// default uses fixed short delays so latency experiments are
	// deterministic.
	HeavyTails bool
	// EmailLoss / SMSLoss override the loss probabilities when
	// HeavyTails is set (defaults 0.02 / 0.05).
	EmailLoss, SMSLoss float64
	// AckTimeout is the IM block timeout used by sources and by the
	// user's delivery mode (default 15s).
	AckTimeout time.Duration
	// StartMDC supervises the buddy with a watchdog. Without it the
	// buddy is started directly (simpler experiments).
	StartMDC bool
	// DisableNightly disables the 23:30 rejuvenation (kept disabled by
	// default in latency experiments so it cannot interfere; the month
	// experiment controls it explicitly).
	EnableNightly bool
	// DisableReplay is passed through to the buddy (ablation).
	DisableReplay bool
	// BuddyPollPeriod overrides the buddy's fallback poll (default 30s).
	BuddyPollPeriod time.Duration
	// RouteDelay is the buddy's per-alert routing-processing cost
	// (default 600ms, calibrated to the paper's 2.5s proxy→user
	// budget; the plog ablation raises it).
	RouteDelay time.Duration
	// DialogPeriod overrides the monkey thread's 20s dialog sweep
	// (set very large to effectively disable it — ablation).
	DialogPeriod time.Duration
	// ProbePeriod overrides the MDC's 3-minute AreYouWorking period
	// (ablation sweep).
	ProbePeriod time.Duration
}

// Testbed is the wired deployment.
type Testbed struct {
	Opts    Options
	Sim     *clock.Sim
	RNG     *dist.RNG
	Machine *automation.Machine
	IMSvc   *im.Service
	EmSvc   *email.Service
	Carrier *sms.Carrier
	Journal *faults.Journal

	Buddy *mab.Service
	MDC   *mdc.Controller
	User  *enduser.User

	// Shared source-side plumbing.
	SrcEngine *core.Engine
	SrcIM     *core.DirectIM
	Target    *core.Target // the buddy, as sources see it

	// Sources.
	Web       *websim.Web
	Proxy     *proxy.Proxy
	Home      *aladdin.Home
	Wish      *wish.Server
	Assistant *assistant.Assistant

	// Receive/delivery observations.
	receives  chan receiveStamp
	OnReceive func(a *alert.Alert, at time.Time)
	// OnIMLaunch, when set before Start, runs against every freshly
	// launched buddy IM client instance (fault injection).
	OnIMLaunch func(app *automation.IMClientApp)

	appMu     sync.Mutex
	lastIMApp *automation.IMClientApp
}

type receiveStamp struct {
	key string
	at  time.Time
}

// currentIMApp returns the buddy's most recently launched IM client
// instance (nil before the first launch).
func (tb *Testbed) currentIMApp() *automation.IMClientApp {
	tb.appMu.Lock()
	defer tb.appMu.Unlock()
	return tb.lastIMApp
}

// NewTestbed wires the full topology. Call Start afterwards.
func NewTestbed(opts Options) (*Testbed, error) {
	if opts.TempDir == "" {
		return nil, errors.New("harness: Options.TempDir is required")
	}
	if err := os.MkdirAll(opts.TempDir, 0o755); err != nil {
		return nil, fmt.Errorf("harness: creating temp dir: %w", err)
	}
	if opts.Seed == 0 {
		opts.Seed = 1
	}
	if opts.AckTimeout <= 0 {
		opts.AckTimeout = 15 * time.Second
	}
	if opts.EmailLoss == 0 {
		opts.EmailLoss = 0.02
	}
	if opts.SMSLoss == 0 {
		opts.SMSLoss = 0.05
	}
	if opts.RouteDelay == 0 {
		opts.RouteDelay = 600 * time.Millisecond
	}
	tb := &Testbed{
		Opts:     opts,
		Sim:      clock.NewSim(time.Time{}),
		RNG:      dist.NewRNG(opts.Seed),
		Journal:  &faults.Journal{},
		receives: make(chan receiveStamp, 4096),
	}
	tb.Machine = automation.NewMachine(tb.Sim)

	var err error
	tb.IMSvc, err = im.NewService(im.Config{
		Clock:    tb.Sim,
		RNG:      dist.NewRNG(opts.Seed + 1),
		HopDelay: dist.Normal{Mean: 300 * time.Millisecond, Stddev: 80 * time.Millisecond, Floor: 100 * time.Millisecond},
	})
	if err != nil {
		return nil, err
	}
	emailDelay := dist.Dist(dist.Fixed(20 * time.Second))
	smsDelay := dist.Dist(dist.Fixed(8 * time.Second))
	emailLoss, smsLoss := 0.0, 0.0
	if opts.HeavyTails {
		emailDelay = dist.LogNormal{Mu: 3.0, Sigma: 1.6}
		mix, merr := dist.NewMixture(
			dist.Component{Weight: 0.85, Dist: dist.Normal{Mean: 8 * time.Second, Stddev: 4 * time.Second, Floor: time.Second}},
			dist.Component{Weight: 0.15, Dist: dist.LogNormal{Mu: 5.5, Sigma: 1.5}},
		)
		if merr != nil {
			return nil, merr
		}
		smsDelay = mix
		emailLoss, smsLoss = opts.EmailLoss, opts.SMSLoss
	}
	tb.EmSvc, err = email.NewService(email.Config{
		Clock:           tb.Sim,
		RNG:             dist.NewRNG(opts.Seed + 2),
		Delay:           emailDelay,
		LossProbability: emailLoss,
	})
	if err != nil {
		return nil, err
	}
	tb.Carrier, err = sms.NewCarrier(sms.Config{
		Clock:           tb.Sim,
		RNG:             dist.NewRNG(opts.Seed + 3),
		Delay:           smsDelay,
		LossProbability: smsLoss,
	})
	if err != nil {
		return nil, err
	}

	// Accounts.
	for _, h := range []string{BuddyIMHandle, UserIMHandle, SourceIMHandle} {
		if err := tb.IMSvc.Register(h); err != nil {
			return nil, err
		}
	}
	for _, a := range []string{BuddyEmailAddr, UserEmailAddr, UserHomeEmail, SourceEmail} {
		if _, err := tb.EmSvc.CreateMailbox(a); err != nil {
			return nil, err
		}
	}
	if _, err := tb.Carrier.Provision(UserPhone); err != nil {
		return nil, err
	}
	if _, err := sms.AttachGateway(tb.Sim, tb.EmSvc, tb.Carrier, UserPhone); err != nil {
		return nil, err
	}

	if err := tb.buildBuddy(); err != nil {
		return nil, err
	}
	if err := tb.buildUser(); err != nil {
		return nil, err
	}
	if err := tb.buildSources(); err != nil {
		return nil, err
	}
	return tb, nil
}

func (tb *Testbed) buildBuddy() error {
	opts := tb.Opts
	rejuvenation := time.Duration(-1)
	if opts.EnableNightly {
		rejuvenation = mab.DefaultRejuvenationTime
	}
	buddy, err := mab.New(mab.Config{
		Clock:            tb.Sim,
		Machine:          tb.Machine,
		IMService:        tb.IMSvc,
		EmailService:     tb.EmSvc,
		IMHandle:         BuddyIMHandle,
		EmailAddress:     BuddyEmailAddr,
		LogPath:          filepath.Join(opts.TempDir, "buddy.plog"),
		Journal:          tb.Journal,
		PollPeriod:       opts.BuddyPollPeriod,
		LogDelay:         500 * time.Millisecond,
		RouteDelay:       opts.RouteDelay,
		DialogPeriod:     opts.DialogPeriod,
		StartupDelay:     3 * time.Second,
		CallTimeout:      10 * time.Second,
		RejuvenationTime: rejuvenation,
		DisableReplay:    opts.DisableReplay,
		OnIMLaunch: func(app *automation.IMClientApp) {
			tb.appMu.Lock()
			tb.lastIMApp = app
			tb.appMu.Unlock()
			if tb.OnIMLaunch != nil {
				tb.OnIMLaunch(app)
			}
		},
		OnReceive: func(a *alert.Alert, at time.Time) {
			if tb.OnReceive != nil {
				tb.OnReceive(a, at)
			}
			select {
			case tb.receives <- receiveStamp{key: a.DedupKey(), at: at}:
			default:
			}
		},
	})
	if err != nil {
		return err
	}
	tb.Buddy = buddy

	// Accepted sources and their keyword extraction rules.
	for _, rule := range []mab.SourceRule{
		{Source: "alert-proxy", Extract: mab.ExtractNative},
		{Source: "web-store", Extract: mab.ExtractNative},
		{Source: "aladdin", Extract: mab.ExtractNative},
		{Source: "wish", Extract: mab.ExtractNative},
		{Source: "desktop-assistant", Extract: mab.ExtractSubject},
		{Source: "yahoo.sim", Extract: mab.ExtractSender},
		{Source: "bench", Extract: mab.ExtractNative},
	} {
		buddy.Classifier().Accept(rule)
	}
	// Personal categories.
	agg := buddy.Aggregator()
	agg.Map("Election", "News")
	agg.Map("PlayStation2", "Shopping")
	agg.Map("Community", "Family")
	agg.Map("Sensor ON", "HomeEmergency")
	agg.Map("Sensor OFF", "HomeStatus")
	agg.Map("Sensor Broken", "HomeStatus")
	agg.Map("Security", "HomeEmergency")
	agg.Map("Location", "People")
	agg.Map("Email", "Work")
	agg.Map("Reminder", "Work")
	agg.Map("stocks", "Investment")
	agg.Map("Bench", "Bench")

	// The user's profile at the buddy.
	profile, err := buddy.Store().RegisterUser(UserName)
	if err != nil {
		return err
	}
	for _, a := range []addr.Address{
		{Type: addr.TypeIM, Name: "MSN IM", Target: UserIMHandle, Enabled: true},
		{Type: addr.TypeSMS, Name: "Cell SMS", Target: sms.GatewayAddress(UserPhone), Enabled: true},
		{Type: addr.TypeEmail, Name: "Work email", Target: UserEmailAddr, Enabled: true},
		{Type: addr.TypeEmail, Name: "Home email", Target: UserHomeEmail, Enabled: true},
	} {
		if err := profile.Addresses().Register(a); err != nil {
			return err
		}
	}
	urgent := &dmode.Mode{Name: "Urgent", Blocks: []dmode.Block{
		{Timeout: dmode.Duration(tb.Opts.AckTimeout), Actions: []dmode.Action{{Address: "MSN IM"}}},
		{Actions: []dmode.Action{{Address: "Cell SMS"}}},
		{Actions: []dmode.Action{{Address: "Work email"}, {Address: "Home email"}}},
	}}
	relaxed := &dmode.Mode{Name: "Relaxed", Blocks: []dmode.Block{
		{Actions: []dmode.Action{{Address: "Work email"}}},
	}}
	for _, m := range []*dmode.Mode{urgent, relaxed} {
		if err := profile.DefineMode(m); err != nil {
			return err
		}
	}
	for category, mode := range map[string]string{
		"News": "Urgent", "Shopping": "Urgent", "Family": "Relaxed",
		"HomeEmergency": "Urgent", "HomeStatus": "Relaxed",
		"People": "Urgent", "Work": "Urgent", "Investment": "Urgent",
		"Bench": "Urgent",
	} {
		if err := buddy.Store().Subscribe(category, UserName, mode); err != nil {
			return err
		}
	}

	if tb.Opts.StartMDC {
		ctrl, err := mdc.New(mdc.Config{
			Clock:       tb.Sim,
			Daemon:      buddy,
			Journal:     tb.Journal,
			ProbePeriod: tb.Opts.ProbePeriod,
			Reboot:      func() { tb.Machine.Reboot(mdc.DefaultBootTime) },
		})
		if err != nil {
			return err
		}
		tb.MDC = ctrl
	}
	return nil
}

func (tb *Testbed) buildUser() error {
	user, err := enduser.New(enduser.Config{
		Clock:            tb.Sim,
		Name:             UserName,
		IMService:        tb.IMSvc,
		IMHandle:         UserIMHandle,
		EmailService:     tb.EmSvc,
		EmailAddresses:   []string{UserEmailAddr, UserHomeEmail},
		Carrier:          tb.Carrier,
		PhoneNumber:      UserPhone,
		EmailCheckPeriod: time.Minute,
		SMSReadDelay:     10 * time.Second,
	})
	if err != nil {
		return err
	}
	tb.User = user
	return nil
}

func (tb *Testbed) buildSources() error {
	srcEmail, err := core.NewDirectEmail(tb.EmSvc, SourceEmail)
	if err != nil {
		return err
	}
	srcIM, err := core.NewDirectIM(tb.Sim, tb.IMSvc, SourceIMHandle, nil)
	if err != nil {
		return err
	}
	engine, err := core.NewEngine(tb.Sim, srcIM, srcEmail)
	if err != nil {
		return err
	}
	srcIM.SetOnMessage(func(m im.Message) { engine.HandleIncoming(m) })
	tb.SrcEngine = engine
	tb.SrcIM = srcIM
	target, err := core.BuddyTarget(engine, BuddyIMHandle, BuddyEmailAddr, dmode.Duration(tb.Opts.AckTimeout))
	if err != nil {
		return err
	}
	tb.Target = target

	// Alert proxy over the simulated web.
	tb.Web, err = websim.New(tb.Sim, 200*time.Millisecond)
	if err != nil {
		return err
	}
	tb.Proxy, err = proxy.New(tb.Sim, tb.Web, target)
	if err != nil {
		return err
	}

	// Aladdin home.
	tb.Home, err = aladdin.New(aladdin.Config{
		Clock:           tb.Sim,
		RNG:             dist.NewRNG(tb.Opts.Seed + 4),
		Target:          target,
		ProcessingDelay: 2 * time.Second,
		PhonelineDelay:  3500 * time.Millisecond,
	})
	if err != nil {
		return err
	}

	// WISH location service: two-wing building.
	tb.Wish, err = wish.NewServer(wish.ServerConfig{
		Clock: tb.Sim,
		RNG:   dist.NewRNG(tb.Opts.Seed + 5),
		Model: wish.Model{
			APs: []wish.AP{
				{ID: "ap-1", X: 0, Y: 0}, {ID: "ap-2", X: 40, Y: 0},
				{ID: "ap-3", X: 0, Y: 30}, {ID: "ap-4", X: 40, Y: 30},
			},
			NoiseStddevDB: 1,
		},
		Zones: []wish.Zone{
			{Name: "building-west", MinX: 0, MinY: 0, MaxX: 20, MaxY: 30},
			{Name: "building-east", MinX: 20, MinY: 0, MaxX: 40, MaxY: 30},
		},
		Target:       target,
		ProcessDelay: 2 * time.Second,
	})
	if err != nil {
		return err
	}

	// Desktop assistant.
	tb.Assistant, err = assistant.New(assistant.Config{
		Clock:  tb.Sim,
		Target: target,
	})
	return err
}

// Start brings the deployment up: the user endpoint, the source
// endpoint, and the buddy (under the MDC when configured). It advances
// virtual time far enough for the buddy to finish its startup delays.
func (tb *Testbed) Start() error {
	if err := tb.User.Start(); err != nil {
		return err
	}
	if err := tb.SrcIM.Start(); err != nil {
		return err
	}
	if tb.MDC != nil {
		tb.MDC.Start()
	} else {
		done := make(chan error, 1)
		go func() { done <- tb.Buddy.Start() }()
		deadline := time.Now().Add(10 * time.Second)
		for {
			select {
			case err := <-done:
				if err != nil {
					return err
				}
				return nil
			default:
			}
			if time.Now().After(deadline) {
				return errors.New("harness: buddy start timed out")
			}
			tb.Sim.Advance(time.Second)
			time.Sleep(time.Millisecond)
		}
	}
	tb.RunFor(20*time.Second, time.Second)
	if tb.MDC != nil && !tb.Buddy.Running() {
		return errors.New("harness: buddy did not come up under MDC")
	}
	return nil
}

// Stop tears the deployment down.
func (tb *Testbed) Stop() {
	if tb.MDC != nil {
		tb.MDC.Stop()
	} else {
		tb.Buddy.Kill()
	}
	tb.Proxy.Stop()
	tb.Home.StopHeartbeats()
	tb.User.Stop()
	tb.SrcIM.Stop()
}

// RunFor advances virtual time by total in steps, yielding real time
// between steps so goroutines keep up.
func (tb *Testbed) RunFor(total, step time.Duration) {
	for elapsed := time.Duration(0); elapsed < total; elapsed += step {
		tb.Sim.Advance(step)
		time.Sleep(time.Millisecond)
	}
}

// RunUntil advances until cond holds or maxVirtual elapses, reporting
// whether cond held.
func (tb *Testbed) RunUntil(cond func() bool, step, maxVirtual time.Duration) bool {
	for elapsed := time.Duration(0); elapsed < maxVirtual; elapsed += step {
		if cond() {
			return true
		}
		tb.Sim.Advance(step)
		time.Sleep(time.Millisecond)
	}
	return cond()
}

// WaitReceive blocks (driving the clock) until the buddy reports
// receiving the alert with the given dedup key, returning the arrival
// stamp.
func (tb *Testbed) WaitReceive(key string, maxVirtual time.Duration) (time.Time, error) {
	var at time.Time
	found := tb.RunUntil(func() bool {
		for {
			select {
			case st := <-tb.receives:
				if st.key == key {
					at = st.at
					return true
				}
			default:
				return false
			}
		}
	}, 100*time.Millisecond, maxVirtual)
	if !found {
		return time.Time{}, fmt.Errorf("harness: alert %s never reached the buddy", key)
	}
	return at, nil
}
