package harness

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"simba/internal/automation"
	"simba/internal/faults"
)

// monthPlan is the fault schedule for E5, expressed as fractions of
// the run so shorter runs compress the same event set. The injected
// counts are calibrated to Section 5's one-month log: five extended IM
// downtimes of 4–103 minutes, spontaneous logouts healed by re-login,
// hanging IM clients killed and restarted, 36 MDC restarts of
// MyAlertBuddy (mostly "IM exceptions" → crashes here), one power
// outage and two previously unknown dialog boxes (the three failures
// the mechanisms could not recover).
type monthPlan struct {
	imOutages []struct {
		frac     float64
		duration time.Duration
	}
	logoutFracs []float64 // spontaneous IM logouts (simple re-login works)
	hangFracs   []float64 // hanging IM client (kill+restart needed)
	crashFracs  []float64 // MAB crashes from unhandled exceptions
	mabHangs    []float64 // MAB internal hangs (probe failures)
	powerFrac   float64
	powerFor    time.Duration
	dialogFracs []float64
	dialogFor   time.Duration
	// knownDialogFracs pop dialogs whose caption-button pairs the
	// monkey thread already knows; it dismisses them within a sweep.
	knownDialogFracs []float64
}

func defaultMonthPlan() monthPlan {
	p := monthPlan{
		imOutages: []struct {
			frac     float64
			duration time.Duration
		}{
			{0.07, 4 * time.Minute},
			{0.23, 11 * time.Minute},
			{0.44, 27 * time.Minute},
			{0.63, 55 * time.Minute},
			{0.87, 103 * time.Minute},
		},
		logoutFracs:      []float64{0.05, 0.31, 0.52, 0.74},
		hangFracs:        []float64{0.11, 0.27, 0.38, 0.49, 0.61, 0.79, 0.93},
		powerFrac:        0.76,
		powerFor:         15 * time.Minute,
		dialogFracs:      []float64{0.34, 0.57},
		dialogFor:        150 * time.Second,
		knownDialogFracs: []float64{0.09, 0.21, 0.42, 0.58, 0.69, 0.83},
	}
	// 27 crashes + 4 MAB hangs, plus the rejuvenations the two
	// unknown-dialog windows force and the power-outage recovery,
	// land near the paper's 36 MDC restarts.
	for i := 0; i < 27; i++ {
		p.crashFracs = append(p.crashFracs, 0.015+float64(i)*0.036)
	}
	p.mabHangs = []float64{0.18, 0.36, 0.55, 0.9}
	return p
}

// E5FaultMonth replays the paper's one-month availability study in
// virtual time. days may be shortened for quick runs; the same fault
// set is compressed into the window.
func E5FaultMonth(tempDir string, days int) (*Result, error) {
	if days <= 0 {
		days = 30
	}
	duration := time.Duration(days) * 24 * time.Hour
	tb, err := NewTestbed(Options{TempDir: tempDir, StartMDC: true})
	if err != nil {
		return nil, err
	}
	// Track the live IM client app so dialog faults can re-pop on
	// every relaunched instance while a dialog window is active.
	var dialogCaption atomic.Value // string; "" when inactive
	dialogCaption.Store("")
	var appMu sync.Mutex
	var currentApp *automation.IMClientApp
	tb.OnIMLaunch = func(app *automation.IMClientApp) {
		appMu.Lock()
		currentApp = app
		appMu.Unlock()
		if caption := dialogCaption.Load().(string); caption != "" {
			tb.Machine.Desktop().PopDialog(caption, []string{"OK"}, app.Proc, tb.Sim.Now())
		}
	}
	if err := tb.Start(); err != nil {
		return nil, err
	}
	defer tb.Stop()

	plan := defaultMonthPlan()
	at := func(frac float64) time.Duration { return time.Duration(frac * float64(duration)) }
	sched := faults.NewSchedule()

	// IM service outages (with forced logouts at outage start, as a
	// server recovery would cause).
	for _, o := range plan.imOutages {
		o := o
		sched.At(at(o.frac), func() {
			tb.Journal.Record(tb.Sim.Now(), faults.KindFaultInjected, "im-service outage")
			tb.IMSvc.Outage().Set(true, tb.Sim.Now())
			tb.IMSvc.ForceLogoutAll()
		})
		sched.At(at(o.frac)+o.duration, func() {
			tb.IMSvc.Outage().Set(false, tb.Sim.Now())
			tb.Journal.Record(tb.Sim.Now(), faults.KindFaultCleared, "im-service outage")
		})
	}
	for _, f := range plan.logoutFracs {
		sched.At(at(f), func() { tb.IMSvc.ForceLogout(BuddyIMHandle) })
	}
	for _, f := range plan.hangFracs {
		sched.At(at(f), func() { tb.Buddy.InjectIMClientHang() })
	}
	for _, f := range plan.crashFracs {
		sched.At(at(f), func() { tb.Buddy.InjectCrash() })
	}
	for _, f := range plan.mabHangs {
		sched.At(at(f), func() { tb.Buddy.InjectHang() })
	}
	// Power outage: everything dies; no UPS, so this one is
	// unrecoverable until power returns.
	sched.At(at(plan.powerFrac), func() {
		tb.Journal.Record(tb.Sim.Now(), faults.KindUnrecovered, "power outage in the office (no UPS)")
		tb.Machine.PowerOff()
	})
	sched.At(at(plan.powerFrac)+plan.powerFor, func() { tb.Machine.PowerOn() })
	// Known dialogs: the monkey thread handles these routinely.
	for _, f := range plan.knownDialogFracs {
		sched.At(at(f), func() {
			app := tb.currentIMApp()
			if app == nil || !app.Running() {
				return
			}
			tb.Machine.Desktop().PopDialog("Connection Error", []string{"OK"}, app.Proc, tb.Sim.Now())
		})
	}
	// Two previously unknown dialog boxes: while the window is open,
	// every (re)launched IM client pops the dialog again, so the
	// restart loop cannot restore health; the window closes when the
	// caption-button pair is registered (the paper's eventual fix).
	for i, f := range plan.dialogFracs {
		caption := fmt.Sprintf("Unexpected Error %d", i+1)
		sched.At(at(f), func() {
			tb.Journal.Recordf(tb.Sim.Now(), faults.KindUnrecovered, "previously unknown dialog box %q", caption)
			dialogCaption.Store(caption)
			appMu.Lock()
			app := currentApp
			appMu.Unlock()
			if app != nil && app.Running() {
				tb.Machine.Desktop().PopDialog(caption, []string{"OK"}, app.Proc, tb.Sim.Now())
			}
		})
		sched.At(at(f)+plan.dialogFor, func() {
			dialogCaption.Store("")
			// The operator registers the pair; clear any open instance.
			for tb.Machine.Desktop().ClickButton(caption, "OK") {
			}
		})
	}
	sched.Install(tb.Sim)

	// Background alert traffic: one alert every 2 hours.
	trafficPeriod := 2 * time.Hour
	var sent atomic.Int64
	trafficStop := make(chan struct{})
	go func() {
		ticker := tb.Sim.NewTicker(trafficPeriod)
		defer ticker.Stop()
		for {
			select {
			case <-trafficStop:
				return
			case <-ticker.C():
				a := benchAlert(tb)
				sent.Add(1)
				go func() { _, _ = tb.Target.Deliver(a) }()
			}
		}
	}()

	// Run the month.
	tb.RunFor(duration, time.Minute)
	close(trafficStop)
	tb.RunFor(10*time.Minute, time.Minute) // drain in-flight deliveries

	downtimes := tb.Journal.Downtimes("im-service outage")
	minD, maxD := time.Duration(0), time.Duration(0)
	if len(downtimes) > 0 {
		minD, maxD = downtimes[0], downtimes[0]
		for _, d := range downtimes {
			if d < minD {
				minD = d
			}
			if d > maxD {
				maxD = d
			}
		}
	}
	res := &Result{ID: "E5", Title: fmt.Sprintf("Fault-tolerance log over %d simulated days (Section 5)", days)}
	res.AddRow("extended IM downtimes", "5 (4–103 min)",
		fmt.Sprintf("%d (%s–%s)", len(downtimes), fmtDur(minD), fmtDur(maxD)), "")
	res.AddRow("logged out, re-login worked", "9",
		fmt.Sprintf("%d", tb.Journal.Count(faults.KindRelogin)), "includes post-outage re-logins")
	res.AddRow("hanging IM client killed+restarted", "9",
		fmt.Sprintf("%d", tb.Journal.Count(faults.KindClientRestart)), "includes dialog-window restart loops")
	res.AddRow("MyAlertBuddy restarts by MDC", "36",
		fmt.Sprintf("%d", tb.MDC.Restarts()), "mostly injected IM exceptions")
	res.AddRow("failures not auto-recovered", "3 (1 power, 2 dialogs)",
		fmt.Sprintf("%d", tb.Journal.Count(faults.KindUnrecovered)), "")
	res.AddRow("dialog boxes dismissed by monkey", "—",
		fmt.Sprintf("%d", tb.Journal.Count(faults.KindDialogDismissed)), "")
	res.AddRow("alert traffic delivered",
		"all except during the 3 unrecovered failures",
		fmt.Sprintf("%d/%d reached the user", tb.User.ReceiptCount(), sent.Load()), "")
	res.AddNote("fault schedule compressed from the paper's month into %d day(s); counts are injections plus organic recoveries", days)
	return res, nil
}
