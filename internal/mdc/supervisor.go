package mdc

import (
	"errors"
	"sync"
	"time"

	"simba/internal/clock"
	"simba/internal/faults"
	"simba/internal/metrics"
)

// Unit is one restartable component a Supervisor probes — the
// generalization of Daemon from one watched process to N watched units
// inside one process (the hub's shards, in simbad). A Unit is never
// started by the Supervisor: it is already running, and the only
// recovery verb is Restart.
type Unit interface {
	// Name identifies the unit in journals and stats.
	Name() string
	// AreYouWorking is the non-blocking health probe. Implementations
	// should read atomics/snapshots only — the Supervisor still guards
	// the call with a reply timeout, but a probe that takes locks can
	// block behind exactly the failure it is trying to detect.
	AreYouWorking() bool
	// Restart recovers the unit after FailureThreshold consecutive
	// probe failures. It blocks until the unit is serving again (or
	// returns the reason it cannot be).
	Restart(reason string) error
}

// Supervisor defaults. Probe cadence is deliberately much faster than
// the MDC's process-level three minutes: an in-process unit probe is a
// few atomic loads, and a wedged shard should be caught in seconds.
const (
	DefaultUnitProbePeriod      = time.Second
	DefaultUnitReplyTimeout     = 250 * time.Millisecond
	DefaultUnitFailureThreshold = 2
)

// SupervisorConfig parameterizes a Supervisor.
type SupervisorConfig struct {
	// Clock drives probe scheduling and journal timestamps; required.
	Clock clock.Clock
	// ProbePeriod is how often every unit is probed; zero means
	// DefaultUnitProbePeriod.
	ProbePeriod time.Duration
	// ReplyTimeout bounds one probe's reply wait; an overdue reply
	// counts as a failure. Zero means DefaultUnitReplyTimeout.
	ReplyTimeout time.Duration
	// FailureThreshold is how many consecutive probe failures trigger
	// Restart; zero means DefaultUnitFailureThreshold.
	FailureThreshold int
	// Journal records probe failures and restarts. Optional.
	Journal *faults.Journal
	// OnRestart, when set, observes every restart attempt (err nil on
	// success). Optional; called from the supervision goroutine.
	OnRestart func(unit string, err error)
}

// UnitStats is one unit's supervision counters.
type UnitStats struct {
	Name     string
	Probes   int64 // probes issued
	Failures int64 // probes failed (false reply or reply timeout)
	Restarts int64 // successful Restart calls
	// RestartErrors counts Restart calls that themselves failed; the
	// failure streak continues and the next threshold crossing retries.
	RestartErrors int64
	// ConsecutiveFailures is the current failure streak (resets on any
	// healthy probe or successful restart).
	ConsecutiveFailures int64
}

// unitState is a supervised unit plus its counters; counters are only
// written by the supervision goroutine, reads go through the mutex in
// Stats.
type unitState struct {
	unit  Unit
	stats UnitStats
}

// Supervisor probes N units on one ticker and restarts any unit whose
// probe fails FailureThreshold times in a row — the MDC's watchdog
// discipline (periodic AreYouWorking with a reply timeout) applied at
// sub-process granularity. One goroutine probes all units: probes are
// designed to be cheap, and serializing them means a restart (which
// blocks until the unit serves again) never overlaps another unit's
// restart — rolling recovery, never a thundering herd of restarts.
type Supervisor struct {
	cfg SupervisorConfig

	mu      sync.Mutex
	running bool
	stop    chan struct{}
	done    chan struct{}
	units   []*unitState

	// probeLat is the probe round-trip histogram in microseconds —
	// evidence the probes stay non-blocking (tail spikes mean a probe
	// implementation started taking locks).
	probeLat metrics.Histogram
}

// NewSupervisor validates the config and returns a Supervisor over the
// given units.
func NewSupervisor(cfg SupervisorConfig, units ...Unit) (*Supervisor, error) {
	if cfg.Clock == nil {
		return nil, errors.New("mdc: SupervisorConfig requires Clock")
	}
	if len(units) == 0 {
		return nil, errors.New("mdc: Supervisor requires at least one Unit")
	}
	if cfg.ProbePeriod <= 0 {
		cfg.ProbePeriod = DefaultUnitProbePeriod
	}
	if cfg.ReplyTimeout <= 0 {
		cfg.ReplyTimeout = DefaultUnitReplyTimeout
	}
	if cfg.FailureThreshold <= 0 {
		cfg.FailureThreshold = DefaultUnitFailureThreshold
	}
	s := &Supervisor{cfg: cfg}
	for _, u := range units {
		s.units = append(s.units, &unitState{unit: u, stats: UnitStats{Name: u.Name()}})
	}
	return s, nil
}

// Start launches the supervision loop in its own goroutine.
func (s *Supervisor) Start() {
	s.mu.Lock()
	if s.running {
		s.mu.Unlock()
		return
	}
	s.running = true
	s.stop = make(chan struct{})
	s.done = make(chan struct{})
	stop, done := s.stop, s.done
	s.mu.Unlock()
	go s.run(stop, done)
}

// Stop ends supervision (the units keep running) and waits for the
// supervision goroutine to exit.
func (s *Supervisor) Stop() {
	s.mu.Lock()
	if !s.running {
		s.mu.Unlock()
		return
	}
	s.running = false
	close(s.stop)
	done := s.done
	s.mu.Unlock()
	<-done
}

func (s *Supervisor) run(stop chan struct{}, done chan struct{}) {
	defer close(done)
	ticker := s.cfg.Clock.NewTicker(s.cfg.ProbePeriod)
	defer ticker.Stop()
	for {
		select {
		case <-stop:
			return
		case <-ticker.C():
			for _, u := range s.units {
				select {
				case <-stop:
					return
				default:
				}
				s.probeUnit(u)
			}
		}
	}
}

// probeUnit runs one guarded probe and escalates a completed failure
// streak to Restart.
func (s *Supervisor) probeUnit(u *unitState) {
	start := s.cfg.Clock.Now()
	ok := s.probe(u.unit)
	s.probeLat.Observe(s.cfg.Clock.Since(start).Microseconds())

	s.mu.Lock()
	u.stats.Probes++
	if ok {
		u.stats.ConsecutiveFailures = 0
		s.mu.Unlock()
		return
	}
	u.stats.Failures++
	u.stats.ConsecutiveFailures++
	streak := u.stats.ConsecutiveFailures
	s.mu.Unlock()

	if streak < int64(s.cfg.FailureThreshold) {
		return
	}
	s.journal(faults.KindDaemonRestart,
		"unit %s failed %d consecutive probes; restarting", u.unit.Name(), streak)
	err := u.unit.Restart("AreYouWorking probe failed")
	if f := s.cfg.OnRestart; f != nil {
		f(u.unit.Name(), err)
	}
	s.mu.Lock()
	if err != nil {
		u.stats.RestartErrors++
	} else {
		u.stats.Restarts++
		u.stats.ConsecutiveFailures = 0
	}
	s.mu.Unlock()
	if err != nil {
		s.journal(faults.KindUnrecovered, "unit %s restart failed: %v", u.unit.Name(), err)
	}
}

// probe is the event-object handshake from Controller.probe, per unit:
// invoke AreYouWorking on a fresh goroutine and wait for the reply no
// longer than ReplyTimeout. The goroutine of a hung probe is leaked by
// design — exactly the hang the timeout exists to detect.
func (s *Supervisor) probe(u Unit) bool {
	reply := make(chan bool, 1)
	go func() { reply <- u.AreYouWorking() }()
	timer := s.cfg.Clock.NewTimer(s.cfg.ReplyTimeout)
	defer timer.Stop()
	select {
	case ok := <-reply:
		return ok
	case <-timer.C():
		return false
	}
}

// Stats snapshots every unit's supervision counters, in unit order.
func (s *Supervisor) Stats() []UnitStats {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]UnitStats, len(s.units))
	for i, u := range s.units {
		out[i] = u.stats
	}
	return out
}

// ProbeLatency returns the probe round-trip histogram (microseconds).
func (s *Supervisor) ProbeLatency() metrics.HistogramSnapshot {
	return s.probeLat.Snapshot()
}

func (s *Supervisor) journal(kind faults.Kind, format string, args ...any) {
	if s.cfg.Journal != nil {
		s.cfg.Journal.Recordf(s.cfg.Clock.Now(), kind, format, args...)
	}
}
