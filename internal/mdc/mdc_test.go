package mdc

import (
	"errors"
	"sync"
	"testing"
	"time"

	"simba/internal/clock"
	"simba/internal/faults"
)

// fakeDaemon is a controllable Daemon implementation.
type fakeDaemon struct {
	mu         sync.Mutex
	startErr   error
	startCount int
	exited     chan struct{}
	alive      bool
	hung       bool // AreYouWorking blocks until killed
	healthy    bool // AreYouWorking return value when not hung
}

func newFakeDaemon() *fakeDaemon {
	return &fakeDaemon{healthy: true}
}

func (d *fakeDaemon) Start() error {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.startErr != nil {
		return d.startErr
	}
	d.startCount++
	d.exited = make(chan struct{})
	d.alive = true
	d.hung = false
	return nil
}

func (d *fakeDaemon) Exited() <-chan struct{} {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.exited
}

func (d *fakeDaemon) Kill() {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.dieLocked()
}

func (d *fakeDaemon) dieLocked() {
	if d.alive {
		d.alive = false
		close(d.exited)
	}
}

// crash simulates the daemon terminating on its own.
func (d *fakeDaemon) crash() {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.dieLocked()
}

func (d *fakeDaemon) hang() {
	d.mu.Lock()
	d.hung = true
	d.mu.Unlock()
}

func (d *fakeDaemon) setStartErr(err error) {
	d.mu.Lock()
	d.startErr = err
	d.mu.Unlock()
}

func (d *fakeDaemon) starts() int {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.startCount
}

func (d *fakeDaemon) isAlive() bool {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.alive
}

func (d *fakeDaemon) AreYouWorking() bool {
	d.mu.Lock()
	hung := d.hung
	exited := d.exited
	healthy := d.healthy
	d.mu.Unlock()
	if hung {
		<-exited // blocks until killed
		return false
	}
	return healthy
}

func newController(t *testing.T, sim *clock.Sim, d Daemon, j *faults.Journal, reboot func()) *Controller {
	t.Helper()
	c, err := New(Config{
		Clock:                  sim,
		Daemon:                 d,
		ProbePeriod:            3 * time.Minute,
		ReplyTimeout:           30 * time.Second,
		RestartDelay:           10 * time.Second,
		MaxConsecutiveFailures: 3,
		Reboot:                 reboot,
		Journal:                j,
	})
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func advanceUntil(t *testing.T, sim *clock.Sim, step time.Duration, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatal("condition not reached")
		}
		sim.Advance(step)
		time.Sleep(time.Millisecond)
	}
}

func TestNewValidation(t *testing.T) {
	if _, err := New(Config{}); err == nil {
		t.Fatal("empty config accepted")
	}
	if _, err := New(Config{Clock: clock.NewSim(time.Time{})}); err == nil {
		t.Fatal("missing daemon accepted")
	}
}

func TestStartLaunchesDaemon(t *testing.T) {
	sim := clock.NewSim(time.Time{})
	d := newFakeDaemon()
	c := newController(t, sim, d, nil, nil)
	c.Start()
	defer c.Stop()
	c.Start() // idempotent
	advanceUntil(t, sim, time.Second, func() bool { return d.starts() == 1 && d.isAlive() })
	if c.Restarts() != 0 {
		t.Fatalf("Restarts() = %d after initial start", c.Restarts())
	}
}

func TestRestartAfterTermination(t *testing.T) {
	sim := clock.NewSim(time.Time{})
	d := newFakeDaemon()
	j := &faults.Journal{}
	c := newController(t, sim, d, j, nil)
	c.Start()
	defer c.Stop()
	advanceUntil(t, sim, time.Second, func() bool { return d.isAlive() })
	d.crash()
	advanceUntil(t, sim, 5*time.Second, func() bool { return d.starts() == 2 && d.isAlive() })
	if c.Restarts() != 1 {
		t.Fatalf("Restarts() = %d", c.Restarts())
	}
	if j.Count(faults.KindDaemonRestart) == 0 {
		t.Fatal("restart not journaled")
	}
}

func TestHungDaemonKilledAndRestarted(t *testing.T) {
	sim := clock.NewSim(time.Time{})
	d := newFakeDaemon()
	j := &faults.Journal{}
	c := newController(t, sim, d, j, nil)
	c.Start()
	defer c.Stop()
	advanceUntil(t, sim, time.Second, func() bool { return d.isAlive() })
	d.hang()
	// Probe at +3min, reply timeout +30s, restart delay +10s.
	advanceUntil(t, sim, 30*time.Second, func() bool { return d.starts() == 2 && d.isAlive() })
	if j.CountMatching(faults.KindDaemonRestart, "AreYouWorking") == 0 {
		t.Fatal("probe failure not journaled")
	}
}

func TestUnhealthyReplyTriggersRestart(t *testing.T) {
	sim := clock.NewSim(time.Time{})
	d := newFakeDaemon()
	c := newController(t, sim, d, nil, nil)
	c.Start()
	defer c.Stop()
	advanceUntil(t, sim, time.Second, func() bool { return d.isAlive() })
	d.mu.Lock()
	d.healthy = false
	d.mu.Unlock()
	advanceUntil(t, sim, 30*time.Second, func() bool { return d.starts() >= 2 })
}

func TestHealthyDaemonNotRestarted(t *testing.T) {
	sim := clock.NewSim(time.Time{})
	d := newFakeDaemon()
	c := newController(t, sim, d, nil, nil)
	c.Start()
	defer c.Stop()
	advanceUntil(t, sim, time.Second, func() bool { return d.isAlive() })
	// Survive many probe periods.
	for i := 0; i < 20; i++ {
		sim.Advance(time.Minute)
		time.Sleep(time.Millisecond)
	}
	if got := d.starts(); got != 1 {
		t.Fatalf("healthy daemon restarted %d times", got-1)
	}
}

func TestRebootAfterRepeatedStartFailures(t *testing.T) {
	sim := clock.NewSim(time.Time{})
	d := newFakeDaemon()
	d.setStartErr(errors.New("no power"))
	j := &faults.Journal{}
	var mu sync.Mutex
	rebooted := 0
	reboot := func() {
		mu.Lock()
		rebooted++
		n := rebooted
		mu.Unlock()
		if n >= 1 {
			d.setStartErr(nil) // power back after reboot
		}
		sim.Sleep(DefaultBootTime)
	}
	c := newController(t, sim, d, j, reboot)
	c.Start()
	defer c.Stop()
	advanceUntil(t, sim, 30*time.Second, func() bool { return d.isAlive() })
	mu.Lock()
	got := rebooted
	mu.Unlock()
	if got != 1 || c.Reboots() != 1 {
		t.Fatalf("rebooted %d times, controller says %d", got, c.Reboots())
	}
	if j.Count(faults.KindMachineReboot) != 1 {
		t.Fatal("reboot not journaled")
	}
}

func TestStopKillsDaemon(t *testing.T) {
	sim := clock.NewSim(time.Time{})
	d := newFakeDaemon()
	c := newController(t, sim, d, nil, nil)
	c.Start()
	advanceUntil(t, sim, time.Second, func() bool { return d.isAlive() })
	c.Stop()
	c.Stop() // idempotent
	waitForReal(t, func() bool { return !d.isAlive() })
}

func waitForReal(t *testing.T, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatal("condition not reached in time")
		}
		time.Sleep(time.Millisecond)
	}
}
