package mdc

import (
	"errors"
	"sync"
	"testing"
	"time"

	"simba/internal/clock"
	"simba/internal/faults"
)

// fakeUnit is a controllable Unit: health toggles, probes can hang,
// restarts can fail.
type fakeUnit struct {
	name string

	mu         sync.Mutex
	healthy    bool
	hung       bool
	restarts   int
	restartErr error
}

func newFakeUnit(name string) *fakeUnit { return &fakeUnit{name: name, healthy: true} }

func (u *fakeUnit) Name() string { return u.name }

func (u *fakeUnit) AreYouWorking() bool {
	u.mu.Lock()
	hung, healthy := u.hung, u.healthy
	u.mu.Unlock()
	if hung {
		select {} // never replies; the supervisor's timeout must catch it
	}
	return healthy
}

func (u *fakeUnit) Restart(reason string) error {
	u.mu.Lock()
	defer u.mu.Unlock()
	if u.restartErr != nil {
		return u.restartErr
	}
	u.restarts++
	u.healthy = true
	u.hung = false
	return nil
}

func (u *fakeUnit) set(healthy, hung bool) {
	u.mu.Lock()
	u.healthy, u.hung = healthy, hung
	u.mu.Unlock()
}

func (u *fakeUnit) restartCount() int {
	u.mu.Lock()
	defer u.mu.Unlock()
	return u.restarts
}

func newSupervisor(t *testing.T, sim *clock.Sim, j *faults.Journal, units ...Unit) *Supervisor {
	t.Helper()
	s, err := NewSupervisor(SupervisorConfig{
		Clock:            sim,
		ProbePeriod:      time.Second,
		ReplyTimeout:     250 * time.Millisecond,
		FailureThreshold: 2,
		Journal:          j,
	}, units...)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func supAdvanceUntil(t *testing.T, sim *clock.Sim, step time.Duration, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatal("condition not reached")
		}
		sim.Advance(step)
		time.Sleep(time.Millisecond)
	}
}

func TestSupervisorValidation(t *testing.T) {
	if _, err := NewSupervisor(SupervisorConfig{}, newFakeUnit("u")); err == nil {
		t.Fatal("missing clock accepted")
	}
	if _, err := NewSupervisor(SupervisorConfig{Clock: clock.NewSim(time.Time{})}); err == nil {
		t.Fatal("zero units accepted")
	}
}

func TestSupervisorHealthyUnitsNotRestarted(t *testing.T) {
	sim := clock.NewSim(time.Time{})
	a, b := newFakeUnit("a"), newFakeUnit("b")
	s := newSupervisor(t, sim, nil, a, b)
	s.Start()
	defer s.Stop()
	supAdvanceUntil(t, sim, time.Second, func() bool {
		st := s.Stats()
		return st[0].Probes >= 5 && st[1].Probes >= 5
	})
	if a.restartCount() != 0 || b.restartCount() != 0 {
		t.Fatalf("healthy units restarted: a=%d b=%d", a.restartCount(), b.restartCount())
	}
}

func TestSupervisorRestartsAfterThreshold(t *testing.T) {
	sim := clock.NewSim(time.Time{})
	a, b := newFakeUnit("a"), newFakeUnit("b")
	j := &faults.Journal{}
	s := newSupervisor(t, sim, j, a, b)
	s.Start()
	defer s.Stop()
	a.set(false, false)
	supAdvanceUntil(t, sim, time.Second, func() bool { return a.restartCount() == 1 })
	// Restart healed the unit; the streak must reset and stay reset.
	supAdvanceUntil(t, sim, time.Second, func() bool { return s.Stats()[0].Probes >= 6 })
	if got := a.restartCount(); got != 1 {
		t.Fatalf("unit a restarted %d times; want exactly 1", got)
	}
	if b.restartCount() != 0 {
		t.Fatalf("sibling unit b restarted %d times", b.restartCount())
	}
	st := s.Stats()[0]
	if st.Failures < 2 || st.Restarts != 1 || st.ConsecutiveFailures != 0 {
		t.Fatalf("unit a stats = %+v", st)
	}
	if j.CountMatching(faults.KindDaemonRestart, "unit a") == 0 {
		t.Fatal("restart not journaled")
	}
}

func TestSupervisorReplyTimeoutCountsAsFailure(t *testing.T) {
	sim := clock.NewSim(time.Time{})
	a := newFakeUnit("a")
	s := newSupervisor(t, sim, nil, a)
	s.Start()
	defer s.Stop()
	a.set(true, true) // probe hangs; only the reply timeout can fail it
	// Advance in sub-timeout steps so the 250ms reply timer actually
	// fires between probe ticks.
	supAdvanceUntil(t, sim, 100*time.Millisecond, func() bool { return a.restartCount() == 1 })
	if st := s.Stats()[0]; st.Failures < 2 {
		t.Fatalf("hung probes not counted as failures: %+v", st)
	}
}

func TestSupervisorRestartErrorKeepsStreak(t *testing.T) {
	sim := clock.NewSim(time.Time{})
	a := newFakeUnit("a")
	a.restartErr = errors.New("still wedged")
	j := &faults.Journal{}
	s := newSupervisor(t, sim, j, a)
	s.Start()
	defer s.Stop()
	a.set(false, false)
	supAdvanceUntil(t, sim, time.Second, func() bool { return s.Stats()[0].RestartErrors >= 2 })
	if st := s.Stats()[0]; st.Restarts != 0 {
		t.Fatalf("failed restarts counted as successes: %+v", st)
	}
	if j.Count(faults.KindUnrecovered) == 0 {
		t.Fatal("restart failure not journaled as unrecovered")
	}
	// Clearing the fault lets the next threshold crossing recover it.
	a.mu.Lock()
	a.restartErr = nil
	a.mu.Unlock()
	supAdvanceUntil(t, sim, time.Second, func() bool { return a.restartCount() == 1 })
}

func TestSupervisorProbeLatencyRecorded(t *testing.T) {
	sim := clock.NewSim(time.Time{})
	a := newFakeUnit("a")
	s := newSupervisor(t, sim, nil, a)
	s.Start()
	defer s.Stop()
	supAdvanceUntil(t, sim, time.Second, func() bool { return s.Stats()[0].Probes >= 3 })
	if snap := s.ProbeLatency(); snap.Count < 3 {
		t.Fatalf("probe latency histogram has %d observations", snap.Count)
	}
}
