// Package mdc implements the Master Daemon Controller — the watchdog
// process that launches MyAlertBuddy, restarts it when it terminates,
// periodically probes it with a non-blocking AreYouWorking() call
// (signalled through event objects in the paper, modeled as a
// goroutine + timeout here), kills and restarts it when the probe goes
// unanswered, and reboots the machine when too many consecutive
// restarts fail.
package mdc

import (
	"errors"
	"sync"
	"time"

	"simba/internal/clock"
	"simba/internal/faults"
)

// Daemon is the process the MDC supervises. MyAlertBuddy implements it.
type Daemon interface {
	// Start launches a fresh incarnation. It returns an error when the
	// daemon cannot come up (e.g. the machine has no power).
	Start() error
	// Exited returns a channel closed when the current incarnation has
	// terminated, for any reason. It must reflect the incarnation
	// launched by the most recent successful Start.
	Exited() <-chan struct{}
	// Kill forcefully terminates the current incarnation. It must be
	// safe to call on an already-dead daemon.
	Kill()
	// AreYouWorking is the health callback. It may block indefinitely
	// when the daemon is hung — the MDC guards it with a reply timeout.
	AreYouWorking() bool
}

// Defaults for the controller, from Section 4.2.1: the AreYouWorking
// callback is invoked every three minutes.
const (
	DefaultProbePeriod  = 3 * time.Minute
	DefaultReplyTimeout = 30 * time.Second
	DefaultRestartDelay = 10 * time.Second
	DefaultMaxFailures  = 3
	DefaultBootTime     = 2 * time.Minute
)

// Config parameterizes a Controller.
type Config struct {
	// Clock drives all periods; required.
	Clock clock.Clock
	// Daemon is the supervised process; required.
	Daemon Daemon
	// ProbePeriod is how often AreYouWorking is invoked.
	ProbePeriod time.Duration
	// ReplyTimeout bounds how long the MDC waits for the reply event.
	ReplyTimeout time.Duration
	// RestartDelay is the pause before a restart attempt.
	RestartDelay time.Duration
	// MaxConsecutiveFailures is the failed-restart threshold beyond
	// which the MDC reboots the machine.
	MaxConsecutiveFailures int
	// Reboot performs the machine reboot; it should block until the
	// machine is back. Required when MaxConsecutiveFailures can be hit;
	// a nil Reboot makes the MDC keep retrying instead.
	Reboot func()
	// Journal records recovery actions. Optional.
	Journal *faults.Journal
}

// Controller is the watchdog. Create with New, drive with Run.
type Controller struct {
	cfg Config

	mu       sync.Mutex
	running  bool
	stop     chan struct{}
	restarts int // total daemon restarts performed (not the first start)
	reboots  int
}

// New validates the config and returns a Controller.
func New(cfg Config) (*Controller, error) {
	if cfg.Clock == nil || cfg.Daemon == nil {
		return nil, errors.New("mdc: Config requires Clock and Daemon")
	}
	if cfg.ProbePeriod <= 0 {
		cfg.ProbePeriod = DefaultProbePeriod
	}
	if cfg.ReplyTimeout <= 0 {
		cfg.ReplyTimeout = DefaultReplyTimeout
	}
	if cfg.RestartDelay <= 0 {
		cfg.RestartDelay = DefaultRestartDelay
	}
	if cfg.MaxConsecutiveFailures <= 0 {
		cfg.MaxConsecutiveFailures = DefaultMaxFailures
	}
	return &Controller{cfg: cfg}, nil
}

// Restarts returns how many times the MDC restarted the daemon (probe
// failures and observed terminations, not counting the initial start).
func (c *Controller) Restarts() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.restarts
}

// Reboots returns how many machine reboots the MDC escalated to.
func (c *Controller) Reboots() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.reboots
}

// Start launches the supervision loop in its own goroutine.
func (c *Controller) Start() {
	c.mu.Lock()
	if c.running {
		c.mu.Unlock()
		return
	}
	c.running = true
	stop := make(chan struct{})
	c.stop = stop
	c.mu.Unlock()
	go c.run(stop)
}

// Stop ends supervision and kills the daemon.
func (c *Controller) Stop() {
	c.mu.Lock()
	if !c.running {
		c.mu.Unlock()
		return
	}
	c.running = false
	close(c.stop)
	c.mu.Unlock()
}

func (c *Controller) run(stop chan struct{}) {
	failures := 0
	first := true
	for {
		select {
		case <-stop:
			c.cfg.Daemon.Kill()
			return
		default:
		}
		if err := c.cfg.Daemon.Start(); err != nil {
			failures++
			c.journal(faults.KindDaemonRestart, "daemon start failed (%d consecutive): %v", failures, err)
			if failures >= c.cfg.MaxConsecutiveFailures && c.cfg.Reboot != nil {
				c.journal(faults.KindMachineReboot, "restart threshold reached; rebooting machine")
				c.mu.Lock()
				c.reboots++
				c.mu.Unlock()
				c.cfg.Reboot()
				failures = 0
			}
			if !c.sleepInterruptible(stop, c.cfg.RestartDelay) {
				return
			}
			continue
		}
		failures = 0
		if !first {
			c.mu.Lock()
			c.restarts++
			c.mu.Unlock()
		}
		first = false
		if !c.superviseIncarnation(stop) {
			return
		}
		if !c.sleepInterruptible(stop, c.cfg.RestartDelay) {
			return
		}
	}
}

// superviseIncarnation watches one incarnation until it dies or is
// killed for failing a probe. It returns false when the controller is
// stopping.
func (c *Controller) superviseIncarnation(stop chan struct{}) bool {
	clk := c.cfg.Clock
	exited := c.cfg.Daemon.Exited()
	ticker := clk.NewTicker(c.cfg.ProbePeriod)
	defer ticker.Stop()
	for {
		select {
		case <-stop:
			c.cfg.Daemon.Kill()
			return false
		case <-exited:
			c.journal(faults.KindDaemonRestart, "daemon terminated; restarting")
			return true
		case <-ticker.C():
			if c.probe(exited) {
				continue
			}
			c.journal(faults.KindDaemonRestart, "AreYouWorking probe failed; killing and restarting daemon")
			c.cfg.Daemon.Kill()
			// Wait for termination so the next Start is clean.
			select {
			case <-exited:
			case <-stop:
				return false
			}
			return true
		}
	}
}

// probe performs the event-object handshake: trigger the client thread
// (a goroutine) to invoke AreYouWorking inside the daemon, and wait
// for the reply event no longer than ReplyTimeout.
func (c *Controller) probe(exited <-chan struct{}) bool {
	reply := make(chan bool, 1)
	go func() { reply <- c.cfg.Daemon.AreYouWorking() }()
	timer := c.cfg.Clock.NewTimer(c.cfg.ReplyTimeout)
	defer timer.Stop()
	select {
	case ok := <-reply:
		return ok
	case <-timer.C():
		return false
	case <-exited:
		// Died mid-probe; the supervision loop will see Exited too.
		return false
	}
}

// sleepInterruptible waits d, returning false if stopped first.
func (c *Controller) sleepInterruptible(stop chan struct{}, d time.Duration) bool {
	timer := c.cfg.Clock.NewTimer(d)
	defer timer.Stop()
	select {
	case <-stop:
		c.cfg.Daemon.Kill()
		return false
	case <-timer.C():
		return true
	}
}

func (c *Controller) journal(kind faults.Kind, format string, args ...any) {
	if c.cfg.Journal != nil {
		c.cfg.Journal.Recordf(c.cfg.Clock.Now(), kind, format, args...)
	}
}
