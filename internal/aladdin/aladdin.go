// Package aladdin simulates the Aladdin home networking system [9]
// that feeds SIMBA's home alerts: sensors and devices on heterogeneous
// in-home networks (powerline, phoneline, RF, IR) connected to the
// Internet through a home gateway. The paper's Section 5 scenario is
// modeled hop by hop: a remote-control press travels over RF to a
// powerline transceiver, a powerline monitor process on a PC turns it
// into a Soft-State Store update, the update replicates over the
// phoneline Ethernet multicast to the gateway's store, whose change
// event makes the Aladdin home server send an alert through SIMBA.
//
// Sensors are soft state: each sensor variable carries a refresh
// frequency and a missed-refresh budget, so a sensor whose battery
// dies stops refreshing and eventually raises a "Sensor Broken" alert
// (the paper's garage-door example).
//
// The package also provides the paper's pre-SIMBA baseline: delivering
// every alert as two duplicated emails plus two duplicated SMS
// messages (Section 2.3), used by experiment E6.
package aladdin

import (
	"errors"
	"fmt"
	"strings"
	"sync"
	"time"

	"simba/internal/alert"
	"simba/internal/clock"
	"simba/internal/core"
	"simba/internal/dist"
	"simba/internal/dmode"
	"simba/internal/sss"
)

// Default hop latencies, calibrated so the disarm scenario's
// trigger→user-IM path lands near the paper's 11-second average.
const (
	DefaultRFDelay         = 1 * time.Second
	DefaultPowerlineDelay  = 2 * time.Second
	DefaultProcessingDelay = 1 * time.Second
	DefaultPhonelineDelay  = 3 * time.Second
	DefaultSensorRefresh   = 30 * time.Second
	DefaultSensorMaxMissed = 3
)

// Variable name prefixes in the stores.
const (
	sensorPrefix   = "aladdin/sensor/"
	securityVar    = "aladdin/security/armed"
	aladdinPrefix  = "aladdin/"
	sourceName     = "aladdin"
	keywordOn      = "Sensor ON"
	keywordOff     = "Sensor OFF"
	keywordBroken  = "Sensor Broken"
	keywordSecData = "Security"
)

// Config parameterizes a Home.
type Config struct {
	// Clock and RNG are required.
	Clock clock.Clock
	RNG   *dist.RNG
	// Target is where the home server sends alerts (the buddy);
	// required.
	Target *core.Target
	// Hop latencies; zero selects the defaults above.
	RFDelay         time.Duration
	PowerlineDelay  time.Duration
	ProcessingDelay time.Duration
	PhonelineDelay  time.Duration
	// Sensor soft-state parameters; zero selects the defaults.
	SensorRefresh   time.Duration
	SensorMaxMissed int
	// MulticastLoss is the phoneline replication loss probability.
	MulticastLoss float64
	// OnReport observes every alert delivery. Optional.
	OnReport func(a *alert.Alert, rep *core.Report, err error)
}

// Home is the simulated Aladdin deployment: a monitor PC, a gateway
// PC, their replicated stores, the sensors, and the home server.
type Home struct {
	cfg     Config
	monitor *sss.Store // the PC running the powerline monitor process
	gateway *sss.Store // the home gateway machine
	mc      *sss.Multicast

	mu         sync.Mutex
	sensors    map[string]*Sensor
	alertsSent int
	hbStop     chan struct{}
}

// Sensor is one home sensor.
type Sensor struct {
	Name     string
	Critical bool

	mu      sync.Mutex
	state   string
	battery bool // true = has power
}

// State returns the sensor's last physical state.
func (s *Sensor) State() string {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.state
}

// BatteryOK reports whether the sensor can still refresh.
func (s *Sensor) BatteryOK() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.battery
}

// New builds a home.
func New(cfg Config) (*Home, error) {
	if cfg.Clock == nil || cfg.RNG == nil || cfg.Target == nil {
		return nil, errors.New("aladdin: Config requires Clock, RNG, and Target")
	}
	if cfg.RFDelay <= 0 {
		cfg.RFDelay = DefaultRFDelay
	}
	if cfg.PowerlineDelay <= 0 {
		cfg.PowerlineDelay = DefaultPowerlineDelay
	}
	if cfg.ProcessingDelay <= 0 {
		cfg.ProcessingDelay = DefaultProcessingDelay
	}
	if cfg.PhonelineDelay <= 0 {
		cfg.PhonelineDelay = DefaultPhonelineDelay
	}
	if cfg.SensorRefresh <= 0 {
		cfg.SensorRefresh = DefaultSensorRefresh
	}
	if cfg.SensorMaxMissed <= 0 {
		cfg.SensorMaxMissed = DefaultSensorMaxMissed
	}
	monitor, err := sss.NewStore(cfg.Clock, "monitor-pc")
	if err != nil {
		return nil, err
	}
	gateway, err := sss.NewStore(cfg.Clock, "gateway")
	if err != nil {
		return nil, err
	}
	mc, err := sss.NewMulticast(cfg.Clock, cfg.RNG, dist.Fixed(cfg.PhonelineDelay), cfg.MulticastLoss)
	if err != nil {
		return nil, err
	}
	mc.Join(monitor)
	mc.Join(gateway)
	h := &Home{
		cfg:     cfg,
		monitor: monitor,
		gateway: gateway,
		mc:      mc,
		sensors: make(map[string]*Sensor),
	}
	if err := monitor.Define(sss.Spec{
		Name:         securityVar,
		RefreshEvery: time.Minute,
		MaxMissed:    10,
	}); err != nil {
		return nil, err
	}
	// The home server: gateway store events become SIMBA alerts.
	gateway.Subscribe(aladdinPrefix, h.onGatewayEvent)
	return h, nil
}

// GatewayStore exposes the gateway's store (the WISH server shares the
// same infrastructure in the paper's testbed).
func (h *Home) GatewayStore() *sss.Store { return h.gateway }

// Multicast exposes replication counters.
func (h *Home) Multicast() *sss.Multicast { return h.mc }

// AlertsSent returns how many alerts the home server has sent.
func (h *Home) AlertsSent() int {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.alertsSent
}

// AddSensor installs a sensor on the home's networks.
func (h *Home) AddSensor(name string, critical bool) (*Sensor, error) {
	if name == "" {
		return nil, errors.New("aladdin: sensor requires a name")
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	if _, ok := h.sensors[name]; ok {
		return nil, fmt.Errorf("aladdin: sensor %q already installed", name)
	}
	if err := h.monitor.Define(sss.Spec{
		Name:         sensorPrefix + name,
		RefreshEvery: h.cfg.SensorRefresh,
		MaxMissed:    h.cfg.SensorMaxMissed,
	}); err != nil {
		return nil, err
	}
	s := &Sensor{Name: name, Critical: critical, state: "OFF", battery: true}
	h.sensors[name] = s
	// Initial state write so the variable is live.
	if err := h.monitor.Write(sensorPrefix+name, "OFF"); err != nil {
		return nil, err
	}
	return s, nil
}

// Sensor returns the named sensor.
func (h *Home) Sensor(name string) (*Sensor, bool) {
	h.mu.Lock()
	defer h.mu.Unlock()
	s, ok := h.sensors[name]
	return s, ok
}

// TriggerSensor simulates the physical sensor changing state: the
// signal crosses the sensor's network (RF), is converted by the
// powerline transceiver, and reaches the monitor PC, which updates the
// local store; replication then carries it to the gateway.
func (h *Home) TriggerSensor(name, state string) error {
	h.mu.Lock()
	s, ok := h.sensors[name]
	h.mu.Unlock()
	if !ok {
		return fmt.Errorf("aladdin: unknown sensor %q", name)
	}
	s.mu.Lock()
	s.state = state
	s.mu.Unlock()
	transit := h.cfg.RFDelay + h.cfg.PowerlineDelay + h.cfg.ProcessingDelay
	h.cfg.Clock.AfterFunc(transit, func() {
		_ = h.monitor.Write(sensorPrefix+name, state)
	})
	return nil
}

// PressRemote simulates the Section 5 scenario: the kid's remote
// control arms or disarms the security system.
func (h *Home) PressRemote(arm bool) {
	value := "armed"
	if !arm {
		value = "disarmed"
	}
	transit := h.cfg.RFDelay + h.cfg.PowerlineDelay + h.cfg.ProcessingDelay
	h.cfg.Clock.AfterFunc(transit, func() {
		_ = h.monitor.Write(securityVar, value)
	})
}

// SetBattery turns a sensor's battery on or off. A dead battery stops
// the heartbeats, so the soft-state variable eventually expires and
// the gateway raises a "Sensor Broken" alert.
func (h *Home) SetBattery(name string, ok bool) error {
	h.mu.Lock()
	s, found := h.sensors[name]
	h.mu.Unlock()
	if !found {
		return fmt.Errorf("aladdin: unknown sensor %q", name)
	}
	s.mu.Lock()
	s.battery = ok
	s.mu.Unlock()
	return nil
}

// StartHeartbeats begins refreshing every powered sensor's variable on
// its refresh period.
func (h *Home) StartHeartbeats() {
	h.mu.Lock()
	if h.hbStop != nil {
		h.mu.Unlock()
		return
	}
	stop := make(chan struct{})
	h.hbStop = stop
	h.mu.Unlock()
	go h.heartbeatLoop(stop)
}

// StopHeartbeats halts sensor refreshes.
func (h *Home) StopHeartbeats() {
	h.mu.Lock()
	if h.hbStop != nil {
		close(h.hbStop)
		h.hbStop = nil
	}
	h.mu.Unlock()
}

func (h *Home) heartbeatLoop(stop chan struct{}) {
	ticker := h.cfg.Clock.NewTicker(h.cfg.SensorRefresh)
	defer ticker.Stop()
	for {
		select {
		case <-stop:
			return
		case <-ticker.C():
			h.mu.Lock()
			sensors := make([]*Sensor, 0, len(h.sensors))
			for _, s := range h.sensors {
				sensors = append(sensors, s)
			}
			h.mu.Unlock()
			for _, s := range sensors {
				if s.BatteryOK() {
					_ = h.monitor.Refresh(sensorPrefix + s.Name)
				}
			}
		}
	}
}

// onGatewayEvent is the Aladdin home server: gateway store changes
// become SIMBA alerts.
func (h *Home) onGatewayEvent(ev sss.Event) {
	var a *alert.Alert
	switch {
	case ev.Var == securityVar:
		if ev.Kind == sss.EventExpired {
			return
		}
		a = &alert.Alert{
			ID:       alert.NextID("aladdin-sec"),
			Source:   sourceName,
			Keywords: []string{keywordSecData},
			Subject:  "Security system " + ev.Value,
			Body:     fmt.Sprintf("The home security system is now %s.", ev.Value),
			Urgency:  alert.UrgencyHigh,
			Created:  ev.At,
		}
	case strings.HasPrefix(ev.Var, sensorPrefix):
		name := strings.TrimPrefix(ev.Var, sensorPrefix)
		h.mu.Lock()
		s, ok := h.sensors[name]
		h.mu.Unlock()
		critical := ok && s.Critical
		switch ev.Kind {
		case sss.EventExpired:
			a = &alert.Alert{
				ID:       alert.NextID("aladdin-broken"),
				Source:   sourceName,
				Keywords: []string{keywordBroken},
				Subject:  fmt.Sprintf("%s Sensor Broken", title(name)),
				Body:     fmt.Sprintf("Sensor %q missed its refreshes (battery?).", name),
				Urgency:  alert.UrgencyHigh,
				Created:  ev.At,
			}
		case sss.EventUpdated, sss.EventCreated:
			if !critical {
				return // only critical sensors alert on state change
			}
			kw := keywordOff
			urgency := alert.UrgencyNormal
			if strings.EqualFold(ev.Value, "ON") {
				kw = keywordOn
				urgency = alert.UrgencyCritical
			}
			a = &alert.Alert{
				ID:       alert.NextID("aladdin-sensor"),
				Source:   sourceName,
				Keywords: []string{kw},
				Subject:  fmt.Sprintf("%s Sensor %s", title(name), strings.ToUpper(ev.Value)),
				Body:     fmt.Sprintf("Sensor %q changed to %s.", name, ev.Value),
				Urgency:  urgency,
				Created:  ev.At,
			}
		}
	}
	if a == nil {
		return
	}
	h.mu.Lock()
	h.alertsSent++
	h.mu.Unlock()
	rep, err := h.cfg.Target.Deliver(a)
	if h.cfg.OnReport != nil {
		h.cfg.OnReport(a, rep, err)
	}
}

// title capitalizes each '-'-separated word of a sensor name.
func title(name string) string {
	words := strings.Split(name, "-")
	for i, w := range words {
		if w == "" {
			continue
		}
		words[i] = strings.ToUpper(w[:1]) + w[1:]
	}
	return strings.Join(words, " ")
}

// NaiveRedundantMode is the pre-SIMBA Aladdin delivery policy
// (Section 2.3): every alert is sent as two duplicated emails and two
// duplicated cell-phone SMS messages — a single communication block
// with four fire-and-forget actions and no fallback structure. The
// address names are the friendly names in the user's registry.
func NaiveRedundantMode(email1, email2, sms1, sms2 string) *dmode.Mode {
	return &dmode.Mode{
		Name: "NaiveRedundant",
		Blocks: []dmode.Block{{
			Actions: []dmode.Action{
				{Address: email1}, {Address: email2},
				{Address: sms1}, {Address: sms2},
			},
		}},
	}
}
