package aladdin

import (
	"strings"
	"testing"
	"time"
)

// remoteFixture extends the package fixture with the gateway mailbox
// and remote control.
func newRemoteFixture(t *testing.T) (*fixture, *RemoteControl) {
	t.Helper()
	f := newFixture(t)
	// The fixture's email service already exists inside it; rebuild the
	// pieces we need via the home's clock. We reuse the same service by
	// plumbing through the collector fixture: simplest is a dedicated
	// service here.
	rc, err := f.home.EnableRemoteControl(f.emSvc, "home-gw@sim", []string{"Owner@Family.sim"})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(rc.Stop)
	return f, rc
}

func TestEnableRemoteControlValidation(t *testing.T) {
	f := newFixture(t)
	if _, err := f.home.EnableRemoteControl(nil, "x@sim", nil); err == nil {
		t.Fatal("nil service accepted")
	}
	if _, err := f.home.EnableRemoteControl(f.emSvc, "", nil); err == nil {
		t.Fatal("empty address accepted")
	}
}

func TestRemoteArmCommand(t *testing.T) {
	f, rc := newRemoteFixture(t)
	if err := f.emSvc.Submit("owner@family.sim", "home-gw@sim", "ALADDIN ARM", ""); err != nil {
		t.Fatal(err)
	}
	// Email transit (1s) + command poll + physical chain (~7s) + alert.
	f.advance(30*time.Second, time.Second)
	if rc.Executed() != 1 {
		t.Fatalf("Executed = %d", rc.Executed())
	}
	alerts := f.sentAlerts()
	if len(alerts) != 1 || !strings.Contains(alerts[0].Subject, "armed") {
		t.Fatalf("alerts = %+v", alerts)
	}
}

func TestRemoteSetSensorCommand(t *testing.T) {
	f, rc := newRemoteFixture(t)
	if _, err := f.home.AddSensor("basement-water", true); err != nil {
		t.Fatal(err)
	}
	f.advance(10*time.Second, time.Second)
	before := f.home.AlertsSent()
	if err := f.emSvc.Submit("owner@family.sim", "home-gw@sim", "ALADDIN SET basement-water ON", ""); err != nil {
		t.Fatal(err)
	}
	f.advance(30*time.Second, time.Second)
	if rc.Executed() != 1 {
		t.Fatalf("Executed = %d", rc.Executed())
	}
	if f.home.AlertsSent() != before+1 {
		t.Fatal("sensor command produced no alert")
	}
	s, _ := f.home.Sensor("basement-water")
	if s.State() != "ON" {
		t.Fatalf("sensor state = %q", s.State())
	}
}

func TestRemoteRejectsUnauthorizedAndMalformed(t *testing.T) {
	f, rc := newRemoteFixture(t)
	cases := []struct {
		from, subject string
	}{
		{"stranger@evil.sim", "ALADDIN DISARM"},      // unauthorized
		{"owner@family.sim", "hello there"},          // not a command
		{"owner@family.sim", "ALADDIN EXPLODE"},      // unknown verb
		{"owner@family.sim", "ALADDIN SET x"},        // malformed SET
		{"owner@family.sim", "ALADDIN SET ghost ON"}, // unknown sensor
	}
	for _, c := range cases {
		if err := f.emSvc.Submit(c.from, "home-gw@sim", c.subject, ""); err != nil {
			t.Fatal(err)
		}
	}
	f.advance(30*time.Second, time.Second)
	if rc.Executed() != 0 {
		t.Fatalf("Executed = %d", rc.Executed())
	}
	if rc.Rejected() != len(cases) {
		t.Fatalf("Rejected = %d, want %d", rc.Rejected(), len(cases))
	}
}

func TestRemoteStopHaltsProcessing(t *testing.T) {
	f, rc := newRemoteFixture(t)
	rc.Stop()
	rc.Stop() // idempotent
	if err := f.emSvc.Submit("owner@family.sim", "home-gw@sim", "ALADDIN ARM", ""); err != nil {
		t.Fatal(err)
	}
	f.advance(30*time.Second, time.Second)
	if rc.Executed() != 0 {
		t.Fatal("stopped remote control executed a command")
	}
}
