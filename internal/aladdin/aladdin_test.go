package aladdin

import (
	"strings"
	"sync"
	"testing"
	"time"

	"simba/internal/addr"
	"simba/internal/alert"
	"simba/internal/clock"
	"simba/internal/core"
	"simba/internal/dist"
	"simba/internal/dmode"
	"simba/internal/email"
)

// fixture delivers home alerts into a collector mailbox.
type fixture struct {
	t     *testing.T
	sim   *clock.Sim
	home  *Home
	emSvc *email.Service
	inbox *email.Mailbox

	mu      sync.Mutex
	alerts  []*alert.Alert
	reports []*core.Report
}

func newFixture(t *testing.T) *fixture {
	t.Helper()
	sim := clock.NewSim(time.Time{})
	emSvc, err := email.NewService(email.Config{Clock: sim, RNG: dist.NewRNG(1), Delay: dist.Fixed(time.Second)})
	if err != nil {
		t.Fatal(err)
	}
	inbox, err := emSvc.CreateMailbox("buddy@sim")
	if err != nil {
		t.Fatal(err)
	}
	sender, err := core.NewDirectEmail(emSvc, "home@sim")
	if err != nil {
		t.Fatal(err)
	}
	engine, err := core.NewEngine(sim, nil, sender)
	if err != nil {
		t.Fatal(err)
	}
	reg := addr.NewRegistry("buddy")
	if err := reg.Register(addr.Address{Type: addr.TypeEmail, Name: "Buddy email", Target: "buddy@sim", Enabled: true}); err != nil {
		t.Fatal(err)
	}
	mode := &dmode.Mode{Name: "email", Blocks: []dmode.Block{{Actions: []dmode.Action{{Address: "Buddy email"}}}}}
	target, err := core.NewTarget(engine, reg, mode)
	if err != nil {
		t.Fatal(err)
	}
	f := &fixture{t: t, sim: sim, emSvc: emSvc, inbox: inbox}
	home, err := New(Config{
		Clock:  sim,
		RNG:    dist.NewRNG(2),
		Target: target,
		OnReport: func(a *alert.Alert, rep *core.Report, err error) {
			f.mu.Lock()
			f.alerts = append(f.alerts, a)
			f.reports = append(f.reports, rep)
			f.mu.Unlock()
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	f.home = home
	return f
}

func (f *fixture) advance(total, step time.Duration) {
	f.t.Helper()
	for elapsed := time.Duration(0); elapsed < total; elapsed += step {
		f.sim.Advance(step)
		time.Sleep(time.Millisecond)
	}
}

func (f *fixture) sentAlerts() []*alert.Alert {
	f.mu.Lock()
	defer f.mu.Unlock()
	return append([]*alert.Alert(nil), f.alerts...)
}

func TestNewValidation(t *testing.T) {
	if _, err := New(Config{}); err == nil {
		t.Fatal("empty config accepted")
	}
}

func TestAddSensor(t *testing.T) {
	f := newFixture(t)
	if _, err := f.home.AddSensor("", true); err == nil {
		t.Fatal("unnamed sensor accepted")
	}
	s, err := f.home.AddSensor("basement-water", true)
	if err != nil {
		t.Fatal(err)
	}
	if s.State() != "OFF" || !s.BatteryOK() || !s.Critical {
		t.Fatalf("sensor = %+v", s)
	}
	if _, err := f.home.AddSensor("basement-water", true); err == nil {
		t.Fatal("duplicate sensor accepted")
	}
	if _, ok := f.home.Sensor("basement-water"); !ok {
		t.Fatal("Sensor lookup failed")
	}
}

func TestCriticalSensorAlertChain(t *testing.T) {
	f := newFixture(t)
	if _, err := f.home.AddSensor("basement-water", true); err != nil {
		t.Fatal(err)
	}
	// Let the initial write replicate quietly (it is a Created event for
	// a critical sensor, producing the install-time alert).
	f.advance(10*time.Second, time.Second)
	preexisting := f.home.AlertsSent()

	start := f.sim.Now()
	if err := f.home.TriggerSensor("basement-water", "ON"); err != nil {
		t.Fatal(err)
	}
	f.advance(15*time.Second, 500*time.Millisecond)
	alerts := f.sentAlerts()
	if f.home.AlertsSent() != preexisting+1 || len(alerts) < 1 {
		t.Fatalf("AlertsSent = %d", f.home.AlertsSent())
	}
	last := alerts[len(alerts)-1]
	if last.Subject != "Basement Water Sensor ON" {
		t.Fatalf("subject = %q", last.Subject)
	}
	if last.Keywords[0] != "Sensor ON" || last.Urgency != alert.UrgencyCritical {
		t.Fatalf("alert = %+v", last)
	}
	// Chain latency: RF 1s + powerline 2s + processing 1s + phoneline 3s = 7s.
	if got := last.Created.Sub(start); got < 6*time.Second || got > 9*time.Second {
		t.Fatalf("sensor→alert latency = %v, want ~7s", got)
	}
}

func TestNonCriticalSensorStaysQuiet(t *testing.T) {
	f := newFixture(t)
	if _, err := f.home.AddSensor("hallway-light", false); err != nil {
		t.Fatal(err)
	}
	f.advance(10*time.Second, time.Second)
	before := f.home.AlertsSent()
	if err := f.home.TriggerSensor("hallway-light", "ON"); err != nil {
		t.Fatal(err)
	}
	f.advance(15*time.Second, time.Second)
	if f.home.AlertsSent() != before {
		t.Fatal("non-critical sensor raised an alert")
	}
}

func TestTriggerUnknownSensor(t *testing.T) {
	f := newFixture(t)
	if err := f.home.TriggerSensor("ghost", "ON"); err == nil {
		t.Fatal("unknown sensor accepted")
	}
	if err := f.home.SetBattery("ghost", false); err == nil {
		t.Fatal("unknown sensor battery accepted")
	}
}

func TestDisarmScenario(t *testing.T) {
	f := newFixture(t)
	start := f.sim.Now()
	f.home.PressRemote(false)
	f.advance(15*time.Second, 500*time.Millisecond)
	alerts := f.sentAlerts()
	if len(alerts) != 1 {
		t.Fatalf("got %d alerts", len(alerts))
	}
	a := alerts[0]
	if !strings.Contains(a.Subject, "disarmed") || a.Keywords[0] != "Security" {
		t.Fatalf("alert = %+v", a)
	}
	if got := a.Created.Sub(start); got < 6*time.Second || got > 9*time.Second {
		t.Fatalf("remote→alert latency = %v", got)
	}
}

func TestDeadBatterySensorBrokenAlert(t *testing.T) {
	f := newFixture(t)
	if _, err := f.home.AddSensor("garage-door", false); err != nil {
		t.Fatal(err)
	}
	f.home.StartHeartbeats()
	defer f.home.StopHeartbeats()
	// Healthy heartbeats: no expiry for many periods.
	f.advance(3*time.Minute, 10*time.Second)
	if got := f.home.AlertsSent(); got != 0 {
		t.Fatalf("alerts with healthy battery = %d", got)
	}
	// Battery dies: refresh stops; deadline = 30s × 4 = 2min.
	if err := f.home.SetBattery("garage-door", false); err != nil {
		t.Fatal(err)
	}
	f.advance(5*time.Minute, 10*time.Second)
	alerts := f.sentAlerts()
	if len(alerts) != 1 {
		t.Fatalf("got %d alerts", len(alerts))
	}
	if alerts[0].Subject != "Garage Door Sensor Broken" {
		t.Fatalf("subject = %q", alerts[0].Subject)
	}
	if alerts[0].Keywords[0] != "Sensor Broken" {
		t.Fatalf("keywords = %v", alerts[0].Keywords)
	}
}

func TestAlertsReachTheBuddyMailbox(t *testing.T) {
	f := newFixture(t)
	f.home.PressRemote(true)
	f.advance(20*time.Second, time.Second)
	msgs := f.inbox.Fetch()
	if len(msgs) != 1 {
		t.Fatalf("buddy mailbox has %d messages", len(msgs))
	}
	var a alert.Alert
	if err := a.UnmarshalText([]byte(msgs[0].Body)); err != nil {
		t.Fatalf("payload: %v", err)
	}
	if a.Source != "aladdin" {
		t.Fatalf("source = %q", a.Source)
	}
}

func TestNaiveRedundantMode(t *testing.T) {
	m := NaiveRedundantMode("Work email", "Home email", "Cell SMS", "Cell SMS 2")
	if err := m.Validate(); err != nil {
		t.Fatal(err)
	}
	if len(m.Blocks) != 1 || len(m.Blocks[0].Actions) != 4 {
		t.Fatalf("mode shape = %+v", m)
	}
}

func TestTitleHelper(t *testing.T) {
	for in, want := range map[string]string{
		"basement-water": "Basement Water",
		"garage-door":    "Garage Door",
		"x":              "X",
		"a--b":           "A  B",
	} {
		if got := title(in); got != want {
			t.Fatalf("title(%q) = %q, want %q", in, got, want)
		}
	}
}
