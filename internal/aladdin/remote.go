package aladdin

import (
	"errors"
	"fmt"
	"strings"
	"sync"
	"time"

	"simba/internal/email"
)

// RemoteControl implements Aladdin's secure, email-based remote home
// automation (Section 2.3): the home gateway owns a mailbox; email
// from an authorized sender whose subject carries a command is
// executed against the house. Unauthorized or malformed commands are
// counted and dropped.
//
// Command grammar (subject line):
//
//	ALADDIN ARM            — arm the security system
//	ALADDIN DISARM         — disarm the security system
//	ALADDIN SET <sensor> <state>
type RemoteControl struct {
	home *Home
	mb   *email.Mailbox

	mu         sync.Mutex
	authorized map[string]bool
	executed   int
	rejected   int
	stop       chan struct{}
}

// EnableRemoteControl provisions (or reuses) the gateway mailbox and
// starts executing commands from the authorized senders.
func (h *Home) EnableRemoteControl(svc *email.Service, address string, authorized []string) (*RemoteControl, error) {
	if svc == nil || address == "" {
		return nil, errors.New("aladdin: remote control requires an email service and address")
	}
	mb, ok := svc.Mailbox(address)
	if !ok {
		var err error
		mb, err = svc.CreateMailbox(address)
		if err != nil {
			return nil, err
		}
	}
	rc := &RemoteControl{
		home:       h,
		mb:         mb,
		authorized: make(map[string]bool, len(authorized)),
		stop:       make(chan struct{}),
	}
	for _, a := range authorized {
		rc.authorized[strings.ToLower(a)] = true
	}
	go rc.run()
	return rc, nil
}

// Executed returns how many commands ran.
func (rc *RemoteControl) Executed() int {
	rc.mu.Lock()
	defer rc.mu.Unlock()
	return rc.executed
}

// Rejected returns how many messages were dropped (unauthorized sender
// or malformed command).
func (rc *RemoteControl) Rejected() int {
	rc.mu.Lock()
	defer rc.mu.Unlock()
	return rc.rejected
}

// Stop halts command processing.
func (rc *RemoteControl) Stop() {
	select {
	case <-rc.stop:
	default:
		close(rc.stop)
	}
}

func (rc *RemoteControl) run() {
	ticker := rc.home.cfg.Clock.NewTicker(5 * time.Second)
	defer ticker.Stop()
	for {
		select {
		case <-rc.stop:
			return
		case <-rc.mb.Notify():
		case <-ticker.C():
		}
		select {
		case <-rc.stop:
			return
		default:
		}
		for _, msg := range rc.mb.Fetch() {
			rc.handle(msg)
		}
	}
}

func (rc *RemoteControl) handle(msg email.Message) {
	rc.mu.Lock()
	ok := rc.authorized[strings.ToLower(msg.From)]
	rc.mu.Unlock()
	if !ok {
		rc.reject()
		return
	}
	if err := rc.execute(msg.Subject); err != nil {
		rc.reject()
		return
	}
	rc.mu.Lock()
	rc.executed++
	rc.mu.Unlock()
}

func (rc *RemoteControl) reject() {
	rc.mu.Lock()
	rc.rejected++
	rc.mu.Unlock()
}

// execute parses and runs one command subject.
func (rc *RemoteControl) execute(subject string) error {
	fields := strings.Fields(strings.TrimSpace(subject))
	if len(fields) < 2 || !strings.EqualFold(fields[0], "ALADDIN") {
		return fmt.Errorf("aladdin: not a command: %q", subject)
	}
	switch strings.ToUpper(fields[1]) {
	case "ARM":
		rc.home.PressRemote(true)
		return nil
	case "DISARM":
		rc.home.PressRemote(false)
		return nil
	case "SET":
		if len(fields) != 4 {
			return fmt.Errorf("aladdin: SET wants <sensor> <state>: %q", subject)
		}
		return rc.home.TriggerSensor(fields[2], strings.ToUpper(fields[3]))
	default:
		return fmt.Errorf("aladdin: unknown command %q", fields[1])
	}
}
