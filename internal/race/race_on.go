//go:build race

package race

// Enabled reports whether the binary was built with -race.
const Enabled = true
