//go:build !race

// Package race exposes whether the race detector is compiled in, so
// tests can relax allocation assertions that the detector perturbs
// (sync.Pool intentionally drops puts under -race) while still running
// the code paths for the race matrix.
package race

// Enabled reports whether the binary was built with -race.
const Enabled = false
