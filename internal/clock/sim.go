package clock

import (
	"container/heap"
	"runtime"
	"sync"
	"time"
)

// Sim is a discrete-event simulated Clock. Virtual time stands still
// until the owner calls Advance (or AdvanceTo), which fires the pending
// timers whose deadlines fall inside the advanced window, in deadline
// order. Between every fired event the Sim yields the processor several
// times so that goroutines woken by the event can run and schedule
// follow-up events before time moves past them.
//
// Sim is safe for concurrent use. Advance must not be called
// concurrently with itself.
type Sim struct {
	mu      sync.Mutex
	now     time.Time
	queue   eventQueue
	seq     uint64
	waiters int
	// settleRounds controls how many scheduler yields happen after each
	// fired event before the queue is re-examined.
	settleRounds int
}

var _ Clock = (*Sim)(nil)

// defaultEpoch is the virtual time a NewSim starts at when the caller
// passes the zero time: 2001-03-26 09:00 UTC, the date on the SIMBA
// technical report.
var defaultEpoch = time.Date(2001, time.March, 26, 9, 0, 0, 0, time.UTC)

// NewSim returns a simulated clock starting at start. If start is the
// zero time, a fixed default epoch is used so tests are reproducible.
func NewSim(start time.Time) *Sim {
	if start.IsZero() {
		start = defaultEpoch
	}
	return &Sim{now: start, settleRounds: 64}
}

// Now implements Clock.
func (s *Sim) Now() time.Time {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.now
}

// Since implements Clock.
func (s *Sim) Since(t time.Time) time.Duration { return s.Now().Sub(t) }

// Sleep implements Clock. It blocks until the virtual clock has
// advanced by d. A non-positive d yields once and returns.
func (s *Sim) Sleep(d time.Duration) {
	if d <= 0 {
		runtime.Gosched()
		return
	}
	<-s.After(d)
}

// After implements Clock.
func (s *Sim) After(d time.Duration) <-chan time.Time {
	return s.NewTimer(d).C()
}

// NewTimer implements Clock.
func (s *Sim) NewTimer(d time.Duration) Timer {
	t := &simTimer{sim: s, ch: make(chan time.Time, 1)}
	s.mu.Lock()
	s.waiters++
	t.ev = s.scheduleLocked(d, t.fire)
	s.mu.Unlock()
	return t
}

// AfterFunc implements Clock. f runs in its own goroutine, matching
// time.AfterFunc semantics.
func (s *Sim) AfterFunc(d time.Duration, f func()) Timer {
	t := &simTimer{sim: s, fn: f}
	s.mu.Lock()
	s.waiters++
	t.ev = s.scheduleLocked(d, t.fire)
	s.mu.Unlock()
	return t
}

// NewTicker implements Clock. The ticker reschedules itself inside the
// clock, so ticks keep coming even if the consuming goroutine lags;
// like time.Ticker, ticks are dropped rather than buffered when the
// consumer is slow.
func (s *Sim) NewTicker(d time.Duration) Ticker {
	if d <= 0 {
		panic("clock: non-positive ticker period")
	}
	t := &simTicker{sim: s, period: d, ch: make(chan time.Time, 1)}
	s.mu.Lock()
	s.waiters++
	t.ev = s.scheduleLocked(d, t.fire)
	s.mu.Unlock()
	return t
}

// Waiters reports how many timers and tickers are currently pending.
// Tests can use it to confirm that the system under test has parked
// before advancing time.
func (s *Sim) Waiters() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.waiters
}

// BlockUntil busy-waits (with scheduler yields) until at least n timers
// or tickers are pending. It is a synchronization aid for tests.
func (s *Sim) BlockUntil(n int) {
	for {
		if s.Waiters() >= n {
			return
		}
		runtime.Gosched()
	}
}

// Advance moves virtual time forward by d, firing every timer whose
// deadline falls in the window, in deadline order.
func (s *Sim) Advance(d time.Duration) {
	s.AdvanceTo(s.Now().Add(d))
}

// AdvanceTo moves virtual time forward to target, firing every timer
// whose deadline is at or before target, in deadline order. Events
// scheduled by woken goroutines that also land inside the window are
// fired in the same pass. AdvanceTo returns once the queue holds no
// event at or before target and the clock reads target.
func (s *Sim) AdvanceTo(target time.Time) {
	for {
		s.mu.Lock()
		if len(s.queue) == 0 || s.queue[0].when.After(target) {
			if s.now.Before(target) {
				s.now = target
			}
			s.mu.Unlock()
			s.settle()
			// A settled goroutine may have scheduled a new event inside
			// the window; loop once more to catch it.
			s.mu.Lock()
			done := len(s.queue) == 0 || s.queue[0].when.After(target)
			s.mu.Unlock()
			if done {
				return
			}
			continue
		}
		ev := heap.Pop(&s.queue).(*event)
		if ev.when.After(s.now) {
			s.now = ev.when
		}
		s.waiters--
		fire := ev.fire
		s.mu.Unlock()
		fire(ev.when)
		s.settle()
	}
}

// settle yields the processor repeatedly so goroutines woken by a fired
// event get a chance to run and schedule their next timer before the
// simulation advances further.
func (s *Sim) settle() {
	s.mu.Lock()
	rounds := s.settleRounds
	s.mu.Unlock()
	for i := 0; i < rounds; i++ {
		runtime.Gosched()
	}
}

// SetSettleRounds tunes how many scheduler yields follow each fired
// event. Larger values trade speed for scheduling robustness.
func (s *Sim) SetSettleRounds(n int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if n < 1 {
		n = 1
	}
	s.settleRounds = n
}

// scheduleLocked inserts an event d from now. The caller holds s.mu.
func (s *Sim) scheduleLocked(d time.Duration, fire func(time.Time)) *event {
	if d < 0 {
		d = 0
	}
	s.seq++
	ev := &event{when: s.now.Add(d), seq: s.seq, fire: fire}
	heap.Push(&s.queue, ev)
	return ev
}

// removeLocked removes ev from the queue if still pending, reporting
// whether it was removed. The caller holds s.mu.
func (s *Sim) removeLocked(ev *event) bool {
	if ev.index < 0 {
		return false
	}
	heap.Remove(&s.queue, ev.index)
	s.waiters--
	return true
}

// event is a scheduled timer firing.
type event struct {
	when  time.Time
	seq   uint64 // tiebreak: earlier scheduled fires first
	fire  func(time.Time)
	index int // heap index; -1 once popped or removed
}

type eventQueue []*event

func (q eventQueue) Len() int { return len(q) }

func (q eventQueue) Less(i, j int) bool {
	if !q[i].when.Equal(q[j].when) {
		return q[i].when.Before(q[j].when)
	}
	return q[i].seq < q[j].seq
}

func (q eventQueue) Swap(i, j int) {
	q[i], q[j] = q[j], q[i]
	q[i].index = i
	q[j].index = j
}

func (q *eventQueue) Push(x any) {
	ev := x.(*event)
	ev.index = len(*q)
	*q = append(*q, ev)
}

func (q *eventQueue) Pop() any {
	old := *q
	n := len(old)
	ev := old[n-1]
	old[n-1] = nil
	ev.index = -1
	*q = old[:n-1]
	return ev
}

// simTimer implements Timer for Sim. Exactly one of ch and fn is set.
type simTimer struct {
	sim *Sim
	ch  chan time.Time
	fn  func()

	mu sync.Mutex
	ev *event
}

func (t *simTimer) C() <-chan time.Time { return t.ch }

func (t *simTimer) fire(when time.Time) {
	t.mu.Lock()
	t.ev = nil
	t.mu.Unlock()
	if t.fn != nil {
		go t.fn()
		return
	}
	select {
	case t.ch <- when:
	default:
	}
}

func (t *simTimer) Stop() bool {
	t.sim.mu.Lock()
	defer t.sim.mu.Unlock()
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.ev == nil {
		return false
	}
	removed := t.sim.removeLocked(t.ev)
	t.ev = nil
	return removed
}

func (t *simTimer) Reset(d time.Duration) bool {
	t.sim.mu.Lock()
	defer t.sim.mu.Unlock()
	t.mu.Lock()
	defer t.mu.Unlock()
	active := false
	if t.ev != nil {
		active = t.sim.removeLocked(t.ev)
	}
	t.sim.waiters++
	t.ev = t.sim.scheduleLocked(d, t.fire)
	return active
}

// simTicker implements Ticker for Sim.
type simTicker struct {
	sim    *Sim
	period time.Duration
	ch     chan time.Time

	mu      sync.Mutex
	ev      *event
	stopped bool
}

func (t *simTicker) C() <-chan time.Time { return t.ch }

func (t *simTicker) fire(when time.Time) {
	select {
	case t.ch <- when:
	default:
	}
	// Reschedule inside the clock so periodic activity continues without
	// requiring the consuming goroutine to run first.
	t.sim.mu.Lock()
	defer t.sim.mu.Unlock()
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.stopped {
		return
	}
	t.sim.waiters++
	t.ev = t.sim.scheduleLocked(t.period, t.fire)
}

func (t *simTicker) Stop() {
	t.sim.mu.Lock()
	defer t.sim.mu.Unlock()
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.stopped {
		return
	}
	t.stopped = true
	if t.ev != nil {
		t.sim.removeLocked(t.ev)
		t.ev = nil
	}
}
