package clock

import "time"

// Real is a Clock backed by package time. The zero value is ready to use.
type Real struct{}

var _ Clock = Real{}

// NewReal returns a Clock backed by the wall clock.
func NewReal() Real { return Real{} }

// Now implements Clock.
func (Real) Now() time.Time { return time.Now() }

// Sleep implements Clock.
func (Real) Sleep(d time.Duration) { time.Sleep(d) }

// After implements Clock.
func (Real) After(d time.Duration) <-chan time.Time { return time.After(d) }

// Since implements Clock.
func (Real) Since(t time.Time) time.Duration { return time.Since(t) }

// NewTimer implements Clock.
func (Real) NewTimer(d time.Duration) Timer { return realTimer{time.NewTimer(d)} }

// AfterFunc implements Clock.
func (Real) AfterFunc(d time.Duration, f func()) Timer {
	return realTimer{time.AfterFunc(d, f)}
}

// NewTicker implements Clock.
func (Real) NewTicker(d time.Duration) Ticker { return realTicker{time.NewTicker(d)} }

type realTimer struct{ t *time.Timer }

func (rt realTimer) C() <-chan time.Time        { return rt.t.C }
func (rt realTimer) Stop() bool                 { return rt.t.Stop() }
func (rt realTimer) Reset(d time.Duration) bool { return rt.t.Reset(d) }

type realTicker struct{ t *time.Ticker }

func (rt realTicker) C() <-chan time.Time { return rt.t.C }
func (rt realTicker) Stop()               { rt.t.Stop() }
