package clock

import (
	"sort"
	"sync"
	"sync/atomic"
	"testing"
	"testing/quick"
	"time"
)

func TestSimNowStartsAtEpoch(t *testing.T) {
	s := NewSim(time.Time{})
	if got := s.Now(); !got.Equal(defaultEpoch) {
		t.Fatalf("Now() = %v, want %v", got, defaultEpoch)
	}
}

func TestSimNowCustomStart(t *testing.T) {
	start := time.Date(2000, 11, 7, 0, 0, 0, 0, time.UTC)
	s := NewSim(start)
	if got := s.Now(); !got.Equal(start) {
		t.Fatalf("Now() = %v, want %v", got, start)
	}
}

func TestSimAdvanceMovesNow(t *testing.T) {
	s := NewSim(time.Time{})
	start := s.Now()
	s.Advance(42 * time.Second)
	if got := s.Since(start); got != 42*time.Second {
		t.Fatalf("advanced %v, want 42s", got)
	}
}

func TestSimTimerFiresAtDeadline(t *testing.T) {
	s := NewSim(time.Time{})
	tm := s.NewTimer(5 * time.Second)
	s.Advance(4 * time.Second)
	select {
	case <-tm.C():
		t.Fatal("timer fired before deadline")
	default:
	}
	s.Advance(time.Second)
	select {
	case when := <-tm.C():
		if want := s.Now(); !when.Equal(want) {
			t.Fatalf("fired at %v, want %v", when, want)
		}
	default:
		t.Fatal("timer did not fire at deadline")
	}
}

func TestSimTimerStop(t *testing.T) {
	s := NewSim(time.Time{})
	tm := s.NewTimer(time.Second)
	if !tm.Stop() {
		t.Fatal("Stop() = false on pending timer")
	}
	if tm.Stop() {
		t.Fatal("second Stop() = true")
	}
	s.Advance(2 * time.Second)
	select {
	case <-tm.C():
		t.Fatal("stopped timer fired")
	default:
	}
}

func TestSimTimerReset(t *testing.T) {
	s := NewSim(time.Time{})
	tm := s.NewTimer(time.Second)
	if !tm.Reset(10 * time.Second) {
		t.Fatal("Reset on active timer should report true")
	}
	s.Advance(5 * time.Second)
	select {
	case <-tm.C():
		t.Fatal("reset timer fired early")
	default:
	}
	s.Advance(5 * time.Second)
	select {
	case <-tm.C():
	default:
		t.Fatal("reset timer did not fire")
	}
}

func TestSimAfterFuncRuns(t *testing.T) {
	s := NewSim(time.Time{})
	var ran atomic.Bool
	s.AfterFunc(time.Minute, func() { ran.Store(true) })
	s.Advance(59 * time.Second)
	if ran.Load() {
		t.Fatal("AfterFunc ran early")
	}
	s.Advance(time.Second)
	waitTrue(t, &ran)
}

func TestSimSleepWakes(t *testing.T) {
	s := NewSim(time.Time{})
	var done atomic.Bool
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		s.Sleep(3 * time.Second)
		done.Store(true)
	}()
	s.BlockUntil(1)
	s.Advance(3 * time.Second)
	wg.Wait()
	if !done.Load() {
		t.Fatal("sleeper did not wake")
	}
}

func TestSimTickerTicks(t *testing.T) {
	s := NewSim(time.Time{})
	tk := s.NewTicker(10 * time.Second)
	var ticks atomic.Int32
	var wg sync.WaitGroup
	stop := make(chan struct{})
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			select {
			case <-tk.C():
				ticks.Add(1)
			case <-stop:
				return
			}
		}
	}()
	for i := 0; i < 5; i++ {
		s.Advance(10 * time.Second)
	}
	got := ticks.Load()
	if got < 4 || got > 5 {
		t.Fatalf("got %d ticks over 50s of a 10s ticker, want 4-5", got)
	}
	tk.Stop()
	close(stop)
	wg.Wait()
	before := ticks.Load()
	s.Advance(time.Minute)
	if ticks.Load() != before {
		t.Fatal("ticker ticked after Stop")
	}
}

func TestSimTickerSelfReschedulesWithoutConsumer(t *testing.T) {
	// Even with nobody reading C(), the ticker must keep itself in the
	// queue (ticks coalesce, as with time.Ticker).
	s := NewSim(time.Time{})
	tk := s.NewTicker(time.Second)
	defer tk.Stop()
	s.Advance(10 * time.Second)
	if s.Waiters() == 0 {
		t.Fatal("ticker fell out of the queue")
	}
	select {
	case <-tk.C():
	default:
		t.Fatal("no tick buffered")
	}
}

func TestSimDeadlineOrdering(t *testing.T) {
	s := NewSim(time.Time{})
	var mu sync.Mutex
	var order []int
	for i, d := range []time.Duration{5 * time.Second, time.Second, 3 * time.Second} {
		i := i
		s.AfterFunc(d, func() {
			mu.Lock()
			order = append(order, i)
			mu.Unlock()
		})
	}
	s.Advance(10 * time.Second)
	waitFor(t, func() bool { mu.Lock(); defer mu.Unlock(); return len(order) == 3 })
	mu.Lock()
	defer mu.Unlock()
	want := []int{1, 2, 0}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("fire order %v, want %v", order, want)
		}
	}
}

func TestSimSameDeadlineFIFO(t *testing.T) {
	s := NewSim(time.Time{})
	var mu sync.Mutex
	var order []int
	for i := 0; i < 8; i++ {
		i := i
		s.AfterFunc(time.Second, func() {
			mu.Lock()
			order = append(order, i)
			mu.Unlock()
		})
	}
	s.Advance(time.Second)
	waitFor(t, func() bool { mu.Lock(); defer mu.Unlock(); return len(order) == 8 })
	mu.Lock()
	defer mu.Unlock()
	if !sort.IntsAreSorted(order) {
		t.Fatalf("same-deadline events fired out of scheduling order: %v", order)
	}
}

func TestSimChainedTimersWithinOneAdvance(t *testing.T) {
	// A goroutine woken mid-window schedules a follow-up timer that also
	// lands inside the window; one AdvanceTo must fire both.
	s := NewSim(time.Time{})
	var done atomic.Bool
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		s.Sleep(time.Second)
		s.Sleep(time.Second)
		done.Store(true)
	}()
	s.BlockUntil(1)
	s.Advance(5 * time.Second)
	wg.Wait()
	if !done.Load() {
		t.Fatal("chained sleeper did not complete")
	}
}

func TestSimNowMonotonicDuringAdvance(t *testing.T) {
	s := NewSim(time.Time{})
	var mu sync.Mutex
	var stamps []time.Time
	for i := 1; i <= 20; i++ {
		d := time.Duration(i) * time.Second
		s.AfterFunc(d, func() {
			mu.Lock()
			stamps = append(stamps, s.Now())
			mu.Unlock()
		})
	}
	s.Advance(25 * time.Second)
	waitFor(t, func() bool { mu.Lock(); defer mu.Unlock(); return len(stamps) == 20 })
	mu.Lock()
	defer mu.Unlock()
	for i := 1; i < len(stamps); i++ {
		if stamps[i].Before(stamps[i-1]) {
			t.Fatalf("Now() went backwards: %v after %v", stamps[i], stamps[i-1])
		}
	}
}

func TestSimWaitersCount(t *testing.T) {
	s := NewSim(time.Time{})
	t1 := s.NewTimer(time.Second)
	t2 := s.NewTimer(2 * time.Second)
	if got := s.Waiters(); got != 2 {
		t.Fatalf("Waiters() = %d, want 2", got)
	}
	t1.Stop()
	if got := s.Waiters(); got != 1 {
		t.Fatalf("Waiters() after Stop = %d, want 1", got)
	}
	s.Advance(2 * time.Second)
	if got := s.Waiters(); got != 0 {
		t.Fatalf("Waiters() after fire = %d, want 0", got)
	}
	_ = t2
}

func TestSimAdvancePropertyAllTimersBeforeTargetFire(t *testing.T) {
	// Property: after AdvanceTo(T), every timer with deadline <= T has
	// fired and none with deadline > T has.
	f := func(delaysMs []uint16, windowMs uint16) bool {
		if len(delaysMs) == 0 {
			return true
		}
		if len(delaysMs) > 64 {
			delaysMs = delaysMs[:64]
		}
		s := NewSim(time.Time{})
		start := s.Now()
		window := time.Duration(windowMs) * time.Millisecond
		fired := make([]atomic.Bool, len(delaysMs))
		deadlines := make([]time.Duration, len(delaysMs))
		for i, ms := range delaysMs {
			d := time.Duration(ms) * time.Millisecond
			deadlines[i] = d
			i := i
			s.AfterFunc(d, func() { fired[i].Store(true) })
		}
		s.AdvanceTo(start.Add(window))
		// AfterFunc goroutines are asynchronous; allow them to land.
		deadline := time.Now().Add(2 * time.Second)
		for {
			ok := true
			for i := range fired {
				want := deadlines[i] <= window
				if fired[i].Load() != want {
					ok = false
				}
			}
			if ok {
				return true
			}
			if time.Now().After(deadline) {
				return false
			}
			time.Sleep(time.Millisecond)
		}
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestRealClockBasics(t *testing.T) {
	c := NewReal()
	before := c.Now()
	c.Sleep(time.Millisecond)
	if c.Since(before) <= 0 {
		t.Fatal("real clock did not move")
	}
	tm := c.NewTimer(time.Millisecond)
	select {
	case <-tm.C():
	case <-time.After(time.Second):
		t.Fatal("real timer did not fire")
	}
	tk := c.NewTicker(time.Millisecond)
	defer tk.Stop()
	select {
	case <-tk.C():
	case <-time.After(time.Second):
		t.Fatal("real ticker did not tick")
	}
	var ran atomic.Bool
	c.AfterFunc(time.Millisecond, func() { ran.Store(true) })
	waitTrue(t, &ran)
}

func waitTrue(t *testing.T, b *atomic.Bool) {
	t.Helper()
	waitFor(t, b.Load)
}

func waitFor(t *testing.T, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatal("condition not reached in time")
		}
		time.Sleep(time.Millisecond)
	}
}

// Property: splitting an Advance into two pieces fires exactly the
// same timers — time advancement is associative.
func TestSimAdvanceSplitProperty(t *testing.T) {
	f := func(delaysMs []uint16, splitMs uint16) bool {
		if len(delaysMs) == 0 {
			return true
		}
		if len(delaysMs) > 32 {
			delaysMs = delaysMs[:32]
		}
		run := func(split bool) []bool {
			s := NewSim(time.Time{})
			fired := make([]atomic.Bool, len(delaysMs))
			for i, ms := range delaysMs {
				i := i
				s.AfterFunc(time.Duration(ms)*time.Millisecond, func() { fired[i].Store(true) })
			}
			total := 70 * time.Second
			if split {
				s.Advance(time.Duration(splitMs) * time.Millisecond)
				s.Advance(total - time.Duration(splitMs)*time.Millisecond)
			} else {
				s.Advance(total)
			}
			// Let AfterFunc goroutines land.
			deadline := time.Now().Add(time.Second)
			for {
				done := true
				for i, ms := range delaysMs {
					if time.Duration(ms)*time.Millisecond <= total && !fired[i].Load() {
						done = false
					}
				}
				if done || time.Now().After(deadline) {
					break
				}
				time.Sleep(time.Millisecond)
			}
			out := make([]bool, len(fired))
			for i := range fired {
				out[i] = fired[i].Load()
			}
			return out
		}
		a, b := run(false), run(true)
		for i := range a {
			if a[i] != b[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

// Property: a timer fires at most once.
func TestSimTimerFiresOnceProperty(t *testing.T) {
	f := func(delayMs uint16, extraAdvances uint8) bool {
		s := NewSim(time.Time{})
		var fires atomic.Int32
		s.AfterFunc(time.Duration(delayMs)*time.Millisecond, func() { fires.Add(1) })
		for i := 0; i < int(extraAdvances%8)+2; i++ {
			s.Advance(40 * time.Second)
		}
		deadline := time.Now().Add(time.Second)
		for fires.Load() == 0 && time.Now().After(deadline) == false {
			time.Sleep(time.Millisecond)
		}
		return fires.Load() == 1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}
