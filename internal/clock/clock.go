// Package clock provides an abstraction over time so that every SIMBA
// component can run either against the real wall clock or against a
// discrete-event simulated clock.
//
// The paper's evaluation spans a one-month deployment and reports
// end-to-end latencies between 1 and 11 seconds. Reproducing those
// numbers against the wall clock would make the test suite take weeks,
// so all components take a Clock and all latencies are measured in
// virtual time. The Sim implementation advances time only when the
// harness asks it to, firing timers in deadline order.
package clock

import "time"

// Clock is the minimal surface of package time that SIMBA components use.
// Implementations must be safe for concurrent use.
type Clock interface {
	// Now returns the current (possibly virtual) time.
	Now() time.Time
	// Sleep blocks the calling goroutine for d of (possibly virtual) time.
	Sleep(d time.Duration)
	// After returns a channel that receives the clock's time after d.
	After(d time.Duration) <-chan time.Time
	// NewTimer returns a timer that fires once after d.
	NewTimer(d time.Duration) Timer
	// AfterFunc schedules f to run in its own goroutine after d.
	AfterFunc(d time.Duration, f func()) Timer
	// NewTicker returns a ticker that fires every d. d must be positive.
	NewTicker(d time.Duration) Ticker
	// Since returns the elapsed time since t.
	Since(t time.Time) time.Duration
}

// Timer mirrors *time.Timer behind an interface so simulated timers can
// stand in for real ones.
type Timer interface {
	// C returns the channel on which the firing time is delivered.
	C() <-chan time.Time
	// Stop prevents the timer from firing. It reports whether the stop
	// prevented a fire, with the same caveats as (*time.Timer).Stop.
	Stop() bool
	// Reset re-arms the timer to fire after d.
	Reset(d time.Duration) bool
}

// Ticker mirrors *time.Ticker behind an interface.
type Ticker interface {
	// C returns the channel on which ticks are delivered.
	C() <-chan time.Time
	// Stop turns off the ticker. Stop does not close C.
	Stop()
}
