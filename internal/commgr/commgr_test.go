package commgr

import (
	"errors"
	"sync/atomic"
	"testing"
	"time"

	"simba/internal/automation"
	"simba/internal/clock"
	"simba/internal/dist"
	"simba/internal/email"
	"simba/internal/faults"
	"simba/internal/im"
)

type fixture struct {
	sim     *clock.Sim
	machine *automation.Machine
	imSvc   *im.Service
	emSvc   *email.Service
	journal *faults.Journal
}

func newFixture(t *testing.T) *fixture {
	t.Helper()
	sim := clock.NewSim(time.Time{})
	imSvc, err := im.NewService(im.Config{
		Clock:    sim,
		RNG:      dist.NewRNG(1),
		HopDelay: dist.Fixed(300 * time.Millisecond),
	})
	if err != nil {
		t.Fatal(err)
	}
	emSvc, err := email.NewService(email.Config{
		Clock: sim,
		RNG:   dist.NewRNG(2),
		Delay: dist.Fixed(10 * time.Second),
	})
	if err != nil {
		t.Fatal(err)
	}
	return &fixture{
		sim:     sim,
		machine: automation.NewMachine(sim),
		imSvc:   imSvc,
		emSvc:   emSvc,
		journal: &faults.Journal{},
	}
}

func (f *fixture) newIMManager(t *testing.T, handle string) *IMManager {
	t.Helper()
	if err := f.imSvc.Register(handle); err != nil {
		t.Fatal(err)
	}
	m, err := NewIMManager(IMManagerConfig{
		Clock:        f.sim,
		Machine:      f.machine,
		Service:      f.imSvc,
		Handle:       handle,
		CallTimeout:  10 * time.Second,
		StartupDelay: -1,
		Journal:      f.journal,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Start(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(m.Stop)
	return m
}

func (f *fixture) newEmailManager(t *testing.T, address string) *EmailManager {
	t.Helper()
	if _, err := f.emSvc.CreateMailbox(address); err != nil {
		t.Fatal(err)
	}
	m, err := NewEmailManager(EmailManagerConfig{
		Clock:        f.sim,
		Machine:      f.machine,
		Service:      f.emSvc,
		Address:      address,
		CallTimeout:  10 * time.Second,
		StartupDelay: -1,
		Journal:      f.journal,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Start(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(m.Stop)
	return m
}

func TestConfigValidation(t *testing.T) {
	f := newFixture(t)
	if _, err := NewIMManager(IMManagerConfig{Clock: f.sim, Machine: f.machine, Service: f.imSvc}); err == nil {
		t.Fatal("missing handle accepted")
	}
	if _, err := NewIMManager(IMManagerConfig{Handle: "x"}); err == nil {
		t.Fatal("missing deps accepted")
	}
	if _, err := NewEmailManager(EmailManagerConfig{Clock: f.sim, Machine: f.machine, Service: f.emSvc}); err == nil {
		t.Fatal("missing address accepted")
	}
	if _, err := NewEmailManager(EmailManagerConfig{Address: "x"}); err == nil {
		t.Fatal("missing deps accepted")
	}
}

func TestMonkeySweepDismissesKnownDialogs(t *testing.T) {
	f := newFixture(t)
	d := f.machine.Desktop()
	monkey := NewMonkey(f.sim, d, 20*time.Second, f.journal, SystemPairs()...)
	d.PopDialog("Low Disk Space", []string{"OK"}, nil, f.sim.Now())
	d.PopDialog("Mystery Box", []string{"Whatever"}, nil, f.sim.Now())
	if got := monkey.Sweep(); got != 1 {
		t.Fatalf("Sweep() = %d, want 1", got)
	}
	unhandled := monkey.Unhandled()
	if len(unhandled) != 1 || unhandled[0].Caption != "Mystery Box" {
		t.Fatalf("Unhandled() = %+v", unhandled)
	}
	if f.journal.Count(faults.KindDialogDismissed) != 1 {
		t.Fatal("dismissal not journaled")
	}
	// Register the unknown dialog's pair — the paper's fix for the two
	// unrecovered dialog failures — and sweep again.
	monkey.AddPair(CaptionButton{Caption: "Mystery Box", Button: "Whatever"})
	if got := monkey.Sweep(); got != 1 {
		t.Fatalf("Sweep() after AddPair = %d", got)
	}
	if len(monkey.Unhandled()) != 0 {
		t.Fatal("dialog still unhandled")
	}
	if len(monkey.Pairs()) != len(SystemPairs())+1 {
		t.Fatalf("Pairs() = %d entries", len(monkey.Pairs()))
	}
}

func TestMonkeyPeriodicSweep(t *testing.T) {
	f := newFixture(t)
	d := f.machine.Desktop()
	monkey := NewMonkey(f.sim, d, 20*time.Second, nil, SystemPairs()...)
	monkey.Start()
	defer monkey.Stop()
	monkey.Start() // idempotent
	d.PopDialog("System Error", []string{"OK"}, nil, f.sim.Now())
	f.sim.Advance(25 * time.Second)
	waitFor(t, func() bool { return len(d.Open()) == 0 })
}

func TestCallTimeoutHangDetection(t *testing.T) {
	f := newFixture(t)
	block := make(chan struct{})
	errCh := make(chan error, 1)
	go func() {
		errCh <- callTimeout(f.sim, 10*time.Second, func() error {
			<-block
			return nil
		})
	}()
	f.sim.BlockUntil(1)
	f.sim.Advance(11 * time.Second)
	select {
	case err := <-errCh:
		if !errors.Is(err, ErrClientHung) {
			t.Fatalf("err = %v", err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("callTimeout did not fire")
	}
	close(block)
}

func TestIMManagerSendAndFetch(t *testing.T) {
	f := newFixture(t)
	buddy := f.newIMManager(t, "buddy")
	src := f.newIMManager(t, "source")

	seq, err := src.Send("buddy", "hello")
	if err != nil || seq != 1 {
		t.Fatalf("Send = %d, %v", seq, err)
	}
	f.sim.Advance(time.Second)
	msgs, err := buddy.FetchNew()
	if err != nil || len(msgs) != 1 || msgs[0].Text != "hello" {
		t.Fatalf("FetchNew = %+v, %v", msgs, err)
	}
	st, err := src.BuddyStatus("buddy")
	if err != nil || st != im.StatusOnline {
		t.Fatalf("BuddyStatus = %v, %v", st, err)
	}
	if src.Events() == nil {
		t.Fatal("Events() = nil on live manager")
	}
	if src.MemoryMB() <= 0 {
		t.Fatal("MemoryMB() = 0 on live manager")
	}
}

func TestIMManagerSanityHealsLogout(t *testing.T) {
	f := newFixture(t)
	m := f.newIMManager(t, "buddy")
	f.imSvc.ForceLogout("buddy")
	if err := m.Sanity(); err != nil {
		t.Fatalf("Sanity = %v", err)
	}
	if f.journal.Count(faults.KindRelogin) != 1 {
		t.Fatal("re-login not journaled")
	}
	ok, err := m.App().LoggedIn()
	if err != nil || !ok {
		t.Fatalf("LoggedIn = %v, %v", ok, err)
	}
}

func TestIMManagerSanityDetectsHangAsUnfixable(t *testing.T) {
	f := newFixture(t)
	m := f.newIMManager(t, "buddy")
	m.App().Hang()
	w := f.sim.Waiters()
	errCh := make(chan error, 1)
	go func() { errCh <- m.Sanity() }()
	f.sim.BlockUntil(w + 1)
	f.sim.Advance(11 * time.Second)
	select {
	case err := <-errCh:
		if !Unfixable(err) {
			t.Fatalf("Sanity on hung client = %v, want unfixable", err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("Sanity blocked")
	}
}

func TestIMManagerEnsureHealthyRestartsHungClient(t *testing.T) {
	f := newFixture(t)
	m := f.newIMManager(t, "buddy")
	oldPID := m.App().PID()
	m.App().Hang()
	w := f.sim.Waiters()
	errCh := make(chan error, 1)
	go func() { errCh <- m.EnsureHealthy() }()
	f.sim.BlockUntil(w + 1)
	f.sim.Advance(30 * time.Second)
	select {
	case err := <-errCh:
		if err != nil {
			t.Fatalf("EnsureHealthy = %v", err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("EnsureHealthy blocked")
	}
	if m.App().PID() == oldPID {
		t.Fatal("client was not restarted")
	}
	if f.journal.Count(faults.KindClientRestart) != 1 {
		t.Fatal("restart not journaled")
	}
	ok, err := m.App().LoggedIn()
	if err != nil || !ok {
		t.Fatalf("new client LoggedIn = %v, %v", ok, err)
	}
}

func TestIMManagerEnsureHealthyRestartsDeadClient(t *testing.T) {
	f := newFixture(t)
	m := f.newIMManager(t, "buddy")
	m.App().Crash()
	if err := m.EnsureHealthy(); err != nil {
		t.Fatalf("EnsureHealthy = %v", err)
	}
	if !m.App().Running() {
		t.Fatal("client not relaunched")
	}
}

func TestIMManagerServiceOutageIsTransient(t *testing.T) {
	f := newFixture(t)
	m := f.newIMManager(t, "buddy")
	f.imSvc.Outage().Set(true, f.sim.Now())
	f.imSvc.ForceLogoutAll()
	err := m.Sanity()
	if err == nil {
		t.Fatal("Sanity succeeded during outage")
	}
	if Unfixable(err) {
		t.Fatalf("outage classified unfixable: %v", err)
	}
	f.imSvc.Outage().Set(false, f.sim.Now())
	if err := m.Sanity(); err != nil {
		t.Fatalf("Sanity after outage = %v", err)
	}
}

func TestIMManagerStartupDelayConsumesVirtualTime(t *testing.T) {
	f := newFixture(t)
	if err := f.imSvc.Register("slow"); err != nil {
		t.Fatal(err)
	}
	m, err := NewIMManager(IMManagerConfig{
		Clock:        f.sim,
		Machine:      f.machine,
		Service:      f.imSvc,
		Handle:       "slow",
		StartupDelay: 3 * time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	w := f.sim.Waiters()
	var done atomic.Bool
	go func() {
		if err := m.Start(); err != nil {
			t.Error(err)
		}
		done.Store(true)
	}()
	defer m.Stop()
	f.sim.BlockUntil(w + 2) // monkey ticker + startup-delay sleep
	if done.Load() {
		t.Fatal("Start returned without consuming startup delay")
	}
	f.sim.Advance(4 * time.Second)
	waitFor(t, done.Load)
}

func TestEmailManagerSendAndFetch(t *testing.T) {
	f := newFixture(t)
	buddy := f.newEmailManager(t, "buddy@sim")
	src := f.newEmailManager(t, "src@sim")
	if err := src.Send("buddy@sim", "subj", "body"); err != nil {
		t.Fatal(err)
	}
	f.sim.Advance(time.Minute)
	msgs, err := buddy.FetchNew()
	if err != nil || len(msgs) != 1 || msgs[0].Subject != "subj" {
		t.Fatalf("FetchNew = %+v, %v", msgs, err)
	}
	n, err := buddy.UnreadCount()
	if err != nil || n != 0 {
		t.Fatalf("UnreadCount = %d, %v", n, err)
	}
}

func TestEmailManagerSanityHealsDisconnect(t *testing.T) {
	f := newFixture(t)
	m := f.newEmailManager(t, "buddy@sim")
	if err := m.App().Disconnect(); err != nil {
		t.Fatal(err)
	}
	if err := m.Sanity(); err != nil {
		t.Fatalf("Sanity = %v", err)
	}
	ok, _ := m.App().Connected()
	if !ok {
		t.Fatal("not reconnected")
	}
	if f.journal.Count(faults.KindRelogin) != 1 {
		t.Fatal("reconnect not journaled")
	}
}

func TestEmailManagerEnsureHealthyRestartsCrashed(t *testing.T) {
	f := newFixture(t)
	m := f.newEmailManager(t, "buddy@sim")
	oldPID := m.App().PID()
	m.App().Crash()
	if err := m.EnsureHealthy(); err != nil {
		t.Fatalf("EnsureHealthy = %v", err)
	}
	if m.App().PID() == oldPID || !m.App().Running() {
		t.Fatal("client not restarted")
	}
}

func TestOnLaunchHookRuns(t *testing.T) {
	f := newFixture(t)
	if err := f.imSvc.Register("hooked"); err != nil {
		t.Fatal(err)
	}
	var launches atomic.Int32
	m, err := NewIMManager(IMManagerConfig{
		Clock:        f.sim,
		Machine:      f.machine,
		Service:      f.imSvc,
		Handle:       "hooked",
		StartupDelay: -1,
		OnLaunch:     func(*automation.IMClientApp) { launches.Add(1) },
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Start(); err != nil {
		t.Fatal(err)
	}
	defer m.Stop()
	if err := m.Restart(); err != nil {
		t.Fatal(err)
	}
	if got := launches.Load(); got != 2 {
		t.Fatalf("OnLaunch ran %d times, want 2", got)
	}
}

func waitFor(t *testing.T, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatal("condition not reached in time")
		}
		time.Sleep(time.Millisecond)
	}
}

func TestManagerAccessors(t *testing.T) {
	f := newFixture(t)
	im := f.newIMManager(t, "acc-buddy")
	em := f.newEmailManager(t, "acc@sim")
	if im.Handle() != "acc-buddy" || em.Address() != "acc@sim" {
		t.Fatalf("Handle/Address = %q/%q", im.Handle(), em.Address())
	}
	if im.Monkey() == nil || em.Monkey() == nil {
		t.Fatal("nil monkey")
	}
	if em.Events() == nil {
		t.Fatal("nil email events channel")
	}
	if em.MemoryMB() <= 0 {
		t.Fatal("email MemoryMB = 0")
	}
	n, err := im.UnreadCount()
	if err != nil || n != 0 {
		t.Fatalf("UnreadCount = %d, %v", n, err)
	}
}

func TestEmailManagerEnsureHealthyTransient(t *testing.T) {
	f := newFixture(t)
	m := f.newEmailManager(t, "tr@sim")
	// A healthy client: EnsureHealthy is a no-op.
	if err := m.EnsureHealthy(); err != nil {
		t.Fatal(err)
	}
	// Hang: EnsureHealthy must replace the client.
	old := m.App().PID()
	m.App().Hang()
	w := f.sim.Waiters()
	errCh := make(chan error, 1)
	go func() { errCh <- m.EnsureHealthy() }()
	f.sim.BlockUntil(w + 1)
	f.sim.Advance(30 * time.Second)
	select {
	case err := <-errCh:
		if err != nil {
			t.Fatal(err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("EnsureHealthy blocked")
	}
	if m.App().PID() == old {
		t.Fatal("hung email client not replaced")
	}
}

func TestStoppedManagersRejectOps(t *testing.T) {
	f := newFixture(t)
	im := f.newIMManager(t, "stopped-buddy")
	em := f.newEmailManager(t, "stopped@sim")
	im.Stop()
	em.Stop()
	if _, err := im.Send("x", "y"); !errors.Is(err, ErrClientDead) {
		t.Fatalf("IM Send after Stop = %v", err)
	}
	if _, err := im.FetchNew(); !errors.Is(err, ErrClientDead) {
		t.Fatalf("IM FetchNew after Stop = %v", err)
	}
	if _, err := im.BuddyStatus("x"); !errors.Is(err, ErrClientDead) {
		t.Fatalf("IM BuddyStatus after Stop = %v", err)
	}
	if _, err := im.UnreadCount(); !errors.Is(err, ErrClientDead) {
		t.Fatalf("IM UnreadCount after Stop = %v", err)
	}
	if err := em.Send("a", "b", "c"); !errors.Is(err, ErrClientDead) {
		t.Fatalf("email Send after Stop = %v", err)
	}
	if _, err := em.FetchNew(); !errors.Is(err, ErrClientDead) {
		t.Fatalf("email FetchNew after Stop = %v", err)
	}
	if _, err := em.UnreadCount(); !errors.Is(err, ErrClientDead) {
		t.Fatalf("email UnreadCount after Stop = %v", err)
	}
	if err := im.Sanity(); !errors.Is(err, ErrClientDead) {
		t.Fatalf("IM Sanity after Stop = %v", err)
	}
	if err := em.Sanity(); !errors.Is(err, ErrClientDead) {
		t.Fatalf("email Sanity after Stop = %v", err)
	}
	if im.Events() != nil || em.Events() != nil {
		t.Fatal("Events() non-nil after Stop")
	}
	if im.MemoryMB() != 0 || em.MemoryMB() != 0 {
		t.Fatal("MemoryMB non-zero after Stop")
	}
}
