package commgr

import (
	"errors"
	"sync"
	"time"

	"simba/internal/automation"
	"simba/internal/clock"
	"simba/internal/email"
	"simba/internal/faults"
)

// EmailManagerConfig parameterizes an EmailManager.
type EmailManagerConfig struct {
	// Clock drives timeouts and startup delays; required.
	Clock clock.Clock
	// Machine hosts the client software; required.
	Machine *automation.Machine
	// Service is the email service; required.
	Service *email.Service
	// Address is the mailbox the manager operates; required.
	Address string
	// CallTimeout bounds individual automation calls (default
	// DefaultCallTimeout).
	CallTimeout time.Duration
	// StartupDelay is the virtual launch time (default
	// DefaultStartupDelay; negative means none).
	StartupDelay time.Duration
	// Journal records recovery actions. Optional.
	Journal *faults.Journal
	// OnLaunch runs against every freshly launched client instance.
	OnLaunch func(*automation.EmailClientApp)
	// MonkeyPairs extends the dismissal table.
	MonkeyPairs []CaptionButton
	// MonkeyPeriod overrides the 20s dialog sweep period.
	MonkeyPeriod time.Duration
}

// EmailClientPairs are the caption-button pairs specific to the email
// client software.
func EmailClientPairs() []CaptionButton {
	return []CaptionButton{
		{Caption: "Send Error", Button: "OK"},
		{Caption: "Server Unavailable", Button: "Retry"},
		{Caption: "Mailbox Full", Button: "OK"},
	}
}

// EmailManager drives the email client software and keeps it healthy.
type EmailManager struct {
	clk          clock.Clock
	machine      *automation.Machine
	svc          *email.Service
	address      string
	callTimeout  time.Duration
	startupDelay time.Duration
	journal      *faults.Journal
	onLaunch     func(*automation.EmailClientApp)
	monkey       *Monkey

	mu  sync.Mutex
	app *automation.EmailClientApp
}

// NewEmailManager builds a manager; the client launches on Start.
func NewEmailManager(cfg EmailManagerConfig) (*EmailManager, error) {
	if cfg.Clock == nil || cfg.Machine == nil || cfg.Service == nil {
		return nil, errors.New("commgr: EmailManagerConfig requires Clock, Machine, and Service")
	}
	if cfg.Address == "" {
		return nil, errors.New("commgr: EmailManagerConfig requires Address")
	}
	if cfg.CallTimeout <= 0 {
		cfg.CallTimeout = DefaultCallTimeout
	}
	switch {
	case cfg.StartupDelay == 0:
		cfg.StartupDelay = DefaultStartupDelay
	case cfg.StartupDelay < 0:
		cfg.StartupDelay = 0
	}
	pairs := append(SystemPairs(), EmailClientPairs()...)
	pairs = append(pairs, cfg.MonkeyPairs...)
	return &EmailManager{
		clk:          cfg.Clock,
		machine:      cfg.Machine,
		svc:          cfg.Service,
		address:      cfg.Address,
		callTimeout:  cfg.CallTimeout,
		startupDelay: cfg.StartupDelay,
		journal:      cfg.Journal,
		onLaunch:     cfg.OnLaunch,
		monkey:       NewMonkey(cfg.Clock, cfg.Machine.Desktop(), cfg.MonkeyPeriod, cfg.Journal, pairs...),
	}, nil
}

// Address returns the managed mailbox address.
func (m *EmailManager) Address() string { return m.address }

// Monkey returns the manager's dialog-handling thread.
func (m *EmailManager) Monkey() *Monkey { return m.monkey }

// App returns the current client instance (nil before Start).
func (m *EmailManager) App() *automation.EmailClientApp {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.app
}

// Start launches the client software, connects it, and starts the
// monkey thread.
func (m *EmailManager) Start() error {
	m.monkey.Start()
	return m.Restart()
}

// Stop shuts down the client software and the monkey thread.
func (m *EmailManager) Stop() {
	m.monkey.Stop()
	m.mu.Lock()
	app := m.app
	m.app = nil
	m.mu.Unlock()
	if app != nil {
		app.Kill()
	}
}

// Restart implements the Shutdown/Restart API for the email client.
func (m *EmailManager) Restart() error {
	m.mu.Lock()
	old := m.app
	m.mu.Unlock()
	if old != nil {
		old.Kill()
		journalRecordf(m.journal, m.clk, faults.KindClientRestart,
			"email client pid %d killed and restarted", old.PID())
	}
	m.clk.Sleep(m.startupDelay)
	app, err := automation.LaunchEmailClient(m.machine, m.svc, m.address)
	if err != nil {
		return wrap("launch email client", err)
	}
	if m.onLaunch != nil {
		m.onLaunch(app)
	}
	m.mu.Lock()
	m.app = app
	m.mu.Unlock()
	if err := callTimeout(m.clk, m.callTimeout, app.Connect); err != nil {
		return wrap("connect after restart", err)
	}
	return nil
}

// Sanity implements the Sanity-Checking API for the email client:
// process liveness, pointer validity, connected state (reconnecting in
// place when possible), and a basic unread-count probe.
func (m *EmailManager) Sanity() error {
	m.mu.Lock()
	app := m.app
	m.mu.Unlock()
	if app == nil || !app.Running() {
		return ErrClientDead
	}
	var connected bool
	err := callTimeout(m.clk, m.callTimeout, func() error {
		ok, err := app.Connected()
		connected = ok
		return err
	})
	if err != nil {
		return wrap("sanity: connected check", err)
	}
	if !connected {
		if err := callTimeout(m.clk, m.callTimeout, app.Connect); err != nil {
			return wrap("sanity: reconnect", err)
		}
		journalRecordf(m.journal, m.clk, faults.KindRelogin,
			"email client for %s was disconnected; reconnect succeeded", m.address)
	}
	err = callTimeout(m.clk, m.callTimeout, func() error {
		_, err := app.UnreadCount()
		return err
	})
	if err != nil {
		return wrap("sanity: unread probe", err)
	}
	return nil
}

// EnsureHealthy runs Sanity and restarts the client when the verdict
// is unfixable.
func (m *EmailManager) EnsureHealthy() error {
	err := m.Sanity()
	if err == nil {
		return nil
	}
	if !Unfixable(err) {
		return err
	}
	if rerr := m.Restart(); rerr != nil {
		return rerr
	}
	return nil
}

// Send submits a message through the client software.
func (m *EmailManager) Send(to, subject, body string) error {
	m.mu.Lock()
	app := m.app
	m.mu.Unlock()
	if app == nil {
		return ErrClientDead
	}
	return callTimeout(m.clk, m.callTimeout, func() error {
		return app.SendMail(to, subject, body)
	})
}

// FetchNew drains newly received emails.
func (m *EmailManager) FetchNew() ([]email.Message, error) {
	m.mu.Lock()
	app := m.app
	m.mu.Unlock()
	if app == nil {
		return nil, ErrClientDead
	}
	var msgs []email.Message
	err := callTimeout(m.clk, m.callTimeout, func() error {
		ms, err := app.FetchNew()
		msgs = ms
		return err
	})
	return msgs, err
}

// UnreadCount reports emails received but not fetched.
func (m *EmailManager) UnreadCount() (int, error) {
	m.mu.Lock()
	app := m.app
	m.mu.Unlock()
	if app == nil {
		return 0, ErrClientDead
	}
	var n int
	err := callTimeout(m.clk, m.callTimeout, func() error {
		c, err := app.UnreadCount()
		n = c
		return err
	})
	return n, err
}

// Events returns the current client instance's new-mail event channel.
func (m *EmailManager) Events() <-chan struct{} {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.app == nil {
		return nil
	}
	return m.app.Events()
}

// MemoryMB reports the client process's working set.
func (m *EmailManager) MemoryMB() float64 {
	m.mu.Lock()
	app := m.app
	m.mu.Unlock()
	if app == nil {
		return 0
	}
	return app.MemoryMB()
}
