package commgr

import (
	"errors"
	"sync"
	"time"

	"simba/internal/automation"
	"simba/internal/clock"
	"simba/internal/faults"
	"simba/internal/im"
)

// IMManagerConfig parameterizes an IMManager.
type IMManagerConfig struct {
	// Clock drives timeouts and startup delays; required.
	Clock clock.Clock
	// Machine hosts the client software; required.
	Machine *automation.Machine
	// Service is the IM service the client talks to; required.
	Service *im.Service
	// Handle is the IM account the manager operates; required.
	Handle string
	// CallTimeout bounds individual automation calls (default
	// DefaultCallTimeout).
	CallTimeout time.Duration
	// StartupDelay is the virtual time launching the client takes
	// (default DefaultStartupDelay).
	StartupDelay time.Duration
	// Journal records recovery actions. Optional.
	Journal *faults.Journal
	// OnLaunch, if set, runs against every freshly launched client
	// instance (fault injectors use it to re-arm ambient faults).
	OnLaunch func(*automation.IMClientApp)
	// MonkeyPairs extends the monkey thread's dismissal table beyond
	// SystemPairs plus the IM client's own known dialogs.
	MonkeyPairs []CaptionButton
	// MonkeyPeriod overrides the 20s dialog sweep period.
	MonkeyPeriod time.Duration
}

// IMClientPairs are the caption-button pairs specific to the IM client
// software.
func IMClientPairs() []CaptionButton {
	return []CaptionButton{
		{Caption: "Connection Error", Button: "OK"},
		{Caption: "Signed In Elsewhere", Button: "OK"},
		{Caption: "Service Announcement", Button: "Close"},
	}
}

// IMManager drives the IM client software and keeps it healthy.
type IMManager struct {
	clk          clock.Clock
	machine      *automation.Machine
	svc          *im.Service
	handle       string
	callTimeout  time.Duration
	startupDelay time.Duration
	journal      *faults.Journal
	onLaunch     func(*automation.IMClientApp)
	monkey       *Monkey

	mu  sync.Mutex
	app *automation.IMClientApp
}

// NewIMManager builds a manager. The client software is not launched
// until Start (or the first Restart).
func NewIMManager(cfg IMManagerConfig) (*IMManager, error) {
	if cfg.Clock == nil || cfg.Machine == nil || cfg.Service == nil {
		return nil, errors.New("commgr: IMManagerConfig requires Clock, Machine, and Service")
	}
	if cfg.Handle == "" {
		return nil, errors.New("commgr: IMManagerConfig requires Handle")
	}
	if cfg.CallTimeout <= 0 {
		cfg.CallTimeout = DefaultCallTimeout
	}
	switch {
	case cfg.StartupDelay == 0:
		cfg.StartupDelay = DefaultStartupDelay
	case cfg.StartupDelay < 0: // explicit "no delay"
		cfg.StartupDelay = 0
	}
	pairs := append(SystemPairs(), IMClientPairs()...)
	pairs = append(pairs, cfg.MonkeyPairs...)
	return &IMManager{
		clk:          cfg.Clock,
		machine:      cfg.Machine,
		svc:          cfg.Service,
		handle:       cfg.Handle,
		callTimeout:  cfg.CallTimeout,
		startupDelay: cfg.StartupDelay,
		journal:      cfg.Journal,
		onLaunch:     cfg.OnLaunch,
		monkey:       NewMonkey(cfg.Clock, cfg.Machine.Desktop(), cfg.MonkeyPeriod, cfg.Journal, pairs...),
	}, nil
}

// Handle returns the managed IM handle.
func (m *IMManager) Handle() string { return m.handle }

// Monkey returns the manager's dialog-handling thread, so callers can
// register environment-specific caption-button pairs.
func (m *IMManager) Monkey() *Monkey { return m.monkey }

// App returns the current client instance (nil before Start). Tests
// and fault injectors use it.
func (m *IMManager) App() *automation.IMClientApp {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.app
}

// Start launches the client software, logs in, and starts the monkey
// thread.
func (m *IMManager) Start() error {
	m.monkey.Start()
	return m.Restart()
}

// Stop shuts down the client software and the monkey thread.
func (m *IMManager) Stop() {
	m.monkey.Stop()
	m.mu.Lock()
	app := m.app
	m.app = nil
	m.mu.Unlock()
	if app != nil {
		app.Kill()
	}
}

// Restart implements the Shutdown/Restart API: terminate the current
// client instance, launch a fresh one (which takes StartupDelay of
// virtual time), log it in, and refresh all pointers.
func (m *IMManager) Restart() error {
	m.mu.Lock()
	old := m.app
	m.mu.Unlock()
	if old != nil {
		old.Kill()
		journalRecordf(m.journal, m.clk, faults.KindClientRestart,
			"im client pid %d killed and restarted", old.PID())
	}
	m.clk.Sleep(m.startupDelay)
	app, err := automation.LaunchIMClient(m.machine, m.svc, m.handle)
	if err != nil {
		return wrap("launch im client", err)
	}
	if m.onLaunch != nil {
		m.onLaunch(app)
	}
	m.mu.Lock()
	m.app = app
	m.mu.Unlock()
	// Logging in may legitimately fail during a service outage; the
	// client is still freshly launched, and the next sanity check will
	// re-login once the service returns.
	if err := m.login(app); err != nil && !errors.Is(err, im.ErrServiceUnavailable) {
		return wrap("login after restart", err)
	}
	return nil
}

func (m *IMManager) login(app *automation.IMClientApp) error {
	return callTimeout(m.clk, m.callTimeout, app.Login)
}

// Sanity implements the Sanity-Checking API. It verifies, in order:
// process liveness and pointer validity; logged-in state, re-logging
// in when the client was logged out (journaled as a re-login); and the
// ability to perform a basic operation (a presence query for the
// manager's own handle). A nil return means healthy or healed in
// place; use Unfixable on the returned error to decide whether Restart
// is needed.
func (m *IMManager) Sanity() error {
	m.mu.Lock()
	app := m.app
	m.mu.Unlock()
	if app == nil || !app.Running() {
		return ErrClientDead
	}
	var loggedIn bool
	err := callTimeout(m.clk, m.callTimeout, func() error {
		ok, err := app.LoggedIn()
		loggedIn = ok
		return err
	})
	if err != nil {
		return wrap("sanity: logged-in check", err)
	}
	if !loggedIn {
		if err := m.login(app); err != nil {
			return wrap("sanity: re-login", err)
		}
		journalRecordf(m.journal, m.clk, faults.KindRelogin,
			"im client for %s was logged out; re-login succeeded", m.handle)
	}
	// Basic-operation probe: can we obtain buddy status?
	err = callTimeout(m.clk, m.callTimeout, func() error {
		_, err := app.BuddyStatus(m.handle)
		return err
	})
	if err != nil {
		return wrap("sanity: status probe", err)
	}
	return nil
}

// EnsureHealthy runs Sanity and applies the restart API when the
// verdict is unfixable. It reports the terminal error, if any.
func (m *IMManager) EnsureHealthy() error {
	err := m.Sanity()
	if err == nil {
		return nil
	}
	if !Unfixable(err) {
		return err // transient (e.g. service outage): retry later
	}
	if rerr := m.Restart(); rerr != nil {
		return rerr
	}
	return nil
}

// Send transmits text to an IM handle through the client software,
// returning the message sequence number.
func (m *IMManager) Send(to, text string) (uint64, error) {
	m.mu.Lock()
	app := m.app
	m.mu.Unlock()
	if app == nil {
		return 0, ErrClientDead
	}
	var seq uint64
	err := callTimeout(m.clk, m.callTimeout, func() error {
		s, err := app.SendMessage(to, text)
		seq = s
		return err
	})
	return seq, err
}

// BuddyStatus queries presence through the client software.
func (m *IMManager) BuddyStatus(handle string) (im.Status, error) {
	m.mu.Lock()
	app := m.app
	m.mu.Unlock()
	if app == nil {
		return 0, ErrClientDead
	}
	var st im.Status
	err := callTimeout(m.clk, m.callTimeout, func() error {
		s, err := app.BuddyStatus(handle)
		st = s
		return err
	})
	return st, err
}

// FetchNew drains newly received IMs.
func (m *IMManager) FetchNew() ([]im.Message, error) {
	m.mu.Lock()
	app := m.app
	m.mu.Unlock()
	if app == nil {
		return nil, ErrClientDead
	}
	var msgs []im.Message
	err := callTimeout(m.clk, m.callTimeout, func() error {
		ms, err := app.FetchNew()
		msgs = ms
		return err
	})
	return msgs, err
}

// UnreadCount reports IMs received but not yet fetched — the
// self-stabilization "unprocessed IMs" invariant input.
func (m *IMManager) UnreadCount() (int, error) {
	m.mu.Lock()
	app := m.app
	m.mu.Unlock()
	if app == nil {
		return 0, ErrClientDead
	}
	var n int
	err := callTimeout(m.clk, m.callTimeout, func() error {
		c, err := app.UnreadCount()
		n = c
		return err
	})
	return n, err
}

// Events returns the current client instance's new-IM event channel.
// After a Restart the channel changes; long-lived consumers should
// re-fetch it, or rely on polling via FetchNew.
func (m *IMManager) Events() <-chan struct{} {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.app == nil {
		return nil
	}
	return m.app.Events()
}

// MemoryMB reports the client process's working set, for resource-
// consumption invariants.
func (m *IMManager) MemoryMB() float64 {
	m.mu.Lock()
	app := m.app
	m.mu.Unlock()
	if app == nil {
		return 0
	}
	return app.MemoryMB()
}
