// Package commgr implements SIMBA's Communication Managers: the layer
// that drives third-party GUI communication client software through
// automation interfaces and — the paper's key robustness contribution —
// extends them with exception-handling automation:
//
//   - a Sanity-Checking API that verifies the client process is
//     running, the automation pointers are valid, the client is logged
//     on, and basic operations work, re-logging-in when a simple
//     re-logon suffices;
//   - a Shutdown/Restart API that kills a wedged client instance,
//     launches a fresh one, and refreshes every pointer;
//   - a Dialog-Box-Handling API backed by a "monkey thread" that scans
//     the desktop for dialog boxes with known captions and clicks the
//     appropriate button, with an API for registering additional
//     caption-button pairs per operating environment.
package commgr

import (
	"errors"
	"fmt"
	"sync"
	"time"

	"simba/internal/automation"
	"simba/internal/clock"
	"simba/internal/faults"
)

// Manager errors.
var (
	// ErrClientHung indicates an automation call exceeded the call
	// timeout: the client software is wedged and must be restarted.
	ErrClientHung = errors.New("commgr: client software hung (call timed out)")
	// ErrClientDead indicates the client process is gone.
	ErrClientDead = errors.New("commgr: client process not running")
)

// DefaultCallTimeout bounds individual automation calls.
const DefaultCallTimeout = 15 * time.Second

// DefaultStartupDelay models how long launching a GUI client takes.
const DefaultStartupDelay = 3 * time.Second

// CaptionButton is one entry in the monkey thread's dismissal table.
type CaptionButton struct {
	Caption string
	Button  string
}

// SystemPairs are the system-generic caption-button pairs every
// Communication Manager knows out of the box.
func SystemPairs() []CaptionButton {
	return []CaptionButton{
		{Caption: "Low Disk Space", Button: "OK"},
		{Caption: "System Error", Button: "OK"},
		{Caption: "Updates Are Ready", Button: "Later"},
	}
}

// Monkey is the dialog-box-handling thread: it periodically scans the
// desktop for dialogs with known captions and clicks their buttons.
type Monkey struct {
	clk     clock.Clock
	desktop *automation.Desktop
	period  time.Duration
	journal *faults.Journal

	mu    sync.Mutex
	pairs []CaptionButton
	stop  chan struct{}
}

// NewMonkey builds a monkey thread scanning every period. journal may
// be nil.
func NewMonkey(clk clock.Clock, desktop *automation.Desktop, period time.Duration, journal *faults.Journal, pairs ...CaptionButton) *Monkey {
	if period <= 0 {
		period = 20 * time.Second // the paper's dialog sweep period
	}
	return &Monkey{
		clk:     clk,
		desktop: desktop,
		period:  period,
		journal: journal,
		pairs:   append([]CaptionButton(nil), pairs...),
	}
}

// AddPair registers an additional caption-button pair — the paper's
// API for dialogs "specific to each operating environment".
func (m *Monkey) AddPair(p CaptionButton) {
	m.mu.Lock()
	m.pairs = append(m.pairs, p)
	m.mu.Unlock()
}

// Pairs returns the current dismissal table.
func (m *Monkey) Pairs() []CaptionButton {
	m.mu.Lock()
	defer m.mu.Unlock()
	return append([]CaptionButton(nil), m.pairs...)
}

// Sweep performs one scan, clicking every dismissible dialog, and
// returns how many were dismissed.
func (m *Monkey) Sweep() int {
	m.mu.Lock()
	pairs := append([]CaptionButton(nil), m.pairs...)
	m.mu.Unlock()
	dismissed := 0
	for _, dlg := range m.desktop.Open() {
		for _, p := range pairs {
			if p.Caption != dlg.Caption {
				continue
			}
			if m.desktop.ClickButton(p.Caption, p.Button) {
				dismissed++
				if m.journal != nil {
					m.journal.Recordf(m.clk.Now(), faults.KindDialogDismissed,
						"monkey clicked %q on dialog %q", p.Button, p.Caption)
				}
			}
			break
		}
	}
	return dismissed
}

// Unhandled returns dialogs currently open that no known pair can
// dismiss — the paper's "previously unknown dialog boxes".
func (m *Monkey) Unhandled() []automation.Dialog {
	m.mu.Lock()
	pairs := append([]CaptionButton(nil), m.pairs...)
	m.mu.Unlock()
	var out []automation.Dialog
	for _, dlg := range m.desktop.Open() {
		known := false
		for _, p := range pairs {
			if p.Caption == dlg.Caption {
				known = true
				break
			}
		}
		if !known {
			out = append(out, dlg)
		}
	}
	return out
}

// Start launches the periodic sweep. Call Stop to end it.
func (m *Monkey) Start() {
	m.mu.Lock()
	if m.stop != nil {
		m.mu.Unlock()
		return
	}
	stop := make(chan struct{})
	m.stop = stop
	m.mu.Unlock()
	ticker := m.clk.NewTicker(m.period)
	go func() {
		defer ticker.Stop()
		for {
			select {
			case <-stop:
				return
			case <-ticker.C():
				m.Sweep()
			}
		}
	}()
}

// Stop ends the periodic sweep.
func (m *Monkey) Stop() {
	m.mu.Lock()
	if m.stop != nil {
		close(m.stop)
		m.stop = nil
	}
	m.mu.Unlock()
}

// callTimeout runs op in its own goroutine and fails with ErrClientHung
// if it does not return within timeout of virtual time. A hung client's
// automation calls block until the process is killed, so the goroutine
// does not leak past the next Restart.
func callTimeout(clk clock.Clock, timeout time.Duration, op func() error) error {
	done := make(chan error, 1)
	go func() { done <- op() }()
	timer := clk.NewTimer(timeout)
	defer timer.Stop()
	select {
	case err := <-done:
		return err
	case <-timer.C():
		return ErrClientHung
	}
}

func journalRecordf(j *faults.Journal, clk clock.Clock, kind faults.Kind, format string, args ...any) {
	if j != nil {
		j.Recordf(clk.Now(), kind, format, args...)
	}
}

// errUnfixable reports whether a sanity error requires a restart (as
// opposed to a transient service condition worth retrying in place).
func errUnfixable(err error) bool {
	return errors.Is(err, ErrClientHung) ||
		errors.Is(err, ErrClientDead) ||
		errors.Is(err, automation.ErrStaleHandle)
}

// Unfixable reports whether err, returned by a Sanity call, cannot be
// repaired in place and requires the Shutdown/Restart API.
func Unfixable(err error) bool { return errUnfixable(err) }

func wrap(op string, err error) error {
	if err == nil {
		return nil
	}
	return fmt.Errorf("commgr: %s: %w", op, err)
}
