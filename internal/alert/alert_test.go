package alert

import (
	"strings"
	"testing"
	"testing/quick"
	"time"
)

func sample() *Alert {
	return &Alert{
		ID:       "a-1",
		Source:   "yahoo-finance",
		Keywords: []string{"Stocks", "Earnings reports"},
		Subject:  "MSFT earnings out",
		Body:     "Microsoft reported quarterly earnings.\nSee attached.",
		Urgency:  UrgencyHigh,
		Created:  time.Date(2001, 3, 26, 10, 0, 0, 0, time.UTC),
	}
}

func TestUrgencyStringRoundTrip(t *testing.T) {
	for _, u := range []Urgency{UrgencyLow, UrgencyNormal, UrgencyHigh, UrgencyCritical} {
		got, err := ParseUrgency(u.String())
		if err != nil {
			t.Fatalf("ParseUrgency(%q): %v", u.String(), err)
		}
		if got != u {
			t.Fatalf("round trip %v -> %v", u, got)
		}
	}
}

func TestParseUrgencyUnknown(t *testing.T) {
	if _, err := ParseUrgency("shiny"); err == nil {
		t.Fatal("expected error for unknown urgency")
	}
}

func TestUrgencyStringUnknown(t *testing.T) {
	if got := Urgency(99).String(); got != "urgency(99)" {
		t.Fatalf("String() = %q", got)
	}
}

func TestValidate(t *testing.T) {
	tests := []struct {
		name    string
		mutate  func(*Alert)
		wantErr bool
	}{
		{"valid", func(*Alert) {}, false},
		{"missing id", func(a *Alert) { a.ID = "" }, true},
		{"missing source", func(a *Alert) { a.Source = "" }, true},
		{"zero created", func(a *Alert) { a.Created = time.Time{} }, true},
		{"bad urgency low", func(a *Alert) { a.Urgency = 0 }, true},
		{"bad urgency high", func(a *Alert) { a.Urgency = 9 }, true},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			a := sample()
			tt.mutate(a)
			err := a.Validate()
			if (err != nil) != tt.wantErr {
				t.Fatalf("Validate() err = %v, wantErr %v", err, tt.wantErr)
			}
		})
	}
}

func TestNextIDUnique(t *testing.T) {
	seen := make(map[string]bool)
	for i := 0; i < 1000; i++ {
		id := NextID("x")
		if seen[id] {
			t.Fatalf("duplicate ID %q", id)
		}
		seen[id] = true
	}
}

func TestDedupKeyStableAndDistinct(t *testing.T) {
	a := sample()
	b := a.Clone()
	if a.DedupKey() != b.DedupKey() {
		t.Fatal("clone has different dedup key")
	}
	c := a.Clone()
	c.Created = c.Created.Add(time.Nanosecond)
	if a.DedupKey() == c.DedupKey() {
		t.Fatal("different creation times share a dedup key")
	}
}

func TestCloneIsDeep(t *testing.T) {
	a := sample()
	b := a.Clone()
	b.Keywords[0] = "mutated"
	if a.Keywords[0] == "mutated" {
		t.Fatal("Clone shares keyword backing array")
	}
}

func TestMarshalRoundTrip(t *testing.T) {
	a := sample()
	data, err := a.MarshalText()
	if err != nil {
		t.Fatalf("MarshalText: %v", err)
	}
	if !IsWirePayload(string(data)) {
		t.Fatal("payload not recognized by IsWirePayload")
	}
	var got Alert
	if err := got.UnmarshalText(data); err != nil {
		t.Fatalf("UnmarshalText: %v", err)
	}
	assertEqualAlert(t, a, &got)
}

func TestMarshalEmptyKeywordsAndBody(t *testing.T) {
	a := sample()
	a.Keywords = nil
	a.Body = ""
	data, err := a.MarshalText()
	if err != nil {
		t.Fatalf("MarshalText: %v", err)
	}
	var got Alert
	if err := got.UnmarshalText(data); err != nil {
		t.Fatalf("UnmarshalText: %v", err)
	}
	if len(got.Keywords) != 0 || got.Body != "" {
		t.Fatalf("got keywords %v body %q, want empty", got.Keywords, got.Body)
	}
}

func TestMarshalSanitizesSubjectNewlines(t *testing.T) {
	a := sample()
	a.Subject = "line1\nline2\rline3"
	data, err := a.MarshalText()
	if err != nil {
		t.Fatalf("MarshalText: %v", err)
	}
	var got Alert
	if err := got.UnmarshalText(data); err != nil {
		t.Fatalf("UnmarshalText: %v", err)
	}
	if strings.ContainsAny(got.Subject, "\r\n") {
		t.Fatalf("subject still contains newline: %q", got.Subject)
	}
}

func TestUnmarshalRejectsGarbage(t *testing.T) {
	for _, in := range []string{
		"",
		"hello world",
		"SIMBA-ALERT/2\nID: x\nBODY:\n",
		"SIMBA-ALERT/1\nID x no colon at all…\nBODY:\n",
		"SIMBA-ALERT/1\nURGENCY: nope\nBODY:\n",
		"SIMBA-ALERT/1\nCREATED: notanumber\nBODY:\n",
		"SIMBA-ALERT/1\nBODY:\n", // missing required headers
	} {
		var a Alert
		if err := a.UnmarshalText([]byte(in)); err == nil {
			t.Fatalf("UnmarshalText(%q) succeeded, want error", in)
		}
	}
}

func TestUnmarshalIgnoresUnknownHeader(t *testing.T) {
	a := sample()
	data, _ := a.MarshalText()
	withExtra := strings.Replace(string(data), "BODY:\n", "X-FUTURE: yes\nBODY:\n", 1)
	var got Alert
	if err := got.UnmarshalText([]byte(withExtra)); err != nil {
		t.Fatalf("UnmarshalText with unknown header: %v", err)
	}
	assertEqualAlert(t, a, &got)
}

func TestMarshalRoundTripProperty(t *testing.T) {
	f := func(id, source, subject, body string, kw []string, urgPick uint8, unixSec int32) bool {
		if id == "" || source == "" {
			return true // Validate rejects; covered elsewhere.
		}
		id = sanitizeLine(id)
		source = sanitizeLine(source)
		if strings.ContainsAny(id+source, ":") {
			return true // header values with colons are legal but keep the property simple
		}
		var clean []string
		for _, k := range kw {
			k = sanitizeLine(k)
			if k == "" || strings.ContainsAny(k, ",:") {
				return true
			}
			clean = append(clean, k)
		}
		a := &Alert{
			ID:       id,
			Source:   source,
			Keywords: clean,
			Subject:  sanitizeLine(subject),
			Body:     body,
			Urgency:  Urgency(int(urgPick%4) + 1),
			Created:  time.Unix(int64(unixSec), 0).UTC(),
		}
		if a.Created.IsZero() {
			return true
		}
		data, err := a.MarshalText()
		if err != nil {
			return false
		}
		var got Alert
		if err := got.UnmarshalText(data); err != nil {
			return false
		}
		if got.ID != a.ID || got.Source != a.Source || got.Subject != a.Subject ||
			got.Body != a.Body || got.Urgency != a.Urgency || !got.Created.Equal(a.Created) {
			return false
		}
		if len(got.Keywords) != len(a.Keywords) {
			return false
		}
		for i := range got.Keywords {
			if got.Keywords[i] != a.Keywords[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func assertEqualAlert(t *testing.T, want, got *Alert) {
	t.Helper()
	if got.ID != want.ID || got.Source != want.Source || got.Subject != want.Subject ||
		got.Body != want.Body || got.Urgency != want.Urgency || !got.Created.Equal(want.Created) {
		t.Fatalf("alert mismatch:\n got %+v\nwant %+v", got, want)
	}
	if strings.Join(got.Keywords, "|") != strings.Join(want.Keywords, "|") {
		t.Fatalf("keywords mismatch: got %v want %v", got.Keywords, want.Keywords)
	}
}
