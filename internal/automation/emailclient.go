package automation

import (
	"sync"

	"simba/internal/dist"
	"simba/internal/email"
)

// EmailClientApp simulates a GUI email client (the Outlook of the
// paper) driven through an automation interface, with the same failure
// surface as IMClientApp: stale handles, hang-blocked calls, modal
// dialogs, and lost new-mail events.
type EmailClientApp struct {
	*Proc
	svc     *email.Service
	address string
	rng     *dist.RNG

	mu         sync.Mutex
	mailbox    *email.Mailbox
	pending    []email.Message
	events     chan struct{}
	pumpStop   chan struct{}
	eventLossP float64
}

// LaunchEmailClient starts a new instance of the email client software
// on the machine, bound to the given mailbox address. The mailbox must
// already exist.
func LaunchEmailClient(m *Machine, svc *email.Service, address string) (*EmailClientApp, error) {
	proc, err := m.StartProc("emailclient")
	if err != nil {
		return nil, err
	}
	app := &EmailClientApp{
		Proc:    proc,
		svc:     svc,
		address: address,
		rng:     dist.NewRNG(proc.PID()),
		events:  make(chan struct{}, 1),
	}
	return app, nil
}

// Address returns the mailbox address the client is configured with.
func (a *EmailClientApp) Address() string { return a.address }

// SetEventLossProbability makes the client drop that fraction of
// new-mail events, leaving messages unread in the store.
func (a *EmailClientApp) SetEventLossProbability(p float64) {
	a.mu.Lock()
	a.eventLossP = p
	a.mu.Unlock()
}

// Connect attaches the client to its mailbox and starts the new-mail
// pump — the email analogue of IM login.
func (a *EmailClientApp) Connect() error {
	if err := a.gate(); err != nil {
		return err
	}
	mb, ok := a.svc.Mailbox(a.address)
	if !ok {
		return email.ErrNoSuchMailbox
	}
	a.mu.Lock()
	if a.pumpStop != nil {
		close(a.pumpStop)
	}
	a.mailbox = mb
	stop := make(chan struct{})
	a.pumpStop = stop
	a.mu.Unlock()
	go a.pump(mb, stop)
	return nil
}

func (a *EmailClientApp) pump(mb *email.Mailbox, stop chan struct{}) {
	for {
		select {
		case <-stop:
			return
		case <-mb.Notify():
			if err := a.gate(); err != nil {
				return
			}
			a.mu.Lock()
			a.pending = append(a.pending, mb.Fetch()...)
			lost := a.eventLossP > 0 && a.rng.Bool(a.eventLossP)
			a.mu.Unlock()
			if !lost {
				select {
				case a.events <- struct{}{}:
				default:
				}
			}
		}
	}
}

// Connected reports whether the client is attached to its mailbox —
// the email sanity check.
func (a *EmailClientApp) Connected() (bool, error) {
	if err := a.gate(); err != nil {
		return false, err
	}
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.mailbox != nil, nil
}

// Disconnect detaches from the mailbox.
func (a *EmailClientApp) Disconnect() error {
	if err := a.gate(); err != nil {
		return err
	}
	a.mu.Lock()
	a.mailbox = nil
	if a.pumpStop != nil {
		close(a.pumpStop)
		a.pumpStop = nil
	}
	a.mu.Unlock()
	return nil
}

// SendMail submits a message through the email service.
func (a *EmailClientApp) SendMail(to, subject, body string) error {
	if err := a.gate(); err != nil {
		return err
	}
	return a.svc.Submit(a.address, to, subject, body)
}

// Events returns the coalescing new-mail event channel.
func (a *EmailClientApp) Events() <-chan struct{} { return a.events }

// FetchNew drains the unread messages. It also sweeps the mailbox
// directly, so messages whose events were lost are still picked up —
// this is the polling path self-stabilization relies on.
func (a *EmailClientApp) FetchNew() ([]email.Message, error) {
	if err := a.gate(); err != nil {
		return nil, err
	}
	a.mu.Lock()
	mb := a.mailbox
	out := a.pending
	a.pending = nil
	a.mu.Unlock()
	if mb != nil {
		out = append(out, mb.Fetch()...)
	}
	return out, nil
}

// UnreadCount reports unread messages in window plus store.
func (a *EmailClientApp) UnreadCount() (int, error) {
	if err := a.gate(); err != nil {
		return 0, err
	}
	a.mu.Lock()
	defer a.mu.Unlock()
	n := len(a.pending)
	if a.mailbox != nil {
		n += a.mailbox.Len()
	}
	return n, nil
}
