// Package automation simulates the environment SIMBA's exception-
// handling automation contends with: GUI communication client software
// driven through automation interfaces, running as killable processes
// on a machine whose desktop can sprout modal dialog boxes.
//
// The simulator reproduces every failure mode the paper reports:
//
//   - the client process crashes, leaving the caller's automation
//     pointers stale (ErrStaleHandle);
//   - the client hangs, making automation calls block until the
//     process is killed;
//   - the client or the system pops up a modal dialog box that no
//     automation interface can close, blocking all progress until
//     something "clicks" a button (the paper's monkey thread);
//   - the IM client is spontaneously logged out by server recovery or
//     network disconnection;
//   - new-message events are silently lost even though the messages
//     sit in the store;
//   - slow memory leaks accumulate until rejuvenation;
//   - the whole machine loses power or is rebooted.
package automation

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"simba/internal/clock"
)

// Automation errors.
var (
	// ErrStaleHandle is returned by every automation call against a
	// process that has crashed, exited, or been killed: the caller's
	// pointers into the software are no longer valid.
	ErrStaleHandle = errors.New("automation: stale handle (process gone)")
	// ErrMachineOff indicates the machine has no power.
	ErrMachineOff = errors.New("automation: machine is powered off")
)

// ProcState is the externally observable state of a process. A hung
// process still shows as running in the process table; hangs are only
// observable through call timeouts.
type ProcState int

// Process states.
const (
	StateRunning ProcState = iota + 1
	StateHung              // internal: calls block; process table still shows running
	StateCrashed
	StateExited
)

// String implements fmt.Stringer.
func (s ProcState) String() string {
	switch s {
	case StateRunning:
		return "running"
	case StateHung:
		return "hung"
	case StateCrashed:
		return "crashed"
	case StateExited:
		return "exited"
	default:
		return fmt.Sprintf("state(%d)", int(s))
	}
}

var pidCounter atomic.Int64

// Proc is one running process instance. Client apps embed it.
type Proc struct {
	name    string
	pid     int64
	machine *Machine

	mu        sync.Mutex
	state     ProcState
	wake      chan struct{} // closed to re-examine blocking conditions
	memoryMB  float64
	leakPerOp float64
	blockers  int // open modal dialogs owned by this proc
}

// newProc registers a fresh process on the machine.
func newProc(name string, m *Machine) *Proc {
	p := &Proc{
		name:     name,
		pid:      pidCounter.Add(1),
		machine:  m,
		state:    StateRunning,
		wake:     make(chan struct{}),
		memoryMB: 40, // baseline working set
	}
	m.register(p)
	return p
}

// Name returns the program name.
func (p *Proc) Name() string { return p.name }

// PID returns the process ID.
func (p *Proc) PID() int64 { return p.pid }

// Running reports whether the process still appears in the process
// table — the first check of the paper's sanity-checking API. Hung
// processes still report true.
func (p *Proc) Running() bool {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.state == StateRunning || p.state == StateHung
}

// State returns the externally visible state: a hung process reports
// StateRunning (hangs are only detectable through call timeouts).
func (p *Proc) State() ProcState {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.state == StateHung {
		return StateRunning
	}
	return p.state
}

// MemoryMB returns the current working-set size, observable from the
// outside (task manager style) even when the process is hung.
func (p *Proc) MemoryMB() float64 {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.memoryMB
}

// SetLeakRate makes every subsequent automation call leak mb of
// memory, modeling the paper's "memory leaks in rarely executed
// branches of code or in third-party software".
func (p *Proc) SetLeakRate(mbPerOp float64) {
	p.mu.Lock()
	p.leakPerOp = mbPerOp
	p.mu.Unlock()
}

// Hang transitions the process into the hung state: all automation
// calls block until the process is killed.
func (p *Proc) Hang() {
	p.mu.Lock()
	if p.state == StateRunning {
		p.state = StateHung
	}
	p.mu.Unlock()
}

// Crash makes the process die abruptly. Automation calls return
// ErrStaleHandle from now on, including calls blocked in a hang.
func (p *Proc) Crash() { p.terminate(StateCrashed) }

// Kill terminates the process (the shutdown/restart API's kill step,
// or the end of an orderly shutdown).
func (p *Proc) Kill() { p.terminate(StateExited) }

func (p *Proc) terminate(final ProcState) {
	p.mu.Lock()
	if p.state == StateCrashed || p.state == StateExited {
		p.mu.Unlock()
		return
	}
	p.state = final
	close(p.wake)
	p.wake = make(chan struct{})
	p.mu.Unlock()
	p.machine.unregister(p)
	p.machine.desktop.closeOwnedBy(p)
}

// gate is called at the top of every automation operation. It blocks
// while the process is hung or a modal dialog it owns is open, returns
// ErrStaleHandle once the process is gone, and charges the leak rate.
func (p *Proc) gate() error {
	for {
		p.mu.Lock()
		switch {
		case p.state == StateCrashed || p.state == StateExited:
			p.mu.Unlock()
			return ErrStaleHandle
		case p.state == StateHung || p.blockers > 0:
			ch := p.wake
			p.mu.Unlock()
			<-ch
		default:
			p.memoryMB += p.leakPerOp
			p.mu.Unlock()
			return nil
		}
	}
}

// addBlocker/removeBlocker track modal dialogs owned by this process.
func (p *Proc) addBlocker() {
	p.mu.Lock()
	p.blockers++
	p.mu.Unlock()
}

func (p *Proc) removeBlocker() {
	p.mu.Lock()
	if p.blockers > 0 {
		p.blockers--
	}
	if p.blockers == 0 && p.state != StateCrashed && p.state != StateExited {
		close(p.wake)
		p.wake = make(chan struct{})
	}
	p.mu.Unlock()
}

// Dialog is a modal dialog box on the desktop.
type Dialog struct {
	ID      int64
	Caption string
	Buttons []string
	// OwnerPID is zero for dialogs popped by "other parts of the
	// system", which no client app controls.
	OwnerPID int64
	OpenedAt time.Time

	owner *Proc
}

var dialogCounter atomic.Int64

// Desktop is the machine's interactive screen: the place dialog boxes
// appear and the surface the monkey thread scans.
type Desktop struct {
	mu      sync.Mutex
	dialogs []*Dialog
}

// PopDialog opens a modal dialog. owner may be nil for system dialogs.
// A dialog owned by a process blocks that process's automation calls
// until dismissed.
func (d *Desktop) PopDialog(caption string, buttons []string, owner *Proc, now time.Time) *Dialog {
	dlg := &Dialog{
		ID:       dialogCounter.Add(1),
		Caption:  caption,
		Buttons:  append([]string(nil), buttons...),
		OpenedAt: now,
		owner:    owner,
	}
	if owner != nil {
		dlg.OwnerPID = owner.PID()
		owner.addBlocker()
	}
	d.mu.Lock()
	d.dialogs = append(d.dialogs, dlg)
	d.mu.Unlock()
	return dlg
}

// Open returns the currently open dialogs, oldest first.
func (d *Desktop) Open() []Dialog {
	d.mu.Lock()
	defer d.mu.Unlock()
	out := make([]Dialog, 0, len(d.dialogs))
	for _, dlg := range d.dialogs {
		out = append(out, *dlg)
	}
	return out
}

// ClickButton simulates sending mouse-button-down/up messages to the
// named button of the first open dialog with the given caption — the
// monkey thread's only tool. It reports whether a dialog was
// dismissed; clicking a button the dialog does not have does nothing.
func (d *Desktop) ClickButton(caption, button string) bool {
	d.mu.Lock()
	for i, dlg := range d.dialogs {
		if dlg.Caption != caption {
			continue
		}
		if !hasButton(dlg, button) {
			continue
		}
		d.dialogs = append(d.dialogs[:i], d.dialogs[i+1:]...)
		owner := dlg.owner
		d.mu.Unlock()
		if owner != nil {
			owner.removeBlocker()
		}
		return true
	}
	d.mu.Unlock()
	return false
}

// closeOwnedBy removes dialogs owned by a dead process (its windows
// vanish with it).
func (d *Desktop) closeOwnedBy(p *Proc) {
	d.mu.Lock()
	kept := d.dialogs[:0]
	for _, dlg := range d.dialogs {
		if dlg.owner == p {
			continue
		}
		kept = append(kept, dlg)
	}
	d.dialogs = kept
	d.mu.Unlock()
}

// clear removes every dialog (machine reboot).
func (d *Desktop) clear() {
	d.mu.Lock()
	dialogs := d.dialogs
	d.dialogs = nil
	d.mu.Unlock()
	for _, dlg := range dialogs {
		if dlg.owner != nil {
			dlg.owner.removeBlocker()
		}
	}
}

func hasButton(dlg *Dialog, button string) bool {
	for _, b := range dlg.Buttons {
		if b == button {
			return true
		}
	}
	return false
}

// Machine models the desktop PC that MyAlertBuddy and its client
// software run on: a process table, a desktop, and a power switch. A
// UPS can be attached — the fix the paper deployed after its one
// power-outage failure — letting the machine ride through outages.
type Machine struct {
	clk     clock.Clock
	desktop *Desktop

	mu       sync.Mutex
	powered  bool
	ups      bool
	procs    map[int64]*Proc
	reboots  int
	survived int // outages ridden through on UPS
}

// NewMachine returns a powered-on machine.
func NewMachine(clk clock.Clock) *Machine {
	return &Machine{
		clk:     clk,
		desktop: &Desktop{},
		powered: true,
		procs:   make(map[int64]*Proc),
	}
}

// Desktop returns the machine's desktop.
func (m *Machine) Desktop() *Desktop { return m.desktop }

// Clock returns the machine's clock.
func (m *Machine) Clock() clock.Clock { return m.clk }

// Powered reports whether the machine has power.
func (m *Machine) Powered() bool {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.powered
}

// PowerOff cuts utility power. Without a UPS every process dies
// instantly and the desktop clears; with one the machine rides the
// outage through. Nothing can launch until PowerOn unless on UPS.
func (m *Machine) PowerOff() {
	m.mu.Lock()
	if m.ups {
		m.survived++
		m.mu.Unlock()
		return
	}
	m.powered = false
	procs := make([]*Proc, 0, len(m.procs))
	for _, p := range m.procs {
		procs = append(procs, p)
	}
	m.mu.Unlock()
	for _, p := range procs {
		p.Crash()
	}
	m.desktop.clear()
}

// SetUPS attaches or detaches an uninterruptible power supply.
func (m *Machine) SetUPS(attached bool) {
	m.mu.Lock()
	m.ups = attached
	m.mu.Unlock()
}

// OutagesSurvived reports how many power outages the UPS absorbed.
func (m *Machine) OutagesSurvived() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.survived
}

// PowerOn restores power.
func (m *Machine) PowerOn() {
	m.mu.Lock()
	m.powered = true
	m.mu.Unlock()
}

// Reboot kills every process, clears the desktop, and blocks for
// bootTime of virtual time. It is the MDC's last-resort escalation.
func (m *Machine) Reboot(bootTime time.Duration) {
	m.mu.Lock()
	procs := make([]*Proc, 0, len(m.procs))
	for _, p := range m.procs {
		procs = append(procs, p)
	}
	m.reboots++
	m.mu.Unlock()
	for _, p := range procs {
		p.Kill()
	}
	m.desktop.clear()
	m.clk.Sleep(bootTime)
}

// Reboots returns how many times the machine has been rebooted.
func (m *Machine) Reboots() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.reboots
}

// Processes returns the live process list.
func (m *Machine) Processes() []*Proc {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make([]*Proc, 0, len(m.procs))
	for _, p := range m.procs {
		out = append(out, p)
	}
	return out
}

// StartProc launches a bare process with the given name, failing when
// the machine has no power.
func (m *Machine) StartProc(name string) (*Proc, error) {
	if !m.Powered() {
		return nil, ErrMachineOff
	}
	return newProc(name, m), nil
}

func (m *Machine) register(p *Proc) {
	m.mu.Lock()
	m.procs[p.pid] = p
	m.mu.Unlock()
}

func (m *Machine) unregister(p *Proc) {
	m.mu.Lock()
	delete(m.procs, p.pid)
	m.mu.Unlock()
}
