package automation

import (
	"errors"
	"sync/atomic"
	"testing"
	"time"

	"simba/internal/clock"
	"simba/internal/dist"
	"simba/internal/email"
	"simba/internal/im"
)

type fixture struct {
	sim     *clock.Sim
	machine *Machine
	imSvc   *im.Service
	emSvc   *email.Service
}

func newFixture(t *testing.T) *fixture {
	t.Helper()
	sim := clock.NewSim(time.Time{})
	imSvc, err := im.NewService(im.Config{
		Clock:    sim,
		RNG:      dist.NewRNG(1),
		HopDelay: dist.Fixed(300 * time.Millisecond),
	})
	if err != nil {
		t.Fatal(err)
	}
	emSvc, err := email.NewService(email.Config{
		Clock: sim,
		RNG:   dist.NewRNG(2),
		Delay: dist.Fixed(10 * time.Second),
	})
	if err != nil {
		t.Fatal(err)
	}
	return &fixture{sim: sim, machine: NewMachine(sim), imSvc: imSvc, emSvc: emSvc}
}

func (f *fixture) launchIM(t *testing.T, handle string) *IMClientApp {
	t.Helper()
	if err := f.imSvc.Register(handle); err != nil {
		t.Fatal(err)
	}
	app, err := LaunchIMClient(f.machine, f.imSvc, handle)
	if err != nil {
		t.Fatal(err)
	}
	if err := app.Login(); err != nil {
		t.Fatal(err)
	}
	return app
}

func TestProcLifecycle(t *testing.T) {
	f := newFixture(t)
	p, err := f.machine.StartProc("x")
	if err != nil {
		t.Fatal(err)
	}
	if !p.Running() || p.State() != StateRunning || p.Name() != "x" || p.PID() == 0 {
		t.Fatalf("fresh proc: %+v", p)
	}
	if len(f.machine.Processes()) != 1 {
		t.Fatal("process not registered")
	}
	p.Kill()
	if p.Running() || p.State() != StateExited {
		t.Fatal("killed proc still running")
	}
	if len(f.machine.Processes()) != 0 {
		t.Fatal("killed proc still registered")
	}
	// Idempotent.
	p.Kill()
	p.Crash()
	if p.State() != StateExited {
		t.Fatal("terminal state changed")
	}
}

func TestHungProcLooksRunning(t *testing.T) {
	f := newFixture(t)
	p, _ := f.machine.StartProc("x")
	p.Hang()
	if !p.Running() || p.State() != StateRunning {
		t.Fatal("hang should be externally invisible")
	}
}

func TestGateBlocksWhileHungUnblocksOnKill(t *testing.T) {
	f := newFixture(t)
	app := f.launchIM(t, "buddy")
	app.Hang()
	errCh := make(chan error, 1)
	go func() {
		_, err := app.LoggedIn()
		errCh <- err
	}()
	select {
	case err := <-errCh:
		t.Fatalf("call completed on hung app: %v", err)
	case <-time.After(20 * time.Millisecond):
	}
	app.Kill()
	select {
	case err := <-errCh:
		if !errors.Is(err, ErrStaleHandle) {
			t.Fatalf("err = %v, want ErrStaleHandle", err)
		}
	case <-time.After(time.Second):
		t.Fatal("call still blocked after kill")
	}
}

func TestCrashedHandleIsStale(t *testing.T) {
	f := newFixture(t)
	app := f.launchIM(t, "buddy")
	app.Crash()
	if _, err := app.SendMessage("buddy", "x"); !errors.Is(err, ErrStaleHandle) {
		t.Fatalf("SendMessage = %v", err)
	}
	if err := app.Login(); !errors.Is(err, ErrStaleHandle) {
		t.Fatalf("Login = %v", err)
	}
}

func TestModalDialogBlocksOwnerUntilClicked(t *testing.T) {
	f := newFixture(t)
	app := f.launchIM(t, "buddy")
	f.machine.Desktop().PopDialog("Connection Error", []string{"OK"}, app.Proc, f.sim.Now())
	done := make(chan struct{})
	go func() {
		_, _ = app.LoggedIn()
		close(done)
	}()
	select {
	case <-done:
		t.Fatal("call completed with modal dialog open")
	case <-time.After(20 * time.Millisecond):
	}
	if !f.machine.Desktop().ClickButton("Connection Error", "OK") {
		t.Fatal("ClickButton failed")
	}
	select {
	case <-done:
	case <-time.After(time.Second):
		t.Fatal("call still blocked after dialog dismissed")
	}
	if len(f.machine.Desktop().Open()) != 0 {
		t.Fatal("dialog still open")
	}
}

func TestClickButtonRequiresMatchingCaptionAndButton(t *testing.T) {
	f := newFixture(t)
	d := f.machine.Desktop()
	d.PopDialog("Warning", []string{"Yes", "No"}, nil, f.sim.Now())
	if d.ClickButton("Other", "Yes") {
		t.Fatal("clicked wrong caption")
	}
	if d.ClickButton("Warning", "OK") {
		t.Fatal("clicked nonexistent button")
	}
	if !d.ClickButton("Warning", "No") {
		t.Fatal("failed to click valid button")
	}
}

func TestSystemDialogDoesNotBlockApps(t *testing.T) {
	f := newFixture(t)
	app := f.launchIM(t, "buddy")
	f.machine.Desktop().PopDialog("Low Disk Space", []string{"OK"}, nil, f.sim.Now())
	if _, err := app.LoggedIn(); err != nil {
		t.Fatalf("LoggedIn = %v", err)
	}
	open := f.machine.Desktop().Open()
	if len(open) != 1 || open[0].OwnerPID != 0 {
		t.Fatalf("Open() = %+v", open)
	}
}

func TestDialogsVanishWithDeadOwner(t *testing.T) {
	f := newFixture(t)
	app := f.launchIM(t, "buddy")
	f.machine.Desktop().PopDialog("Oops", []string{"OK"}, app.Proc, f.sim.Now())
	app.Crash()
	if len(f.machine.Desktop().Open()) != 0 {
		t.Fatal("dead proc's dialog survived")
	}
}

func TestMemoryLeak(t *testing.T) {
	f := newFixture(t)
	app := f.launchIM(t, "buddy")
	base := app.MemoryMB()
	app.SetLeakRate(5)
	for i := 0; i < 10; i++ {
		if _, err := app.LoggedIn(); err != nil {
			t.Fatal(err)
		}
	}
	if got := app.MemoryMB(); got < base+50 {
		t.Fatalf("MemoryMB = %v, want >= %v", got, base+50)
	}
}

func TestIMClientSendReceiveAck(t *testing.T) {
	f := newFixture(t)
	buddy := f.launchIM(t, "buddy")
	src := f.launchIM(t, "source")

	seq, err := src.SendMessage("buddy", "alert text")
	if err != nil {
		t.Fatal(err)
	}
	f.sim.Advance(time.Second)
	select {
	case <-buddy.Events():
	default:
		t.Fatal("no new-IM event")
	}
	msgs, err := buddy.FetchNew()
	if err != nil || len(msgs) != 1 {
		t.Fatalf("FetchNew = %v, %v", msgs, err)
	}
	if msgs[0].Text != "alert text" || msgs[0].Seq != seq {
		t.Fatalf("message = %+v", msgs[0])
	}
}

func TestIMClientSpontaneousLogoutDetectedAndFixed(t *testing.T) {
	f := newFixture(t)
	app := f.launchIM(t, "buddy")
	f.imSvc.ForceLogout("buddy")
	ok, err := app.LoggedIn()
	if err != nil || ok {
		t.Fatalf("LoggedIn = %v, %v after forced logout", ok, err)
	}
	if err := app.Login(); err != nil {
		t.Fatalf("re-login: %v", err)
	}
	ok, _ = app.LoggedIn()
	if !ok {
		t.Fatal("not logged in after re-login")
	}
}

func TestIMClientEventLossLeavesUnread(t *testing.T) {
	f := newFixture(t)
	buddy := f.launchIM(t, "buddy")
	src := f.launchIM(t, "source")
	buddy.SetEventLossProbability(1.0)
	if _, err := src.SendMessage("buddy", "quiet"); err != nil {
		t.Fatal(err)
	}
	f.sim.Advance(time.Second)
	select {
	case <-buddy.Events():
		t.Fatal("event arrived despite 100% loss")
	default:
	}
	n, err := buddy.UnreadCount()
	if err != nil || n != 1 {
		t.Fatalf("UnreadCount = %d, %v", n, err)
	}
}

func TestIMClientBuddyStatus(t *testing.T) {
	f := newFixture(t)
	app := f.launchIM(t, "buddy")
	if err := f.imSvc.Register("friend"); err != nil {
		t.Fatal(err)
	}
	st, err := app.BuddyStatus("friend")
	if err != nil || st != im.StatusOffline {
		t.Fatalf("BuddyStatus = %v, %v", st, err)
	}
	if err := app.Logout(); err != nil {
		t.Fatal(err)
	}
	if _, err := app.BuddyStatus("friend"); !errors.Is(err, im.ErrNotLoggedIn) {
		t.Fatalf("BuddyStatus after logout = %v", err)
	}
}

func TestEmailClientRoundTrip(t *testing.T) {
	f := newFixture(t)
	if _, err := f.emSvc.CreateMailbox("buddy@sim"); err != nil {
		t.Fatal(err)
	}
	if _, err := f.emSvc.CreateMailbox("src@sim"); err != nil {
		t.Fatal(err)
	}
	buddy, err := LaunchEmailClient(f.machine, f.emSvc, "buddy@sim")
	if err != nil {
		t.Fatal(err)
	}
	if err := buddy.Connect(); err != nil {
		t.Fatal(err)
	}
	if ok, _ := buddy.Connected(); !ok {
		t.Fatal("not connected")
	}
	src, err := LaunchEmailClient(f.machine, f.emSvc, "src@sim")
	if err != nil {
		t.Fatal(err)
	}
	if err := src.SendMail("buddy@sim", "subj", "body"); err != nil {
		t.Fatal(err)
	}
	f.sim.Advance(time.Minute)
	msgs, err := buddy.FetchNew()
	if err != nil || len(msgs) != 1 || msgs[0].Subject != "subj" {
		t.Fatalf("FetchNew = %+v, %v", msgs, err)
	}
}

func TestEmailClientConnectUnknownMailbox(t *testing.T) {
	f := newFixture(t)
	app, err := LaunchEmailClient(f.machine, f.emSvc, "ghost@sim")
	if err != nil {
		t.Fatal(err)
	}
	if err := app.Connect(); !errors.Is(err, email.ErrNoSuchMailbox) {
		t.Fatalf("Connect = %v", err)
	}
}

func TestEmailClientFetchSweepsMailboxOnEventLoss(t *testing.T) {
	f := newFixture(t)
	if _, err := f.emSvc.CreateMailbox("buddy@sim"); err != nil {
		t.Fatal(err)
	}
	app, err := LaunchEmailClient(f.machine, f.emSvc, "buddy@sim")
	if err != nil {
		t.Fatal(err)
	}
	if err := app.Connect(); err != nil {
		t.Fatal(err)
	}
	app.SetEventLossProbability(1.0)
	if err := f.emSvc.Submit("x@sim", "buddy@sim", "s", "b"); err != nil {
		t.Fatal(err)
	}
	f.sim.Advance(time.Minute)
	// Event was lost; a direct poll must still find the message
	// (pending or still in mailbox).
	n, err := app.UnreadCount()
	if err != nil || n != 1 {
		t.Fatalf("UnreadCount = %d, %v", n, err)
	}
	msgs, err := app.FetchNew()
	if err != nil || len(msgs) != 1 {
		t.Fatalf("FetchNew = %d msgs, %v", len(msgs), err)
	}
}

func TestMachinePowerOffKillsEverything(t *testing.T) {
	f := newFixture(t)
	app := f.launchIM(t, "buddy")
	f.machine.Desktop().PopDialog("W", []string{"OK"}, nil, f.sim.Now())
	f.machine.PowerOff()
	if f.machine.Powered() {
		t.Fatal("still powered")
	}
	if app.Running() {
		t.Fatal("proc survived power cut")
	}
	if len(f.machine.Desktop().Open()) != 0 {
		t.Fatal("dialogs survived power cut")
	}
	if _, err := f.machine.StartProc("x"); !errors.Is(err, ErrMachineOff) {
		t.Fatalf("StartProc while off = %v", err)
	}
	f.machine.PowerOn()
	if _, err := f.machine.StartProc("x"); err != nil {
		t.Fatalf("StartProc after power on = %v", err)
	}
}

func TestMachineRebootTakesTimeAndClears(t *testing.T) {
	f := newFixture(t)
	app := f.launchIM(t, "buddy")
	f.machine.Desktop().PopDialog("W", []string{"OK"}, nil, f.sim.Now())
	var done atomic.Bool
	go func() {
		f.machine.Reboot(2 * time.Minute)
		done.Store(true)
	}()
	waitFor(t, func() bool { return !app.Running() })
	if done.Load() {
		t.Fatal("reboot returned before boot time")
	}
	f.sim.BlockUntil(1)
	f.sim.Advance(2 * time.Minute)
	waitFor(t, done.Load)
	if len(f.machine.Desktop().Open()) != 0 {
		t.Fatal("dialogs survived reboot")
	}
	if f.machine.Reboots() != 1 {
		t.Fatalf("Reboots() = %d", f.machine.Reboots())
	}
}

func TestProcStateString(t *testing.T) {
	for _, tt := range []struct {
		s    ProcState
		want string
	}{
		{StateRunning, "running"}, {StateHung, "hung"},
		{StateCrashed, "crashed"}, {StateExited, "exited"}, {ProcState(42), "state(42)"},
	} {
		if got := tt.s.String(); got != tt.want {
			t.Fatalf("String(%d) = %q", int(tt.s), got)
		}
	}
}

func waitFor(t *testing.T, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatal("condition not reached in time")
		}
		time.Sleep(time.Millisecond)
	}
}

func TestUPSRidesThroughOutage(t *testing.T) {
	f := newFixture(t)
	app := f.launchIM(t, "buddy")
	f.machine.SetUPS(true)
	f.machine.PowerOff()
	if !f.machine.Powered() {
		t.Fatal("machine lost power despite UPS")
	}
	if !app.Running() {
		t.Fatal("process died despite UPS")
	}
	if f.machine.OutagesSurvived() != 1 {
		t.Fatalf("OutagesSurvived = %d", f.machine.OutagesSurvived())
	}
	// Detaching the UPS restores the paper's original failure mode.
	f.machine.SetUPS(false)
	f.machine.PowerOff()
	if f.machine.Powered() || app.Running() {
		t.Fatal("outage without UPS should kill everything")
	}
}
