package automation

import (
	"sync"

	"simba/internal/dist"
	"simba/internal/im"
)

// IMClientApp simulates a GUI instant-messaging client (the MSN
// Messenger of the paper) driven through an automation interface. The
// SIMBA Communication Managers never touch the IM service directly;
// they call these methods, which exhibit all the pathologies of real
// automation: stale handles after a crash, blocked calls while hung or
// while a modal dialog is open, spontaneous logouts, and lost
// new-message events.
type IMClientApp struct {
	*Proc
	svc    *im.Service
	handle string
	rng    *dist.RNG

	mu         sync.Mutex
	sess       *im.Session
	pending    []im.Message
	events     chan struct{}
	pumpStop   chan struct{}
	eventLossP float64
}

// LaunchIMClient starts a new instance of the IM client software on
// the machine, associated with the given IM handle. The app is not
// logged in until Login is called.
func LaunchIMClient(m *Machine, svc *im.Service, handle string) (*IMClientApp, error) {
	proc, err := m.StartProc("imclient")
	if err != nil {
		return nil, err
	}
	return &IMClientApp{
		Proc:   proc,
		svc:    svc,
		handle: handle,
		rng:    dist.NewRNG(proc.PID()), // per-instance stream, deterministic by PID
		events: make(chan struct{}, 1),
	}, nil
}

// Handle returns the IM handle the client is configured with.
func (a *IMClientApp) Handle() string { return a.handle }

// SetEventLossProbability makes the client silently drop that fraction
// of new-IM events, leaving messages unread in the window — the
// condition the paper's self-stabilization "unprocessed IMs" check
// repairs.
func (a *IMClientApp) SetEventLossProbability(p float64) {
	a.mu.Lock()
	a.eventLossP = p
	a.mu.Unlock()
}

// Login logs the client on to the IM service and starts the receive
// pump. A prior session, if any, is abandoned.
func (a *IMClientApp) Login() error {
	if err := a.gate(); err != nil {
		return err
	}
	sess, err := a.svc.Login(a.handle)
	if err != nil {
		return err
	}
	a.mu.Lock()
	if a.pumpStop != nil {
		close(a.pumpStop)
	}
	a.sess = sess
	stop := make(chan struct{})
	a.pumpStop = stop
	a.mu.Unlock()
	go a.pump(sess, stop)
	return nil
}

// pump moves delivered IMs from the session inbox into the client's
// message window and raises (possibly lost) new-IM events.
func (a *IMClientApp) pump(sess *im.Session, stop chan struct{}) {
	for {
		select {
		case <-stop:
			return
		case msg := <-sess.Inbox():
			// A hung client's window thread is stuck too: gate here so
			// messages pile up in the service while the app is hung.
			if err := a.gate(); err != nil {
				return
			}
			a.mu.Lock()
			a.pending = append(a.pending, msg)
			lost := a.eventLossP > 0 && a.rng.Bool(a.eventLossP)
			a.mu.Unlock()
			if !lost {
				select {
				case a.events <- struct{}{}:
				default:
				}
			}
		}
	}
}

// Logout logs off the IM service.
func (a *IMClientApp) Logout() error {
	if err := a.gate(); err != nil {
		return err
	}
	a.mu.Lock()
	sess := a.sess
	a.sess = nil
	if a.pumpStop != nil {
		close(a.pumpStop)
		a.pumpStop = nil
	}
	a.mu.Unlock()
	if sess != nil {
		sess.Logout()
	}
	return nil
}

// LoggedIn reports whether the client currently holds a live session.
// This is the application-specific check of the sanity-checking API:
// after a server recovery or network disconnection it reports false.
func (a *IMClientApp) LoggedIn() (bool, error) {
	if err := a.gate(); err != nil {
		return false, err
	}
	a.mu.Lock()
	sess := a.sess
	a.mu.Unlock()
	return sess != nil && sess.LoggedIn(), nil
}

// SendMessage sends text to an IM handle, returning the session
// sequence number.
func (a *IMClientApp) SendMessage(to, text string) (uint64, error) {
	if err := a.gate(); err != nil {
		return 0, err
	}
	a.mu.Lock()
	sess := a.sess
	a.mu.Unlock()
	if sess == nil || !sess.LoggedIn() {
		return 0, im.ErrNotLoggedIn
	}
	return sess.Send(to, text)
}

// BuddyStatus queries a buddy's presence.
func (a *IMClientApp) BuddyStatus(handle string) (im.Status, error) {
	if err := a.gate(); err != nil {
		return 0, err
	}
	a.mu.Lock()
	sess := a.sess
	a.mu.Unlock()
	if sess == nil || !sess.LoggedIn() {
		return 0, im.ErrNotLoggedIn
	}
	return sess.Status(handle)
}

// Events returns the coalescing new-IM event channel. Events may be
// lost (see SetEventLossProbability); consumers must also poll
// FetchNew periodically, which is exactly what the paper's
// self-stabilization checks do.
func (a *IMClientApp) Events() <-chan struct{} { return a.events }

// FetchNew drains the unread messages from the client window.
func (a *IMClientApp) FetchNew() ([]im.Message, error) {
	if err := a.gate(); err != nil {
		return nil, err
	}
	a.mu.Lock()
	out := a.pending
	a.pending = nil
	a.mu.Unlock()
	return out, nil
}

// UnreadCount reports how many messages sit unread in the window.
func (a *IMClientApp) UnreadCount() (int, error) {
	if err := a.gate(); err != nil {
		return 0, err
	}
	a.mu.Lock()
	defer a.mu.Unlock()
	return len(a.pending), nil
}
