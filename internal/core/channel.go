package core

import (
	"sort"
	"strings"
	"sync"

	"simba/internal/addr"
	"simba/internal/alert"
)

// Send is one action-level delivery request handed to a Channel by the
// executor: the resolved target address plus the hosting context the
// shared delivery substrates need (which tenant, which shard).
type Send struct {
	// To is the address target: an IM handle, an email address, or an
	// SMS number/gateway address.
	To string
	// User is the subscribing user on hosted paths ("" on the personal
	// buddy path, where the registry itself belongs to one user).
	User string
	// Shard is the hosting shard on hosted paths (0 otherwise), so
	// sharded substrates can use per-shard forked RNGs.
	Shard int
	// Alert is the routed alert.
	Alert *alert.Alert
	// Payload is the alert's wire form.
	Payload []byte
}

// SendResult describes one channel send.
type SendResult struct {
	// Seq is the channel-assigned message sequence number, used to
	// match a later acknowledgement (ack-based channels only).
	Seq uint64
	// Confirmed reports that the send itself confirms delivery
	// (fire-and-forget channels: email, SMS, the hub's flat sink).
	// Unconfirmed sends succeed only when an acknowledgement for Seq
	// arrives within the block timeout.
	Confirmed bool
}

// Channel delivers one delivery-mode action over one communication
// type. Implementations must be safe for concurrent use: one channel
// instance serves every in-flight delivery of its registry.
type Channel interface {
	Send(req Send) (SendResult, error)
}

// ChannelFunc adapts a function to Channel.
type ChannelFunc func(req Send) (SendResult, error)

// Send implements Channel.
func (f ChannelFunc) Send(req Send) (SendResult, error) { return f(req) }

// Channels is the executor's channel registry, keyed by communication
// type: IM, email, SMS, and the hosting substrate all plug in
// uniformly. It is safe for concurrent use; registrations may be
// swapped at run time (a delivery in flight keeps the channel it
// looked up).
type Channels struct {
	mu     sync.RWMutex
	byType map[addr.Type]Channel
}

// NewChannels returns an empty registry.
func NewChannels() *Channels {
	return &Channels{byType: make(map[addr.Type]Channel)}
}

// Register installs (or replaces) the channel for a communication
// type. A nil channel removes the registration. Register returns the
// registry for chaining.
func (c *Channels) Register(t addr.Type, ch Channel) *Channels {
	c.mu.Lock()
	defer c.mu.Unlock()
	if ch == nil {
		delete(c.byType, t)
	} else {
		c.byType[t] = ch
	}
	return c
}

// Lookup returns the channel registered for a communication type.
func (c *Channels) Lookup(t addr.Type) (Channel, bool) {
	c.mu.RLock()
	defer c.mu.RUnlock()
	ch, ok := c.byType[t]
	return ch, ok
}

// Types returns the registered communication types, sorted.
func (c *Channels) Types() []addr.Type {
	c.mu.RLock()
	defer c.mu.RUnlock()
	out := make([]addr.Type, 0, len(c.byType))
	for t := range c.byType {
		out = append(out, t)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// NewIMChannel adapts an IMSender (commgr.IMManager, DirectIM) to the
// Channel interface. IM is ack-based: the send returns the message
// sequence number and delivery is confirmed only by the receiver's
// application-level acknowledgement.
func NewIMChannel(s IMSender) Channel {
	return imChannel{s: s}
}

type imChannel struct{ s IMSender }

func (c imChannel) Send(req Send) (SendResult, error) {
	seq, err := c.s.Send(req.To, string(req.Payload))
	if err != nil {
		return SendResult{}, err
	}
	return SendResult{Seq: seq}, nil
}

// NewEmailChannel adapts an EmailSender (commgr.EmailManager,
// DirectEmail) to the Channel interface. Email is fire-and-forget:
// accept == confirmed.
func NewEmailChannel(s EmailSender) Channel {
	return emailChannel{s: s}
}

type emailChannel struct{ s EmailSender }

func (c emailChannel) Send(req Send) (SendResult, error) {
	if err := c.s.Send(req.To, req.Alert.Subject, string(req.Payload)); err != nil {
		return SendResult{}, err
	}
	return SendResult{Confirmed: true}, nil
}

// SMSSender submits a text message to a phone number. sms.Carrier
// satisfies it.
type SMSSender interface {
	Send(from, toNumber, text string) error
}

// NewSMSChannel adapts a direct carrier submission to the Channel
// interface, making SMS a first-class delivery-mode action instead of
// a ride on the email gateway. The address target may be a bare number
// or the email-style gateway form (number@domain); the gateway domain
// is stripped. SMS is fire-and-forget: carrier accept == confirmed.
func NewSMSChannel(s SMSSender, from string) Channel {
	return smsChannel{s: s, from: from}
}

type smsChannel struct {
	s    SMSSender
	from string
}

func (c smsChannel) Send(req Send) (SendResult, error) {
	number, _, _ := strings.Cut(req.To, "@")
	if err := c.s.Send(c.from, number, string(req.Payload)); err != nil {
		return SendResult{}, err
	}
	return SendResult{Confirmed: true}, nil
}
