package core

import (
	"errors"
	"os"
	"testing"
	"time"

	"simba/internal/addr"
	"simba/internal/dmode"
)

func newProfile(t *testing.T, s *Store, name string) *Profile {
	t.Helper()
	p, err := s.RegisterUser(name)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func TestRegisterUser(t *testing.T) {
	s := NewStore()
	if _, err := s.RegisterUser(""); err == nil {
		t.Fatal("empty name accepted")
	}
	p := newProfile(t, s, "alice")
	if p.Name() != "alice" || p.Addresses().User() != "alice" {
		t.Fatalf("profile = %+v", p)
	}
	if _, err := s.RegisterUser("alice"); err == nil {
		t.Fatal("duplicate accepted")
	}
	got, err := s.User("alice")
	if err != nil || got != p {
		t.Fatalf("User() = %v, %v", got, err)
	}
	if _, err := s.User("ghost"); !errors.Is(err, ErrUnknownUser) {
		t.Fatalf("User(ghost) = %v", err)
	}
}

func TestDefineModeValidatesAndCopies(t *testing.T) {
	s := NewStore()
	p := newProfile(t, s, "alice")
	bad := &dmode.Mode{Name: "bad"}
	if err := p.DefineMode(bad); err == nil {
		t.Fatal("invalid mode accepted")
	}
	m := dmode.Figure4()
	if err := p.DefineMode(m); err != nil {
		t.Fatal(err)
	}
	m.Blocks[0].Actions[0].Address = "mutated"
	got, err := p.Mode("Urgent")
	if err != nil {
		t.Fatal(err)
	}
	if got.Blocks[0].Actions[0].Address == "mutated" {
		t.Fatal("DefineMode aliased caller's mode")
	}
	got.Blocks[0].Actions[0].Address = "mutated-again"
	got2, _ := p.Mode("Urgent")
	if got2.Blocks[0].Actions[0].Address == "mutated-again" {
		t.Fatal("Mode returned aliased copy")
	}
	if _, err := p.Mode("nope"); !errors.Is(err, ErrUnknownMode) {
		t.Fatalf("Mode(nope) = %v", err)
	}
}

func TestModeNamesSorted(t *testing.T) {
	s := NewStore()
	p := newProfile(t, s, "alice")
	for _, name := range []string{"zeta", "alpha", "mid"} {
		m := dmode.Figure4()
		m.Name = name
		if err := p.DefineMode(m); err != nil {
			t.Fatal(err)
		}
	}
	got := p.ModeNames()
	want := []string{"alpha", "mid", "zeta"}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("ModeNames() = %v", got)
		}
	}
}

func TestSubscribeValidation(t *testing.T) {
	s := NewStore()
	p := newProfile(t, s, "alice")
	if err := p.DefineMode(dmode.Figure4()); err != nil {
		t.Fatal(err)
	}
	if err := s.Subscribe("", "alice", "Urgent"); err == nil {
		t.Fatal("empty category accepted")
	}
	if err := s.Subscribe("Investment", "ghost", "Urgent"); !errors.Is(err, ErrUnknownUser) {
		t.Fatalf("Subscribe unknown user = %v", err)
	}
	if err := s.Subscribe("Investment", "alice", "nope"); !errors.Is(err, ErrUnknownMode) {
		t.Fatalf("Subscribe unknown mode = %v", err)
	}
	if err := s.Subscribe("Investment", "alice", "Urgent"); err != nil {
		t.Fatal(err)
	}
}

func TestResubscribeReplacesMode(t *testing.T) {
	s := NewStore()
	p := newProfile(t, s, "alice")
	m1 := dmode.Figure4()
	m2 := dmode.Figure4()
	m2.Name = "Relaxed"
	if err := p.DefineMode(m1); err != nil {
		t.Fatal(err)
	}
	if err := p.DefineMode(m2); err != nil {
		t.Fatal(err)
	}
	if err := s.Subscribe("Investment", "alice", "Urgent"); err != nil {
		t.Fatal(err)
	}
	if err := s.Subscribe("Investment", "alice", "Relaxed"); err != nil {
		t.Fatal(err)
	}
	subs := s.Subscribers("Investment")
	if len(subs) != 1 || subs[0].Mode != "Relaxed" {
		t.Fatalf("Subscribers = %+v", subs)
	}
}

func TestMultipleSubscribersPerCategory(t *testing.T) {
	s := NewStore()
	for _, name := range []string{"alice", "bob"} {
		p := newProfile(t, s, name)
		if err := p.DefineMode(dmode.Figure4()); err != nil {
			t.Fatal(err)
		}
		if err := s.Subscribe("HomeAlarm", name, "Urgent"); err != nil {
			t.Fatal(err)
		}
	}
	subs := s.Subscribers("HomeAlarm")
	if len(subs) != 2 || subs[0].User != "alice" || subs[1].User != "bob" {
		t.Fatalf("Subscribers = %+v", subs)
	}
	// Returned slice must not alias internal state.
	subs[0].User = "mallory"
	if s.Subscribers("HomeAlarm")[0].User != "alice" {
		t.Fatal("Subscribers aliases internal slice")
	}
}

func TestUnsubscribe(t *testing.T) {
	s := NewStore()
	p := newProfile(t, s, "alice")
	if err := p.DefineMode(dmode.Figure4()); err != nil {
		t.Fatal(err)
	}
	if err := s.Subscribe("X", "alice", "Urgent"); err != nil {
		t.Fatal(err)
	}
	if err := s.Unsubscribe("X", "alice"); err != nil {
		t.Fatal(err)
	}
	if got := s.Subscribers("X"); len(got) != 0 {
		t.Fatalf("Subscribers after unsubscribe = %+v", got)
	}
	if err := s.Unsubscribe("X", "alice"); !errors.Is(err, ErrNotSubscribed) {
		t.Fatalf("double Unsubscribe = %v", err)
	}
	if got := s.Categories(); len(got) != 0 {
		t.Fatalf("Categories = %v", got)
	}
}

func TestCategoriesSorted(t *testing.T) {
	s := NewStore()
	p := newProfile(t, s, "alice")
	if err := p.DefineMode(dmode.Figure4()); err != nil {
		t.Fatal(err)
	}
	for _, c := range []string{"zeta", "alpha"} {
		if err := s.Subscribe(c, "alice", "Urgent"); err != nil {
			t.Fatal(err)
		}
	}
	got := s.Categories()
	if len(got) != 2 || got[0] != "alpha" || got[1] != "zeta" {
		t.Fatalf("Categories = %v", got)
	}
}

func TestProfileAddressFlow(t *testing.T) {
	s := NewStore()
	p := newProfile(t, s, "alice")
	err := p.Addresses().Register(addr.Address{
		Type: addr.TypeIM, Name: "MSN IM", Target: "alice@im.sim", Enabled: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	mode := dmode.IMThenEmail("MSN IM", "Work email", 10*time.Second)
	if err := p.DefineMode(mode); err != nil {
		t.Fatal(err)
	}
	got, err := p.Mode("IMThenEmail")
	if err != nil || len(got.Blocks) != 2 {
		t.Fatalf("Mode = %+v, %v", got, err)
	}
}

func TestLoadXMLDocuments(t *testing.T) {
	s := NewStore()
	p := newProfile(t, s, "alice")
	addrXML, err := os.ReadFile("testdata/alice-addresses.xml")
	if err != nil {
		t.Fatal(err)
	}
	if err := p.LoadAddressBookXML(addrXML); err != nil {
		t.Fatal(err)
	}
	if got := len(p.Addresses().All()); got != 4 {
		t.Fatalf("loaded %d addresses", got)
	}
	if a, ok := p.Addresses().Lookup("Home email"); !ok || a.Enabled {
		t.Fatalf("Home email = %+v, %v", a, ok)
	}
	modeXML, err := os.ReadFile("testdata/urgent-mode.xml")
	if err != nil {
		t.Fatal(err)
	}
	if err := p.LoadModeXML(modeXML); err != nil {
		t.Fatal(err)
	}
	m, err := p.Mode("Urgent")
	if err != nil || len(m.Blocks) != 2 {
		t.Fatalf("Mode = %+v, %v", m, err)
	}
	if err := s.Subscribe("Investment", "alice", "Urgent"); err != nil {
		t.Fatal(err)
	}

	// Mismatched user and malformed documents are rejected.
	q := newProfile(t, s, "bob")
	if err := q.LoadAddressBookXML(addrXML); err == nil {
		t.Fatal("mismatched user accepted")
	}
	if err := p.LoadAddressBookXML([]byte("<nope")); err == nil {
		t.Fatal("malformed address book accepted")
	}
	if err := p.LoadModeXML([]byte("<nope")); err == nil {
		t.Fatal("malformed mode accepted")
	}
}
