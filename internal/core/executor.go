package core

import (
	"errors"
	"fmt"
	"sync"
	"time"

	"simba/internal/addr"
	"simba/internal/alert"
	"simba/internal/clock"
	"simba/internal/dmode"
	"simba/internal/im"
	"simba/internal/timewheel"
)

// Acks tracks pending IM acknowledgements across concurrent
// deliveries. It is the only mutable delivery state left outside the
// executor's stack, shared so the component that sees inbound IMs (the
// buddy's receive loop, the hub's ack intake) can resolve waits started
// by any delivery in flight.
type Acks struct {
	clk clock.Clock

	mu      sync.Mutex
	pending map[ackKey]*pendingAck
}

type ackKey struct {
	handle string
	seq    uint64
}

type pendingAck struct {
	ch   chan ackArrival
	name string // friendly address name
}

type ackArrival struct {
	name string
	at   time.Time
}

// NewAcks builds an empty acknowledgement table.
func NewAcks(clk clock.Clock) *Acks {
	return &Acks{clk: clk, pending: make(map[ackKey]*pendingAck)}
}

// HandleIncoming inspects an incoming IM. If it is an acknowledgement
// for a pending IM action, the ack is resolved and HandleIncoming
// reports true (the message is consumed). All other messages report
// false and should be processed by the caller.
func (t *Acks) HandleIncoming(msg im.Message) bool {
	seq, ok := ParseAck(msg.Text)
	if !ok {
		return false
	}
	key := ackKey{handle: msg.From, seq: seq}
	t.mu.Lock()
	p, ok := t.pending[key]
	if ok {
		delete(t.pending, key)
	}
	t.mu.Unlock()
	if ok {
		select {
		case p.ch <- ackArrival{name: p.name, at: t.clk.Now()}:
		default:
		}
	}
	return true // consume stray acks too
}

// Pending reports how many acknowledgements are outstanding.
func (t *Acks) Pending() int {
	t.mu.Lock()
	defer t.mu.Unlock()
	return len(t.pending)
}

// register arms one pending acknowledgement.
func (t *Acks) register(key ackKey, p *pendingAck) {
	t.mu.Lock()
	t.pending[key] = p
	t.mu.Unlock()
}

// cancel unregisters any keys still pending for one block's wait
// channel (acks resolved meanwhile belong to it and are left alone).
func (t *Acks) cancel(keys []ackKey, ch chan ackArrival) {
	t.mu.Lock()
	for _, k := range keys {
		if p, ok := t.pending[k]; ok && p.ch == ch {
			delete(t.pending, k)
		}
	}
	t.mu.Unlock()
}

// DeliveryContext carries the hosting identity of one delivery through
// the executor to the channels: which tenant is being delivered to and
// on which shard. The zero value is the personal (buddy) path.
type DeliveryContext struct {
	User  string
	Shard int
}

// Executor executes delivery modes: mode → block fallback → action
// execution through the channel registry. It is stateless and
// reentrant — any number of Deliver calls may be in flight, on the
// personal buddy path and across a hub's delivery workers alike.
type Executor struct {
	clk      clock.Clock
	channels *Channels
	acks     *Acks
}

// NewExecutor builds an executor over a channel registry. acks may be
// nil when no registered channel is ack-based (pending waits would
// then only ever time out).
func NewExecutor(clk clock.Clock, channels *Channels, acks *Acks) (*Executor, error) {
	if clk == nil {
		return nil, errors.New("core: clock is required")
	}
	if channels == nil {
		return nil, errors.New("core: channel registry is required")
	}
	if acks == nil {
		acks = NewAcks(clk)
	}
	return &Executor{clk: clk, channels: channels, acks: acks}, nil
}

// Channels returns the executor's channel registry.
func (x *Executor) Channels() *Channels { return x.channels }

// Acks returns the executor's acknowledgement table.
func (x *Executor) Acks() *Acks { return x.acks }

// Scratch is one delivery worker's reusable storage: the Report, its
// BlockResult/ActionResult backing arrays, the pending-ack key list,
// and (optionally) the timer wheel ack waits are multiplexed onto.
// DeliverScratch writes each delivery's report into it instead of
// allocating, so a worker's steady-state delivery is allocation-free.
//
// A Scratch must not be shared between concurrent deliveries, and a
// report returned by DeliverScratch is BORROWED: it is valid only until
// the same Scratch's next delivery. Callers that retain reports (or
// hand them to callbacks that do) must copy what they need first.
type Scratch struct {
	rep  Report
	keys []ackKey
	// wheel, when set, services ack-timeout waits instead of a fresh
	// Clock.NewTimer per block.
	wheel *timewheel.Wheel
}

// NewScratch builds a reusable delivery scratch. wheel may be nil, in
// which case ack waits fall back to per-block clock timers.
func NewScratch(wheel *timewheel.Wheel) *Scratch {
	return &Scratch{wheel: wheel}
}

// Deliver executes the delivery mode for one alert on the personal
// path (zero DeliveryContext). See DeliverAs.
func (x *Executor) Deliver(a *alert.Alert, reg *addr.Registry, mode *dmode.Mode) (*Report, error) {
	return x.DeliverAs(DeliveryContext{}, a, reg, mode)
}

// DeliverAs executes the delivery mode for one alert against the
// user's address registry, trying blocks in order until one succeeds.
// It blocks for up to the sum of the blocks' timeouts (only blocks
// that must wait for an acknowledgement consume their timeout). On
// total failure the error wraps ErrAllBlocksFailed and carries the
// report's per-action failure summary. The returned report is freshly
// allocated and the caller owns it.
func (x *Executor) DeliverAs(ctx DeliveryContext, a *alert.Alert, reg *addr.Registry, mode *dmode.Mode) (*Report, error) {
	return x.deliver(ctx, a, "", nil, reg, mode, nil)
}

// DeliverScratch is DeliverAs for the pooled hot path: the report is
// written into scr (see Scratch for the borrowing contract), payload is
// the alert's pre-marshaled wire form (nil marshals on the spot), and
// alertKey is the alert's pre-computed dedup key ("" computes it) — the
// hub passes both from envelope-owned storage so a delivery allocates
// nothing. scr may be nil, making this exactly DeliverAs.
func (x *Executor) DeliverScratch(ctx DeliveryContext, a *alert.Alert, alertKey string, payload []byte, reg *addr.Registry, mode *dmode.Mode, scr *Scratch) (*Report, error) {
	return x.deliver(ctx, a, alertKey, payload, reg, mode, scr)
}

func (x *Executor) deliver(ctx DeliveryContext, a *alert.Alert, alertKey string, payload []byte, reg *addr.Registry, mode *dmode.Mode, scr *Scratch) (*Report, error) {
	if err := a.Validate(); err != nil {
		return nil, err
	}
	if err := mode.Validate(); err != nil {
		return nil, err
	}
	if payload == nil {
		var err error
		if payload, err = a.MarshalText(); err != nil {
			return nil, err
		}
	}
	if alertKey == "" {
		alertKey = a.DedupKey()
	}
	// The fresh-Report literal must stay on the scratch-less branch:
	// report escapes, so an unconditional literal would heap-allocate on
	// every call even when the scratch's report replaces it.
	var report *Report
	if scr != nil {
		report = &scr.rep
	} else {
		report = &Report{}
	}
	// Field-by-field reset: a struct literal would drop the Blocks
	// backing array (and each block's Actions backing) the scratch
	// exists to reuse.
	report.AlertKey = alertKey
	report.ModeName = mode.Name
	report.Blocks = report.Blocks[:0]
	report.Delivered = false
	report.DeliveredVia = ""
	report.StartedAt = x.clk.Now()
	report.FinishedAt = time.Time{}
	for i := range mode.Blocks {
		br := appendBlockResult(&report.Blocks, i)
		x.runBlock(ctx, br, &mode.Blocks[i], reg, a, payload, scr)
		if br.Succeeded {
			report.Delivered = true
			report.DeliveredVia = deliveredVia(br)
			break
		}
	}
	report.FinishedAt = x.clk.Now()
	if !report.Delivered {
		return report, fmt.Errorf("core: alert %s mode %s: %w (%s)",
			a.ID, mode.Name, ErrAllBlocksFailed, report.FailureSummary())
	}
	return report, nil
}

// appendBlockResult extends blocks by one slot, reusing the slot's
// Actions backing array when growing within capacity (scratch reuse),
// and returns the reset slot.
func appendBlockResult(blocks *[]BlockResult, index int) *BlockResult {
	s := *blocks
	if len(s) < cap(s) {
		s = s[:len(s)+1]
		br := &s[len(s)-1]
		br.Index = index
		br.Actions = br.Actions[:0]
		br.Succeeded = false
		br.Elapsed = 0
		*blocks = s
		return br
	}
	s = append(s, BlockResult{Index: index})
	*blocks = s
	return &s[len(s)-1]
}

// appendActionResult extends actions by one reset slot, reusing backing
// storage within capacity.
func appendActionResult(actions *[]ActionResult, name string) *ActionResult {
	s := *actions
	if len(s) < cap(s) {
		s = s[:len(s)+1]
		res := &s[len(s)-1]
		*res = ActionResult{AddressName: name}
		*actions = s
		return res
	}
	s = append(s, ActionResult{AddressName: name})
	*actions = s
	return &s[len(s)-1]
}

// runBlock performs all enabled actions of one block and decides its
// outcome: immediate success if any fire-and-forget action was
// confirmed, else success iff an acknowledgement arrives within the
// block timeout. Results are written into br (already reset by
// appendBlockResult). The ack channel is created lazily — only when an
// unconfirmed send actually registers a pending ack — so blocks whose
// actions confirm at send time (the hub's flat path) allocate nothing.
func (x *Executor) runBlock(ctx DeliveryContext, br *BlockResult, b *dmode.Block, reg *addr.Registry, a *alert.Alert, payload []byte, scr *Scratch) {
	start := x.clk.Now()
	var ackCh chan ackArrival
	var keys []ackKey
	if scr != nil {
		keys = scr.keys[:0]
	}
	immediate := "" // friendly name of a fire-and-forget success

	for _, action := range b.Actions {
		res := appendActionResult(&br.Actions, action.Address)
		address, ok := reg.Lookup(action.Address)
		switch {
		case !ok:
			res.Err = fmt.Errorf("%q: %w", action.Address, ErrUnknownAddress)
		case !address.Enabled:
			res.Type, res.Target = address.Type, address.Target
			res.Err = fmt.Errorf("%q: %w", action.Address, ErrAddressDisabled)
		default:
			res.Type, res.Target = address.Type, address.Target
			ch, ok := x.channels.Lookup(address.Type)
			if !ok {
				res.Err = fmt.Errorf("%s: %w", address.Type, ErrNoChannel)
				break
			}
			sr, err := ch.Send(Send{
				To:      address.Target,
				User:    ctx.User,
				Shard:   ctx.Shard,
				Alert:   a,
				Payload: payload,
			})
			if err != nil {
				res.Err = err
				break
			}
			if sr.Confirmed {
				res.Confirmed = true
				if immediate == "" {
					immediate = address.Name
				}
				break
			}
			res.Seq = sr.Seq
			if ackCh == nil {
				ackCh = make(chan ackArrival, len(b.Actions))
			}
			key := ackKey{handle: address.Target, seq: sr.Seq}
			x.acks.register(key, &pendingAck{ch: ackCh, name: address.Name})
			keys = append(keys, key)
		}
	}

	switch {
	case immediate != "":
		br.Succeeded = true
	case len(keys) > 0:
		x.waitAck(br, b, ackCh, scr)
	}
	// Unregister any acks still pending for this block.
	if len(keys) > 0 {
		x.acks.cancel(keys, ackCh)
	}
	if scr != nil {
		scr.keys = keys[:0]
	}
	br.Elapsed = x.clk.Now().Sub(start)
}

// waitAck blocks until one of the block's registered acks arrives or
// the block timeout expires, annotating br accordingly. The timeout
// runs on the scratch's timer wheel when available (one pooled wheel
// node instead of a fresh clock timer per wait), else on a clock timer.
func (x *Executor) waitAck(br *BlockResult, b *dmode.Block, ackCh chan ackArrival, scr *Scratch) {
	var (
		fire <-chan time.Time
		stop func()
	)
	if scr != nil && scr.wheel != nil {
		t := scr.wheel.After(b.EffectiveTimeout())
		fire = t.C()
		stop = func() { scr.wheel.Release(t) }
	} else {
		t := x.clk.NewTimer(b.EffectiveTimeout())
		fire = t.C()
		stop = func() { t.Stop() }
	}
	select {
	case arr := <-ackCh:
		stop()
		br.Succeeded = true
		for i := range br.Actions {
			if br.Actions[i].AddressName == arr.name && br.Actions[i].Err == nil {
				br.Actions[i].AckedAt = arr.at
			}
		}
	case <-fire:
		stop()
		for i := range br.Actions {
			if br.Actions[i].Err == nil && !br.Actions[i].Confirmed {
				br.Actions[i].Err = fmt.Errorf("no acknowledgement within %v", b.EffectiveTimeout())
			}
		}
	}
}

// deliveredVia picks the confirming address name from a succeeded
// block: an acked action first, else the first fire-and-forget
// confirmation.
func deliveredVia(br *BlockResult) string {
	for _, res := range br.Actions {
		if !res.AckedAt.IsZero() {
			return res.AddressName
		}
	}
	for _, res := range br.Actions {
		if res.Err == nil && res.Confirmed {
			return res.AddressName
		}
	}
	return ""
}
