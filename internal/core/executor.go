package core

import (
	"errors"
	"fmt"
	"sync"
	"time"

	"simba/internal/addr"
	"simba/internal/alert"
	"simba/internal/clock"
	"simba/internal/dmode"
	"simba/internal/im"
)

// Acks tracks pending IM acknowledgements across concurrent
// deliveries. It is the only mutable delivery state left outside the
// executor's stack, shared so the component that sees inbound IMs (the
// buddy's receive loop, the hub's ack intake) can resolve waits started
// by any delivery in flight.
type Acks struct {
	clk clock.Clock

	mu      sync.Mutex
	pending map[ackKey]*pendingAck
}

type ackKey struct {
	handle string
	seq    uint64
}

type pendingAck struct {
	ch   chan ackArrival
	name string // friendly address name
}

type ackArrival struct {
	name string
	at   time.Time
}

// NewAcks builds an empty acknowledgement table.
func NewAcks(clk clock.Clock) *Acks {
	return &Acks{clk: clk, pending: make(map[ackKey]*pendingAck)}
}

// HandleIncoming inspects an incoming IM. If it is an acknowledgement
// for a pending IM action, the ack is resolved and HandleIncoming
// reports true (the message is consumed). All other messages report
// false and should be processed by the caller.
func (t *Acks) HandleIncoming(msg im.Message) bool {
	seq, ok := ParseAck(msg.Text)
	if !ok {
		return false
	}
	key := ackKey{handle: msg.From, seq: seq}
	t.mu.Lock()
	p, ok := t.pending[key]
	if ok {
		delete(t.pending, key)
	}
	t.mu.Unlock()
	if ok {
		select {
		case p.ch <- ackArrival{name: p.name, at: t.clk.Now()}:
		default:
		}
	}
	return true // consume stray acks too
}

// Pending reports how many acknowledgements are outstanding.
func (t *Acks) Pending() int {
	t.mu.Lock()
	defer t.mu.Unlock()
	return len(t.pending)
}

// register arms one pending acknowledgement.
func (t *Acks) register(key ackKey, p *pendingAck) {
	t.mu.Lock()
	t.pending[key] = p
	t.mu.Unlock()
}

// cancel unregisters any keys still pending for one block's wait
// channel (acks resolved meanwhile belong to it and are left alone).
func (t *Acks) cancel(keys []ackKey, ch chan ackArrival) {
	t.mu.Lock()
	for _, k := range keys {
		if p, ok := t.pending[k]; ok && p.ch == ch {
			delete(t.pending, k)
		}
	}
	t.mu.Unlock()
}

// DeliveryContext carries the hosting identity of one delivery through
// the executor to the channels: which tenant is being delivered to and
// on which shard. The zero value is the personal (buddy) path.
type DeliveryContext struct {
	User  string
	Shard int
}

// Executor executes delivery modes: mode → block fallback → action
// execution through the channel registry. It is stateless and
// reentrant — any number of Deliver calls may be in flight, on the
// personal buddy path and across a hub's delivery workers alike.
type Executor struct {
	clk      clock.Clock
	channels *Channels
	acks     *Acks
}

// NewExecutor builds an executor over a channel registry. acks may be
// nil when no registered channel is ack-based (pending waits would
// then only ever time out).
func NewExecutor(clk clock.Clock, channels *Channels, acks *Acks) (*Executor, error) {
	if clk == nil {
		return nil, errors.New("core: clock is required")
	}
	if channels == nil {
		return nil, errors.New("core: channel registry is required")
	}
	if acks == nil {
		acks = NewAcks(clk)
	}
	return &Executor{clk: clk, channels: channels, acks: acks}, nil
}

// Channels returns the executor's channel registry.
func (x *Executor) Channels() *Channels { return x.channels }

// Acks returns the executor's acknowledgement table.
func (x *Executor) Acks() *Acks { return x.acks }

// Deliver executes the delivery mode for one alert on the personal
// path (zero DeliveryContext). See DeliverAs.
func (x *Executor) Deliver(a *alert.Alert, reg *addr.Registry, mode *dmode.Mode) (*Report, error) {
	return x.DeliverAs(DeliveryContext{}, a, reg, mode)
}

// DeliverAs executes the delivery mode for one alert against the
// user's address registry, trying blocks in order until one succeeds.
// It blocks for up to the sum of the blocks' timeouts (only blocks
// that must wait for an acknowledgement consume their timeout). On
// total failure the error wraps ErrAllBlocksFailed and carries the
// report's per-action failure summary.
func (x *Executor) DeliverAs(ctx DeliveryContext, a *alert.Alert, reg *addr.Registry, mode *dmode.Mode) (*Report, error) {
	if err := a.Validate(); err != nil {
		return nil, err
	}
	if err := mode.Validate(); err != nil {
		return nil, err
	}
	payload, err := a.MarshalText()
	if err != nil {
		return nil, err
	}
	report := &Report{
		AlertKey:  a.DedupKey(),
		ModeName:  mode.Name,
		StartedAt: x.clk.Now(),
	}
	for i := range mode.Blocks {
		br := x.runBlock(ctx, i, &mode.Blocks[i], reg, a, payload)
		report.Blocks = append(report.Blocks, br)
		if br.Succeeded {
			report.Delivered = true
			report.DeliveredVia = deliveredVia(br)
			break
		}
	}
	report.FinishedAt = x.clk.Now()
	if !report.Delivered {
		return report, fmt.Errorf("core: alert %s mode %s: %w (%s)",
			a.ID, mode.Name, ErrAllBlocksFailed, report.FailureSummary())
	}
	return report, nil
}

// runBlock performs all enabled actions of one block and decides its
// outcome: immediate success if any fire-and-forget action was
// confirmed, else success iff an acknowledgement arrives within the
// block timeout.
func (x *Executor) runBlock(ctx DeliveryContext, index int, b *dmode.Block, reg *addr.Registry, a *alert.Alert, payload []byte) BlockResult {
	start := x.clk.Now()
	br := BlockResult{Index: index}
	ackCh := make(chan ackArrival, len(b.Actions))
	var keys []ackKey
	immediate := "" // friendly name of a fire-and-forget success

	for _, action := range b.Actions {
		res := ActionResult{AddressName: action.Address}
		address, ok := reg.Lookup(action.Address)
		switch {
		case !ok:
			res.Err = fmt.Errorf("%q: %w", action.Address, ErrUnknownAddress)
		case !address.Enabled:
			res.Type, res.Target = address.Type, address.Target
			res.Err = fmt.Errorf("%q: %w", action.Address, ErrAddressDisabled)
		default:
			res.Type, res.Target = address.Type, address.Target
			ch, ok := x.channels.Lookup(address.Type)
			if !ok {
				res.Err = fmt.Errorf("%s: %w", address.Type, ErrNoChannel)
				break
			}
			sr, err := ch.Send(Send{
				To:      address.Target,
				User:    ctx.User,
				Shard:   ctx.Shard,
				Alert:   a,
				Payload: payload,
			})
			if err != nil {
				res.Err = err
				break
			}
			if sr.Confirmed {
				res.Confirmed = true
				if immediate == "" {
					immediate = address.Name
				}
				break
			}
			res.Seq = sr.Seq
			key := ackKey{handle: address.Target, seq: sr.Seq}
			x.acks.register(key, &pendingAck{ch: ackCh, name: address.Name})
			keys = append(keys, key)
		}
		br.Actions = append(br.Actions, res)
	}

	switch {
	case immediate != "":
		br.Succeeded = true
	case len(keys) > 0:
		timer := x.clk.NewTimer(b.EffectiveTimeout())
		select {
		case arr := <-ackCh:
			timer.Stop()
			br.Succeeded = true
			for i := range br.Actions {
				if br.Actions[i].AddressName == arr.name && br.Actions[i].Err == nil {
					br.Actions[i].AckedAt = arr.at
				}
			}
		case <-timer.C():
			for i := range br.Actions {
				if br.Actions[i].Err == nil && !br.Actions[i].Confirmed {
					br.Actions[i].Err = fmt.Errorf("no acknowledgement within %v", b.EffectiveTimeout())
				}
			}
		}
	}
	// Unregister any acks still pending for this block.
	x.acks.cancel(keys, ackCh)
	br.Elapsed = x.clk.Now().Sub(start)
	return br
}

// deliveredVia picks the confirming address name from a succeeded
// block: an acked action first, else the first fire-and-forget
// confirmation.
func deliveredVia(br BlockResult) string {
	for _, res := range br.Actions {
		if !res.AckedAt.IsZero() {
			return res.AddressName
		}
	}
	for _, res := range br.Actions {
		if res.Err == nil && res.Confirmed {
			return res.AddressName
		}
	}
	return ""
}
