package core

import (
	"testing"
	"time"

	"simba/internal/addr"
	"simba/internal/alert"
	"simba/internal/clock"
	"simba/internal/dmode"
	"simba/internal/race"
)

// TestDeliverScratchZeroAllocs pins the pooled delivery hot path at
// zero steady-state allocations: with the alert key and wire payload
// precomputed (as the hub's delivery stage does) and the report,
// result backing, and ack keys living in a reusable Scratch, a flat
// confirm-on-send delivery must not touch the heap.
func TestDeliverScratchZeroAllocs(t *testing.T) {
	if race.Enabled {
		t.Skip("alloc accounting is not meaningful under the race detector")
	}
	clk := clock.NewReal()
	chans := NewChannels().Register(addr.TypeSink, ChannelFunc(func(req Send) (SendResult, error) {
		return SendResult{Confirmed: true}, nil
	}))
	exec, err := NewExecutor(clk, chans, NewAcks(clk))
	if err != nil {
		t.Fatal(err)
	}
	reg := addr.NewRegistry("alloc-test")
	if err := reg.Register(addr.Address{
		Type: addr.TypeSink, Name: "substrate", Target: "substrate", Enabled: true,
	}); err != nil {
		t.Fatal(err)
	}
	mode := &dmode.Mode{
		Name:   "Flat",
		Blocks: []dmode.Block{{Actions: []dmode.Action{{Address: "substrate"}}}},
	}
	a := &alert.Alert{
		ID: "a-1", Source: "portal", Keywords: []string{"stocks"},
		Subject: "quote", Body: "MSFT moved", Urgency: alert.UrgencyNormal,
		Created: time.Unix(0, 1),
	}
	payload, err := a.MarshalText()
	if err != nil {
		t.Fatal(err)
	}
	key := a.DedupKey()
	ctx := DeliveryContext{User: "user-1", Shard: 0}
	scr := NewScratch(nil)

	// Warm once so lazily grown scratch backing reaches steady state.
	if _, err := exec.DeliverScratch(ctx, a, key, payload, reg, mode, scr); err != nil {
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(200, func() {
		rep, err := exec.DeliverScratch(ctx, a, key, payload, reg, mode, scr)
		if err != nil || !rep.Delivered {
			t.Fatalf("delivery failed: %v", err)
		}
	})
	if allocs != 0 {
		t.Fatalf("DeliverScratch allocates %.1f objects per delivery, want 0", allocs)
	}
}
