// Package core implements the SIMBA library of Section 4.1 — the code
// shared by MyAlertBuddy and the alert sources. It has two layers:
//
//   - the subscription layer (Store): registration of users, their
//     address books, their named delivery modes, and subscriptions
//     mapping a category name to a (user, delivery mode) pair, with
//     multiple subscribers per category;
//
//   - the delivery engine (Engine): executes a delivery mode against a
//     user's address registry, trying communication blocks in order.
//     IM actions require an application-level acknowledgement tagged
//     with the IM message sequence number; email and SMS actions are
//     fire-and-forget and count as confirmed on accept (which is why a
//     block whose SMS address has been disabled "automatically fails
//     and falls back to the next backup block", per Section 3.3).
//
// SMS is reached through the carrier's email gateway address, exactly
// as the paper's sources did, so the engine needs only an IM sender
// and an email sender.
package core
