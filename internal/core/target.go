package core

import (
	"errors"

	"simba/internal/addr"
	"simba/internal/alert"
	"simba/internal/dmode"
)

// Target bundles a delivery engine with a destination address registry
// and a delivery mode. Alert sources hold a Target pointing at the
// user's MyAlertBuddy (its IM handle and email address, with the
// "IM-with-acknowledgement followed by email" mode) and call Deliver
// for every alert they generate.
type Target struct {
	engine *Engine
	reg    *addr.Registry
	mode   *dmode.Mode
}

// NewTarget validates and bundles the pieces.
func NewTarget(engine *Engine, reg *addr.Registry, mode *dmode.Mode) (*Target, error) {
	if engine == nil || reg == nil || mode == nil {
		return nil, errors.New("core: Target requires engine, registry, and mode")
	}
	if err := mode.Validate(); err != nil {
		return nil, err
	}
	return &Target{engine: engine, reg: reg, mode: mode.Clone()}, nil
}

// Deliver routes one alert to the target.
func (t *Target) Deliver(a *alert.Alert) (*Report, error) {
	return t.engine.Deliver(a, t.reg, t.mode)
}

// BuddyTarget builds the canonical source→buddy target: the buddy's IM
// handle with acknowledgement, falling back to the buddy's email
// address. ackTimeout bounds the IM block (zero means the dmode
// default).
func BuddyTarget(engine *Engine, buddyIMHandle, buddyEmail string, ackTimeout dmode.Duration) (*Target, error) {
	reg := addr.NewRegistry("buddy")
	if err := reg.Register(addr.Address{
		Type: addr.TypeIM, Name: "Buddy IM", Target: buddyIMHandle, Enabled: true,
	}); err != nil {
		return nil, err
	}
	if err := reg.Register(addr.Address{
		Type: addr.TypeEmail, Name: "Buddy email", Target: buddyEmail, Enabled: true,
	}); err != nil {
		return nil, err
	}
	mode := &dmode.Mode{Name: "IMThenEmail", Blocks: []dmode.Block{
		{Timeout: ackTimeout, Actions: []dmode.Action{{Address: "Buddy IM"}}},
		{Actions: []dmode.Action{{Address: "Buddy email"}}},
	}}
	return NewTarget(engine, reg, mode)
}
