package core

import (
	"errors"
	"fmt"
	"sort"
	"sync"

	"simba/internal/addr"
	"simba/internal/dmode"
)

// Store errors.
var (
	// ErrUnknownUser indicates the user has not been registered.
	ErrUnknownUser = errors.New("core: unknown user")
	// ErrUnknownMode indicates the delivery mode has not been defined.
	ErrUnknownMode = errors.New("core: unknown delivery mode")
	// ErrNotSubscribed indicates no matching subscription exists.
	ErrNotSubscribed = errors.New("core: not subscribed")
)

// Subscription maps a category to one subscriber and the delivery mode
// that subscriber chose for it.
type Subscription struct {
	Category string
	User     string
	Mode     string
	// Tier is the subscription's delivery QoS contract. The zero value
	// is TierBestEffort — the historical semantics.
	Tier Tier
}

// Profile is one registered user's addresses and delivery modes.
type Profile struct {
	name  string
	addrs *addr.Registry

	mu    sync.RWMutex
	modes map[string]*dmode.Mode
}

// NewProfile builds a standalone profile, for hosts that carry
// per-tenant profiles outside a Store (the hub's mode-aware delivery
// stage). Store.RegisterUser remains the constructor on the
// subscription-layer path.
func NewProfile(name string) (*Profile, error) {
	if name == "" {
		return nil, errors.New("core: empty user name")
	}
	return &Profile{
		name:  name,
		addrs: addr.NewRegistry(name),
		modes: make(map[string]*dmode.Mode),
	}, nil
}

// Name returns the user name.
func (p *Profile) Name() string { return p.name }

// Addresses returns the user's mutable address registry.
func (p *Profile) Addresses() *addr.Registry { return p.addrs }

// DefineMode registers (or replaces) a named delivery mode. The mode
// is validated and deep-copied; actions may reference addresses that
// do not exist yet — they are skipped at routing time.
func (p *Profile) DefineMode(m *dmode.Mode) error {
	if err := m.Validate(); err != nil {
		return err
	}
	p.mu.Lock()
	p.modes[m.Name] = m.Clone()
	p.mu.Unlock()
	return nil
}

// Mode returns a copy of the named delivery mode.
func (p *Profile) Mode(name string) (*dmode.Mode, error) {
	p.mu.RLock()
	defer p.mu.RUnlock()
	m, ok := p.modes[name]
	if !ok {
		return nil, fmt.Errorf("core: user %q mode %q: %w", p.name, name, ErrUnknownMode)
	}
	return m.Clone(), nil
}

// ModeNames returns the names of all defined modes, sorted.
func (p *Profile) ModeNames() []string {
	p.mu.RLock()
	defer p.mu.RUnlock()
	out := make([]string, 0, len(p.modes))
	for name := range p.modes {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

// Store is the subscription layer: users, their profiles, and
// category subscriptions. It is safe for concurrent use.
type Store struct {
	mu    sync.RWMutex
	users map[string]*Profile
	subs  map[string][]Subscription // category → subscriptions
}

// NewStore returns an empty subscription store.
func NewStore() *Store {
	return &Store{
		users: make(map[string]*Profile),
		subs:  make(map[string][]Subscription),
	}
}

// RegisterUser creates a profile for name.
func (s *Store) RegisterUser(name string) (*Profile, error) {
	if name == "" {
		return nil, errors.New("core: empty user name")
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, ok := s.users[name]; ok {
		return nil, fmt.Errorf("core: user %q already registered", name)
	}
	p := &Profile{
		name:  name,
		addrs: addr.NewRegistry(name),
		modes: make(map[string]*dmode.Mode),
	}
	s.users[name] = p
	return p, nil
}

// User returns the profile for name.
func (s *Store) User(name string) (*Profile, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	p, ok := s.users[name]
	if !ok {
		return nil, fmt.Errorf("core: user %q: %w", name, ErrUnknownUser)
	}
	return p, nil
}

// Subscribe maps category to (user, mode). The user and mode must
// exist. Re-subscribing the same (category, user) replaces the mode —
// this is the one-stop "switch all my Investment alerts from SMS to
// IM" operation the paper motivates.
func (s *Store) Subscribe(category, user, mode string) error {
	return s.SubscribeTier(category, user, mode, TierBestEffort)
}

// SubscribeTier is Subscribe with an explicit delivery QoS tier.
// Re-subscribing the same (category, user) replaces both the mode and
// the tier.
func (s *Store) SubscribeTier(category, user, mode string, tier Tier) error {
	if category == "" {
		return errors.New("core: empty category")
	}
	if !tier.Valid() {
		return fmt.Errorf("core: subscribe %s/%s: invalid tier %d", category, user, tier)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	p, ok := s.users[user]
	if !ok {
		return fmt.Errorf("core: subscribe %q: %w", user, ErrUnknownUser)
	}
	p.mu.RLock()
	_, modeOK := p.modes[mode]
	p.mu.RUnlock()
	if !modeOK {
		return fmt.Errorf("core: subscribe %s/%s with mode %q: %w", category, user, mode, ErrUnknownMode)
	}
	subs := s.subs[category]
	for i := range subs {
		if subs[i].User == user {
			subs[i].Mode = mode
			subs[i].Tier = tier
			return nil
		}
	}
	s.subs[category] = append(subs, Subscription{Category: category, User: user, Mode: mode, Tier: tier})
	return nil
}

// Unsubscribe removes (category, user).
func (s *Store) Unsubscribe(category, user string) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	subs := s.subs[category]
	for i := range subs {
		if subs[i].User == user {
			s.subs[category] = append(subs[:i], subs[i+1:]...)
			if len(s.subs[category]) == 0 {
				delete(s.subs, category)
			}
			return nil
		}
	}
	return fmt.Errorf("core: unsubscribe %s/%s: %w", category, user, ErrNotSubscribed)
}

// Subscribers returns the subscriptions for category, in subscription
// order.
func (s *Store) Subscribers(category string) []Subscription {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return append([]Subscription(nil), s.subs[category]...)
}

// Categories returns all categories with at least one subscriber,
// sorted.
func (s *Store) Categories() []string {
	s.mu.RLock()
	defer s.mu.RUnlock()
	out := make([]string, 0, len(s.subs))
	for c := range s.subs {
		out = append(out, c)
	}
	sort.Strings(out)
	return out
}

// LoadAddressBookXML registers every address from an XML address-book
// document (the subscription layer's on-disk form). The document's
// user attribute must match the profile.
func (p *Profile) LoadAddressBookXML(data []byte) error {
	book, err := addr.Unmarshal(data)
	if err != nil {
		return err
	}
	if book.User != p.name {
		return fmt.Errorf("core: address book is for %q, profile is %q", book.User, p.name)
	}
	for _, a := range book.Addresses {
		if err := p.addrs.Register(a); err != nil {
			return err
		}
	}
	return nil
}

// LoadModeXML defines a delivery mode from its XML document form.
func (p *Profile) LoadModeXML(data []byte) error {
	m, err := dmode.Unmarshal(data)
	if err != nil {
		return err
	}
	return p.DefineMode(m)
}
